package ccc_test

import (
	"testing"

	ccc "repro"
)

// The facade tests exercise the library exactly the way README's examples
// do: the public surface must be sufficient for the full workflow.
func TestFacadeWorkflow(t *testing.T) {
	c, err := ccc.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.Image("base")
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.Image("full")
	if err != nil {
		t.Fatal(err)
	}
	if r := full.Ratio(base); r <= 0 || r >= 1 {
		t.Errorf("full ratio %.3f", r)
	}
	tr, err := c.Trace(20000)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ccc.NewSim(ccc.OrgCompressed, ccc.DefaultConfig(ccc.OrgCompressed), full, c.Prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ipc := res.IPC(); ipc <= 0 {
		t.Errorf("IPC %.3f", ipc)
	}
}

func TestFacadeBenchmarksList(t *testing.T) {
	if len(ccc.Benchmarks) != 8 {
		t.Errorf("expected 8 benchmarks, got %d", len(ccc.Benchmarks))
	}
	for _, n := range ccc.Benchmarks {
		if _, ok := ccc.ProfileFor(n); !ok {
			t.Errorf("no profile for %s", n)
		}
	}
	if _, ok := ccc.ProfileFor("nonesuch"); ok {
		t.Error("profile for unknown benchmark")
	}
}

func TestFacadeCustomProfile(t *testing.T) {
	prof, _ := ccc.ProfileFor("compress")
	prof.Name = "custom"
	prof.Seed = 777
	prof.Funcs = 4
	c, err := ccc.CompileProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "custom" {
		t.Errorf("program name %q", c.Name)
	}
	if len(ccc.SchemeNames()) != 10 {
		t.Errorf("scheme count %d", len(ccc.SchemeNames()))
	}
}

func TestFacadeMachine(t *testing.T) {
	m := ccc.NewMachine()
	m.Store(5, 42)
	if m.Load(5) != 42 {
		t.Error("machine memory")
	}
}

func TestFacadeSuite(t *testing.T) {
	s := ccc.NewSuite(ccc.Options{Benchmarks: []string{"compress"}, TraceBlocks: 10000})
	f5, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Rows) != 1 || f5.Rows[0].Benchmark != "compress" {
		t.Error("suite subset not honored")
	}
}

// TestVerifierCleanPipelines pushes all eight benchmarks through the
// static verifier across every encoding scheme: the seed pipeline must
// hold every invariant the verifier knows about.
func TestVerifierCleanPipelines(t *testing.T) {
	for _, name := range ccc.Benchmarks {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c, err := ccc.CompileBenchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.Lint(nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range rep.Diags {
				t.Logf("%s", d)
			}
			if n := rep.Errors(); n != 0 {
				t.Errorf("verifier found %d error(s) on a clean pipeline", n)
			}
		})
	}
}
