#!/bin/sh
# Regenerates docs/RESULTS.txt: every paper figure at full trace length,
# followed by the sweep studies, in the layout the committed file uses.
# Run from the repository root: ./scripts/regen-results.sh
set -e
out=docs/RESULTS.txt
go run ./cmd/tepicbench >"$out"
echo >>"$out"
go run ./cmd/tepicbench -sweep streams >>"$out"
echo >>"$out"
go run ./cmd/tepicbench -sweep related >>"$out"
echo >>"$out"
go run ./cmd/tepicbench -sweep dict >>"$out"
echo >>"$out"
go run ./cmd/tepicbench -sweep predictors >>"$out"
echo >>"$out"
go run ./cmd/tepicbench -sweep superblocks >>"$out"
echo >>"$out"
go run ./cmd/tepicbench -sweep speculation -benchmarks compress,go,gcc,vortex >>"$out"
go run ./cmd/tepicbench -sweep layout >>"$out"
