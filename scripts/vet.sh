#!/bin/sh
# vet.sh runs the full static gate locally, in the same order as CI's
# lint job: gofmt, go vet, the repo's own analyzer suite (tepicvet),
# then staticcheck and govulncheck at the versions pinned in
# tools/go.mod. The network-dependent tools are skipped with a notice
# when they cannot be installed (e.g. offline), so the local gate
# degrades to exactly what the toolchain alone can check.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:" >&2
	echo "$out" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== tepicvet"
go run ./cmd/tepicvet ./...

pin_of() {
	awk -v mod="$1" '$1 == mod {print $2}' tools/go.mod
}

echo "== staticcheck"
if go install "honnef.co/go/tools/cmd/staticcheck@$(pin_of honnef.co/go/tools)" 2>/dev/null; then
	"$(go env GOPATH)/bin/staticcheck" ./...
else
	echo "staticcheck: install failed (offline?); skipped" >&2
fi

echo "== govulncheck"
if go install "golang.org/x/vuln/cmd/govulncheck@$(pin_of golang.org/x/vuln)" 2>/dev/null; then
	"$(go env GOPATH)/bin/govulncheck" ./...
else
	echo "govulncheck: install failed (offline?); skipped" >&2
fi

echo "vet.sh: all gates passed"
