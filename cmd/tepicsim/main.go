// Command tepicsim runs trace-driven IFetch simulations: a benchmark, a
// registered (encoding, organization) pairing and a cache geometry,
// reporting the paper's metrics (delivered IPC, miss and misprediction
// rates, L0 buffer behaviour, bus traffic and bit flips). With -check
// the point is re-verified by the simulation oracle (internal/simcheck):
// an analytical recomputation of the counters plus metamorphic and
// fault-injection checks, failing the run on any finding. With -sweep it
// fans a registry-driven geometry × predictor grid out over the
// compilation driver's worker pool instead of running one point.
//
// Usage:
//
//	tepicsim -bench vortex -org compressed
//	tepicsim -bench gcc -org base -sets 512 -assoc 4
//	tepicsim -bench compress -org compressed -l0 64 -blocks 1000000
//	tepicsim -bench go -org base -predictor gshare
//	tepicsim -bench vortex -org codepack
//	tepicsim -bench vortex -org compressed -check
//	tepicsim -bench gcc -org base -sweep
//	tepicsim -bench gcc -org compressed -sweep -json
//	tepicsim -bench compress -org compressed -stream -ops 100000000 -simshards 4
//	tepicsim -bench go -org base -stream -check
//	tepicsim -bench compress -org compressed -stream -spec -check
//
// With -stream the trace is never materialized: events flow out of the
// stochastic walker in bounded chunks straight into the window-sharded
// simulator (-simshards workers), so the horizon (-ops) can exceed what
// would fit in memory. -spec switches the windows from token-serialized
// replay to checkpointed speculative replay on private pipeline forks
// (verified against the true seam state, retried on mismatch) and
// reports the retry rate. -check in stream mode replays the same seed
// through the sequential incremental path and the analytical oracle and
// requires all three bit-identical.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	ccc "repro"
	"repro/internal/cliio"
	"repro/internal/simcheck"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the tool against args, writing to out (separated from main
// for testing).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tepicsim", flag.ContinueOnError)
	bench := fs.String("bench", "compress", "benchmark name")
	orgName := fs.String("org", "base", "pairing: "+pairingNames())
	blocks := fs.Int("blocks", 0, "trace length in blocks (0 = profile default)")
	sets := fs.Int("sets", 0, "cache sets (0 = paper default)")
	assoc := fs.Int("assoc", 0, "cache associativity (0 = paper default)")
	line := fs.Int("line", 0, "line bytes (0 = paper default)")
	l0 := fs.Int("l0", 0, "L0 buffer ops, L0 organizations only (0 = paper default)")
	predictor := fs.String("predictor", "", "direction predictor: bimodal, gshare or pas")
	perfect := fs.Bool("perfect-prediction", false, "disable the next-block predictor (ablation)")
	check := fs.Bool("check", false, "run the simulation oracle after the run (differential, metamorphic and fault checks); non-zero exit on findings")
	sweep := fs.Bool("sweep", false, "run the registry-driven geometry x predictor sweep")
	jsonOut := fs.Bool("json", false, "with -sweep: emit the report as JSON")
	par := fs.Int("par", 0, "with -sweep: worker-pool width (0 = GOMAXPROCS)")
	stream := fs.Bool("stream", false, "stream the trace through the window-sharded simulator instead of materializing it")
	opsBound := fs.Int64("ops", 0, "with -stream: dynamic-operation horizon (0 = use -blocks)")
	simShards := fs.Int("simshards", 0, "with -stream: window-shard worker count (0 = GOMAXPROCS)")
	spec := fs.Bool("spec", false, "with -stream: replay windows speculatively from checkpointed warm states instead of serializing on the handoff token")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := cliio.New(out)

	p, ok := ccc.PairingByName(*orgName)
	if !ok {
		return fmt.Errorf("unknown organization %q (have %s)", *orgName, pairingNames())
	}
	if *opsBound != 0 && !*stream {
		return fmt.Errorf("-ops requires -stream")
	}
	if *simShards != 0 && !*stream {
		return fmt.Errorf("-simshards requires -stream")
	}
	if *spec && !*stream {
		return fmt.Errorf("-spec requires -stream")
	}

	if *sweep {
		return runSweep(out, *bench, p, *blocks, *par, *jsonOut)
	}

	c, err := ccc.CompileBenchmark(*bench)
	if err != nil {
		return err
	}

	cfg := ccc.DefaultConfig(p.Org)
	if *sets > 0 {
		cfg.Sets = *sets
	}
	if *assoc > 0 {
		cfg.Assoc = *assoc
	}
	if *line > 0 {
		cfg.LineBytes = *line
	}
	if *l0 > 0 {
		cfg.L0Ops = *l0
	}
	if cfg.Predictor, err = ccc.ParsePredictor(*predictor); err != nil {
		return err
	}
	cfg.PerfectPrediction = *perfect

	if *stream {
		return runStream(w, c, p, cfg, *blocks, *opsBound, *simShards, *spec, *check, *bench)
	}

	tr, err := c.Trace(*blocks)
	if err != nil {
		return err
	}
	sim, err := c.SimFor(p, cfg)
	if err != nil {
		return err
	}
	r, err := sim.Run(tr)
	if err != nil {
		return err
	}

	printMetrics(w, *bench, p, cfg, int64(tr.Len()), r)
	if *check {
		rep, err := c.CheckSim(p, cfg, tr)
		if err != nil {
			return err
		}
		if !rep.OK() {
			if err := rep.WriteText(out); err != nil {
				return err
			}
			return fmt.Errorf("simulation checks found %d error(s)", rep.Errors())
		}
		w.Printf("simcheck    oracle, invariants and fault matrix clean (%d warning(s))\n",
			rep.Warnings())
	}
	return w.Err()
}

// printMetrics reports one simulation point in the tool's standard
// layout; traceBlocks is the dynamic event count however it was
// obtained (materialized length or streamed BlockFetches).
func printMetrics(w *cliio.Writer, bench string, p ccc.Pairing, cfg ccc.Config, traceBlocks int64, r ccc.Result) {
	w.Printf("benchmark   %s (%s scheme, %s organization)\n", bench, p.CacheScheme, p.Org)
	if p.ROMScheme != "" {
		w.Printf("ROM         %s scheme, decompressed on the miss path\n", p.ROMScheme)
	}
	w.Printf("cache       %d sets x %d ways x %dB = %dKB\n",
		cfg.Sets, cfg.Assoc, cfg.LineBytes, cfg.Sets*cfg.Assoc*cfg.LineBytes/1024)
	w.Printf("trace       %d blocks, %d ops, %d MOPs\n", traceBlocks, r.Ops, r.MOPs)
	w.Printf("cycles      %d\n", r.Cycles)
	w.Printf("IPC         %.4f (ideal %.4f)\n", r.IPC(), float64(r.Ops)/float64(r.MOPs))
	w.Printf("miss rate   %.2f%% of block fetches (%d lines fetched)\n",
		100*r.MissRate(), r.LinesFetched)
	w.Printf("mispredict  %.2f%%\n", 100*r.MispredictRate())
	if spec, ok := p.Org.Spec(); ok && spec.HasL0 {
		w.Printf("L0 buffer   %.2f%% hit rate (%d ops capacity)\n",
			100*float64(r.BufferHits)/float64(r.BlockFetches), cfg.L0Ops)
	}
	w.Printf("bus         %d beats, %d bytes, %d bit flips (%.2f flips/beat)\n",
		r.BusBeats, r.BytesFetched, r.BitFlips,
		float64(r.BitFlips)/float64(max64(r.BusBeats, 1)))
	w.Printf("ATB         %.2f%% hit rate\n", 100*r.ATBHitRate)
}

// runStream is the -stream path: events flow out of the stochastic
// walker in bounded chunks into the window-sharded simulator — the
// token-serialized replay by default, the checkpointed speculative
// scheduler with spec — so the horizon never materializes. With check
// it replays the identical seed through the sequential incremental path
// and the analytical oracle and requires every counter bit-identical
// across all three.
func runStream(w *cliio.Writer, c *ccc.Compiled, p ccc.Pairing, cfg ccc.Config,
	blocks int, ops int64, shards int, spec, check bool, bench string) error {
	mkStream := func() (ccc.Stream, error) {
		if ops > 0 {
			return c.StreamTraceOps(ops, 0)
		}
		return c.StreamTrace(blocks, 0)
	}

	before := ccc.MemSnapshot()
	start := time.Now()
	sim, err := c.SimFor(p, cfg)
	if err != nil {
		return err
	}
	st, err := mkStream()
	if err != nil {
		return err
	}
	var r ccc.Result
	var stats ccc.SpecStats
	if spec {
		r, stats, err = ccc.RunShardedSpec(sim, st, shards)
	} else {
		r, err = ccc.RunSharded(sim, st, shards)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	after := ccc.MemSnapshot()

	printMetrics(w, bench, p, cfg, r.BlockFetches, r)
	mops := float64(r.Ops) / 1e6 / elapsed.Seconds()
	w.Printf("streamed    %d shard(s), %.1f Mops/s, heap sys %d MB (was %d MB)\n",
		effectiveShards(shards), mops, after.HeapSys>>20, before.HeapSys>>20)
	if spec {
		w.Printf("speculative %d windows, %d verified, %d retried (%.2f%% retry rate)\n",
			stats.Windows, stats.Hits, stats.Retries, 100*stats.RetryRate())
	}

	if !check {
		return w.Err()
	}

	// Sequential incremental replay of the same seed must agree exactly.
	seqSim, err := c.SimFor(p, cfg)
	if err != nil {
		return err
	}
	st2, err := mkStream()
	if err != nil {
		return err
	}
	seq, err := seqSim.RunStream(st2)
	if err != nil {
		return err
	}
	if seq != r {
		w.Printf("sharded:    %+v\nsequential: %+v\n", r, seq)
		return errors.Join(
			fmt.Errorf("window-sharded result diverges from sequential incremental replay"),
			w.Err())
	}

	// The oracle's streaming face recomputes the counters analytically.
	im, err := c.Image(p.CacheScheme)
	if err != nil {
		return err
	}
	var rom *ccc.Image
	if p.ROMScheme != "" {
		if rom, err = c.Image(p.ROMScheme); err != nil {
			return err
		}
	}
	st3, err := mkStream()
	if err != nil {
		return err
	}
	oracle, err := simcheck.ExpectedStream(p.Org, cfg, im, rom, c.Prog, st3)
	switch {
	case errors.Is(err, simcheck.ErrUnsupported):
		w.Printf("simcheck    sequential replay identical; oracle skipped (%v)\n", err)
		return w.Err()
	case err != nil:
		return err
	}
	if ms := simcheck.Diff(r, oracle); len(ms) > 0 {
		for _, m := range ms {
			w.Printf("oracle disagrees on %s: simulator %d, oracle %d\n", m.Field, m.Got, m.Want)
		}
		return errors.Join(
			fmt.Errorf("streaming oracle found %d mismatch(es)", len(ms)),
			w.Err())
	}
	w.Printf("simcheck    sequential replay and streaming oracle identical\n")
	return w.Err()
}

// effectiveShards echoes the worker count RunSharded resolves for its
// report line.
func effectiveShards(shards int) int {
	if shards <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return shards
}

// runSweep fans the pairing's default geometry x predictor grid out over
// the driver's worker pool and reports every point.
func runSweep(out io.Writer, bench string, p ccc.Pairing, blocks, par int, jsonOut bool) error {
	w := cliio.New(out)
	points := ccc.DefaultSweepPoints(p)
	if len(points) == 0 {
		return fmt.Errorf("no sweep points for pairing %s", p.Name)
	}
	drv := ccc.NewDriver(par)
	s := ccc.NewSuiteWithDriver(ccc.Options{Benchmarks: []string{bench}, TraceBlocks: blocks}, drv)
	rows, err := s.GeometrySweep(bench, points)
	if err != nil {
		return err
	}
	if jsonOut {
		data, err := ccc.SweepJSON(rows)
		if err != nil {
			return err
		}
		_, err = out.Write(data)
		return err
	}
	w.Print(ccc.SweepTable(rows).Render())
	w.Printf("%d points\n", len(rows))
	return w.Err()
}

// pairingNames lists the registered pairing labels for flag help and
// error messages.
func pairingNames() string {
	var names []string
	for _, p := range ccc.Pairings() {
		names = append(names, strings.ToLower(p.Name))
	}
	return strings.Join(names, ", ")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
