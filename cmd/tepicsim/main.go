// Command tepicsim runs one trace-driven IFetch simulation: a benchmark,
// an organization (base / compressed / tailored / codepack), and a cache
// geometry, reporting the paper's metrics (delivered IPC, miss and
// misprediction rates, L0 buffer behaviour, bus traffic and bit flips).
//
// Usage:
//
//	tepicsim -bench vortex -org compressed
//	tepicsim -bench gcc -org base -sets 512 -assoc 4
//	tepicsim -bench compress -org compressed -l0 64 -blocks 1000000
//	tepicsim -bench go -org base -predictor gshare
//	tepicsim -bench vortex -org codepack
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	ccc "repro"
	"repro/internal/cache"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the tool against args, writing to out (separated from main
// for testing).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tepicsim", flag.ContinueOnError)
	bench := fs.String("bench", "compress", "benchmark name")
	orgName := fs.String("org", "base", "organization: base, compressed, tailored or codepack")
	blocks := fs.Int("blocks", 0, "trace length in blocks (0 = profile default)")
	sets := fs.Int("sets", 0, "cache sets (0 = paper default)")
	assoc := fs.Int("assoc", 0, "cache associativity (0 = paper default)")
	line := fs.Int("line", 0, "line bytes (0 = paper default)")
	l0 := fs.Int("l0", 0, "L0 buffer ops, compressed only (0 = paper default)")
	predictor := fs.String("predictor", "", "direction predictor: bimodal, gshare or pas")
	perfect := fs.Bool("perfect-prediction", false, "disable the next-block predictor (ablation)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var org ccc.Org
	switch strings.ToLower(*orgName) {
	case "base":
		org = ccc.OrgBase
	case "compressed":
		org = ccc.OrgCompressed
	case "tailored":
		org = ccc.OrgTailored
	case "codepack":
		org = cache.OrgCodePack
	default:
		return fmt.Errorf("unknown organization %q", *orgName)
	}
	scheme := map[ccc.Org]string{
		ccc.OrgBase: "base", ccc.OrgCompressed: "full",
		ccc.OrgTailored: "tailored", cache.OrgCodePack: "base",
	}[org]

	c, err := ccc.CompileBenchmark(*bench)
	if err != nil {
		return err
	}
	im, err := c.Image(scheme)
	if err != nil {
		return err
	}
	tr, err := c.Trace(*blocks)
	if err != nil {
		return err
	}

	cfg := ccc.DefaultConfig(org)
	if *sets > 0 {
		cfg.Sets = *sets
	}
	if *assoc > 0 {
		cfg.Assoc = *assoc
	}
	if *line > 0 {
		cfg.LineBytes = *line
	}
	if *l0 > 0 {
		cfg.L0Ops = *l0
	}
	cfg.Predictor = *predictor
	cfg.PerfectPrediction = *perfect

	var sim *cache.Sim
	if org == cache.OrgCodePack {
		rom, err := c.Image("byte")
		if err != nil {
			return err
		}
		if sim, err = cache.NewCodePackSim(cfg, im, rom, c.Prog); err != nil {
			return err
		}
	} else if sim, err = ccc.NewSim(org, cfg, im, c.Prog); err != nil {
		return err
	}
	r := sim.Run(tr)

	fmt.Fprintf(out, "benchmark   %s (%s scheme, %s organization)\n", *bench, scheme, org)
	fmt.Fprintf(out, "cache       %d sets x %d ways x %dB = %dKB\n",
		cfg.Sets, cfg.Assoc, cfg.LineBytes, cfg.Sets*cfg.Assoc*cfg.LineBytes/1024)
	fmt.Fprintf(out, "trace       %d blocks, %d ops, %d MOPs\n", tr.Len(), r.Ops, r.MOPs)
	fmt.Fprintf(out, "cycles      %d\n", r.Cycles)
	fmt.Fprintf(out, "IPC         %.4f (ideal %.4f)\n", r.IPC(), float64(r.Ops)/float64(r.MOPs))
	fmt.Fprintf(out, "miss rate   %.2f%% of block fetches (%d lines fetched)\n",
		100*r.MissRate(), r.LinesFetched)
	fmt.Fprintf(out, "mispredict  %.2f%%\n", 100*r.MispredictRate())
	if org == ccc.OrgCompressed {
		fmt.Fprintf(out, "L0 buffer   %.2f%% hit rate (%d ops capacity)\n",
			100*float64(r.BufferHits)/float64(r.BlockFetches), cfg.L0Ops)
	}
	fmt.Fprintf(out, "bus         %d beats, %d bytes, %d bit flips (%.2f flips/beat)\n",
		r.BusBeats, r.BytesFetched, r.BitFlips,
		float64(r.BitFlips)/float64(max64(r.BusBeats, 1)))
	fmt.Fprintf(out, "ATB         %.2f%% hit rate\n", 100*r.ATBHitRate)
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
