// Command tepicsim runs trace-driven IFetch simulations: a benchmark, a
// registered (encoding, organization) pairing and a cache geometry,
// reporting the paper's metrics (delivered IPC, miss and misprediction
// rates, L0 buffer behaviour, bus traffic and bit flips). With -check
// the point is re-verified by the simulation oracle (internal/simcheck):
// an analytical recomputation of the counters plus metamorphic and
// fault-injection checks, failing the run on any finding. With -sweep it
// fans a registry-driven geometry × predictor grid out over the
// compilation driver's worker pool instead of running one point.
//
// Usage:
//
//	tepicsim -bench vortex -org compressed
//	tepicsim -bench gcc -org base -sets 512 -assoc 4
//	tepicsim -bench compress -org compressed -l0 64 -blocks 1000000
//	tepicsim -bench go -org base -predictor gshare
//	tepicsim -bench vortex -org codepack
//	tepicsim -bench vortex -org compressed -check
//	tepicsim -bench gcc -org base -sweep
//	tepicsim -bench gcc -org compressed -sweep -json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	ccc "repro"
	"repro/internal/cliio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the tool against args, writing to out (separated from main
// for testing).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tepicsim", flag.ContinueOnError)
	bench := fs.String("bench", "compress", "benchmark name")
	orgName := fs.String("org", "base", "pairing: "+pairingNames())
	blocks := fs.Int("blocks", 0, "trace length in blocks (0 = profile default)")
	sets := fs.Int("sets", 0, "cache sets (0 = paper default)")
	assoc := fs.Int("assoc", 0, "cache associativity (0 = paper default)")
	line := fs.Int("line", 0, "line bytes (0 = paper default)")
	l0 := fs.Int("l0", 0, "L0 buffer ops, L0 organizations only (0 = paper default)")
	predictor := fs.String("predictor", "", "direction predictor: bimodal, gshare or pas")
	perfect := fs.Bool("perfect-prediction", false, "disable the next-block predictor (ablation)")
	check := fs.Bool("check", false, "run the simulation oracle after the run (differential, metamorphic and fault checks); non-zero exit on findings")
	sweep := fs.Bool("sweep", false, "run the registry-driven geometry x predictor sweep")
	jsonOut := fs.Bool("json", false, "with -sweep: emit the report as JSON")
	par := fs.Int("par", 0, "with -sweep: worker-pool width (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := cliio.New(out)

	p, ok := ccc.PairingByName(*orgName)
	if !ok {
		return fmt.Errorf("unknown organization %q (have %s)", *orgName, pairingNames())
	}

	if *sweep {
		return runSweep(out, *bench, p, *blocks, *par, *jsonOut)
	}

	c, err := ccc.CompileBenchmark(*bench)
	if err != nil {
		return err
	}
	tr, err := c.Trace(*blocks)
	if err != nil {
		return err
	}

	cfg := ccc.DefaultConfig(p.Org)
	if *sets > 0 {
		cfg.Sets = *sets
	}
	if *assoc > 0 {
		cfg.Assoc = *assoc
	}
	if *line > 0 {
		cfg.LineBytes = *line
	}
	if *l0 > 0 {
		cfg.L0Ops = *l0
	}
	if cfg.Predictor, err = ccc.ParsePredictor(*predictor); err != nil {
		return err
	}
	cfg.PerfectPrediction = *perfect

	sim, err := c.SimFor(p, cfg)
	if err != nil {
		return err
	}
	r, err := sim.Run(tr)
	if err != nil {
		return err
	}

	w.Printf("benchmark   %s (%s scheme, %s organization)\n", *bench, p.CacheScheme, p.Org)
	if p.ROMScheme != "" {
		w.Printf("ROM         %s scheme, decompressed on the miss path\n", p.ROMScheme)
	}
	w.Printf("cache       %d sets x %d ways x %dB = %dKB\n",
		cfg.Sets, cfg.Assoc, cfg.LineBytes, cfg.Sets*cfg.Assoc*cfg.LineBytes/1024)
	w.Printf("trace       %d blocks, %d ops, %d MOPs\n", tr.Len(), r.Ops, r.MOPs)
	w.Printf("cycles      %d\n", r.Cycles)
	w.Printf("IPC         %.4f (ideal %.4f)\n", r.IPC(), float64(r.Ops)/float64(r.MOPs))
	w.Printf("miss rate   %.2f%% of block fetches (%d lines fetched)\n",
		100*r.MissRate(), r.LinesFetched)
	w.Printf("mispredict  %.2f%%\n", 100*r.MispredictRate())
	if spec, ok := p.Org.Spec(); ok && spec.HasL0 {
		w.Printf("L0 buffer   %.2f%% hit rate (%d ops capacity)\n",
			100*float64(r.BufferHits)/float64(r.BlockFetches), cfg.L0Ops)
	}
	w.Printf("bus         %d beats, %d bytes, %d bit flips (%.2f flips/beat)\n",
		r.BusBeats, r.BytesFetched, r.BitFlips,
		float64(r.BitFlips)/float64(max64(r.BusBeats, 1)))
	w.Printf("ATB         %.2f%% hit rate\n", 100*r.ATBHitRate)
	if *check {
		rep, err := c.CheckSim(p, cfg, tr)
		if err != nil {
			return err
		}
		if !rep.OK() {
			if err := rep.WriteText(out); err != nil {
				return err
			}
			return fmt.Errorf("simulation checks found %d error(s)", rep.Errors())
		}
		w.Printf("simcheck    oracle, invariants and fault matrix clean (%d warning(s))\n",
			rep.Warnings())
	}
	return w.Err()
}

// runSweep fans the pairing's default geometry x predictor grid out over
// the driver's worker pool and reports every point.
func runSweep(out io.Writer, bench string, p ccc.Pairing, blocks, par int, jsonOut bool) error {
	w := cliio.New(out)
	points := ccc.DefaultSweepPoints(p)
	if len(points) == 0 {
		return fmt.Errorf("no sweep points for pairing %s", p.Name)
	}
	drv := ccc.NewDriver(par)
	s := ccc.NewSuiteWithDriver(ccc.Options{Benchmarks: []string{bench}, TraceBlocks: blocks}, drv)
	rows, err := s.GeometrySweep(bench, points)
	if err != nil {
		return err
	}
	if jsonOut {
		data, err := ccc.SweepJSON(rows)
		if err != nil {
			return err
		}
		_, err = out.Write(data)
		return err
	}
	w.Print(ccc.SweepTable(rows).Render())
	w.Printf("%d points\n", len(rows))
	return w.Err()
}

// pairingNames lists the registered pairing labels for flag help and
// error messages.
func pairingNames() string {
	var names []string
	for _, p := range ccc.Pairings() {
		names = append(names, strings.ToLower(p.Name))
	}
	return strings.Join(names, ", ")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
