package main

import (
	"strings"
	"testing"
)

func simOut(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(append(args, "-blocks", "20000"), &sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRunBase(t *testing.T) {
	out := simOut(t, "-bench", "compress", "-org", "base")
	for _, want := range []string{"Base organization", "IPC", "miss rate", "ATB"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "20KB") {
		t.Errorf("base cache should be 20KB effective:\n%s", out)
	}
}

func TestRunCompressedWithL0(t *testing.T) {
	out := simOut(t, "-bench", "compress", "-org", "compressed", "-l0", "64")
	if !strings.Contains(out, "L0 buffer") || !strings.Contains(out, "64 ops capacity") {
		t.Errorf("L0 report missing:\n%s", out)
	}
	if !strings.Contains(out, "16KB") {
		t.Errorf("compressed cache should be 16KB:\n%s", out)
	}
}

func TestRunCodePack(t *testing.T) {
	out := simOut(t, "-bench", "compress", "-org", "codepack")
	if !strings.Contains(out, "CodePack organization") {
		t.Errorf("codepack label missing:\n%s", out)
	}
}

func TestRunPredictorAndGeometry(t *testing.T) {
	out := simOut(t, "-bench", "go", "-org", "base", "-predictor", "gshare",
		"-sets", "128", "-assoc", "4")
	if !strings.Contains(out, "128 sets x 4 ways") {
		t.Errorf("geometry override ignored:\n%s", out)
	}
}

func TestRunPerfectPrediction(t *testing.T) {
	out := simOut(t, "-bench", "compress", "-org", "tailored", "-perfect-prediction")
	if !strings.Contains(out, "mispredict  0.00%") {
		t.Errorf("perfect prediction not reflected:\n%s", out)
	}
}

func TestRunWithCheck(t *testing.T) {
	out := simOut(t, "-bench", "compress", "-org", "compressed", "-check")
	if !strings.Contains(out, "simcheck") || !strings.Contains(out, "clean") {
		t.Errorf("-check report missing:\n%s", out)
	}
}

func TestRunUnknownOrg(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-org", "nonesuch"}, &sb); err == nil {
		t.Error("accepted unknown organization")
	}
}

func TestRunStreamChecked(t *testing.T) {
	out := simOut(t, "-bench", "compress", "-org", "compressed",
		"-stream", "-simshards", "2", "-check")
	if !strings.Contains(out, "streamed") || !strings.Contains(out, "2 shard(s)") {
		t.Errorf("stream report missing:\n%s", out)
	}
	if !strings.Contains(out, "oracle identical") {
		t.Errorf("stream -check report missing:\n%s", out)
	}
}

func TestRunStreamOpsBound(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "compress", "-org", "base",
		"-stream", "-ops", "50000"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "streamed") {
		t.Errorf("stream report missing:\n%s", sb.String())
	}
}

func TestRunStreamFlagMisuse(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "compress", "-org", "base", "-ops", "1000"},
		{"-bench", "compress", "-org", "base", "-simshards", "2"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("accepted %v without -stream", args)
		}
	}
}
