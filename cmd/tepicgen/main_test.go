package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"compress", "gcc", "vortex"} {
		if !strings.Contains(out, name) {
			t.Errorf("list output missing %q", name)
		}
	}
}

func TestRunStatsAndDisasm(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "compress", "-disasm", "2", "-blocks", "5000"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"benchmark compress", "scheduled:", "dynamic:", "block 0", "[t]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDOT(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "compress", "-dot"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "digraph") || !strings.Contains(out, "cluster_0") {
		t.Errorf("DOT output malformed:\n%.200s", out)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "nonesuch"}, &sb); err == nil {
		t.Error("accepted unknown benchmark")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Error("accepted unknown flag")
	}
}
