// Command tepicgen generates and inspects the synthetic SPECint95-class
// benchmark programs: static statistics, dynamic trace characteristics and
// optional disassembly — the stand-in for the paper's LEGO+SPEC toolchain
// front end.
//
// Usage:
//
//	tepicgen -bench gcc -stats
//	tepicgen -bench compress -disasm 3
//	tepicgen -list
package main

import (
	"flag"
	"io"
	"log"
	"os"

	ccc "repro"
	"repro/internal/cliio"
	"repro/internal/ir"
	"repro/internal/isa"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the tool against args, writing to out (separated from main
// for testing).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tepicgen", flag.ContinueOnError)
	bench := fs.String("bench", "compress", "benchmark name")
	list := fs.Bool("list", false, "list available benchmarks and exit")
	stats := fs.Bool("stats", true, "print static and dynamic statistics")
	disasm := fs.Int("disasm", 0, "disassemble the first N scheduled blocks")
	blocks := fs.Int("blocks", 100000, "dynamic trace length for statistics")
	dot := fs.Bool("dot", false, "emit the control-flow graph in Graphviz DOT form and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := cliio.New(out)

	if *list {
		for _, n := range ccc.Benchmarks {
			p, _ := ccc.ProfileFor(n)
			w.Printf("%-9s funcs=%-4d phases=%-3d seed=%d\n", n, p.Funcs, p.Phases, p.Seed)
		}
		return w.Err()
	}

	c, err := ccc.CompileBenchmark(*bench)
	if err != nil {
		return err
	}

	if *dot {
		return c.IR.WriteDOT(out)
	}

	if *stats {
		s := ir.Collect(c.IR)
		w.Printf("benchmark %s\n", *bench)
		w.Printf("  static: %s\n", s.String())
		w.Printf("  scheduled: %d MOPs, density %.2f ops/MOP\n",
			c.Prog.TotalMOPs(), c.Prog.Density())
		w.Printf("  regalloc: %d/%d/%d regs used (gpr/fpr/pred), %d steals\n",
			c.Alloc.GPRUsed, c.Alloc.FPRUsed, c.Alloc.PredUsed, c.Alloc.Steals)
		base, err := c.Image("base")
		if err != nil {
			return err
		}
		w.Printf("  baseline image: %d bytes\n", base.CodeBytes)

		tr, err := c.Trace(*blocks)
		if err != nil {
			return err
		}
		fp := tr.Footprint(len(c.Prog.Blocks))
		w.Printf("  dynamic: %d blocks, %d ops, footprint %d blocks (%.0f%% of static)\n",
			tr.Len(), tr.Ops, fp, 100*float64(fp)/float64(len(c.Prog.Blocks)))
	}

	if *disasm > 0 {
		for i := 0; i < *disasm && i < len(c.Prog.Blocks); i++ {
			b := c.Prog.Blocks[i]
			w.Printf("\nblock %d (fn %d, %d MOPs, taken->%d fall->%d):\n",
				b.ID, b.Fn, b.NumMOPs(), b.TakenTarget, b.FallTarget)
			for _, m := range b.MOPs {
				w.Println(isa.DisasmMOP(m))
			}
		}
	}
	return w.Err()
}
