// Command tepicd is the compression-as-a-service daemon: the whole
// compile → encode → lint → simulate pipeline behind a long-running
// HTTP/JSON API, backed by the concurrent compilation driver and its
// sharded, bounded, LRU-evicting artifact store. One process serves
// many clients; hot benchmark × scheme artifacts stay cached, cold ones
// rebuild on demand, and /v1/stats exposes the hit/miss/eviction
// counters live.
//
// Usage:
//
//	tepicd                              # listen on :8344
//	tepicd -addr 127.0.0.1:9000         # explicit listen address
//	tepicd -par 8                       # compilation worker-pool width
//	tepicd -shards 16 -cachecap 1024    # artifact store geometry
//	tepicd -maxbody 65536               # request body cap in bytes
//
// Endpoints: POST /v1/compile, /v1/encode, /v1/decode, /v1/lint,
// /v1/simulate; GET /v1/stats, /healthz. See internal/serve.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliio"
	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// shutdownGrace bounds how long an interrupted daemon waits for
// in-flight requests before the listener is torn down.
const shutdownGrace = 5 * time.Second

// run boots the daemon and blocks until ctx is cancelled or the
// listener fails (separated from main for testing).
//
//tepic:pool
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tepicd", flag.ContinueOnError)
	addr := fs.String("addr", ":8344", "listen address")
	par := fs.Int("par", 0, "compilation worker-pool width (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "artifact store shard count (0 = default)")
	cachecap := fs.Int("cachecap", 4096, "artifact store capacity in entries (0 = unbounded)")
	maxbody := fs.Int64("maxbody", serve.DefaultMaxBody, "request body cap in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := serve.New(serve.Config{
		Driver:  core.NewDriverWithCache(*par, *shards, *cachecap),
		MaxBody: *maxbody,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	w := cliio.New(out)
	w.Printf("tepicd listening on %s\n", ln.Addr())
	if err := w.Err(); err != nil {
		if cerr := ln.Close(); cerr != nil {
			return fmt.Errorf("%w (and closing listener: %v)", err, cerr)
		}
		return err
	}

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		// Serve has returned http.ErrServerClosed by now; drain it.
		<-errc
		w.Println("tepicd shut down")
		return w.Err()
	case err := <-errc:
		return err
	}
}
