package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer guards the daemon's output stream: run writes from the
// test's goroutine while the test polls for the listen line.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonLifecycle boots the daemon on an ephemeral port, serves a
// health probe and one real encode, then shuts down cleanly on context
// cancellation.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-par", "2", "-cachecap", "64"}, out)
	}()

	// Wait for the listen line and parse the bound address from it.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "tepicd listening on "); ok {
				addr = strings.TrimSpace(rest)
			}
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v (output %q)", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/encode", "application/json",
		strings.NewReader(`{"benchmark":"compress","scheme":"full"}`))
	if err != nil {
		t.Fatal(err)
	}
	var enc struct {
		Ratio float64 `json:"ratio"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&enc); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("encode status = %d, want 200", resp.StatusCode)
	}
	if enc.Ratio <= 0 || enc.Ratio >= 1 {
		t.Errorf("encode ratio = %v, want in (0, 1)", enc.Ratio)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after cancel")
	}
	if !strings.Contains(out.String(), "tepicd shut down") {
		t.Errorf("missing shutdown line in output %q", out.String())
	}
}

// TestDaemonBadFlags rejects unparseable flag sets without booting.
func TestDaemonBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-no-such-flag"}, &syncBuffer{})
	if err == nil {
		t.Fatal("bad flags accepted")
	}
}

// TestDaemonBadAddr surfaces listener failures as run's error.
func TestDaemonBadAddr(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "256.0.0.1:99999"}, &syncBuffer{})
	if err == nil {
		t.Fatal("bad address accepted")
	}
	if !strings.Contains(fmt.Sprint(err), "listen") {
		t.Errorf("error %v does not mention listen", err)
	}
}
