package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunCleanBenchmark(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "compress"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "compress:") || !strings.Contains(out, "0 error(s), 0 warning(s)") {
		t.Errorf("output incomplete:\n%s", out)
	}
}

func TestRunSingleSchemeHotLayout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "compress", "-scheme", "full", "-hot"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0 error(s)") {
		t.Errorf("hot-layout lint not clean:\n%s", sb.String())
	}
}

func TestRunSimChecks(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "compress", "-sim", "-simblocks", "5000"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0 error(s)") {
		t.Errorf("simulation checks not clean:\n%s", sb.String())
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "compress", "-scheme", "base", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	// Strip the leading "// compress" comment line, parse the envelope.
	out := sb.String()
	body := out[strings.Index(out, "\n")+1:]
	var rep struct {
		Errors int             `json:"errors"`
		Diags  json.RawMessage `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if rep.Errors != 0 {
		t.Errorf("errors on a clean pipeline: %s", out)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "nope"}, &sb); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
