// Command tepiclint is the pipeline verifier driver: it compiles a
// benchmark (or every benchmark), builds the requested schemes' encoding
// artifacts, and runs the static verifier (internal/verify) over the IR,
// the schedule, the code tables and the program images — LLVM's
// MachineVerifier recast for a compiler that owns the code image
// end-to-end. With -sim it also replays a trace through every registered
// (encoding, organization) pairing and runs the dynamic simulation
// checks of internal/simcheck: the analytical oracle diff, the
// metamorphic invariants and the fault-injection matrix. Exit status is
// nonzero when any invariant fails.
//
// Usage:
//
//	tepiclint -bench gcc
//	tepiclint -bench all -scheme tailored
//	tepiclint -bench compress -hot -json
//	tepiclint -bench go -sim
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	ccc "repro"
	"repro/internal/cliio"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/layout"
	"repro/internal/verify"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == errFindings {
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tepiclint:", err) //tepic:ignore-err best-effort stderr report before exit
		os.Exit(2)
	}
}

// errFindings distinguishes "the verifier found errors" (exit 1, already
// reported) from driver failures (exit 2).
var errFindings = fmt.Errorf("verifier reported errors")

// run executes the tool against args, writing to out (separated from main
// for testing).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tepiclint", flag.ContinueOnError)
	bench := fs.String("bench", "compress", "benchmark name, or \"all\"")
	scheme := fs.String("scheme", "", "verify only this scheme (default: every scheme)")
	hot := fs.Bool("hot", false, "additionally verify a trace-driven hot-layout image")
	sim := fs.Bool("sim", false, "additionally run the dynamic simulation checks (oracle, metamorphic invariants, fault matrix) over every registered pairing")
	simBlocks := fs.Int("simblocks", 20000, "with -sim: trace length in blocks (0 = profile default)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := cliio.New(out)

	benches := []string{*bench}
	if *bench == "all" {
		benches = ccc.Benchmarks
	}
	var schemes []string
	if *scheme != "" {
		schemes = []string{*scheme}
	}

	failed := false
	for _, name := range benches {
		rep, err := lintBenchmark(name, schemes, *hot, *sim, *simBlocks)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if *jsonOut {
			w.Printf("// %s\n", name)
			if err := rep.WriteJSON(out); err != nil {
				return err
			}
		} else {
			w.Printf("%s:\n", name)
			if err := rep.WriteText(out); err != nil {
				return err
			}
		}
		if !rep.OK() {
			failed = true
		}
	}
	if failed {
		return errFindings
	}
	return w.Err()
}

// lintBenchmark compiles one benchmark and verifies its pipeline; with
// hot set it also builds and verifies an image under the trace-driven
// hot layout (exercising the ordered-placement checks), and with sim
// set it runs the dynamic simulation checks of internal/simcheck over
// every registered pairing.
func lintBenchmark(name string, schemes []string, hot, sim bool, simBlocks int) (*verify.Report, error) {
	c, err := ccc.CompileBenchmark(name)
	if err != nil {
		return nil, err
	}
	rep, err := c.Lint(schemes)
	if err != nil {
		return nil, err
	}
	if hot {
		hotRep, err := lintHotLayout(c, schemes)
		if err != nil {
			return nil, err
		}
		rep.Merge(hotRep)
	}
	if sim {
		simRep, err := c.SimLint(simBlocks)
		if err != nil {
			return nil, err
		}
		rep.Merge(simRep)
	}
	rep.Sort()
	return rep, nil
}

// lintHotLayout rebuilds the verified schemes' images in trace-hotness
// order and runs the image pass with the explicit placement.
func lintHotLayout(c *core.Compiled, schemes []string) (*verify.Report, error) {
	if len(schemes) == 0 {
		schemes = ccc.SchemeNames()
	}
	tr, err := c.Trace(0)
	if err != nil {
		return nil, err
	}
	order, err := layout.FromTrace(c.Prog, tr)
	if err != nil {
		return nil, err
	}
	rep := &verify.Report{}
	for _, s := range schemes {
		enc, err := c.Encoder(s)
		if err != nil {
			return nil, err
		}
		im, err := image.BuildOrdered(c.Prog, enc, order)
		if err != nil {
			return nil, err
		}
		im.Scheme = s + "+hot"
		rep.Merge(verify.Image(im, c.Prog, enc, verify.ImageOpts{Order: order}))
	}
	return rep, nil
}
