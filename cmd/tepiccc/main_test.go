package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleScheme(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "compress", "-scheme", "full"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "full") || !strings.Contains(out, "round-trip verification") {
		t.Errorf("output incomplete:\n%s", out)
	}
}

func TestRunAllSchemesWithVerilog(t *testing.T) {
	dir := t.TempDir()
	vfile := filepath.Join(dir, "dec.v")
	var sb strings.Builder
	if err := run([]string{"-bench", "compress", "-all", "-verilog", vfile}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, scheme := range []string{"base", "byte", "stream_1", "tailored"} {
		if !strings.Contains(out, scheme) {
			t.Errorf("missing scheme %q in output", scheme)
		}
	}
	v, err := os.ReadFile(vfile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(v), "module tepic_compress_decoder") {
		t.Error("Verilog file lacks the decoder module")
	}
}

func TestRunSpeculate(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "compress", "-scheme", "tailored", "-speculate"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "speculation:") {
		t.Error("speculation summary missing")
	}
}

func TestRunAsmFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "kern.tasm")
	if err := os.WriteFile(src, []byte(`
func main
b0:
	ldi #5 -> r1
	ldi #0 -> r2
loop:
	add r2, r1 -> r2
	cmplt r2, r1 -> p1
	brct p1, loop ?0.1
end:
	ret
`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-asm", src, "-all", "-speculate"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "round-trip verification") {
		t.Errorf("asm compile incomplete:\n%s", out)
	}
	if err := run([]string{"-asm", filepath.Join(dir, "missing.tasm")}, &sb); err == nil {
		t.Error("accepted missing asm file")
	}
}

func TestRunHuffmanVerilog(t *testing.T) {
	dir := t.TempDir()
	vfile := filepath.Join(dir, "huff.v")
	var sb strings.Builder
	if err := run([]string{"-bench", "compress", "-scheme", "byte",
		"-huffman-verilog", vfile}, &sb); err != nil {
		t.Fatal(err)
	}
	v, err := os.ReadFile(vfile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(v), "module huff_byte_decoder") {
		t.Error("Huffman decoder module missing")
	}
	// The full scheme's dictionary exceeds the synthesis bound on larger
	// benchmarks; byte always fits. A scheme without tables must error.
	if err := run([]string{"-bench", "compress", "-scheme", "tailored",
		"-huffman-verilog", vfile}, &sb); err == nil {
		t.Error("accepted -huffman-verilog for a non-Huffman scheme")
	}
}

func TestRunUnknownScheme(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "compress", "-scheme", "nonesuch"}, &sb); err == nil {
		t.Error("accepted unknown scheme")
	}
}

func TestRunWithStats(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "compress", "-all", "-par", "2", "-stats"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"pipeline stages", "compile.schedule", "artifact cache:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithStaticVerify(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "compress", "-scheme", "full", "-verify"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0 error(s), 0 warning(s)") {
		t.Errorf("verifier summary missing:\n%s", sb.String())
	}
}
