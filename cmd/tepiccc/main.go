// Command tepiccc is the "compression compiler" driver: it takes a
// benchmark through scheduling, encodes it under a chosen scheme, reports
// image/ATT sizes and dictionary statistics, verifies the encoding
// round-trips, and (for the tailored ISA) emits the Verilog decoder —
// the paper's Figure 2 system-development flow in one command.
//
// Usage:
//
//	tepiccc -bench gcc -scheme full
//	tepiccc -bench compress -scheme tailored -verilog decoder.v
//	tepiccc -bench go -all -speculate
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	ccc "repro"
	"repro/internal/asm"
	"repro/internal/cliio"
	"repro/internal/core"
	"repro/internal/declogic"
	"repro/internal/sched"
	"repro/internal/scheme"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the tool against args, writing to out (separated from main
// for testing).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tepiccc", flag.ContinueOnError)
	bench := fs.String("bench", "compress", "benchmark name")
	asmFile := fs.String("asm", "", "compile this TINKER-style assembly file instead of a benchmark")
	schemeFlag := fs.String("scheme", "full", "encoding scheme")
	all := fs.Bool("all", false, "report every scheme")
	speculate := fs.Bool("speculate", false, "run the treegion-style speculative hoisting pass")
	verifyFlag := fs.Bool("verify", false, "run the static verifier over every stage and fail on errors")
	verilog := fs.String("verilog", "", "emit tailored decoder Verilog to this file")
	huffV := fs.String("huffman-verilog", "", "emit the chosen scheme's Huffman decoder Verilog to this file")
	par := fs.Int("par", 0, "compilation worker-pool width (0 = GOMAXPROCS)")
	statsFlag := fs.Bool("stats", false, "print pipeline stage timings and cache traffic")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := cliio.New(out)

	d := ccc.NewDriver(*par)
	var (
		c   *core.Compiled
		err error
	)
	switch {
	case *asmFile != "":
		src, rerr := os.ReadFile(*asmFile)
		if rerr != nil {
			return rerr
		}
		p, perr := asm.Parse(*asmFile, string(src))
		if perr != nil {
			return perr
		}
		if *speculate {
			var hoisted int
			if hoisted, err = sched.Speculate(p); err != nil {
				return err
			}
			w.Printf("speculation: %d ops hoisted\n", hoisted)
		}
		if c, err = core.ScheduleOnly(p); err == nil {
			d.Bind(c)
		}
	case *speculate:
		var hoisted int
		c, hoisted, err = core.CompileBenchmarkSpeculative(*bench)
		if err == nil {
			w.Printf("speculation: %d ops hoisted\n", hoisted)
			d.Bind(c)
		}
	default:
		c, err = d.CompileBenchmark(*bench)
	}
	if err != nil {
		return err
	}

	schemes := []string{*schemeFlag}
	if *all {
		schemes = ccc.SchemeNames()
	}

	// Fan the scheme builds out on the worker pool before the serial
	// report loop below reads them from the cache.
	if *all && *asmFile == "" && !*speculate {
		if _, err := d.BuildAll(ccc.CrossJobs([]string{*bench}, schemes)); err != nil {
			return err
		}
	}
	base, err := c.Image(scheme.BaseName)
	if err != nil {
		return err
	}
	w.Printf("%-10s %10s %8s %10s %8s  %s\n",
		"scheme", "code B", "of base", "ATT B", "total B", "decoder")
	for _, s := range schemes {
		im, err := c.Image(s)
		if err != nil {
			return err
		}
		enc, err := c.Encoder(s)
		if err != nil {
			return err
		}
		att := 0
		if im.ATT != nil {
			att = im.ATT.CompressedBytes
		}
		dec := "-"
		if tabs := enc.Tables(); len(tabs) > 0 {
			cx := declogic.ForTables(s, tabs)
			dec = fmt.Sprintf("n=%d k=%d log10T=%.2f", cx.N, cx.K, cx.Log10Transistors())
		} else if s == "tailored" {
			tl, err := c.Tailored()
			if err != nil {
				return err
			}
			dec = fmt.Sprintf("PLA %d entries", tl.DictionaryEntries())
		}
		w.Printf("%-10s %10d %7.1f%% %10d %8d  %s\n",
			s, im.CodeBytes, 100*im.Ratio(base), att, im.TotalBytes(), dec)
	}

	if err := c.Verify(); err != nil {
		return fmt.Errorf("round-trip verification FAILED: %w", err)
	}
	w.Println("\nround-trip verification: all built images decode back to the scheduled program")

	if *verifyFlag {
		rep, err := c.Lint(schemes)
		if err != nil {
			return err
		}
		if err := rep.WriteText(out); err != nil {
			return err
		}
		if !rep.OK() {
			return fmt.Errorf("static verification FAILED: %d error(s)", rep.Errors())
		}
	}

	if *verilog != "" {
		tl, err := c.Tailored()
		if err != nil {
			return err
		}
		module := "tepic_" + *bench + "_decoder"
		if *asmFile != "" {
			module = "tepic_custom_decoder"
		}
		if err := cliio.WriteFile(*verilog, func(f io.Writer) error {
			return tl.EmitVerilog(f, module)
		}); err != nil {
			return err
		}
		w.Printf("tailored decoder written to %s\n", *verilog)
	}

	if *huffV != "" {
		enc, err := c.Encoder(*schemeFlag)
		if err != nil {
			return err
		}
		tabs := enc.Tables()
		if len(tabs) == 0 {
			return fmt.Errorf("scheme %s has no Huffman tables", *schemeFlag)
		}
		if err := cliio.WriteFile(*huffV, func(f io.Writer) error {
			fw := cliio.New(f)
			for i, tab := range tabs {
				module := fmt.Sprintf("huff_%s_decoder", *schemeFlag)
				if len(tabs) > 1 {
					module = fmt.Sprintf("huff_%s_stream%d_decoder", *schemeFlag, i)
				}
				if err := tab.EmitVerilog(fw, module); err != nil {
					return err
				}
				fw.Println()
			}
			return fw.Err()
		}); err != nil {
			return err
		}
		w.Printf("Huffman decoder(s) written to %s\n", *huffV)
	}

	if *statsFlag {
		w.Println(d.Stats().Snapshot().Table("pipeline stages").Render())
		w.Printf("artifact cache: %d hits / %d misses (%.1f%% hit rate)\n",
			d.Stats().Counter("artifact.hit").Value(),
			d.Stats().Counter("artifact.miss").Value(),
			100*d.CacheHitRate())
	}
	return w.Err()
}
