// Command tepicvet runs the repo's own analyzer suite — the five
// invariants go vet cannot see: allocation-free //tepic:hotpath
// functions, sentinel-wrapped errors in the taxonomy packages,
// registry/corpus completeness, pool-scoped concurrency, and stable
// verifier check IDs. It exits non-zero when any finding survives, so
// CI runs it as a gate next to go vet and staticcheck.
//
// Usage:
//
//	tepicvet ./...
//	tepicvet -list
//	tepicvet ./internal/huffman ./internal/bitio
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/anz"
	"repro/internal/cliio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the checker against args, writing to out (separated from
// main for testing).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tepicvet", flag.ContinueOnError)
	list := fs.Bool("list", false, "print the analyzer catalog and exit")
	only := fs.String("only", "", "run a single analyzer by name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := cliio.New(out)

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			w.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return w.Err()
	}
	if *only != "" {
		var picked []*anz.Analyzer
		for _, a := range suite {
			if a.Name == *only {
				picked = append(picked, a)
			}
		}
		if len(picked) == 0 {
			return fmt.Errorf("tepicvet: no analyzer named %q (see -list)", *only)
		}
		suite = picked
	}

	patterns := fs.Args()
	wd, err := os.Getwd()
	if err != nil {
		return err
	}
	prog, err := anz.LoadPatterns(wd, patterns...)
	if err != nil {
		return err
	}
	findings, err := anz.Run(prog, suite)
	if err != nil {
		return err
	}
	for _, f := range findings {
		w.Println(f.String())
	}
	if n := len(findings); n > 0 {
		return fmt.Errorf("tepicvet: %d finding(s)", n)
	}
	return w.Err()
}
