package main

import (
	"strings"
	"testing"
)

func benchOut(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRunSingleFigure(t *testing.T) {
	out := benchOut(t, "-fig", "5", "-benchmarks", "compress")
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "compress") {
		t.Errorf("figure 5 output incomplete:\n%s", out)
	}
	if strings.Contains(out, "Figure 13") {
		t.Error("unrequested figure rendered")
	}
}

func TestRunFigure13Short(t *testing.T) {
	out := benchOut(t, "-fig", "13", "-benchmarks", "compress", "-blocks", "20000")
	for _, want := range []string{"Figure 13", "Ideal", "Compressed", "Tailored"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunSweeps(t *testing.T) {
	cases := map[string]string{
		"streams":     "Stream configuration exploration",
		"dict":        "dictionary",
		"speculation": "speculation study",
		"superblocks": "Complex fetch units",
		"layout":      "code layout",
	}
	for sweep, want := range cases {
		out := benchOut(t, "-sweep", sweep, "-benchmarks", "compress", "-blocks", "20000")
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("sweep %s: missing %q:\n%s", sweep, want, out)
		}
	}
}

func TestRunPredictorSweep(t *testing.T) {
	out := benchOut(t, "-sweep", "predictors", "-benchmarks", "compress", "-blocks", "20000")
	for _, want := range []string{"bimodal", "gshare", "perfect"} {
		if !strings.Contains(out, want) {
			t.Errorf("predictor sweep missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "99"}, &sb); err == nil {
		t.Error("accepted unknown figure")
	}
	if err := run([]string{"-sweep", "nonesuch"}, &sb); err == nil {
		t.Error("accepted unknown sweep")
	}
	if err := run([]string{"-benchmarks", "nonesuch", "-fig", "5"}, &sb); err == nil {
		t.Error("accepted unknown benchmark")
	}
}
