package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchOut(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRunSingleFigure(t *testing.T) {
	out := benchOut(t, "-fig", "5", "-benchmarks", "compress")
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "compress") {
		t.Errorf("figure 5 output incomplete:\n%s", out)
	}
	if strings.Contains(out, "Figure 13") {
		t.Error("unrequested figure rendered")
	}
}

func TestRunFigure13Short(t *testing.T) {
	out := benchOut(t, "-fig", "13", "-benchmarks", "compress", "-blocks", "20000")
	for _, want := range []string{"Figure 13", "Ideal", "Compressed", "Tailored"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunSweeps(t *testing.T) {
	cases := map[string]string{
		"streams":     "Stream configuration exploration",
		"dict":        "dictionary",
		"speculation": "speculation study",
		"superblocks": "Complex fetch units",
		"layout":      "code layout",
	}
	for sweep, want := range cases {
		out := benchOut(t, "-sweep", sweep, "-benchmarks", "compress", "-blocks", "20000")
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("sweep %s: missing %q:\n%s", sweep, want, out)
		}
	}
}

func TestRunPredictorSweep(t *testing.T) {
	out := benchOut(t, "-sweep", "predictors", "-benchmarks", "compress", "-blocks", "20000")
	for _, want := range []string{"bimodal", "gshare", "perfect"} {
		if !strings.Contains(out, want) {
			t.Errorf("predictor sweep missing %q", want)
		}
	}
}

func TestRunJSONReportAndCheck(t *testing.T) {
	dir := t.TempDir()
	jsonFile := filepath.Join(dir, "BENCH_fig5.json")
	out := benchOut(t, "-fig", "5", "-benchmarks", "compress", "-par", "2",
		"-json", jsonFile, "-check", "-warm")
	if !strings.Contains(out, "decode check: all built images decode back") {
		t.Errorf("decode check summary missing:\n%s", out)
	}
	if !strings.Contains(out, "warm re-run:") {
		t.Errorf("warm re-run summary missing:\n%s", out)
	}
	data, err := os.ReadFile(jsonFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Tool != "tepicbench" || rep.Figure != "5" || rep.Parallelism != 2 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0] != "compress" {
		t.Errorf("report benchmarks = %v", rep.Benchmarks)
	}
	if rep.WallMS <= 0 || rep.BytesBase <= 0 || rep.BytesEncoded <= 0 || rep.BytesPerSec <= 0 {
		t.Errorf("report missing throughput data: %+v", rep)
	}
	if len(rep.Stages) == 0 {
		t.Error("report has no stage timings")
	}
	if rep.CacheMisses == 0 {
		t.Error("cold run recorded no cache misses")
	}
	if rep.WarmHitRate < 0.9 {
		t.Errorf("warm hit rate %.2f; want >= 0.9", rep.WarmHitRate)
	}
	if !rep.DecodeChecked || !rep.DecodeOK {
		t.Errorf("decode check not recorded: %+v", rep)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "99"}, &sb); err == nil {
		t.Error("accepted unknown figure")
	}
	if err := run([]string{"-sweep", "nonesuch"}, &sb); err == nil {
		t.Error("accepted unknown sweep")
	}
	if err := run([]string{"-benchmarks", "nonesuch", "-fig", "5"}, &sb); err == nil {
		t.Error("accepted unknown benchmark")
	}
}

func TestRunServeMode(t *testing.T) {
	dir := t.TempDir()
	jsonFile := filepath.Join(dir, "BENCH_serve.json")
	out := benchOut(t, "-serve", "-benchmarks", "compress,go", "-par", "2",
		"-serveworkers", "2", "-serverequests", "6", "-check",
		"-json", jsonFile, "-servemin", "0.1")
	for _, want := range []string{
		"service benchmark: in-process tepicd on http://127.0.0.1:",
		"fleet: 2 workers x 6 requests",
		"decode audit:",
		"bit-identical to the direct pipeline",
		"artifact store:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("serve output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep serveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("serve report is not valid JSON: %v", err)
	}
	if rep.Tool != "tepicbench" || rep.Mode != "serve" {
		t.Errorf("report header wrong: %+v", rep)
	}
	if rep.Fleet == nil || rep.Fleet.Requests != 12 || rep.Fleet.Errors != 0 {
		t.Errorf("fleet tally wrong: %+v", rep.Fleet)
	}
	if rep.Fleet.RequestsPerSec <= 0 || rep.Fleet.P99MS < rep.Fleet.P50MS {
		t.Errorf("fleet latency stats wrong: %+v", rep.Fleet)
	}
	if rep.CacheHits+rep.CacheMisses == 0 || rep.CacheHitRate <= 0 {
		t.Errorf("artifact store traffic missing: %+v", rep)
	}
	if !rep.DecodeChecked || !rep.DecodeOK || rep.DecodeAudited == 0 {
		t.Errorf("decode audit not recorded: %+v", rep)
	}
}

func TestRunStreamMode(t *testing.T) {
	dir := t.TempDir()
	jsonFile := filepath.Join(dir, "BENCH_stream.json")
	out := benchOut(t, "-stream", "-benchmarks", "compress", "-ops", "2000000",
		"-simshards", "2", "-check", "-json", jsonFile,
		"-streammin", "0.1", "-streammaxmb", "512")
	for _, want := range []string{
		"stream benchmark compress/Compressed",
		"sharded == sequential: every counter identical",
		"Mops/s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stream output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep streamReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("stream report is not valid JSON: %v", err)
	}
	if rep.Tool != "tepicbench" || rep.Mode != "stream" || rep.Shards != 2 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if rep.Ops < 2000000 || rep.Events <= 0 || rep.Cycles <= 0 || rep.MopsPerSec <= 0 {
		t.Errorf("report missing run data: %+v", rep)
	}
	if !rep.SeqIdentical {
		t.Errorf("sharded run diverged from sequential: %+v", rep)
	}
	if !rep.OracleChecked || !rep.OracleOK {
		t.Errorf("oracle check not recorded: %+v", rep)
	}
}

func TestRunStreamModeRatchets(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-stream", "-benchmarks", "compress", "-ops", "100000",
		"-streammin", "1e12"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "below minimum") {
		t.Errorf("throughput ratchet did not trip: %v", err)
	}
	if err := run([]string{"-stream", "-streampairing", "warp-drive"}, &sb); err == nil {
		t.Error("accepted unknown pairing")
	}
}

func TestRunServeModeRatchet(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-serve", "-benchmarks", "compress",
		"-serveworkers", "1", "-serverequests", "2", "-servemin", "1e12"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "below minimum") {
		t.Errorf("throughput ratchet did not trip: %v", err)
	}
	if err := run([]string{"-serve", "-benchmarks", "compress", "-servemix", "teleport"}, &sb); err == nil {
		t.Error("accepted unknown mix endpoint")
	}
}
