// Command tepicbench regenerates the paper's evaluation: every figure's
// table in one run, plus the design-space sweeps and the related/future
// work studies behind them. Builds fan out on the concurrent compilation
// driver; -json exports a machine-readable benchmark report (stage
// latencies, cache traffic, throughput) and -check decode-verifies every
// built image and re-derives every simulation's counters through the
// analytical oracle (internal/simcheck).
//
// Usage:
//
//	tepicbench                      # all figures, full-length traces
//	tepicbench -fig 13              # one figure
//	tepicbench -blocks 100000       # shorter traces (faster)
//	tepicbench -benchmarks gcc,go   # subset
//	tepicbench -par 8               # worker-pool width
//	tepicbench -json BENCH_all.json # machine-readable report
//	tepicbench -check               # fail on any decode mismatch or oracle finding
//	tepicbench -warm                # re-run on the warm cache, report hit rate
//	tepicbench -sweep streams       # the six stream configurations
//	tepicbench -sweep related       # §6 comparison (CodePack, Thumb-style)
//	tepicbench -sweep predictors    # §7 predictor study
//	tepicbench -sweep superblocks   # §7 complex fetch units
//	tepicbench -sweep speculation   # treegion-style hoisting study
//	tepicbench -sweep dict          # §7 beyond-Huffman dictionary scheme
//	tepicbench -stream -ops 100000000 -simshards 4 -json BENCH_stream.json
//	tepicbench -stream -streammin 10 -streammaxmb 256   # gated streaming run
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	ccc "repro"
	"repro/internal/cliio"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/superblock"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// benchReport is the machine-readable run summary written by -json: one
// JSON object per tepicbench invocation, stable field names, suitable
// for CI artifact upload and regression tracking.
type benchReport struct {
	Tool          string                         `json:"tool"`
	Figure        string                         `json:"figure"`
	Benchmarks    []string                       `json:"benchmarks"`
	Parallelism   int                            `json:"parallelism"`
	WallMS        float64                        `json:"wall_ms"`
	Stages        map[string]stats.TimerSnapshot `json:"stages"`
	CacheHits     int64                          `json:"cache_hits"`
	CacheMisses   int64                          `json:"cache_misses"`
	CacheHitRate  float64                        `json:"cache_hit_rate"`
	WarmHitRate   float64                        `json:"warm_hit_rate,omitempty"`
	BytesBase     int64                          `json:"bytes_base"`
	BytesEncoded  int64                          `json:"bytes_encoded"`
	BytesPerSec   float64                        `json:"bytes_per_sec"`
	DecodeChecked bool                           `json:"decode_checked"`
	DecodeOK      bool                           `json:"decode_ok"`
	// SimChecked/SimOK report the simulation oracle pass (-check): the
	// differential, metamorphic and fault-injection checks of
	// internal/simcheck over every benchmark × registered pairing.
	SimChecked bool `json:"sim_checked"`
	SimOK      bool `json:"sim_ok"`
	// DecodeThroughput is the measured entropy-decode rate per Huffman
	// scheme, aggregated over every benchmark in the run: the bit-by-bit
	// reference oracle, the table-driven fast decoder and the
	// lane-parallel batch kernel over identical symbol streams, with the
	// fast/ref and batch/ref speedups and the batch/fast lane gain.
	DecodeThroughput map[string]core.DecodeThroughput `json:"decode_throughput,omitempty"`
}

// decodeSchemes are the Huffman schemes whose decode throughput the
// report measures (every scheme with a fast/reference decoder pair).
var decodeSchemes = []string{"byte", "stream", "stream_1", "full"}

// run executes the tool against args, writing to out (separated from main
// for testing).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tepicbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 5, 7, 10, 13, 14 or all")
	blocks := fs.Int("blocks", 0, "trace length in blocks (0 = profile defaults, 400k)")
	benchCSV := fs.String("benchmarks", "", "comma-separated benchmark subset")
	sweep := fs.String("sweep", "", "extra study: streams, related, dict, predictors, superblocks, speculation, layout")
	par := fs.Int("par", 0, "compilation worker-pool width (0 = GOMAXPROCS)")
	jsonPath := fs.String("json", "", "write a machine-readable benchmark report to this file")
	check := fs.Bool("check", false, "decode-verify every built image and run the simulation oracle; non-zero exit on findings")
	warm := fs.Bool("warm", false, "re-run the workload on the warm cache and report the hit rate")
	decodeMin := fs.Float64("decodemin", 0,
		"minimum batch/reference decode speedup on the full scheme; non-zero exit below it (0 = no check)")
	laneMin := fs.Float64("lanemin", 0,
		"minimum lane-kernel gain (batch/fast) on the stream scheme; non-zero exit below it (0 = no check)")
	serveMode := fs.Bool("serve", false,
		"service benchmark: boot an in-process tepicd and drive the zipf-skewed client fleet against it")
	serveWorkers := fs.Int("serveworkers", 4, "client fleet goroutine count (-serve)")
	serveRequests := fs.Int("serverequests", 25, "requests per fleet worker (-serve)")
	serveSkew := fs.Float64("serveskew", 1.07, "zipf skew exponent over the benchmark popularity ranks (-serve)")
	serveMix := fs.String("servemix", "encode,decode", "comma-separated endpoint mix: encode, decode, simulate (-serve)")
	servePairing := fs.String("servepairing", "", "registry pairing for simulate requests in the mix (-serve)")
	serveCap := fs.Int("servecap", 4096, "daemon artifact-store capacity in entries, 0 = unbounded (-serve)")
	serveMin := fs.Float64("servemin", 0,
		"minimum fleet throughput in req/s; non-zero exit below it (-serve, 0 = no check)")
	streamMode := fs.Bool("stream", false,
		"streaming benchmark: window-sharded replay of a never-materialized trace, differentially gated against the sequential replay")
	streamOps := fs.Int64("ops", 100_000_000, "dynamic-operation horizon (-stream)")
	simShards := fs.Int("simshards", 0, "window-shard worker count, 0 = GOMAXPROCS (-stream)")
	streamPairing := fs.String("streampairing", "Compressed", "registry pairing for the streamed run (-stream)")
	streamMin := fs.Float64("streammin", 0,
		"minimum streaming throughput in Mops/s; non-zero exit below it (-stream, 0 = no check)")
	streamMaxMB := fs.Int64("streammaxmb", 0,
		"maximum HeapSys growth in MB over the streamed replays; non-zero exit above it (-stream, 0 = no check)")
	streamSpecMin := fs.Float64("streamspecmin", 0,
		"minimum speculative-over-serialized speedup on the steady workload; non-zero exit below it (-stream, 0 = no check)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *streamMode {
		bench := "compress"
		if *benchCSV != "" {
			bench = strings.Split(*benchCSV, ",")[0]
		}
		return runStreamBench(streamRun{
			bench:      bench,
			pairing:    *streamPairing,
			ops:        *streamOps,
			shards:     *simShards,
			check:      *check,
			jsonPath:   *jsonPath,
			minMops:    *streamMin,
			maxHeapMB:  *streamMaxMB,
			minSpeedup: *streamSpecMin,
		}, cliio.New(out))
	}

	if *serveMode {
		var benchmarks []string
		if *benchCSV != "" {
			benchmarks = strings.Split(*benchCSV, ",")
		}
		return runServe(serveRun{
			benchmarks: benchmarks,
			par:        *par,
			workers:    *serveWorkers,
			requests:   *serveRequests,
			skew:       *serveSkew,
			mix:        strings.Split(*serveMix, ","),
			pairing:    *servePairing,
			scheme:     "full",
			blocks:     *blocks,
			cachecap:   *serveCap,
			check:      *check,
			jsonPath:   *jsonPath,
			minRPS:     *serveMin,
		}, cliio.New(out))
	}

	opt := ccc.Options{TraceBlocks: *blocks}
	if *benchCSV != "" {
		opt.Benchmarks = strings.Split(*benchCSV, ",")
	}
	w := cliio.New(out)
	d := ccc.NewDriver(*par)
	s := ccc.NewSuiteWithDriver(opt, d)

	exec := func(ew *cliio.Writer) error {
		if *sweep != "" {
			return runSweep(s, opt, *sweep, ew)
		}
		return runFigures(s, *fig, ew)
	}

	start := time.Now()
	if err := exec(w); err != nil {
		return err
	}
	wall := time.Since(start)

	// Warm pass: same workload, same driver. Every artifact request must
	// resolve in the content-addressed cache.
	var warmRate float64
	if *warm {
		h0 := d.Stats().Counter("artifact.hit").Value()
		m0 := d.Stats().Counter("artifact.miss").Value()
		if err := exec(cliio.New(io.Discard)); err != nil {
			return err
		}
		dh := d.Stats().Counter("artifact.hit").Value() - h0
		dm := d.Stats().Counter("artifact.miss").Value() - m0
		if dh+dm > 0 {
			warmRate = float64(dh) / float64(dh+dm)
		}
		w.Printf("warm re-run: %d/%d artifact requests served from cache (%.1f%%)\n",
			dh, dh+dm, 100*warmRate)
	}

	// Decode check: every image the run built must decode back to the
	// scheduled program, bit for bit.
	var checkErr error
	decodeOK := true
	if *check {
		benchmarks := opt.Benchmarks
		if len(benchmarks) == 0 {
			benchmarks = ccc.Benchmarks
		}
		for _, name := range benchmarks {
			c, err := s.Compiled(name)
			if err != nil {
				return err
			}
			if err := c.Verify(); err != nil {
				decodeOK = false
				checkErr = fmt.Errorf("decode check %s: %w", name, err)
				break
			}
		}
		if decodeOK {
			w.Println("decode check: all built images decode back to the scheduled program")
		}
	}

	// Simulation oracle: re-derive every pairing's counters analytically,
	// assert the metamorphic invariants and run the fault matrix, over
	// every benchmark on the driver's worker pool.
	simOK := true
	if *check && checkErr == nil {
		rep, err := s.SimCheck()
		if err != nil {
			return err
		}
		if rep.OK() {
			w.Println("simulation check: oracle, invariants and fault matrix clean on every pairing")
		} else {
			simOK = false
			// Report through the latching writer, not the raw stream: a
			// write failure here must surface in the exit status below.
			if err := rep.WriteText(w); err != nil {
				return err
			}
			checkErr = fmt.Errorf("simulation checks found %d error(s)", rep.Errors())
		}
	}

	// Decode-throughput measurement: every Huffman scheme's symbol
	// stream at three tiers — the bit-by-bit reference oracle, the
	// table-driven fast decoder, and the lane-parallel batch kernel —
	// over every benchmark.
	var decodeRates map[string]core.DecodeThroughput
	if *jsonPath != "" || *decodeMin > 0 || *laneMin > 0 {
		benchmarks := opt.Benchmarks
		if len(benchmarks) == 0 {
			benchmarks = ccc.Benchmarks
		}
		for _, name := range benchmarks {
			c, err := s.Compiled(name)
			if err != nil {
				return err
			}
			for _, scheme := range decodeSchemes {
				if _, err := c.MeasureDecodeThroughput(scheme, 3); err != nil {
					return err
				}
			}
		}
		tsnap := d.Stats().Snapshot().Throughput
		decodeRates = make(map[string]core.DecodeThroughput, len(decodeSchemes))
		for _, scheme := range decodeSchemes {
			dr := core.DecodeThroughput{
				Scheme:    scheme,
				Fast:      tsnap["decode.fast."+scheme],
				Reference: tsnap["decode.reference."+scheme],
				Batch:     tsnap["decode.batch."+scheme],
			}
			if dr.Reference.BitsPerSec > 0 {
				dr.Speedup = dr.Fast.BitsPerSec / dr.Reference.BitsPerSec
				dr.BatchSpeedup = dr.Batch.BitsPerSec / dr.Reference.BitsPerSec
			}
			if dr.Fast.BitsPerSec > 0 {
				dr.LaneGain = dr.Batch.BitsPerSec / dr.Fast.BitsPerSec
			}
			decodeRates[scheme] = dr
			w.Printf("decode throughput %-9s ref %6.1f Mb/s  fast %7.1f Mb/s  batch %7.1f Mb/s  speedup %.2fx  lane gain %.2fx\n",
				scheme, dr.Reference.BitsPerSec/1e6, dr.Fast.BitsPerSec/1e6, dr.Batch.BitsPerSec/1e6,
				dr.BatchSpeedup, dr.LaneGain)
		}
	}

	if *jsonPath != "" {
		snap := d.Stats().Snapshot()
		figure := *fig
		if *sweep != "" {
			figure = "sweep:" + *sweep
		}
		benchmarks := opt.Benchmarks
		if len(benchmarks) == 0 {
			benchmarks = ccc.Benchmarks
		}
		rep := benchReport{
			Tool:          "tepicbench",
			Figure:        figure,
			Benchmarks:    benchmarks,
			Parallelism:   d.Workers(),
			WallMS:        float64(wall) / float64(time.Millisecond),
			Stages:        snap.Stages,
			CacheHits:     snap.Counters["artifact.hit"],
			CacheMisses:   snap.Counters["artifact.miss"],
			CacheHitRate:  d.CacheHitRate(),
			WarmHitRate:   warmRate,
			BytesBase:     snap.Counters["bytes.base"],
			BytesEncoded:  snap.Counters["bytes.encoded"],
			DecodeChecked: *check,
			DecodeOK:      decodeOK,
			SimChecked:    *check,
			SimOK:         simOK,

			DecodeThroughput: decodeRates,
		}
		if secs := wall.Seconds(); secs > 0 {
			rep.BytesPerSec = float64(rep.BytesBase) / secs
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		w.Printf("benchmark report written to %s\n", *jsonPath)
	}
	if checkErr != nil {
		// Join the latched write error so a truncated -check report is
		// never mistaken for a fully delivered one.
		return errors.Join(checkErr, w.Err())
	}
	if *decodeMin > 0 {
		if got := decodeRates["full"].BatchSpeedup; got < *decodeMin {
			return errors.Join(
				fmt.Errorf("batch decode speedup on full scheme %.2fx below minimum %.2fx", got, *decodeMin),
				w.Err())
		}
	}
	if *laneMin > 0 {
		if got := decodeRates["stream"].LaneGain; got < *laneMin {
			return errors.Join(
				fmt.Errorf("lane-kernel gain on stream scheme %.2fx below minimum %.2fx", got, *laneMin),
				w.Err())
		}
	}
	return w.Err()
}

// runFigures regenerates the requested figure tables.
func runFigures(s *ccc.Suite, fig string, w *cliio.Writer) error {
	want := func(n string) bool { return fig == "all" || fig == n }
	type figure struct {
		name string
		gen  func() (interface{ Render() string }, error)
	}
	render := func(t interface{ Render() string }, err error) (interface{ Render() string }, error) {
		return t, err
	}
	figures := []figure{
		{"5", func() (interface{ Render() string }, error) {
			r, err := s.Figure5()
			if err != nil {
				return nil, err
			}
			return render(r.Table(), nil)
		}},
		{"7", func() (interface{ Render() string }, error) {
			r, err := s.Figure7()
			if err != nil {
				return nil, err
			}
			return render(r.Table(), nil)
		}},
		{"10", func() (interface{ Render() string }, error) {
			r, err := s.Figure10()
			if err != nil {
				return nil, err
			}
			return render(r.Table(), nil)
		}},
		{"13", func() (interface{ Render() string }, error) {
			r, err := s.Figure13()
			if err != nil {
				return nil, err
			}
			return render(r.Table(), nil)
		}},
		{"14", func() (interface{ Render() string }, error) {
			r, err := s.Figure14()
			if err != nil {
				return nil, err
			}
			return render(r.Table(), nil)
		}},
	}
	matched := false
	for _, f := range figures {
		if !want(f.name) {
			continue
		}
		matched = true
		tab, err := f.gen()
		if err != nil {
			return err
		}
		w.Println(tab.Render())
	}
	if !matched {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func runSweep(s *ccc.Suite, opt ccc.Options, sweep string, w *cliio.Writer) error {
	switch sweep {
	case "streams":
		rows, err := s.StreamSweep()
		if err != nil {
			return err
		}
		w.Println("Stream configuration exploration (six configurations of §2.2):")
		w.Printf("%-10s %12s %18s\n", "config", "mean ratio", "decoder log10(T)")
		for _, r := range rows {
			w.Printf("%-10s %11.1f%% %18.2f\n", r.Config, 100*r.MeanRatio, r.Log10T)
		}
	case "related":
		rows, err := s.RelatedWork()
		if err != nil {
			return err
		}
		w.Println(core.RelatedWorkTable(rows).Render())
	case "dict":
		rows, err := s.DictionarySweep(8)
		if err != nil {
			return err
		}
		w.Println("Beyond-Huffman dictionary scheme (§7 future work), 256-entry dictionary:")
		w.Printf("%-10s %10s %10s %14s %14s\n",
			"benchmark", "dict", "full", "dict RAM bits", "full log10(T)")
		for _, r := range rows {
			w.Printf("%-10s %9.1f%% %9.1f%% %14d %14.2f\n",
				r.Benchmark, 100*r.DictRatio, 100*r.FullRatio, r.DictRAMBits, r.FullLog10T)
		}
	case "predictors":
		bench := "go"
		if len(opt.Benchmarks) > 0 {
			bench = opt.Benchmarks[0]
		}
		rows, err := s.PredictorSweep(bench)
		if err != nil {
			return err
		}
		w.Println(core.PredictorTable(bench, rows).Render())
	case "layout":
		rows, err := s.LayoutStudy()
		if err != nil {
			return err
		}
		w.Println(core.LayoutTable(rows).Render())
	case "speculation":
		rows, err := s.SpeculationStudy()
		if err != nil {
			return err
		}
		w.Println(core.SpeculationTable(rows).Render())
	case "superblocks":
		names := opt.Benchmarks
		if len(names) == 0 {
			names = ccc.Benchmarks
		}
		w.Println("Complex fetch units (§7 future work): superblock formation")
		w.Printf("%-10s %7s %7s %9s %12s %10s %10s\n",
			"benchmark", "blocks", "units", "ops/unit", "fetch starts", "reduction", "side exits")
		for _, name := range names {
			c, err := s.Compiled(name)
			if err != nil {
				return err
			}
			plan, err := superblock.Build(c.Prog, 0)
			if err != nil {
				return err
			}
			tr, err := c.Trace(opt.TraceBlocks)
			if err != nil {
				return err
			}
			st := plan.Evaluate(c.Prog, tr)
			w.Printf("%-10s %7d %7d %9.2f %12d %9.1f%% %9.1f%%\n",
				name, st.Blocks, st.Units, st.AvgUnitOps,
				st.FetchStartsSB, 100*st.FetchReduction(), 100*st.SideExitRate())
		}
	default:
		return fmt.Errorf("unknown sweep %q", sweep)
	}
	return nil
}
