// Command tepicbench regenerates the paper's evaluation: every figure's
// table in one run, plus the design-space sweeps and the related/future
// work studies behind them.
//
// Usage:
//
//	tepicbench                      # all figures, full-length traces
//	tepicbench -fig 13              # one figure
//	tepicbench -blocks 100000       # shorter traces (faster)
//	tepicbench -benchmarks gcc,go   # subset
//	tepicbench -sweep streams       # the six stream configurations
//	tepicbench -sweep related       # §6 comparison (CodePack, Thumb-style)
//	tepicbench -sweep predictors    # §7 predictor study
//	tepicbench -sweep superblocks   # §7 complex fetch units
//	tepicbench -sweep speculation   # treegion-style hoisting study
//	tepicbench -sweep dict          # §7 beyond-Huffman dictionary scheme
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	ccc "repro"
	"repro/internal/core"
	"repro/internal/superblock"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the tool against args, writing to out (separated from main
// for testing).
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tepicbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 5, 7, 10, 13, 14 or all")
	blocks := fs.Int("blocks", 0, "trace length in blocks (0 = profile defaults, 400k)")
	benchCSV := fs.String("benchmarks", "", "comma-separated benchmark subset")
	sweep := fs.String("sweep", "", "extra study: streams, related, dict, predictors, superblocks, speculation, layout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opt := ccc.Options{TraceBlocks: *blocks}
	if *benchCSV != "" {
		opt.Benchmarks = strings.Split(*benchCSV, ",")
	}
	s := ccc.NewSuite(opt)

	if *sweep != "" {
		return runSweep(s, opt, *sweep, out)
	}

	want := func(n string) bool { return *fig == "all" || *fig == n }
	type figure struct {
		name string
		gen  func() (interface{ Render() string }, error)
	}
	render := func(t interface{ Render() string }, err error) (interface{ Render() string }, error) {
		return t, err
	}
	figures := []figure{
		{"5", func() (interface{ Render() string }, error) {
			r, err := s.Figure5()
			if err != nil {
				return nil, err
			}
			return render(r.Table(), nil)
		}},
		{"7", func() (interface{ Render() string }, error) {
			r, err := s.Figure7()
			if err != nil {
				return nil, err
			}
			return render(r.Table(), nil)
		}},
		{"10", func() (interface{ Render() string }, error) {
			r, err := s.Figure10()
			if err != nil {
				return nil, err
			}
			return render(r.Table(), nil)
		}},
		{"13", func() (interface{ Render() string }, error) {
			r, err := s.Figure13()
			if err != nil {
				return nil, err
			}
			return render(r.Table(), nil)
		}},
		{"14", func() (interface{ Render() string }, error) {
			r, err := s.Figure14()
			if err != nil {
				return nil, err
			}
			return render(r.Table(), nil)
		}},
	}
	matched := false
	for _, f := range figures {
		if !want(f.name) {
			continue
		}
		matched = true
		tab, err := f.gen()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, tab.Render())
	}
	if !matched {
		return fmt.Errorf("unknown figure %q", *fig)
	}
	return nil
}

func runSweep(s *ccc.Suite, opt ccc.Options, sweep string, out io.Writer) error {
	switch sweep {
	case "streams":
		rows, err := s.StreamSweep()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Stream configuration exploration (six configurations of §2.2):")
		fmt.Fprintf(out, "%-10s %12s %18s\n", "config", "mean ratio", "decoder log10(T)")
		for _, r := range rows {
			fmt.Fprintf(out, "%-10s %11.1f%% %18.2f\n", r.Config, 100*r.MeanRatio, r.Log10T)
		}
	case "related":
		rows, err := s.RelatedWork()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, core.RelatedWorkTable(rows).Render())
	case "dict":
		rows, err := s.DictionarySweep(8)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Beyond-Huffman dictionary scheme (§7 future work), 256-entry dictionary:")
		fmt.Fprintf(out, "%-10s %10s %10s %14s %14s\n",
			"benchmark", "dict", "full", "dict RAM bits", "full log10(T)")
		for _, r := range rows {
			fmt.Fprintf(out, "%-10s %9.1f%% %9.1f%% %14d %14.2f\n",
				r.Benchmark, 100*r.DictRatio, 100*r.FullRatio, r.DictRAMBits, r.FullLog10T)
		}
	case "predictors":
		bench := "go"
		if len(opt.Benchmarks) > 0 {
			bench = opt.Benchmarks[0]
		}
		rows, err := s.PredictorSweep(bench)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, core.PredictorTable(bench, rows).Render())
	case "layout":
		rows, err := s.LayoutStudy()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, core.LayoutTable(rows).Render())
	case "speculation":
		rows, err := s.SpeculationStudy()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, core.SpeculationTable(rows).Render())
	case "superblocks":
		names := opt.Benchmarks
		if len(names) == 0 {
			names = ccc.Benchmarks
		}
		fmt.Fprintln(out, "Complex fetch units (§7 future work): superblock formation")
		fmt.Fprintf(out, "%-10s %7s %7s %9s %12s %10s %10s\n",
			"benchmark", "blocks", "units", "ops/unit", "fetch starts", "reduction", "side exits")
		for _, name := range names {
			c, err := s.Compiled(name)
			if err != nil {
				return err
			}
			plan, err := superblock.Build(c.Prog, 0)
			if err != nil {
				return err
			}
			tr, err := c.Trace(opt.TraceBlocks)
			if err != nil {
				return err
			}
			st := plan.Evaluate(c.Prog, tr)
			fmt.Fprintf(out, "%-10s %7d %7d %9.2f %12d %9.1f%% %9.1f%%\n",
				name, st.Blocks, st.Units, st.AvgUnitOps,
				st.FetchStartsSB, 100*st.FetchReduction(), 100*st.SideExitRate())
		}
	default:
		return fmt.Errorf("unknown sweep %q", sweep)
	}
	return nil
}
