package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	ccc "repro"
	"repro/internal/cliio"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/loadgen"
	"repro/internal/scheme"
	"repro/internal/serve"
)

// serveRun carries the -serve mode's parsed options.
type serveRun struct {
	benchmarks []string
	par        int
	workers    int
	requests   int
	skew       float64
	mix        []string
	pairing    string
	scheme     string
	blocks     int
	cachecap   int
	check      bool
	jsonPath   string
	minRPS     float64
}

// serveReport is the -serve mode's machine-readable summary
// (BENCH_serve.json in CI): the zipf fleet's throughput and latency
// percentiles plus the daemon-side artifact-store traffic and the
// decode bit-identity audit verdict.
type serveReport struct {
	Tool           string          `json:"tool"`
	Mode           string          `json:"mode"`
	Benchmarks     []string        `json:"benchmarks"`
	Scheme         string          `json:"scheme"`
	Parallelism    int             `json:"parallelism"`
	Fleet          *loadgen.Report `json:"fleet"`
	CacheHits      int64           `json:"cache_hits"`
	CacheMisses    int64           `json:"cache_misses"`
	CacheEvictions int64           `json:"cache_evictions"`
	CacheHitRate   float64         `json:"cache_hit_rate"`
	DecodeChecked  bool            `json:"decode_checked"`
	DecodeOK       bool            `json:"decode_ok"`
	DecodeAudited  int             `json:"decode_audited"`
}

// runServe boots an in-process tepicd, drives the zipf-skewed client
// fleet against it, optionally audits daemon decodes for bit-identity
// against a fresh direct pipeline, and writes the service benchmark
// report.
//
//tepic:pool
func runServe(o serveRun, w *cliio.Writer) error {
	benchmarks := o.benchmarks
	if len(benchmarks) == 0 {
		benchmarks = ccc.Benchmarks
	}

	drv := core.NewDriverWithCache(o.par, 0, o.cachecap)
	s := serve.New(serve.Config{Driver: drv})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}

	base := "http://" + ln.Addr().String()
	w.Printf("service benchmark: in-process tepicd on %s\n", base)

	rep, err := loadgen.Run(base, loadgen.Options{
		Workers:           o.workers,
		RequestsPerWorker: o.requests,
		Benchmarks:        benchmarks,
		Skew:              o.skew,
		Mix:               o.mix,
		Scheme:            o.scheme,
		Pairing:           o.pairing,
		Blocks:            o.blocks,
	})
	if err != nil {
		if serr := shutdown(); serr != nil {
			return fmt.Errorf("%w (and shutting down: %v)", err, serr)
		}
		return err
	}

	w.Printf("fleet: %d workers x %d requests, zipf skew %.2f over %d benchmarks\n",
		rep.Workers, rep.RequestsPerWorker, rep.Skew, len(benchmarks))
	w.Printf("throughput %.1f req/s  p50 %.2fms  p95 %.2fms  p99 %.2fms  errors %d\n",
		rep.RequestsPerSec, rep.P50MS, rep.P95MS, rep.P99MS, rep.Errors)
	for _, name := range benchmarks {
		if n := rep.Popularity[name]; n > 0 {
			w.Printf("  %-10s %5d requests (%.1f%%)\n", name, n, 100*float64(n)/float64(rep.Requests))
		}
	}

	var checkErr error
	if rep.Errors > 0 {
		checkErr = fmt.Errorf("service fleet: %d of %d requests failed", rep.Errors, rep.Requests)
	}

	// Decode audit: every benchmark x pairing scheme through the live
	// daemon must hash to the same op stream as a fresh, cache-cold
	// direct pipeline — the service layer may not perturb a single bit.
	audited, decodeOK := 0, true
	if o.check && checkErr == nil {
		direct := core.NewDriver(0)
		for _, name := range benchmarks {
			c, err := direct.CompileBenchmark(name)
			if err != nil {
				checkErr = err
				break
			}
			for _, sc := range pairingSchemes() {
				want, err := directOpsHash(c, sc)
				if err != nil {
					checkErr = err
					break
				}
				var dec serve.DecodeResponse
				if err := postDecode(base, serve.DecodeRequest{Benchmark: name, Scheme: sc}, &dec); err != nil {
					checkErr = fmt.Errorf("decode audit %s/%s: %w", name, sc, err)
					break
				}
				audited++
				if dec.OpsHash != want {
					decodeOK = false
					checkErr = fmt.Errorf("decode audit %s/%s: daemon hash %s != direct %s",
						name, sc, dec.OpsHash, want)
					break
				}
			}
			if checkErr != nil {
				break
			}
		}
		if decodeOK && checkErr == nil {
			w.Printf("decode audit: %d benchmark x scheme points bit-identical to the direct pipeline\n", audited)
		}
	}

	if err := shutdown(); err != nil {
		return errors.Join(checkErr, err)
	}

	snap := drv.Stats().Snapshot()
	hits, misses := snap.Counters["artifact.hit"], snap.Counters["artifact.miss"]
	w.Printf("artifact store: %d hits, %d misses, %d evictions (%.1f%% hit rate)\n",
		hits, misses, snap.Counters["artifact.eviction"], 100*drv.CacheHitRate())

	if o.jsonPath != "" {
		out := serveReport{
			Tool:           "tepicbench",
			Mode:           "serve",
			Benchmarks:     benchmarks,
			Scheme:         o.scheme,
			Parallelism:    drv.Workers(),
			Fleet:          rep,
			CacheHits:      hits,
			CacheMisses:    misses,
			CacheEvictions: snap.Counters["artifact.eviction"],
			CacheHitRate:   drv.CacheHitRate(),
			DecodeChecked:  o.check,
			DecodeOK:       decodeOK,
			DecodeAudited:  audited,
		}
		err := cliio.WriteFile(o.jsonPath, func(f io.Writer) error {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			return enc.Encode(out)
		})
		if err != nil {
			return errors.Join(checkErr, err)
		}
		w.Printf("service benchmark report written to %s\n", o.jsonPath)
	}

	if checkErr == nil && o.minRPS > 0 && rep.RequestsPerSec < o.minRPS {
		checkErr = fmt.Errorf("service throughput %.1f req/s below minimum %.1f", rep.RequestsPerSec, o.minRPS)
	}
	return errors.Join(checkErr, w.Err())
}

// pairingSchemes is the decode audit's scheme set: the union of every
// registered pairing's cache and ROM encodings.
func pairingSchemes() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range scheme.Pairings() {
		for _, sc := range []string{p.CacheScheme, p.ROMScheme} {
			if sc != "" && !seen[sc] {
				seen[sc] = true
				out = append(out, sc)
			}
		}
	}
	return out
}

// directOpsHash digests the scheduled program's operations in image
// placement order for sc — the decode audit's independent ground truth.
func directOpsHash(c *core.Compiled, sc string) (string, error) {
	im, err := c.Image(sc)
	if err != nil {
		return "", err
	}
	byID := map[int][]isa.Op{}
	for i := range c.Prog.Blocks {
		byID[c.Prog.Blocks[i].ID] = c.Prog.Blocks[i].Ops
	}
	blocks := make([][]isa.Op, len(im.Blocks))
	for i, b := range im.Blocks {
		ops, ok := byID[b.ID]
		if !ok {
			return "", fmt.Errorf("image block %d references unknown program block %d", i, b.ID)
		}
		blocks[i] = ops
	}
	return serve.HashOps(blocks), nil
}

// postDecode sends one /v1/decode request and decodes the response,
// failing on any non-200 status.
func postDecode(base string, req serve.DecodeRequest, dst *serve.DecodeResponse) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/decode", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	derr := json.NewDecoder(resp.Body).Decode(dst)
	if cerr := resp.Body.Close(); derr == nil {
		derr = cerr
	}
	if derr != nil {
		return derr
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
