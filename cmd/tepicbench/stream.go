package main

// The -stream mode: benchmark the streaming trace pipeline end to end.
// A fixed-seed trace flows out of the stochastic walker in bounded
// chunks straight into the window-sharded simulator — never
// materialized — and the run fails unless the sharded counters are
// bit-identical to a sequential incremental replay of the same seed.
// A second phase replays a steady periodic workload through both window
// schedulers — token-serialized and checkpointed speculative — gating
// their bit-identity and measuring the speedup of breaking the replay
// serialization (plus the scheduler's retry rate). -streammin gates the
// throughput (Mops/s), -streammaxmb the HeapSys growth and
// -streamspecmin the speculative speedup; -json writes
// BENCH_stream.json.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	ccc "repro"
	"repro/internal/cliio"
	"repro/internal/simcheck"
)

// streamRun parameterizes one -stream invocation.
type streamRun struct {
	bench      string
	pairing    string
	ops        int64
	shards     int
	check      bool
	jsonPath   string
	minMops    float64
	maxHeapMB  int64
	minSpeedup float64 // speculative-over-serialized gate (0 = no check)
}

// streamReport is the machine-readable -stream summary (BENCH_stream.json).
type streamReport struct {
	Tool       string  `json:"tool"`
	Mode       string  `json:"mode"`
	Benchmark  string  `json:"benchmark"`
	Pairing    string  `json:"pairing"`
	Shards     int     `json:"shards"`
	Ops        int64   `json:"ops"`
	Events     int64   `json:"events"`
	Cycles     int64   `json:"cycles"`
	WallMS     float64 `json:"wall_ms"`
	MopsPerSec float64 `json:"mops_per_sec"`
	// HeapSysMB / HeapGrowthMB bound the streamed run's peak footprint:
	// HeapSys is monotonic within the process, so its growth over the
	// replays is an upper bound on what the pipeline held live.
	HeapSysMB    int64 `json:"heap_sys_mb"`
	HeapGrowthMB int64 `json:"heap_growth_mb"`
	// SeqIdentical records the always-on differential gate: the
	// window-sharded counters against the sequential incremental replay.
	SeqIdentical  bool `json:"seq_identical"`
	OracleChecked bool `json:"oracle_checked"`
	OracleOK      bool `json:"oracle_ok"`
	// The speculative phase replays a steady periodic workload of the
	// same operation horizon twice — token-serialized and checkpointed
	// speculative — and records the speedup of breaking the replay
	// serialization, the scheduler's window accounting, and one more
	// always-on differential gate (speculative == serialized).
	SpecWindows     int64   `json:"spec_windows"`
	SpecHits        int64   `json:"spec_hits"`
	SpecRetries     int64   `json:"spec_retries"`
	SpecRetryRate   float64 `json:"spec_retry_rate"`
	TokenMopsPerSec float64 `json:"token_mops_per_sec"`
	SpecMopsPerSec  float64 `json:"spec_mops_per_sec"`
	SpecSpeedup     float64 `json:"spec_speedup"`
	SpecIdentical   bool    `json:"spec_identical"`
	// Cores records GOMAXPROCS at measurement time: the speedup is only
	// meaningful (and only gated) when the replay could actually run on
	// more than one core.
	Cores int `json:"cores"`
}

// runStreamBench executes the -stream benchmark and its gates.
func runStreamBench(sr streamRun, w *cliio.Writer) error {
	c, err := ccc.CompileBenchmark(sr.bench)
	if err != nil {
		return err
	}
	p, ok := ccc.PairingByName(sr.pairing)
	if !ok {
		return fmt.Errorf("unknown pairing %q", sr.pairing)
	}
	cfg := ccc.DefaultConfig(p.Org)
	shards := sr.shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}

	mkStream := func() (ccc.Stream, error) { return c.StreamTraceOps(sr.ops, 0) }

	before := ccc.MemSnapshot()
	start := time.Now()
	sim, err := c.SimFor(p, cfg)
	if err != nil {
		return err
	}
	st, err := mkStream()
	if err != nil {
		return err
	}
	res, err := ccc.RunSharded(sim, st, shards)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	// Differential gate, always on: a fresh simulator replays the same
	// seed through the sequential incremental path.
	seqSim, err := c.SimFor(p, cfg)
	if err != nil {
		return err
	}
	st2, err := mkStream()
	if err != nil {
		return err
	}
	seq, err := seqSim.RunStream(st2)
	if err != nil {
		return err
	}
	after := ccc.MemSnapshot()
	seqIdentical := res == seq

	oracleOK := true
	if sr.check {
		im, err := c.Image(p.CacheScheme)
		if err != nil {
			return err
		}
		var rom *ccc.Image
		if p.ROMScheme != "" {
			if rom, err = c.Image(p.ROMScheme); err != nil {
				return err
			}
		}
		st3, err := mkStream()
		if err != nil {
			return err
		}
		oracle, oerr := simcheck.ExpectedStream(p.Org, cfg, im, rom, c.Prog, st3)
		switch {
		case errors.Is(oerr, simcheck.ErrUnsupported):
			w.Printf("stream oracle: skipped (%v)\n", oerr)
		case oerr != nil:
			return oerr
		default:
			for _, m := range simcheck.Diff(res, oracle) {
				oracleOK = false
				w.Printf("stream oracle disagrees on %s: simulator %d, oracle %d\n",
					m.Field, m.Got, m.Want)
			}
		}
	}

	mops := float64(res.Ops) / 1e6 / wall.Seconds()
	growthMB := (int64(after.HeapSys) - int64(before.HeapSys)) >> 20
	w.Printf("stream benchmark %s/%s: %d ops (%d events) in %.2fs over %d shard(s)\n",
		sr.bench, p.Name, res.Ops, res.BlockFetches, wall.Seconds(), shards)
	w.Printf("  throughput %.1f Mops/s, cycles %d, IPC %.4f\n", mops, res.Cycles, res.IPC())
	w.Printf("  heap sys %d MB (grew %d MB during the streamed replays)\n",
		int64(after.HeapSys)>>20, growthMB)
	if seqIdentical {
		w.Printf("  sharded == sequential: every counter identical\n")
	} else {
		w.Printf("  sharded:    %+v\n  sequential: %+v\n", res, seq)
	}

	// Speculative phase: the steady periodic workload is the regime
	// whose window-seam states recur, so the checkpointed speculative
	// scheduler can actually break the replay serialization. Replay the
	// same horizon through both schedulers and compare.
	mkSteady := func() (ccc.Stream, error) { return ccc.SteadyStream(c.Prog, sr.ops, 0) }
	tokenSim, err := c.SimFor(p, cfg)
	if err != nil {
		return err
	}
	stT, err := mkSteady()
	if err != nil {
		return err
	}
	startT := time.Now()
	tokenRes, err := ccc.RunSharded(tokenSim, stT, shards)
	if err != nil {
		return err
	}
	tokenWall := time.Since(startT)

	specSim, err := c.SimFor(p, cfg)
	if err != nil {
		return err
	}
	stS, err := mkSteady()
	if err != nil {
		return err
	}
	startS := time.Now()
	specRes, stats, err := ccc.RunShardedSpec(specSim, stS, shards)
	if err != nil {
		return err
	}
	specWall := time.Since(startS)

	specIdentical := specRes == tokenRes
	tokenMops := float64(tokenRes.Ops) / 1e6 / tokenWall.Seconds()
	specMops := float64(specRes.Ops) / 1e6 / specWall.Seconds()
	speedup := specMops / tokenMops
	w.Printf("  speculative (steady workload, %d windows): %d verified, %d retried (%.2f%% retry rate)\n",
		stats.Windows, stats.Hits, stats.Retries, 100*stats.RetryRate())
	w.Printf("  speculative speedup %.2fx over serialized replay (%.1f vs %.1f Mops/s)\n",
		speedup, specMops, tokenMops)
	if specIdentical {
		w.Printf("  speculative == serialized: every counter identical\n")
	} else {
		w.Printf("  speculative: %+v\n  serialized:  %+v\n", specRes, tokenRes)
	}

	if sr.jsonPath != "" {
		rep := streamReport{
			Tool:            "tepicbench",
			Mode:            "stream",
			Benchmark:       sr.bench,
			Pairing:         p.Name,
			Shards:          shards,
			Ops:             res.Ops,
			Events:          res.BlockFetches,
			Cycles:          res.Cycles,
			WallMS:          float64(wall) / float64(time.Millisecond),
			MopsPerSec:      mops,
			HeapSysMB:       int64(after.HeapSys) >> 20,
			HeapGrowthMB:    growthMB,
			SeqIdentical:    seqIdentical,
			OracleChecked:   sr.check,
			OracleOK:        oracleOK,
			SpecWindows:     stats.Windows,
			SpecHits:        stats.Hits,
			SpecRetries:     stats.Retries,
			SpecRetryRate:   stats.RetryRate(),
			TokenMopsPerSec: tokenMops,
			SpecMopsPerSec:  specMops,
			SpecSpeedup:     speedup,
			SpecIdentical:   specIdentical,
			Cores:           runtime.GOMAXPROCS(0),
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(sr.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		w.Printf("benchmark report written to %s\n", sr.jsonPath)
	}

	if !seqIdentical {
		return errors.Join(
			fmt.Errorf("window-sharded result diverges from sequential incremental replay"),
			w.Err())
	}
	if !specIdentical {
		return errors.Join(
			fmt.Errorf("speculative result diverges from serialized replay on the steady workload"),
			w.Err())
	}
	if !oracleOK {
		return errors.Join(fmt.Errorf("streaming oracle found mismatches"), w.Err())
	}
	if sr.minSpeedup > 0 && speedup < sr.minSpeedup {
		// The ratchet measures parallel replay against serialized replay;
		// on a single-core host the speculative scheduler cannot win by
		// construction, so the gate only binds when cores are available.
		if cores := runtime.GOMAXPROCS(0); cores < 2 {
			w.Printf("  speculative speedup ratchet skipped: %d core(s) available\n", cores)
		} else {
			return errors.Join(
				fmt.Errorf("speculative speedup %.2fx below the %.2fx ratchet", speedup, sr.minSpeedup),
				w.Err())
		}
	}
	if sr.minMops > 0 && mops < sr.minMops {
		return errors.Join(
			fmt.Errorf("streaming throughput %.1f Mops/s below minimum %.1f", mops, sr.minMops),
			w.Err())
	}
	if sr.maxHeapMB > 0 && growthMB > sr.maxHeapMB {
		return errors.Join(
			fmt.Errorf("heap grew %d MB during the streamed run, above the %d MB bound",
				growthMB, sr.maxHeapMB),
			w.Err())
	}
	return w.Err()
}
