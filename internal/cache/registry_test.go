package cache

import (
	"strings"
	"testing"

	"repro/internal/image"
)

// TestOrgRegistryBuiltins pins the built-in registration order (the Org
// constants are indices into the registry) and name resolution.
func TestOrgRegistryBuiltins(t *testing.T) {
	want := []struct {
		org  Org
		name string
	}{
		{OrgBase, "Base"},
		{OrgTailored, "Tailored"},
		{OrgCompressed, "Compressed"},
		{OrgCodePack, "CodePack"},
	}
	orgs := Orgs()
	if len(orgs) < len(want) {
		t.Fatalf("%d registered organizations, want >= %d", len(orgs), len(want))
	}
	for _, w := range want {
		spec, ok := w.org.Spec()
		if !ok || spec.Name != w.name {
			t.Errorf("Org(%d).Spec() = %+v, %v; want %s", int(w.org), spec, ok, w.name)
		}
		if got, ok := OrgByName(strings.ToUpper(w.name)); !ok || got != w.org {
			t.Errorf("OrgByName(%s) = %v, %v; want %v (case-insensitive)", w.name, got, ok, w.org)
		}
		if w.org.String() != w.name {
			t.Errorf("Org(%d).String() = %q, want %q", int(w.org), w.org.String(), w.name)
		}
	}
	if spec, ok := OrgCompressed.Spec(); !ok || !spec.HasL0 {
		t.Error("Compressed spec must carry the L0 buffer")
	}
	if spec, ok := OrgCodePack.Spec(); !ok || !spec.NeedsROM {
		t.Error("CodePack spec must need a ROM image")
	}
}

func TestOrgRegistryValidation(t *testing.T) {
	if _, err := RegisterOrg(OrgSpec{Decode: PassThrough{}}); err == nil {
		t.Error("RegisterOrg accepted a nameless spec")
	}
	if _, err := RegisterOrg(OrgSpec{Name: "NoDecode"}); err == nil {
		t.Error("RegisterOrg accepted a spec without a Decompressor")
	}
	if _, err := RegisterOrg(OrgSpec{Name: "base", Decode: PassThrough{}}); err == nil {
		t.Error("RegisterOrg accepted a case-insensitive duplicate of Base")
	}
	if _, ok := Org(1 << 20).Spec(); ok {
		t.Error("Spec() resolved an unregistered organization")
	}
	if _, ok := OrgByName("nonesuch"); ok {
		t.Error("OrgByName resolved an unknown name")
	}
}

func TestPredictorRegistry(t *testing.T) {
	kinds := PredictorKinds()
	for _, want := range []PredictorKind{PredictorBimodal, PredictorGShare, PredictorPAs} {
		found := false
		for _, k := range kinds {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Errorf("PredictorKinds() = %v is missing %s", kinds, want)
		}
	}

	if err := RegisterPredictor(PredictorDefault, nil); err == nil {
		t.Error("RegisterPredictor accepted the empty kind")
	}
	if err := RegisterPredictor("novel", nil); err == nil {
		t.Error("RegisterPredictor accepted a nil constructor")
	}
	if err := RegisterPredictor(PredictorBimodal, func(int) (Predictor, error) {
		return nil, nil
	}); err == nil {
		t.Error("RegisterPredictor accepted a duplicate kind")
	}

	if kind, err := ParsePredictor(""); err != nil || kind != PredictorDefault {
		t.Errorf("ParsePredictor(\"\") = %v, %v; want default, nil", kind, err)
	}
	if kind, err := ParsePredictor("gshare"); err != nil || kind != PredictorGShare {
		t.Errorf("ParsePredictor(gshare) = %v, %v", kind, err)
	}
	if _, err := ParsePredictor("nonesuch"); err == nil {
		t.Error("ParsePredictor accepted an unknown name")
	}
}

// TestDecompressorVolumes pins the three volume rules the organizations
// compose: pass-through moves the block's cache lines on both paths,
// hit-path decompression re-derives the hit volume from compressed
// bytes, miss-path decompression re-derives the miss volume from the ROM
// block.
func TestDecompressorVolumes(t *testing.T) {
	blk := image.Block{Bytes: 100} // 100 bytes at addr 0: 3 lines of 40B, 4 of 32B
	rom := image.Block{Bytes: 35}
	const line40, line32 = 40, 32

	pt := PassThrough{}
	if got := pt.HitLines(blk, line40); got != 3 {
		t.Errorf("PassThrough hit = %d, want 3", got)
	}
	if got := pt.MissLines(blk, rom, line40); got != 3 {
		t.Errorf("PassThrough miss = %d, want 3", got)
	}

	hd := HitDecompress{}
	if got := hd.HitLines(blk, line32); got != 4 { // ceil(100/32)
		t.Errorf("HitDecompress hit = %d, want 4", got)
	}
	if got := hd.MissLines(blk, rom, line32); got != 4 { // blk.Lines(32)
		t.Errorf("HitDecompress miss = %d, want 4", got)
	}

	md := MissDecompress{}
	if got := md.HitLines(blk, line40); got != 3 { // cache lines, uncompressed
		t.Errorf("MissDecompress hit = %d, want 3", got)
	}
	if got := md.MissLines(blk, rom, line40); got != 1 { // ceil(35/40)
		t.Errorf("MissDecompress miss = %d, want 1", got)
	}
}
