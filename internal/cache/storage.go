package cache

import "fmt"

// LineCache is a set-associative instruction cache with true-LRU
// replacement, modeled at memory-line granularity. The paper's Banked
// Cache splits storage into two banks so a MOP spanning a line boundary
// is fetched in one reference; at block granularity that is a timing
// property (already folded into Table 1), so the capacity/conflict
// behavior modeled here is what distinguishes the schemes.
type LineCache struct {
	sets      int
	assoc     int
	lineBytes int
	tags      [][]int64 // tags[set][way]; -1 = invalid; way 0 = MRU
}

// NewLineCache builds a cache with the given geometry.
func NewLineCache(sets, assoc, lineBytes int) (*LineCache, error) {
	if sets < 1 || assoc < 1 || lineBytes < 1 {
		return nil, fmt.Errorf("%w: %d sets x %d ways x %dB", ErrBadGeometry, sets, assoc, lineBytes)
	}
	c := &LineCache{sets: sets, assoc: assoc, lineBytes: lineBytes}
	c.tags = make([][]int64, sets)
	for i := range c.tags {
		c.tags[i] = make([]int64, assoc)
		for j := range c.tags[i] {
			c.tags[i][j] = -1
		}
	}
	return c, nil
}

// CapacityBytes returns total storage.
func (c *LineCache) CapacityBytes() int { return c.sets * c.assoc * c.lineBytes }

// LineBytes returns the line size.
func (c *LineCache) LineBytes() int { return c.lineBytes }

// LineOf returns the line index containing a byte address.
func (c *LineCache) LineOf(addr int) int64 { return int64(addr / c.lineBytes) }

// Probe checks whether a line is resident, updating LRU on hit.
func (c *LineCache) Probe(line int64) bool {
	set := c.tags[int(line)%c.sets]
	for w, tag := range set {
		if tag == line {
			// Move to MRU.
			copy(set[1:w+1], set[:w])
			set[0] = line
			return true
		}
	}
	return false
}

// Fill installs a line as MRU, evicting the LRU way.
func (c *LineCache) Fill(line int64) {
	set := c.tags[int(line)%c.sets]
	for w, tag := range set {
		if tag == line {
			copy(set[1:w+1], set[:w])
			set[0] = line
			return
		}
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line
}

// CacheState is the line cache's behavioral checkpoint: every set's tag
// vector in recency order (way 0 = MRU), flattened set-major. Two states
// compare equal exactly when the caches would hit and evict identically
// on every future access sequence.
type CacheState struct {
	Tags []int64 // tags[set*assoc+way]; -1 = invalid
}

// Equal reports whether two cache states are bit-identical.
func (s CacheState) Equal(o CacheState) bool {
	if len(s.Tags) != len(o.Tags) {
		return false
	}
	for i, t := range s.Tags {
		if o.Tags[i] != t {
			return false
		}
	}
	return true
}

// Snapshot returns a copy of the cache's behavioral state (see
// CacheState). The snapshot aliases nothing.
func (c *LineCache) Snapshot() CacheState {
	s := CacheState{Tags: make([]int64, 0, c.sets*c.assoc)}
	for _, set := range c.tags {
		s.Tags = append(s.Tags, set...)
	}
	return s
}

// Restore overwrites the cache's state with a snapshot taken from a
// cache of the same geometry. The snapshot is copied, not retained.
func (c *LineCache) Restore(s CacheState) {
	for i := range c.tags {
		copy(c.tags[i], s.Tags[i*c.assoc:(i+1)*c.assoc])
	}
}

// Flush invalidates the whole cache.
func (c *LineCache) Flush() {
	for i := range c.tags {
		for j := range c.tags[i] {
			c.tags[i][j] = -1
		}
	}
}

// L0Buffer is the small fully-associative buffer of §4 that holds the
// most recently decompressed blocks, measured in operations (the paper
// sizes it at 32 op entries, 160 bytes). Blocks larger than the buffer
// never hit.
type L0Buffer struct {
	capOps int
	used   int
	order  []int       // block IDs, MRU first
	ops    map[int]int // block ID -> op count
}

// NewL0Buffer returns a buffer holding up to capOps operations.
func NewL0Buffer(capOps int) *L0Buffer {
	return &L0Buffer{capOps: capOps, ops: map[int]int{}}
}

// CapacityOps returns the buffer size in operations.
func (b *L0Buffer) CapacityOps() int { return b.capOps }

// Lookup reports whether a block's decompressed MOPs are resident,
// updating recency on hit.
func (b *L0Buffer) Lookup(block int) bool {
	if _, ok := b.ops[block]; !ok {
		return false
	}
	for i, id := range b.order {
		if id == block {
			copy(b.order[1:i+1], b.order[:i])
			b.order[0] = block
			return true
		}
	}
	return false
}

// Insert places a freshly decompressed block in the buffer, evicting LRU
// blocks until it fits. Blocks that exceed the whole buffer are not
// cached.
func (b *L0Buffer) Insert(block, numOps int) {
	if numOps > b.capOps {
		return
	}
	if _, ok := b.ops[block]; ok {
		b.Lookup(block) // refresh recency
		return
	}
	for b.used+numOps > b.capOps && len(b.order) > 0 {
		victim := b.order[len(b.order)-1]
		b.order = b.order[:len(b.order)-1]
		b.used -= b.ops[victim]
		delete(b.ops, victim)
	}
	b.order = append([]int{block}, b.order...)
	b.ops[block] = numOps
	b.used += numOps
}

// UsedOps returns the operations currently buffered.
func (b *L0Buffer) UsedOps() int { return b.used }

// L0State is the L0 buffer's behavioral checkpoint: the resident blocks
// in recency order with their op counts. Two states compare equal
// exactly when the buffers would hit and evict identically on every
// future access sequence.
type L0State struct {
	Order []int // resident blocks, MRU first
	Ops   []int // op counts aligned with Order
}

// Equal reports whether two L0 states are bit-identical.
func (s L0State) Equal(o L0State) bool {
	if len(s.Order) != len(o.Order) {
		return false
	}
	for i, b := range s.Order {
		if o.Order[i] != b || o.Ops[i] != s.Ops[i] {
			return false
		}
	}
	return true
}

// Snapshot returns a copy of the buffer's behavioral state (see
// L0State). The snapshot aliases nothing.
func (b *L0Buffer) Snapshot() L0State {
	s := L0State{
		Order: append([]int(nil), b.order...),
		Ops:   make([]int, 0, len(b.order)),
	}
	for _, blk := range b.order {
		s.Ops = append(s.Ops, b.ops[blk])
	}
	return s
}

// Restore overwrites the buffer's state with a snapshot taken from a
// buffer of the same capacity. The snapshot is copied, not retained.
func (b *L0Buffer) Restore(s L0State) {
	b.order = append(b.order[:0], s.Order...)
	for k := range b.ops {
		delete(b.ops, k)
	}
	b.used = 0
	for i, blk := range s.Order {
		b.ops[blk] = s.Ops[i]
		b.used += s.Ops[i]
	}
}
