package cache

import "fmt"

// LineCache is a set-associative instruction cache with true-LRU
// replacement, modeled at memory-line granularity. The paper's Banked
// Cache splits storage into two banks so a MOP spanning a line boundary
// is fetched in one reference; at block granularity that is a timing
// property (already folded into Table 1), so the capacity/conflict
// behavior modeled here is what distinguishes the schemes.
type LineCache struct {
	sets      int
	assoc     int
	lineBytes int
	tags      [][]int64 // tags[set][way]; -1 = invalid; way 0 = MRU
}

// NewLineCache builds a cache with the given geometry.
func NewLineCache(sets, assoc, lineBytes int) (*LineCache, error) {
	if sets < 1 || assoc < 1 || lineBytes < 1 {
		return nil, fmt.Errorf("%w: %d sets x %d ways x %dB", ErrBadGeometry, sets, assoc, lineBytes)
	}
	c := &LineCache{sets: sets, assoc: assoc, lineBytes: lineBytes}
	c.tags = make([][]int64, sets)
	for i := range c.tags {
		c.tags[i] = make([]int64, assoc)
		for j := range c.tags[i] {
			c.tags[i][j] = -1
		}
	}
	return c, nil
}

// CapacityBytes returns total storage.
func (c *LineCache) CapacityBytes() int { return c.sets * c.assoc * c.lineBytes }

// LineBytes returns the line size.
func (c *LineCache) LineBytes() int { return c.lineBytes }

// LineOf returns the line index containing a byte address.
func (c *LineCache) LineOf(addr int) int64 { return int64(addr / c.lineBytes) }

// Probe checks whether a line is resident, updating LRU on hit.
func (c *LineCache) Probe(line int64) bool {
	set := c.tags[int(line)%c.sets]
	for w, tag := range set {
		if tag == line {
			// Move to MRU.
			copy(set[1:w+1], set[:w])
			set[0] = line
			return true
		}
	}
	return false
}

// Fill installs a line as MRU, evicting the LRU way.
func (c *LineCache) Fill(line int64) {
	set := c.tags[int(line)%c.sets]
	for w, tag := range set {
		if tag == line {
			copy(set[1:w+1], set[:w])
			set[0] = line
			return
		}
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line
}

// Flush invalidates the whole cache.
func (c *LineCache) Flush() {
	for i := range c.tags {
		for j := range c.tags[i] {
			c.tags[i][j] = -1
		}
	}
}

// L0Buffer is the small fully-associative buffer of §4 that holds the
// most recently decompressed blocks, measured in operations (the paper
// sizes it at 32 op entries, 160 bytes). Blocks larger than the buffer
// never hit.
type L0Buffer struct {
	capOps int
	used   int
	order  []int       // block IDs, MRU first
	ops    map[int]int // block ID -> op count
}

// NewL0Buffer returns a buffer holding up to capOps operations.
func NewL0Buffer(capOps int) *L0Buffer {
	return &L0Buffer{capOps: capOps, ops: map[int]int{}}
}

// CapacityOps returns the buffer size in operations.
func (b *L0Buffer) CapacityOps() int { return b.capOps }

// Lookup reports whether a block's decompressed MOPs are resident,
// updating recency on hit.
func (b *L0Buffer) Lookup(block int) bool {
	if _, ok := b.ops[block]; !ok {
		return false
	}
	for i, id := range b.order {
		if id == block {
			copy(b.order[1:i+1], b.order[:i])
			b.order[0] = block
			return true
		}
	}
	return false
}

// Insert places a freshly decompressed block in the buffer, evicting LRU
// blocks until it fits. Blocks that exceed the whole buffer are not
// cached.
func (b *L0Buffer) Insert(block, numOps int) {
	if numOps > b.capOps {
		return
	}
	if _, ok := b.ops[block]; ok {
		b.Lookup(block) // refresh recency
		return
	}
	for b.used+numOps > b.capOps && len(b.order) > 0 {
		victim := b.order[len(b.order)-1]
		b.order = b.order[:len(b.order)-1]
		b.used -= b.ops[victim]
		delete(b.ops, victim)
	}
	b.order = append([]int{block}, b.order...)
	b.ops[block] = numOps
	b.used += numOps
}

// UsedOps returns the operations currently buffered.
func (b *L0Buffer) UsedOps() int { return b.used }
