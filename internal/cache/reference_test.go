package cache

import (
	"math/rand"
	"testing"
)

// refLRU is a deliberately naive set-associative LRU cache used as the
// oracle for LineCache's packed implementation.
type refLRU struct {
	sets  int
	assoc int
	data  map[int][]int64 // set -> lines, MRU first
}

func newRefLRU(sets, assoc int) *refLRU {
	return &refLRU{sets: sets, assoc: assoc, data: map[int][]int64{}}
}

func (r *refLRU) probe(line int64) bool {
	set := int(line) % r.sets
	lines := r.data[set]
	for i, l := range lines {
		if l == line {
			copy(lines[1:i+1], lines[:i])
			lines[0] = line
			return true
		}
	}
	return false
}

func (r *refLRU) fill(line int64) {
	set := int(line) % r.sets
	if r.probe(line) {
		return
	}
	lines := r.data[set]
	if len(lines) >= r.assoc {
		lines = lines[:r.assoc-1]
	}
	r.data[set] = append([]int64{line}, lines...)
}

// TestLineCacheAgainstReference drives LineCache and the oracle with the
// same random probe/fill stream and demands identical hit/miss behavior.
func TestLineCacheAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		sets := 1 << uint(rng.Intn(5)) // 1..16
		assoc := 1 + rng.Intn(4)       // 1..4
		space := int64(sets*assoc) * 3 // enough conflict pressure
		c, err := NewLineCache(sets, assoc, 32)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefLRU(sets, assoc)
		for op := 0; op < 5000; op++ {
			line := rng.Int63n(space)
			if rng.Intn(2) == 0 {
				got := c.Probe(line)
				want := ref.probe(line)
				if got != want {
					t.Fatalf("trial %d op %d: Probe(%d) = %v, oracle %v (sets=%d assoc=%d)",
						trial, op, line, got, want, sets, assoc)
				}
			} else {
				c.Fill(line)
				ref.fill(line)
			}
		}
	}
}

// TestL0AgainstReference drives the L0 buffer against a naive oracle.
func TestL0AgainstReference(t *testing.T) {
	type entry struct {
		block, ops int
	}
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 20; trial++ {
		capOps := 8 + rng.Intn(64)
		buf := NewL0Buffer(capOps)
		var ref []entry // MRU first
		used := 0
		lookup := func(b int) bool {
			for i, e := range ref {
				if e.block == b {
					copy(ref[1:i+1], ref[:i])
					ref[0] = e
					return true
				}
			}
			return false
		}
		insert := func(b, ops int) {
			if ops > capOps {
				return
			}
			if lookup(b) {
				return
			}
			for used+ops > capOps && len(ref) > 0 {
				victim := ref[len(ref)-1]
				ref = ref[:len(ref)-1]
				used -= victim.ops
			}
			ref = append([]entry{{b, ops}}, ref...)
			used += ops
		}
		for op := 0; op < 3000; op++ {
			b := rng.Intn(30)
			if rng.Intn(2) == 0 {
				got, want := buf.Lookup(b), lookup(b)
				if got != want {
					t.Fatalf("trial %d op %d: Lookup(%d) = %v, oracle %v (cap=%d)",
						trial, op, b, got, want, capOps)
				}
			} else {
				ops := 1 + rng.Intn(capOps+4)
				buf.Insert(b, ops)
				insert(b, ops)
			}
			if buf.UsedOps() != used {
				t.Fatalf("trial %d op %d: used %d, oracle %d", trial, op, buf.UsedOps(), used)
			}
		}
	}
}
