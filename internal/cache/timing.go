package cache

import "fmt"

// Org selects one of the three IFetch organizations the paper evaluates.
type Org int

// The three organizations of Figures 11–13.
const (
	// OrgBase: the banked cache of §3.4 holding uncompressed 40-bit ops.
	OrgBase Org = iota
	// OrgTailored: §5 — the cache holds tailored ops ready for the core
	// decoder; extraction logic sits on the miss path (+1 cycle there).
	OrgTailored
	// OrgCompressed: §4 — the cache holds Huffman-compressed bits, the
	// decompressor sits on the hit path (pipelined, so +1 cycle of branch
	// misprediction penalty), and a 32-op L0 buffer holds recently
	// decompressed MOPs.
	OrgCompressed
	// OrgCodePack models the related-work organization the paper
	// criticizes (§6, IBM CodePack; also Wolfe's CCRP): the ROM holds
	// compressed code and decompression happens at cache *miss* time, so
	// the ICache holds uncompressed 40-bit ops. ROM size and bus traffic
	// shrink, but the cache gains no capacity and every miss repair pays
	// the decompression stage.
	OrgCodePack
)

// String returns the figure label for the organization.
func (o Org) String() string {
	switch o {
	case OrgBase:
		return "Base"
	case OrgTailored:
		return "Tailored"
	case OrgCompressed:
		return "Compressed"
	case OrgCodePack:
		return "CodePack"
	}
	return fmt.Sprintf("Org(%d)", int(o))
}

// StartupCycles is the paper's Table 1: the cycle cost to begin streaming
// a block, as a function of the next-block prediction outcome, the cache
// hit/miss outcome, the L0 buffer outcome (Compressed only) and n, the
// number of memory lines that must be fetched (on the miss path) or
// decompressed (on the Compressed hit path) to obtain the whole block.
// Base and Tailored have no buffer, so bufHit is ignored for them.
//
// Two cells differ deliberately from a literal reading of the published
// table, following the paper's text rather than its (ambiguously typeset)
// matrix:
//
//   - A mispredicted fetch that hits the L0 buffer costs 2 cycles, not 1:
//     the buffer supplies ready MOPs but cannot undo the pipeline restart
//     (§4 presents the buffer as giving performance "equivalent to an
//     uncompressed cache" for resident loops, not better than it).
//   - A mispredicted fetch that hits the main (compressed) cache costs
//     3+(n-1), one more than Base's 2: this is exactly "the missprediction
//     penalty of the added Huffman decoder stage" that the abstract and
//     §6 name as the reason the Tailored ISA wins — with the published
//     2+(n-1) the added stage would be invisible for single-line blocks.
func StartupCycles(org Org, predCorrect, cacheHit, bufHit bool, n int) int {
	if n < 1 {
		n = 1
	}
	switch org {
	case OrgBase:
		switch {
		case predCorrect && cacheHit:
			return 1
		case predCorrect: // cache miss
			return 1 + (n - 1)
		case cacheHit: // mispredicted
			return 2
		default: // mispredicted, cache miss
			return 8 + (n - 1)
		}
	case OrgTailored:
		switch {
		case predCorrect && cacheHit:
			return 1
		case predCorrect: // miss path carries the extraction stage
			return 2 + (n - 1)
		case cacheHit:
			return 2
		default:
			return 9 + (n - 1)
		}
	case OrgCodePack:
		// Hit path identical to Base (the cache is uncompressed); the
		// miss path carries the decompressor, like Tailored's extraction
		// stage, over the *compressed* line count n.
		switch {
		case predCorrect && cacheHit:
			return 1
		case predCorrect:
			return 2 + (n - 1)
		case cacheHit:
			return 2
		default:
			return 9 + (n - 1)
		}
	case OrgCompressed:
		if bufHit {
			// Ready-to-issue MOPs: as fast as an uncompressed cache hit.
			if predCorrect {
				return 1
			}
			return 2
		}
		switch {
		case predCorrect && cacheHit:
			return 1 + (n - 1) // decompress n lines' worth at one per cycle
		case predCorrect: // cache miss
			return 3 + (n - 1)
		case cacheHit: // mispredicted: hit-path decompressor adds a stage
			return 3 + (n - 1)
		default:
			return 10 + (n - 1)
		}
	}
	panic(fmt.Sprintf("cache: unknown organization %d", int(org)))
}
