package cache

import "fmt"

// Org selects one of the registered IFetch organizations. The four
// built-ins below register in constant order at init time (org.go);
// further organizations can be added with RegisterOrg.
type Org int

// The three organizations of Figures 11–13, plus the §6 CodePack model.
const (
	// OrgBase: the banked cache of §3.4 holding uncompressed 40-bit ops.
	OrgBase Org = iota
	// OrgTailored: §5 — the cache holds tailored ops ready for the core
	// decoder; extraction logic sits on the miss path (+1 cycle there).
	OrgTailored
	// OrgCompressed: §4 — the cache holds Huffman-compressed bits, the
	// decompressor sits on the hit path (pipelined, so +1 cycle of branch
	// misprediction penalty), and a 32-op L0 buffer holds recently
	// decompressed MOPs.
	OrgCompressed
	// OrgCodePack models the related-work organization the paper
	// criticizes (§6, IBM CodePack; also Wolfe's CCRP): the ROM holds
	// compressed code and decompression happens at cache *miss* time, so
	// the ICache holds uncompressed 40-bit ops. ROM size and bus traffic
	// shrink, but the cache gains no capacity and every miss repair pays
	// the decompression stage.
	OrgCodePack
)

// String returns the figure label for the organization.
func (o Org) String() string {
	if spec, ok := o.Spec(); ok {
		return spec.Name
	}
	return fmt.Sprintf("Org(%d)", int(o))
}

// StartupTable is one organization's row set of the paper's Table 1: the
// cycle cost to begin streaming a block as a function of the next-block
// prediction outcome, the cache hit/miss outcome, the L0 buffer outcome
// (organizations with a buffer only) and n, the number of memory lines
// that must be fetched (on the miss path) or decompressed (on a
// scaled hit path) to obtain the whole block. Miss cells always pay
// n-1 extra cycles (one line fetched per cycle); hit cells do so only
// when HitScalesN is set (a hit that streams through a decompressor).
//
// Two cells of the built-in Compressed table differ deliberately from a
// literal reading of the published matrix, following the paper's text
// rather than its (ambiguously typeset) table:
//
//   - A mispredicted fetch that hits the L0 buffer costs 2 cycles, not 1:
//     the buffer supplies ready MOPs but cannot undo the pipeline restart
//     (§4 presents the buffer as giving performance "equivalent to an
//     uncompressed cache" for resident loops, not better than it).
//   - A mispredicted fetch that hits the main (compressed) cache costs
//     3+(n-1), one more than Base's 2: this is exactly "the missprediction
//     penalty of the added Huffman decoder stage" that the abstract and
//     §6 name as the reason the Tailored ISA wins — with the published
//     2+(n-1) the added stage would be invisible for single-line blocks.
type StartupTable struct {
	PredHit     int // predicted correctly, cache hit
	PredMiss    int // predicted correctly, cache miss (+ n-1)
	MispredHit  int // mispredicted, cache hit
	MispredMiss int // mispredicted, cache miss (+ n-1)
	// HitScalesN charges n-1 extra cycles on the hit cells too (the
	// Compressed organization's hit-path decompressor).
	HitScalesN bool
	// BufPredHit and BufMispred are the L0-buffer-hit cells, consulted
	// before everything else (organizations with HasL0 only).
	BufPredHit int
	BufMispred int
}

// Cycles evaluates the table for one fetch. n clamps to 1.
func (t StartupTable) Cycles(predCorrect, cacheHit, bufHit bool, n int) int {
	if n < 1 {
		n = 1
	}
	if bufHit {
		if predCorrect {
			return t.BufPredHit
		}
		return t.BufMispred
	}
	switch {
	case predCorrect && cacheHit:
		if t.HitScalesN {
			return t.PredHit + (n - 1)
		}
		return t.PredHit
	case predCorrect:
		return t.PredMiss + (n - 1)
	case cacheHit:
		if t.HitScalesN {
			return t.MispredHit + (n - 1)
		}
		return t.MispredHit
	default:
		return t.MispredMiss + (n - 1)
	}
}

// StartupCycles evaluates an organization's Table 1 matrix. The bufHit
// flag is ignored for organizations without an L0 buffer.
func StartupCycles(org Org, predCorrect, cacheHit, bufHit bool, n int) int {
	spec, ok := org.Spec()
	if !ok {
		panic(fmt.Sprintf("cache: unknown organization %d", int(org)))
	}
	return spec.Timing.Cycles(predCorrect, cacheHit, bufHit && spec.HasL0, n)
}
