package cache

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/emu"
	"repro/internal/image"
	"repro/internal/workload"
)

func TestCodePackTiming(t *testing.T) {
	const n = 3
	// Hit path identical to Base; miss path carries the decompressor.
	if got := StartupCycles(OrgCodePack, true, true, false, n); got != 1 {
		t.Errorf("codepack correct/hit = %d, want 1", got)
	}
	if got := StartupCycles(OrgCodePack, false, true, false, n); got != 2 {
		t.Errorf("codepack incorrect/hit = %d, want 2", got)
	}
	if got := StartupCycles(OrgCodePack, true, false, false, n); got != 2+(n-1) {
		t.Errorf("codepack correct/miss = %d, want %d", got, 2+(n-1))
	}
	if got := StartupCycles(OrgCodePack, false, false, false, n); got != 9+(n-1) {
		t.Errorf("codepack incorrect/miss = %d, want %d", got, 9+(n-1))
	}
	if OrgCodePack.String() != "CodePack" {
		t.Error("label")
	}
}

func TestNewSimRejectsCodePack(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	if _, err := NewSim(OrgCodePack, DefaultConfig(OrgCodePack), ims[OrgBase], sp); err == nil {
		t.Error("NewSim accepted OrgCodePack without a ROM image")
	}
}

// TestCodePackProfile reproduces the §6 criticism: the CodePack-style
// organization saves ROM and bus traffic (compressed fetches) but gains
// no cache capacity, so on a capacity-bound benchmark it cannot match the
// paper's Compressed organization — and it pays the miss-time
// decompressor relative to Base.
func TestCodePackProfile(t *testing.T) {
	sp, ims := pipeline(t, "vortex")
	prof := workload.MustProfile("vortex")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 150000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	byteEnc, err := compress.NewByteHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	byteIm, err := image.Build(sp, byteEnc)
	if err != nil {
		t.Fatal(err)
	}
	cpSim, err := NewCodePackSim(DefaultConfig(OrgCodePack), ims[OrgBase], byteIm, sp)
	if err != nil {
		t.Fatal(err)
	}
	cp := mustRun(t, cpSim, tr)
	base := runOrg(t, OrgBase, sp, ims[OrgBase], tr)
	comp := runOrg(t, OrgCompressed, sp, ims[OrgCompressed], tr)

	// Same cache contents as Base: identical miss rate.
	if cp.MissRate() != base.MissRate() {
		t.Errorf("codepack miss rate %.4f != base %.4f (uncompressed cache)",
			cp.MissRate(), base.MissRate())
	}
	// Slower than Base (miss-time decompression), no faster than the
	// paper's Compressed on a capacity-bound benchmark.
	if cp.IPC() >= base.IPC() {
		t.Errorf("codepack IPC %.3f not below base %.3f", cp.IPC(), base.IPC())
	}
	if cp.IPC() >= comp.IPC() {
		t.Errorf("codepack IPC %.3f not below hit-path-compressed %.3f",
			cp.IPC(), comp.IPC())
	}
	// But the bus carries compressed lines: fewer beats and bytes than
	// Base for the identical miss sequence. (Bit flips are not asserted:
	// line-granular repair streams high-entropy compressed lines whose
	// flip density can exceed the structured uncompressed encoding's.)
	if cp.BusBeats >= base.BusBeats {
		t.Errorf("codepack beats %d not below base %d", cp.BusBeats, base.BusBeats)
	}
	if cp.BytesFetched >= base.BytesFetched {
		t.Errorf("codepack bytes %d not below base %d", cp.BytesFetched, base.BytesFetched)
	}
	// Regression (bus-granularity fix): ROM miss repair is line-granular,
	// so volume counters must agree with the fetched line count exactly.
	if cp.BytesFetched != cp.LinesFetched*40 {
		t.Errorf("codepack bytes %d != %d lines x 40B lines", cp.BytesFetched, cp.LinesFetched)
	}
}

func TestCodePackMismatchedROM(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	spB, imsB := pipeline(t, "go")
	if _, err := NewCodePackSim(DefaultConfig(OrgCodePack), ims[OrgBase], imsB[OrgCompressed], sp); err == nil {
		t.Error("accepted ROM image from a different program")
	}
	_ = spB
}

func TestPredictorConfig(t *testing.T) {
	sp, ims := pipeline(t, "go")
	prof := workload.MustProfile("go")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 100000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[PredictorKind]float64{}
	for _, pred := range []PredictorKind{PredictorBimodal, PredictorGShare, PredictorPAs} {
		cfg := DefaultConfig(OrgBase)
		cfg.Predictor = pred
		sim, err := NewSim(OrgBase, cfg, ims[OrgBase], sp)
		if err != nil {
			t.Fatal(err)
		}
		rates[pred] = mustRun(t, sim, tr).MispredictRate()
	}
	// go's branches carry local patterns the stochastic walk generates as
	// biased coins; all predictors should land in a sane band and the
	// two-level ones must not be catastrophically worse.
	for pred, r := range rates {
		if r <= 0 || r > 0.5 {
			t.Errorf("%s mispredict rate %.3f implausible", pred, r)
		}
	}
	cfg := DefaultConfig(OrgBase)
	cfg.Predictor = PredictorKind("nonesuch")
	if _, err := NewSim(OrgBase, cfg, ims[OrgBase], sp); err == nil {
		t.Error("accepted unknown predictor")
	}
}

func TestPerfectPredictionZeroMispredicts(t *testing.T) {
	sp, ims := pipeline(t, "go")
	prof := workload.MustProfile("go")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 50000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(OrgBase)
	cfg.PerfectPrediction = true
	sim, err := NewSim(OrgBase, cfg, ims[OrgBase], sp)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, sim, tr)
	if r.Mispredicts != 0 {
		t.Errorf("perfect prediction recorded %d mispredicts", r.Mispredicts)
	}
	real, err := NewSim(OrgBase, DefaultConfig(OrgBase), ims[OrgBase], sp)
	if err != nil {
		t.Fatal(err)
	}
	if rr := mustRun(t, real, tr); rr.IPC() > r.IPC() {
		t.Errorf("real predictor IPC %.3f beats perfect %.3f", rr.IPC(), r.IPC())
	}
}
