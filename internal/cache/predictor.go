package cache

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/atb"
)

// PredictorKind names a registered branch-direction predictor. The zero
// value selects the paper's default (bimodal). Config.Predictor carries
// one of these; NewSim validates it at construction time.
type PredictorKind string

// The built-in predictors: the paper's per-block 2-bit counters and the
// two-level predictors it names as future work (§7).
const (
	// PredictorDefault is the zero value, an alias for PredictorBimodal.
	PredictorDefault PredictorKind = ""
	// PredictorBimodal is the paper's per-block 2-bit saturating counter.
	PredictorBimodal PredictorKind = "bimodal"
	// PredictorGShare is McFarling's global-history predictor.
	PredictorGShare PredictorKind = "gshare"
	// PredictorPAs is the Yeh/Patt two-level per-address predictor.
	PredictorPAs PredictorKind = "pas"
)

var (
	predMu   sync.RWMutex
	predCtor = map[PredictorKind]func(blocks int) (Predictor, error){
		PredictorBimodal: func(blocks int) (Predictor, error) {
			return atb.NewBimodal(blocks), nil
		},
		PredictorGShare: func(int) (Predictor, error) {
			return atb.NewGShare(14)
		},
		PredictorPAs: func(blocks int) (Predictor, error) {
			return atb.NewPAs(blocks, 10)
		},
	}
)

// RegisterPredictor adds a direction-predictor constructor under a new
// kind; blocks is the program's basic-block count.
func RegisterPredictor(kind PredictorKind, build func(blocks int) (Predictor, error)) error {
	if kind == PredictorDefault {
		return fmt.Errorf("%w: predictor needs a non-empty kind", ErrBadSpec)
	}
	if build == nil {
		return fmt.Errorf("%w: predictor %s needs a constructor", ErrBadSpec, kind)
	}
	predMu.Lock()
	defer predMu.Unlock()
	if _, dup := predCtor[kind]; dup {
		return fmt.Errorf("%w: predictor %s already registered", ErrBadSpec, kind)
	}
	predCtor[kind] = build
	return nil
}

// PredictorKinds returns every registered kind, sorted.
func PredictorKinds() []PredictorKind {
	predMu.RLock()
	defer predMu.RUnlock()
	kinds := make([]PredictorKind, 0, len(predCtor))
	for k := range predCtor {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// ParsePredictor validates a predictor name (e.g. a CLI flag value); the
// empty string selects the default.
func ParsePredictor(name string) (PredictorKind, error) {
	kind := PredictorKind(name)
	if kind == PredictorDefault {
		return PredictorDefault, nil
	}
	predMu.RLock()
	_, ok := predCtor[kind]
	predMu.RUnlock()
	if !ok {
		return PredictorDefault, fmt.Errorf("%w: unknown predictor %q (have %v)",
			ErrBadConfig, name, PredictorKinds())
	}
	return kind, nil
}

// newPredictor constructs the direction predictor for a kind.
func newPredictor(kind PredictorKind, blocks int) (Predictor, error) {
	if kind == PredictorDefault {
		kind = PredictorBimodal
	}
	predMu.RLock()
	build, ok := predCtor[kind]
	predMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: unknown predictor %q", ErrBadConfig, kind)
	}
	return build(blocks)
}
