package cache

import (
	"fmt"
	"strings"
	"sync"
)

// OrgSpec is the declarative description of one IFetch organization: the
// stage composition Sim.Run drives. An organization is data — geometry
// defaults, which optional stages exist, the Decompressor volume rules
// and the Table 1 startup-cycle matrix — so new (encoding, organization)
// pairs register at runtime without touching the simulator loop.
type OrgSpec struct {
	// Name is the figure label ("Base", "Compressed", ...).
	Name string
	// LineBytes is the default cache-line size for DefaultConfig: 40 for
	// organizations whose cache holds uncompressed 40-bit ops, 32
	// otherwise.
	LineBytes int
	// HasL0 marks organizations with a post-decompressor L0 buffer (§4).
	HasL0 bool
	// NeedsROM marks organizations whose miss path reads a separately
	// encoded ROM image behind the bus (CodePack-style, §6).
	NeedsROM bool
	// Decode is the decompressor/extractor stage's volume rule.
	Decode Decompressor
	// Timing is the organization's Table 1 startup-cycle matrix.
	Timing StartupTable
}

var (
	orgMu    sync.RWMutex
	orgSpecs []OrgSpec
	orgIDs   = map[string]Org{} // lower-cased name -> Org
)

// RegisterOrg adds an organization to the registry and returns its Org
// id. Names are unique case-insensitively; the Decode stage is required.
func RegisterOrg(spec OrgSpec) (Org, error) {
	if spec.Name == "" {
		return 0, fmt.Errorf("%w: organization needs a name", ErrBadSpec)
	}
	if spec.Decode == nil {
		return 0, fmt.Errorf("%w: organization %s needs a Decompressor", ErrBadSpec, spec.Name)
	}
	orgMu.Lock()
	defer orgMu.Unlock()
	key := strings.ToLower(spec.Name)
	if _, dup := orgIDs[key]; dup {
		return 0, fmt.Errorf("%w: organization %s already registered", ErrBadSpec, spec.Name)
	}
	org := Org(len(orgSpecs))
	orgSpecs = append(orgSpecs, spec)
	orgIDs[key] = org
	return org, nil
}

// MustRegisterOrg is RegisterOrg, panicking on error (for init-time
// registration of built-ins).
func MustRegisterOrg(spec OrgSpec) Org {
	org, err := RegisterOrg(spec)
	if err != nil {
		panic(err)
	}
	return org
}

// Spec returns the registered description of an organization.
func (o Org) Spec() (OrgSpec, bool) {
	orgMu.RLock()
	defer orgMu.RUnlock()
	if o < 0 || int(o) >= len(orgSpecs) {
		return OrgSpec{}, false
	}
	return orgSpecs[int(o)], true
}

// Orgs returns every registered organization in registration order.
func Orgs() []Org {
	orgMu.RLock()
	defer orgMu.RUnlock()
	out := make([]Org, len(orgSpecs))
	for i := range out {
		out[i] = Org(i)
	}
	return out
}

// OrgByName resolves an organization label case-insensitively.
func OrgByName(name string) (Org, bool) {
	orgMu.RLock()
	defer orgMu.RUnlock()
	org, ok := orgIDs[strings.ToLower(name)]
	return org, ok
}

// The built-in organizations of Figures 11–13 plus the §6 CodePack
// model, registered in Org constant order. The StartupTable cells are
// the paper's Table 1 (see the StartupTable doc comment in timing.go for
// the two deliberate deviations from the published matrix).
func init() {
	builtins := []struct {
		org  Org
		spec OrgSpec
	}{
		{OrgBase, OrgSpec{
			Name:      "Base",
			LineBytes: 40, // uncompressed cache: a 40-bit-op multiple
			Decode:    PassThrough{},
			Timing:    StartupTable{PredHit: 1, PredMiss: 1, MispredHit: 2, MispredMiss: 8},
		}},
		{OrgTailored, OrgSpec{
			Name:      "Tailored",
			LineBytes: 32,
			Decode:    PassThrough{}, // extraction cost is the +1 on the miss-path cells
			Timing:    StartupTable{PredHit: 1, PredMiss: 2, MispredHit: 2, MispredMiss: 9},
		}},
		{OrgCompressed, OrgSpec{
			Name:      "Compressed",
			LineBytes: 32,
			HasL0:     true,
			Decode:    HitDecompress{},
			Timing: StartupTable{
				PredHit: 1, PredMiss: 3, MispredHit: 3, MispredMiss: 10,
				// The hit path streams through the decompressor, so hit
				// cells scale with n too (one line's worth per cycle).
				HitScalesN: true,
				BufPredHit: 1, BufMispred: 2,
			},
		}},
		{OrgCodePack, OrgSpec{
			Name:      "CodePack",
			LineBytes: 40, // the cache is uncompressed, as in Base
			NeedsROM:  true,
			Decode:    MissDecompress{},
			// Hit path identical to Base; the miss path carries the
			// decompressor, like Tailored's extraction stage, over the
			// *compressed* line count n.
			Timing: StartupTable{PredHit: 1, PredMiss: 2, MispredHit: 2, MispredMiss: 9},
		}},
	}
	for _, b := range builtins {
		if got := MustRegisterOrg(b.spec); got != b.org {
			panic(fmt.Sprintf("cache: %s registered as Org(%d), want Org(%d)",
				b.spec.Name, int(got), int(b.org)))
		}
	}
}
