package cache

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/emu"
	"repro/internal/image"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/tailor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestTable1Matrix asserts every cell of the paper's Table 1.
func TestTable1Matrix(t *testing.T) {
	const n = 4
	cases := []struct {
		org      Org
		correct  bool
		hit      bool
		bufHit   bool
		want     int
		describe string
	}{
		// Base.
		{OrgBase, true, true, false, 1, "base correct/hit"},
		{OrgBase, true, false, false, 1 + (n - 1), "base correct/miss"},
		{OrgBase, false, true, false, 2, "base incorrect/hit"},
		{OrgBase, false, false, false, 8 + (n - 1), "base incorrect/miss"},
		// Tailored.
		{OrgTailored, true, true, false, 1, "tailored correct/hit"},
		{OrgTailored, true, false, false, 2 + (n - 1), "tailored correct/miss"},
		{OrgTailored, false, true, false, 2, "tailored incorrect/hit"},
		{OrgTailored, false, false, false, 9 + (n - 1), "tailored incorrect/miss"},
		// Compressed, buffer hit: as fast as an uncompressed hit (the
		// restart on a misprediction is not bypassed).
		{OrgCompressed, true, true, true, 1, "compressed correct/hit/bufhit"},
		{OrgCompressed, true, false, true, 1, "compressed correct/miss/bufhit"},
		{OrgCompressed, false, true, true, 2, "compressed incorrect/hit/bufhit"},
		{OrgCompressed, false, false, true, 2, "compressed incorrect/miss/bufhit"},
		// Compressed, buffer miss; mispredictions pay the added decoder
		// stage (see the timing.go doc comment for the two deliberate
		// deviations from the published matrix).
		{OrgCompressed, true, true, false, 1 + (n - 1), "compressed correct/hit/bufmiss"},
		{OrgCompressed, true, false, false, 3 + (n - 1), "compressed correct/miss/bufmiss"},
		{OrgCompressed, false, true, false, 3 + (n - 1), "compressed incorrect/hit/bufmiss"},
		{OrgCompressed, false, false, false, 10 + (n - 1), "compressed incorrect/miss/bufmiss"},
	}
	for _, c := range cases {
		if got := StartupCycles(c.org, c.correct, c.hit, c.bufHit, n); got != c.want {
			t.Errorf("%s: %d cycles, want %d", c.describe, got, c.want)
		}
	}
	// Base/Tailored ignore the buffer flag entirely.
	if StartupCycles(OrgBase, true, true, true, 1) != 1 {
		t.Error("base must ignore buffer hit flag")
	}
	// n clamps to 1.
	if StartupCycles(OrgBase, true, false, false, 0) != 1 {
		t.Error("n=0 should clamp to 1")
	}
}

func TestLineCacheLRU(t *testing.T) {
	c, err := NewLineCache(1, 2, 32) // one set, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	if c.Probe(1) {
		t.Error("cold probe hit")
	}
	c.Fill(1)
	c.Fill(2)
	if !c.Probe(1) || !c.Probe(2) {
		t.Error("filled lines missing")
	}
	// 1 probed then 2: LRU is 1 after probing 2? Order: probe(1) -> 1 MRU;
	// probe(2) -> 2 MRU, 1 LRU. Fill 3 evicts 1.
	c.Fill(3)
	if c.Probe(1) {
		t.Error("LRU line survived eviction")
	}
	if !c.Probe(2) || !c.Probe(3) {
		t.Error("MRU lines evicted")
	}
}

func TestLineCacheGeometry(t *testing.T) {
	if _, err := NewLineCache(0, 2, 32); err == nil {
		t.Error("accepted 0 sets")
	}
	c, _ := NewLineCache(256, 2, 32)
	if c.CapacityBytes() != 16*1024 {
		t.Errorf("capacity = %d, want 16KB", c.CapacityBytes())
	}
	base, _ := NewLineCache(256, 2, 40)
	if base.CapacityBytes() != 20*1024 {
		t.Errorf("base capacity = %d, want 20KB", base.CapacityBytes())
	}
	if c.LineOf(63) != 1 || c.LineOf(64) != 2 {
		t.Error("LineOf arithmetic")
	}
}

func TestLineCacheFlush(t *testing.T) {
	c, _ := NewLineCache(4, 2, 32)
	c.Fill(5)
	c.Flush()
	if c.Probe(5) {
		t.Error("line survived flush")
	}
}

func TestL0Buffer(t *testing.T) {
	b := NewL0Buffer(32)
	if b.Lookup(1) {
		t.Error("cold lookup hit")
	}
	b.Insert(1, 10)
	b.Insert(2, 10)
	b.Insert(3, 10)
	if !b.Lookup(1) || !b.Lookup(2) || !b.Lookup(3) {
		t.Error("inserted blocks missing")
	}
	if b.UsedOps() != 30 {
		t.Errorf("used = %d, want 30", b.UsedOps())
	}
	// Inserting 10 more evicts the LRU (block 1, just refreshed order:
	// lookups made order 3,2,1 -> MRU 3? Lookup order above was 1,2,3 so
	// MRU is 3, LRU is 1).
	b.Insert(4, 10)
	if b.Lookup(1) {
		t.Error("LRU block survived")
	}
	if !b.Lookup(4) {
		t.Error("new block missing")
	}
}

func TestL0BufferOversized(t *testing.T) {
	b := NewL0Buffer(32)
	b.Insert(9, 40) // bigger than the whole buffer
	if b.Lookup(9) {
		t.Error("oversized block cached")
	}
	if b.UsedOps() != 0 {
		t.Error("oversized insert consumed space")
	}
}

func TestL0BufferReinsertRefreshes(t *testing.T) {
	b := NewL0Buffer(20)
	b.Insert(1, 10)
	b.Insert(2, 10)
	b.Insert(1, 10) // refresh, no growth
	if b.UsedOps() != 20 {
		t.Errorf("used = %d, want 20", b.UsedOps())
	}
	b.Insert(3, 10) // evicts LRU = 2
	if b.Lookup(2) {
		t.Error("refreshed block was evicted instead of LRU")
	}
	if !b.Lookup(1) {
		t.Error("refreshed block missing")
	}
}

// pipeline compiles a benchmark and builds images for all organizations.
func pipeline(t testing.TB, name string) (*sched.Program, map[Org]*image.Image) {
	t.Helper()
	p, err := workload.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.Allocate(p); err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	ims := map[Org]*image.Image{}
	baseIm, err := image.Build(sp, compress.NewBase())
	if err != nil {
		t.Fatal(err)
	}
	ims[OrgBase] = baseIm
	fe, err := compress.NewFullHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	if ims[OrgCompressed], err = image.Build(sp, fe); err != nil {
		t.Fatal(err)
	}
	te, err := tailor.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	if ims[OrgTailored], err = image.Build(sp, te); err != nil {
		t.Fatal(err)
	}
	return sp, ims
}

func runOrg(t testing.TB, org Org, sp *sched.Program, im *image.Image, tr *trace.Trace) Result {
	t.Helper()
	sim, err := NewSim(org, DefaultConfig(org), im, sp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// mustRun replays a trace, failing the test on a validation error.
func mustRun(t testing.TB, sim *Sim, tr *trace.Trace) Result {
	t.Helper()
	res, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimBasicInvariants(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	prof := workload.MustProfile("compress")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 50000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	ideal := RunIdeal(tr)
	for _, org := range []Org{OrgBase, OrgTailored, OrgCompressed} {
		res := runOrg(t, org, sp, ims[org], tr)
		if res.Cycles < res.MOPs {
			t.Errorf("%v: cycles %d below MOP floor %d", org, res.Cycles, res.MOPs)
		}
		if res.IPC() <= 0 || res.IPC() > ideal.IPC() {
			t.Errorf("%v: IPC %.3f outside (0, ideal=%.3f]", org, res.IPC(), ideal.IPC())
		}
		if res.BlockFetches != int64(tr.Len()) {
			t.Errorf("%v: %d fetches for %d events", org, res.BlockFetches, tr.Len())
		}
		if org == OrgCompressed && res.BufferHits == 0 {
			t.Error("compressed: L0 buffer never hit on a loopy trace")
		}
		if org != OrgCompressed && res.BufferHits != 0 {
			t.Errorf("%v: buffer hits reported without a buffer", org)
		}
	}
}

// The tiny compress benchmark fits every cache: differences must come
// from mispredictions only, so Tailored ~ Base > Compressed is expected
// per the paper's argument.
func TestSimSmallFootprintShape(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	prof := workload.MustProfile("compress")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 100000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	base := runOrg(t, OrgBase, sp, ims[OrgBase], tr)
	tl := runOrg(t, OrgTailored, sp, ims[OrgTailored], tr)
	if base.MissRate() > 0.02 {
		t.Errorf("compress should fit the base cache; miss rate %.3f", base.MissRate())
	}
	// Identical traces, identical predictors: same mispredict counts.
	if base.Mispredicts != tl.Mispredicts {
		t.Errorf("mispredicts differ: base %d vs tailored %d",
			base.Mispredicts, tl.Mispredicts)
	}
}

// A large-footprint benchmark must show the capacity effect: the
// compressed cache holds ~3x more instructions, so its miss rate must be
// far below base's.
func TestSimCapacityEffect(t *testing.T) {
	sp, ims := pipeline(t, "vortex")
	prof := workload.MustProfile("vortex")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 150000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	base := runOrg(t, OrgBase, sp, ims[OrgBase], tr)
	comp := runOrg(t, OrgCompressed, sp, ims[OrgCompressed], tr)
	tl := runOrg(t, OrgTailored, sp, ims[OrgTailored], tr)
	if base.MissRate() < 0.02 {
		t.Skipf("vortex unexpectedly fits the base cache (miss %.4f)", base.MissRate())
	}
	if comp.MissRate() >= base.MissRate() {
		t.Errorf("compressed miss rate %.4f not below base %.4f",
			comp.MissRate(), base.MissRate())
	}
	if tl.MissRate() >= base.MissRate() {
		t.Errorf("tailored miss rate %.4f not below base %.4f",
			tl.MissRate(), base.MissRate())
	}
}

// Figure 14's shape: bus bit flips track the degree of compression.
func TestSimBitFlipsTrackCompression(t *testing.T) {
	sp, ims := pipeline(t, "gcc")
	prof := workload.MustProfile("gcc")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 150000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	base := runOrg(t, OrgBase, sp, ims[OrgBase], tr)
	comp := runOrg(t, OrgCompressed, sp, ims[OrgCompressed], tr)
	tl := runOrg(t, OrgTailored, sp, ims[OrgTailored], tr)
	if comp.BitFlips >= base.BitFlips {
		t.Errorf("compressed flips %d not below base %d", comp.BitFlips, base.BitFlips)
	}
	if tl.BitFlips >= base.BitFlips {
		t.Errorf("tailored flips %d not below base %d", tl.BitFlips, base.BitFlips)
	}
}

func TestSimDeterministic(t *testing.T) {
	sp, ims := pipeline(t, "go")
	prof := workload.MustProfile("go")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 20000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	r1 := runOrg(t, OrgCompressed, sp, ims[OrgCompressed], tr)
	r2 := runOrg(t, OrgCompressed, sp, ims[OrgCompressed], tr)
	if r1 != r2 {
		t.Error("identical simulations diverged")
	}
}

func TestNewSimMismatch(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	spB, _ := pipeline(t, "go")
	if _, err := NewSim(OrgBase, DefaultConfig(OrgBase), ims[OrgBase], spB); err == nil {
		t.Error("NewSim accepted mismatched image/program")
	}
	_ = sp
}

// TestDefaultConfigGeometry pins DESIGN.md §1's cache geometry for every
// registered organization: 256 sets × 2 ways, 40-byte lines (20 KB) for
// caches holding uncompressed 40-bit ops, 32-byte lines (16 KB)
// otherwise. Table-driven over the org registry so a registered
// organization without a sane default geometry fails here.
func TestDefaultConfigGeometry(t *testing.T) {
	wantLine := map[Org]int{
		OrgBase:       40,
		OrgTailored:   32,
		OrgCompressed: 32,
		OrgCodePack:   40,
	}
	for _, org := range Orgs() {
		spec, ok := org.Spec()
		if !ok {
			t.Fatalf("Orgs() returned unregistered %v", org)
		}
		cfg := DefaultConfig(org)
		if cfg.Sets != 256 || cfg.Assoc != 2 {
			t.Errorf("%s: %d sets x %d ways, want 256 x 2", spec.Name, cfg.Sets, cfg.Assoc)
		}
		if cfg.LineBytes != spec.LineBytes {
			t.Errorf("%s: line %dB, want spec's %dB", spec.Name, cfg.LineBytes, spec.LineBytes)
		}
		if want, ok := wantLine[org]; ok && cfg.LineBytes != want {
			t.Errorf("%s: line %dB, want %dB", spec.Name, cfg.LineBytes, want)
		}
		lc, err := NewLineCache(cfg.Sets, cfg.Assoc, cfg.LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		want := 16 * 1024
		if cfg.LineBytes == 40 {
			want = 20 * 1024 // line size must be a 40-bit multiple
		}
		if lc.CapacityBytes() != want {
			t.Errorf("%s capacity %d, want %d", spec.Name, lc.CapacityBytes(), want)
		}
	}
}

func TestRunIdeal(t *testing.T) {
	tr := &trace.Trace{Name: "x", Ops: 100, MOPs: 40}
	res := RunIdeal(tr)
	if res.Cycles != 40 || res.IPC() != 2.5 {
		t.Errorf("ideal: cycles %d IPC %.2f", res.Cycles, res.IPC())
	}
}

// TestRunIdealEmptyTrace pins the zero-length edge: an empty trace's
// ideal result must report zero (not NaN) everywhere.
func TestRunIdealEmptyTrace(t *testing.T) {
	res := RunIdeal(&trace.Trace{Name: "empty"})
	if res.Cycles != 0 || res.Ops != 0 {
		t.Errorf("empty ideal: %+v", res)
	}
	for name, v := range map[string]float64{
		"IPC": res.IPC(), "MissRate": res.MissRate(), "MispredictRate": res.MispredictRate(),
	} {
		if v != 0 {
			t.Errorf("empty ideal %s = %v, want 0", name, v)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("empty ideal %s = %v; division by zero leaked", name, v)
		}
	}
}

// TestResultRateZeroDivision pins the rate accessors on a zero Result:
// every denominator is zero and every rate must come back 0, never NaN.
func TestResultRateZeroDivision(t *testing.T) {
	var r Result
	if got := r.IPC(); got != 0 || math.IsNaN(got) {
		t.Errorf("zero Result IPC = %v, want 0", got)
	}
	if got := r.MissRate(); got != 0 || math.IsNaN(got) {
		t.Errorf("zero Result MissRate = %v, want 0", got)
	}
	if got := r.MispredictRate(); got != 0 || math.IsNaN(got) {
		t.Errorf("zero Result MispredictRate = %v, want 0", got)
	}
}

func TestOrgString(t *testing.T) {
	if OrgBase.String() != "Base" || OrgTailored.String() != "Tailored" ||
		OrgCompressed.String() != "Compressed" {
		t.Error("org labels")
	}
}
