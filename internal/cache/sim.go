// Package cache implements the paper's instruction-fetch simulators: the
// baseline Banked Cache (§3.4) for uncompressed code, the compressed-code
// ICache with hit-path decompressor and L0 buffer (§4, Figure 11), and
// the tailored-ISA ICache with miss-path extraction (§5, Figure 12). All
// three are trace-driven at basic-block granularity with the cycle-count
// assumptions of Table 1, and report the paper's metrics: operations
// delivered per cycle (Figure 13) and memory-bus bit flips (Figure 14).
//
// The simulator is a composable stage pipeline: Sim.Run drives the
// ATBStage, L0Store, CacheArray, Decompressor and BusModel interfaces
// (stages.go), and each organization — including the related-work
// CodePack model (§6) — is a declarative OrgSpec in a registry (org.go)
// naming its stage composition and Table 1 timing.
package cache

import (
	"fmt"

	"repro/internal/atb"
	"repro/internal/image"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Config is the cache geometry and associated structures.
type Config struct {
	Sets       int
	Assoc      int
	LineBytes  int
	L0Ops      int // L0 buffer capacity in ops (organizations with HasL0)
	ATBEntries int
	BusBytes   int
	// PerfectPrediction disables the next-block predictor and treats
	// every prediction as correct — the ablation isolating how much of
	// each scheme's behaviour is misprediction penalty (the paper's
	// central explanation for Tailored beating Compressed).
	PerfectPrediction bool
	// Predictor selects the direction predictor: PredictorDefault (or
	// PredictorBimodal) for the paper's per-block 2-bit counters,
	// PredictorGShare or PredictorPAs for the future-work two-level
	// predictors (§7). Validated at NewSim time.
	Predictor PredictorKind
}

// DefaultConfig returns the paper's experimental configuration: 16 KB
// 2-way set associative (256 sets x 32 B lines) for the compressed and
// tailored caches; organizations holding uncompressed ops need a line
// size that is a multiple of the 40-bit op, making theirs effectively
// 20 KB (256 sets x 40 B lines). The line size comes from the
// organization's registered spec.
func DefaultConfig(org Org) Config {
	cfg := Config{
		Sets: 256, Assoc: 2, LineBytes: 32,
		L0Ops:      32,
		ATBEntries: atb.DefaultEntries,
		BusBytes:   power.DefaultBusBytes,
	}
	if spec, ok := org.Spec(); ok && spec.LineBytes > 0 {
		cfg.LineBytes = spec.LineBytes
	}
	return cfg
}

// Result carries one simulation's metrics.
type Result struct {
	Benchmark string
	Scheme    string // encoding scheme name
	Org       string // organization label

	Cycles int64
	Ops    int64
	MOPs   int64

	BlockFetches int64
	CacheLookups int64 // block-granular cache accesses (after L0 filter)
	CacheMisses  int64 // block fetches with at least one missing line
	LinesFetched int64
	BufferHits   int64
	Mispredicts  int64

	BusBeats     int64
	BitFlips     int64
	BytesFetched int64

	ATBHitRate float64
}

// IPC returns operations delivered per cycle — the paper's Figure 13
// metric.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Ops) / float64(r.Cycles)
}

// MissRate returns block-granular cache miss rate.
func (r Result) MissRate() float64 {
	if r.CacheLookups == 0 {
		return 0
	}
	return float64(r.CacheMisses) / float64(r.CacheLookups)
}

// MispredictRate returns next-block mispredictions per block fetch.
func (r Result) MispredictRate() float64 {
	if r.BlockFetches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.BlockFetches)
}

// Sim is one IFetch simulation instance: the fixed stage-pipeline driver
// configured by an organization's OrgSpec.
type Sim struct {
	org  Org
	spec OrgSpec
	cfg  Config
	im   *image.Image // the image the cache indexes
	rom  *image.Image // NeedsROM organizations: the encoded ROM behind the bus
	sp   *sched.Program

	cache CacheArray
	buf   L0Store // nil unless the spec has an L0 buffer
	atb   ATBStage
	bus   BusModel
}

// NewSim builds a simulator for a program image under one organization.
// The image must be encoded with the scheme matching the organization
// (base for OrgBase, a Huffman scheme for OrgCompressed, the tailored
// encoding for OrgTailored); the simulator is agnostic beyond block
// addresses and sizes. Organizations that fetch from a separate ROM
// image need NewOrgSim (or NewCodePackSim).
func NewSim(org Org, cfg Config, im *image.Image, sp *sched.Program) (*Sim, error) {
	if spec, ok := org.Spec(); ok && spec.NeedsROM {
		return nil, fmt.Errorf("%w: Org%s needs two images; use NewCodePackSim", ErrBadConfig, spec.Name)
	}
	return NewOrgSim(org, cfg, im, nil, sp)
}

// NewOrgSim builds a simulator for any registered organization. rom is
// the separately encoded ROM image behind the bus and must be non-nil
// exactly when the organization's spec sets NeedsROM.
func NewOrgSim(org Org, cfg Config, im, rom *image.Image, sp *sched.Program) (*Sim, error) {
	spec, ok := org.Spec()
	if !ok {
		return nil, fmt.Errorf("%w: unknown organization %d", ErrBadConfig, int(org))
	}
	if err := validateImage(im, "cache", sp); err != nil {
		return nil, err
	}
	if spec.NeedsROM {
		if rom == nil {
			return nil, fmt.Errorf("%w: organization %s needs a ROM image", ErrBadConfig, spec.Name)
		}
		if err := validateImage(rom, "ROM", sp); err != nil {
			return nil, err
		}
	} else if rom != nil {
		return nil, fmt.Errorf("%w: organization %s takes no ROM image", ErrBadConfig, spec.Name)
	}
	lc, err := NewLineCache(cfg.Sets, cfg.Assoc, cfg.LineBytes)
	if err != nil {
		return nil, err
	}
	falls := make([]int, len(sp.Blocks))
	for i, b := range sp.Blocks {
		falls[i] = b.FallTarget
	}
	infos := atb.InfosFromFalls(falls)
	if err := atb.ValidateInfos(infos); err != nil {
		return nil, err
	}
	dir, err := newPredictor(cfg.Predictor, len(sp.Blocks))
	if err != nil {
		return nil, err
	}
	s := &Sim{
		org:   org,
		spec:  spec,
		cfg:   cfg,
		im:    im,
		rom:   rom,
		sp:    sp,
		cache: lc,
		atb:   atb.NewWithPredictor(infos, cfg.ATBEntries, dir),
		bus:   power.NewBus(cfg.BusBytes),
	}
	if spec.HasL0 {
		if cfg.L0Ops < 0 {
			return nil, fmt.Errorf("%w: L0 buffer capacity %d ops", ErrBadGeometry, cfg.L0Ops)
		}
		s.buf = NewL0Buffer(cfg.L0Ops)
	}
	return s, nil
}

// validateImage rejects images whose block table and data disagree
// before they can drive the fetch pipeline out of bounds: a block count
// differing from the scheduled program, negative placements, or extents
// past the end of the image data. All rejections wrap ErrCorruptImage.
func validateImage(im *image.Image, role string, sp *sched.Program) error {
	if len(im.Blocks) != len(sp.Blocks) {
		return fmt.Errorf("%w: %s image has %d blocks, program %d",
			ErrCorruptImage, role, len(im.Blocks), len(sp.Blocks))
	}
	for i, b := range im.Blocks {
		if b.Addr < 0 || b.Bytes < 0 {
			return fmt.Errorf("%w: %s image block %d has negative placement (addr %d, %d bytes)",
				ErrCorruptImage, role, i, b.Addr, b.Bytes)
		}
		if b.Addr+b.Bytes > len(im.Data) {
			return fmt.Errorf("%w: %s image block %d extends to %d but data holds %d bytes",
				ErrCorruptImage, role, i, b.Addr+b.Bytes, len(im.Data))
		}
	}
	return nil
}

// NewCodePackSim builds the related-work miss-path-decompression
// organization (§6): the cache indexes the *uncompressed* image (cacheIm,
// the base encoding) while the bus fetches from the *compressed* ROM
// (romIm — typically the byte scheme, as in IBM CodePack). Miss repair
// fetches the block's compressed lines and decompresses at miss time.
func NewCodePackSim(cfg Config, cacheIm, romIm *image.Image, sp *sched.Program) (*Sim, error) {
	return NewOrgSim(OrgCodePack, cfg, cacheIm, romIm, sp)
}

// Run replays a trace through the IFetch stage pipeline: predictor and
// ATB, the optional L0 buffer, the cache array with bus-backed miss
// repair, and the organization's Decompressor and StartupTable. The
// trace is validated up front — an event referencing a block outside the
// simulated program returns an error wrapping ErrMalformedTrace instead
// of driving the pipeline out of bounds.
func (s *Sim) Run(tr *trace.Trace) (Result, error) {
	if err := tr.ValidateRefs(len(s.im.Blocks)); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrMalformedTrace, err)
	}
	return s.RunStream(trace.NewSliceStream(tr, 0))
}

// RunStream replays a chunked trace stream through the stage pipeline
// incrementally: each chunk is validated (wrapping ErrMalformedTrace on
// a bad reference, with the absolute event offset), replayed, and
// recycled before the next is taken, so peak memory is the stream's
// chunk working set regardless of trace length. Operation totals
// accumulate from the chunks' Ops/MOPs attribution. The result is
// bit-identical to Run over the materialized trace.
//
// On an error the returned Result carries exactly what was replayed:
// the merged counters (including bus traffic) of every chunk before the
// failing one, plus — for a mid-chunk step failure — the failing
// chunk's per-event counters and schedule-attributed Ops/MOPs up to and
// including the failing event (see replayWindow). ATBHitRate is only
// derived on success. RunSharded and RunShardedSpec return the same
// partial counters for the same failure, bit for bit.
func (s *Sim) RunStream(st trace.Stream) (Result, error) {
	res := Result{
		Benchmark: st.Name(),
		Scheme:    s.im.Scheme,
		Org:       s.org.String(),
	}
	// The prediction for the very first block is a free cold start.
	predicted := -2
	for {
		c, err := st.Next()
		if err != nil {
			return res, err
		}
		if c == nil {
			break
		}
		if verr := trace.ValidateChunk(c, len(s.im.Blocks)); verr != nil {
			st.Recycle(c)
			st.Close()
			return res, fmt.Errorf("%w: %v", ErrMalformedTrace, verr)
		}
		wres, _, _, pred, serr := s.replayWindow(c, predicted)
		res.Merge(wres)
		predicted = pred
		st.Recycle(c)
		if serr != nil {
			st.Close()
			return res, serr
		}
	}
	res.ATBHitRate = s.atb.HitRate()
	return res, nil
}

// replayWindow replays one validated chunk's events from the seam
// prediction pred and returns the window's counter *deltas*: bus
// traffic and ATB hits/misses are measured as before/after differences
// against this Sim's own stages, so the result is a pure window
// contribution whether the stages are shared (token-serialized replay)
// or private (speculative replay). On success the chunk's
// producer-attributed Ops/MOPs are credited; on a step failure only the
// schedule-attributed ops of the events actually replayed are —
// including the failing event, whose fetch was fully accounted before
// its ATB training errored. endPred carries the next-block prediction
// across the trailing seam.
func (s *Sim) replayWindow(c *trace.Chunk, pred int) (res Result, hits, misses int64, endPred int, err error) {
	beats0, flips0, bytes0 := s.bus.Counts()
	hits0, misses0 := s.atb.Stats()
	endPred = pred
	failed := -1
	for i, ev := range c.Events {
		if endPred, err = s.step(ev, endPred, &res); err != nil {
			failed = i
			break
		}
	}
	if failed < 0 {
		res.Ops, res.MOPs = c.Ops, c.MOPs
	} else {
		// Partial attribution: the producer's per-chunk Ops/MOPs never
		// commit for a failed chunk; the replayed prefix is credited from
		// the schedule instead, exactly like the dynamic counts the
		// producers attribute per event.
		for _, ev := range c.Events[:failed+1] {
			b := s.sp.Blocks[ev.Block]
			res.Ops += int64(b.NumOps())
			res.MOPs += int64(b.NumMOPs())
		}
	}
	beats1, flips1, bytes1 := s.bus.Counts()
	res.BusBeats = beats1 - beats0
	res.BitFlips = flips1 - flips0
	res.BytesFetched = bytes1 - bytes0
	hits1, misses1 := s.atb.Stats()
	return res, hits1 - hits0, misses1 - misses0, endPred, err
}

// fork builds a fresh simulator with the same organization, geometry
// and images but brand-new (cold) stage instances — the private
// pipeline a speculative window replays on. The constructors are
// deterministic, so every fork starts in the same state a cold-start
// snapshot of the original captures.
func (s *Sim) fork() (*Sim, error) {
	return NewOrgSim(s.org, s.cfg, s.im, s.rom, s.sp)
}

// badUpdate wraps an ATB training failure; kept out of step so the
// annotated hot path stays free of fmt.
func badUpdate(err error) error {
	return fmt.Errorf("%w: %v", ErrMalformedTrace, err)
}

// step replays one trace event through the stage pipeline — the
// simulator's per-event hot loop, run once per fetched block for every
// (benchmark, pairing, geometry) point of a sweep. It accumulates into
// res and returns the next-block prediction for the following event.
//
//tepic:hotpath
func (s *Sim) step(ev trace.Event, predicted int, res *Result) (int, error) {
	{
		blk := s.im.Blocks[ev.Block]
		mops := s.sp.Blocks[ev.Block].NumMOPs()

		predCorrect := predicted == ev.Block || predicted == -2 ||
			s.cfg.PerfectPrediction
		if !predCorrect {
			res.Mispredicts++
		}
		res.BlockFetches++
		s.atb.Touch(ev.Block)

		// L0 buffer: consulted first, filters main-cache accesses.
		bufHit := false
		if s.buf != nil {
			bufHit = s.buf.Lookup(ev.Block)
			if bufHit {
				res.BufferHits++
			}
		}

		cacheHit := true
		// The lines the block's placement touches: the unit of residency,
		// miss repair and (for in-cache images) bus traffic.
		nFetch := blk.Lines(s.cfg.LineBytes)
		var romBlk image.Block
		if s.rom != nil {
			romBlk = s.rom.Blocks[ev.Block]
		}
		if !bufHit {
			res.CacheLookups++
			// Restricted placement: the block is the unit of residency.
			firstLine := s.cache.LineOf(blk.Addr)
			missing := 0
			for l := int64(0); l < int64(nFetch); l++ {
				if !s.cache.Probe(firstLine + l) {
					missing++
				}
			}
			if missing > 0 {
				cacheHit = false
				res.CacheMisses++
				if s.rom != nil {
					// The bus carries the ROM's encoded lines. Like the
					// in-cache path below, repair is line-granular: whole
					// memory lines spanning the block's ROM footprint, so
					// BusBeats/BytesFetched agree with LinesFetched.
					romFirst := int64(romBlk.Addr / s.cfg.LineBytes)
					romLines := int64(romBlk.Lines(s.cfg.LineBytes))
					res.LinesFetched += romLines
					for l := int64(0); l < romLines; l++ {
						s.bus.Transfer(lineData(s.rom, romFirst+l, s.cfg.LineBytes))
					}
				} else {
					res.LinesFetched += int64(nFetch)
					// Miss repair fetches the whole block over the bus
					// and validates all its lines (atomic fetch unit).
					for l := int64(0); l < int64(nFetch); l++ {
						s.bus.Transfer(lineData(s.im, firstLine+l, s.cfg.LineBytes))
					}
				}
				for l := int64(0); l < int64(nFetch); l++ {
					s.cache.Fill(firstLine + l)
				}
			}
			if s.buf != nil {
				// The decompressor's output is captured by the buffer.
				s.buf.Insert(ev.Block, blk.Ops)
			}
		}

		// The decompressor/extractor stage sets n, the line volume the
		// startup path streams through for this fetch.
		var n int
		if cacheHit {
			n = s.spec.Decode.HitLines(blk, s.cfg.LineBytes)
		} else {
			n = s.spec.Decode.MissLines(blk, romBlk, s.cfg.LineBytes)
		}
		res.Cycles += int64(s.spec.Timing.Cycles(predCorrect, cacheHit, bufHit, n))
		if mops > 1 {
			res.Cycles += int64(mops - 1) // stream remaining MOPs, 1 per cycle
		}

		// Train the predictor and remember the next-block prediction.
		predicted, _ = s.atb.Predict(ev.Block)
		if err := s.atb.Update(ev.Block, ev.Taken, ev.Next); err != nil {
			return predicted, badUpdate(err)
		}
	}
	return predicted, nil
}

// lineData returns the bytes of one memory line of an image's encoded
// data (zero-padded past the end of the image) — the payload a
// line-granular miss repair puts on the bus, whether the line lives in
// the cache's own image or a behind-the-bus ROM image.
func lineData(im *image.Image, line int64, lineBytes int) []byte {
	start := int(line) * lineBytes
	end := start + lineBytes
	if start >= len(im.Data) {
		return make([]byte, lineBytes)
	}
	if end > len(im.Data) {
		padded := make([]byte, lineBytes)
		copy(padded, im.Data[start:])
		return padded
	}
	return im.Data[start:end]
}

// RunIdeal returns the perfect-cache, perfect-predictor result: one cycle
// per MOP (the paper's "Ideal" bar, limited only by schedule density).
func RunIdeal(tr *trace.Trace) Result {
	return Result{
		Benchmark: tr.Name,
		Scheme:    "ideal",
		Org:       "Ideal",
		Cycles:    tr.MOPs,
		Ops:       tr.Ops,
		MOPs:      tr.MOPs,
	}
}
