package cache

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestRunShardedSpecMatchesRun is the speculative equivalence matrix:
// for every organization, shard count and chunk size, the merged
// speculative result must be bit-identical to the sequential replay —
// whatever mix of verified hits and retries the scheduling produced.
// With one shard the worker always speculates from the checkpoint its
// own previous window just committed, so every window must verify.
func TestRunShardedSpecMatchesRun(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	prof := workload.MustProfile("compress")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 30000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	for _, org := range []Org{OrgBase, OrgTailored, OrgCompressed} {
		want := runOrg(t, org, sp, ims[org], tr)
		for _, shards := range []int{1, 2, 4} {
			for _, cs := range []int{1, 997, 8192} {
				sim, err := NewSim(org, DefaultConfig(org), ims[org], sp)
				if err != nil {
					t.Fatal(err)
				}
				got, stats, err := RunShardedSpec(sim, trace.NewSliceStream(tr, cs), shards)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("%v shards=%d chunk=%d: speculative %+v != sequential %+v",
						org, shards, cs, got, want)
				}
				wantWindows := int64((tr.Len() + cs - 1) / cs)
				if stats.Windows != wantWindows || stats.Hits+stats.Retries != stats.Windows {
					t.Errorf("%v shards=%d chunk=%d: stats %+v, want %d windows = hits+retries",
						org, shards, cs, stats, wantWindows)
				}
				if shards == 1 && stats.Hits != stats.Windows {
					t.Errorf("%v chunk=%d: 1-shard run had %d retries; in-order speculation must always verify",
						org, cs, stats.Retries)
				}
			}
		}
	}
}

// TestRunShardedSpecSteadyWorkload is the regime the speculative
// scheduler exists for: a steady periodic workload whose lap-boundary
// states converge after the warm-up laps. Window 0 speculates from the
// true cold start and every window from 2 on speculates from *some*
// converged checkpoint — which equals the true seam state however stale
// it is — so at most window 1 (cold assumption against a warm seam) can
// retry.
func TestRunShardedSpecSteadyWorkload(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	steady := func() trace.Stream {
		st, err := emu.SteadyStream(sp, 2_000_000, trace.DefaultChunkEvents)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	seqSim, err := NewSim(OrgCompressed, DefaultConfig(OrgCompressed), ims[OrgCompressed], sp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := seqSim.RunStream(steady())
	if err != nil {
		t.Fatal(err)
	}

	specSim, err := NewSim(OrgCompressed, DefaultConfig(OrgCompressed), ims[OrgCompressed], sp)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := RunShardedSpec(specSim, steady(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("steady speculative %+v != sequential %+v", got, want)
	}
	if stats.Windows < 8 {
		t.Fatalf("steady run produced only %d windows; workload too small to exercise speculation", stats.Windows)
	}
	if stats.Retries > 1 {
		t.Errorf("steady workload retried %d of %d windows; only the warm-up seam may mispredict (stats %+v)",
			stats.Retries, stats.Windows, stats)
	}
	if stats.Hits < stats.Windows-1 {
		t.Errorf("steady workload verified only %d of %d windows", stats.Hits, stats.Windows)
	}
}

// TestSpecVerifyAndRetryMechanism pins the scheduler's decision
// procedure deterministically, without racing workers: a window
// replayed from the wrong warm state produces a checkpoint that fails
// verification, and retrying it from the true seam state reproduces the
// sequential window bit for bit — counters and end state both.
func TestSpecVerifyAndRetryMechanism(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	prof := workload.MustProfile("compress")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 8192, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	// Window A warms the whole pipeline; window B is kept short so a
	// replay of B from the cold state provably cannot converge to the
	// warm end state (the cache alone differs by thousands of lines).
	half := tr.Len() - 64
	chunkA := &trace.Chunk{Events: tr.Events[:half], First: 0}
	chunkB := &trace.Chunk{Events: tr.Events[half:], First: int64(half)}

	// Sequential reference: window A then window B on one pipeline.
	seq, err := NewSim(OrgCompressed, DefaultConfig(OrgCompressed), ims[OrgCompressed], sp)
	if err != nil {
		t.Fatal(err)
	}
	cold := seq.snapshotState(-2)
	_, _, _, predA, err := seq.replayWindow(chunkA, -2)
	if err != nil {
		t.Fatal(err)
	}
	seamTrue := seq.snapshotState(predA)
	resB, _, _, predB, err := seq.replayWindow(chunkB, predA)
	if err != nil {
		t.Fatal(err)
	}
	endTrue := seq.snapshotState(predB)

	// Speculative replay of window B from the *wrong* assumption (cold).
	spec, err := seq.fork()
	if err != nil {
		t.Fatal(err)
	}
	spec.restoreState(cold)
	_, _, _, specPred, err := spec.replayWindow(chunkB, cold.Pred)
	if err != nil {
		t.Fatal(err)
	}
	specEnd := spec.snapshotState(specPred)
	if seamTrue.equal(cold) {
		t.Fatal("stochastic window left the pipeline in its cold state; trace too trivial")
	}
	if specEnd.equal(endTrue) {
		t.Error("replay from the wrong seam state converged anyway; verification would mask nothing")
	}

	// Retry from the true seam state: counters and end state must match
	// the sequential window exactly.
	spec.restoreState(seamTrue)
	retryRes, _, _, retryPred, err := spec.replayWindow(chunkB, seamTrue.Pred)
	if err != nil {
		t.Fatal(err)
	}
	if retryRes != resB {
		t.Errorf("retried window counters %+v != sequential %+v", retryRes, resB)
	}
	if !spec.snapshotState(retryPred).equal(endTrue) {
		t.Error("retried window end state differs from sequential end state")
	}
}

// chunkListStream replays a fixed chunk list, including zero-event
// chunks — seams the slice/producer streams never emit but the
// schedulers must tolerate (a window with nothing to replay hands its
// inbound state straight through).
type chunkListStream struct {
	name   string
	chunks []*trace.Chunk
	i      int
}

func (s *chunkListStream) Name() string { return s.name }
func (s *chunkListStream) Next() (*trace.Chunk, error) {
	if s.i >= len(s.chunks) {
		return nil, nil
	}
	c := s.chunks[s.i]
	s.i++
	return c, nil
}
func (s *chunkListStream) Recycle(*trace.Chunk) {}
func (s *chunkListStream) Close()               {}

// TestRunShardedSpecSeamStress drives both window schedulers across
// adversarial seam placements — every event its own window, windows of
// two, one-off-from-trace-length chunks — and interleaved zero-event
// windows, asserting bit-identity with the sequential replay each time.
func TestRunShardedSpecSeamStress(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	prof := workload.MustProfile("compress")
	n := 4099
	tr, err := emu.StochasticTrace(sp, prof.Seed, n, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	want := runOrg(t, OrgCompressed, sp, ims[OrgCompressed], tr)

	for _, cs := range []int{1, 2, n - 1, n + 1} {
		for _, spec := range []bool{false, true} {
			sim, err := NewSim(OrgCompressed, DefaultConfig(OrgCompressed), ims[OrgCompressed], sp)
			if err != nil {
				t.Fatal(err)
			}
			var got Result
			if spec {
				got, _, err = RunShardedSpec(sim, trace.NewSliceStream(tr, cs), 4)
			} else {
				got, err = RunSharded(sim, trace.NewSliceStream(tr, cs), 4)
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("spec=%v chunk=%d: %+v != sequential %+v", spec, cs, got, want)
			}
		}
	}

	// Zero-event windows between (and around) real ones. Ops/MOPs ride
	// the chunks they describe, so totals still match the trace.
	mkChunks := func() []*trace.Chunk {
		third := tr.Len() / 3
		cuts := []*trace.Chunk{
			{First: 0}, // leading empty window
			{Events: tr.Events[:third], First: 0},
			{First: int64(third)}, // interior empty window
			{Events: tr.Events[third : 2*third], First: int64(third)},
			{First: int64(2 * third)},
			{Events: tr.Events[2*third:], First: int64(2 * third)},
			{First: int64(tr.Len())}, // trailing empty window
		}
		var ops, mops int64
		for _, ev := range tr.Events[:third] {
			ops += int64(sp.Blocks[ev.Block].NumOps())
			mops += int64(sp.Blocks[ev.Block].NumMOPs())
		}
		cuts[1].Ops, cuts[1].MOPs = ops, mops
		for _, ev := range tr.Events[third : 2*third] {
			cuts[3].Ops += int64(sp.Blocks[ev.Block].NumOps())
			cuts[3].MOPs += int64(sp.Blocks[ev.Block].NumMOPs())
		}
		cuts[5].Ops = tr.Ops - cuts[1].Ops - cuts[3].Ops
		cuts[5].MOPs = tr.MOPs - cuts[1].MOPs - cuts[3].MOPs
		return cuts
	}
	for _, spec := range []bool{false, true} {
		sim, err := NewSim(OrgCompressed, DefaultConfig(OrgCompressed), ims[OrgCompressed], sp)
		if err != nil {
			t.Fatal(err)
		}
		st := &chunkListStream{name: tr.Name, chunks: mkChunks()}
		var got Result
		if spec {
			got, _, err = RunShardedSpec(sim, st, 4)
		} else {
			got, err = RunSharded(sim, st, 4)
		}
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("spec=%v zero-event windows: %+v != sequential %+v", spec, got, want)
		}
	}
}

// TestRunShardedBusDeltasAuthoritative asserts the satellite-2
// invariant directly: the merged per-window bus deltas ARE the shared
// bus model's cumulative counters — no end-of-run overwrite needed.
func TestRunShardedBusDeltasAuthoritative(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	prof := workload.MustProfile("compress")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 20000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(OrgCompressed, DefaultConfig(OrgCompressed), ims[OrgCompressed], sp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSharded(sim, trace.NewSliceStream(tr, 1021), 4)
	if err != nil {
		t.Fatal(err)
	}
	beats, flips, bytes := sim.bus.Counts()
	if res.BusBeats != beats || res.BitFlips != flips || res.BytesFetched != bytes {
		t.Errorf("merged bus deltas (%d, %d, %d) != shared bus counters (%d, %d, %d)",
			res.BusBeats, res.BitFlips, res.BytesFetched, beats, flips, bytes)
	}
}

// attributedStream feeds a materialized trace through a producer stream
// with per-event Ops/MOPs attribution — the way the emulator's walkers
// attribute work — so every chunk carries its own totals and partial
// results on error paths have meaningful operation counts (SliceStream
// rides the totals on the final chunk only). Events referencing blocks
// outside the program attribute nothing.
func attributedStream(sp *sched.Program, tr *trace.Trace, chunkEvents int) trace.Stream {
	s, p := trace.NewChanStream(tr.Name, chunkEvents, 0)
	go func() {
		for _, ev := range tr.Events {
			var ops, mops int64
			if ev.Block >= 0 && ev.Block < len(sp.Blocks) {
				ops = int64(sp.Blocks[ev.Block].NumOps())
				mops = int64(sp.Blocks[ev.Block].NumMOPs())
			}
			if !p.Append(ev, ops, mops) {
				break
			}
		}
		p.Close(nil)
	}()
	return s
}

// TestPartialCountersOnMalformedChunk is the satellite-1 differential:
// when a chunk deep in the stream is corrupt, the sequential, sharded
// and speculative replays must all return the same partial counters —
// exactly the windows before the bad chunk — alongside the same typed
// error.
func TestPartialCountersOnMalformedChunk(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	prof := workload.MustProfile("compress")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 9000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	tr.Events[6001].Block = len(sp.Blocks) + 3
	const cs = 512

	mkSim := func() *Sim {
		sim, err := NewSim(OrgCompressed, DefaultConfig(OrgCompressed), ims[OrgCompressed], sp)
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	seqRes, seqErr := mkSim().RunStream(attributedStream(sp, tr, cs))
	if !errors.Is(seqErr, ErrMalformedTrace) || !strings.Contains(seqErr.Error(), "event 6001") {
		t.Fatalf("sequential err = %v, want ErrMalformedTrace naming event 6001", seqErr)
	}
	// The committed windows are the chunks before the corrupt one:
	// events 0..6001 live in chunk 11, so chunks 0..10 = events 0..5631.
	var wantOps int64
	for _, ev := range tr.Events[:(6001/cs)*cs] {
		wantOps += int64(sp.Blocks[ev.Block].NumOps())
	}
	if seqRes.Ops != wantOps {
		t.Errorf("sequential partial ops = %d, want %d (chunks before the corrupt one)", seqRes.Ops, wantOps)
	}
	if seqRes.BusBeats == 0 {
		t.Fatalf("sequential partial result %+v carries no replayed bus traffic", seqRes)
	}

	shRes, shErr := RunSharded(mkSim(), attributedStream(sp, tr, cs), 4)
	if !errors.Is(shErr, ErrMalformedTrace) || !strings.Contains(shErr.Error(), "event 6001") {
		t.Fatalf("sharded err = %v, want ErrMalformedTrace naming event 6001", shErr)
	}
	if shRes != seqRes {
		t.Errorf("sharded partial %+v != sequential partial %+v", shRes, seqRes)
	}

	spRes, _, spErr := RunShardedSpec(mkSim(), attributedStream(sp, tr, cs), 4)
	if !errors.Is(spErr, ErrMalformedTrace) || !strings.Contains(spErr.Error(), "event 6001") {
		t.Fatalf("speculative err = %v, want ErrMalformedTrace naming event 6001", spErr)
	}
	if spRes != seqRes {
		t.Errorf("speculative partial %+v != sequential partial %+v", spRes, seqRes)
	}
}

// failingATB wraps a real ATBStage and fails the Nth Update call — the
// only way a validated chunk can die mid-replay, since reference
// validation runs before any window touches the pipeline.
type failingATB struct {
	ATBStage
	remaining int
	err       error
}

func (f *failingATB) Update(block int, taken bool, next int) error {
	f.remaining--
	if f.remaining < 0 {
		return f.err
	}
	return f.ATBStage.Update(block, taken, next)
}

// TestPartialCountersOnStepFailure is the second satellite-1
// differential: a window dying mid-chunk (injected ATB failure) must
// merge only the counters of the events actually replayed — the
// schedule-attributed ops of the replayed prefix plus its bus traffic —
// identically from the sequential and the sharded replay.
func TestPartialCountersOnStepFailure(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	prof := workload.MustProfile("compress")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 4000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected atb failure")
	const failAt = 2500 // events replayed before the failing Update
	const cs = 512

	mkSim := func() *Sim {
		sim, err := NewSim(OrgCompressed, DefaultConfig(OrgCompressed), ims[OrgCompressed], sp)
		if err != nil {
			t.Fatal(err)
		}
		sim.atb = &failingATB{ATBStage: sim.atb, remaining: failAt, err: boom}
		return sim
	}

	seqRes, seqErr := mkSim().RunStream(attributedStream(sp, tr, cs))
	if seqErr == nil || !strings.Contains(seqErr.Error(), "injected atb failure") {
		t.Fatalf("sequential err = %v, want the injected failure", seqErr)
	}
	// The replayed prefix is events 0..failAt inclusive: the failing
	// event's fetch is fully accounted before its ATB training errors.
	var wantOps, wantMOPs int64
	for _, ev := range tr.Events[:failAt+1] {
		wantOps += int64(sp.Blocks[ev.Block].NumOps())
		wantMOPs += int64(sp.Blocks[ev.Block].NumMOPs())
	}
	if seqRes.Ops != wantOps || seqRes.MOPs != wantMOPs {
		t.Errorf("sequential partial ops/mops = %d/%d, want %d/%d (events actually replayed)",
			seqRes.Ops, seqRes.MOPs, wantOps, wantMOPs)
	}
	if seqRes.BlockFetches != failAt+1 {
		t.Errorf("sequential partial fetches = %d, want %d", seqRes.BlockFetches, failAt+1)
	}
	if seqRes.BusBeats == 0 {
		t.Error("sequential partial result dropped the replayed prefix's bus traffic")
	}

	shRes, shErr := RunSharded(mkSim(), attributedStream(sp, tr, cs), 4)
	if shErr == nil || !strings.Contains(shErr.Error(), "injected atb failure") {
		t.Fatalf("sharded err = %v, want the injected failure", shErr)
	}
	if shRes != seqRes {
		t.Errorf("sharded partial %+v != sequential partial %+v", shRes, seqRes)
	}
}
