package cache

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/image"
	"repro/internal/tailor"
	"repro/internal/workload"
)

// TestBankedExtractionHolds proves the §3.4 property for the encodings
// each organization caches: with the paper's line sizes, every MOP of
// every benchmark spans at most two lines, so the two-bank storage always
// extracts a whole MOP in one reference.
func TestBankedExtractionHolds(t *testing.T) {
	for _, name := range workload.Benchmarks {
		name := name
		t.Run(name, func(t *testing.T) {
			sp, _ := pipeline(t, name)
			base := compress.NewBase()
			baseIm, err := image.Build(sp, base)
			if err != nil {
				t.Fatal(err)
			}
			full, err := compress.NewFullHuffman(sp)
			if err != nil {
				t.Fatal(err)
			}
			fullIm, err := image.Build(sp, full)
			if err != nil {
				t.Fatal(err)
			}
			tl, err := tailor.New(sp)
			if err != nil {
				t.Fatal(err)
			}
			tlIm, err := image.Build(sp, tl)
			if err != nil {
				t.Fatal(err)
			}
			cases := []struct {
				org  Org
				im   *image.Image
				enc  compress.Encoder
				line int
			}{
				{OrgBase, baseIm, base, DefaultConfig(OrgBase).LineBytes},
				{OrgCompressed, fullIm, full, DefaultConfig(OrgCompressed).LineBytes},
				{OrgTailored, tlIm, tl, DefaultConfig(OrgTailored).LineBytes},
			}
			for _, c := range cases {
				stats, err := VerifyBankedExtraction(c.im, sp, c.enc, c.line)
				if err != nil {
					t.Fatalf("%v: %v", c.org, err)
				}
				if stats.MaxLines > 2 {
					t.Fatalf("%v: MOP spans %d lines", c.org, stats.MaxLines)
				}
				if stats.MOPs == 0 {
					t.Fatalf("%v: no MOPs checked", c.org)
				}
				// Compressed MOPs are small relative to the line, so
				// straddles must be the minority everywhere.
				if r := stats.StraddleRate(); r > 0.5 {
					t.Errorf("%v: straddle rate %.3f implausible", c.org, r)
				}
			}
		})
	}
}

// TestBankedExtractionCatchesOversizedMOPs: with an absurdly small line,
// the property fails and the verifier says so.
func TestBankedExtractionCatchesOversizedMOPs(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	base := compress.NewBase()
	if _, err := VerifyBankedExtraction(ims[OrgBase], sp, base, 4); err == nil {
		t.Error("4-byte lines should break one-reference extraction for wide MOPs")
	}
	if _, err := VerifyBankedExtraction(ims[OrgBase], sp, base, 0); err == nil {
		t.Error("accepted zero line size")
	}
}
