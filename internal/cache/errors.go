package cache

import "errors"

// The typed failure classes of the simulator's input validation. Every
// rejection NewOrgSim or Sim.Run produces wraps exactly one of these, so
// callers (and the fault-injection suite in internal/simcheck) can
// classify failures with errors.Is instead of string matching.
var (
	// ErrMalformedTrace marks a trace whose events reference blocks (or
	// successors) outside the simulated program.
	ErrMalformedTrace = errors.New("cache: malformed trace")
	// ErrCorruptImage marks a program image whose block table and data
	// disagree — truncated data, out-of-extent or negative placements, or
	// a block count that does not match the scheduled program.
	ErrCorruptImage = errors.New("cache: corrupt image")
	// ErrBadGeometry marks a degenerate cache configuration (non-positive
	// sets, associativity or line size).
	ErrBadGeometry = errors.New("cache: bad geometry")
	// ErrBadSpec marks an invalid registration: an organization or
	// predictor spec missing required pieces, or a duplicate name.
	ErrBadSpec = errors.New("cache: bad spec")
	// ErrBadConfig marks a simulator misconfiguration: an unknown
	// organization or predictor, or a ROM image supplied (or omitted)
	// against the organization's spec.
	ErrBadConfig = errors.New("cache: bad configuration")
	// ErrNotExtractable marks an encoding the banked cache cannot serve:
	// a MOP that spans more than two lines (or decodes to nothing), so a
	// single banked reference cannot extract it.
	ErrNotExtractable = errors.New("cache: not extractable in one banked reference")
)
