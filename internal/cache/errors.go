package cache

import "errors"

// The typed failure classes of the simulator's input validation. Every
// rejection NewOrgSim or Sim.Run produces wraps exactly one of these, so
// callers (and the fault-injection suite in internal/simcheck) can
// classify failures with errors.Is instead of string matching.
var (
	// ErrMalformedTrace marks a trace whose events reference blocks (or
	// successors) outside the simulated program.
	ErrMalformedTrace = errors.New("cache: malformed trace")
	// ErrCorruptImage marks a program image whose block table and data
	// disagree — truncated data, out-of-extent or negative placements, or
	// a block count that does not match the scheduled program.
	ErrCorruptImage = errors.New("cache: corrupt image")
	// ErrBadGeometry marks a degenerate cache configuration (non-positive
	// sets, associativity or line size).
	ErrBadGeometry = errors.New("cache: bad geometry")
)
