package cache

import (
	"errors"
	"testing"

	"repro/internal/image"
	"repro/internal/trace"
)

// TestStartupTableCells drives StartupTable.Cycles cell by cell on a
// synthetic matrix whose entries are all distinct, pinning which cell
// each (predicted, hit, buffered) outcome reads, the n-scaling rules
// (miss cells always stream n lines; hit cells only under HitScalesN)
// and the precedence of the L0 cells over everything else.
func TestStartupTableCells(t *testing.T) {
	tab := StartupTable{
		PredHit: 10, PredMiss: 20, MispredHit: 30, MispredMiss: 40,
		BufPredHit: 50, BufMispred: 60,
	}
	for n := 1; n <= 3; n++ {
		extra := n - 1
		cases := []struct {
			pred, hit, buf bool
			want           int
		}{
			{true, true, false, 10},          // hit cells don't scale...
			{true, false, false, 20 + extra}, // ...miss cells always do
			{false, true, false, 30},
			{false, false, false, 40 + extra},
			{true, true, true, 50}, // buffer cells preempt the rest
			{true, false, true, 50},
			{false, true, true, 60},
			{false, false, true, 60},
		}
		for _, c := range cases {
			if got := tab.Cycles(c.pred, c.hit, c.buf, n); got != c.want {
				t.Errorf("n=%d pred=%v hit=%v buf=%v: %d cycles, want %d",
					n, c.pred, c.hit, c.buf, got, c.want)
			}
		}
	}
	// HitScalesN moves the hit cells onto the streaming rule too.
	tab.HitScalesN = true
	if got := tab.Cycles(true, true, false, 4); got != 13 {
		t.Errorf("scaled predicted hit = %d, want 10+3", got)
	}
	if got := tab.Cycles(false, true, false, 4); got != 33 {
		t.Errorf("scaled mispredicted hit = %d, want 30+3", got)
	}
	// n below 1 clamps: an empty block still costs the base cell.
	for _, n := range []int{0, -5} {
		if got := tab.Cycles(true, false, false, n); got != 20 {
			t.Errorf("n=%d predicted miss = %d, want clamp to 20", n, got)
		}
	}
}

// TestTable1Deviations pins the two cells where the built-in Compressed
// table deliberately departs from a literal reading of the published
// matrix (documented on StartupTable in timing.go):
//
//  1. A mispredicted L0-buffer hit costs 2 cycles, not the published 1 —
//     the buffer supplies ready MOPs but cannot undo the pipeline
//     restart, so it equals Base's mispredicted hit, never beats it.
//  2. A mispredicted compressed-cache hit costs 3+(n-1), one cycle more
//     than Base's 2 — the added Huffman decoder stage must show up in
//     the misprediction penalty even for single-line blocks, which is
//     the paper's stated reason the Tailored ISA wins.
func TestTable1Deviations(t *testing.T) {
	spec, ok := OrgCompressed.Spec()
	if !ok {
		t.Fatal("Compressed not registered")
	}
	// Deviation 1: BufMispred is 2 (published table reads 1).
	if spec.Timing.BufMispred != 2 {
		t.Errorf("Compressed BufMispred = %d, want the deliberate 2", spec.Timing.BufMispred)
	}
	if got, base := StartupCycles(OrgCompressed, false, true, true, 1),
		StartupCycles(OrgBase, false, true, false, 1); got != base {
		t.Errorf("mispredicted buffer hit = %d cycles, want %d (equivalent to Base, not faster)",
			got, base)
	}
	if bufHit, predHit := StartupCycles(OrgCompressed, false, false, true, 4),
		StartupCycles(OrgCompressed, true, true, true, 4); bufHit <= predHit {
		t.Errorf("mispredicted buffer hit (%d) must cost more than a predicted one (%d)",
			bufHit, predHit)
	}
	// Deviation 2: MispredHit is 3 (published table reads 2), one more
	// than Base — visible even at n=1.
	if spec.Timing.MispredHit != 3 {
		t.Errorf("Compressed MispredHit = %d, want the deliberate 3", spec.Timing.MispredHit)
	}
	for n := 1; n <= 4; n++ {
		comp := StartupCycles(OrgCompressed, false, true, false, n)
		base := StartupCycles(OrgBase, false, true, false, n)
		if comp != base+1+(n-1) {
			t.Errorf("n=%d: mispredicted compressed hit = %d, want Base's %d + decoder stage + %d streaming",
				n, comp, base, n-1)
		}
	}
}

// TestResultRatesBoundaries exercises the rate helpers at boundary
// counts: single events, all-hit and all-miss extremes, and the
// everything-mispredicted case must produce exact 0/1 endpoints.
func TestResultRatesBoundaries(t *testing.T) {
	r := Result{Cycles: 1, Ops: 1, BlockFetches: 1, CacheLookups: 1}
	if r.IPC() != 1 {
		t.Errorf("1 op / 1 cycle IPC = %v, want exactly 1", r.IPC())
	}
	if r.MissRate() != 0 {
		t.Errorf("no misses: MissRate = %v, want 0", r.MissRate())
	}
	if r.MispredictRate() != 0 {
		t.Errorf("no mispredicts: MispredictRate = %v, want 0", r.MispredictRate())
	}
	r.CacheMisses = 1
	if r.MissRate() != 1 {
		t.Errorf("all misses: MissRate = %v, want exactly 1", r.MissRate())
	}
	r.Mispredicts = 1
	if r.MispredictRate() != 1 {
		t.Errorf("all mispredicted: MispredictRate = %v, want exactly 1", r.MispredictRate())
	}
	big := Result{Cycles: 3, Ops: 12, CacheLookups: 4, CacheMisses: 1,
		BlockFetches: 8, Mispredicts: 2}
	if big.IPC() != 4 {
		t.Errorf("IPC = %v, want 4", big.IPC())
	}
	if big.MissRate() != 0.25 {
		t.Errorf("MissRate = %v, want 0.25", big.MissRate())
	}
	if big.MispredictRate() != 0.25 {
		t.Errorf("MispredictRate = %v, want 0.25", big.MispredictRate())
	}
}

// TestRunRejectsMalformedTrace is the regression for the satellite
// hardening fix: an event referencing a block outside the program used
// to index s.im.Blocks straight into a panic; Run must instead reject
// the trace with an error wrapping ErrMalformedTrace before replaying
// anything.
func TestRunRejectsMalformedTrace(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	sim, err := NewSim(OrgBase, DefaultConfig(OrgBase), ims[OrgBase], sp)
	if err != nil {
		t.Fatal(err)
	}
	bad := []trace.Trace{
		{Name: "out-of-range", Events: []trace.Event{
			{Block: len(sp.Blocks), Taken: false, Next: trace.End}}},
		{Name: "negative", Events: []trace.Event{
			{Block: -1, Taken: false, Next: trace.End}}},
		{Name: "bad-successor", Events: []trace.Event{
			{Block: 0, Taken: true, Next: len(sp.Blocks) + 3}}},
	}
	for i := range bad {
		_, err := sim.Run(&bad[i])
		if !errors.Is(err, ErrMalformedTrace) {
			t.Errorf("%s: Run returned %v, want an error wrapping ErrMalformedTrace", bad[i].Name, err)
		}
	}
	// The rejection happens before any event replays: a good trace on
	// the same simulator still sees a cold cache.
	good := &trace.Trace{Events: []trace.Event{{Block: 0, Taken: false, Next: trace.End}}}
	res, err := sim.Run(good)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != 1 {
		t.Errorf("cache warmed by a rejected trace: %d misses, want 1", res.CacheMisses)
	}
}

// TestNewSimRejectsCorruptImage pins the typed construction-time
// validation: block tables disagreeing with the program or extending
// past the image data wrap ErrCorruptImage, degenerate geometries wrap
// ErrBadGeometry.
func TestNewSimRejectsCorruptImage(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	im := ims[OrgBase]
	cfg := DefaultConfig(OrgBase)

	truncated := *im
	truncated.Data = truncated.Data[:len(truncated.Data)/2]
	if _, err := NewSim(OrgBase, cfg, &truncated, sp); !errors.Is(err, ErrCorruptImage) {
		t.Errorf("truncated data: %v, want ErrCorruptImage", err)
	}
	short := *im
	short.Blocks = short.Blocks[:len(short.Blocks)-1]
	if _, err := NewSim(OrgBase, cfg, &short, sp); !errors.Is(err, ErrCorruptImage) {
		t.Errorf("missing block: %v, want ErrCorruptImage", err)
	}
	negative := *im
	negative.Blocks = append([]image.Block(nil), im.Blocks...)
	negative.Blocks[0].Addr = -1
	if _, err := NewSim(OrgBase, cfg, &negative, sp); !errors.Is(err, ErrCorruptImage) {
		t.Errorf("negative address: %v, want ErrCorruptImage", err)
	}

	badGeom := cfg
	badGeom.Sets = 0
	if _, err := NewSim(OrgBase, badGeom, im, sp); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("zero sets: %v, want ErrBadGeometry", err)
	}
	badL0 := DefaultConfig(OrgCompressed)
	badL0.L0Ops = -1
	if _, err := NewSim(OrgCompressed, badL0, ims[OrgCompressed], sp); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("negative L0 capacity: %v, want ErrBadGeometry", err)
	}
}
