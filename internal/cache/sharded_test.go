package cache

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestRunStreamMatchesRun checks the incremental stream replay is
// bit-identical to the slice replay for every organization, across
// chunk sizes including 1 (every event its own chunk — the hardest
// warm-state case).
func TestRunStreamMatchesRun(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	prof := workload.MustProfile("compress")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 30000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	for _, org := range []Org{OrgBase, OrgTailored, OrgCompressed} {
		want := runOrg(t, org, sp, ims[org], tr)
		for _, cs := range []int{1, 7, 4096, 30000, 30001} {
			sim, err := NewSim(org, DefaultConfig(org), ims[org], sp)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.RunStream(trace.NewSliceStream(tr, cs))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%v chunk=%d: RunStream %+v != Run %+v", org, cs, got, want)
			}
		}
	}
}

// TestRunShardedMatchesRun is the window-sharded equivalence: the
// merged windowed result must equal the sequential result in every
// counter, for every organization, across shard counts and chunk
// sizes — including chunkEvents=1, where every LRU/L0/predictor
// transition crosses a window seam and the warm-state handoff carries
// all of it.
func TestRunShardedMatchesRun(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	prof := workload.MustProfile("compress")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 30000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	for _, org := range []Org{OrgBase, OrgTailored, OrgCompressed} {
		want := runOrg(t, org, sp, ims[org], tr)
		for _, shards := range []int{1, 2, 4, 0} {
			for _, cs := range []int{1, 997, 8192} {
				sim, err := NewSim(org, DefaultConfig(org), ims[org], sp)
				if err != nil {
					t.Fatal(err)
				}
				got, err := RunSharded(sim, trace.NewSliceStream(tr, cs), shards)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("%v shards=%d chunk=%d: sharded %+v != sequential %+v",
						org, shards, cs, got, want)
				}
			}
		}
	}
}

// TestRunShardedStochasticStream runs the sharded simulator over the
// live producer/consumer stream (no materialized trace anywhere on the
// consuming side) and checks bit-identity with the slice replay of the
// same seed.
func TestRunShardedStochasticStream(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	prof := workload.MustProfile("compress")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 30000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	want := runOrg(t, OrgCompressed, sp, ims[OrgCompressed], tr)
	st, err := emu.StochasticStream(sp, prof.Seed, 30000, prof.Phases, 2048)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(OrgCompressed, DefaultConfig(OrgCompressed), ims[OrgCompressed], sp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSharded(sim, st, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("sharded-over-stream %+v != sequential-over-slice %+v", got, want)
	}
}

// TestResultMergeAdditivity is the unit additivity law: Merge sums
// every int64 counter and touches nothing else.
func TestResultMergeAdditivity(t *testing.T) {
	a := Result{
		Benchmark: "b", Scheme: "s", Org: "o",
		Cycles: 1, Ops: 2, MOPs: 3,
		BlockFetches: 4, CacheLookups: 5, CacheMisses: 6,
		LinesFetched: 7, BufferHits: 8, Mispredicts: 9,
		BusBeats: 10, BitFlips: 11, BytesFetched: 12,
		ATBHitRate: 0.5,
	}
	b := Result{
		Cycles: 100, Ops: 200, MOPs: 300,
		BlockFetches: 400, CacheLookups: 500, CacheMisses: 600,
		LinesFetched: 700, BufferHits: 800, Mispredicts: 900,
		BusBeats: 1000, BitFlips: 1100, BytesFetched: 1200,
	}
	a.Merge(b)
	want := Result{
		Benchmark: "b", Scheme: "s", Org: "o",
		Cycles: 101, Ops: 202, MOPs: 303,
		BlockFetches: 404, CacheLookups: 505, CacheMisses: 606,
		LinesFetched: 707, BufferHits: 808, Mispredicts: 909,
		BusBeats: 1010, BitFlips: 1111, BytesFetched: 1212,
		ATBHitRate: 0.5,
	}
	if a != want {
		t.Errorf("merged %+v, want %+v", a, want)
	}
}

// TestRunStreamMalformedChunk checks a corrupt mid-stream chunk
// surfaces the typed sentinel with the absolute event offset, from
// both the incremental and the sharded replay.
func TestRunStreamMalformedChunk(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	prof := workload.MustProfile("compress")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 5000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	tr.Events[3333].Block = len(sp.Blocks) + 7

	sim, err := NewSim(OrgBase, DefaultConfig(OrgBase), ims[OrgBase], sp)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.RunStream(trace.NewSliceStream(tr, 512))
	if !errors.Is(err, ErrMalformedTrace) {
		t.Fatalf("RunStream err = %v, want ErrMalformedTrace", err)
	}
	if !strings.Contains(err.Error(), "event 3333") {
		t.Fatalf("RunStream err %q does not name absolute event 3333", err)
	}

	sim2, err := NewSim(OrgBase, DefaultConfig(OrgBase), ims[OrgBase], sp)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunSharded(sim2, trace.NewSliceStream(tr, 512), 4)
	if !errors.Is(err, ErrMalformedTrace) {
		t.Fatalf("RunSharded err = %v, want ErrMalformedTrace", err)
	}
	if !strings.Contains(err.Error(), "event 3333") {
		t.Fatalf("RunSharded err %q does not name absolute event 3333", err)
	}
}

// TestRunShardedProducerError checks a failing producer's terminal
// error propagates out of the sharded run.
func TestRunShardedProducerError(t *testing.T) {
	sp, ims := pipeline(t, "compress")
	boom := errors.New("producer boom")
	st, p := trace.NewChanStream("t", 16, 2)
	go func() {
		for i := 0; i < 100; i++ {
			if !p.Append(trace.Event{Block: 0, Next: 0}, 1, 1) {
				p.Close(nil)
				return
			}
		}
		p.Close(boom)
	}()
	sim, err := NewSim(OrgBase, DefaultConfig(OrgBase), ims[OrgBase], sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSharded(sim, st, 2); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the producer's error", err)
	}
}
