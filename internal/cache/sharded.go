package cache

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/trace"
)

// Merge accumulates another result's counters into r — the window-merge
// operation of the sharded simulator. Every int64 counter is summed;
// the identifying labels and the derived ATBHitRate are left for the
// caller, which knows the whole run.
func (r *Result) Merge(o Result) {
	r.Cycles += o.Cycles
	r.Ops += o.Ops
	r.MOPs += o.MOPs
	r.BlockFetches += o.BlockFetches
	r.CacheLookups += o.CacheLookups
	r.CacheMisses += o.CacheMisses
	r.LinesFetched += o.LinesFetched
	r.BufferHits += o.BufferHits
	r.Mispredicts += o.Mispredicts
	r.BusBeats += o.BusBeats
	r.BitFlips += o.BitFlips
	r.BytesFetched += o.BytesFetched
}

// handoff is the warm-state token passed from each sample window to its
// successor. The fetch pipeline's state (cache array, ATB, predictor,
// L0 buffer, bus) lives in the shared Sim and is only touched by the
// window holding the token, so window k+1 replays against exactly the
// state window k left behind — which is why the sharded run is
// bit-identical to the sequential one. Per-window counters, bus traffic
// included, come out of replayWindow as deltas, so the token only needs
// to carry the seam prediction.
type handoff struct {
	pred   int  // next-block prediction carried across the seam
	failed bool // a prior window failed; later windows skip replay
}

// window is one sample window of the sharded run: a chunk plus the
// token channels chaining it to its neighbours.
type window struct {
	seq   int
	chunk *trace.Chunk
	in    chan handoff
	out   chan handoff
}

// windowResult is one window's contribution to the merged result.
type windowResult struct {
	seq     int
	res     Result
	err     error
	skipped bool
}

// RunSharded replays a chunked trace stream through the simulator as a
// sequence of sample windows on a worker pool: every window's chunk is
// validated concurrently, while the replay itself passes a warm-state
// handoff token from window to window, so each window starts from the
// exact pipeline state its predecessor left (see handoff). Per-window
// Result counters (bus traffic as deltas of the cumulative bus model)
// are merged by summation. The merged result is bit-identical to
// Sim.Run / Sim.RunStream over the same events — the parallelism
// overlaps chunk validation, stream production and merging with the
// serialized replay, and peak memory stays bounded by the stream's
// chunk working set.
//
// Like Run, a malformed chunk returns the merged counters of the
// windows before it plus an error wrapping ErrMalformedTrace naming
// the absolute event offset; the first failing window by stream order
// decides the error. shards <= 0 selects GOMAXPROCS. The Sim is
// single-use, exactly as with Run.
//
//tepic:pool
func RunSharded(s *Sim, st trace.Stream, shards int) (Result, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	numBlocks := len(s.im.Blocks)

	work := make(chan *window, shards)
	results := make(chan windowResult, shards)

	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for w := range work {
				wr := windowResult{seq: w.seq}
				// Reference validation runs before taking the token, so
				// it overlaps with earlier windows' replay.
				verr := trace.ValidateChunk(w.chunk, numBlocks)
				h := <-w.in
				switch {
				case h.failed:
					wr.skipped = true
				case verr != nil:
					wr.err = fmt.Errorf("%w: %v", ErrMalformedTrace, verr)
					h.failed = true
				default:
					// replayWindow accounts the window's counters — bus
					// traffic included — as deltas against the shared
					// stages, and on a mid-chunk failure credits only the
					// events actually replayed, exactly like RunStream.
					var serr error
					wr.res, _, _, h.pred, serr = s.replayWindow(w.chunk, h.pred)
					if serr != nil {
						wr.err = serr
						h.failed = true
					}
				}
				st.Recycle(w.chunk)
				w.out <- h
				results <- wr
			}
		}()
	}

	// The dispatcher chains the token channels: window k's out is
	// window k+1's in, seeded with the cold-start prediction.
	streamErr := make(chan error, 1)
	go func() {
		in := make(chan handoff, 1)
		in <- handoff{pred: -2}
		seq := 0
		for {
			c, err := st.Next()
			if err != nil {
				streamErr <- err
				break
			}
			if c == nil {
				streamErr <- nil
				break
			}
			out := make(chan handoff, 1)
			work <- &window{seq: seq, chunk: c, in: in, out: out}
			in = out
			seq++
		}
		close(work)
	}()

	go func() {
		wg.Wait()
		close(results)
	}()

	res := Result{
		Benchmark: st.Name(),
		Scheme:    s.im.Scheme,
		Org:       s.org.String(),
	}
	var firstErr error
	firstSeq := -1
	for wr := range results {
		if wr.err != nil && (firstSeq < 0 || wr.seq < firstSeq) {
			firstErr, firstSeq = wr.err, wr.seq
		}
		if !wr.skipped {
			res.Merge(wr.res)
		}
	}
	if err := <-streamErr; err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return res, firstErr
	}
	// The merged per-window deltas are authoritative for bus traffic —
	// they already sum to the shared bus model's cumulative counters, and
	// the tests assert it. Only the derived hit rate is taken from the
	// shared ATB.
	res.ATBHitRate = s.atb.HitRate()
	return res, nil
}
