package cache

import (
	"repro/internal/atb"
	"repro/internal/image"
	"repro/internal/power"
)

// This file defines the stage interfaces of the IFetch pipeline. Sim.Run
// is a fixed driver loop over these stages; everything that distinguishes
// the paper's organizations (Base §3.4, Compressed §4, Tailored §5, the
// related-work CodePack §6) is data in an OrgSpec: which stages are
// present, the Decompressor volume rules, and the StartupTable timing.
// New organizations compose existing stage implementations via
// RegisterOrg without touching the driver loop.
//
// Every stateful stage also carries a Snapshot/Restore checkpoint face:
// Snapshot captures the stage's *behavioral* state — everything that
// decides its future outputs, and nothing else (cumulative accounting
// counters are excluded; they are read as before/after deltas instead) —
// and Restore overwrites an identically configured instance with it.
// This is what lets the speculative window-parallel scheduler
// (RunShardedSpec) replay a sample window on private stage instances
// from a predicted warm state and later prove, by comparing checkpoint
// values, that the prediction was exact.

// Predictor is the branch-direction prediction stage consulted by the
// ATB. See internal/atb for the paper's bimodal baseline and the
// future-work two-level predictors (gshare, PAs).
type Predictor = atb.DirectionPredictor

// ATBStage is the Address Translation Buffer stage: it maps the current
// block to a predicted next block (the paper's next-block prediction,
// §3.2) and is trained with actual outcomes.
type ATBStage interface {
	// Touch records an access for hit-rate accounting.
	Touch(block int)
	// Predict returns the predicted next block together with the
	// direction prediction: taken reports whether the block's terminator
	// is predicted taken (next is then the last recorded taken target),
	// not whether the ATB hit — residency is Touch/HitRate's business. A
	// next of -1 means the predictor has no target yet (a cold taken
	// prediction, or a block outside the loaded table) and will count as
	// a misprediction.
	Predict(block int) (next int, taken bool)
	// Update trains the entry with the branch outcome and actual target.
	Update(block int, taken bool, next int) error
	// HitRate returns the fraction of touches that hit the buffer.
	HitRate() float64
	// Stats returns the cumulative touch hit/miss counts behind HitRate,
	// so window-parallel replay can account per-window deltas.
	Stats() (hits, misses int64)
	// Snapshot/Restore are the checkpoint face (see the package comment
	// above): behavioral state only, hit/miss counters excluded.
	Snapshot() atb.State
	Restore(atb.State)
}

// CacheArray is the main instruction-cache storage stage, modeled at
// memory-line granularity (see LineCache for the banked set-associative
// implementation).
type CacheArray interface {
	// LineOf maps a byte address to its memory-line index.
	LineOf(addr int) int64
	// Probe reports whether a line is resident, updating recency on hit.
	Probe(line int64) bool
	// Fill installs a line, evicting as needed.
	Fill(line int64)
	// Snapshot/Restore are the checkpoint face: residency and recency.
	Snapshot() CacheState
	Restore(CacheState)
}

// L0Store is the small post-decompressor buffer stage of §4 that holds
// ready-to-issue MOPs of recently decompressed blocks.
type L0Store interface {
	// Lookup reports whether a block is resident, updating recency on hit.
	Lookup(block int) bool
	// Insert captures a freshly decompressed block of numOps operations.
	Insert(block, numOps int)
	// CapacityOps returns the buffer size in operations.
	CapacityOps() int
	// Snapshot/Restore are the checkpoint face: residency and recency.
	Snapshot() L0State
	Restore(L0State)
}

// BusModel is the memory-bus stage behind the cache: it carries miss
// repairs and accounts beats, payload bytes and bit flips (the paper's
// Figure 14 power proxy; see internal/power).
type BusModel interface {
	// Transfer sends one payload over the bus.
	Transfer(data []byte)
	// Counts returns cumulative beats, bit flips and payload bytes.
	Counts() (beats, flips, bytes int64)
	// Snapshot/Restore are the checkpoint face: the line values the last
	// beat left behind, cumulative counters excluded.
	Snapshot() power.State
	Restore(power.State)
}

// Decompressor is the code-transformation stage between storage and the
// issue buffer — the hit-path Huffman decompressor of §4, the miss-path
// decompressor of CodePack (§6), or the tailored extractor of §5 (whose
// cost is pure timing, folded into the StartupTable, so its volume rule
// is the identity). It yields n, the line count the startup path streams
// through for one block, which Table 1 charges at one line per cycle.
type Decompressor interface {
	// HitLines returns n for a fetch served by the cache (or L0 buffer).
	HitLines(blk image.Block, lineBytes int) int
	// MissLines returns n for a fetch that missed; romBlk is the block's
	// footprint in the behind-the-bus ROM image for organizations that
	// keep one (zero otherwise).
	MissLines(blk, romBlk image.Block, lineBytes int) int
}

// PassThrough is the identity Decompressor: ops are stored ready to
// issue, so both paths stream the lines the block's placement touches
// (Base; also Tailored, whose extraction rides the miss-path timing).
type PassThrough struct{}

// HitLines implements Decompressor.
func (PassThrough) HitLines(blk image.Block, lineBytes int) int {
	return blk.Lines(lineBytes)
}

// MissLines implements Decompressor.
func (PassThrough) MissLines(blk, _ image.Block, lineBytes int) int {
	return blk.Lines(lineBytes)
}

// HitDecompress is the §4 hit-path rule: the banked cache extracts
// straddling data in one reference, so decompression scales with the
// block's data volume in lines, not its placement span.
type HitDecompress struct{}

// HitLines implements Decompressor.
func (HitDecompress) HitLines(blk image.Block, lineBytes int) int {
	return (blk.Bytes + lineBytes - 1) / lineBytes
}

// MissLines implements Decompressor.
func (HitDecompress) MissLines(blk, _ image.Block, lineBytes int) int {
	return blk.Lines(lineBytes)
}

// MissDecompress is the CodePack-style rule (§6): hits issue from an
// uncompressed cache at placement volume, while miss-time decompression
// runs over the block's compressed volume in the ROM image.
type MissDecompress struct{}

// HitLines implements Decompressor.
func (MissDecompress) HitLines(blk image.Block, lineBytes int) int {
	return blk.Lines(lineBytes)
}

// MissLines implements Decompressor.
func (MissDecompress) MissLines(_, romBlk image.Block, lineBytes int) int {
	return (romBlk.Bytes + lineBytes - 1) / lineBytes
}
