package cache

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/atb"
	"repro/internal/power"
	"repro/internal/trace"
)

// simState is the composite behavioral checkpoint of the whole fetch
// pipeline at a window seam: every stage's Snapshot plus the next-block
// prediction carried across the seam. Two equal simStates replay any
// future event sequence identically — that is the property the
// speculative scheduler (RunShardedSpec) relies on when it commits a
// window replayed from a *predicted* start state. Cumulative accounting
// counters are not part of the state (see the stage comments); they are
// merged as per-window deltas instead.
type simState struct {
	Pred  int // next-block prediction at the seam (-2 = free cold start)
	Cache CacheState
	ATB   atb.State
	L0    L0State
	HasL0 bool
	Bus   power.State
}

// snapshotState captures the pipeline's behavioral state plus the seam
// prediction. The snapshot aliases nothing and may seed many restores.
func (s *Sim) snapshotState(pred int) *simState {
	st := &simState{
		Pred:  pred,
		Cache: s.cache.Snapshot(),
		ATB:   s.atb.Snapshot(),
		Bus:   s.bus.Snapshot(),
	}
	if s.buf != nil {
		st.HasL0 = true
		st.L0 = s.buf.Snapshot()
	}
	return st
}

// restoreState overwrites the pipeline's behavioral state with a
// checkpoint taken from an identically configured Sim. Accounting
// counters are untouched, so window deltas keep working across restores.
func (s *Sim) restoreState(st *simState) {
	s.cache.Restore(st.Cache)
	s.atb.Restore(st.ATB)
	s.bus.Restore(st.Bus)
	if s.buf != nil && st.HasL0 {
		s.buf.Restore(st.L0)
	}
}

// equal reports whether two checkpoints are bit-identical. A pointer
// match short-circuits: the common case is verifying against the very
// checkpoint the speculation started from.
func (st *simState) equal(o *simState) bool {
	if st == o {
		return true
	}
	return st.Pred == o.Pred &&
		st.HasL0 == o.HasL0 &&
		st.Cache.Equal(o.Cache) &&
		st.ATB.Equal(o.ATB) &&
		st.L0.Equal(o.L0) &&
		st.Bus.Equal(o.Bus)
}

// SpecStats reports how the speculative scheduler's predictions fared.
type SpecStats struct {
	Windows int64 // sample windows replayed to completion
	Hits    int64 // windows whose assumed start state verified exactly
	Retries int64 // windows replayed again from the true seam state
}

// RetryRate returns the fraction of windows whose speculative replay
// had to be discarded and redone — the cost of a wrong warm-state
// prediction. 0 means every window committed its speculative result.
func (s SpecStats) RetryRate() float64 {
	if s.Windows == 0 {
		return 0
	}
	return float64(s.Retries) / float64(s.Windows)
}

// specCheckpoint publishes the most recent committed window end-state:
// the scheduler's warm-state predictor. A window about to speculate
// grabs the latest checkpoint as its assumed start; on periodic
// workloads the seam states repeat, the assumption verifies, and the
// precomputed result commits without ever replaying under the token.
type specCheckpoint struct {
	mu    sync.Mutex
	seq   int // window sequence that produced state; -1 = cold start
	state *simState
}

func (cp *specCheckpoint) latest() *simState {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.state
}

func (cp *specCheckpoint) publish(seq int, st *simState) {
	cp.mu.Lock()
	if seq > cp.seq {
		cp.seq, cp.state = seq, st
	}
	cp.mu.Unlock()
}

// specToken is the ordering token of the speculative scheduler. Unlike
// RunSharded's handoff it carries the predecessor's *checkpoint* rather
// than permission to touch shared stages — every worker owns a private
// forked pipeline, so the token is only needed to verify (or repair)
// the speculative start state and to keep error semantics in stream
// order.
type specToken struct {
	state  *simState // true pipeline state at this window's start seam
	failed bool      // a prior window failed; later windows skip
}

// specWindow is one sample window of the speculative run.
type specWindow struct {
	seq   int
	chunk *trace.Chunk
	in    chan specToken
	out   chan specToken
}

// specResult is one window's contribution to the merged result.
type specResult struct {
	seq          int
	res          Result
	hits, misses int64 // ATB touch deltas, for the merged hit rate
	err          error
	skipped      bool
	hit, retried bool
}

// RunShardedSpec replays a chunked trace stream as checkpointed
// speculative sample windows: every worker owns a private fork of the
// fetch pipeline, restores it from a *predicted* warm state (the latest
// committed predecessor checkpoint, or the cold start), and replays its
// window before the inbound ordering token arrives. When the token
// shows the true seam state matches the assumption, the precomputed
// result commits as-is; otherwise the window replays once more from the
// true state. Either way the committed end state is snapshotted,
// published as the next checkpoint, and passed on — so the merged
// result is bit-identical to Sim.Run / RunStream / RunSharded over the
// same events, by verification rather than by serialization.
//
// On workloads whose seam states recur (steady phases, periodic loops)
// nearly every window verifies and the replay itself runs in parallel,
// breaking RunSharded's serialization of the replay loop. On workloads
// whose state never repeats every window retries — the scheduler then
// degrades to RunSharded plus a constant speculation overhead, and the
// result is still exact. SpecStats reports which regime a run was in.
//
// Speculative errors never commit: a window whose speculative replay
// fails is re-run from the true seam state, so errors — and the partial
// counters merged with them, per replayWindow — are exactly those of
// the sequential replay. The first failing window in stream order
// decides the error, as with RunSharded. shards <= 0 selects
// GOMAXPROCS. The Sim is single-use; it provides the cold-start
// checkpoint and the labels, while replay runs on forks.
//
//tepic:pool
func RunShardedSpec(s *Sim, st trace.Stream, shards int) (Result, SpecStats, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	numBlocks := len(s.im.Blocks)

	sims := make([]*Sim, shards)
	for i := range sims {
		f, err := s.fork()
		if err != nil {
			return Result{}, SpecStats{}, fmt.Errorf("fork speculative pipeline: %w", err)
		}
		sims[i] = f
	}

	cold := s.snapshotState(-2)
	cp := &specCheckpoint{seq: -1, state: cold}

	work := make(chan *specWindow, shards)
	results := make(chan specResult, shards)

	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(sim *Sim) {
			defer wg.Done()
			for w := range work {
				wr := specResult{seq: w.seq}
				// Validation and the speculative replay both run before
				// taking the token — this is the work that overlaps.
				verr := trace.ValidateChunk(w.chunk, numBlocks)
				var (
					end     *simState
					assumed *simState
					specErr error
				)
				if verr == nil {
					assumed = cp.latest()
					sim.restoreState(assumed)
					var endPred int
					wr.res, wr.hits, wr.misses, endPred, specErr = sim.replayWindow(w.chunk, assumed.Pred)
					if specErr == nil {
						end = sim.snapshotState(endPred)
					}
				}
				h := <-w.in
				switch {
				case h.failed:
					wr.skipped = true
				case verr != nil:
					wr.err = fmt.Errorf("%w: %v", ErrMalformedTrace, verr)
					h.failed = true
				default:
					if specErr == nil && h.state.equal(assumed) {
						// The warm-state prediction was exact: commit the
						// precomputed result without replaying again.
						wr.hit = true
					} else {
						// Mispredicted seam state (or a speculative error,
						// which never commits): replay once more from the
						// true state the predecessor handed over.
						wr.retried = true
						sim.restoreState(h.state)
						var endPred int
						wr.res, wr.hits, wr.misses, endPred, wr.err = sim.replayWindow(w.chunk, h.state.Pred)
						if wr.err == nil {
							end = sim.snapshotState(endPred)
						}
					}
					if wr.err != nil {
						h.failed = true
					} else {
						h.state = end
						cp.publish(w.seq, end)
					}
				}
				// The chunk must survive until after a possible retry.
				st.Recycle(w.chunk)
				w.out <- h
				results <- wr
			}
		}(sims[i])
	}

	// The dispatcher chains the ordering tokens exactly like RunSharded,
	// seeding the chain with the cold-start checkpoint.
	streamErr := make(chan error, 1)
	go func() {
		in := make(chan specToken, 1)
		in <- specToken{state: cold}
		seq := 0
		for {
			c, err := st.Next()
			if err != nil {
				streamErr <- err
				break
			}
			if c == nil {
				streamErr <- nil
				break
			}
			out := make(chan specToken, 1)
			work <- &specWindow{seq: seq, chunk: c, in: in, out: out}
			in = out
			seq++
		}
		close(work)
	}()

	go func() {
		wg.Wait()
		close(results)
	}()

	res := Result{
		Benchmark: st.Name(),
		Scheme:    s.im.Scheme,
		Org:       s.org.String(),
	}
	var stats SpecStats
	var hits, misses int64
	var firstErr error
	firstSeq := -1
	for wr := range results {
		if wr.err != nil && (firstSeq < 0 || wr.seq < firstSeq) {
			firstErr, firstSeq = wr.err, wr.seq
		}
		if wr.skipped {
			continue
		}
		res.Merge(wr.res)
		hits += wr.hits
		misses += wr.misses
		if wr.hit || wr.retried {
			stats.Windows++
			if wr.hit {
				stats.Hits++
			} else {
				stats.Retries++
			}
		}
	}
	if err := <-streamErr; err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return res, stats, firstErr
	}
	// The shared Sim never replayed anything; the merged ATB deltas from
	// the forks carry the hit rate.
	if total := hits + misses; total > 0 {
		res.ATBHitRate = float64(hits) / float64(total)
	}
	return res, stats, nil
}
