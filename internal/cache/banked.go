package cache

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/image"
	"repro/internal/sched"
)

// BankedStats reports the structural property the two-bank storage of
// §3.4 exists to provide: a MOP may begin at an arbitrary bit position
// and span two cache lines, and because consecutive lines live in
// opposite banks it is still extracted in one reference — but never more
// than two lines. VerifyBankedExtraction proves the property holds for an
// encoding, exactly the constraint the paper's bounded codes and
// line-size choice ("equal to the maximum size MOP") enforce.
type BankedStats struct {
	MOPs      int64
	Straddles int64 // MOPs spanning two lines (the banked-fetch case)
	MaxLines  int   // worst MOP extent, in lines
}

// StraddleRate is the fraction of MOPs needing both banks.
func (s BankedStats) StraddleRate() float64 {
	if s.MOPs == 0 {
		return 0
	}
	return float64(s.Straddles) / float64(s.MOPs)
}

// VerifyBankedExtraction walks every MOP of the encoded program,
// computes its bit extent within the image, and checks it spans at most
// two consecutive lines of the given size. The encoder must size
// operations independently (true for the baseline, the whole-op Huffman
// schemes and the tailored ISA — the encodings the three organizations
// cache).
func VerifyBankedExtraction(im *image.Image, sp *sched.Program, enc compress.Encoder, lineBytes int) (BankedStats, error) {
	if lineBytes < 1 {
		return BankedStats{}, fmt.Errorf("%w: bad line size %d", ErrBadGeometry, lineBytes)
	}
	var stats BankedStats
	lineBits := lineBytes * 8
	for bi, b := range sp.Blocks {
		bit := im.Blocks[bi].Addr * 8
		for _, mop := range b.MOPs {
			mopBits := enc.BlockBits(mop)
			if mopBits == 0 && len(mop) > 0 {
				return stats, fmt.Errorf("%w: block %d: zero-size MOP", ErrNotExtractable, b.ID)
			}
			first := bit / lineBits
			last := (bit + mopBits - 1) / lineBits
			span := last - first + 1
			stats.MOPs++
			if span > stats.MaxLines {
				stats.MaxLines = span
			}
			if span == 2 {
				stats.Straddles++
			}
			if span > 2 {
				return stats, fmt.Errorf(
					"%w: block %d: a MOP spans %d lines (%d bits at bit %d, %dB lines)",
					ErrNotExtractable, b.ID, span, mopBits, bit, lineBytes)
			}
			bit += mopBits
		}
	}
	return stats, nil
}
