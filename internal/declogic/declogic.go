// Package declogic implements the paper's decoder-complexity model
// (§3.5, Figures 9–10): the worst-case transistor count of a Huffman tree
// decoder built from CMOS transmission-gate multiplexers,
//
//	T = 2m(2^n - 1) + 4m(2^n - 2^(n-1) - 1) + 2n
//
// where n is the longest Huffman code, k the number of dictionary entries
// and m the longest dictionary entry in bits. The formula is a comparison
// criterion, not a hardware proposal — exactly how the paper uses it: it
// exposes the (nonlinear) tradeoff between degree of compression and
// decoder size that makes byte-wise compression attractive despite its
// mediocre ratios and makes the Full scheme's decoder enormous.
package declogic

import (
	"math"
	"math/big"

	"repro/internal/huffman"
)

// Complexity describes one decoder's cost.
type Complexity struct {
	Scheme      string
	N           int      // longest codeword, bits
	K           int      // dictionary entries
	M           int      // longest dictionary entry, bits
	Transistors *big.Int // worst-case transistor count per the T equation
}

// Log10Transistors returns log10 of the transistor count, the scale the
// paper's Figure 10 is readable on.
func (c Complexity) Log10Transistors() float64 {
	f := new(big.Float).SetInt(c.Transistors)
	v, _ := f.Float64()
	if v <= 0 {
		return 0
	}
	return math.Log10(v)
}

// HuffmanTransistors evaluates the paper's T equation. Exact integer
// arithmetic: for the Full scheme n can be large enough to overflow
// int64 comfortably.
func HuffmanTransistors(n, m int) *big.Int {
	if n < 1 {
		n = 1
	}
	if m < 1 {
		m = 1
	}
	one := big.NewInt(1)
	twoN := new(big.Int).Lsh(one, uint(n))    // 2^n
	twoN1 := new(big.Int).Lsh(one, uint(n-1)) // 2^(n-1)
	t1 := new(big.Int).Sub(twoN, one)         // 2^n - 1
	t1.Mul(t1, big.NewInt(int64(2*m)))        // 2m(2^n - 1)
	t2 := new(big.Int).Sub(twoN, twoN1)       // 2^n - 2^(n-1)
	t2.Sub(t2, one)                           // ... - 1
	if t2.Sign() < 0 {
		t2.SetInt64(0)
	}
	t2.Mul(t2, big.NewInt(int64(4*m))) // 4m(...)
	total := new(big.Int).Add(t1, t2)
	total.Add(total, big.NewInt(int64(2*n)))
	return total
}

// ForTable evaluates the model for one Huffman dictionary.
func ForTable(scheme string, tab *huffman.Table) Complexity {
	return Complexity{
		Scheme:      scheme,
		N:           tab.MaxLen(),
		K:           tab.Entries(),
		M:           tab.SymbolBits(),
		Transistors: HuffmanTransistors(tab.MaxLen(), tab.SymbolBits()),
	}
}

// ForTables evaluates a multi-table scheme (the stream alphabets): per
// the paper, the decoder decodes all streams, so complexity is the sum
// over the per-stream decoders; N/K/M report the maxima.
func ForTables(scheme string, tabs []*huffman.Table) Complexity {
	c := Complexity{Scheme: scheme, Transistors: big.NewInt(0)}
	for _, tab := range tabs {
		c.Transistors.Add(c.Transistors, HuffmanTransistors(tab.MaxLen(), tab.SymbolBits()))
		if tab.MaxLen() > c.N {
			c.N = tab.MaxLen()
		}
		c.K += tab.Entries()
		if tab.SymbolBits() > c.M {
			c.M = tab.SymbolBits()
		}
	}
	return c
}

// TailoredTransistors is a rough PLA cost for the tailored decoder: each
// dictionary entry (opcode mapping or hardwired constant) contributes one
// product term driving up to `signalBits` outputs at two transistors per
// (term, output) pair. It exists to quantify the paper's claim that the
// tailored ISA needs "very little additional hardware" next to any
// Huffman decoder.
func TailoredTransistors(dictEntries, signalBits int) *big.Int {
	t := int64(dictEntries) * int64(2*signalBits)
	return big.NewInt(t)
}
