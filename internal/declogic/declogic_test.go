package declogic

import (
	"math/big"
	"testing"

	"repro/internal/huffman"
)

func TestEquationSmallCases(t *testing.T) {
	// n=1, m=1: T = 2(2-1) + 4(2-1-1) + 2 = 2 + 0 + 2 = 4.
	if got := HuffmanTransistors(1, 1); got.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("T(1,1) = %v, want 4", got)
	}
	// n=2, m=1: T = 2(4-1) + 4(4-2-1) + 4 = 6 + 4 + 4 = 14.
	if got := HuffmanTransistors(2, 1); got.Cmp(big.NewInt(14)) != 0 {
		t.Errorf("T(2,1) = %v, want 14", got)
	}
	// n=3, m=8: T = 16(8-1) + 32(8-4-1) + 6 = 112 + 96 + 6 = 214.
	if got := HuffmanTransistors(3, 8); got.Cmp(big.NewInt(214)) != 0 {
		t.Errorf("T(3,8) = %v, want 214", got)
	}
}

func TestEquationClampsBadInput(t *testing.T) {
	if got := HuffmanTransistors(0, 0); got.Sign() <= 0 {
		t.Errorf("T(0,0) = %v, want positive", got)
	}
}

func TestMonotonicInN(t *testing.T) {
	prev := HuffmanTransistors(1, 8)
	for n := 2; n <= 40; n++ {
		cur := HuffmanTransistors(n, 8)
		if cur.Cmp(prev) <= 0 {
			t.Fatalf("T not increasing at n=%d: %v <= %v", n, cur, prev)
		}
		prev = cur
	}
}

func TestForTable(t *testing.T) {
	tab, err := huffman.Build(map[uint64]int64{0: 10, 1: 5, 2: 3, 300: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := ForTable("test", tab)
	if c.N != tab.MaxLen() || c.K != 4 || c.M != tab.SymbolBits() {
		t.Errorf("ForTable stats wrong: %+v", c)
	}
	if c.Transistors.Sign() <= 0 {
		t.Error("non-positive transistor count")
	}
	if c.Log10Transistors() <= 0 {
		t.Error("Log10Transistors <= 0")
	}
}

func TestForTablesSums(t *testing.T) {
	t1, _ := huffman.Build(map[uint64]int64{0: 4, 1: 2, 2: 1})
	t2, _ := huffman.Build(map[uint64]int64{0: 9, 1: 1})
	c := ForTables("streams", []*huffman.Table{t1, t2})
	want := new(big.Int).Add(
		HuffmanTransistors(t1.MaxLen(), t1.SymbolBits()),
		HuffmanTransistors(t2.MaxLen(), t2.SymbolBits()))
	if c.Transistors.Cmp(want) != 0 {
		t.Errorf("sum = %v, want %v", c.Transistors, want)
	}
	if c.K != t1.Entries()+t2.Entries() {
		t.Errorf("K = %d", c.K)
	}
}

func TestTailoredSmall(t *testing.T) {
	tt := TailoredTransistors(50, 40)
	// 50 entries * 2 * 40 = 4000 — orders of magnitude below any Full
	// Huffman decoder.
	if tt.Cmp(big.NewInt(4000)) != 0 {
		t.Errorf("tailored cost %v, want 4000", tt)
	}
	full := HuffmanTransistors(20, 40)
	if tt.Cmp(full) >= 0 {
		t.Error("tailored decoder should be far smaller than a full Huffman decoder")
	}
}
