// Package image builds binary program images under a given encoding
// scheme and generates the Address Translation Table (ATT) that maps the
// original address space to the encoded one (paper §3.3).
//
// Every block's first operation is byte-aligned (the paper's concession to
// byte/word-aligned ROM access); operations within a block are bit-packed
// sequentially. The ATT carries one entry per basic block — original
// address, encoded address, operation/MOP counts and encoded size — and is
// itself stored in compressed form in the ROM; portions of it are uploaded
// into the ATB at run time.
package image

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/compress"
	"repro/internal/huffman"
	"repro/internal/sched"
)

// Block describes one basic block's placement within an image.
type Block struct {
	ID    int
	Addr  int // byte address of the block's first op
	Bytes int // encoded size, including byte-alignment padding
	Ops   int
	MOPs  int
}

// Lines returns how many memory lines of the given size the block spans.
func (b Block) Lines(lineBytes int) int {
	if b.Bytes == 0 {
		return 0
	}
	first := b.Addr / lineBytes
	last := (b.Addr + b.Bytes - 1) / lineBytes
	return last - first + 1
}

// Image is a program encoded under one scheme.
type Image struct {
	Name      string // program name
	Scheme    string // encoding scheme name
	Blocks    []Block
	Data      []byte // the encoded code segment
	CodeBytes int    // len(Data)
	ATT       *ATT   // nil until BuildATT is called
}

// TotalBytes returns code plus compressed ATT size.
func (im *Image) TotalBytes() int {
	if im.ATT == nil {
		return im.CodeBytes
	}
	return im.CodeBytes + im.ATT.CompressedBytes
}

// Build lays out a scheduled program under an encoding scheme, placing
// blocks in the program's natural order.
func Build(p *sched.Program, enc compress.Encoder) (*Image, error) {
	return BuildOrdered(p, enc, nil)
}

// BuildOrdered lays out blocks in an explicit placement order (see
// package layout); a nil order means the natural one. Blocks in the
// returned image remain indexed by block ID regardless of placement, so
// every consumer (simulators, the ATT builder, round-trip verification)
// is placement-agnostic.
func BuildOrdered(p *sched.Program, enc compress.Encoder, order []int) (*Image, error) {
	if order == nil {
		order = make([]int, len(p.Blocks))
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != len(p.Blocks) {
		return nil, fmt.Errorf("image: order has %d entries for %d blocks",
			len(order), len(p.Blocks))
	}
	im := &Image{Name: p.Name, Scheme: enc.Name()}
	im.Blocks = make([]Block, len(p.Blocks))
	placed := make([]bool, len(p.Blocks))
	var w bitio.Writer
	for _, id := range order {
		if id < 0 || id >= len(p.Blocks) || placed[id] {
			return nil, fmt.Errorf("image: order is not a permutation (block %d)", id)
		}
		placed[id] = true
		b := p.Blocks[id]
		addr := w.BitLen() / 8
		if err := enc.EncodeBlock(&w, b.Ops); err != nil {
			return nil, fmt.Errorf("image: block %d: %w", b.ID, err)
		}
		w.AlignByte()
		im.Blocks[id] = Block{
			ID:    b.ID,
			Addr:  addr,
			Bytes: w.BitLen()/8 - addr,
			Ops:   len(b.Ops),
			MOPs:  len(b.MOPs),
		}
	}
	im.Data = w.Bytes()
	im.CodeBytes = len(im.Data)
	return im, nil
}

// VerifyRoundTrip decodes every block back out of the image and checks it
// against the scheduled program — the correctness proof that an encoding
// is actually executable.
func VerifyRoundTrip(im *Image, p *sched.Program, enc compress.Encoder) error {
	r := bitio.NewReader(im.Data)
	for i, b := range p.Blocks {
		if err := r.SeekBit(im.Blocks[i].Addr * 8); err != nil {
			return err
		}
		ops, err := enc.DecodeBlock(r, len(b.Ops))
		if err != nil {
			return fmt.Errorf("image: decode block %d: %w", b.ID, err)
		}
		for j := range ops {
			if ops[j] != b.Ops[j] {
				return fmt.Errorf("image: block %d op %d mismatch: %v != %v",
					b.ID, j, ops[j].String(), b.Ops[j].String())
			}
		}
	}
	return nil
}

// ATTEntry is one block's address-translation record: enough for the ATB
// to fetch the whole block in pipelined fashion (encoded address, size,
// op/MOP counts — the "last PC" is derivable from Ops).
type ATTEntry struct {
	Orig  int // address in the original (base) image
	Enc   int // address in this image
	Ops   int
	MOPs  int
	Bytes int // encoded block size
}

// ATT is the Address Translation Table: one entry per block, stored
// compressed in the ROM.
type ATT struct {
	Entries         []ATTEntry
	RawBytes        int // serialized (uncompressed) size
	CompressedBytes int // Huffman-compressed size as stored in ROM
}

// BuildATT constructs the translation table from the original (base)
// image to the encoded image and measures its ROM footprint: entries are
// delta/varint serialized and the byte stream Huffman compressed, with
// the dictionary's storage charged at one (symbol, length) pair per entry.
func BuildATT(orig, enc *Image) (*ATT, error) {
	if len(orig.Blocks) != len(enc.Blocks) {
		return nil, fmt.Errorf("image: block count mismatch %d != %d",
			len(orig.Blocks), len(enc.Blocks))
	}
	att := &ATT{}
	for i := range enc.Blocks {
		ob, eb := orig.Blocks[i], enc.Blocks[i]
		att.Entries = append(att.Entries, ATTEntry{
			Orig: ob.Addr, Enc: eb.Addr,
			Ops: eb.Ops, MOPs: eb.MOPs, Bytes: eb.Bytes,
		})
	}
	raw := SerializeATT(att.Entries)
	att.RawBytes = len(raw)
	if len(raw) > 0 {
		freq := map[uint64]int64{}
		for _, b := range raw {
			freq[uint64(b)]++
		}
		tab, err := huffman.Build(freq)
		if err != nil {
			return nil, err
		}
		// Dictionary storage: one byte symbol plus a 6-bit length field
		// per entry, rounded up.
		dict := (tab.Entries()*(8+6) + 7) / 8
		att.CompressedBytes = int((tab.TotalBits()+7)/8) + dict
	}
	return att, nil
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// SerializeATT is the ATT's ROM wire format before Huffman compression:
// per entry, delta/uvarint-coded original and encoded addresses followed
// by the op, MOP and byte counts.
func SerializeATT(entries []ATTEntry) []byte {
	var raw []byte
	prevOrig, prevEnc := 0, 0
	for _, e := range entries {
		raw = appendUvarint(raw, uint64(e.Orig-prevOrig))
		raw = appendUvarint(raw, uint64(e.Enc-prevEnc))
		raw = appendUvarint(raw, uint64(e.Ops))
		raw = appendUvarint(raw, uint64(e.MOPs))
		raw = appendUvarint(raw, uint64(e.Bytes))
		prevOrig, prevEnc = e.Orig, e.Enc
	}
	return raw
}

// ParseATT decodes n entries from the wire format — the operation the ATB
// performs when it uploads a portion of the table from ROM.
func ParseATT(raw []byte, n int) ([]ATTEntry, error) {
	out := make([]ATTEntry, 0, n)
	pos := 0
	next := func() (int, error) {
		v, sh := uint64(0), uint(0)
		for {
			if pos >= len(raw) {
				return 0, fmt.Errorf("image: truncated ATT at byte %d", pos)
			}
			b := raw[pos]
			pos++
			v |= uint64(b&0x7f) << sh
			if b < 0x80 {
				return int(v), nil
			}
			sh += 7
			if sh > 35 {
				return 0, fmt.Errorf("image: ATT varint overflow at byte %d", pos)
			}
		}
	}
	prevOrig, prevEnc := 0, 0
	for i := 0; i < n; i++ {
		var e ATTEntry
		var err error
		var d int
		if d, err = next(); err != nil {
			return nil, err
		}
		e.Orig = prevOrig + d
		if d, err = next(); err != nil {
			return nil, err
		}
		e.Enc = prevEnc + d
		if e.Ops, err = next(); err != nil {
			return nil, err
		}
		if e.MOPs, err = next(); err != nil {
			return nil, err
		}
		if e.Bytes, err = next(); err != nil {
			return nil, err
		}
		prevOrig, prevEnc = e.Orig, e.Enc
		out = append(out, e)
	}
	return out, nil
}

// Ratio returns this image's code size as a fraction of a reference
// image's code size (the paper's Figure 5 metric, code segment only).
func (im *Image) Ratio(ref *Image) float64 {
	if ref.CodeBytes == 0 {
		return 0
	}
	return float64(im.CodeBytes) / float64(ref.CodeBytes)
}
