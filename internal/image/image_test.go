package image

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/tailor"
	"repro/internal/workload"
)

func compile(t testing.TB, name string) *sched.Program {
	t.Helper()
	p, err := workload.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.Allocate(p); err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestBuildBaseImage(t *testing.T) {
	sp := compile(t, "compress")
	im, err := Build(sp, compress.NewBase())
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Blocks) != len(sp.Blocks) {
		t.Fatalf("image has %d blocks, program has %d", len(im.Blocks), len(sp.Blocks))
	}
	// Base encoding: every block is exactly ceil(ops*40/8) bytes.
	for i, b := range im.Blocks {
		want := (sp.Blocks[i].NumOps()*40 + 7) / 8
		if b.Bytes != want {
			t.Errorf("block %d: %d bytes, want %d", i, b.Bytes, want)
		}
		if b.Ops != sp.Blocks[i].NumOps() || b.MOPs != sp.Blocks[i].NumMOPs() {
			t.Errorf("block %d: op/MOP counts wrong", i)
		}
	}
	// Blocks tile the image contiguously.
	addr := 0
	for i, b := range im.Blocks {
		if b.Addr != addr {
			t.Fatalf("block %d at %d, expected %d", i, b.Addr, addr)
		}
		addr += b.Bytes
	}
	if im.CodeBytes != addr {
		t.Errorf("CodeBytes %d != %d", im.CodeBytes, addr)
	}
}

func TestRoundTripAllSchemes(t *testing.T) {
	sp := compile(t, "compress")
	encs := []compress.Encoder{compress.NewBase()}
	if e, err := compress.NewByteHuffman(sp); err == nil {
		encs = append(encs, e)
	} else {
		t.Fatal(err)
	}
	if e, err := compress.NewFullHuffman(sp); err == nil {
		encs = append(encs, e)
	} else {
		t.Fatal(err)
	}
	if e, err := compress.NewStreamHuffman(sp, compress.StreamConfigs[0]); err == nil {
		encs = append(encs, e)
	} else {
		t.Fatal(err)
	}
	if e, err := tailor.New(sp); err == nil {
		encs = append(encs, e)
	} else {
		t.Fatal(err)
	}
	for _, enc := range encs {
		im, err := Build(sp, enc)
		if err != nil {
			t.Fatalf("%s: %v", enc.Name(), err)
		}
		if err := VerifyRoundTrip(im, sp, enc); err != nil {
			t.Fatalf("%s: %v", enc.Name(), err)
		}
	}
}

func TestRatios(t *testing.T) {
	sp := compile(t, "go")
	base, err := Build(sp, compress.NewBase())
	if err != nil {
		t.Fatal(err)
	}
	full, err := compress.NewFullHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	fullIm, err := Build(sp, full)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := tailor.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	tlIm, err := Build(sp, tl)
	if err != nil {
		t.Fatal(err)
	}
	rf, rt := fullIm.Ratio(base), tlIm.Ratio(base)
	if rf >= rt {
		t.Errorf("full ratio %.3f should beat tailored %.3f", rf, rt)
	}
	if rt >= 1 {
		t.Errorf("tailored ratio %.3f should beat base", rt)
	}
	t.Logf("go: full=%.3f tailored=%.3f", rf, rt)
}

func TestBlockLines(t *testing.T) {
	b := Block{Addr: 30, Bytes: 5}
	if got := b.Lines(32); got != 2 {
		t.Errorf("straddling block lines = %d, want 2", got)
	}
	b = Block{Addr: 32, Bytes: 32}
	if got := b.Lines(32); got != 1 {
		t.Errorf("aligned block lines = %d, want 1", got)
	}
	b = Block{Addr: 0, Bytes: 0}
	if got := b.Lines(32); got != 0 {
		t.Errorf("empty block lines = %d, want 0", got)
	}
	b = Block{Addr: 10, Bytes: 100}
	if got := b.Lines(32); got != 4 {
		t.Errorf("long block lines = %d, want 4", got)
	}
}

func TestBuildATT(t *testing.T) {
	sp := compile(t, "m88ksim")
	base, err := Build(sp, compress.NewBase())
	if err != nil {
		t.Fatal(err)
	}
	full, err := compress.NewFullHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	fullIm, err := Build(sp, full)
	if err != nil {
		t.Fatal(err)
	}
	att, err := BuildATT(base, fullIm)
	if err != nil {
		t.Fatal(err)
	}
	if len(att.Entries) != len(sp.Blocks) {
		t.Fatalf("ATT has %d entries, want %d", len(att.Entries), len(sp.Blocks))
	}
	for i, e := range att.Entries {
		if e.Orig != base.Blocks[i].Addr || e.Enc != fullIm.Blocks[i].Addr {
			t.Fatalf("entry %d addresses wrong", i)
		}
	}
	if att.CompressedBytes <= 0 || att.CompressedBytes > att.RawBytes {
		t.Errorf("compressed ATT %d bytes vs raw %d", att.CompressedBytes, att.RawBytes)
	}
	// The paper's §3.3: the ATT adds roughly 15.5%% to the image. Accept a
	// generous band; EXPERIMENTS.md records the exact measured value.
	fullIm.ATT = att
	overhead := float64(att.CompressedBytes) / float64(base.CodeBytes)
	if overhead <= 0.005 || overhead > 0.40 {
		t.Errorf("ATT overhead %.3f of original image; implausible", overhead)
	}
	if fullIm.TotalBytes() != fullIm.CodeBytes+att.CompressedBytes {
		t.Error("TotalBytes does not include ATT")
	}
	t.Logf("ATT overhead: %.1f%% of original code", 100*overhead)
}

func TestATTSerializeParseRoundTrip(t *testing.T) {
	sp := compile(t, "compress")
	base, _ := Build(sp, compress.NewBase())
	full, err := compress.NewFullHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	fullIm, err := Build(sp, full)
	if err != nil {
		t.Fatal(err)
	}
	att, err := BuildATT(base, fullIm)
	if err != nil {
		t.Fatal(err)
	}
	raw := SerializeATT(att.Entries)
	if len(raw) != att.RawBytes {
		t.Errorf("serialized %d bytes, BuildATT measured %d", len(raw), att.RawBytes)
	}
	back, err := ParseATT(raw, len(att.Entries))
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != att.Entries[i] {
			t.Fatalf("entry %d mismatch: %+v != %+v", i, back[i], att.Entries[i])
		}
	}
	if _, err := ParseATT(raw[:len(raw)-1], len(att.Entries)); err == nil {
		t.Error("ParseATT accepted truncated table")
	}
	if _, err := ParseATT([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, 1); err == nil {
		t.Error("ParseATT accepted varint overflow")
	}
}

func TestBuildATTMismatch(t *testing.T) {
	spA := compile(t, "compress")
	spB := compile(t, "go")
	a, _ := Build(spA, compress.NewBase())
	b, _ := Build(spB, compress.NewBase())
	if _, err := BuildATT(a, b); err == nil {
		t.Error("BuildATT accepted mismatched images")
	}
}
