package image

import "testing"

// FuzzParseATT: arbitrary bytes never panic the ATT parser; accepted
// tables re-serialize to a prefix-compatible stream.
func FuzzParseATT(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 5}, 1)
	f.Add(SerializeATT([]ATTEntry{{Orig: 0, Enc: 0, Ops: 3, MOPs: 2, Bytes: 15},
		{Orig: 15, Enc: 8, Ops: 4, MOPs: 2, Bytes: 20}}), 2)
	f.Fuzz(func(t *testing.T, raw []byte, n int) {
		if n < 0 || n > 1024 {
			return
		}
		entries, err := ParseATT(raw, n)
		if err != nil {
			return
		}
		if len(entries) != n {
			t.Fatalf("parsed %d entries, asked for %d", len(entries), n)
		}
		back := SerializeATT(entries)
		re, err := ParseATT(back, n)
		if err != nil {
			t.Fatalf("re-serialized table rejected: %v", err)
		}
		for i := range re {
			if re[i] != entries[i] {
				t.Fatalf("entry %d changed across round-trip", i)
			}
		}
	})
}
