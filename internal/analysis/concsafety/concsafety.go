// Package concsafety enforces the pre-tepicd concurrency hygiene rules:
// all fan-out goes through the core.Driver worker pool, so the daemon
// work can trust that nothing in the tree spawns unsupervised
// goroutines or leaks timers.
//
//   - A go statement may appear only inside a function annotated
//     //tepic:pool (the pool abstraction itself — core.Driver's mapN).
//   - time.After inside a loop leaks one timer per iteration; use a
//     reusable time.Timer or a context deadline.
//   - A sync.Mutex / RWMutex / WaitGroup / Once / Cond reached by value
//     (parameter, receiver, plain assignment, call argument, or range
//     variable) is a copied lock: the copy guards nothing.
//   - An unbuffered channel made in a function that also launches
//     goroutines is unbounded fan-out waiting to deadlock; give the
//     channel a capacity tied to the worker bound (the driver's
//     semaphore pattern).
package concsafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/anz"
)

// Doc is the analyzer's one-line invariant.
const Doc = "goroutines only under //tepic:pool; no time.After in loops, copied locks, or unbounded fan-out channels"

// New returns the analyzer.
func New() *anz.Analyzer {
	return &anz.Analyzer{Name: "concsafety", Doc: Doc, Run: run}
}

func run(pass *anz.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// span is a source interval; loop bodies collect into a list so call
// sites can ask "am I inside a loop?".
type span struct{ from, to token.Pos }

func checkFunc(pass *anz.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	pool := anz.Directive(fd, "pool")

	// Copied locks entering through the signature.
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			reportLockValue(pass, info, f.Type, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			reportLockValue(pass, info, f.Type, "parameter")
		}
	}

	// First pass: loop extents and range-value copies.
	var loops []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
			checkRangeCopy(pass, info, n)
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, s := range loops {
			if s.from <= pos && pos < s.to {
				return true
			}
		}
		return false
	}

	// Second pass: goroutines, timers, channels, copies.
	hasGo := false
	var unbuffered []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			hasGo = true
			if !pool {
				pass.Reportf(n.Pos(),
					"go statement outside the //tepic:pool abstraction; fan out on the core.Driver pool instead")
			}
		case *ast.CallExpr:
			if pkg, name := anz.CalleePath(info, n); pkg == "time" && name == "After" && inLoop(n.Pos()) {
				pass.Reportf(n.Pos(),
					"time.After in a loop leaks a timer per iteration; use time.NewTimer and Reset")
			}
			if isUnbufferedChanMake(info, n) {
				unbuffered = append(unbuffered, n)
			}
			checkCallLockArgs(pass, info, n)
		case *ast.AssignStmt:
			checkAssignCopy(pass, info, n)
		}
		return true
	})
	if hasGo {
		for _, mk := range unbuffered {
			pass.Reportf(mk.Pos(),
				"unbuffered channel in a goroutine-launching function is unbounded fan-out; bound its capacity like the driver semaphore")
		}
	}
}

// isUnbufferedChanMake reports make(chan T) with no capacity argument.
func isUnbufferedChanMake(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// lockTypes are the sync types that must never be copied.
var lockTypes = map[string]bool{
	"sync.Mutex": true, "sync.RWMutex": true, "sync.WaitGroup": true,
	"sync.Once": true, "sync.Cond": true, "sync.Map": true, "sync.Pool": true,
}

// containsLock reports whether t (held by value) is or embeds a lock
// type, following named types, struct fields and arrays.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		if n.Obj().Pkg() != nil && lockTypes[n.Obj().Pkg().Path()+"."+n.Obj().Name()] {
			return true
		}
		return containsLock(n.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// lockByValue reports whether a value of type t carries a lock by
// value (pointers to locks are the correct way to share them).
func lockByValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return containsLock(t, map[types.Type]bool{})
}

func reportLockValue(pass *anz.Pass, info *types.Info, texpr ast.Expr, what string) {
	tv, ok := info.Types[texpr]
	if !ok {
		return
	}
	if lockByValue(tv.Type) {
		pass.Reportf(texpr.Pos(), "%s copies a lock (%s); pass it by pointer", what, tv.Type)
	}
}

// checkAssignCopy flags `a = b` where the copied value contains a lock.
// Composite literals construct rather than copy and stay legal.
func checkAssignCopy(pass *anz.Pass, info *types.Info, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		tv, ok := info.Types[rhs]
		if !ok {
			continue
		}
		if _, isLit := ast.Unparen(rhs).(*ast.CompositeLit); isLit {
			continue
		}
		if lockByValue(tv.Type) {
			pass.Reportf(as.Lhs[i].Pos(), "assignment copies a lock (%s)", tv.Type)
		}
	}
}

// checkRangeCopy flags ranging by value over elements containing locks.
func checkRangeCopy(pass *anz.Pass, info *types.Info, r *ast.RangeStmt) {
	if r.Value == nil {
		return
	}
	var t types.Type
	if tv, ok := info.Types[r.Value]; ok {
		t = tv.Type
	} else if id, ok := r.Value.(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			t = obj.Type()
		}
	}
	if lockByValue(t) {
		pass.Reportf(r.Value.Pos(), "range value copies a lock (%s); range over indices or pointers", t)
	}
}

// checkCallLockArgs flags lock values passed by value as arguments.
func checkCallLockArgs(pass *anz.Pass, info *types.Info, call *ast.CallExpr) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	for _, arg := range call.Args {
		tv, ok := info.Types[arg]
		if !ok {
			continue
		}
		if _, isLit := ast.Unparen(arg).(*ast.CompositeLit); isLit {
			continue
		}
		if lockByValue(tv.Type) {
			pass.Reportf(arg.Pos(), "argument copies a lock (%s); pass it by pointer", tv.Type)
		}
	}
}
