// Package conc is the concsafety fixture: each rule has a flagged case
// and a clean counterpart.
package conc

import (
	"sync"
	"time"
)

// guarded embeds a mutex; copying it by value copies the lock.
type guarded struct {
	mu sync.Mutex
	n  int
}

var registry []guarded

// spawn launches a goroutine without the pool annotation.
func spawn(work func()) {
	go work() // want "go statement outside the //tepic:pool abstraction"
}

// pool is the sanctioned fan-out point.
//
//tepic:pool
func pool(n int, fn func(int)) {
	results := make(chan int, n) // buffered: bounded fan-out
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
			results <- i
		}(i)
	}
	wg.Wait()
	close(results)
}

// unbounded makes an unbuffered channel and launches workers on it.
func unbounded(n int) {
	ch := make(chan int) // want "unbuffered channel in a goroutine-launching function"
	for i := 0; i < n; i++ {
		go func(i int) { ch <- i }(i) // want "go statement outside the //tepic:pool abstraction"
	}
}

// leakyTimer calls time.After once per iteration.
func leakyTimer(n int, tick chan struct{}) {
	for i := 0; i < n; i++ {
		select {
		case <-time.After(time.Second): // want "time.After in a loop leaks a timer"
		case <-tick:
		}
	}
}

// okTimer uses time.After outside any loop, and a reusable timer inside.
func okTimer(tick chan struct{}) {
	<-time.After(time.Millisecond)
	t := time.NewTimer(time.Second)
	for range tick {
		t.Reset(time.Second)
	}
	t.Stop()
}

// byValue receives and passes locks by value.
func byValue(g guarded) int { // want "parameter copies a lock"
	h := g                          // want "assignment copies a lock"
	use(g)                          // want "argument copies a lock"
	for _, item := range registry { // want "range value copies a lock"
		h.n += item.n
	}
	return h.n
}

func use(g guarded) int { return g.n } // want "parameter copies a lock"

// valueRecv copies its lock on every call.
func (g guarded) valueRecv() int { return g.n } // want "receiver copies a lock"

// byPointer is the clean shape for every lock rule.
func byPointer(g *guarded) int {
	h := g
	usePtr(g)
	for i := range registry {
		h.n += registry[i].n
	}
	return h.n
}

func usePtr(g *guarded) int { return g.n }

func (g *guarded) ptrRecv() int { return g.n }

// construct builds lock-holding values with composite literals, which
// is construction rather than copying.
func construct(n int) *guarded {
	g := guarded{n: n}
	return &g
}
