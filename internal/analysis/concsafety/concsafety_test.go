package concsafety_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/concsafety"
)

func TestConcsafety(t *testing.T) {
	anztest.RunDir(t, "conc", concsafety.New())
}
