// Package terr is the typederr negative fixture for the sentinel rules:
// the test does NOT configure it as a taxonomy package, so bare
// fmt.Errorf construction is legal here — only discards are flagged.
package terr

import "fmt"

func free(n int) error {
	if n < 0 {
		return fmt.Errorf("terr2: naked %d is fine here", n)
	}
	return nil
}

func drop() {
	free(1) // want "includes an error that is discarded"
}
