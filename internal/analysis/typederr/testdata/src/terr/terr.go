// Package terr is the typederr fixture. The test configures it as a
// sentinel (error-taxonomy) package, so both rule families apply: the
// sentinel-wrap rule on error construction and the no-discard rule on
// error returns.
package terr

import (
	"errors"
	"fmt"
	"strings"
)

// ErrBad is the package's registered sentinel: package-level errors.New
// is the one legal construction site.
var ErrBad = errors.New("terr: bad")

// fail is an error source for the discard cases.
func fail() error { return ErrBad }

// pair returns a value and an error.
func pair() (int, error) { return 0, ErrBad }

// wrapOK wraps the sentinel: the clean construction case.
func wrapOK(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: %d", ErrBad, n)
	}
	if err := fail(); err != nil {
		return fmt.Errorf("terr: pass-through: %w", err)
	}
	return nil
}

// wrapBad mints unclassifiable errors.
func wrapBad(n int) error {
	if n == 1 {
		return fmt.Errorf("terr: naked %d", n) // want "fmt.Errorf without %w"
	}
	if n == 2 {
		return errors.New("terr: inline") // want "errors.New outside a package-level sentinel"
	}
	return nil
}

// drops discards errors every way the analyzer must catch.
func drops() int {
	fail()         // want "result of terr.fail includes an error that is discarded"
	_ = fail()     // want "error discarded with blank identifier"
	v, _ := pair() // want "error discarded with blank identifier"
	defer fail()   // want "result of terr.fail includes an error that is discarded"
	go fail()      // want "result of terr.fail includes an error that is discarded"
	return v
}

// handled is the clean side of the discard rule.
func handled() (int, error) {
	if err := fail(); err != nil {
		return 0, err
	}
	v, err := pair()
	if err != nil {
		return 0, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d", v) // infallible writer: exempt
	b.WriteString("x")       // infallible writer method: exempt
	fail()                   //tepic:ignore-err fixture demonstrates the escape hatch
	return v + len(b.String()), nil
}
