package typederr_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/typederr"
)

func TestTypederr(t *testing.T) {
	a := typederr.New(typederr.Config{SentinelPkgs: []string{"terr"}})
	anztest.RunDir(t, "terr", a)
}

// TestNonSentinelPackage checks the construction rules switch off
// outside the configured packages while the discard rules stay on.
func TestNonSentinelPackage(t *testing.T) {
	a := typederr.New(typederr.Config{SentinelPkgs: []string{"somewhere/else"}})
	prog := anztest.Load(t, anztest.Fixture{ImportPath: "terr", Dir: "testdata/src/terr2"})
	anztest.Run(t, prog, a)
}
