// Package typederr enforces the repo's typed-error discipline, the
// contract the simcheck fault matrix and every errors.Is caller depend
// on:
//
//   - In the designated error-taxonomy packages (internal/cache,
//     internal/huffman, internal/compress, internal/bitio), fmt.Errorf
//     must wrap (%w) a registered sentinel or a propagated error — a
//     bare fmt.Errorf mints an unclassifiable error that errors.Is can
//     never match — and errors.New may appear only as a package-level
//     sentinel declaration.
//   - Everywhere in production code, an error return may not be
//     discarded: not with a blank identifier, and not by dropping an
//     error-returning call's results on the floor (fmt.Fprintf results
//     included — the CLIs' report writers latch them instead). A site
//     where ignoring the error is genuinely the right thing must say so
//     with a trailing "//tepic:ignore-err <reason>" directive.
//
// Writers that cannot fail (strings.Builder, bytes.Buffer) are exempt
// from the discard rule, as are calls to them through fmt.
package typederr

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis/anz"
)

// Doc is the analyzer's one-line invariant.
const Doc = "errors wrap package sentinels in the taxonomy packages; no error return is discarded"

// Config parameterizes the analyzer for fixtures.
type Config struct {
	// SentinelPkgs are the import paths under the sentinel-wrap rule.
	SentinelPkgs []string
}

// DefaultConfig covers the repo's error-taxonomy packages.
func DefaultConfig() Config {
	return Config{SentinelPkgs: []string{
		"repro/internal/cache",
		"repro/internal/huffman",
		"repro/internal/compress",
		"repro/internal/bitio",
		"repro/internal/serve",
	}}
}

// New returns the analyzer for a configuration.
func New(cfg Config) *anz.Analyzer {
	sentinel := map[string]bool{}
	for _, p := range cfg.SentinelPkgs {
		sentinel[p] = true
	}
	return &anz.Analyzer{
		Name: "typederr",
		Doc:  Doc,
		Run: func(pass *anz.Pass) error {
			return run(pass, sentinel[pass.Pkg.ImportPath])
		},
	}
}

func run(pass *anz.Pass, sentinelPkg bool) error {
	for _, file := range pass.Pkg.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GenDecl:
				// Package-level var blocks may declare sentinels.
				return !isPackageLevel(file, n)
			case *ast.CallExpr:
				if sentinelPkg {
					checkConstruction(pass, n)
				}
			case *ast.ExprStmt:
				checkDroppedCall(pass, file, n.X)
				return true
			case *ast.GoStmt:
				checkDroppedCall(pass, file, n.Call)
			case *ast.DeferStmt:
				checkDroppedCall(pass, file, n.Call)
			case *ast.AssignStmt:
				checkBlankError(pass, file, n)
			}
			return true
		})
	}
	return nil
}

// isPackageLevel reports whether decl is one of the file's top-level
// declarations.
func isPackageLevel(file *ast.File, decl *ast.GenDecl) bool {
	for _, d := range file.Decls {
		if d == decl {
			return true
		}
	}
	return false
}

// checkConstruction enforces the sentinel-wrap rule on error
// constructors inside function bodies of designated packages.
func checkConstruction(pass *anz.Pass, call *ast.CallExpr) {
	pkg, name := anz.CalleePath(pass.Pkg.Info, call)
	switch {
	case pkg == "errors" && name == "New":
		pass.Reportf(call.Pos(),
			"errors.New outside a package-level sentinel declaration; register a sentinel and wrap it")
	case pkg == "fmt" && name == "Errorf":
		if len(call.Args) == 0 {
			return
		}
		format, ok := constString(pass.Pkg.Info, call.Args[0])
		if !ok {
			pass.Reportf(call.Pos(), "fmt.Errorf with non-constant format cannot be checked for %%w")
			return
		}
		if !strings.Contains(format, "%w") {
			pass.Reportf(call.Pos(),
				"fmt.Errorf without %%w drops the error class; wrap a package sentinel or the underlying error")
		}
	}
}

// checkDroppedCall flags a call whose results include an error that the
// statement discards.
func checkDroppedCall(pass *anz.Pass, file *ast.File, x ast.Expr) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return
	}
	info := pass.Pkg.Info
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return
	}
	if !resultsIncludeError(tv.Type) {
		return
	}
	if exemptWriter(info, call) {
		return
	}
	if anz.LineDirective(pass.Fset, file, call.Pos(), "ignore-err") {
		return
	}
	pass.Reportf(call.Pos(), "result of %s includes an error that is discarded; handle it or annotate //tepic:ignore-err",
		calleeLabel(info, call))
}

// checkBlankError flags `_ = errExpr` and `v, _ := f()` discards where
// the blanked value is an error.
func checkBlankError(pass *anz.Pass, file *ast.File, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var t types.Type
		switch {
		case len(as.Lhs) == len(as.Rhs):
			if tv, ok := info.Types[as.Rhs[i]]; ok {
				t = tv.Type
			}
		case len(as.Rhs) == 1:
			// Multi-value call: pull the i-th result type.
			if tv, ok := info.Types[as.Rhs[0]]; ok {
				if tup, ok := tv.Type.(*types.Tuple); ok && i < tup.Len() {
					t = tup.At(i).Type()
				}
			}
		}
		if t == nil || !isErrorType(t) {
			continue
		}
		if anz.LineDirective(pass.Fset, file, as.Pos(), "ignore-err") {
			continue
		}
		pass.Reportf(lhs.Pos(), "error discarded with blank identifier; handle it or annotate //tepic:ignore-err")
	}
}

// resultsIncludeError reports whether a call's result type carries an
// error (sole result or within the tuple).
func resultsIncludeError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface) && types.IsInterface(t)
}

// exemptWriter exempts writes that cannot fail: methods on
// strings.Builder / bytes.Buffer, and fmt.Fprint* targeting one.
func exemptWriter(info *types.Info, call *ast.CallExpr) bool {
	pkg, name := anz.CalleePath(info, call)
	if pkg == "fmt" && strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		return isInfallibleWriter(info.Types[call.Args[0]].Type)
	}
	if f := anz.FuncFor(info, call); f != nil {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			return isInfallibleWriter(sig.Recv().Type())
		}
	}
	return false
}

func isInfallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	full := n.Obj().Pkg().Path() + "." + n.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// constString resolves an expression to its constant string value.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// calleeLabel names a call for diagnostics.
func calleeLabel(info *types.Info, call *ast.CallExpr) string {
	if f := anz.FuncFor(info, call); f != nil {
		if f.Pkg() != nil {
			return f.Pkg().Name() + "." + f.Name()
		}
		return f.Name()
	}
	return "call"
}
