// Package analysis assembles the repo's analyzer suite — the five
// tepicvet checks, each configured for this module's layout. cmd/tepicvet
// drives the suite over go-list patterns; CI and scripts/vet.sh run it
// alongside go vet and staticcheck. The individual analyzers live in
// subpackages and are built on the anz framework; see DESIGN.md §11 for
// the catalog and the annotation contract.
package analysis

import (
	"repro/internal/analysis/anz"
	"repro/internal/analysis/concsafety"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/registrycomplete"
	"repro/internal/analysis/stableid"
	"repro/internal/analysis/typederr"
)

// Suite returns the repo-configured analyzers in catalog order.
func Suite() []*anz.Analyzer {
	return []*anz.Analyzer{
		hotalloc.New(),
		typederr.New(typederr.DefaultConfig()),
		registrycomplete.New(registrycomplete.DefaultConfig()),
		concsafety.New(),
		stableid.New(stableid.DefaultConfig()),
	}
}
