package registrycomplete_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/registrycomplete"
)

func TestRegistryComplete(t *testing.T) {
	a := registrycomplete.New(registrycomplete.Config{
		Registrars: []registrycomplete.Registrar{
			{Pkg: "reg", Func: "Register", Kind: "items"},
			{Pkg: "reg", Func: "MustRegister", Kind: "items"},
		},
		ManifestPkg:  "regcorpus",
		ManifestFile: "manifest.json",
	})
	prog := anztest.Load(t,
		anztest.Fixture{ImportPath: "reg", Dir: fixdir(t, "reg")},
		anztest.Fixture{ImportPath: "regcfg", Dir: fixdir(t, "regcfg")},
		anztest.Fixture{ImportPath: "regbuiltin", Dir: fixdir(t, "regbuiltin")},
		anztest.Fixture{ImportPath: "regcorpus", Dir: fixdir(t, "regcorpus")},
	)
	anztest.Run(t, prog, a)
}

// TestPartialLoad checks the analyzer stays silent when the manifest
// anchor package is outside the loaded set (tepicvet on a sub-tree).
func TestPartialLoad(t *testing.T) {
	a := registrycomplete.New(registrycomplete.Config{
		Registrars:   []registrycomplete.Registrar{{Pkg: "reg", Func: "Register", Kind: "items"}},
		ManifestPkg:  "regcorpus",
		ManifestFile: "manifest.json",
	})
	prog := anztest.Load(t, anztest.Fixture{ImportPath: "reg", Dir: fixdir(t, "reg")})
	anztest.Run(t, prog, a)
}

func fixdir(t *testing.T, pkg string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}
