// Package regcfg mirrors compress.StreamConfigs: a package-level config
// slice that another package registers by ranging over.
package regcfg

// Cfg is one configuration.
type Cfg struct {
	Name string
	Cut  int
}

// Configs is the registration source slice.
var Configs = []Cfg{
	{Name: "stream-a", Cut: 5},
	{Name: "stream-b", Cut: 20},
	{Name: "stream-rogue", Cut: 9},
}
