// Package regbuiltin registers fixture items through every shape the
// analyzer must resolve: literal names, named constants, a range over
// another package's config slice, and a local builtins slice — plus one
// dynamic registration it must refuse.
package regbuiltin

import (
	"reg"
	"regcfg"
)

// extraName is a named-constant registration name.
const extraName = "extra-missing"

func init() {
	reg.MustRegister(reg.Item{Name: "alpha-base", Rank: 1})

	reg.MustRegister(reg.Item{Name: extraName}) // want "items \"extra-missing\" registered but absent"

	for _, cfg := range regcfg.Configs {
		reg.MustRegister(reg.Item{ // want "items \"stream-rogue\" registered but absent"
			Name: cfg.Name,
			Rank: cfg.Cut,
		})
	}

	builtins := []struct {
		n  int
		it reg.Item
	}{
		{1, reg.Item{Name: "spec-one"}},
		{2, reg.Item{Name: "spec-two"}},
	}
	for _, b := range builtins {
		reg.MustRegister(b.it)
	}

	if err := reg.Register(makeItem()); err != nil { // want "statically unresolvable Name"
		panic(err)
	}
}

func makeItem() reg.Item { return reg.Item{Name: "runtime-made"} }
