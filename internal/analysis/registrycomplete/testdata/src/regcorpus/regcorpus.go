// Package regcorpus anchors the fixture manifest: the analyzer reads
// manifest.json from this package's directory, and stale manifest
// entries are reported against this file's package clause.
package regcorpus // want "items entry \"ghost-entry\" in manifest.json has no registration call site"
