// Package reg is the registrycomplete fixture's registry: the
// forwarding wrapper mirrors scheme.MustRegister calling Register, which
// the analyzer must not treat as a registration site.
package reg

// Item is the registered entity.
type Item struct {
	Name string
	Rank int
}

var items = map[string]Item{}

// Register adds an item.
func Register(it Item) error {
	items[it.Name] = it
	return nil
}

// MustRegister forwards to Register.
func MustRegister(it Item) {
	if err := Register(it); err != nil {
		panic(err)
	}
}
