// Package anztest runs anz analyzers over testdata fixture packages and
// checks their diagnostics against expectations written in the fixture
// source, the analysistest convention: a comment
//
//	// want "regexp"
//
// on a line means the analyzer must report at least one diagnostic on
// that line whose message matches the regexp; several quoted regexps
// may follow one want. Lines without a want comment must stay clean.
// Every analyzer ships at least one positive (reported) and one
// negative (clean) fixture case through this harness.
package anztest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis/anz"
)

// Fixture names one fixture package rooted under dir: the files of
// testdata/src/<name> loaded as import path <name>.
type Fixture struct {
	ImportPath string
	Dir        string
}

// Load reads fixture packages (dependencies first) into a program.
func Load(t *testing.T, fixtures ...Fixture) *anz.Program {
	t.Helper()
	var dirs []anz.Dir
	for _, fx := range fixtures {
		entries, err := os.ReadDir(fx.Dir)
		if err != nil {
			t.Fatal(err)
		}
		d := anz.Dir{ImportPath: fx.ImportPath, Dir: fx.Dir}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(fx.Dir, e.Name())
			content, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			d.Files = append(d.Files, anz.Source{Name: path, Content: content})
		}
		if len(d.Files) == 0 {
			t.Fatalf("anztest: no .go files in %s", fx.Dir)
		}
		dirs = append(dirs, d)
	}
	prog, err := anz.LoadSources(dirs)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// RunDir is the common single-package case: load testdata/src/<pkg>
// relative to the test's working directory and check the analyzer
// against its want comments.
func RunDir(t *testing.T, pkg string, a *anz.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	Run(t, Load(t, Fixture{ImportPath: pkg, Dir: abs}), a)
}

// Run executes the analyzer over a loaded fixture program and fails the
// test on any mismatch between reported diagnostics and want comments.
func Run(t *testing.T, prog *anz.Program, a *anz.Analyzer) {
	t.Helper()
	findings, err := anz.Run(prog, []*anz.Analyzer{a})
	if err != nil {
		t.Fatalf("anztest: %v", err)
	}
	wants := collectWants(t, prog)

	matched := map[*want]bool{}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		ws := wants[key]
		ok := false
		for _, w := range ws {
			if w.re.MatchString(f.Message) {
				matched[w] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !matched[w] {
				t.Errorf("%s: no diagnostic matching %q", k, w.re)
			}
		}
	}
}

type want struct{ re *regexp.Regexp }

// wantRE pulls the quoted regexps out of a want comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants scans every fixture file's comments for want
// expectations, keyed by "file:line".
func collectWants(t *testing.T, prog *anz.Program) map[string][]*want {
	t.Helper()
	out := map[string][]*want{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(strings.TrimSpace(c.Text), "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
						pat, err := unquoteWant(m[1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
						}
						out[key] = append(out[key], &want{re: re})
					}
				}
			}
		}
	}
	return out
}

// unquoteWant undoes the quote escaping inside a want pattern: \" and
// \\ unescape, every other backslash is regexp syntax and stays.
func unquoteWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			if i+1 >= len(s) {
				return "", fmt.Errorf("trailing backslash")
			}
			if s[i+1] == '"' || s[i+1] == '\\' {
				i++
			}
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}
