package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	anztest.RunDir(t, "a", hotalloc.New())
}
