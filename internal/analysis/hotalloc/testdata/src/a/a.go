// Package a is the hotalloc fixture: hot annotates every construct the
// analyzer must flag, cold shows the same constructs are legal without
// the annotation, and clean is a hot-path function with nothing to
// report.
package a

import "fmt"

type sink interface{ M() }

type impl struct{ v int }

func (impl) M() {}

var global sink

// hot is the positive case.
//
//tepic:hotpath
func hot(n int, s string, bs []byte) int {
	m := map[int]int{}           // want "map literal allocates"
	sl := []int{1, 2, 3}         // want "slice literal allocates"
	p := &impl{v: n}             // want "&composite literal escapes"
	sl = append(sl, n)           // want "append may grow"
	buf := make([]byte, n)       // want "make allocates"
	q := new(impl)               // want "new allocates"
	f := func() int { return n } // want "closure allocates"
	go hotHelper()               // want "go statement allocates"
	defer hotHelper()            // want "defer in hot path"
	s2 := s + string(bs)         // want "string concatenation allocates" "conversion string allocates"
	fmt.Println(n)               // want "call to fmt.Println allocates" "argument boxes int into interface"
	global = impl{v: n}          // want "assignment boxes a.impl into interface"
	return len(m) + len(sl) + p.v + len(buf) + q.v + f() + len(s2)
}

func hotHelper() {}

// cold does all the same things with no annotation: no findings.
func cold(n int) []int {
	sl := []int{1, 2, 3}
	m := map[int]int{n: n}
	fmt.Println(len(m))
	return append(sl, n)
}

// clean is annotated and allocation-free: the negative case.
//
//tepic:hotpath
func clean(data []byte, out []uint64) error {
	var acc uint64
	for i := range out {
		if i < len(data) {
			acc = acc<<8 | uint64(data[i])
		}
		out[i] = acc
	}
	if acc == 0 {
		return errSentinel // an existing error value: no boxing
	}
	return nil
}

var errSentinel error = fixtureErr{}

type fixtureErr struct{}

func (fixtureErr) Error() string { return "fixture" }
