// Package hotalloc enforces the repo's allocation-free hot-path
// contract: a function whose doc comment carries the //tepic:hotpath
// directive (the Huffman fast decoder's Decode/DecodeRun, the bitio
// peek/consume/refill primitives, the Sim.Run per-event step) must not
// contain any construct the compiler can turn into a heap allocation —
// growth via append, make/new, map/slice/pointer composite literals,
// closures, go/defer, fmt-class calls, string/[]byte conversions,
// non-constant string concatenation, or implicit boxing of a concrete
// value into an interface.
//
// The check is the static half of a differential pair: every annotated
// function also has a testing.AllocsPerRun == 0 regression test, so a
// violation the syntax-level analysis cannot see (an allocation inside
// a callee, an escape the compiler proves differently across versions)
// is still caught dynamically, and a false positive here would show up
// as an unexplained clean run there.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/anz"
)

// Doc is the analyzer's one-line invariant.
const Doc = "//tepic:hotpath functions must be statically allocation-free"

// denyPkgs are packages whose exported functions allocate (or format)
// on their success path; calling them from a hot path is always a bug.
var denyPkgs = map[string]bool{
	"fmt": true, "errors": true, "log": true, "strconv": true,
	"strings": true, "sort": true, "reflect": true, "os": true,
	"time": true,
}

// New returns the analyzer.
func New() *anz.Analyzer {
	return &anz.Analyzer{
		Name: "hotalloc",
		Doc:  Doc,
		Run:  run,
	}
}

func run(pass *anz.Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !anz.Directive(fd, "hotpath") {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

// check walks one annotated function body.
func check(pass *anz.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	name := fd.Name.Name
	sig, _ := info.Defs[fd.Name].Type().(*types.Signature)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := info.Types[n].Type.Underlying()
			switch t.(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "%s: map literal allocates in hot path", name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "%s: slice literal allocates in hot path", name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "%s: &composite literal escapes to the heap in hot path", name)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s: closure allocates in hot path", name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s: go statement allocates (and escapes its arguments) in hot path", name)
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "%s: defer in hot path", name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info, n) && !isConst(info, n) {
				pass.Reportf(n.Pos(), "%s: string concatenation allocates in hot path", name)
			}
		case *ast.ReturnStmt:
			checkReturn(pass, info, sig, n, name)
		case *ast.AssignStmt:
			checkAssign(pass, info, n, name)
		case *ast.CallExpr:
			checkCall(pass, info, n, name)
		}
		return true
	})
}

// checkCall flags allocating built-ins, deny-listed packages,
// allocating conversions, and boxing at call boundaries.
func checkCall(pass *anz.Pass, info *types.Info, call *ast.CallExpr, name string) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "%s: append may grow its backing array in hot path", name)
			case "make", "new":
				pass.Reportf(call.Pos(), "%s: %s allocates in hot path", name, b.Name())
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := info.Types[call.Args[0]].Type.Underlying()
		if convAllocates(dst, src) && !isConst(info, call.Args[0]) {
			pass.Reportf(call.Pos(), "%s: conversion %s allocates in hot path", name, types.ExprString(call.Fun))
		}
		if types.IsInterface(dst) && !types.IsInterface(src) {
			pass.Reportf(call.Pos(), "%s: conversion to interface %s boxes its operand in hot path",
				name, types.ExprString(call.Fun))
		}
		return
	}
	if f := anz.FuncFor(info, call); f != nil && f.Pkg() != nil && denyPkgs[f.Pkg().Path()] {
		pass.Reportf(call.Pos(), "%s: call to %s.%s allocates in hot path",
			name, f.Pkg().Name(), f.Name())
	}
	// Boxing: a concrete argument passed to an interface parameter.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		reportBoxing(pass, info, arg, pt, name, "argument")
	}
}

// checkReturn flags concrete values returned as interface results.
func checkReturn(pass *anz.Pass, info *types.Info, sig *types.Signature, ret *ast.ReturnStmt, name string) {
	if sig == nil || ret.Results == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		reportBoxing(pass, info, res, sig.Results().At(i).Type(), name, "return value")
	}
}

// checkAssign flags concrete values assigned to interface-typed
// destinations.
func checkAssign(pass *anz.Pass, info *types.Info, as *ast.AssignStmt, name string) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt, ok := info.Types[lhs]
		if !ok {
			continue
		}
		reportBoxing(pass, info, as.Rhs[i], lt.Type, name, "assignment")
	}
}

// reportBoxing reports expr when it is a concrete (non-interface,
// non-nil, non-constant-small) value converted to an interface target.
// Untyped nil and values already held as interfaces convert for free.
func reportBoxing(pass *anz.Pass, info *types.Info, expr ast.Expr, target types.Type, name, site string) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || types.IsInterface(tv.Type.Underlying()) {
		return
	}
	pass.Reportf(expr.Pos(), "%s: %s boxes %s into interface %s in hot path",
		name, site, tv.Type, target)
}

// callSignature resolves the signature of any call (named function,
// method, or function value).
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// convAllocates reports the string/byte-slice conversion pairs that
// copy their operand.
func convAllocates(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

func isString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type.Underlying())
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
