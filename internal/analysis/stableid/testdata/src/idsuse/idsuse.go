// Package idsuse consumes the fixture ID type from outside its central
// package: every literal or conversion here must be flagged.
package idsuse

import "ids"

// byConstant is the clean shape: reference the declared constant.
func byConstant() ids.ID { return ids.Good }

// local declares an ID literal outside the central package.
var local ids.ID = "ir-local" // want "literal outside the central declaration package"

// convert mints IDs through conversions.
func convert(s string) ids.ID {
	if s == "" {
		return ids.ID("ir-fixed") // want "conversion of a string literal"
	}
	return ids.ID("made-" + s) // want "dynamically constructed ID"
}

// compare matches against a raw literal instead of the constant.
func compare(d ids.ID) bool {
	return d == "ir-good" // want "literal outside the central declaration package"
}
