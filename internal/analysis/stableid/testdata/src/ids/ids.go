// Package ids is the stableid fixture's central declaration package:
// the test configures the ID type as ids.ID, so literals here are the
// sanctioned ones and must be well-formed and unique.
package ids

// ID is the fixture's stable-identifier type.
type ID string

const (
	// Good and AlsoGood are conforming declarations.
	Good     ID = "ir-good"
	AlsoGood ID = "mop-two-part"

	// The rest violate one rule each.
	Dup      ID = "ir-good"  // want "duplicate check ID"
	BadCase  ID = "Ir-Upper" // want "not kebab-case"
	OneWord  ID = "oneword"  // want "not kebab-case"
	Trailing ID = "ir-"      // want "not kebab-case"
)

// VarID shows package-level vars count as declarations too.
var VarID ID = "ir-var-form"

// Seed feeds the dynamic-conversion case.
func Seed() string { return "ir-seed" }

// Runtime mints an ID from a call result: never stable.
var Runtime = ID(Seed()) // want "dynamically constructed ID"
