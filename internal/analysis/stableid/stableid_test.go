package stableid_test

import (
	"testing"

	"repro/internal/analysis/anztest"
	"repro/internal/analysis/stableid"
)

func TestStableID(t *testing.T) {
	a := stableid.New(stableid.Config{TypePkg: "ids", TypeName: "ID"})
	prog := anztest.Load(t,
		anztest.Fixture{ImportPath: "ids", Dir: "testdata/src/ids"},
		anztest.Fixture{ImportPath: "idsuse", Dir: "testdata/src/idsuse"},
	)
	anztest.Run(t, prog, a)
}
