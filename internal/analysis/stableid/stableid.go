// Package stableid guards the verifier's stable check-ID namespace.
// Check IDs are contract surface: CI greps for them, the simcheck
// oracle matrix keys on them, and external tooling pins them. The
// analyzer enforces that every ID is a kebab-case string literal with
// at least two segments, unique, and declared only in the one central
// package — nothing anywhere else may mint one from a string.
package stableid

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"

	"repro/internal/analysis/anz"
)

// Doc is the analyzer's one-line invariant.
const Doc = "check IDs are unique kebab-case literals declared only in the central package"

// idPattern is the required shape: lowercase kebab-case with at least
// two segments, e.g. "sim-oracle" or "ir-block-id".
var idPattern = regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)+$`)

// Config names the ID type and its single legal declaration package.
type Config struct {
	// TypePkg is the import path of the package declaring the ID type;
	// it is also the only package allowed to declare ID literals.
	TypePkg string
	// TypeName is the ID type's name within TypePkg.
	TypeName string
}

// DefaultConfig covers the repo's verify.CheckID namespace.
func DefaultConfig() Config {
	return Config{TypePkg: "repro/internal/verify", TypeName: "CheckID"}
}

// New returns the analyzer for a configuration.
func New(cfg Config) *anz.Analyzer {
	return &anz.Analyzer{
		Name: "stableid",
		Doc:  Doc,
		Run:  func(pass *anz.Pass) error { return run(pass, cfg) },
	}
}

func run(pass *anz.Pass, cfg Config) error {
	isIDType := func(t types.Type) bool {
		n, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := n.Obj()
		return obj.Name() == cfg.TypeName &&
			obj.Pkg() != nil && obj.Pkg().Path() == cfg.TypePkg
	}
	declPkg := pass.Pkg.ImportPath == cfg.TypePkg

	// Package-level ID declarations in the central package are the one
	// legal literal site; collect them first, checking format and
	// uniqueness.
	allowed := map[*ast.BasicLit]bool{}
	seen := map[string]token.Pos{}
	if declPkg {
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || (gd.Tok != token.CONST && gd.Tok != token.VAR) {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					collectDecl(pass, vs, isIDType, allowed, seen)
				}
			}
		}
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, n, cfg, isIDType, allowed)
			case *ast.BasicLit:
				if n.Kind != token.STRING || allowed[n] {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[n]
				if !ok || tv.Type == nil || !isIDType(tv.Type) {
					return true
				}
				pass.Reportf(n.Pos(),
					"%s literal outside the central declaration package %s; use a declared constant",
					cfg.TypeName, cfg.TypePkg)
			}
			return true
		})
	}
	return nil
}

// collectDecl validates one package-level value spec in the central
// package, marking its string literals as the sanctioned ones.
func collectDecl(pass *anz.Pass, vs *ast.ValueSpec, isIDType func(types.Type) bool,
	allowed map[*ast.BasicLit]bool, seen map[string]token.Pos) {
	for i, name := range vs.Names {
		obj := pass.Pkg.Info.Defs[name]
		if obj == nil || !isIDType(obj.Type()) || i >= len(vs.Values) {
			continue
		}
		lit, ok := ast.Unparen(vs.Values[i]).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			// Conversions and other dynamic values are reported by
			// checkConversion during the walk.
			continue
		}
		allowed[lit] = true
		val, err := literalValue(lit)
		if err != nil {
			continue
		}
		if !idPattern.MatchString(val) {
			pass.Reportf(lit.Pos(),
				"check ID %q is not kebab-case with at least two segments (want %s)",
				val, idPattern)
		}
		if prev, dup := seen[val]; dup {
			pass.Reportf(lit.Pos(), "duplicate check ID %q (first declared at %s)",
				val, pass.Fset.Position(prev))
		} else {
			seen[val] = lit.Pos()
		}
	}
}

// checkConversion flags IDType(expr) conversions: IDs must be literal
// declarations, never computed.
func checkConversion(pass *anz.Pass, call *ast.CallExpr, cfg Config, isIDType func(types.Type) bool,
	allowed map[*ast.BasicLit]bool) {
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || !isIDType(tv.Type) {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
		allowed[lit] = true // the conversion diagnostic covers the operand
		pass.Reportf(call.Pos(),
			"%s conversion of a string literal; declare the ID as a constant in %s",
			cfg.TypeName, cfg.TypePkg)
		return
	}
	pass.Reportf(call.Pos(),
		"dynamically constructed %s; check IDs must be stable literals declared in %s",
		cfg.TypeName, cfg.TypePkg)
}

// literalValue unquotes a string literal.
func literalValue(lit *ast.BasicLit) (string, error) {
	return strconv.Unquote(lit.Value)
}
