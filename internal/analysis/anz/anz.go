// Package anz is the repo's static-analysis framework: a minimal,
// dependency-free sibling of golang.org/x/tools/go/analysis. The
// toolchain's conventions — allocation-free hot paths, sentinel-wrapped
// errors, registry/corpus completeness, pool-scoped concurrency, stable
// check IDs — are enforced by analyzers built on this package and driven
// by cmd/tepicvet.
//
// The x/tools module is deliberately not imported: the repro module is
// self-contained (stdlib only), so the framework re-creates the three
// pieces the analyzers need — an Analyzer descriptor, a per-package Pass
// with full type information, and a whole-Program view for cross-package
// checks — on top of go/parser, go/types and the stdlib source importer.
// Loading is in loader.go; the analysistest-style fixture harness is in
// the sibling package anztest.
package anz

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. Exactly one of Run (invoked once
// per loaded package) or RunProgram (invoked once with the whole loaded
// program, for cross-package checks like registry completeness) must be
// set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags. Names
	// are lower-case identifiers ("hotalloc", "typederr", ...).
	Name string
	// Doc is the one-line invariant statement shown by tepicvet -list.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
	// RunProgram analyzes the whole program at once.
	RunProgram func(*Program, func(*Package, Diagnostic)) error
}

// Diagnostic is one finding, positioned in the loaded file set.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Package is one loaded, type-checked package: its syntax (non-test
// files only, with comments) and its type information.
type Package struct {
	// ImportPath is the package's import path ("repro/internal/cache");
	// fixture packages loaded by anztest carry synthetic paths.
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Files holds the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the expression types, definitions and uses recorded
	// while type-checking Files.
	Info *types.Info
}

// Program is a set of packages loaded together, sharing one file set.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	// ByPath indexes Packages by import path.
	ByPath map[string]*Package
}

// Pass carries one analyzer invocation over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Program is the full load this package came from, for analyzers
	// that need to peek across package boundaries.
	Program *Program

	report func(Diagnostic)
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a diagnostic bound to its analyzer and package, as returned
// by Run.
type Finding struct {
	Analyzer string
	Package  string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run drives every analyzer over the program and returns the findings
// sorted by position. Analyzer errors (not findings) abort the run.
func Run(prog *Program, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		a := a
		collect := func(pkg *Package, d Diagnostic) {
			out = append(out, Finding{
				Analyzer: a.Name,
				Package:  pkg.ImportPath,
				Pos:      prog.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		switch {
		case a.RunProgram != nil:
			if err := a.RunProgram(prog, collect); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		case a.Run != nil:
			for _, pkg := range prog.Packages {
				pkg := pkg
				pass := &Pass{
					Analyzer: a,
					Fset:     prog.Fset,
					Pkg:      pkg,
					Program:  prog,
					report:   func(d Diagnostic) { collect(pkg, d) },
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
				}
			}
		default:
			return nil, fmt.Errorf("%s: analyzer has neither Run nor RunProgram", a.Name)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Directive reports whether a function declaration's doc block carries
// the given //tepic: directive (e.g. Directive(fd, "hotpath") matches a
// line reading exactly "//tepic:hotpath"). Directives are the
// annotation contract between the code and the analyzers; they must
// appear in the doc comment, one per line, with no space after "//".
func Directive(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	want := "//tepic:" + name
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == want {
			return true
		}
	}
	return false
}

// LineDirective reports whether the line holding pos carries a trailing
// //tepic: directive comment (e.g. "//tepic:ignore-err reason"),
// consulting every comment group in the file.
func LineDirective(fset *token.FileSet, file *ast.File, pos token.Pos, name string) bool {
	line := fset.Position(pos).Line
	prefix := "//tepic:" + name
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if fset.Position(c.Pos()).Line != line {
				continue
			}
			text := strings.TrimSpace(c.Text)
			if text == prefix || strings.HasPrefix(text, prefix+" ") {
				return true
			}
		}
	}
	return false
}

// FuncFor resolves a call expression to the *types.Func it invokes
// (package function, method, or imported function), or nil for calls of
// function values, built-ins and type conversions.
func FuncFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// CalleePath returns the defining package path and name of a call's
// callee ("fmt", "Errorf"), or ("", "") when the call does not resolve
// to a named function. Methods report their receiver's package.
func CalleePath(info *types.Info, call *ast.CallExpr) (pkg, name string) {
	f := FuncFor(info, call)
	if f == nil {
		return "", ""
	}
	if p := f.Pkg(); p != nil {
		return p.Path(), f.Name()
	}
	// Error.Error and friends from the universe scope.
	return "", f.Name()
}

// EnclosingFunc returns the innermost function declaration containing
// pos in the file, or nil (literals do not count: a FuncLit inside an
// annotated function still belongs to that function's contract).
func EnclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
