package anz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPackage is the slice of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// LoadPatterns enumerates packages with the go command (so pattern
// semantics — "./...", package paths — match the build) and type-checks
// each with the stdlib source importer. Only non-test files are loaded:
// the analyzers enforce production-code invariants, and several of them
// (typederr's discard rule, hotalloc) explicitly exempt tests. dir is
// the working directory for the go command and must lie inside the
// module.
func LoadPatterns(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("anz: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("anz: decoding go list output: %w", err)
		}
		if len(p.GoFiles) > 0 {
			pkgs = append(pkgs, p)
		}
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset: fset,
		src:  importer.ForCompiler(fset, "source", nil),
		prog: &Program{Fset: fset, ByPath: map[string]*Package{}},
	}
	// Check dependencies before dependents so every loaded package
	// resolves module-internal imports from the loader's own cache (one
	// type-check per package) rather than re-checking through the source
	// importer.
	order, err := topo(pkgs)
	if err != nil {
		return nil, err
	}
	for _, p := range order {
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		if _, err := ld.check(p.ImportPath, p.Dir, files, nil); err != nil {
			return nil, err
		}
	}
	// Report packages in the order go list produced them, which follows
	// the pattern expansion order users expect.
	byPath := map[string]*Package{}
	for _, pkg := range ld.prog.Packages {
		byPath[pkg.ImportPath] = pkg
	}
	ordered := make([]*Package, 0, len(pkgs))
	for _, p := range pkgs {
		ordered = append(ordered, byPath[p.ImportPath])
	}
	ld.prog.Packages = ordered
	return ld.prog, nil
}

// topo sorts packages so that imports within the listed set precede
// their importers.
func topo(pkgs []listPackage) ([]listPackage, error) {
	byPath := map[string]*listPackage{}
	for i := range pkgs {
		byPath[pkgs[i].ImportPath] = &pkgs[i]
	}
	var (
		out     []listPackage
		visit   func(p *listPackage) error
		state   = map[string]int{} // 1 = visiting, 2 = done
		pending []string
	)
	visit = func(p *listPackage) error {
		switch state[p.ImportPath] {
		case 1:
			return fmt.Errorf("anz: import cycle through %s (via %s)",
				p.ImportPath, strings.Join(pending, " -> "))
		case 2:
			return nil
		}
		state[p.ImportPath] = 1
		pending = append(pending, p.ImportPath)
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		pending = pending[:len(pending)-1]
		state[p.ImportPath] = 2
		out = append(out, *p)
		return nil
	}
	for i := range pkgs {
		if err := visit(&pkgs[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Source is one in-memory fixture file for LoadSources.
type Source struct {
	// Name is the file name reported in positions (absolute paths keep
	// fixture diagnostics clickable).
	Name string
	// Content holds the file's source text.
	Content []byte
}

// Dir names one fixture package for LoadSources.
type Dir struct {
	// ImportPath is the synthetic path the package is known by; other
	// fixture packages may import it.
	ImportPath string
	// Dir is the directory positions are reported under.
	Dir string
	// Files are the package's sources.
	Files []Source
}

// LoadSources type-checks fixture packages, in order (dependencies
// first). Imports resolve against earlier fixture packages, then the
// stdlib/module source importer — so fixtures may import both each
// other and real repro packages.
func LoadSources(dirs []Dir) (*Program, error) {
	fset := token.NewFileSet()
	ld := &loader{
		fset: fset,
		src:  importer.ForCompiler(fset, "source", nil),
		prog: &Program{Fset: fset, ByPath: map[string]*Package{}},
	}
	for _, d := range dirs {
		if _, err := ld.check(d.ImportPath, d.Dir, nil, d.Files); err != nil {
			return nil, err
		}
	}
	return ld.prog, nil
}

// loader accumulates checked packages and resolves imports map-first.
type loader struct {
	fset *token.FileSet
	src  types.Importer
	prog *Program
}

// Import implements types.Importer: fixture/loaded packages first, then
// the source importer for stdlib and not-yet-loaded module packages.
func (ld *loader) Import(path string) (*types.Package, error) {
	if p, ok := ld.prog.ByPath[path]; ok {
		return p.Types, nil
	}
	return ld.src.Import(path)
}

// ImportFrom keeps srcDir-relative resolution working for the source
// importer fallback.
func (ld *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := ld.prog.ByPath[path]; ok {
		return p.Types, nil
	}
	if from, ok := ld.src.(types.ImporterFrom); ok {
		return from.ImportFrom(path, srcDir, mode)
	}
	return ld.src.Import(path)
}

// check parses and type-checks one package from files on disk (paths)
// or in memory (srcs), records it in the program, and returns it.
func (ld *loader) check(importPath, dir string, paths []string, srcs []Source) (*Package, error) {
	var files []*ast.File
	const mode = parser.ParseComments | parser.SkipObjectResolution
	for _, p := range paths {
		f, err := parser.ParseFile(ld.fset, p, nil, mode)
		if err != nil {
			return nil, fmt.Errorf("anz: %w", err)
		}
		files = append(files, f)
	}
	for _, s := range srcs {
		f, err := parser.ParseFile(ld.fset, s.Name, s.Content, mode)
		if err != nil {
			return nil, fmt.Errorf("anz: %w", err)
		}
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool {
		return ld.fset.Position(files[i].Pos()).Filename <
			ld.fset.Position(files[j].Pos()).Filename
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("anz: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	ld.prog.Packages = append(ld.prog.Packages, pkg)
	ld.prog.ByPath[importPath] = pkg
	return pkg, nil
}
