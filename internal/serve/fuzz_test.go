package serve

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzServeRequest drives arbitrary bytes through every /v1 endpoint's
// JSON decoder and validator — the exact parse path a request body
// takes before any artifact build. The contract under fuzz: no panics,
// and every rejection wraps one of the package's typed sentinels (so
// statusFor never falls through to 500 for a client-side fault and
// kindOf never reports "internal" for one).
func FuzzServeRequest(f *testing.F) {
	f.Add([]byte(`{"benchmark":"compress"}`))
	f.Add([]byte(`{"benchmark":"compress","scheme":"full"}`))
	f.Add([]byte(`{"benchmark":"compress","schemes":["full","byte"]}`))
	f.Add([]byte(`{"benchmark":"compress","pairing":"full/compressed","blocks":1000}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"benchmark": 7}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"benchmark":"compress"} trailing`))
	f.Add([]byte(``))
	f.Add(bytes.Repeat([]byte("a"), 600))

	sentinels := []error{
		ErrMalformedRequest, ErrBodyTooLarge,
		ErrUnknownBenchmark, ErrUnknownScheme, ErrUnknownPairing,
	}
	const limit = 512
	f.Fuzz(func(t *testing.T, data []byte) {
		requests := []validator{
			&CompileRequest{},
			&EncodeRequest{},
			&DecodeRequest{},
			&LintRequest{},
			&SimulateRequest{},
		}
		for _, req := range requests {
			err := parseRequest(bytes.NewReader(data), limit, req)
			if err == nil {
				continue
			}
			wrapped := false
			for _, s := range sentinels {
				if errors.Is(err, s) {
					wrapped = true
					break
				}
			}
			if !wrapped {
				t.Fatalf("%T rejection does not wrap a sentinel: %v", req, err)
			}
			if kindOf(err) == "internal" {
				t.Fatalf("%T rejection classified internal: %v", req, err)
			}
			if statusFor(err) >= 500 {
				t.Fatalf("%T rejection mapped to %d: %v", req, statusFor(err), err)
			}
		}
	})
}
