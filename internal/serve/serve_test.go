package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/scheme"
	"repro/internal/workload"
)

// newTestServer boots a service instance over httptest.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON sends one request and returns status and raw body.
func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, url, data)
}

func postRaw(t *testing.T, url string, data []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func decodeInto(t *testing.T, data []byte, dst any) {
	t.Helper()
	if err := json.Unmarshal(data, dst); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
}

// groundTruthHash digests the scheduled program's own operations in
// image placement order — the independent truth every decode path must
// reproduce bit for bit.
func groundTruthHash(t *testing.T, c *core.Compiled, im *image.Image) string {
	t.Helper()
	byID := map[int][]isa.Op{}
	for i := range c.Prog.Blocks {
		byID[c.Prog.Blocks[i].ID] = c.Prog.Blocks[i].Ops
	}
	blocks := make([][]isa.Op, len(im.Blocks))
	for i, b := range im.Blocks {
		ops, ok := byID[b.ID]
		if !ok {
			t.Fatalf("image block %d references unknown program block %d", i, b.ID)
		}
		blocks[i] = ops
	}
	return HashOps(blocks)
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := getJSON(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", status)
	}
	var h HealthResponse
	decodeInto(t, body, &h)
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}

	resp, err := http.Post(ts.URL+"/healthz", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		t.Errorf("Allow = %q, want GET", allow)
	}
}

// TestCompileEndpoint checks the handler against the direct core path:
// same program structure, same content key.
func TestCompileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{Benchmark: "compress"})
	if status != http.StatusOK {
		t.Fatalf("POST /v1/compile = %d: %s", status, body)
	}
	var got CompileResponse
	decodeInto(t, body, &got)

	c, err := core.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	if got.Blocks != len(c.Prog.Blocks) || got.Ops != c.Prog.TotalOps() || got.MOPs != c.Prog.TotalMOPs() {
		t.Errorf("compile summary = %+v, want blocks=%d ops=%d mops=%d",
			got, len(c.Prog.Blocks), c.Prog.TotalOps(), c.Prog.TotalMOPs())
	}
	if got.ContentKey != c.ContentKey() {
		t.Errorf("content key %q differs from direct path %q", got.ContentKey, c.ContentKey())
	}
}

// TestEncodeDecodeGoldenRoundTrip drives every registered scheme for
// one benchmark through /v1/encode and /v1/decode and requires the
// daemon's decode digest to equal the ground truth derived from the
// scheduled program — request → artifact → decode, bit-identical to
// the direct core path.
func TestEncodeDecodeGoldenRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c, err := core.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range core.SchemeNames() {
		im, err := c.Image(sc)
		if err != nil {
			t.Fatalf("direct image %s: %v", sc, err)
		}

		status, body := postJSON(t, ts.URL+"/v1/encode", EncodeRequest{Benchmark: "compress", Scheme: sc})
		if status != http.StatusOK {
			t.Fatalf("encode %s = %d: %s", sc, status, body)
		}
		var enc EncodeResponse
		decodeInto(t, body, &enc)
		if enc.CodeBytes != im.CodeBytes || enc.Blocks != len(im.Blocks) || enc.TotalBytes != im.TotalBytes() {
			t.Errorf("%s: encode summary %+v disagrees with direct image (code=%d blocks=%d total=%d)",
				sc, enc, im.CodeBytes, len(im.Blocks), im.TotalBytes())
		}

		status, body = postJSON(t, ts.URL+"/v1/decode", DecodeRequest{Benchmark: "compress", Scheme: sc})
		if status != http.StatusOK {
			t.Fatalf("decode %s = %d: %s", sc, status, body)
		}
		var dec DecodeResponse
		decodeInto(t, body, &dec)
		if dec.Ops != c.Prog.TotalOps() {
			t.Errorf("%s: decoded %d ops, want %d", sc, dec.Ops, c.Prog.TotalOps())
		}
		if want := groundTruthHash(t, c, im); dec.OpsHash != want {
			t.Errorf("%s: daemon decode hash %s != ground truth %s", sc, dec.OpsHash, want)
		}
	}
}

// TestGoldenCorpusDecodeIdentical is the service acceptance gate: for
// every benchmark × registered pairing, every scheme the pairing
// touches (cache side and ROM side) must decode through the daemon to
// exactly the bits the direct core.Driver path produces.
func TestGoldenCorpusDecodeIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus decode audit")
	}
	_, ts := newTestServer(t, Config{})
	direct := core.NewDriver(0) // independent driver: separate cache, separate builds
	for _, bench := range workload.Benchmarks {
		c, err := direct.CompileBenchmark(bench)
		if err != nil {
			t.Fatal(err)
		}
		schemes := map[string]bool{}
		for _, p := range scheme.Pairings() {
			schemes[p.CacheScheme] = true
			if p.ROMScheme != "" {
				schemes[p.ROMScheme] = true
			}
		}
		for sc := range schemes {
			im, err := c.Image(sc)
			if err != nil {
				t.Fatalf("direct image %s/%s: %v", bench, sc, err)
			}
			status, body := postJSON(t, ts.URL+"/v1/decode", DecodeRequest{Benchmark: bench, Scheme: sc})
			if status != http.StatusOK {
				t.Fatalf("decode %s/%s = %d: %s", bench, sc, status, body)
			}
			var dec DecodeResponse
			decodeInto(t, body, &dec)
			if want := groundTruthHash(t, c, im); dec.OpsHash != want {
				t.Errorf("%s/%s: daemon decode hash %s != direct path %s", bench, sc, dec.OpsHash, want)
			}
		}
	}
}

// TestLintEndpoint expects a clean verifier report for a healthy
// benchmark and a rejection for an unknown scheme in the list.
func TestLintEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/lint", LintRequest{Benchmark: "compress", Schemes: []string{"full", "base"}})
	if status != http.StatusOK {
		t.Fatalf("POST /v1/lint = %d: %s", status, body)
	}
	var rep LintResponse
	decodeInto(t, body, &rep)
	if rep.Errors != 0 {
		t.Errorf("lint found %d errors on a healthy benchmark: %s", rep.Errors, body)
	}
}

// TestSimulateEndpoint replays a short trace through a pairing and
// cross-checks the counters against a direct simulation.
func TestSimulateEndpoint(t *testing.T) {
	pairings := scheme.Pairings()
	if len(pairings) == 0 {
		t.Fatal("no registered pairings")
	}
	p := pairings[0]
	const blocks = 5000

	_, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Benchmark: "compress", Pairing: p.Name, Blocks: blocks})
	if status != http.StatusOK {
		t.Fatalf("POST /v1/simulate = %d: %s", status, body)
	}
	var got SimulateResponse
	decodeInto(t, body, &got)

	c, err := core.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	d := core.NewDriver(0)
	c = d.Bind(c)
	tr, err := c.Trace(blocks)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := c.SimFor(p, cache.DefaultConfig(p.Org))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.Ops != want.Ops || got.CacheMisses != want.CacheMisses ||
		got.BusBeats != want.BusBeats || got.BitFlips != want.BitFlips {
		t.Errorf("daemon simulation %+v diverges from direct run %+v", got, want)
	}
}

// TestSimulateStreamEndpoint runs the same bounded simulation twice —
// once materialized, once streamed through the window-sharded replay —
// and requires every counter to agree, with the streamed response
// declaring its mode and shard count.
func TestSimulateStreamEndpoint(t *testing.T) {
	pairings := scheme.Pairings()
	if len(pairings) == 0 {
		t.Fatal("no registered pairings")
	}
	p := pairings[0]
	const blocks = 5000

	_, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Benchmark: "compress", Pairing: p.Name, Blocks: blocks})
	if status != http.StatusOK {
		t.Fatalf("POST /v1/simulate = %d: %s", status, body)
	}
	var plain SimulateResponse
	decodeInto(t, body, &plain)

	status, body = postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Benchmark: "compress", Pairing: p.Name, Blocks: blocks, Stream: true, Shards: 2})
	if status != http.StatusOK {
		t.Fatalf("POST /v1/simulate (stream) = %d: %s", status, body)
	}
	var streamed SimulateResponse
	decodeInto(t, body, &streamed)

	if !streamed.Streamed {
		t.Error("streamed response does not declare streamed mode")
	}
	if streamed.Shards != 2 {
		t.Errorf("streamed response shards = %d, want 2", streamed.Shards)
	}
	// Normalize the mode markers, then the two responses must be
	// bit-identical in every counter.
	streamed.Streamed, streamed.Shards = false, 0
	if streamed != plain {
		t.Errorf("streamed simulation diverges from materialized run:\n  streamed %+v\n  plain    %+v",
			streamed, plain)
	}

	// An ops-bounded stream has no materialized twin, but must still
	// deliver at least the requested horizon.
	status, body = postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Benchmark: "compress", Pairing: p.Name, Stream: true, Ops: 20000})
	if status != http.StatusOK {
		t.Fatalf("POST /v1/simulate (ops) = %d: %s", status, body)
	}
	var byOps SimulateResponse
	decodeInto(t, body, &byOps)
	if byOps.Ops < 20000 {
		t.Errorf("ops-bounded stream delivered %d ops, want >= 20000", byOps.Ops)
	}
	if !byOps.Streamed {
		t.Error("ops-bounded response does not declare streamed mode")
	}
}

// TestSimulateSpeculativeEndpoint replays the same bounded stream
// through the serialized and the checkpointed speculative window
// schedulers and requires bit-identical counters, with the speculative
// response carrying the scheduler's window accounting and the server
// stats registry counting the hits/retries.
func TestSimulateSpeculativeEndpoint(t *testing.T) {
	pairings := scheme.Pairings()
	if len(pairings) == 0 {
		t.Fatal("no registered pairings")
	}
	p := pairings[0]
	const blocks = 5000

	srv, ts := newTestServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Benchmark: "compress", Pairing: p.Name, Blocks: blocks, Stream: true, Shards: 2})
	if status != http.StatusOK {
		t.Fatalf("POST /v1/simulate (stream) = %d: %s", status, body)
	}
	var serialized SimulateResponse
	decodeInto(t, body, &serialized)

	status, body = postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Benchmark: "compress", Pairing: p.Name, Blocks: blocks,
			Stream: true, Shards: 2, Speculative: true})
	if status != http.StatusOK {
		t.Fatalf("POST /v1/simulate (speculative) = %d: %s", status, body)
	}
	var spec SimulateResponse
	decodeInto(t, body, &spec)

	if !spec.Speculative {
		t.Error("speculative response does not declare speculative mode")
	}
	if spec.SpecWindows <= 0 {
		t.Errorf("speculative response windows = %d, want > 0", spec.SpecWindows)
	}
	if spec.SpecHits+spec.SpecRetries != spec.SpecWindows {
		t.Errorf("spec accounting hits %d + retries %d != windows %d",
			spec.SpecHits, spec.SpecRetries, spec.SpecWindows)
	}
	// Normalize the speculative markers, then the two responses must be
	// bit-identical in every counter.
	spec.Speculative = false
	spec.SpecWindows, spec.SpecHits, spec.SpecRetries, spec.SpecRetryRate = 0, 0, 0, 0
	if spec != serialized {
		t.Errorf("speculative simulation diverges from serialized run:\n  speculative %+v\n  serialized  %+v",
			spec, serialized)
	}

	snap := srv.Stats().Snapshot()
	if got := snap.Counters["serve.spec.windows"]; got <= 0 {
		t.Errorf("serve.spec.windows counter = %d, want > 0", got)
	}
	hits := snap.Counters["serve.spec.hits"]
	retries := snap.Counters["serve.spec.retries"]
	if hits+retries != snap.Counters["serve.spec.windows"] {
		t.Errorf("stats counters hits %d + retries %d != windows %d",
			hits, retries, snap.Counters["serve.spec.windows"])
	}
}

// TestRejections maps every malformed input class to its typed sentinel
// kind and HTTP status.
func TestRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBody: 256})
	cases := []struct {
		name   string
		path   string
		body   string
		status int
		kind   string
	}{
		{"malformed json", "/v1/compile", "{", http.StatusBadRequest, "malformed-request"},
		{"unknown field", "/v1/compile", `{"bogus": 1}`, http.StatusBadRequest, "malformed-request"},
		{"trailing data", "/v1/compile", `{"benchmark":"compress"} extra`, http.StatusBadRequest, "malformed-request"},
		{"wrong type", "/v1/encode", `{"benchmark": 7}`, http.StatusBadRequest, "malformed-request"},
		{"oversized body", "/v1/compile", `{"benchmark":"` + strings.Repeat("x", 300) + `"}`,
			http.StatusRequestEntityTooLarge, "body-too-large"},
		{"unknown benchmark", "/v1/compile", `{"benchmark":"doom"}`, http.StatusNotFound, "unknown-benchmark"},
		{"unknown scheme", "/v1/encode", `{"benchmark":"compress","scheme":"lzma"}`,
			http.StatusNotFound, "unknown-scheme"},
		{"unknown decode scheme", "/v1/decode", `{"benchmark":"compress","scheme":"lzma"}`,
			http.StatusNotFound, "unknown-scheme"},
		{"unknown lint scheme", "/v1/lint", `{"benchmark":"compress","schemes":["full","nope"]}`,
			http.StatusNotFound, "unknown-scheme"},
		{"unknown pairing", "/v1/simulate", `{"benchmark":"compress","pairing":"warp-drive"}`,
			http.StatusNotFound, "unknown-pairing"},
		{"negative blocks", "/v1/simulate", `{"benchmark":"compress","pairing":"` + scheme.Pairings()[0].Name + `","blocks":-1}`,
			http.StatusBadRequest, "malformed-request"},
		{"ops without stream", "/v1/simulate", `{"benchmark":"compress","pairing":"` + scheme.Pairings()[0].Name + `","ops":1000}`,
			http.StatusBadRequest, "malformed-request"},
		{"shards without stream", "/v1/simulate", `{"benchmark":"compress","pairing":"` + scheme.Pairings()[0].Name + `","shards":2}`,
			http.StatusBadRequest, "malformed-request"},
		{"ops over cap", "/v1/simulate", `{"benchmark":"compress","pairing":"` + scheme.Pairings()[0].Name + `","stream":true,"ops":9000000000}`,
			http.StatusBadRequest, "malformed-request"},
		{"blocks and ops", "/v1/simulate", `{"benchmark":"compress","pairing":"` + scheme.Pairings()[0].Name + `","stream":true,"blocks":10,"ops":10}`,
			http.StatusBadRequest, "malformed-request"},
		{"negative shards", "/v1/simulate", `{"benchmark":"compress","pairing":"` + scheme.Pairings()[0].Name + `","stream":true,"shards":-1}`,
			http.StatusBadRequest, "malformed-request"},
		{"speculative without stream", "/v1/simulate", `{"benchmark":"compress","pairing":"` + scheme.Pairings()[0].Name + `","speculative":true}`,
			http.StatusBadRequest, "malformed-request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postRaw(t, ts.URL+tc.path, []byte(tc.body))
			if status != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", status, tc.status, body)
			}
			var eb errorBody
			decodeInto(t, body, &eb)
			if eb.Kind != tc.kind {
				t.Errorf("kind = %q, want %q (error %q)", eb.Kind, tc.kind, eb.Error)
			}
			if eb.Error == "" {
				t.Error("empty error message")
			}
		})
	}

	t.Run("wrong method", func(t *testing.T) {
		status, body := getJSON(t, ts.URL+"/v1/compile")
		if status != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/compile = %d, want 405 (%s)", status, body)
		}
		var eb errorBody
		decodeInto(t, body, &eb)
		if eb.Kind != "method-not-allowed" {
			t.Errorf("kind = %q, want method-not-allowed", eb.Kind)
		}
	})
}

// TestStatsEndpoint checks the observability surface after real
// traffic: request counters, per-endpoint timers, cache traffic and the
// hit/miss identity.
func TestStatsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		if status, body := postJSON(t, ts.URL+"/v1/encode", EncodeRequest{Benchmark: "compress", Scheme: "full"}); status != http.StatusOK {
			t.Fatalf("encode = %d: %s", status, body)
		}
	}
	status, body := getJSON(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d: %s", status, body)
	}
	var st StatsResponse
	decodeInto(t, body, &st)
	if st.Workers <= 0 {
		t.Errorf("workers = %d, want > 0", st.Workers)
	}
	if st.Cache.Hits+st.Cache.Misses == 0 {
		t.Error("no artifact traffic recorded")
	}
	if st.Cache.Hits == 0 {
		t.Error("repeated encode requests produced no cache hits")
	}
	if st.Cache.HitRate < 0 || st.Cache.HitRate > 1 {
		t.Errorf("hit rate %f outside [0,1]", st.Cache.HitRate)
	}
	if st.Cache.Entries == 0 {
		t.Error("no resident cache entries after builds")
	}
	if got := st.Server.Counters["serve.requests"]; got < 4 {
		t.Errorf("serve.requests = %d, want >= 4", got)
	}
	if ts, ok := st.Server.Stages["serve.encode"]; !ok || ts.Count != 3 {
		t.Errorf("serve.encode timer = %+v, want count 3", ts)
	}
	if srv.Stats().Counter("serve.errors").Value() != 0 {
		t.Error("error counter moved on clean traffic")
	}
}

// TestConcurrentRequests hammers one bounded-store server from many
// goroutines: every response OK, no server-side errors, and the
// single-flight cache keeps the error counter and response payloads
// consistent under eviction pressure.
func TestConcurrentRequests(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Driver: core.NewDriverWithCache(0, 4, 16),
	})
	const goroutines = 16
	const perG = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var path string
				var body any
				if (g+i)%2 == 0 {
					path, body = "/v1/encode", EncodeRequest{Benchmark: "compress", Scheme: "full"}
				} else {
					path, body = "/v1/decode", DecodeRequest{Benchmark: "compress", Scheme: "byte"}
				}
				data, err := json.Marshal(body)
				if err != nil {
					errs[g] = err
					return
				}
				resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
				if err != nil {
					errs[g] = err
					return
				}
				out, err := io.ReadAll(resp.Body)
				if cerr := resp.Body.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					errs[g] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[g] = fmt.Errorf("%s = %d: %s", path, resp.StatusCode, out)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if got := srv.Stats().Counter("serve.errors").Value(); got != 0 {
		t.Errorf("serve.errors = %d, want 0", got)
	}
	if got := srv.Stats().Counter("serve.requests").Value(); got != goroutines*perG {
		t.Errorf("serve.requests = %d, want %d", got, goroutines*perG)
	}
}
