package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/isa"
)

// DecodeSummary is the digest of one full image decode: operation
// count, Huffman symbols consumed by the fast decoder (0 for schemes
// without a symbol stream), and the content hash over every decoded
// operation word in image placement order. Two decode paths are
// bit-identical exactly when their OpsHash values match.
type DecodeSummary struct {
	Ops     int
	Symbols int64
	OpsHash string
}

// DecodeImage decodes every block of the image through the encoder and
// digests the result. For schemes exposing a Huffman symbol stream the
// whole image's symbol streams are scanned first — the same
// entropy-decode shape a hardware-model fetch would take — before the
// operations are materialized for hashing. It is DecodeImagePlanned
// without a plan: the scan runs per-symbol through scanBlocks.
func DecodeImage(im *image.Image, enc compress.Encoder) (DecodeSummary, error) {
	return DecodeImagePlanned(im, enc, nil)
}

// DecodeImagePlanned is DecodeImage with a prebuilt batch-decode plan.
// A non-nil plan routes the symbol scan through the lane-parallel
// kernel's batch face — decode tables and block geometry come prebuilt
// from the artifact cache, so the request does no table work. A nil
// plan (schemes without a batch face, or callers without a driver)
// falls back to the per-symbol scanBlocks loop. Either path consumes
// the identical symbol streams and reports identical counts.
func DecodeImagePlanned(im *image.Image, enc compress.Encoder, plan *core.DecodePlan) (DecodeSummary, error) {
	var sum DecodeSummary
	r := bitio.NewReader(im.Data)
	if plan != nil {
		syms, _, err := plan.DecodeSymbols(im.Data)
		if err != nil {
			return sum, fmt.Errorf("batch symbol scan %s/%s: %w", im.Name, im.Scheme, err)
		}
		sum.Symbols = syms
	} else if sd, ok := enc.(compress.SymbolDecoder); ok {
		syms, err := scanBlocks(sd, r, im.Blocks)
		if err != nil {
			return sum, fmt.Errorf("symbol scan %s/%s: %w", im.Name, im.Scheme, err)
		}
		sum.Symbols = syms
	}
	h := sha256.New()
	var buf [8]byte
	for i := range im.Blocks {
		if err := r.SeekBit(im.Blocks[i].Addr * 8); err != nil {
			return sum, fmt.Errorf("seek block %d: %w", i, err)
		}
		ops, err := enc.DecodeBlock(r, im.Blocks[i].Ops)
		if err != nil {
			return sum, fmt.Errorf("decode block %d of %s/%s: %w", i, im.Name, im.Scheme, err)
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(len(ops)))
		h.Write(buf[:]) //tepic:ignore-err hash.Hash.Write never fails
		for j := range ops {
			binary.LittleEndian.PutUint64(buf[:], ops[j].Encode())
			h.Write(buf[:]) //tepic:ignore-err hash.Hash.Write never fails
		}
		sum.Ops += len(ops)
	}
	sum.OpsHash = hex.EncodeToString(h.Sum(nil))
	return sum, nil
}

// HashOps digests a program's operations block by block with the exact
// construction DecodeImage uses, so a direct (in-process) artifact path
// can be compared bit-for-bit against a daemon-served decode. blocks
// supplies each block's operations in image placement order.
func HashOps(blocks [][]isa.Op) string {
	h := sha256.New()
	var buf [8]byte
	for _, ops := range blocks {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(ops)))
		h.Write(buf[:]) //tepic:ignore-err hash.Hash.Write never fails
		for j := range ops {
			binary.LittleEndian.PutUint64(buf[:], ops[j].Encode())
			h.Write(buf[:]) //tepic:ignore-err hash.Hash.Write never fails
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// scanBlocks drives the scheme's table-driven fast decoder over every
// block's symbol stream through a caller-owned reader. This is the
// service decode hot loop: it must stay allocation-free (the static
// half is the hotalloc analyzer; the dynamic half is
// TestScanBlocksZeroAlloc).
//
//tepic:hotpath
func scanBlocks(sd compress.SymbolDecoder, r *bitio.Reader, blocks []image.Block) (int64, error) {
	syms := int64(0)
	for i := range blocks {
		if err := r.SeekBit(blocks[i].Addr * 8); err != nil {
			return syms, err
		}
		n, err := sd.DecodeBlockSymbols(r, blocks[i].Ops)
		syms += int64(n)
		if err != nil {
			return syms, err
		}
	}
	return syms, nil
}
