// Package serve exposes the whole pipeline — compile, encode, lint,
// simulate, decode — as a long-running HTTP/JSON service on top of the
// concurrent compilation driver. Every handler resolves its artifacts
// through the driver's sharded, bounded, LRU-evicting content-addressed
// store, so concurrent requests for one program share a single build
// (the access-pattern-skew insight: a few hot programs dominate service
// traffic, and their artifacts stay resident while the cold tail is
// evicted and rebuilt on demand).
//
// The API surface:
//
//	POST /v1/compile   {"benchmark": "gcc"}
//	POST /v1/encode    {"benchmark": "gcc", "scheme": "full"}
//	POST /v1/decode    {"benchmark": "gcc", "scheme": "full"}
//	POST /v1/lint      {"benchmark": "gcc", "schemes": ["full"]}
//	POST /v1/simulate  {"benchmark": "gcc", "pairing": "full/compressed", "blocks": 50000}
//	GET  /v1/stats
//	GET  /healthz
//
// Request rejections carry a machine-readable error body
// {"error": ..., "kind": ...} whose kind names the wrapped sentinel
// (errors.go) and whose HTTP status follows from it: 400 malformed,
// 413 oversized, 404 unknown name, 405 wrong method.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/scheme"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/workload"
)

// DefaultMaxBody is the request-body byte bound when Config leaves it 0.
const DefaultMaxBody = 1 << 20

// MaxTraceBlocks bounds the trace length a /v1/simulate request may ask
// for, so one request cannot pin the service on a billion-op walk.
const MaxTraceBlocks = 2_000_000

// MaxTraceOps bounds the dynamic-operation horizon of a streamed
// /v1/simulate request. Streaming replays hold only a chunk working
// set, so the cap can sit far above MaxTraceBlocks' event horizon —
// it bounds service time, not memory.
const MaxTraceOps = 2_000_000_000

// MaxSimShards bounds the worker count a streamed /v1/simulate request
// may ask the window-sharded simulator for.
const MaxSimShards = 64

// Config parameterizes a Server.
type Config struct {
	// Driver runs the builds; nil creates a GOMAXPROCS-wide driver with
	// an unbounded store.
	Driver *core.Driver
	// MaxBody bounds request bodies in bytes; 0 selects DefaultMaxBody.
	MaxBody int64
}

// Server is the compression-as-a-service front end: stateless handlers
// over a shared driver. Safe for concurrent use; one Server serves any
// number of connections.
type Server struct {
	drv     *core.Driver
	obs     *stats.Registry
	maxBody int64
	start   time.Time
	mux     *http.ServeMux
}

// New builds a Server and wires its routes.
func New(cfg Config) *Server {
	drv := cfg.Driver
	if drv == nil {
		drv = core.NewDriver(0)
	}
	maxBody := cfg.MaxBody
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	s := &Server{
		drv:     drv,
		obs:     stats.NewRegistry(),
		maxBody: maxBody,
		start:   time.Now(),
		mux:     http.NewServeMux(),
	}
	s.mux.Handle("/v1/compile", s.route("compile", http.MethodPost, s.handleCompile))
	s.mux.Handle("/v1/encode", s.route("encode", http.MethodPost, s.handleEncode))
	s.mux.Handle("/v1/decode", s.route("decode", http.MethodPost, s.handleDecode))
	s.mux.Handle("/v1/lint", s.route("lint", http.MethodPost, s.handleLint))
	s.mux.Handle("/v1/simulate", s.route("simulate", http.MethodPost, s.handleSimulate))
	s.mux.Handle("/v1/stats", s.route("stats", http.MethodGet, s.handleStats))
	s.mux.Handle("/healthz", s.route("healthz", http.MethodGet, s.handleHealthz))
	return s
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Driver returns the server's compilation driver.
func (s *Server) Driver() *core.Driver { return s.drv }

// Stats returns the server-side observability registry: per-endpoint
// latency timers ("serve.compile", ...) and the request/error/
// write-error counters.
func (s *Server) Stats() *stats.Registry { return s.obs }

// errorBody is the JSON shape of every rejected request.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// statusFor maps a handler error to its HTTP status through the
// sentinel taxonomy.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBodyTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrMalformedRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownBenchmark),
		errors.Is(err, ErrUnknownScheme),
		errors.Is(err, ErrUnknownPairing):
		return http.StatusNotFound
	case errors.Is(err, ErrMethod):
		return http.StatusMethodNotAllowed
	}
	return http.StatusInternalServerError
}

// route wraps one endpoint: method gate, per-endpoint latency timer,
// request/error counters, and uniform JSON rendering of results and
// sentinel-mapped errors. The handler bodies run on net/http's
// per-connection goroutines; all fan-out beneath them goes through the
// driver's bounded worker pool.
//
//tepic:pool
func (s *Server) route(name, method string, fn func(r *http.Request) (any, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.obs.Counter("serve.requests").Add(1)
		var v any
		var err error
		terr := s.obs.Timer("serve." + name).Time(func() error {
			if r.Method != method {
				w.Header().Set("Allow", method)
				return fmt.Errorf("%w: %s needs %s, got %s", ErrMethod, r.URL.Path, method, r.Method)
			}
			v, err = fn(r)
			return err
		})
		if terr != nil {
			s.obs.Counter("serve.errors").Add(1)
			s.writeJSON(w, statusFor(terr), errorBody{Error: terr.Error(), Kind: kindOf(terr)})
			return
		}
		s.writeJSON(w, http.StatusOK, v)
	})
}

// writeJSON renders one response. A failed write (client gone) is
// counted rather than propagated: the connection is already beyond
// repair and net/http discards handler errors anyway.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.obs.Counter("serve.write_errors").Add(1)
	}
}

// decodeRequest reads and strictly decodes one JSON request body:
// bounded size, unknown fields rejected, trailing data rejected. Every
// failure wraps ErrBodyTooLarge or ErrMalformedRequest.
func decodeRequest(body io.Reader, limit int64, dst any) error {
	data, err := io.ReadAll(io.LimitReader(body, limit+1))
	if err != nil {
		return fmt.Errorf("%w: reading body: %v", ErrMalformedRequest, err)
	}
	if int64(len(data)) > limit {
		return fmt.Errorf("%w: body exceeds %d bytes", ErrBodyTooLarge, limit)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformedRequest, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON value", ErrMalformedRequest)
	}
	return nil
}

// validator is one request type's semantic check, run after JSON
// decoding; the fuzz harness drives every implementation.
type validator interface{ validate() error }

// parseRequest decodes and validates one request body.
func parseRequest(body io.Reader, limit int64, dst validator) error {
	if err := decodeRequest(body, limit, dst); err != nil {
		return err
	}
	return dst.validate()
}

func checkBenchmark(name string) error {
	if _, ok := workload.ProfileFor(name); !ok {
		return fmt.Errorf("%w: %q", ErrUnknownBenchmark, name)
	}
	return nil
}

func checkScheme(name string) error {
	if _, ok := scheme.Lookup(name); !ok {
		return fmt.Errorf("%w: %q", ErrUnknownScheme, name)
	}
	return nil
}

// ---------------------------------------------------------------------
// /v1/compile

// CompileRequest asks for one benchmark compilation.
type CompileRequest struct {
	Benchmark string `json:"benchmark"`
}

func (r *CompileRequest) validate() error { return checkBenchmark(r.Benchmark) }

// CompileResponse summarizes the scheduled program.
type CompileResponse struct {
	Benchmark  string `json:"benchmark"`
	ContentKey string `json:"content_key"`
	Blocks     int    `json:"blocks"`
	Ops        int    `json:"ops"`
	MOPs       int    `json:"mops"`
	Functions  int    `json:"functions"`
}

//tepic:pool
func (s *Server) handleCompile(r *http.Request) (any, error) {
	var req CompileRequest
	if err := parseRequest(r.Body, s.maxBody, &req); err != nil {
		return nil, err
	}
	c, err := s.drv.CompileBenchmark(req.Benchmark)
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", req.Benchmark, err)
	}
	return CompileResponse{
		Benchmark:  req.Benchmark,
		ContentKey: c.ContentKey(),
		Blocks:     len(c.Prog.Blocks),
		Ops:        c.Prog.TotalOps(),
		MOPs:       c.Prog.TotalMOPs(),
		Functions:  len(c.Prog.FuncEntries),
	}, nil
}

// ---------------------------------------------------------------------
// /v1/encode

// EncodeRequest asks for one (benchmark, scheme) image build.
type EncodeRequest struct {
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`
}

func (r *EncodeRequest) validate() error {
	if err := checkBenchmark(r.Benchmark); err != nil {
		return err
	}
	return checkScheme(r.Scheme)
}

// EncodeResponse summarizes the built image.
type EncodeResponse struct {
	Benchmark  string  `json:"benchmark"`
	Scheme     string  `json:"scheme"`
	ContentKey string  `json:"content_key"`
	Blocks     int     `json:"blocks"`
	CodeBytes  int     `json:"code_bytes"`
	ATTBytes   int     `json:"att_bytes"`
	TotalBytes int     `json:"total_bytes"`
	Ratio      float64 `json:"ratio"` // scheme code bytes / base code bytes
}

//tepic:pool
func (s *Server) handleEncode(r *http.Request) (any, error) {
	var req EncodeRequest
	if err := parseRequest(r.Body, s.maxBody, &req); err != nil {
		return nil, err
	}
	c, err := s.drv.CompileBenchmark(req.Benchmark)
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", req.Benchmark, err)
	}
	im, err := c.Image(req.Scheme)
	if err != nil {
		return nil, fmt.Errorf("encode %s/%s: %w", req.Benchmark, req.Scheme, err)
	}
	base, err := c.Image(scheme.BaseName)
	if err != nil {
		return nil, fmt.Errorf("encode %s/base: %w", req.Benchmark, err)
	}
	attBytes := 0
	if im.ATT != nil {
		attBytes = im.ATT.CompressedBytes
	}
	return EncodeResponse{
		Benchmark:  req.Benchmark,
		Scheme:     req.Scheme,
		ContentKey: c.ContentKey(),
		Blocks:     len(im.Blocks),
		CodeBytes:  im.CodeBytes,
		ATTBytes:   attBytes,
		TotalBytes: im.TotalBytes(),
		Ratio:      im.Ratio(base),
	}, nil
}

// ---------------------------------------------------------------------
// /v1/decode

// DecodeRequest asks for a full decode of one (benchmark, scheme)
// image back to operations.
type DecodeRequest struct {
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`
}

func (r *DecodeRequest) validate() error {
	if err := checkBenchmark(r.Benchmark); err != nil {
		return err
	}
	return checkScheme(r.Scheme)
}

// DecodeResponse carries the decode digest: the operation count and the
// content hash of every decoded operation word in image placement
// order. Two decoders agree bit-for-bit exactly when their OpsHash
// values match — this is what the service round-trip tests and the
// tepicbench -serve -check audit compare against the direct driver
// path.
type DecodeResponse struct {
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`
	Ops       int    `json:"ops"`
	Symbols   int64  `json:"symbols"` // Huffman symbols consumed; 0 for table-free schemes
	OpsHash   string `json:"ops_hash"`
}

//tepic:pool
func (s *Server) handleDecode(r *http.Request) (any, error) {
	var req DecodeRequest
	if err := parseRequest(r.Body, s.maxBody, &req); err != nil {
		return nil, err
	}
	c, err := s.drv.CompileBenchmark(req.Benchmark)
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", req.Benchmark, err)
	}
	enc, err := c.Encoder(req.Scheme)
	if err != nil {
		return nil, fmt.Errorf("encoder %s/%s: %w", req.Benchmark, req.Scheme, err)
	}
	im, err := c.Image(req.Scheme)
	if err != nil {
		return nil, fmt.Errorf("encode %s/%s: %w", req.Benchmark, req.Scheme, err)
	}
	// The symbol scan rides the batch kernel: the plan (decode tables +
	// block geometry) is memoized in the artifact store, so repeated
	// decode requests for one image rebuild nothing.
	plan, err := c.DecodePlan(req.Scheme)
	if err != nil {
		return nil, fmt.Errorf("decode plan %s/%s: %w", req.Benchmark, req.Scheme, err)
	}
	sum, err := DecodeImagePlanned(im, enc, plan)
	if err != nil {
		return nil, fmt.Errorf("decode %s/%s: %w", req.Benchmark, req.Scheme, err)
	}
	return DecodeResponse{
		Benchmark: req.Benchmark,
		Scheme:    req.Scheme,
		Ops:       sum.Ops,
		Symbols:   sum.Symbols,
		OpsHash:   sum.OpsHash,
	}, nil
}

// ---------------------------------------------------------------------
// /v1/lint

// LintRequest asks for the static verifier over one benchmark's
// encoding artifacts; an empty scheme list verifies every scheme.
type LintRequest struct {
	Benchmark string   `json:"benchmark"`
	Schemes   []string `json:"schemes,omitempty"`
}

func (r *LintRequest) validate() error {
	if err := checkBenchmark(r.Benchmark); err != nil {
		return err
	}
	for _, sc := range r.Schemes {
		if err := checkScheme(sc); err != nil {
			return err
		}
	}
	return nil
}

// LintResponse carries the verifier's report.
type LintResponse struct {
	Benchmark string        `json:"benchmark"`
	Errors    int           `json:"errors"`
	Warnings  int           `json:"warnings"`
	Diags     []verify.Diag `json:"diagnostics"`
}

//tepic:pool
func (s *Server) handleLint(r *http.Request) (any, error) {
	var req LintRequest
	if err := parseRequest(r.Body, s.maxBody, &req); err != nil {
		return nil, err
	}
	c, err := s.drv.CompileBenchmark(req.Benchmark)
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", req.Benchmark, err)
	}
	rep, err := c.Lint(req.Schemes)
	if err != nil {
		return nil, fmt.Errorf("lint %s: %w", req.Benchmark, err)
	}
	rep.Sort()
	return LintResponse{
		Benchmark: req.Benchmark,
		Errors:    rep.Errors(),
		Warnings:  rep.Warnings(),
		Diags:     rep.Diags,
	}, nil
}

// ---------------------------------------------------------------------
// /v1/simulate

// SimulateRequest asks for one trace-driven IFetch simulation at the
// pairing's default geometry. Blocks bounds the trace length (0 selects
// the benchmark profile's default, capped at MaxTraceBlocks). Stream
// selects the long-horizon mode: the trace is produced as a bounded
// chunk stream (never materialized) and replayed through the
// window-sharded simulator, with Ops optionally bounding the walk by
// dynamic operation count (capped at MaxTraceOps) instead of Blocks,
// and Shards setting the worker count (0 selects the server's CPU
// count). The streamed result is bit-identical to the non-streamed one
// for the same Blocks bound. Speculative (stream mode only) replays the
// windows through the checkpointed speculative scheduler instead of the
// token-serialized one — still bit-identical, with the scheduler's
// window/hit/retry accounting reported back and counted in /v1/stats
// (spec.hit, spec.retry).
type SimulateRequest struct {
	Benchmark   string `json:"benchmark"`
	Pairing     string `json:"pairing"`
	Blocks      int    `json:"blocks,omitempty"`
	Stream      bool   `json:"stream,omitempty"`
	Ops         int64  `json:"ops,omitempty"`
	Shards      int    `json:"shards,omitempty"`
	Speculative bool   `json:"speculative,omitempty"`
}

func (r *SimulateRequest) validate() error {
	if err := checkBenchmark(r.Benchmark); err != nil {
		return err
	}
	if _, ok := scheme.PairingByName(r.Pairing); !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPairing, r.Pairing)
	}
	if r.Blocks < 0 || r.Blocks > MaxTraceBlocks {
		return fmt.Errorf("%w: blocks %d outside [0, %d]", ErrMalformedRequest, r.Blocks, MaxTraceBlocks)
	}
	if r.Ops != 0 && !r.Stream {
		return fmt.Errorf("%w: ops bound requires stream mode", ErrMalformedRequest)
	}
	if r.Ops < 0 || r.Ops > MaxTraceOps {
		return fmt.Errorf("%w: ops %d outside [0, %d]", ErrMalformedRequest, r.Ops, MaxTraceOps)
	}
	if r.Ops != 0 && r.Blocks != 0 {
		return fmt.Errorf("%w: blocks and ops bounds are mutually exclusive", ErrMalformedRequest)
	}
	if r.Shards != 0 && !r.Stream {
		return fmt.Errorf("%w: shards require stream mode", ErrMalformedRequest)
	}
	if r.Shards < 0 || r.Shards > MaxSimShards {
		return fmt.Errorf("%w: shards %d outside [0, %d]", ErrMalformedRequest, r.Shards, MaxSimShards)
	}
	if r.Speculative && !r.Stream {
		return fmt.Errorf("%w: speculative replay requires stream mode", ErrMalformedRequest)
	}
	return nil
}

// SimulateResponse carries the simulation's counters.
type SimulateResponse struct {
	Benchmark    string  `json:"benchmark"`
	Pairing      string  `json:"pairing"`
	TraceBlocks  int     `json:"trace_blocks"`
	Cycles       int64   `json:"cycles"`
	Ops          int64   `json:"ops"`
	MOPs         int64   `json:"mops"`
	IPC          float64 `json:"ipc"`
	BlockFetches int64   `json:"block_fetches"`
	CacheLookups int64   `json:"cache_lookups"`
	CacheMisses  int64   `json:"cache_misses"`
	LinesFetched int64   `json:"lines_fetched"`
	BufferHits   int64   `json:"buffer_hits"`
	Mispredicts  int64   `json:"mispredicts"`
	BusBeats     int64   `json:"bus_beats"`
	BitFlips     int64   `json:"bit_flips"`
	BytesFetched int64   `json:"bytes_fetched"`
	ATBHitRate   float64 `json:"atb_hit_rate"`
	Streamed     bool    `json:"streamed,omitempty"`
	Shards       int     `json:"shards,omitempty"`
	// Speculative replay accounting (stream mode with Speculative only).
	Speculative   bool    `json:"speculative,omitempty"`
	SpecWindows   int64   `json:"spec_windows,omitempty"`
	SpecHits      int64   `json:"spec_hits,omitempty"`
	SpecRetries   int64   `json:"spec_retries,omitempty"`
	SpecRetryRate float64 `json:"spec_retry_rate,omitempty"`
}

//tepic:pool
func (s *Server) handleSimulate(r *http.Request) (any, error) {
	var req SimulateRequest
	if err := parseRequest(r.Body, s.maxBody, &req); err != nil {
		return nil, err
	}
	p, _ := scheme.PairingByName(req.Pairing)
	c, err := s.drv.CompileBenchmark(req.Benchmark)
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", req.Benchmark, err)
	}
	sim, err := c.SimFor(p, cache.DefaultConfig(p.Org))
	if err != nil {
		return nil, fmt.Errorf("simulate %s/%s: %w", req.Benchmark, req.Pairing, err)
	}

	var res cache.Result
	var spec cache.SpecStats
	traceBlocks := 0
	shards := 0
	if req.Stream {
		// Long-horizon mode: the trace streams out of the walker in
		// bounded chunks and replays through the window-sharded
		// simulator; nothing is materialized or cached.
		var st trace.Stream
		if req.Ops > 0 {
			st, err = c.StreamTraceOps(req.Ops, 0)
		} else {
			st, err = c.StreamTrace(req.Blocks, 0)
		}
		if err != nil {
			return nil, fmt.Errorf("trace %s: %w", req.Benchmark, err)
		}
		shards = req.Shards
		if shards <= 0 {
			shards = runtime.GOMAXPROCS(0)
		}
		if req.Speculative {
			res, spec, err = cache.RunShardedSpec(sim, st, shards)
			s.obs.Counter("serve.spec.windows").Add(spec.Windows)
			s.obs.Counter("serve.spec.hits").Add(spec.Hits)
			s.obs.Counter("serve.spec.retries").Add(spec.Retries)
		} else {
			res, err = cache.RunSharded(sim, st, shards)
		}
		if err != nil {
			return nil, fmt.Errorf("simulate %s/%s: %w", req.Benchmark, req.Pairing, err)
		}
		traceBlocks = int(res.BlockFetches)
	} else {
		tr, err := c.Trace(req.Blocks)
		if err != nil {
			return nil, fmt.Errorf("trace %s: %w", req.Benchmark, err)
		}
		if res, err = sim.Run(tr); err != nil {
			return nil, fmt.Errorf("simulate %s/%s: %w", req.Benchmark, req.Pairing, err)
		}
		traceBlocks = len(tr.Events)
	}
	return SimulateResponse{
		Benchmark:    req.Benchmark,
		Pairing:      req.Pairing,
		TraceBlocks:  traceBlocks,
		Cycles:       res.Cycles,
		Ops:          res.Ops,
		MOPs:         res.MOPs,
		IPC:          res.IPC(),
		BlockFetches: res.BlockFetches,
		CacheLookups: res.CacheLookups,
		CacheMisses:  res.CacheMisses,
		LinesFetched: res.LinesFetched,
		BufferHits:   res.BufferHits,
		Mispredicts:  res.Mispredicts,
		BusBeats:     res.BusBeats,
		BitFlips:     res.BitFlips,
		BytesFetched: res.BytesFetched,
		ATBHitRate:   res.ATBHitRate,
		Streamed:     req.Stream,
		Shards:       shards,

		Speculative:   req.Speculative,
		SpecWindows:   spec.Windows,
		SpecHits:      spec.Hits,
		SpecRetries:   spec.Retries,
		SpecRetryRate: spec.RetryRate(),
	}, nil
}

// ---------------------------------------------------------------------
// /v1/stats and /healthz

// CacheStats is the artifact store's traffic summary.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

// StatsResponse is the service observability snapshot: the driver's
// stage timers and cache traffic plus the server's per-endpoint
// latency timers and request counters.
type StatsResponse struct {
	UptimeMS float64        `json:"uptime_ms"`
	Workers  int            `json:"workers"`
	Cache    CacheStats     `json:"cache"`
	Driver   stats.Snapshot `json:"driver"`
	Server   stats.Snapshot `json:"server"`
}

//tepic:pool
func (s *Server) handleStats(*http.Request) (any, error) {
	snap := s.drv.Stats().Snapshot()
	return StatsResponse{
		UptimeMS: float64(time.Since(s.start)) / float64(time.Millisecond),
		Workers:  s.drv.Workers(),
		Cache: CacheStats{
			Hits:      snap.Counters["artifact.hit"],
			Misses:    snap.Counters["artifact.miss"],
			Evictions: snap.Counters["artifact.eviction"],
			Entries:   s.drv.CacheEntries(),
			HitRate:   s.drv.CacheHitRate(),
		},
		Driver: snap,
		Server: s.obs.Snapshot(),
	}, nil
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status string `json:"status"`
}

//tepic:pool
func (s *Server) handleHealthz(*http.Request) (any, error) {
	return HealthResponse{Status: "ok"}, nil
}
