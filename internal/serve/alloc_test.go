package serve

import (
	"testing"

	"repro/internal/bitio"
	"repro/internal/compress"
	"repro/internal/core"
)

// TestScanBlocksZeroAlloc is the dynamic half of the //tepic:hotpath
// contract on scanBlocks, the service decode hot loop: zero allocations
// per whole-image symbol scan on a real benchmark image under the full
// whole-op scheme. The static half is the hotalloc analyzer over the
// annotated body.
func TestScanBlocksZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	c, err := core.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.Encoder("full")
	if err != nil {
		t.Fatal(err)
	}
	im, err := c.Image("full")
	if err != nil {
		t.Fatal(err)
	}
	sd, ok := enc.(compress.SymbolDecoder)
	if !ok {
		t.Fatal("full encoder does not expose a symbol decoder")
	}
	r := bitio.NewReader(im.Data)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := scanBlocks(sd, r, im.Blocks); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("scanBlocks: %.1f allocs per image scan, want 0", allocs)
	}
}

// TestBatchScanZeroAlloc is the same contract on the batch path the
// /v1/decode handler now takes: once the decode plan is resident, a
// whole-image symbol scan through the lane kernel allocates nothing.
func TestBatchScanZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	c, err := core.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	im, err := c.Image("full")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.DecodePlan("full")
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("full scheme has no decode plan")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := plan.DecodeSymbols(im.Data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("batch scan: %.1f allocs per image scan, want 0", allocs)
	}
}
