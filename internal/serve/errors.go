package serve

import "errors"

// The service error taxonomy. Every error a /v1 handler produces wraps
// exactly one of these sentinels (enforced by tepicvet's typederr
// analyzer and the FuzzServeRequest harness), and each sentinel maps to
// one HTTP status code (statusFor), so clients can dispatch on either
// the status or the machine-readable "kind" field of the error body.
var (
	// ErrMalformedRequest marks a request body that is not the
	// endpoint's JSON shape: syntax errors, unknown fields, trailing
	// data, or field values outside the accepted range. HTTP 400.
	ErrMalformedRequest = errors.New("serve: malformed request")
	// ErrBodyTooLarge marks a request body over the server's byte
	// bound. HTTP 413.
	ErrBodyTooLarge = errors.New("serve: request body too large")
	// ErrUnknownBenchmark marks a benchmark name absent from the
	// workload profile registry. HTTP 404.
	ErrUnknownBenchmark = errors.New("serve: unknown benchmark")
	// ErrUnknownScheme marks an encoding scheme name absent from the
	// scheme registry. HTTP 404.
	ErrUnknownScheme = errors.New("serve: unknown scheme")
	// ErrUnknownPairing marks a (scheme, organization) pairing label
	// absent from the pairing registry. HTTP 404.
	ErrUnknownPairing = errors.New("serve: unknown pairing")
	// ErrMethod marks a request with the wrong HTTP method for its
	// endpoint. HTTP 405.
	ErrMethod = errors.New("serve: method not allowed")
)

// kindOf names the sentinel an error wraps, for the error body's "kind"
// field; unclassified errors (artifact build failures) report "internal".
func kindOf(err error) string {
	switch {
	case errors.Is(err, ErrMalformedRequest):
		return "malformed-request"
	case errors.Is(err, ErrBodyTooLarge):
		return "body-too-large"
	case errors.Is(err, ErrUnknownBenchmark):
		return "unknown-benchmark"
	case errors.Is(err, ErrUnknownScheme):
		return "unknown-scheme"
	case errors.Is(err, ErrUnknownPairing):
		return "unknown-pairing"
	case errors.Is(err, ErrMethod):
		return "method-not-allowed"
	}
	return "internal"
}
