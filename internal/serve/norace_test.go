//go:build !race

package serve

// raceEnabled reports that the race detector is instrumenting this
// build (it is not; see race_test.go).
const raceEnabled = false
