package isa

import (
	"fmt"
	"strings"
)

// String renders the operation in TINKER-style assembly, e.g.
//
//	add   r3, r7 -> r12 if p0 [t]
//
// The "[t]" suffix marks a tail bit (end of MOP).
func (o *Op) String() string {
	info, ok := Lookup(o.Type, o.Code)
	name := "???"
	if ok {
		name = info.Name
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", name)
	switch o.Format() {
	case FmtIntALU:
		fmt.Fprintf(&b, "r%d, r%d -> r%d", o.Src1, o.Src2, o.Dest)
	case FmtIntCmpp:
		fmt.Fprintf(&b, "r%d, r%d -> p%d", o.Src1, o.Src2, o.Dest)
	case FmtLoadImm:
		fmt.Fprintf(&b, "#%d -> r%d", o.Imm, o.Dest)
	case FmtFloat:
		fmt.Fprintf(&b, "f%d, f%d -> f%d", o.Src1, o.Src2, o.Dest)
	case FmtLoad:
		reg := "r"
		if o.Code == OpFLD {
			reg = "f"
		}
		fmt.Fprintf(&b, "[r%d] -> %s%d (lat %d)", o.Src1, reg, o.Dest, o.Lat)
	case FmtStore:
		reg := "r"
		if o.Code == OpFST {
			reg = "f"
		}
		fmt.Fprintf(&b, "%s%d -> [r%d]", reg, o.Src2, o.Src1)
	case FmtBranch:
		fmt.Fprintf(&b, "r%d, c%d", o.Src1, o.Counter)
	}
	if o.Pred != PredAlways {
		fmt.Fprintf(&b, " if p%d", o.Pred)
	}
	if o.Spec {
		b.WriteString(" <spec>")
	}
	if o.Tail {
		b.WriteString(" [t]")
	}
	return b.String()
}

// DisasmMOP renders a MOP as a bracketed group of operations, one per line.
func DisasmMOP(m MOP) string {
	var b strings.Builder
	b.WriteString("{\n")
	for i := range m {
		fmt.Fprintf(&b, "  %s\n", m[i].String())
	}
	b.WriteString("}")
	return b.String()
}
