package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		o := RandomOp(r)
		if err := o.Validate(); err != nil {
			t.Fatalf("RandomOp produced invalid op: %v", err)
		}
		w := o.Encode()
		if w >= 1<<OpBits {
			t.Fatalf("encoding exceeds 40 bits: %x", w)
		}
		back, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%x): %v", w, err)
		}
		if back != o {
			t.Fatalf("roundtrip mismatch:\n  in  %+v\n  out %+v", o, back)
		}
	}
}

func TestEncodeBytesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		o := RandomOp(r)
		b := o.EncodeBytes()
		back, err := DecodeBytes(b)
		if err != nil {
			t.Fatalf("DecodeBytes: %v", err)
		}
		if back != o {
			t.Fatalf("byte roundtrip mismatch: %+v != %+v", back, o)
		}
	}
}

// TestEncodeDeterministicQuick: encoding is a pure function of the op, and
// distinct bit patterns decode to distinct ops.
func TestEncodeDeterministicQuick(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		o := RandomOp(rr)
		return o.Encode() == o.Encode()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsOversizedWord(t *testing.T) {
	if _, err := Decode(1 << OpBits); err == nil {
		t.Error("Decode accepted a word wider than 40 bits")
	}
}

func TestDecodeRejectsUndefinedOpcode(t *testing.T) {
	// Branch type (3) with opcode 31 is undefined.
	w := uint64(3)<<(OpBits-4) | uint64(31)<<(OpBits-9)
	if _, err := Decode(w); err == nil {
		t.Error("Decode accepted an undefined opcode")
	}
}

func TestValidateRejectsWideField(t *testing.T) {
	o := Op{Type: TypeInt, Code: OpLDI, Imm: 1 << 20}
	if err := o.Validate(); err == nil {
		t.Error("Validate accepted a 21-bit immediate in a 20-bit field")
	}
}

func TestSliceBits(t *testing.T) {
	o := Op{Type: TypeInt, Code: OpADD, Src1: 3, Src2: 7, Dest: 12, Pred: 5}
	// Leading 9 bits: T(0) S(0) OPT(00) OPCODE(00000) for add = 0.
	if got := o.SliceBits(0, 9); got != 0 {
		t.Errorf("SliceBits(0,9) = %d, want 0", got)
	}
	// Predicate is the trailing 5 bits.
	if got := o.SliceBits(OpBits-5, OpBits); got != 5 {
		t.Errorf("predicate slice = %d, want 5", got)
	}
	// Src1 occupies bits [9,14).
	if got := o.SliceBits(9, 14); got != 3 {
		t.Errorf("src1 slice = %d, want 3", got)
	}
}

func TestSliceBitsPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SliceBits accepted an inverted range")
		}
	}()
	var o Op
	o.SliceBits(10, 10)
}

func TestFieldValuesMatchesSliceBits(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		o := RandomOp(r)
		layout := Layout(o.Format())
		vals := o.FieldValues()
		off := 0
		for j, fs := range layout {
			got := o.SliceBits(off, off+fs.Width)
			want := uint64(vals[j])
			if fs.ID == FieldReserved {
				want = 0
			}
			if got != want {
				t.Fatalf("op %v slot %d (%v): bits %d != field %d",
					o.Format(), j, fs.ID, got, want)
			}
			off += fs.Width
		}
	}
}

func TestStringForms(t *testing.T) {
	ops := []Op{
		{Type: TypeInt, Code: OpADD, Src1: 1, Src2: 2, Dest: 3},
		{Type: TypeInt, Code: OpLDI, Imm: 42, Dest: 4},
		{Type: TypeInt, Code: OpCMPLT, Src1: 1, Src2: 2, Dest: 6},
		{Type: TypeFloat, Code: OpFMUL, Src1: 1, Src2: 2, Dest: 3},
		{Type: TypeMemory, Code: OpLD, Src1: 5, Dest: 6, Lat: 2},
		{Type: TypeMemory, Code: OpST, Src1: 5, Src2: 7},
		{Type: TypeBranch, Code: OpBRCT, Src1: 0, Pred: 9, Tail: true},
	}
	for i := range ops {
		s := ops[i].String()
		if s == "" {
			t.Errorf("op %d renders empty", i)
		}
	}
	// Tail marker and predicate guard must be visible.
	if s := ops[6].String(); s == "" || s[len(s)-3:] != "[t]" {
		t.Errorf("tail op string %q lacks [t] suffix", ops[6].String())
	}
}
