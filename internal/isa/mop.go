package isa

import (
	"fmt"

	"repro/internal/bitio"
)

// MOP is one VLIW MultiOp: the set of operations issued together in a
// single cycle. Under the zero-NOP encoding only real operations are
// stored; the tail bit of the last operation delimits the group.
type MOP []Op

// Validate checks issue-width and unit constraints for the modeled core
// (at most IssueWidth operations, at most MemUnits memory operations) and
// that tail bits are set on exactly the last operation.
func (m MOP) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("%w: empty MOP", ErrBadOp)
	}
	if len(m) > IssueWidth {
		return fmt.Errorf("%w: MOP has %d ops, issue width is %d",
			ErrBadOp, len(m), IssueWidth)
	}
	mem := 0
	for i := range m {
		if IsMemory(m[i].Type) {
			mem++
		}
		wantTail := i == len(m)-1
		if m[i].Tail != wantTail {
			return fmt.Errorf("%w: op %d tail bit is %v, want %v",
				ErrBadOp, i, m[i].Tail, wantTail)
		}
		if err := m[i].Validate(); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
	}
	if mem > MemUnits {
		return fmt.Errorf("%w: MOP has %d memory ops, only %d memory units",
			ErrBadOp, mem, MemUnits)
	}
	return nil
}

// SealTails sets the tail bit on the last operation and clears it on all
// others, making the slice a well-formed MOP in place.
func (m MOP) SealTails() {
	for i := range m {
		m[i].Tail = i == len(m)-1
	}
}

// Bits returns the MOP's size in the baseline encoding.
func (m MOP) Bits() int { return len(m) * OpBits }

// PackOps serializes a sequence of operations (typically one basic block's
// worth of MOPs, flattened) into a byte stream, 40 bits per op, packed
// bit-contiguously and zero-padded to a whole byte at the end. Blocks are
// byte-aligned in ROM, so padding occurs only once per block.
func PackOps(ops []Op) []byte {
	var bw bitio.Writer
	for i := range ops {
		bw.WriteBits(ops[i].Encode(), OpBits)
	}
	return bw.Bytes()
}

// UnpackOps decodes n operations from a bit-contiguous byte stream
// produced by PackOps.
func UnpackOps(data []byte, n int) ([]Op, error) {
	br := bitio.NewReader(data)
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		w, err := br.ReadBits(OpBits)
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		op, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// SplitMOPs cuts a flat op sequence into MOPs at tail bits. It returns an
// error if the sequence does not end on a tail bit.
func SplitMOPs(ops []Op) ([]MOP, error) {
	var mops []MOP
	start := 0
	for i := range ops {
		if ops[i].Tail {
			mops = append(mops, MOP(ops[start:i+1]))
			start = i + 1
		}
	}
	if start != len(ops) {
		return nil, fmt.Errorf("%w: trailing ops without tail bit", ErrBadOp)
	}
	return mops, nil
}
