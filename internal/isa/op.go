package isa

import (
	"errors"
	"fmt"
)

// Op is one decoded TEPIC operation. The zero value is a non-tail
// "add r0, r0 -> r0 if p0" — a harmless integer no-op.
//
// Only the fields meaningful for the operation's format participate in
// encoding; the rest are ignored and decode as zero.
type Op struct {
	Tail    bool   // T: last op of its MOP
	Spec    bool   // S: speculative
	Type    OpType // OPT
	Code    Opcode // OPCODE
	Src1    uint8  // first source register (5 bits)
	Src2    uint8  // second source register (5 bits)
	BHWX    uint8  // operand size (2 bits)
	D1      uint8  // cmpp destination action (3 bits)
	SD      bool   // FP single/double
	TSS     uint8  // FP tss lower/upper (3 bits)
	SCS     uint8  // load source cache specifier (2 bits)
	TCS     uint8  // memory target cache specifier (2 bits)
	Lat     uint8  // load latency field (5 bits)
	Dest    uint8  // destination register (5 bits)
	L1      bool   // lower/upper half access
	Imm     uint32 // 20-bit literal for load-immediate
	Counter uint8  // branch counter register (5 bits)
	Pred    uint8  // guarding predicate register (5 bits)
}

// Format returns the instruction format this operation encodes in.
func (o *Op) Format() Format { return FormatOf(o.Type, o.Code) }

// Info returns the opcode metadata for the operation.
func (o *Op) Info() OpcodeInfo { return MustLookup(o.Type, o.Code) }

// field reads the value of one field identity from the operation.
func (o *Op) field(id FieldID) uint32 {
	switch id {
	case FieldT:
		return b2u(o.Tail)
	case FieldS:
		return b2u(o.Spec)
	case FieldOpt:
		return uint32(o.Type)
	case FieldOpcode:
		return uint32(o.Code)
	case FieldSrc1:
		return uint32(o.Src1)
	case FieldSrc2:
		return uint32(o.Src2)
	case FieldBHWX:
		return uint32(o.BHWX)
	case FieldD1:
		return uint32(o.D1)
	case FieldSD:
		return b2u(o.SD)
	case FieldTSS:
		return uint32(o.TSS)
	case FieldSCS:
		return uint32(o.SCS)
	case FieldTCS:
		return uint32(o.TCS)
	case FieldLat:
		return uint32(o.Lat)
	case FieldDest:
		return uint32(o.Dest)
	case FieldL1:
		return b2u(o.L1)
	case FieldImm:
		return o.Imm
	case FieldCounter:
		return uint32(o.Counter)
	case FieldPred:
		return uint32(o.Pred)
	case FieldReserved:
		return 0
	}
	panic(fmt.Sprintf("isa: unknown field %d", id))
}

// setField writes the value of one field identity into the operation.
func (o *Op) setField(id FieldID, v uint32) {
	switch id {
	case FieldT:
		o.Tail = v != 0
	case FieldS:
		o.Spec = v != 0
	case FieldOpt:
		o.Type = OpType(v)
	case FieldOpcode:
		o.Code = Opcode(v)
	case FieldSrc1:
		o.Src1 = uint8(v)
	case FieldSrc2:
		o.Src2 = uint8(v)
	case FieldBHWX:
		o.BHWX = uint8(v)
	case FieldD1:
		o.D1 = uint8(v)
	case FieldSD:
		o.SD = v != 0
	case FieldTSS:
		o.TSS = uint8(v)
	case FieldSCS:
		o.SCS = uint8(v)
	case FieldTCS:
		o.TCS = uint8(v)
	case FieldLat:
		o.Lat = uint8(v)
	case FieldDest:
		o.Dest = uint8(v)
	case FieldL1:
		o.L1 = v != 0
	case FieldImm:
		o.Imm = v
	case FieldCounter:
		o.Counter = uint8(v)
	case FieldPred:
		o.Pred = uint8(v)
	case FieldReserved:
		// reserved bits are dropped
	default:
		panic(fmt.Sprintf("isa: unknown field %d", id))
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// ErrBadOp is returned when decoding or validating an operation with an
// undefined (type, opcode) pair or an out-of-range field value.
var ErrBadOp = errors.New("isa: invalid operation")

// Validate checks that all fields fit their encoded widths and that the
// (type, opcode) pair is defined.
func (o *Op) Validate() error {
	if _, ok := Lookup(o.Type, o.Code); !ok {
		return fmt.Errorf("%w: undefined opcode %v/%d", ErrBadOp, o.Type, o.Code)
	}
	for _, fs := range Layout(o.Format()) {
		if fs.ID == FieldReserved {
			continue
		}
		v := o.field(fs.ID)
		if v >= 1<<uint(fs.Width) {
			return fmt.Errorf("%w: field %v value %d exceeds %d bits",
				ErrBadOp, fs.ID, v, fs.Width)
		}
	}
	return nil
}

// Encode packs the operation into its 40-bit TEPIC encoding, returned in
// the low 40 bits of a uint64 with the paper's bit 0 (the tail bit) as the
// most significant bit.
func (o *Op) Encode() uint64 {
	var word uint64
	for _, fs := range Layout(o.Format()) {
		var v uint32
		if fs.ID != FieldReserved {
			v = o.field(fs.ID) & (1<<uint(fs.Width) - 1)
		}
		word = word<<uint(fs.Width) | uint64(v)
	}
	return word
}

// EncodeBytes returns the operation's 40-bit encoding as 5 bytes,
// most significant byte first.
func (o *Op) EncodeBytes() [OpBytes]byte {
	w := o.Encode()
	var b [OpBytes]byte
	for i := 0; i < OpBytes; i++ {
		b[i] = byte(w >> uint(8*(OpBytes-1-i)))
	}
	return b
}

// Decode unpacks a 40-bit TEPIC word (in the low 40 bits of w) into an
// operation. The format is recovered from the OPT/OPCODE fields, which sit
// at fixed positions in every format.
func Decode(w uint64) (Op, error) {
	if w >= 1<<OpBits {
		return Op{}, fmt.Errorf("%w: word exceeds %d bits", ErrBadOp, OpBits)
	}
	// T(1) S(1) OPT(2) OPCODE(5) are the leading 9 bits of every format.
	t := OpType(w >> (OpBits - 4) & 0x3)
	c := Opcode(w >> (OpBits - 9) & 0x1f)
	info, ok := Lookup(t, c)
	if !ok {
		return Op{}, fmt.Errorf("%w: undefined opcode %v/%d", ErrBadOp, t, c)
	}
	var o Op
	shift := uint(OpBits)
	for _, fs := range Layout(info.Format) {
		shift -= uint(fs.Width)
		v := uint32(w >> shift & (1<<uint(fs.Width) - 1))
		if fs.ID != FieldReserved {
			o.setField(fs.ID, v)
		}
	}
	return o, nil
}

// DecodeBytes decodes an operation from 5 bytes, most significant first.
func DecodeBytes(b [OpBytes]byte) (Op, error) {
	var w uint64
	for _, x := range b {
		w = w<<8 | uint64(x)
	}
	return Decode(w)
}

// FieldValues returns the operation's value for every slot of its format
// layout, in layout order (reserved slots yield zero). The compression
// schemes use this to cut an operation into stream symbols without
// re-deriving bit offsets.
func (o *Op) FieldValues() []uint32 {
	layout := Layout(o.Format())
	out := make([]uint32, len(layout))
	for i, fs := range layout {
		if fs.ID != FieldReserved {
			out[i] = o.field(fs.ID)
		}
	}
	return out
}

// SliceBits extracts bits [from, to) of the operation's 40-bit encoding,
// where bit 0 is the most significant (the tail bit). It is the primitive
// the stream-based Huffman alphabets are built on.
func (o *Op) SliceBits(from, to int) uint64 {
	if from < 0 || to > OpBits || from >= to {
		panic(fmt.Sprintf("isa: bad bit slice [%d,%d)", from, to))
	}
	w := o.Encode()
	return w >> uint(OpBits-to) & (1<<uint(to-from) - 1)
}
