package isa

import (
	"math/rand"
	"testing"
)

// TestLayoutWidths asserts paper Table 2: every format is exactly 40 bits.
func TestLayoutWidths(t *testing.T) {
	for f := Format(0); int(f) < NumFormats; f++ {
		if got := LayoutBits(f); got != OpBits {
			t.Errorf("format %v: layout sums to %d bits, want %d", f, got, OpBits)
		}
	}
}

// TestLayoutCommonPrefix asserts that T, S, OPT, OPCODE occupy the same
// leading 9 bits in every format — the property Decode relies on and the
// property the tailored encoding preserves to simplify decoding.
func TestLayoutCommonPrefix(t *testing.T) {
	want := []FieldSpec{{FieldT, 1}, {FieldS, 1}, {FieldOpt, 2}, {FieldOpcode, 5}}
	for f := Format(0); int(f) < NumFormats; f++ {
		layout := Layout(f)
		if len(layout) < len(want) {
			t.Fatalf("format %v: layout too short", f)
		}
		for i, w := range want {
			if layout[i] != w {
				t.Errorf("format %v slot %d = %+v, want %+v", f, i, layout[i], w)
			}
		}
	}
}

func TestLayoutFieldCounts(t *testing.T) {
	// Spot-check distinctive fields from Table 2.
	cases := []struct {
		f     Format
		id    FieldID
		width int
	}{
		{FmtIntALU, FieldBHWX, 2},
		{FmtIntCmpp, FieldD1, 3},
		{FmtLoadImm, FieldImm, 20},
		{FmtFloat, FieldSD, 1},
		{FmtFloat, FieldTSS, 3},
		{FmtLoad, FieldLat, 5},
		{FmtLoad, FieldSCS, 2},
		{FmtStore, FieldTCS, 2},
		{FmtBranch, FieldCounter, 5},
	}
	for _, c := range cases {
		found := false
		for _, fs := range Layout(c.f) {
			if fs.ID == c.id && fs.Width == c.width {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("format %v: missing field %v width %d", c.f, c.id, c.width)
		}
	}
}

func TestOpcodeTableFormats(t *testing.T) {
	for _, typ := range []OpType{TypeInt, TypeFloat, TypeMemory, TypeBranch} {
		infos := Opcodes(typ)
		if len(infos) == 0 {
			t.Fatalf("type %v has no opcodes", typ)
		}
		for _, info := range infos {
			if info.Type != typ {
				t.Errorf("%s: type mismatch %v != %v", info.Name, info.Type, typ)
			}
			if info.Latency < 1 {
				t.Errorf("%s: latency %d < 1", info.Name, info.Latency)
			}
			if int(info.Code) >= 32 {
				t.Errorf("%s: opcode %d does not fit 5 bits", info.Name, info.Code)
			}
		}
	}
}

func TestLookupUndefined(t *testing.T) {
	if _, ok := Lookup(TypeBranch, 31); ok {
		t.Error("Lookup(TypeBranch, 31) should be undefined")
	}
	if _, ok := Lookup(TypeFloat, 31); ok {
		t.Error("Lookup(TypeFloat, 31) should be undefined")
	}
}

func TestOpTypeStrings(t *testing.T) {
	for _, c := range []struct {
		t    OpType
		want string
	}{{TypeInt, "INT"}, {TypeFloat, "FP"}, {TypeMemory, "MEM"}, {TypeBranch, "BR"}} {
		if got := c.t.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.t, got, c.want)
		}
	}
}

// RandomOp builds a uniformly random *valid* operation; shared by property
// tests across packages via export_test-style reuse within this package.
func RandomOp(r *rand.Rand) Op {
	types := []OpType{TypeInt, TypeFloat, TypeMemory, TypeBranch}
	typ := types[r.Intn(len(types))]
	infos := Opcodes(typ)
	info := infos[r.Intn(len(infos))]
	o := Op{
		Tail: r.Intn(2) == 0,
		Spec: r.Intn(8) == 0,
		Type: typ,
		Code: info.Code,
		Pred: uint8(r.Intn(NumPred)),
	}
	switch info.Format {
	case FmtIntALU:
		o.Src1, o.Src2 = uint8(r.Intn(32)), uint8(r.Intn(32))
		o.Dest = uint8(r.Intn(32))
		o.BHWX = uint8(r.Intn(4))
		o.L1 = r.Intn(2) == 0
	case FmtIntCmpp:
		o.Src1, o.Src2 = uint8(r.Intn(32)), uint8(r.Intn(32))
		o.Dest = uint8(r.Intn(32))
		o.BHWX = uint8(r.Intn(4))
		o.D1 = uint8(r.Intn(8))
	case FmtLoadImm:
		o.Imm = uint32(r.Intn(1 << 20))
		o.Dest = uint8(r.Intn(32))
	case FmtFloat:
		o.Src1, o.Src2 = uint8(r.Intn(32)), uint8(r.Intn(32))
		o.Dest = uint8(r.Intn(32))
		o.SD = r.Intn(2) == 0
		o.TSS = uint8(r.Intn(8))
	case FmtLoad:
		o.Src1 = uint8(r.Intn(32))
		o.Dest = uint8(r.Intn(32))
		o.BHWX = uint8(r.Intn(4))
		o.SCS, o.TCS = uint8(r.Intn(4)), uint8(r.Intn(4))
		o.Lat = uint8(r.Intn(32))
	case FmtStore:
		o.Src1, o.Src2 = uint8(r.Intn(32)), uint8(r.Intn(32))
		o.BHWX = uint8(r.Intn(4))
		o.TCS = uint8(r.Intn(4))
	case FmtBranch:
		o.Src1 = uint8(r.Intn(32))
		o.Counter = uint8(r.Intn(32))
	}
	return o
}
