// Package isa implements the TEPIC (TINKER EPIC) embedded VLIW instruction
// set architecture used as the baseline encoding in Larin & Conte,
// "Compiler-Driven Cached Code Compression Schemes for Embedded ILP
// Processors" (MICRO 1999).
//
// TEPIC is a 40-bit-per-operation encoding derived from the HP PlayDoh VLIW
// specification, adapted for embedded systems. RISC-like operations are
// combined into VLIW MultiOps (MOPs) by the scheduler; a dedicated tail bit
// in every operation marks the last operation of a MOP, so NOPs never need
// to be stored (the "zero-NOP" encoding). The package provides:
//
//   - the seven instruction formats of the paper's Table 2, with exact
//     field widths (every format totals 40 bits);
//   - bit-level encoding and decoding of operations;
//   - MOP assembly with tail bits and byte-aligned block packing;
//   - a disassembler used by the tools and tests.
//
// The core processor modeled throughout the repository is the paper's
// 6-issue machine: four units that execute anything except memory accesses
// plus two universal units, with 32 general-purpose, 32 floating-point and
// 32 predicate registers.
package isa

import "fmt"

// OpBits is the width of every baseline TEPIC operation.
const OpBits = 40

// OpBytes is OpBits expressed in bytes.
const OpBytes = OpBits / 8

// Machine resource constants for the modeled 6-issue TEPIC core.
const (
	// IssueWidth is the maximum number of operations per MOP.
	IssueWidth = 6
	// MemUnits is the number of units able to execute memory operations.
	MemUnits = 2
	// NumGPR, NumFPR and NumPred are the architectural register file sizes.
	NumGPR  = 32
	NumFPR  = 32
	NumPred = 32
)

// OpType is the 2-bit major operation type (the OPT field).
type OpType uint8

// The four major operation types.
const (
	TypeInt    OpType = 0 // integer ALU, compare-to-predicate, load-immediate
	TypeFloat  OpType = 1 // floating point
	TypeMemory OpType = 2 // loads and stores
	TypeBranch OpType = 3 // control transfer
)

// String returns the assembler mnemonic prefix for the type.
func (t OpType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FP"
	case TypeMemory:
		return "MEM"
	case TypeBranch:
		return "BR"
	}
	return fmt.Sprintf("OPT(%d)", uint8(t))
}

// Format identifies one of the seven instruction formats of Table 2.
type Format uint8

// The seven TEPIC instruction formats.
const (
	FmtIntALU  Format = iota // integer ALU operation
	FmtIntCmpp               // integer compare-to-predicate
	FmtLoadImm               // integer load immediate (20-bit literal)
	FmtFloat                 // floating point operation
	FmtLoad                  // memory load
	FmtStore                 // memory store
	FmtBranch                // branch operation
	numFormats
)

// NumFormats is the number of distinct instruction formats.
const NumFormats = int(numFormats)

// String returns a short name for the format.
func (f Format) String() string {
	switch f {
	case FmtIntALU:
		return "IntALU"
	case FmtIntCmpp:
		return "IntCmpp"
	case FmtLoadImm:
		return "LoadImm"
	case FmtFloat:
		return "Float"
	case FmtLoad:
		return "Load"
	case FmtStore:
		return "Store"
	case FmtBranch:
		return "Branch"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// FieldID names every field that appears in any TEPIC format. Field
// identity is shared across formats: for example FieldSrc1 is the first
// source register in every format that has one. The compression code uses
// these identities to build stream alphabets and the tailored-encoding
// generator uses them to shrink field widths.
type FieldID uint8

// All TEPIC instruction fields.
const (
	FieldT        FieldID = iota // tail bit for zero-NOP MOP encoding
	FieldS                       // speculative bit
	FieldOpt                     // 2-bit operation type
	FieldOpcode                  // 5-bit operation code within the type
	FieldSrc1                    // first source register
	FieldSrc2                    // second source register
	FieldBHWX                    // byte/half/word/double operand size
	FieldD1                      // cmpp destination action specifier
	FieldSD                      // FP single/double bit
	FieldTSS                     // FP tss lower/upper specifier
	FieldSCS                     // load source cache specifier
	FieldTCS                     // memory target cache specifier
	FieldLat                     // load latency specifier
	FieldDest                    // destination register
	FieldL1                      // lower/upper register-half access bit
	FieldImm                     // 20-bit literal (load-immediate format)
	FieldCounter                 // branch counter register
	FieldPred                    // 5-bit guarding predicate register
	FieldReserved                // reserved/padding bits (always zero)
	numFields
)

// NumFields is the number of distinct field identities.
const NumFields = int(numFields)

// String returns the field name as used in the paper's Table 2.
func (f FieldID) String() string {
	names := [...]string{
		"T", "S", "OPT", "OPCODE", "Src1", "Src2", "BHWX", "D1", "S/D",
		"TSS", "SCS", "TCS", "Lat", "Dest", "L1", "Imm", "Counter",
		"PREDICATE", "Reserved",
	}
	if int(f) < len(names) {
		return names[f]
	}
	return fmt.Sprintf("Field(%d)", uint8(f))
}

// FieldSpec is one field slot within a format: the field identity and its
// width in bits. Fields are listed most-significant first; bit 0 of the
// paper's figures is the most significant bit of the 40-bit word.
type FieldSpec struct {
	ID    FieldID
	Width int
}

// formatLayouts reproduces Table 2 of the paper exactly. Each layout sums
// to 40 bits; layout_test.go asserts this for every format.
var formatLayouts = [NumFormats][]FieldSpec{
	// Integer ALU: T S OPT OPCODE Src1 Src2 BHWX Reserved(8) Dest L1 PRED
	FmtIntALU: {
		{FieldT, 1}, {FieldS, 1}, {FieldOpt, 2}, {FieldOpcode, 5},
		{FieldSrc1, 5}, {FieldSrc2, 5}, {FieldBHWX, 2}, {FieldReserved, 8},
		{FieldDest, 5}, {FieldL1, 1}, {FieldPred, 5},
	},
	// Integer compare-to-predicate: T S OPT OPCODE Src1 Src2 BHWX D1(3)
	// Reserved(5) Dest L1 PRED
	FmtIntCmpp: {
		{FieldT, 1}, {FieldS, 1}, {FieldOpt, 2}, {FieldOpcode, 5},
		{FieldSrc1, 5}, {FieldSrc2, 5}, {FieldBHWX, 2}, {FieldD1, 3},
		{FieldReserved, 5}, {FieldDest, 5}, {FieldL1, 1}, {FieldPred, 5},
	},
	// Integer load immediate: T S OPT OPCODE Imm(20) Dest L1 PRED
	FmtLoadImm: {
		{FieldT, 1}, {FieldS, 1}, {FieldOpt, 2}, {FieldOpcode, 5},
		{FieldImm, 20}, {FieldDest, 5}, {FieldL1, 1}, {FieldPred, 5},
	},
	// Floating point: T S OPT OPCODE Src1 Src2 S/D Reserved(6) TSS(3)
	// Dest L1 PRED
	FmtFloat: {
		{FieldT, 1}, {FieldS, 1}, {FieldOpt, 2}, {FieldOpcode, 5},
		{FieldSrc1, 5}, {FieldSrc2, 5}, {FieldSD, 1}, {FieldReserved, 6},
		{FieldTSS, 3}, {FieldDest, 5}, {FieldL1, 1}, {FieldPred, 5},
	},
	// Load: T S OPT OPCODE Src1 BHWX SCS Res(1) TCS Reserved(3) Lat(5)
	// Dest Rsv(1) PRED
	FmtLoad: {
		{FieldT, 1}, {FieldS, 1}, {FieldOpt, 2}, {FieldOpcode, 5},
		{FieldSrc1, 5}, {FieldBHWX, 2}, {FieldSCS, 2}, {FieldReserved, 1},
		{FieldTCS, 2}, {FieldReserved, 3}, {FieldLat, 5}, {FieldDest, 5},
		{FieldReserved, 1}, {FieldPred, 5},
	},
	// Store: T S OPT OPCODE Src1 Src2 BHWX TCS Reserved(11) L1 PRED
	FmtStore: {
		{FieldT, 1}, {FieldS, 1}, {FieldOpt, 2}, {FieldOpcode, 5},
		{FieldSrc1, 5}, {FieldSrc2, 5}, {FieldBHWX, 2}, {FieldTCS, 2},
		{FieldReserved, 11}, {FieldL1, 1}, {FieldPred, 5},
	},
	// Branch: T S OPT OPCODE Src1 Counter Reserved(16) PRED
	FmtBranch: {
		{FieldT, 1}, {FieldS, 1}, {FieldOpt, 2}, {FieldOpcode, 5},
		{FieldSrc1, 5}, {FieldCounter, 5}, {FieldReserved, 16},
		{FieldPred, 5},
	},
}

// Layout returns the ordered field specification for a format,
// most-significant field first. The returned slice must not be modified.
func Layout(f Format) []FieldSpec {
	return formatLayouts[f]
}

// FieldOffsets returns the starting bit offset of every slot in a
// format's layout, in layout order. Offsets use the paper's convention:
// bit 0 is the most significant bit of the 40-bit word (the tail bit).
func FieldOffsets(f Format) []int {
	layout := formatLayouts[f]
	offs := make([]int, len(layout))
	bit := 0
	for i, fs := range layout {
		offs[i] = bit
		bit += fs.Width
	}
	return offs
}

// LayoutBits returns the total width of a format. It is OpBits for every
// valid TEPIC format.
func LayoutBits(f Format) int {
	total := 0
	for _, fs := range formatLayouts[f] {
		total += fs.Width
	}
	return total
}

// BHWX operand size specifiers.
const (
	SizeByte   uint8 = 0
	SizeHalf   uint8 = 1
	SizeWord   uint8 = 2
	SizeDouble uint8 = 3
)

// Opcode is the 5-bit operation code within an OpType.
type Opcode uint8

// Integer opcodes (OpType TypeInt).
const (
	OpADD Opcode = iota
	OpSUB
	OpMUL
	OpDIV
	OpREM
	OpAND
	OpOR
	OpXOR
	OpSHL
	OpSHR
	OpSRA
	OpMOV
	OpNOT
	OpMIN
	OpMAX
	OpABS
	OpLDI    // load immediate (FmtLoadImm)
	OpLDIH   // load immediate into upper half (FmtLoadImm)
	OpCMPEQ  // compare-to-predicate (FmtIntCmpp)
	OpCMPNE  //
	OpCMPLT  //
	OpCMPLE  //
	OpCMPGT  //
	OpCMPGE  //
	OpCMPAND // predicate AND-combine
	OpCMPOR  // predicate OR-combine
)

// Floating-point opcodes (OpType TypeFloat).
const (
	OpFADD Opcode = iota
	OpFSUB
	OpFMUL
	OpFDIV
	OpFABS
	OpFNEG
	OpFMOV
	OpFCVT  // int <-> float conversion
	OpFSQRT // square root approximation
	OpFMIN
	OpFMAX
)

// Memory opcodes (OpType TypeMemory).
const (
	OpLD  Opcode = iota // load (FmtLoad)
	OpLDS               // load speculative
	OpST                // store (FmtStore)
	OpFLD               // floating-point load
	OpFST               // floating-point store
)

// Branch opcodes (OpType TypeBranch).
const (
	OpBR   Opcode = iota // unconditional branch
	OpBRCT               // branch if guarding predicate true
	OpBRCF               // branch if guarding predicate false
	OpCALL               // subroutine call
	OpRET                // subroutine return
	OpBRLC               // loop-closing branch on counter
)

// OpcodeInfo describes one (type, opcode) pair: its mnemonic, the format
// its operations are encoded in, and its execution latency in cycles.
type OpcodeInfo struct {
	Type    OpType
	Code    Opcode
	Name    string
	Format  Format
	Latency int
}

var opcodeTable = map[OpType]map[Opcode]OpcodeInfo{
	TypeInt: {
		OpADD:    {TypeInt, OpADD, "add", FmtIntALU, 1},
		OpSUB:    {TypeInt, OpSUB, "sub", FmtIntALU, 1},
		OpMUL:    {TypeInt, OpMUL, "mul", FmtIntALU, 3},
		OpDIV:    {TypeInt, OpDIV, "div", FmtIntALU, 8},
		OpREM:    {TypeInt, OpREM, "rem", FmtIntALU, 8},
		OpAND:    {TypeInt, OpAND, "and", FmtIntALU, 1},
		OpOR:     {TypeInt, OpOR, "or", FmtIntALU, 1},
		OpXOR:    {TypeInt, OpXOR, "xor", FmtIntALU, 1},
		OpSHL:    {TypeInt, OpSHL, "shl", FmtIntALU, 1},
		OpSHR:    {TypeInt, OpSHR, "shr", FmtIntALU, 1},
		OpSRA:    {TypeInt, OpSRA, "sra", FmtIntALU, 1},
		OpMOV:    {TypeInt, OpMOV, "mov", FmtIntALU, 1},
		OpNOT:    {TypeInt, OpNOT, "not", FmtIntALU, 1},
		OpMIN:    {TypeInt, OpMIN, "min", FmtIntALU, 1},
		OpMAX:    {TypeInt, OpMAX, "max", FmtIntALU, 1},
		OpABS:    {TypeInt, OpABS, "abs", FmtIntALU, 1},
		OpLDI:    {TypeInt, OpLDI, "ldi", FmtLoadImm, 1},
		OpLDIH:   {TypeInt, OpLDIH, "ldih", FmtLoadImm, 1},
		OpCMPEQ:  {TypeInt, OpCMPEQ, "cmpeq", FmtIntCmpp, 1},
		OpCMPNE:  {TypeInt, OpCMPNE, "cmpne", FmtIntCmpp, 1},
		OpCMPLT:  {TypeInt, OpCMPLT, "cmplt", FmtIntCmpp, 1},
		OpCMPLE:  {TypeInt, OpCMPLE, "cmple", FmtIntCmpp, 1},
		OpCMPGT:  {TypeInt, OpCMPGT, "cmpgt", FmtIntCmpp, 1},
		OpCMPGE:  {TypeInt, OpCMPGE, "cmpge", FmtIntCmpp, 1},
		OpCMPAND: {TypeInt, OpCMPAND, "cmpand", FmtIntCmpp, 1},
		OpCMPOR:  {TypeInt, OpCMPOR, "cmpor", FmtIntCmpp, 1},
	},
	TypeFloat: {
		OpFADD:  {TypeFloat, OpFADD, "fadd", FmtFloat, 3},
		OpFSUB:  {TypeFloat, OpFSUB, "fsub", FmtFloat, 3},
		OpFMUL:  {TypeFloat, OpFMUL, "fmul", FmtFloat, 3},
		OpFDIV:  {TypeFloat, OpFDIV, "fdiv", FmtFloat, 12},
		OpFABS:  {TypeFloat, OpFABS, "fabs", FmtFloat, 1},
		OpFNEG:  {TypeFloat, OpFNEG, "fneg", FmtFloat, 1},
		OpFMOV:  {TypeFloat, OpFMOV, "fmov", FmtFloat, 1},
		OpFCVT:  {TypeFloat, OpFCVT, "fcvt", FmtFloat, 2},
		OpFSQRT: {TypeFloat, OpFSQRT, "fsqrt", FmtFloat, 12},
		OpFMIN:  {TypeFloat, OpFMIN, "fmin", FmtFloat, 1},
		OpFMAX:  {TypeFloat, OpFMAX, "fmax", FmtFloat, 1},
	},
	TypeMemory: {
		OpLD:  {TypeMemory, OpLD, "ld", FmtLoad, 2},
		OpLDS: {TypeMemory, OpLDS, "lds", FmtLoad, 2},
		OpST:  {TypeMemory, OpST, "st", FmtStore, 1},
		OpFLD: {TypeMemory, OpFLD, "fld", FmtLoad, 2},
		OpFST: {TypeMemory, OpFST, "fst", FmtStore, 1},
	},
	TypeBranch: {
		OpBR:   {TypeBranch, OpBR, "br", FmtBranch, 1},
		OpBRCT: {TypeBranch, OpBRCT, "brct", FmtBranch, 1},
		OpBRCF: {TypeBranch, OpBRCF, "brcf", FmtBranch, 1},
		OpCALL: {TypeBranch, OpCALL, "call", FmtBranch, 1},
		OpRET:  {TypeBranch, OpRET, "ret", FmtBranch, 1},
		OpBRLC: {TypeBranch, OpBRLC, "brlc", FmtBranch, 1},
	},
}

// Lookup returns the OpcodeInfo for a (type, opcode) pair. The boolean is
// false if the pair is not a defined TEPIC operation.
func Lookup(t OpType, c Opcode) (OpcodeInfo, bool) {
	m, ok := opcodeTable[t]
	if !ok {
		return OpcodeInfo{}, false
	}
	info, ok := m[c]
	return info, ok
}

// MustLookup is Lookup for pairs known to be valid; it panics otherwise.
func MustLookup(t OpType, c Opcode) OpcodeInfo {
	info, ok := Lookup(t, c)
	if !ok {
		panic(fmt.Sprintf("isa: undefined opcode %v/%d", t, c))
	}
	return info
}

// Opcodes returns all defined opcodes for a type in ascending code order.
func Opcodes(t OpType) []OpcodeInfo {
	m := opcodeTable[t]
	out := make([]OpcodeInfo, 0, len(m))
	for c := Opcode(0); int(c) < 32; c++ {
		if info, ok := m[c]; ok {
			out = append(out, info)
		}
	}
	return out
}

// FormatOf returns the encoding format used by a (type, opcode) pair,
// defaulting to FmtIntALU for undefined pairs.
func FormatOf(t OpType, c Opcode) Format {
	if info, ok := Lookup(t, c); ok {
		return info.Format
	}
	return FmtIntALU
}

// IsBranch reports whether the type is a control-transfer operation.
func IsBranch(t OpType) bool { return t == TypeBranch }

// IsMemory reports whether the type is a memory operation.
func IsMemory(t OpType) bool { return t == TypeMemory }

// PredAlways is the predicate register that is architecturally hardwired
// to true; operations guarded by it always execute. Keeping it at register
// zero matches the paper's observation that the predicate field is "most
// of the time set to true", which the stream-based compressor exploits.
const PredAlways = 0
