package isa

import "testing"

// FuzzDecode: decoding arbitrary 40-bit words never panics, and accepted
// words decode to a fixed point (decode∘encode∘decode = decode — encode
// canonicalizes reserved bits to zero).
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1)<<OpBits - 1)
	addOp := Op{Type: TypeInt, Code: OpADD, Src1: 3, Src2: 7, Dest: 12}
	f.Add(addOp.Encode())
	retOp := Op{Type: TypeBranch, Code: OpRET, Tail: true}
	f.Add(retOp.Encode())
	f.Fuzz(func(t *testing.T, w uint64) {
		w &= 1<<OpBits - 1
		op, err := Decode(w)
		if err != nil {
			return
		}
		canon := op.Encode()
		op2, err := Decode(canon)
		if err != nil {
			t.Fatalf("canonical word rejected: %v", err)
		}
		if op2 != op {
			t.Fatalf("decode not idempotent: %+v vs %+v", op, op2)
		}
		if err := op.Validate(); err != nil {
			t.Fatalf("decoded op invalid: %v", err)
		}
	})
}

// FuzzUnpackOps: arbitrary byte streams never panic the op unpacker.
func FuzzUnpackOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4}, 1)
	f.Add(PackOps([]Op{{Type: TypeInt, Code: OpADD, Tail: true}}), 1)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 64 {
			return
		}
		ops, err := UnpackOps(data, n)
		if err != nil {
			return
		}
		if len(ops) != n {
			t.Fatalf("unpacked %d ops, asked for %d", len(ops), n)
		}
	})
}
