package isa

import (
	"math/rand"
	"testing"
)

func mkMOP(ops ...Op) MOP {
	m := MOP(ops)
	m.SealTails()
	return m
}

func TestMOPValidate(t *testing.T) {
	add := Op{Type: TypeInt, Code: OpADD}
	ld := Op{Type: TypeMemory, Code: OpLD}

	if err := mkMOP(add, add, add).Validate(); err != nil {
		t.Errorf("valid MOP rejected: %v", err)
	}
	if err := (MOP{}).Validate(); err == nil {
		t.Error("empty MOP accepted")
	}
	if err := mkMOP(add, add, add, add, add, add, add).Validate(); err == nil {
		t.Error("7-wide MOP accepted (issue width 6)")
	}
	if err := mkMOP(ld, ld, ld).Validate(); err == nil {
		t.Error("MOP with 3 memory ops accepted (2 memory units)")
	}
	// Tail on a non-last op.
	m := mkMOP(add, add)
	m[0].Tail = true
	if err := m.Validate(); err == nil {
		t.Error("MOP with interior tail bit accepted")
	}
	// Missing final tail.
	m = mkMOP(add, add)
	m[1].Tail = false
	if err := m.Validate(); err == nil {
		t.Error("MOP without final tail bit accepted")
	}
}

func TestPackUnpackOps(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(40)
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = RandomOp(r)
		}
		data := PackOps(ops)
		wantLen := (n*OpBits + 7) / 8
		if len(data) != wantLen {
			t.Fatalf("PackOps(%d ops) = %d bytes, want %d", n, len(data), wantLen)
		}
		back, err := UnpackOps(data, n)
		if err != nil {
			t.Fatalf("UnpackOps: %v", err)
		}
		for i := range ops {
			if back[i] != ops[i] {
				t.Fatalf("op %d mismatch after pack/unpack", i)
			}
		}
	}
}

func TestUnpackOpsTruncated(t *testing.T) {
	ops := []Op{{Type: TypeInt, Code: OpADD}}
	data := PackOps(ops)
	if _, err := UnpackOps(data[:len(data)-1], 1); err == nil {
		t.Error("UnpackOps accepted truncated stream")
	}
}

func TestSplitMOPs(t *testing.T) {
	add := Op{Type: TypeInt, Code: OpADD}
	tail := add
	tail.Tail = true
	ops := []Op{add, add, tail, tail, add, tail}
	mops, err := SplitMOPs(ops)
	if err != nil {
		t.Fatalf("SplitMOPs: %v", err)
	}
	if len(mops) != 3 {
		t.Fatalf("got %d MOPs, want 3", len(mops))
	}
	sizes := []int{3, 1, 2}
	for i, m := range mops {
		if len(m) != sizes[i] {
			t.Errorf("MOP %d has %d ops, want %d", i, len(m), sizes[i])
		}
	}
	if _, err := SplitMOPs([]Op{add}); err == nil {
		t.Error("SplitMOPs accepted sequence without final tail")
	}
}

func TestMOPBits(t *testing.T) {
	m := mkMOP(Op{Type: TypeInt, Code: OpADD}, Op{Type: TypeInt, Code: OpSUB})
	if m.Bits() != 80 {
		t.Errorf("MOP.Bits() = %d, want 80", m.Bits())
	}
}

func TestDisasmMOP(t *testing.T) {
	m := mkMOP(Op{Type: TypeInt, Code: OpADD}, Op{Type: TypeBranch, Code: OpBR})
	s := DisasmMOP(m)
	if s == "" || s[0] != '{' {
		t.Errorf("DisasmMOP rendered %q", s)
	}
}
