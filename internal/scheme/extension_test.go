// The extension test lives in an external test package (and thus a test
// binary separate from internal/core's) so the entries it registers are
// invisible to the count-sensitive toolchain tests.
package scheme_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/scheme"
)

// TestRegisterNewPair is the registry's design goal as a test: a new
// (encoding, organization) pair — a clone of the CodePack point — is
// registered here, in a test, and runs end-to-end through the compile
// pipeline and the stage-pipeline simulator WITHOUT any edit to
// internal/cache or internal/core. Because the clone's encoder and spec
// are identical to CodePack's, its simulation results must match
// CodePack's exactly; any divergence means the simulator still special-
// cases the built-ins somewhere.
func TestRegisterNewPair(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a benchmark; too slow for -short")
	}

	// A new encoding: byte-granular Huffman under a different name. The
	// ContentKey must be distinct so the artifact cache treats it as its
	// own configuration.
	if err := scheme.Register(scheme.Scheme{
		Name:       "byte-mirror",
		ContentKey: "byte-mirror/limit-test",
		Build: func(p *sched.Program) (compress.Encoder, error) {
			return compress.NewByteHuffman(p)
		},
	}); err != nil {
		t.Fatal(err)
	}

	// A new organization: CodePack's stage composition under a new name.
	org, err := cache.RegisterOrg(cache.OrgSpec{
		Name:      "MirrorPack",
		LineBytes: 40,
		NeedsROM:  true,
		Decode:    cache.MissDecompress{},
		Timing:    cache.StartupTable{PredHit: 1, PredMiss: 2, MispredHit: 2, MispredMiss: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := cache.OrgByName("mirrorpack"); !ok || got != org {
		t.Fatalf("OrgByName(mirrorpack) = %v, %v; want %v, true", got, ok, org)
	}

	// The pairing that ties them together.
	if err := scheme.RegisterPairing(scheme.Pairing{
		Name:        "MirrorPack",
		Org:         org,
		CacheScheme: scheme.BaseName,
		ROMScheme:   "byte-mirror",
	}); err != nil {
		t.Fatal(err)
	}

	const blocks = 20000
	c, err := core.CompileBenchmark("go")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Trace(blocks)
	if err != nil {
		t.Fatal(err)
	}

	run := func(name string) cache.Result {
		t.Helper()
		p, ok := scheme.PairingByName(name)
		if !ok {
			t.Fatalf("pairing %s not registered", name)
		}
		sim, err := c.SimFor(p, cache.DefaultConfig(p.Org))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	mirror := run("MirrorPack")
	codepack := run("CodePack")
	// The organization label is the one field that legitimately differs.
	mirror.Org = codepack.Org
	if mirror != codepack {
		t.Errorf("MirrorPack result diverges from its CodePack template:\n got  %+v\n want %+v",
			mirror, codepack)
	}
	if mirror.Cycles == 0 || mirror.BlockFetches == 0 {
		t.Errorf("MirrorPack simulation ran empty: %+v", mirror)
	}
}

// TestRegistryValidation pins the registration error paths.
func TestRegistryValidation(t *testing.T) {
	if err := scheme.Register(scheme.Scheme{Name: ""}); err == nil {
		t.Error("Register accepted a nameless scheme")
	}
	if err := scheme.Register(scheme.Scheme{Name: "x"}); err == nil {
		t.Error("Register accepted a scheme without Build")
	}
	if err := scheme.Register(scheme.Scheme{
		Name:  "x",
		Build: func(*sched.Program) (compress.Encoder, error) { return compress.NewBase(), nil },
	}); err == nil {
		t.Error("Register accepted a scheme without ContentKey")
	}
	if err := scheme.Register(scheme.Scheme{
		Name:       scheme.BaseName,
		ContentKey: "dup",
		Build:      func(*sched.Program) (compress.Encoder, error) { return compress.NewBase(), nil },
	}); err == nil {
		t.Error("Register accepted a duplicate name")
	}

	if err := scheme.RegisterPairing(scheme.Pairing{Name: ""}); err == nil {
		t.Error("RegisterPairing accepted a nameless pairing")
	}
	if err := scheme.RegisterPairing(scheme.Pairing{
		Name: "bogus-org", Org: cache.Org(9999), CacheScheme: scheme.BaseName,
	}); err == nil {
		t.Error("RegisterPairing accepted an unregistered organization")
	}
	if err := scheme.RegisterPairing(scheme.Pairing{
		Name: "bogus-scheme", Org: cache.OrgBase, CacheScheme: "nonesuch",
	}); err == nil {
		t.Error("RegisterPairing accepted an unknown cache scheme")
	}
	if err := scheme.RegisterPairing(scheme.Pairing{
		Name: "missing-rom", Org: cache.OrgCodePack, CacheScheme: scheme.BaseName,
	}); err == nil {
		t.Error("RegisterPairing accepted a NeedsROM organization without a ROM scheme")
	}
	if err := scheme.RegisterPairing(scheme.Pairing{
		Name: "extra-rom", Org: cache.OrgBase, CacheScheme: scheme.BaseName, ROMScheme: "byte",
	}); err == nil {
		t.Error("RegisterPairing accepted a ROM scheme on a non-ROM organization")
	}
	if err := scheme.RegisterPairing(scheme.Pairing{
		Name: "Base", Org: cache.OrgBase, CacheScheme: scheme.BaseName,
	}); err == nil {
		t.Error("RegisterPairing accepted a duplicate name")
	}
}

// TestBuiltinRegistry pins the built-in registration order the reports
// rely on and the study subset of Figures 13/14.
func TestBuiltinRegistry(t *testing.T) {
	names := scheme.Names()
	if len(names) < 10 || names[0] != scheme.BaseName {
		t.Fatalf("Names() = %v; want base first among >= 10 built-ins", names)
	}
	if got := scheme.GroupNames(scheme.GroupStream); len(got) != 6 {
		t.Errorf("GroupNames(stream) = %v; want the six §2.2 configurations", got)
	}
	var study []string
	for _, p := range scheme.StudyPairings() {
		study = append(study, p.Name)
	}
	want := []string{"Base", "Compressed", "Tailored"}
	if len(study) < 3 {
		t.Fatalf("StudyPairings() = %v; want at least %v", study, want)
	}
	for i, w := range want {
		if study[i] != w {
			t.Errorf("StudyPairings()[%d] = %s; want %s", i, study[i], w)
		}
	}
	for _, name := range []string{"base", "codepack", "COMPRESSED"} {
		if _, ok := scheme.PairingByName(name); !ok {
			t.Errorf("PairingByName(%q) failed; lookup should be case-insensitive", name)
		}
	}
}
