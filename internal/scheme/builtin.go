package scheme

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/compress"
	"repro/internal/sched"
	"repro/internal/tailor"
)

// The built-in encodings, registered in the toolchain's report order:
// the baseline, byte-based Huffman, the six stream configurations of
// §2.2, whole-op Huffman, and the tailored ISA. Stream schemes key
// their exact cut points (not their display names); Huffman schemes
// fold in the code-length bound that shapes their tables.
func init() {
	MustRegister(Scheme{
		Name:        BaseName,
		ContentKey:  "base",
		SelfIndexed: true,
		Build: func(*sched.Program) (compress.Encoder, error) {
			return compress.NewBase(), nil
		},
	})
	MustRegister(Scheme{
		Name:       "byte",
		ContentKey: fmt.Sprintf("byte/limit=%d", compress.CodeLenLimit),
		Build: func(p *sched.Program) (compress.Encoder, error) {
			return compress.NewByteHuffman(p)
		},
	})
	for _, cfg := range compress.StreamConfigs {
		cfg := cfg
		MustRegister(Scheme{
			Name:       cfg.Name,
			Group:      GroupStream,
			ContentKey: fmt.Sprintf("%s/limit=%d", cfg.Key(), compress.CodeLenLimit),
			Build: func(p *sched.Program) (compress.Encoder, error) {
				return compress.NewStreamHuffman(p, cfg)
			},
		})
	}
	MustRegister(Scheme{
		Name:       "full",
		ContentKey: fmt.Sprintf("full/limit=%d", compress.CodeLenLimit),
		Build: func(p *sched.Program) (compress.Encoder, error) {
			return compress.NewFullHuffman(p)
		},
	})
	MustRegister(Scheme{
		Name:       "tailored",
		ContentKey: "tailored",
		Build: func(p *sched.Program) (compress.Encoder, error) {
			return tailor.New(p)
		},
	})

	// The co-designed pairings: the paper's three cache-study
	// organizations (Figures 11–13) and the related-work CodePack model
	// (§6) with a byte-Huffman ROM behind an uncompressed cache.
	MustRegisterPairing(Pairing{
		Name: "Base", Org: cache.OrgBase, CacheScheme: BaseName, Study: true,
	})
	MustRegisterPairing(Pairing{
		Name: "Compressed", Org: cache.OrgCompressed, CacheScheme: "full", Study: true,
	})
	MustRegisterPairing(Pairing{
		Name: "Tailored", Org: cache.OrgTailored, CacheScheme: "tailored", Study: true,
	})
	MustRegisterPairing(Pairing{
		Name: "CodePack", Org: cache.OrgCodePack, CacheScheme: BaseName, ROMScheme: "byte",
	})
}
