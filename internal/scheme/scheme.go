// Package scheme is the unified registry behind the paper's co-design
// argument (Larin & Conte §4–§5): an encoding scheme and the fetch
// organization built for it are one point, not two switch statements.
// The package registers every encoding (how to construct its encoder,
// its canonical content key for artifact caching, whether its image
// carries an Address Translation Table) and every pairing of an encoding
// with a cache organization (internal/cache's Org registry). The
// toolchain (internal/core), the figure experiments and the CLIs resolve
// schemes and pairings here; adding a new (encoding, organization) pair
// is a registration, not an edit to the simulator or the build pipeline.
package scheme

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cache"
	"repro/internal/compress"
	"repro/internal/sched"
)

// BaseName is the self-indexed baseline encoding every other scheme's
// ATT and compression ratio are measured against.
const BaseName = "base"

// Groups classify schemes for sweeps and reports.
const (
	// GroupStream marks the six multi-stream Huffman configurations of
	// §2.2 that StreamSweep explores.
	GroupStream = "stream"
)

// Scheme bundles everything the toolchain needs to build one encoding.
type Scheme struct {
	// Name is the scheme's registry key and report label.
	Name string
	// Group optionally classifies the scheme for sweeps (e.g.
	// GroupStream); the built-in singleton schemes leave it empty.
	Group string
	// Build constructs the scheme's encoder for a scheduled program.
	Build func(p *sched.Program) (compress.Encoder, error)
	// ContentKey is the canonical content descriptor folded into
	// artifact-cache keys: it must change whenever the configuration
	// changes meaning (cut points, code-length bounds, ...), and must
	// not depend on the display name alone.
	ContentKey string
	// SelfIndexed marks the encoding whose image needs no Address
	// Translation Table because block addresses are its own address
	// space (the base encoding).
	SelfIndexed bool
}

var (
	mu      sync.RWMutex
	schemes []Scheme
	byName  = map[string]int{}
)

// Register adds a scheme to the registry. Names are unique; Build and
// ContentKey are required.
func Register(s Scheme) error {
	if s.Name == "" {
		return fmt.Errorf("scheme: registration needs a name")
	}
	if s.Build == nil {
		return fmt.Errorf("scheme: %s needs a Build function", s.Name)
	}
	if s.ContentKey == "" {
		return fmt.Errorf("scheme: %s needs a ContentKey", s.Name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := byName[s.Name]; dup {
		return fmt.Errorf("scheme: %s already registered", s.Name)
	}
	byName[s.Name] = len(schemes)
	schemes = append(schemes, s)
	return nil
}

// MustRegister is Register, panicking on error.
func MustRegister(s Scheme) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup resolves a scheme by name.
func Lookup(name string) (Scheme, bool) {
	mu.RLock()
	defer mu.RUnlock()
	i, ok := byName[name]
	if !ok {
		return Scheme{}, false
	}
	return schemes[i], true
}

// Names returns every registered scheme name in registration order —
// the toolchain's report order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, len(schemes))
	for i, s := range schemes {
		out[i] = s.Name
	}
	return out
}

// GroupNames returns the names of every scheme in a group, in
// registration order.
func GroupNames(group string) []string {
	mu.RLock()
	defer mu.RUnlock()
	var out []string
	for _, s := range schemes {
		if s.Group == group {
			out = append(out, s.Name)
		}
	}
	return out
}

// Pairing is one co-designed (encoding, fetch organization) point: the
// scheme whose image the cache indexes, the cache organization built
// for it, and — for miss-path-decompression organizations — the scheme
// of the ROM image behind the bus.
type Pairing struct {
	// Name is the organization-level label used in figures ("Base",
	// "Compressed", ...); for the built-ins it matches Org.String().
	Name string
	// Org is the fetch organization in internal/cache's registry.
	Org cache.Org
	// CacheScheme names the encoding held by the cache.
	CacheScheme string
	// ROMScheme names the encoding of the ROM image behind the bus;
	// non-empty exactly when the organization's spec sets NeedsROM.
	ROMScheme string
	// Study marks the pairings of the paper's cache study (Figures 13
	// and 14).
	Study bool
}

var (
	pairMu   sync.RWMutex
	pairings []Pairing
	pairIdx  = map[string]int{} // lower-cased name -> index
)

// RegisterPairing adds a pairing, validating that its schemes exist and
// that the ROM scheme matches the organization's NeedsROM contract.
func RegisterPairing(p Pairing) error {
	if p.Name == "" {
		return fmt.Errorf("scheme: pairing needs a name")
	}
	spec, ok := p.Org.Spec()
	if !ok {
		return fmt.Errorf("scheme: pairing %s names unregistered organization %d",
			p.Name, int(p.Org))
	}
	if _, ok := Lookup(p.CacheScheme); !ok {
		return fmt.Errorf("scheme: pairing %s names unknown cache scheme %q",
			p.Name, p.CacheScheme)
	}
	if spec.NeedsROM != (p.ROMScheme != "") {
		return fmt.Errorf("scheme: pairing %s: organization %s NeedsROM=%v but ROM scheme is %q",
			p.Name, spec.Name, spec.NeedsROM, p.ROMScheme)
	}
	if p.ROMScheme != "" {
		if _, ok := Lookup(p.ROMScheme); !ok {
			return fmt.Errorf("scheme: pairing %s names unknown ROM scheme %q",
				p.Name, p.ROMScheme)
		}
	}
	pairMu.Lock()
	defer pairMu.Unlock()
	key := strings.ToLower(p.Name)
	if _, dup := pairIdx[key]; dup {
		return fmt.Errorf("scheme: pairing %s already registered", p.Name)
	}
	pairIdx[key] = len(pairings)
	pairings = append(pairings, p)
	return nil
}

// MustRegisterPairing is RegisterPairing, panicking on error.
func MustRegisterPairing(p Pairing) {
	if err := RegisterPairing(p); err != nil {
		panic(err)
	}
}

// Pairings returns every registered pairing in registration order.
func Pairings() []Pairing {
	pairMu.RLock()
	defer pairMu.RUnlock()
	out := make([]Pairing, len(pairings))
	copy(out, pairings)
	return out
}

// PairingByName resolves a pairing label case-insensitively (CLI flags
// use lower case, figures the capitalized form).
func PairingByName(name string) (Pairing, bool) {
	pairMu.RLock()
	defer pairMu.RUnlock()
	i, ok := pairIdx[strings.ToLower(name)]
	if !ok {
		return Pairing{}, false
	}
	return pairings[i], true
}

// PairingFor returns the first registered pairing of an organization.
func PairingFor(org cache.Org) (Pairing, bool) {
	pairMu.RLock()
	defer pairMu.RUnlock()
	for _, p := range pairings {
		if p.Org == org {
			return p, true
		}
	}
	return Pairing{}, false
}

// StudyPairings returns the pairings of the paper's cache study
// (Figures 13/14) in registration order.
func StudyPairings() []Pairing {
	pairMu.RLock()
	defer pairMu.RUnlock()
	var out []Pairing
	for _, p := range pairings {
		if p.Study {
			out = append(out, p)
		}
	}
	return out
}
