package power

import "testing"

func TestTransferCountsFlips(t *testing.T) {
	b := NewBus(2)
	b.Transfer([]byte{0xff, 0x00}) // from 00 00: 8 flips
	if b.Flips != 8 || b.Beats != 1 {
		t.Errorf("flips/beats = %d/%d, want 8/1", b.Flips, b.Beats)
	}
	b.Transfer([]byte{0xff, 0x00}) // identical: 0 flips
	if b.Flips != 8 || b.Beats != 2 {
		t.Errorf("identical beat flipped lines: %d", b.Flips)
	}
	b.Transfer([]byte{0x00, 0xff}) // all 16 lines flip
	if b.Flips != 24 {
		t.Errorf("flips = %d, want 24", b.Flips)
	}
}

func TestTransferSplitsBeats(t *testing.T) {
	b := NewBus(4)
	b.Transfer(make([]byte, 10)) // 3 beats (4+4+2)
	if b.Beats != 3 {
		t.Errorf("beats = %d, want 3", b.Beats)
	}
	if b.Bytes != 10 {
		t.Errorf("bytes = %d, want 10", b.Bytes)
	}
}

func TestPartialBeatZeroPads(t *testing.T) {
	b := NewBus(2)
	b.Transfer([]byte{0xff, 0xff})
	b.Transfer([]byte{0xff}) // second lane drops to 0: 8 flips
	if b.Flips != 16+8 {
		t.Errorf("flips = %d, want 24", b.Flips)
	}
}

func TestDefaults(t *testing.T) {
	b := NewBus(0)
	if b.Width() != DefaultBusBytes {
		t.Errorf("width = %d, want %d", b.Width(), DefaultBusBytes)
	}
	if b.FlipsPerBeat() != 0 {
		t.Error("FlipsPerBeat on idle bus should be 0")
	}
	b.Transfer([]byte{0x0f})
	if b.FlipsPerBeat() != 4 {
		t.Errorf("FlipsPerBeat = %g, want 4", b.FlipsPerBeat())
	}
}

// TestBusSnapshotRestore checks the bus checkpoint face: a restored bus
// accumulates the same flips as the original on identical future
// transfers, counters are excluded from the state, and the snapshot
// does not alias the live line buffer.
func TestBusSnapshotRestore(t *testing.T) {
	a := NewBus(4)
	a.Transfer([]byte{0xff, 0x0f, 0xaa, 0x55})
	snap := a.Snapshot()

	b := NewBus(4)
	b.Transfer([]byte{1, 2, 3, 4}) // divergent history, different counters
	b.Restore(snap)
	if !b.Snapshot().Equal(snap) {
		t.Error("restored bus state differs from the snapshot")
	}
	if b.Beats != 1 {
		t.Errorf("Restore touched accounting counters: beats = %d", b.Beats)
	}

	// Same future payload must flip the same bits on both buses.
	aFlips0, bFlips0 := a.Flips, b.Flips
	payload := []byte{0x00, 0xf0, 0x55, 0xaa}
	a.Transfer(payload)
	b.Transfer(payload)
	if a.Flips-aFlips0 != b.Flips-bFlips0 {
		t.Errorf("flip deltas diverge after restore: %d vs %d", a.Flips-aFlips0, b.Flips-bFlips0)
	}

	// Mutating the original must not retroactively change the snapshot.
	a.Transfer([]byte{9, 9, 9, 9})
	if !snap.Equal(State{Last: []byte{0xff, 0x0f, 0xaa, 0x55}}) {
		t.Error("snapshot aliases the live line buffer")
	}
}
