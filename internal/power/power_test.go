package power

import "testing"

func TestTransferCountsFlips(t *testing.T) {
	b := NewBus(2)
	b.Transfer([]byte{0xff, 0x00}) // from 00 00: 8 flips
	if b.Flips != 8 || b.Beats != 1 {
		t.Errorf("flips/beats = %d/%d, want 8/1", b.Flips, b.Beats)
	}
	b.Transfer([]byte{0xff, 0x00}) // identical: 0 flips
	if b.Flips != 8 || b.Beats != 2 {
		t.Errorf("identical beat flipped lines: %d", b.Flips)
	}
	b.Transfer([]byte{0x00, 0xff}) // all 16 lines flip
	if b.Flips != 24 {
		t.Errorf("flips = %d, want 24", b.Flips)
	}
}

func TestTransferSplitsBeats(t *testing.T) {
	b := NewBus(4)
	b.Transfer(make([]byte, 10)) // 3 beats (4+4+2)
	if b.Beats != 3 {
		t.Errorf("beats = %d, want 3", b.Beats)
	}
	if b.Bytes != 10 {
		t.Errorf("bytes = %d, want 10", b.Bytes)
	}
}

func TestPartialBeatZeroPads(t *testing.T) {
	b := NewBus(2)
	b.Transfer([]byte{0xff, 0xff})
	b.Transfer([]byte{0xff}) // second lane drops to 0: 8 flips
	if b.Flips != 16+8 {
		t.Errorf("flips = %d, want 24", b.Flips)
	}
}

func TestDefaults(t *testing.T) {
	b := NewBus(0)
	if b.Width() != DefaultBusBytes {
		t.Errorf("width = %d, want %d", b.Width(), DefaultBusBytes)
	}
	if b.FlipsPerBeat() != 0 {
		t.Error("FlipsPerBeat on idle bus should be 0")
	}
	b.Transfer([]byte{0x0f})
	if b.FlipsPerBeat() != 4 {
		t.Errorf("FlipsPerBeat = %g, want 4", b.FlipsPerBeat())
	}
}
