// Package power models memory-bus energy the way the paper's Figure 14
// does: by counting the number of bus lines that *flip* between
// consecutive transfers ("power is modeled by counting the number of
// transactions on the memory bus when bits are flipped"). Fewer bytes
// fetched per delivered instruction means fewer beats and fewer flips —
// which is how the compressed schemes save power even before any
// circuit-level modeling.
package power

import "math/bits"

// DefaultBusBytes is the modeled memory bus width.
const DefaultBusBytes = 8

// Bus tracks bit-flip activity on a memory bus of fixed byte width.
type Bus struct {
	width int
	last  []byte

	Beats int64 // total bus transactions
	Flips int64 // total bit transitions across all beats
	Bytes int64 // total payload bytes transferred
}

// NewBus returns a bus of the given width in bytes (<= 0 selects
// DefaultBusBytes). The bus starts with all lines at zero.
func NewBus(widthBytes int) *Bus {
	if widthBytes <= 0 {
		widthBytes = DefaultBusBytes
	}
	return &Bus{width: widthBytes, last: make([]byte, widthBytes)}
}

// Width returns the bus width in bytes.
func (b *Bus) Width() int { return b.width }

// Transfer sends a payload over the bus in width-sized beats (the final
// beat is zero-padded) and accumulates flip counts against the previous
// beat left on the lines.
func (b *Bus) Transfer(data []byte) {
	for off := 0; off < len(data); off += b.width {
		end := off + b.width
		if end > len(data) {
			end = len(data)
		}
		beat := data[off:end]
		for i := 0; i < b.width; i++ {
			var cur byte
			if i < len(beat) {
				cur = beat[i]
			}
			b.Flips += int64(bits.OnesCount8(cur ^ b.last[i]))
			b.last[i] = cur
		}
		b.Beats++
		b.Bytes += int64(end - off)
	}
}

// Counts returns the cumulative beats, bit flips and payload bytes — the
// cache package's BusModel accounting face.
func (b *Bus) Counts() (beats, flips, bytes int64) {
	return b.Beats, b.Flips, b.Bytes
}

// State is the bus's behavioral checkpoint: the byte values the last
// beat left on the lines, which is all that decides future flip counts.
// The cumulative Beats/Flips/Bytes counters are deliberately excluded —
// they are accounting, not behavior, and window-parallel replay reads
// them as before/after deltas around each window instead.
type State struct {
	Last []byte
}

// Equal reports whether two bus states are bit-identical.
func (s State) Equal(o State) bool {
	if len(s.Last) != len(o.Last) {
		return false
	}
	for i, b := range s.Last {
		if o.Last[i] != b {
			return false
		}
	}
	return true
}

// Snapshot returns a copy of the bus's behavioral state (see State).
func (b *Bus) Snapshot() State {
	return State{Last: append([]byte(nil), b.last...)}
}

// Restore overwrites the line state with a snapshot taken from a bus of
// the same width. The cumulative counters are left untouched, so deltas
// around a restore still measure only this instance's own transfers.
func (b *Bus) Restore(s State) { copy(b.last, s.Last) }

// FlipsPerBeat returns the average bit transitions per bus transaction.
func (b *Bus) FlipsPerBeat() float64 {
	if b.Beats == 0 {
		return 0
	}
	return float64(b.Flips) / float64(b.Beats)
}
