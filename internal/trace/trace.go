// Package trace defines the dynamic block-granular instruction traces the
// IFetch simulators consume. The paper's compiler annotates code so the
// YULA emulator emits an instruction address trace; here traces are
// produced by package emu (either by interpreting TEPIC semantics or by a
// profile-driven stochastic walk) and carry, per executed basic block, the
// branch outcome and the successor block.
package trace

// End marks the absence of a successor block.
const End = -1

// Event is one basic-block execution.
type Event struct {
	Block int  // global block ID executed
	Taken bool // terminating branch outcome (false for fall-through)
	Next  int  // block executed next, or End
}

// Trace is a sequence of block executions for one program.
type Trace struct {
	Name   string
	Events []Event
	Ops    int64 // total dynamic operations
	MOPs   int64 // total dynamic MOPs (fetch cycles at 1 MOP/cycle)
}

// Len returns the number of block executions.
func (t *Trace) Len() int { return len(t.Events) }

// Validate checks that every block reference is in range (ValidateRefs)
// and that successor links are consistent: each event's Next must name
// the block the following event executes. Errors wrap ErrMalformedTrace.
func (t *Trace) Validate(numBlocks int) error {
	return ValidateStream(NewSliceStream(t, 0), numBlocks)
}

// ValidateRefs checks only that every event's block references lie
// inside [0, numBlocks): the executed block, and the successor (which may
// also be End). Unlike Validate it does not require the successor chain
// to be consistent, so stitched or concatenated traces (whose seam events
// name a Next that differs from the following event) still pass — this
// is the precondition the IFetch simulators enforce before replay.
// Errors wrap ErrMalformedTrace.
func (t *Trace) ValidateRefs(numBlocks int) error {
	return ValidateStreamRefs(NewSliceStream(t, 0), numBlocks)
}

// BlockCounts returns per-block execution counts. Unlike the streaming
// face (BlockCountsStream) it does not reject out-of-range references;
// callers are expected to have validated the trace first.
func (t *Trace) BlockCounts(numBlocks int) []int64 {
	counts := make([]int64, numBlocks)
	for _, e := range t.Events {
		counts[e.Block]++
	}
	return counts
}

// Footprint returns how many distinct blocks the trace touches.
func (t *Trace) Footprint(numBlocks int) int {
	seen := make([]bool, numBlocks)
	n := 0
	for _, e := range t.Events {
		if !seen[e.Block] {
			seen[e.Block] = true
			n++
		}
	}
	return n
}
