package trace

import (
	"reflect"
	"testing"
)

// FuzzTraceValidate drives Validate/ValidateRefs with arbitrary event
// streams decoded from fuzz bytes — the validators are the simulator's
// only shield against malformed traces, so they must never panic and
// must stay mutually consistent: a chain-consistent trace (Validate)
// is necessarily reference-valid (ValidateRefs), and a trace accepted
// by ValidateRefs holds no out-of-range reference.
func FuzzTraceValidate(f *testing.F) {
	f.Add(4, []byte{0, 1, 1, 1, 0, 1, 255, 255, 0})
	f.Add(1, []byte{0, 0, 0})
	f.Add(0, []byte{})
	f.Add(3, []byte{2, 1, 200, 7, 0, 0})
	f.Fuzz(func(t *testing.T, numBlocks int, raw []byte) {
		if numBlocks < 0 || numBlocks > 1<<16 {
			return
		}
		// Decode byte triples into events; the third byte's low bit is
		// the outcome and 255 in the second byte is End, so the corpus
		// reaches in-range, out-of-range and terminator successors.
		tr := &Trace{Name: "fuzz"}
		for i := 0; i+2 < len(raw); i += 3 {
			next := int(raw[i+1])
			if raw[i+1] == 255 {
				next = End
			}
			tr.Events = append(tr.Events, Event{
				Block: int(raw[i]) - 2, // negatives reachable
				Taken: raw[i+2]&1 == 1,
				Next:  next,
			})
		}

		refsErr := tr.ValidateRefs(numBlocks)
		chainErr := tr.Validate(numBlocks)
		if refsErr != nil && chainErr == nil {
			t.Fatalf("Validate accepted a trace ValidateRefs rejects: %v", refsErr)
		}
		if refsErr == nil {
			for i, e := range tr.Events {
				if e.Block < 0 || e.Block >= numBlocks {
					t.Fatalf("ValidateRefs accepted event %d with block %d of %d",
						i, e.Block, numBlocks)
				}
				if e.Next != End && (e.Next < 0 || e.Next >= numBlocks) {
					t.Fatalf("ValidateRefs accepted event %d with successor %d of %d",
						i, e.Next, numBlocks)
				}
			}
		}
	})
}

// FuzzStreamChunks is the chunker round-trip property under fuzzing:
// any trace decoded from fuzz bytes, streamed at an arbitrary chunk
// size (including 1 and len+1) through both SliceStream and the
// producer/consumer ChanStream, reassembles byte-identically, and the
// streaming validators agree with the slice validators regardless of
// where the chunk seams fall.
func FuzzStreamChunks(f *testing.F) {
	f.Add(4, 1, []byte{0, 1, 1, 1, 0, 1, 255, 255, 0})
	f.Add(3, 2, []byte{2, 1, 200, 7, 0, 0})
	f.Add(1, 1000, []byte{0, 0, 0})
	f.Add(0, 0, []byte{})
	f.Fuzz(func(t *testing.T, numBlocks, chunkEvents int, raw []byte) {
		if numBlocks < 0 || numBlocks > 1<<16 {
			return
		}
		if chunkEvents < 0 || chunkEvents > 1<<20 {
			return
		}
		tr := &Trace{Name: "fuzz"}
		for i := 0; i+2 < len(raw); i += 3 {
			next := int(raw[i+1])
			if raw[i+1] == 255 {
				next = End
			}
			tr.Events = append(tr.Events, Event{
				Block: int(raw[i]) - 2,
				Taken: raw[i+2]&1 == 1,
				Next:  next,
			})
		}
		tr.Ops = int64(len(tr.Events)) * 5
		tr.MOPs = int64(len(tr.Events)) * 2

		got, err := Collect(NewSliceStream(tr, chunkEvents))
		if err != nil {
			t.Fatalf("Collect(SliceStream): %v", err)
		}
		if len(got.Events) != len(tr.Events) ||
			(len(tr.Events) > 0 && !reflect.DeepEqual(got.Events, tr.Events)) {
			t.Fatalf("SliceStream round-trip changed events (chunk=%d)", chunkEvents)
		}
		if got.Ops != tr.Ops || got.MOPs != tr.MOPs {
			t.Fatalf("SliceStream round-trip changed totals: %d/%d want %d/%d",
				got.Ops, got.MOPs, tr.Ops, tr.MOPs)
		}

		cs, p := NewChanStream(tr.Name, chunkEvents, 2)
		go func() {
			for _, ev := range tr.Events {
				if !p.Append(ev, 5, 2) {
					p.Close(nil)
					return
				}
			}
			p.Close(nil)
		}()
		got, err = Collect(cs)
		if err != nil {
			t.Fatalf("Collect(ChanStream): %v", err)
		}
		if len(got.Events) != len(tr.Events) ||
			(len(tr.Events) > 0 && !reflect.DeepEqual(got.Events, tr.Events)) {
			t.Fatalf("ChanStream round-trip changed events (chunk=%d)", chunkEvents)
		}
		if got.Ops != tr.Ops || got.MOPs != tr.MOPs {
			t.Fatalf("ChanStream round-trip changed totals: %d/%d want %d/%d",
				got.Ops, got.MOPs, tr.Ops, tr.MOPs)
		}

		refsSlice := tr.ValidateRefs(numBlocks)
		refsStream := ValidateStreamRefs(NewSliceStream(tr, chunkEvents), numBlocks)
		if (refsSlice == nil) != (refsStream == nil) {
			t.Fatalf("refs disagree: slice %v, stream %v", refsSlice, refsStream)
		}
		chainSlice := tr.Validate(numBlocks)
		chainStream := ValidateStream(NewSliceStream(tr, chunkEvents), numBlocks)
		if (chainSlice == nil) != (chainStream == nil) {
			t.Fatalf("chain disagree: slice %v, stream %v", chainSlice, chainStream)
		}
	})
}
