package trace

import "testing"

// FuzzTraceValidate drives Validate/ValidateRefs with arbitrary event
// streams decoded from fuzz bytes — the validators are the simulator's
// only shield against malformed traces, so they must never panic and
// must stay mutually consistent: a chain-consistent trace (Validate)
// is necessarily reference-valid (ValidateRefs), and a trace accepted
// by ValidateRefs holds no out-of-range reference.
func FuzzTraceValidate(f *testing.F) {
	f.Add(4, []byte{0, 1, 1, 1, 0, 1, 255, 255, 0})
	f.Add(1, []byte{0, 0, 0})
	f.Add(0, []byte{})
	f.Add(3, []byte{2, 1, 200, 7, 0, 0})
	f.Fuzz(func(t *testing.T, numBlocks int, raw []byte) {
		if numBlocks < 0 || numBlocks > 1<<16 {
			return
		}
		// Decode byte triples into events; the third byte's low bit is
		// the outcome and 255 in the second byte is End, so the corpus
		// reaches in-range, out-of-range and terminator successors.
		tr := &Trace{Name: "fuzz"}
		for i := 0; i+2 < len(raw); i += 3 {
			next := int(raw[i+1])
			if raw[i+1] == 255 {
				next = End
			}
			tr.Events = append(tr.Events, Event{
				Block: int(raw[i]) - 2, // negatives reachable
				Taken: raw[i+2]&1 == 1,
				Next:  next,
			})
		}

		refsErr := tr.ValidateRefs(numBlocks)
		chainErr := tr.Validate(numBlocks)
		if refsErr != nil && chainErr == nil {
			t.Fatalf("Validate accepted a trace ValidateRefs rejects: %v", refsErr)
		}
		if refsErr == nil {
			for i, e := range tr.Events {
				if e.Block < 0 || e.Block >= numBlocks {
					t.Fatalf("ValidateRefs accepted event %d with block %d of %d",
						i, e.Block, numBlocks)
				}
				if e.Next != End && (e.Next < 0 || e.Next >= numBlocks) {
					t.Fatalf("ValidateRefs accepted event %d with successor %d of %d",
						i, e.Next, numBlocks)
				}
			}
		}
	})
}
