package trace

import (
	"errors"
	"fmt"
	"sync"
)

// This file is the streaming face of the package: a trace delivered as a
// bounded sequence of fixed-capacity chunks instead of one in-memory
// []Event slice. Producers (emu.StochasticStream, or any generator that
// fills a ChanStream) hand chunks across a bounded channel; consumers
// (Sim.RunStream, cache.RunSharded, the stream validators below) replay
// them incrementally and recycle each chunk into a sync.Pool, so peak
// memory is set by the chunk size and channel depth — never by the
// trace length. SliceStream adapts an already materialized Trace to the
// same interface with zero-copy subslice chunks, which is how the slice
// APIs (Validate, BlockCounts, Footprint, Sim.Run) share one
// incremental implementation with the long-horizon streaming paths.

// DefaultChunkEvents is the chunk capacity streams use when the caller
// passes a non-positive size: large enough to amortize per-chunk
// overhead, small enough that a handful of in-flight chunks stay in
// cache (8192 events x 24 B = 192 KB per chunk).
const DefaultChunkEvents = 8192

// DefaultStreamDepth is the producer/consumer channel depth used when
// the caller passes a non-positive depth: enough slack that a bursty
// producer and a bursty consumer overlap, while bounding in-flight
// chunks (and with them peak memory) to depth+2 chunks.
const DefaultStreamDepth = 4

// ErrMalformedTrace marks a trace (or trace chunk) whose events
// reference blocks or successors out of range, or whose successor chain
// is inconsistent. Every validation error of this package wraps it.
var ErrMalformedTrace = errors.New("trace: malformed trace")

// Chunk is one window of a streamed trace. Events holds up to the
// stream's chunk capacity; First is the global index of Events[0]
// within the whole trace, so diagnostics can name absolute event
// offsets regardless of chunking. Ops/MOPs are the producer's dynamic
// operation counts for this chunk: their stream-wide sum equals the
// materialized trace's totals (producers that cannot attribute
// per-chunk counts — SliceStream slicing a Trace that only records
// totals — ride the full totals on the final chunk).
type Chunk struct {
	Events []Event
	Ops    int64
	MOPs   int64
	First  int64
}

// Stream delivers a trace incrementally. Next returns chunks in trace
// order and nil at end of stream (or the producer's terminal error);
// the consumer must Recycle every chunk it is done with — chunks may be
// pooled and reused for later windows. Next is single-consumer;
// Recycle is safe from any goroutine, so window-parallel consumers can
// recycle from their workers. Close abandons the stream early,
// releasing the producer; it is idempotent and implied by draining the
// stream to its end.
type Stream interface {
	// Name labels the trace (the benchmark name).
	Name() string
	// Next returns the next chunk, or (nil, nil) at end of stream, or
	// (nil, err) when the producer failed.
	Next() (*Chunk, error)
	// Recycle returns a chunk to the stream for reuse. The caller must
	// not touch the chunk afterwards.
	Recycle(*Chunk)
	// Close abandons the stream, unblocking its producer.
	Close()
}

// SliceStream adapts a materialized Trace to the Stream interface:
// chunks alias subslices of the trace's events (zero copy), the trace's
// Ops/MOPs totals ride the final chunk, and Recycle is a no-op. An
// empty trace yields a single empty chunk so its totals still arrive.
type SliceStream struct {
	tr    *Trace
	chunk int
	pos   int
	done  bool
}

// NewSliceStream returns a stream over tr with the given chunk size
// (<= 0 selects DefaultChunkEvents).
func NewSliceStream(tr *Trace, chunkEvents int) *SliceStream {
	if chunkEvents <= 0 {
		chunkEvents = DefaultChunkEvents
	}
	return &SliceStream{tr: tr, chunk: chunkEvents}
}

// Name implements Stream.
func (s *SliceStream) Name() string { return s.tr.Name }

// Next implements Stream.
func (s *SliceStream) Next() (*Chunk, error) {
	if s.done {
		return nil, nil
	}
	end := s.pos + s.chunk
	if end >= len(s.tr.Events) {
		end = len(s.tr.Events)
	}
	c := &Chunk{Events: s.tr.Events[s.pos:end], First: int64(s.pos)}
	if end == len(s.tr.Events) {
		// The final chunk carries the trace's operation totals.
		c.Ops, c.MOPs = s.tr.Ops, s.tr.MOPs
		s.done = true
	}
	s.pos = end
	return c, nil
}

// Recycle implements Stream. Slice chunks alias the trace; nothing to
// reuse.
func (s *SliceStream) Recycle(*Chunk) {}

// Close implements Stream.
func (s *SliceStream) Close() { s.done = true }

// ChanStream is the consumer half of a bounded producer/consumer trace
// stream: a producer goroutine fills pooled fixed-capacity chunks
// through the paired Producer and hands them across a bounded channel.
// Recycled chunks return to a sync.Pool and are reused by the producer,
// so a steady-state stream allocates a fixed working set of chunks no
// matter how many events flow through it.
type ChanStream struct {
	name string
	ch   chan *Chunk
	errc chan error
	stop chan struct{}
	pool *sync.Pool

	once sync.Once
	done bool
	err  error
}

// Producer is the filling half of a ChanStream. Exactly one goroutine
// may use it: Append events until the trace is complete (or Append
// reports the consumer abandoned the stream), then Close it exactly
// once with the terminal error, nil for a clean end of stream.
type Producer struct {
	s    *ChanStream
	cur  *Chunk
	cap  int
	next int64 // global index of the next appended event
}

// NewChanStream returns a bounded stream and its producer.
// chunkEvents <= 0 selects DefaultChunkEvents; depth <= 0 selects
// DefaultStreamDepth. Peak memory is (depth+2) chunks: depth in the
// channel, one being filled, one being consumed.
func NewChanStream(name string, chunkEvents, depth int) (*ChanStream, *Producer) {
	if chunkEvents <= 0 {
		chunkEvents = DefaultChunkEvents
	}
	if depth <= 0 {
		depth = DefaultStreamDepth
	}
	s := &ChanStream{
		name: name,
		ch:   make(chan *Chunk, depth),
		errc: make(chan error, 1),
		stop: make(chan struct{}, 1),
		pool: &sync.Pool{New: func() any {
			return &Chunk{Events: make([]Event, 0, chunkEvents)}
		}},
	}
	return s, &Producer{s: s, cap: chunkEvents}
}

// Name implements Stream.
func (s *ChanStream) Name() string { return s.name }

// Next implements Stream.
func (s *ChanStream) Next() (*Chunk, error) {
	if s.done {
		return nil, s.err
	}
	c, ok := <-s.ch
	if !ok {
		s.done = true
		s.err = <-s.errc
		return nil, s.err
	}
	return c, nil
}

// Recycle implements Stream: the chunk is reset and returned to the
// pool for the producer to refill.
func (s *ChanStream) Recycle(c *Chunk) {
	if c == nil {
		return
	}
	c.Events = c.Events[:0]
	c.Ops, c.MOPs, c.First = 0, 0, 0
	s.pool.Put(c)
}

// Close implements Stream: it signals the producer to stop. Safe to
// call at any time, from the consumer side only.
func (s *ChanStream) Close() {
	s.once.Do(func() { close(s.stop) })
}

// Append adds one event (with its dynamic operation counts) to the
// stream, flushing a chunk to the consumer whenever one fills. It
// reports false when the consumer closed the stream — the producer
// should stop generating and Close.
func (p *Producer) Append(ev Event, ops, mops int64) bool {
	if p.cur == nil {
		p.cur = p.s.pool.Get().(*Chunk)
		p.cur.First = p.next
	}
	p.cur.Events = append(p.cur.Events, ev)
	p.cur.Ops += ops
	p.cur.MOPs += mops
	p.next++
	if len(p.cur.Events) < p.cap {
		return true
	}
	return p.flush()
}

// flush hands the current chunk to the consumer, honouring an early
// consumer Close.
func (p *Producer) flush() bool {
	if p.cur == nil || len(p.cur.Events) == 0 {
		return true
	}
	select {
	case p.s.ch <- p.cur:
		p.cur = nil
		return true
	case <-p.s.stop:
		p.s.Recycle(p.cur)
		p.cur = nil
		return false
	}
}

// Close flushes any partial chunk and terminates the stream with err
// (nil for a clean end). It must be called exactly once, after which
// the Producer must not be used.
func (p *Producer) Close(err error) {
	p.flush()
	p.s.errc <- err
	close(p.s.ch)
}

// Collect drains a stream into a materialized Trace — the reassembly
// half of the chunker round-trip, used by tests and by callers that
// need random access after streaming.
func Collect(s Stream) (*Trace, error) {
	tr := &Trace{Name: s.Name()}
	for {
		c, err := s.Next()
		if err != nil {
			return nil, err
		}
		if c == nil {
			return tr, nil
		}
		tr.Events = append(tr.Events, c.Events...)
		tr.Ops += c.Ops
		tr.MOPs += c.MOPs
		s.Recycle(c)
	}
}

// ValidateChunk checks that every event of one chunk references blocks
// inside [0, numBlocks) — the per-window precondition the streaming
// simulators enforce before replaying a chunk. Offsets in errors are
// absolute event indices (Chunk.First-relative), never chunk-local.
func ValidateChunk(c *Chunk, numBlocks int) error {
	for i, e := range c.Events {
		if e.Block < 0 || e.Block >= numBlocks {
			return fmt.Errorf("%w: event %d references block %d of %d",
				ErrMalformedTrace, c.First+int64(i), e.Block, numBlocks)
		}
		if e.Next != End && (e.Next < 0 || e.Next >= numBlocks) {
			return fmt.Errorf("%w: event %d has bad successor %d",
				ErrMalformedTrace, c.First+int64(i), e.Next)
		}
	}
	return nil
}

// ValidateStreamRefs drains a stream, checking every chunk with
// ValidateChunk. It is the streaming face of Trace.ValidateRefs.
func ValidateStreamRefs(s Stream, numBlocks int) error {
	for {
		c, err := s.Next()
		if err != nil {
			return err
		}
		if c == nil {
			return nil
		}
		verr := ValidateChunk(c, numBlocks)
		s.Recycle(c)
		if verr != nil {
			return verr
		}
	}
}

// ValidateStream drains a stream, checking references (ValidateChunk)
// and successor-chain consistency across chunk boundaries: each event's
// Next must name the block the following event executes, wherever the
// chunk seams fall. It is the streaming face of Trace.Validate.
func ValidateStream(s Stream, numBlocks int) error {
	havePrev := false
	var prev Event
	var prevIdx int64
	for {
		c, err := s.Next()
		if err != nil {
			return err
		}
		if c == nil {
			return nil
		}
		verr := ValidateChunk(c, numBlocks)
		if verr == nil {
			for i, e := range c.Events {
				idx := c.First + int64(i)
				if havePrev && prev.Next != e.Block {
					verr = fmt.Errorf("%w: event %d Next=%d but event %d executes %d",
						ErrMalformedTrace, prevIdx, prev.Next, idx, e.Block)
					break
				}
				prev, prevIdx, havePrev = e, idx, true
			}
		}
		s.Recycle(c)
		if verr != nil {
			return verr
		}
	}
}

// BlockCountsStream drains a stream into per-block execution counts —
// the streaming face of Trace.BlockCounts. Events referencing blocks
// outside [0, numBlocks) return an error wrapping ErrMalformedTrace.
func BlockCountsStream(s Stream, numBlocks int) ([]int64, error) {
	counts := make([]int64, numBlocks)
	for {
		c, err := s.Next()
		if err != nil {
			return nil, err
		}
		if c == nil {
			return counts, nil
		}
		verr := ValidateChunk(c, numBlocks)
		if verr == nil {
			for _, e := range c.Events {
				counts[e.Block]++
			}
		}
		s.Recycle(c)
		if verr != nil {
			return nil, verr
		}
	}
}

// FootprintStream drains a stream and reports how many distinct blocks
// it touches — the streaming face of Trace.Footprint.
func FootprintStream(s Stream, numBlocks int) (int, error) {
	counts, err := BlockCountsStream(s, numBlocks)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, c := range counts {
		if c > 0 {
			n++
		}
	}
	return n, nil
}
