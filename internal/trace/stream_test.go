package trace

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomTrace builds a chain-consistent trace of n events over numBlocks
// blocks from a fixed-seed PRNG.
func randomTrace(r *rand.Rand, n, numBlocks int) *Trace {
	tr := &Trace{Name: "rnd"}
	if n == 0 {
		return tr
	}
	cur := r.Intn(numBlocks)
	for i := 0; i < n; i++ {
		next := r.Intn(numBlocks)
		if i == n-1 {
			next = End
		}
		tr.Events = append(tr.Events, Event{
			Block: cur,
			Taken: r.Intn(2) == 1,
			Next:  next,
		})
		cur = next
	}
	tr.Ops = int64(n) * 7
	tr.MOPs = int64(n) * 3
	return tr
}

// chunkSizes returns the chunk-size edge cases for a trace of length n:
// 1, 2, 3, n-1, n, n+1, plus the default.
func chunkSizes(n int) []int {
	sizes := []int{1, 2, 3, 0}
	if n > 1 {
		sizes = append(sizes, n-1)
	}
	if n > 0 {
		sizes = append(sizes, n, n+1)
	}
	return sizes
}

// TestSliceStreamRoundTrip is the chunker property test: any trace
// round-trips through chunk/stream/reassemble byte-identically for
// arbitrary chunk sizes, including 1 and len+1.
func TestSliceStreamRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 7, 100, 1000} {
		tr := randomTrace(r, n, 10)
		for _, cs := range chunkSizes(n) {
			got, err := Collect(NewSliceStream(tr, cs))
			if err != nil {
				t.Fatalf("n=%d chunk=%d: %v", n, cs, err)
			}
			if got.Name != tr.Name || got.Ops != tr.Ops || got.MOPs != tr.MOPs {
				t.Fatalf("n=%d chunk=%d: header got %q/%d/%d want %q/%d/%d",
					n, cs, got.Name, got.Ops, got.MOPs, tr.Name, tr.Ops, tr.MOPs)
			}
			if len(got.Events) != len(tr.Events) {
				t.Fatalf("n=%d chunk=%d: %d events, want %d",
					n, cs, len(got.Events), len(tr.Events))
			}
			if n > 0 && !reflect.DeepEqual(got.Events, tr.Events) {
				t.Fatalf("n=%d chunk=%d: events differ", n, cs)
			}
		}
	}
}

// TestSliceStreamChunkOffsets verifies First carries the global index of
// each chunk's leading event, whatever the chunk size.
func TestSliceStreamChunkOffsets(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(3)), 10, 5)
	for _, cs := range []int{1, 3, 4, 10, 11} {
		s := NewSliceStream(tr, cs)
		var want int64
		for {
			c, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if c == nil {
				break
			}
			if c.First != want {
				t.Fatalf("chunk=%d: First=%d want %d", cs, c.First, want)
			}
			want += int64(len(c.Events))
			s.Recycle(c)
		}
		if want != int64(len(tr.Events)) {
			t.Fatalf("chunk=%d: streamed %d events, want %d", cs, want, len(tr.Events))
		}
	}
}

// TestChanStreamRoundTrip pushes a trace through the bounded
// producer/consumer channel stream and checks byte-identical
// reassembly, with per-chunk Ops/MOPs attribution summing to the
// totals.
func TestChanStreamRoundTrip(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(5)), 777, 9)
	for _, cs := range []int{1, 2, 13, 777, 778} {
		for _, depth := range []int{1, 2, 4} {
			s, p := NewChanStream(tr.Name, cs, depth)
			go func() {
				for _, ev := range tr.Events {
					if !p.Append(ev, 7, 3) {
						p.Close(nil)
						return
					}
				}
				p.Close(nil)
			}()
			got, err := Collect(s)
			if err != nil {
				t.Fatalf("chunk=%d depth=%d: %v", cs, depth, err)
			}
			if !reflect.DeepEqual(got.Events, tr.Events) {
				t.Fatalf("chunk=%d depth=%d: events differ", cs, depth)
			}
			if got.Ops != tr.Ops || got.MOPs != tr.MOPs {
				t.Fatalf("chunk=%d depth=%d: ops %d/%d want %d/%d",
					cs, depth, got.Ops, got.MOPs, tr.Ops, tr.MOPs)
			}
		}
	}
}

// TestChanStreamProducerError checks that a producer's terminal error
// surfaces from Next after the queued chunks drain, and keeps
// surfacing on repeated calls.
func TestChanStreamProducerError(t *testing.T) {
	boom := errors.New("boom")
	s, p := NewChanStream("t", 2, 1)
	go func() {
		p.Append(Event{Block: 0, Next: End}, 1, 1)
		p.Close(boom)
	}()
	c, err := s.Next()
	if err != nil || c == nil || len(c.Events) != 1 {
		t.Fatalf("first Next = (%v, %v), want the flushed chunk", c, err)
	}
	s.Recycle(c)
	for i := 0; i < 2; i++ {
		if _, err := s.Next(); !errors.Is(err, boom) {
			t.Fatalf("Next #%d err = %v, want boom", i, err)
		}
	}
}

// TestChanStreamConsumerClose checks that an abandoning consumer
// unblocks a producer stuck on a full channel, and that Append then
// reports false.
func TestChanStreamConsumerClose(t *testing.T) {
	s, p := NewChanStream("t", 1, 1)
	stopped := make(chan bool, 1)
	go func() {
		ok := true
		for i := 0; i < 1000 && ok; i++ {
			ok = p.Append(Event{Block: 0, Next: End}, 1, 1)
		}
		p.Close(nil)
		stopped <- ok
	}()
	c, err := s.Next()
	if err != nil || c == nil {
		t.Fatalf("Next = (%v, %v)", c, err)
	}
	s.Recycle(c)
	s.Close()
	if ok := <-stopped; ok {
		t.Fatal("producer never observed the consumer Close")
	}
}

// TestValidateStreamMatchesSlice checks the streaming validators agree
// with the slice validators on valid, broken-chain and out-of-range
// traces across chunk sizes — including seams that split the fault.
func TestValidateStreamMatchesSlice(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	base := randomTrace(r, 50, 6)
	corrupt := func(f func(*Trace)) *Trace {
		tr := &Trace{Name: base.Name, Events: append([]Event(nil), base.Events...)}
		f(tr)
		return tr
	}
	cases := []struct {
		name string
		tr   *Trace
	}{
		{"valid", base},
		{"bad-block", corrupt(func(tr *Trace) { tr.Events[20].Block = 99 })},
		{"neg-block", corrupt(func(tr *Trace) { tr.Events[0].Block = -1 })},
		{"bad-next", corrupt(func(tr *Trace) { tr.Events[33].Next = -7 })},
		{"broken-chain", corrupt(func(tr *Trace) { tr.Events[10].Next = (tr.Events[11].Block + 1) % 6 })},
	}
	for _, tc := range cases {
		wantRefs := tc.tr.ValidateRefs(6)
		wantChain := tc.tr.Validate(6)
		for _, cs := range []int{1, 7, 11, 50, 51} {
			gotRefs := ValidateStreamRefs(NewSliceStream(tc.tr, cs), 6)
			gotChain := ValidateStream(NewSliceStream(tc.tr, cs), 6)
			if (gotRefs == nil) != (wantRefs == nil) {
				t.Errorf("%s chunk=%d: refs err %v, slice %v", tc.name, cs, gotRefs, wantRefs)
			}
			if (gotChain == nil) != (wantChain == nil) {
				t.Errorf("%s chunk=%d: chain err %v, slice %v", tc.name, cs, gotChain, wantChain)
			}
			if gotRefs != nil && gotRefs.Error() != wantRefs.Error() {
				t.Errorf("%s chunk=%d: refs message %q, slice %q",
					tc.name, cs, gotRefs, wantRefs)
			}
			if gotChain != nil && gotChain.Error() != wantChain.Error() {
				t.Errorf("%s chunk=%d: chain message %q, slice %q",
					tc.name, cs, gotChain, wantChain)
			}
		}
	}
}

// TestCorruptChunkErrorOffsets is the error-path coverage for corrupt
// mid-stream chunks: the typed ErrMalformedTrace sentinel is preserved
// and the reported offset is the absolute event index, not a
// chunk-local one.
func TestCorruptChunkErrorOffsets(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(23)), 40, 5)
	tr.Events[27].Block = 77 // lands mid-stream for every small chunk size
	for _, cs := range []int{1, 3, 10, 13} {
		for _, check := range []struct {
			name string
			run  func(Stream) error
		}{
			{"refs", func(s Stream) error { return ValidateStreamRefs(s, 5) }},
			{"chain", func(s Stream) error { return ValidateStream(s, 5) }},
			{"counts", func(s Stream) error { _, err := BlockCountsStream(s, 5); return err }},
			{"footprint", func(s Stream) error { _, err := FootprintStream(s, 5); return err }},
		} {
			err := check.run(NewSliceStream(tr, cs))
			if !errors.Is(err, ErrMalformedTrace) {
				t.Fatalf("%s chunk=%d: err = %v, want ErrMalformedTrace", check.name, cs, err)
			}
			if !strings.Contains(err.Error(), "event 27") {
				t.Fatalf("%s chunk=%d: err %q does not name absolute event 27",
					check.name, cs, err)
			}
		}
	}
}

// TestCorruptSeamChainError places a chain break exactly on a chunk
// seam and checks the error names the absolute indices on both sides.
func TestCorruptSeamChainError(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(29)), 20, 4)
	tr.Events[9].Next = (tr.Events[10].Block + 1) % 4
	err := ValidateStream(NewSliceStream(tr, 10), 4) // seam between events 9 and 10
	if !errors.Is(err, ErrMalformedTrace) {
		t.Fatalf("err = %v, want ErrMalformedTrace", err)
	}
	want := fmt.Sprintf("event 9 Next=%d but event 10 executes %d",
		tr.Events[9].Next, tr.Events[10].Block)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("err %q missing %q", err, want)
	}
}

// TestTraceValidateWrapsSentinel checks the slice-API error paths now
// carry the typed sentinel too.
func TestTraceValidateWrapsSentinel(t *testing.T) {
	tr := sample()
	tr.Events[1].Block = 9
	if err := tr.ValidateRefs(3); !errors.Is(err, ErrMalformedTrace) {
		t.Errorf("ValidateRefs err = %v, want ErrMalformedTrace", err)
	}
	tr = sample()
	tr.Events[0].Next = 2
	if err := tr.Validate(3); !errors.Is(err, ErrMalformedTrace) {
		t.Errorf("Validate err = %v, want ErrMalformedTrace", err)
	}
}

// TestBlockCountsFootprintStream checks the streaming aggregators agree
// with the slice versions across chunk sizes.
func TestBlockCountsFootprintStream(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(31)), 200, 8)
	wantCounts := tr.BlockCounts(8)
	wantFP := tr.Footprint(8)
	for _, cs := range []int{1, 9, 200, 201} {
		counts, err := BlockCountsStream(NewSliceStream(tr, cs), 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(counts, wantCounts) {
			t.Fatalf("chunk=%d: counts %v want %v", cs, counts, wantCounts)
		}
		fp, err := FootprintStream(NewSliceStream(tr, cs), 8)
		if err != nil {
			t.Fatal(err)
		}
		if fp != wantFP {
			t.Fatalf("chunk=%d: footprint %d want %d", cs, fp, wantFP)
		}
	}
}

// TestSliceStreamEmptyTrace checks the empty trace still delivers its
// totals through exactly one empty chunk.
func TestSliceStreamEmptyTrace(t *testing.T) {
	tr := &Trace{Name: "empty", Ops: 5, MOPs: 2}
	s := NewSliceStream(tr, 4)
	c, err := s.Next()
	if err != nil || c == nil {
		t.Fatalf("Next = (%v, %v), want the totals chunk", c, err)
	}
	if len(c.Events) != 0 || c.Ops != 5 || c.MOPs != 2 {
		t.Fatalf("chunk = %+v", c)
	}
	if c2, err := s.Next(); c2 != nil || err != nil {
		t.Fatalf("second Next = (%v, %v), want end of stream", c2, err)
	}
}
