package trace

import "testing"

func sample() *Trace {
	return &Trace{
		Name: "t",
		Events: []Event{
			{Block: 0, Taken: false, Next: 1},
			{Block: 1, Taken: true, Next: 0},
			{Block: 0, Taken: false, Next: 2},
			{Block: 2, Taken: true, Next: End},
		},
		Ops: 40, MOPs: 16,
	}
}

func TestValidateOK(t *testing.T) {
	tr := sample()
	if err := tr.Validate(3); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestValidateBadBlock(t *testing.T) {
	tr := sample()
	tr.Events[1].Block = 9
	if err := tr.Validate(3); err == nil {
		t.Error("accepted out-of-range block")
	}
}

func TestValidateBrokenChain(t *testing.T) {
	tr := sample()
	tr.Events[0].Next = 2 // but event 1 executes block 1
	if err := tr.Validate(3); err == nil {
		t.Error("accepted inconsistent successor chain")
	}
}

func TestValidateBadSuccessor(t *testing.T) {
	tr := sample()
	tr.Events[3].Next = 77
	if err := tr.Validate(3); err == nil {
		t.Error("accepted out-of-range successor")
	}
}

func TestBlockCounts(t *testing.T) {
	tr := sample()
	counts := tr.BlockCounts(3)
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestFootprint(t *testing.T) {
	tr := sample()
	if fp := tr.Footprint(3); fp != 3 {
		t.Errorf("footprint = %d, want 3", fp)
	}
}
