// Package cliio is the report-writing discipline behind the typederr
// analyzer's no-discard rule. CLI report code wants to print dozens of
// lines without threading an error check through every one; dropping
// fmt.Fprintf results on the floor instead means a full disk or closed
// pipe goes unnoticed and the tool exits 0 with a truncated report.
// Writer latches the first write error and skips subsequent writes, so
// report code prints unconditionally and surfaces the failure exactly
// once, at exit, via Err.
package cliio

import (
	"fmt"
	"io"
	"os"
)

// Writer wraps an io.Writer with error latching.
type Writer struct {
	w   io.Writer
	err error
}

// New returns a latching writer over w.
func New(w io.Writer) *Writer { return &Writer{w: w} }

// Printf formats to the underlying writer, latching any error.
func (w *Writer) Printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintf(w.w, format, args...)
}

// Println writes the operands and a newline, latching any error.
func (w *Writer) Println(args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintln(w.w, args...)
}

// Print writes the operands, latching any error.
func (w *Writer) Print(args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprint(w.w, args...)
}

// Write implements io.Writer with the same latching, so emitters that
// take an io.Writer can share the report stream.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.w.Write(p)
	w.err = err
	return n, err
}

// Err returns the first write error, or nil.
func (w *Writer) Err() error { return w.err }

// WriteFile creates path, runs emit against the file, and closes it,
// returning the first error from any step — the close error included,
// which a bare defer f.Close() would discard after a buffered write.
func WriteFile(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("%w (and closing %s: %v)", err, path, cerr)
		}
		return err
	}
	return f.Close()
}
