package cliio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failAfter accepts n writes, then fails every subsequent one.
type failAfter struct {
	n    int
	got  strings.Builder
	fail error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.fail
	}
	f.n--
	return f.got.Write(p)
}

func TestWriterLatchesFirstError(t *testing.T) {
	sink := &failAfter{n: 2, fail: errors.New("pipe gone")}
	w := New(sink)
	w.Printf("a %d\n", 1)
	w.Println("b")
	if w.Err() != nil {
		t.Fatalf("error before the writer failed: %v", w.Err())
	}
	w.Print("c") // first failing write latches
	w.Printf("d")
	w.Println("e")
	if !errors.Is(w.Err(), sink.fail) {
		t.Fatalf("Err() = %v, want the sink's error", w.Err())
	}
	if got := sink.got.String(); got != "a 1\nb\n" {
		t.Fatalf("underlying writer got %q; writes after the latch must be skipped", got)
	}
	if n, err := w.Write([]byte("f")); n != 0 || !errors.Is(err, sink.fail) {
		t.Fatalf("Write after latch = (%d, %v), want (0, latched error)", n, err)
	}
}

func TestWriterCleanRun(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	w.Printf("%s=%d ", "x", 7)
	w.Print("y")
	w.Println()
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	if sb.String() != "x=7 y\n" {
		t.Fatalf("got %q", sb.String())
	}
}

func TestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, func(f io.Writer) error {
		_, err := io.WriteString(f, "content\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "content\n" {
		t.Fatalf("got %q", data)
	}

	// An emit error must win over (and report) any close error, and the
	// file must still be closed.
	sentinel := errors.New("emit failed")
	err = WriteFile(filepath.Join(t.TempDir(), "bad.txt"), func(io.Writer) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("WriteFile = %v, want the emit error", err)
	}

	// Creation failures surface directly.
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir.txt"),
		func(io.Writer) error { return nil }); err == nil {
		t.Fatal("WriteFile created a file under a missing directory")
	}
}
