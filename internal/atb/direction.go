package atb

import "fmt"

// DirectionPredictor predicts the taken/not-taken outcome of a block's
// terminating branch. The paper uses a per-block 2-bit saturating counter
// (Smith's bimodal predictor) and names gshare and the Yeh/Patt PAs
// two-level predictor as the "more complex branch predictors [that] could
// be used" — its future work. All three are implemented here and can be
// plugged into the ATB.
type DirectionPredictor interface {
	// Predict returns the predicted outcome for a block's terminator.
	Predict(block int) bool
	// Update trains the predictor with the actual outcome.
	Update(block int, taken bool)
	// Name identifies the predictor in reports.
	Name() string
	// Snapshot returns a copy of the predictor's behavioral state — the
	// checkpoint face used by speculative window-parallel replay. The
	// returned state aliases nothing: mutating the predictor afterwards
	// must not change an already-taken snapshot.
	Snapshot() PredictorState
	// Restore overwrites the predictor's state with a snapshot taken
	// from an identically configured predictor. The snapshot itself is
	// not retained or mutated, so one snapshot may seed many instances.
	Restore(PredictorState)
}

// PredictorState is the behavioral checkpoint of a DirectionPredictor:
// everything that decides future predictions, and nothing else. One
// struct covers all built-in predictors — Bimodal uses Counters (its
// per-block table), GShare uses Counters (shared table) plus History,
// PAs uses Counters (pattern table) plus Histories. Two states compare
// equal exactly when the predictors would behave identically on every
// future input.
type PredictorState struct {
	Counters  []uint8  // bimodal per-block / gshare shared / PAs pattern table
	History   uint32   // gshare global history register
	Histories []uint16 // PAs per-block history registers
}

// Equal reports whether two predictor states are bit-identical.
func (s PredictorState) Equal(o PredictorState) bool {
	if s.History != o.History ||
		len(s.Counters) != len(o.Counters) ||
		len(s.Histories) != len(o.Histories) {
		return false
	}
	for i, c := range s.Counters {
		if o.Counters[i] != c {
			return false
		}
	}
	for i, h := range s.Histories {
		if o.Histories[i] != h {
			return false
		}
	}
	return true
}

// counterPredict is the shared 2-bit saturating counter update rule.
func counterUpdate(c *uint8, taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// Bimodal is the paper's baseline: one 2-bit saturating counter per block
// entry, coupled with the ATB.
type Bimodal struct {
	counters []uint8
}

// NewBimodal builds the per-block counter table, initialized weakly
// not-taken so fall-through blocks predict correctly from the start.
func NewBimodal(blocks int) *Bimodal {
	b := &Bimodal{counters: make([]uint8, blocks)}
	for i := range b.counters {
		b.counters[i] = 1
	}
	return b
}

// Name implements DirectionPredictor.
func (*Bimodal) Name() string { return "bimodal" }

// Predict implements DirectionPredictor.
func (b *Bimodal) Predict(block int) bool { return b.counters[block] >= 2 }

// Update implements DirectionPredictor.
func (b *Bimodal) Update(block int, taken bool) {
	counterUpdate(&b.counters[block], taken)
}

// Snapshot implements DirectionPredictor.
func (b *Bimodal) Snapshot() PredictorState {
	return PredictorState{Counters: append([]uint8(nil), b.counters...)}
}

// Restore implements DirectionPredictor.
func (b *Bimodal) Restore(s PredictorState) { copy(b.counters, s.Counters) }

// GShare is McFarling's global-history predictor: the global branch
// history register XORed with the block address indexes one shared table
// of 2-bit counters.
type GShare struct {
	histBits int
	history  uint32
	table    []uint8
}

// NewGShare builds a gshare predictor with 2^histBits counters.
func NewGShare(histBits int) (*GShare, error) {
	if histBits < 1 || histBits > 24 {
		return nil, fmt.Errorf("atb: gshare history bits %d outside [1,24]", histBits)
	}
	g := &GShare{histBits: histBits, table: make([]uint8, 1<<uint(histBits))}
	for i := range g.table {
		g.table[i] = 1
	}
	return g, nil
}

// Name implements DirectionPredictor.
func (g *GShare) Name() string { return "gshare" }

func (g *GShare) index(block int) uint32 {
	mask := uint32(1)<<uint(g.histBits) - 1
	return (uint32(block) ^ g.history) & mask
}

// Predict implements DirectionPredictor.
func (g *GShare) Predict(block int) bool { return g.table[g.index(block)] >= 2 }

// Update implements DirectionPredictor.
func (g *GShare) Update(block int, taken bool) {
	counterUpdate(&g.table[g.index(block)], taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
}

// Snapshot implements DirectionPredictor.
func (g *GShare) Snapshot() PredictorState {
	return PredictorState{
		Counters: append([]uint8(nil), g.table...),
		History:  g.history,
	}
}

// Restore implements DirectionPredictor.
func (g *GShare) Restore(s PredictorState) {
	copy(g.table, s.Counters)
	g.history = s.History
}

// PAs is the Yeh/Patt two-level per-address predictor: each block keeps a
// local history register that indexes a shared pattern table of 2-bit
// counters.
type PAs struct {
	histBits  int
	histories []uint16
	pattern   []uint8
}

// NewPAs builds a PAs predictor with per-block histories of histBits bits.
func NewPAs(blocks, histBits int) (*PAs, error) {
	if histBits < 1 || histBits > 16 {
		return nil, fmt.Errorf("atb: PAs history bits %d outside [1,16]", histBits)
	}
	p := &PAs{
		histBits:  histBits,
		histories: make([]uint16, blocks),
		pattern:   make([]uint8, 1<<uint(histBits)),
	}
	for i := range p.pattern {
		p.pattern[i] = 1
	}
	return p, nil
}

// Name implements DirectionPredictor.
func (*PAs) Name() string { return "PAs" }

func (p *PAs) index(block int) uint16 {
	mask := uint16(1)<<uint(p.histBits) - 1
	return p.histories[block] & mask
}

// Predict implements DirectionPredictor.
func (p *PAs) Predict(block int) bool { return p.pattern[p.index(block)] >= 2 }

// Update implements DirectionPredictor.
func (p *PAs) Update(block int, taken bool) {
	counterUpdate(&p.pattern[p.index(block)], taken)
	p.histories[block] <<= 1
	if taken {
		p.histories[block] |= 1
	}
}

// Snapshot implements DirectionPredictor.
func (p *PAs) Snapshot() PredictorState {
	return PredictorState{
		Counters:  append([]uint8(nil), p.pattern...),
		Histories: append([]uint16(nil), p.histories...),
	}
}

// Restore implements DirectionPredictor.
func (p *PAs) Restore(s PredictorState) {
	copy(p.pattern, s.Counters)
	copy(p.histories, s.Histories)
}
