package atb

import "testing"

func mkATB(n, capacity int) *ATB {
	infos := make([]BlockInfo, n)
	for i := range infos {
		infos[i] = BlockInfo{FallTarget: i + 1}
	}
	infos[n-1].FallTarget = -1
	return New(infos, capacity)
}

func TestPredictColdIsFallThrough(t *testing.T) {
	a := mkATB(4, 0)
	next, taken := a.Predict(0)
	if taken || next != 1 {
		t.Errorf("cold prediction = (%d, %v), want (1, false)", next, taken)
	}
}

func TestCounterSaturation(t *testing.T) {
	a := mkATB(4, 0)
	for i := 0; i < 10; i++ {
		if err := a.Update(0, true, 3); err != nil {
			t.Fatal(err)
		}
	}
	if a.Counter(0) != 3 {
		t.Errorf("counter = %d, want saturated 3", a.Counter(0))
	}
	for i := 0; i < 10; i++ {
		if err := a.Update(0, false, 1); err != nil {
			t.Fatal(err)
		}
	}
	if a.Counter(0) != 0 {
		t.Errorf("counter = %d, want saturated 0", a.Counter(0))
	}
}

func TestPredictorLearnsTakenBranch(t *testing.T) {
	a := mkATB(8, 0)
	// Two taken updates flip the 2-bit counter (init 1) to predict-taken.
	a.Update(2, true, 7)
	next, taken := a.Predict(2)
	if !taken || next != 7 {
		t.Errorf("after 1 taken: (%d,%v), want (7,true) with init-weak counter", next, taken)
	}
}

func TestPredictorTracksLastTarget(t *testing.T) {
	a := mkATB(8, 0)
	a.Update(2, true, 7)
	a.Update(2, true, 5) // target changed (e.g. return to another caller)
	next, taken := a.Predict(2)
	if !taken || next != 5 {
		t.Errorf("last-target prediction = (%d,%v), want (5,true)", next, taken)
	}
}

func TestPredictorHysteresis(t *testing.T) {
	a := mkATB(8, 0)
	for i := 0; i < 4; i++ {
		a.Update(3, true, 6)
	}
	// One not-taken must not flip a saturated counter.
	a.Update(3, false, 4)
	if _, taken := a.Predict(3); !taken {
		t.Error("single not-taken flipped a saturated taken counter")
	}
}

func TestUpdateRange(t *testing.T) {
	a := mkATB(4, 0)
	if err := a.Update(99, true, 0); err == nil {
		t.Error("Update accepted out-of-range block")
	}
	if next, taken := a.Predict(-1); next != -1 || taken {
		t.Error("Predict out-of-range should be (-1,false)")
	}
}

func TestResidencyLRU(t *testing.T) {
	a := mkATB(10, 2)
	a.Touch(0) // miss
	a.Touch(1) // miss
	a.Touch(0) // hit
	a.Touch(2) // miss, evicts 1
	a.Touch(1) // miss again
	if a.Hits != 1 || a.Misses != 4 {
		t.Errorf("hits/misses = %d/%d, want 1/4", a.Hits, a.Misses)
	}
	if r := a.HitRate(); r != 0.2 {
		t.Errorf("hit rate %g, want 0.2", r)
	}
}

func TestHighLocalityHitRate(t *testing.T) {
	// The paper's claim: high spatial locality means very low ATB
	// contention. A loopy reference stream must hit nearly always.
	a := mkATB(64, DefaultEntries)
	for rep := 0; rep < 1000; rep++ {
		for b := 0; b < 8; b++ {
			a.Touch(b)
		}
	}
	if a.HitRate() < 0.99 {
		t.Errorf("loop hit rate %.3f, want > 0.99", a.HitRate())
	}
}

// TestPredictReportsDirectionNotResidency pins the Predict contract the
// ATBStage doc in internal/cache describes: the boolean is the
// direction prediction (taken/not-taken) for the block's terminator,
// NOT whether the ATB holds the block — residency is Touch/HitRate's
// business and never changes what Predict returns.
func TestPredictReportsDirectionNotResidency(t *testing.T) {
	a := mkATB(4, 1) // capacity 1: at most one block resident at a time

	// Block 2 is trained strongly taken, then evicted from the ATB by
	// touching other blocks. Its direction prediction must survive.
	a.Update(2, true, 0)
	a.Update(2, true, 0)
	a.Touch(2)
	a.Touch(0)
	a.Touch(1) // block 2 long evicted from the single-entry buffer
	if next, taken := a.Predict(2); !taken || next != 0 {
		t.Errorf("evicted trained block: Predict = (%d, %v), want (0, true)", next, taken)
	}

	// A resident but cold block still predicts not-taken fall-through:
	// residency must not read as a taken prediction either.
	a.Touch(1)
	if next, taken := a.Predict(1); taken || next != 2 {
		t.Errorf("resident cold block: Predict = (%d, %v), want (2, false)", next, taken)
	}

	// The taken target is the LAST recorded one, tracked across
	// intervening not-taken outcomes.
	a.Update(3, true, 0) // counter 1 -> 2, target recorded
	a.Update(3, false, 0)
	a.Update(3, true, 1)
	if next, taken := a.Predict(3); !taken || next != 1 {
		t.Errorf("retrained block: Predict = (%d, %v), want (1, true)", next, taken)
	}

	// Out-of-table blocks: (-1, false), never a panic.
	if next, taken := a.Predict(99); taken || next != -1 {
		t.Errorf("out-of-table block: Predict = (%d, %v), want (-1, false)", next, taken)
	}
}
