package atb

import (
	"math/rand"
	"testing"
)

func TestBimodalBias(t *testing.T) {
	b := NewBimodal(4)
	if b.Predict(0) {
		t.Error("cold bimodal should predict not-taken")
	}
	b.Update(0, true)
	if !b.Predict(0) {
		t.Error("weakly-not-taken + taken should flip to taken")
	}
	if b.Name() != "bimodal" {
		t.Error("name")
	}
}

func TestGShareValidation(t *testing.T) {
	if _, err := NewGShare(0); err == nil {
		t.Error("accepted 0 history bits")
	}
	if _, err := NewGShare(30); err == nil {
		t.Error("accepted 30 history bits")
	}
}

func TestPAsValidation(t *testing.T) {
	if _, err := NewPAs(4, 0); err == nil {
		t.Error("accepted 0 history bits")
	}
	if _, err := NewPAs(4, 20); err == nil {
		t.Error("accepted 20 history bits")
	}
}

// trainAndScore measures accuracy of a predictor on a synthetic branch
// outcome stream.
func trainAndScore(p DirectionPredictor, outcomes []bool, block int) float64 {
	correct := 0
	for _, o := range outcomes {
		if p.Predict(block) == o {
			correct++
		}
		p.Update(block, o)
	}
	return float64(correct) / float64(len(outcomes))
}

// TestTwoLevelBeatsBimodalOnPatterns: a strictly alternating branch
// defeats a 2-bit counter but is perfectly learnable by local-history
// predictors — the motivation for the paper's future-work predictors.
func TestTwoLevelBeatsBimodalOnPatterns(t *testing.T) {
	outcomes := make([]bool, 4000)
	for i := range outcomes {
		outcomes[i] = i%2 == 0 // T,N,T,N,...
	}
	bi := trainAndScore(NewBimodal(8), outcomes, 3)
	pas, err := NewPAs(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	pa := trainAndScore(pas, outcomes, 3)
	gs, err := NewGShare(14)
	if err != nil {
		t.Fatal(err)
	}
	g := trainAndScore(gs, outcomes, 3)
	if bi > 0.6 {
		t.Errorf("bimodal accuracy %.2f on alternating branch; expected poor", bi)
	}
	if pa < 0.95 {
		t.Errorf("PAs accuracy %.2f on alternating branch; expected near-perfect", pa)
	}
	if g < 0.95 {
		t.Errorf("gshare accuracy %.2f on alternating branch; expected near-perfect", g)
	}
}

// TestAllPredictorsLearnBias: every predictor must track a strongly
// biased branch.
func TestAllPredictorsLearnBias(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	outcomes := make([]bool, 5000)
	for i := range outcomes {
		outcomes[i] = r.Float64() < 0.9
	}
	gs, _ := NewGShare(12)
	pas, _ := NewPAs(8, 8)
	for _, p := range []DirectionPredictor{NewBimodal(8), gs, pas} {
		if acc := trainAndScore(p, outcomes, 2); acc < 0.80 {
			t.Errorf("%s accuracy %.2f on 90%%-biased branch", p.Name(), acc)
		}
	}
}

func TestATBWithGShare(t *testing.T) {
	infos := make([]BlockInfo, 8)
	for i := range infos {
		infos[i] = BlockInfo{FallTarget: i + 1}
	}
	gs, err := NewGShare(10)
	if err != nil {
		t.Fatal(err)
	}
	a := NewWithPredictor(infos, 0, gs)
	if a.PredictorName() != "gshare" {
		t.Errorf("predictor name %q", a.PredictorName())
	}
	// Counter() only applies to bimodal.
	if a.Counter(0) != 0 {
		t.Error("Counter on non-bimodal should be 0")
	}
	// Target tracking still works. Enough updates for the global history
	// to saturate at all-taken so the trained table entry is the one the
	// final prediction indexes.
	for i := 0; i < 20; i++ {
		if err := a.Update(2, true, 7); err != nil {
			t.Fatal(err)
		}
	}
	if next, taken := a.Predict(2); !taken || next != 7 {
		t.Errorf("gshare ATB prediction (%d,%v)", next, taken)
	}
}
