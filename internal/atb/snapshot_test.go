package atb

import "testing"

// trainWalk drives an ATB through a deterministic mixed workload so its
// target registers, residency order and predictor counters are all
// non-trivial.
func trainWalk(a *ATB, n, steps int) {
	for i := 0; i < steps; i++ {
		b := (i * 7) % n
		a.Touch(b)
		a.Update(b, i%3 != 0, (b+i)%n)
	}
}

// TestSnapshotRestoreRoundTrip checks the checkpoint face for every
// predictor kind: a restored ATB predicts identically to the original
// on every block, snapshots compare equal, and restoring does not
// alias the snapshot (mutating the restored instance leaves the
// snapshot and its siblings untouched).
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	const n = 64
	infos := make([]BlockInfo, n)
	for i := range infos {
		infos[i] = BlockInfo{FallTarget: (i + 1) % n}
	}
	preds := map[string]func(t *testing.T) DirectionPredictor{
		"bimodal": func(*testing.T) DirectionPredictor { return NewBimodal(n) },
		"gshare": func(t *testing.T) DirectionPredictor {
			g, err := NewGShare(10)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"pas": func(t *testing.T) DirectionPredictor {
			p, err := NewPAs(n, 6)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
	for name, mk := range preds {
		a := NewWithPredictor(infos, 16, mk(t))
		trainWalk(a, n, 500)
		snap := a.Snapshot()

		b := NewWithPredictor(infos, 16, mk(t))
		b.Restore(snap)
		if !b.Snapshot().Equal(snap) {
			t.Errorf("%s: snapshot of restored ATB differs from source snapshot", name)
		}
		for blk := 0; blk < n; blk++ {
			an, at := a.Predict(blk)
			bn, bt := b.Predict(blk)
			if an != bn || at != bt {
				t.Errorf("%s: block %d predicts (%d,%v) original vs (%d,%v) restored",
					name, blk, an, at, bn, bt)
			}
		}

		// Diverge the restored copy; the snapshot must be unaffected.
		trainWalk(b, n, 100)
		if b.Snapshot().Equal(snap) {
			t.Errorf("%s: diverged ATB still equals the old snapshot", name)
		}
		c := NewWithPredictor(infos, 16, mk(t))
		c.Restore(snap)
		if !c.Snapshot().Equal(snap) {
			t.Errorf("%s: snapshot was mutated by restored instance's traffic", name)
		}
	}
}

// TestSnapshotExcludesAccounting checks the state face deliberately
// ignores the Hits/Misses counters: two behaviorally identical ATBs
// with different traffic histories snapshot equal, and Restore leaves
// the target's counters alone.
func TestSnapshotExcludesAccounting(t *testing.T) {
	infos := InfosFromFalls([]int{1, 2, 0})
	a := New(infos, 2)
	b := New(infos, 2)
	for i := 0; i < 10; i++ {
		a.Touch(0) // pure re-touches: extra hits, same behavioral state
	}
	b.Touch(0)
	if !a.Snapshot().Equal(b.Snapshot()) {
		t.Error("accounting traffic leaked into the behavioral snapshot")
	}
	hits, misses := b.Stats()
	b.Restore(a.Snapshot())
	if h2, m2 := b.Stats(); h2 != hits || m2 != misses {
		t.Errorf("Restore changed accounting counters: (%d,%d) -> (%d,%d)", hits, misses, h2, m2)
	}
}
