// Package atb models the Address Translation Buffer of paper §3.3: the
// hardware structure that maps original block addresses to encoded ones
// (caching ATT entries) and hosts the per-block next-block predictor of
// §3.4 — a 2-bit saturating counter for taken/not-taken plus a last-target
// register for the target address, with "next sequential block" as the
// not-taken prediction.
//
// The paper reports that, due to high spatial locality, the ATB has very
// low contention; the cycle model therefore charges no ATB miss penalty,
// but the buffer is still simulated (bounded capacity, LRU) so its hit
// rate can be reported and the claim checked.
package atb

import (
	"container/list"
	"fmt"
)

// DefaultEntries is the modeled ATB capacity (ATT entries resident).
const DefaultEntries = 128

// BlockInfo is the static information the ATB needs per block: the
// fall-through successor used for not-taken predictions.
type BlockInfo struct {
	FallTarget int // next sequential block (-1 if none)
}

// InfosFromFalls builds the per-block table the ATB is loaded with from
// fall-through targets (one per block, -1 for none).
func InfosFromFalls(falls []int) []BlockInfo {
	infos := make([]BlockInfo, len(falls))
	for i, f := range falls {
		infos[i] = BlockInfo{FallTarget: f}
	}
	return infos
}

// ValidateInfos checks that every fall-through target names an existing
// block or is -1 ("none") — a dangling target would make the not-taken
// prediction point outside the translatable address space.
func ValidateInfos(infos []BlockInfo) error {
	for i, info := range infos {
		if info.FallTarget != -1 && (info.FallTarget < 0 || info.FallTarget >= len(infos)) {
			return fmt.Errorf("atb: block %d fall target %d outside [0,%d)",
				i, info.FallTarget, len(infos))
		}
	}
	return nil
}

// ATB is the translation buffer plus next-block predictor.
type ATB struct {
	capacity int
	blocks   []BlockInfo

	// Direction predictor (per-block bimodal by default; gshare or PAs
	// via NewWithPredictor) plus the last-taken-target registers the
	// paper couples with the ATB entries.
	dir    DirectionPredictor
	target []int32 // last-taken-target block ID, -1 if none yet

	// Residency simulation (LRU over ATT entries).
	order   *list.List
	present map[int]*list.Element

	Hits   int64
	Misses int64
}

// New builds an ATB with the paper's per-block 2-bit counters. capacity
// <= 0 selects DefaultEntries.
func New(blocks []BlockInfo, capacity int) *ATB {
	return NewWithPredictor(blocks, capacity, NewBimodal(len(blocks)))
}

// NewWithPredictor builds an ATB with an explicit direction predictor
// (the paper's future-work gshare/PAs variants live in direction.go).
func NewWithPredictor(blocks []BlockInfo, capacity int, dir DirectionPredictor) *ATB {
	if capacity <= 0 {
		capacity = DefaultEntries
	}
	a := &ATB{
		capacity: capacity,
		blocks:   blocks,
		dir:      dir,
		target:   make([]int32, len(blocks)),
		order:    list.New(),
		present:  map[int]*list.Element{},
	}
	for i := range a.target {
		a.target[i] = -1
	}
	return a
}

// Touch simulates the ATB lookup for a block, updating residency stats.
func (a *ATB) Touch(block int) {
	if el, ok := a.present[block]; ok {
		a.Hits++
		a.order.MoveToFront(el)
		return
	}
	a.Misses++
	if a.order.Len() >= a.capacity {
		back := a.order.Back()
		delete(a.present, back.Value.(int))
		a.order.Remove(back)
	}
	a.present[block] = a.order.PushFront(block)
}

// HitRate returns the fraction of lookups that hit.
func (a *ATB) HitRate() float64 {
	total := a.Hits + a.Misses
	if total == 0 {
		return 0
	}
	return float64(a.Hits) / float64(total)
}

// Predict returns the predicted next block after `block`: the last taken
// target if the 2-bit counter predicts taken, the fall-through block
// otherwise. The boolean reports the taken prediction. A prediction of -1
// means "no idea" (cold target) and will count as a misprediction.
func (a *ATB) Predict(block int) (next int, taken bool) {
	if block < 0 || block >= len(a.blocks) {
		return -1, false
	}
	if a.dir.Predict(block) {
		return int(a.target[block]), true
	}
	return a.blocks[block].FallTarget, false
}

// Update trains the predictor with the actual outcome of a block's
// terminator: whether it left the fall-through path and where it went.
func (a *ATB) Update(block int, taken bool, actualNext int) error {
	if block < 0 || block >= len(a.blocks) {
		return fmt.Errorf("atb: block %d out of range", block)
	}
	a.dir.Update(block, taken)
	if taken {
		a.target[block] = int32(actualNext)
	}
	return nil
}

// Stats returns the cumulative residency hit/miss counts — the raw
// numbers behind HitRate, exposed so window-parallel replay can account
// per-window deltas on private ATB instances.
func (a *ATB) Stats() (hits, misses int64) { return a.Hits, a.Misses }

// State is the ATB's behavioral checkpoint: the last-taken-target
// registers, the residency LRU (resident blocks, MRU first) and the
// direction predictor's state. The Hits/Misses accounting counters are
// deliberately excluded — they never influence a prediction, and
// speculative replay accounts them as per-window deltas (Stats) so two
// checkpoints of behaviorally identical ATBs compare equal no matter
// how much traffic each has absorbed.
type State struct {
	Targets []int32 // last-taken-target block IDs, -1 if none
	Order   []int   // resident blocks, MRU first
	Dir     PredictorState
}

// Equal reports whether two ATB states are bit-identical.
func (s State) Equal(o State) bool {
	if len(s.Targets) != len(o.Targets) || len(s.Order) != len(o.Order) {
		return false
	}
	for i, t := range s.Targets {
		if o.Targets[i] != t {
			return false
		}
	}
	for i, b := range s.Order {
		if o.Order[i] != b {
			return false
		}
	}
	return s.Dir.Equal(o.Dir)
}

// Snapshot returns a copy of the ATB's behavioral state (see State).
// The snapshot aliases nothing and stays valid however the ATB is
// mutated afterwards.
func (a *ATB) Snapshot() State {
	s := State{
		Targets: append([]int32(nil), a.target...),
		Order:   make([]int, 0, a.order.Len()),
		Dir:     a.dir.Snapshot(),
	}
	for el := a.order.Front(); el != nil; el = el.Next() {
		s.Order = append(s.Order, el.Value.(int))
	}
	return s
}

// Restore overwrites the ATB's behavioral state with a snapshot taken
// from an identically configured ATB (same block table, same capacity,
// same predictor kind). The Hits/Misses counters are left untouched, so
// deltas around a restore still measure only the restored instance's
// own traffic. The snapshot is copied, not retained: one snapshot may
// seed many instances.
func (a *ATB) Restore(s State) {
	copy(a.target, s.Targets)
	a.dir.Restore(s.Dir)
	a.order.Init()
	for k := range a.present {
		delete(a.present, k)
	}
	for _, b := range s.Order {
		a.present[b] = a.order.PushBack(b)
	}
}

// Counter exposes a block's 2-bit counter state when the direction
// predictor is the paper's bimodal one (for tests); 0 otherwise.
func (a *ATB) Counter(block int) uint8 {
	if b, ok := a.dir.(*Bimodal); ok {
		return b.counters[block]
	}
	return 0
}

// PredictorName reports the direction predictor in use.
func (a *ATB) PredictorName() string { return a.dir.Name() }
