// Package atb models the Address Translation Buffer of paper §3.3: the
// hardware structure that maps original block addresses to encoded ones
// (caching ATT entries) and hosts the per-block next-block predictor of
// §3.4 — a 2-bit saturating counter for taken/not-taken plus a last-target
// register for the target address, with "next sequential block" as the
// not-taken prediction.
//
// The paper reports that, due to high spatial locality, the ATB has very
// low contention; the cycle model therefore charges no ATB miss penalty,
// but the buffer is still simulated (bounded capacity, LRU) so its hit
// rate can be reported and the claim checked.
package atb

import (
	"container/list"
	"fmt"
)

// DefaultEntries is the modeled ATB capacity (ATT entries resident).
const DefaultEntries = 128

// BlockInfo is the static information the ATB needs per block: the
// fall-through successor used for not-taken predictions.
type BlockInfo struct {
	FallTarget int // next sequential block (-1 if none)
}

// InfosFromFalls builds the per-block table the ATB is loaded with from
// fall-through targets (one per block, -1 for none).
func InfosFromFalls(falls []int) []BlockInfo {
	infos := make([]BlockInfo, len(falls))
	for i, f := range falls {
		infos[i] = BlockInfo{FallTarget: f}
	}
	return infos
}

// ValidateInfos checks that every fall-through target names an existing
// block or is -1 ("none") — a dangling target would make the not-taken
// prediction point outside the translatable address space.
func ValidateInfos(infos []BlockInfo) error {
	for i, info := range infos {
		if info.FallTarget != -1 && (info.FallTarget < 0 || info.FallTarget >= len(infos)) {
			return fmt.Errorf("atb: block %d fall target %d outside [0,%d)",
				i, info.FallTarget, len(infos))
		}
	}
	return nil
}

// ATB is the translation buffer plus next-block predictor.
type ATB struct {
	capacity int
	blocks   []BlockInfo

	// Direction predictor (per-block bimodal by default; gshare or PAs
	// via NewWithPredictor) plus the last-taken-target registers the
	// paper couples with the ATB entries.
	dir    DirectionPredictor
	target []int32 // last-taken-target block ID, -1 if none yet

	// Residency simulation (LRU over ATT entries).
	order   *list.List
	present map[int]*list.Element

	Hits   int64
	Misses int64
}

// New builds an ATB with the paper's per-block 2-bit counters. capacity
// <= 0 selects DefaultEntries.
func New(blocks []BlockInfo, capacity int) *ATB {
	return NewWithPredictor(blocks, capacity, NewBimodal(len(blocks)))
}

// NewWithPredictor builds an ATB with an explicit direction predictor
// (the paper's future-work gshare/PAs variants live in direction.go).
func NewWithPredictor(blocks []BlockInfo, capacity int, dir DirectionPredictor) *ATB {
	if capacity <= 0 {
		capacity = DefaultEntries
	}
	a := &ATB{
		capacity: capacity,
		blocks:   blocks,
		dir:      dir,
		target:   make([]int32, len(blocks)),
		order:    list.New(),
		present:  map[int]*list.Element{},
	}
	for i := range a.target {
		a.target[i] = -1
	}
	return a
}

// Touch simulates the ATB lookup for a block, updating residency stats.
func (a *ATB) Touch(block int) {
	if el, ok := a.present[block]; ok {
		a.Hits++
		a.order.MoveToFront(el)
		return
	}
	a.Misses++
	if a.order.Len() >= a.capacity {
		back := a.order.Back()
		delete(a.present, back.Value.(int))
		a.order.Remove(back)
	}
	a.present[block] = a.order.PushFront(block)
}

// HitRate returns the fraction of lookups that hit.
func (a *ATB) HitRate() float64 {
	total := a.Hits + a.Misses
	if total == 0 {
		return 0
	}
	return float64(a.Hits) / float64(total)
}

// Predict returns the predicted next block after `block`: the last taken
// target if the 2-bit counter predicts taken, the fall-through block
// otherwise. The boolean reports the taken prediction. A prediction of -1
// means "no idea" (cold target) and will count as a misprediction.
func (a *ATB) Predict(block int) (next int, taken bool) {
	if block < 0 || block >= len(a.blocks) {
		return -1, false
	}
	if a.dir.Predict(block) {
		return int(a.target[block]), true
	}
	return a.blocks[block].FallTarget, false
}

// Update trains the predictor with the actual outcome of a block's
// terminator: whether it left the fall-through path and where it went.
func (a *ATB) Update(block int, taken bool, actualNext int) error {
	if block < 0 || block >= len(a.blocks) {
		return fmt.Errorf("atb: block %d out of range", block)
	}
	a.dir.Update(block, taken)
	if taken {
		a.target[block] = int32(actualNext)
	}
	return nil
}

// Counter exposes a block's 2-bit counter state when the direction
// predictor is the paper's bimodal one (for tests); 0 otherwise.
func (a *ATB) Counter(block int) uint8 {
	if b, ok := a.dir.(*Bimodal); ok {
		return b.counters[block]
	}
	return 0
}

// PredictorName reports the direction predictor in use.
func (a *ATB) PredictorName() string { return a.dir.Name() }
