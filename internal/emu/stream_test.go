package emu

import (
	"reflect"
	"testing"

	"repro/internal/sched"
	"repro/internal/trace"
)

// TestStochasticStreamMatchesSlice is the determinism guard for the
// walker rewrite: an identical seed must yield an identical event
// stream whether the trace is consumed as a slice (StochasticTrace) or
// as a chunk stream (StochasticStream) — across phases values and
// chunk sizes, including chunk sizes that split the trace unevenly.
func TestStochasticStreamMatchesSlice(t *testing.T) {
	sp := compileBench(t, "go")
	for _, phases := range []int{1, 2, 3, 8} {
		want, err := StochasticTrace(sp, 7, 5000, phases)
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range []int{1, 7, 997, 5000, 5001} {
			s, err := StochasticStream(sp, 7, 5000, phases, cs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := trace.Collect(s)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Events, want.Events) {
				t.Fatalf("phases=%d chunk=%d: streamed events differ from slice", phases, cs)
			}
			if got.Ops != want.Ops || got.MOPs != want.MOPs {
				t.Fatalf("phases=%d chunk=%d: ops %d/%d, slice %d/%d",
					phases, cs, got.Ops, got.MOPs, want.Ops, want.MOPs)
			}
			if got.Name != want.Name {
				t.Fatalf("phases=%d chunk=%d: name %q, slice %q", phases, cs, got.Name, want.Name)
			}
		}
	}
}

// TestStochasticStreamOpsBound checks the ops-bounded generator stops
// at the first block boundary at or past the requested operation
// count, terminates the final event with trace.End, and produces a
// chain-consistent trace — deterministically for a fixed seed.
func TestStochasticStreamOpsBound(t *testing.T) {
	sp := compileBench(t, "compress")
	const maxOps = 50000
	s, err := StochasticStreamOps(sp, 11, maxOps, 2, 512)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Ops < maxOps {
		t.Fatalf("stream stopped at %d ops, want >= %d", tr.Ops, maxOps)
	}
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	// One block of slack at most: the walk stops at the first boundary
	// past the target.
	last := tr.Events[len(tr.Events)-1]
	if last.Next != trace.End {
		t.Fatalf("final event Next = %d, want End", last.Next)
	}
	if err := tr.Validate(len(sp.Blocks)); err != nil {
		t.Fatal(err)
	}

	s2, err := StochasticStreamOps(sp, 11, maxOps, 2, 8192)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.Collect(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Events, tr2.Events) || tr.Ops != tr2.Ops {
		t.Fatal("ops-bounded stream is not deterministic across chunk sizes")
	}
}

// TestStochasticStreamAbandon checks an abandoning consumer releases
// the producer goroutine instead of leaking it on a full channel.
func TestStochasticStreamAbandon(t *testing.T) {
	sp := compileBench(t, "compress")
	s, err := StochasticStream(sp, 3, 1<<20, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Next()
	if err != nil || c == nil {
		t.Fatalf("Next = (%v, %v)", c, err)
	}
	s.Recycle(c)
	s.Close() // the race detector + goroutine leak would fail the run if the producer hung
}

// TestStochasticStreamEmptyProgram mirrors the slice generator's
// empty-program rejection.
func TestStochasticStreamEmptyProgram(t *testing.T) {
	if _, err := StochasticStream(&sched.Program{}, 1, 10, 1, 0); err == nil {
		t.Error("StochasticStream accepted an empty program")
	}
	if _, err := StochasticStreamOps(&sched.Program{}, 1, 10, 1, 0); err == nil {
		t.Error("StochasticStreamOps accepted an empty program")
	}
}
