package emu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/sched"
)

// TestParseAndRunGCD assembles a textual GCD program, schedules it, and
// executes it on the interpreter — the assembler-to-emulation slice of
// the paper's toolchain in one test.
func TestParseAndRunGCD(t *testing.T) {
	const src = `
; greatest common divisor by repeated subtraction
func main
entry:
	ldi   #252 -> r1
	ldi   #105 -> r2
loop:
	cmpeq r1, r2 -> p1
	brct  p1, done ?0.1
body:
	cmplt r1, r2 -> p2
	sub   r2, r1 -> r2 if p2     ; r2 -= r1 when r1 < r2
	cmpgt r1, r2 -> p3
	sub   r1, r2 -> r1 if p3     ; r1 -= r2 when r1 > r2
	br    loop
done:
	ret
`
	p, err := asm.Parse("gcd", src)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	tr, err := m.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if m.GPR[1] != 21 || m.GPR[2] != 21 {
		t.Errorf("gcd(252,105): r1=%d r2=%d, want 21", m.GPR[1], m.GPR[2])
	}
	if err := tr.Validate(len(sp.Blocks)); err != nil {
		t.Fatal(err)
	}
}

// TestParsedProgramThroughCompression pushes a parsed program through the
// full encode/simulate pipeline.
func TestParsedProgramThroughCompression(t *testing.T) {
	const src = `
func main
b0:
	ldi  #7 -> r1
	ldi  #0 -> r2
	ldi  #100 -> r3
	ldi  #1 -> r4
loop:
	add  r2, r1 -> r2
	st   r2 -> [r3]
	add  r3, r4 -> r3
	cmplt r3, r1 -> p1
	brct p1, loop ?0.05
end:
	ret
`
	p, err := asm.Parse("kern", src)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	if _, err := m.Run(sp); err != nil {
		t.Fatal(err)
	}
	if m.GPR[2] != 7 {
		t.Errorf("r2 = %d, want 7 (single loop iteration)", m.GPR[2])
	}
}
