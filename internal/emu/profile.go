package emu

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/trace"
)

// BlockProfile is one block's measured dynamic behaviour.
type BlockProfile struct {
	Exec  int64 // executions observed
	Taken int64 // times the terminator left the fall-through path
}

// TakenProb returns the measured taken probability (0 for cold blocks).
func (p BlockProfile) TakenProb() float64 {
	if p.Exec == 0 {
		return 0
	}
	return float64(p.Taken) / float64(p.Exec)
}

// MeasureProfile derives per-block execution counts and branch outcome
// statistics from a trace — the profile-feedback step of the paper's flow
// (the compiler "annotates [code] to emit an instruction address trace",
// and profile information drives treegion formation and block layout).
func MeasureProfile(sp *sched.Program, tr *trace.Trace) ([]BlockProfile, error) {
	profiles := make([]BlockProfile, len(sp.Blocks))
	for _, ev := range tr.Events {
		if ev.Block < 0 || ev.Block >= len(profiles) {
			return nil, fmt.Errorf("emu: trace references block %d of %d",
				ev.Block, len(profiles))
		}
		profiles[ev.Block].Exec++
		if ev.Taken {
			profiles[ev.Block].Taken++
		}
	}
	return profiles, nil
}

// ApplyProfile overwrites the program's annotated taken probabilities
// with measured ones (blocks never executed keep their static annotation)
// so downstream consumers — the superblock former, the reports — work
// from observed behaviour. Returns how many blocks were re-annotated.
func ApplyProfile(sp *sched.Program, profiles []BlockProfile) (int, error) {
	if len(profiles) != len(sp.Blocks) {
		return 0, fmt.Errorf("emu: %d profiles for %d blocks", len(profiles), len(sp.Blocks))
	}
	updated := 0
	for i, b := range sp.Blocks {
		if profiles[i].Exec == 0 {
			continue
		}
		b.TakenProb = profiles[i].TakenProb()
		updated++
	}
	return updated, nil
}
