package emu

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/trace"
)

// SteadyStream generates a deterministic steady-phase workload: every
// lap executes the program's blocks 0..n-1 in order and wraps back to
// block 0, until at least maxOps dynamic operations have executed (the
// walk always completes its final lap). Because every lap is the same
// access sequence, the fetch pipeline's behavioral state at lap
// boundaries becomes periodic after a brief warm-up — which makes this
// the best case for the speculative window scheduler (cache.
// RunShardedSpec): the chunk size is rounded to whole laps, so window
// seams land on lap boundaries, the warm-state prediction verifies, and
// nearly every window commits its speculative replay. Contrast with
// StochasticStream, whose seam states essentially never recur.
//
// The event for block b reports the branch outcome that reaches block
// (b+1) mod n: a fall-through where that is the block's FallTarget, a
// taken branch otherwise. The final event's Next is trace.End.
// chunkEvents <= 0 selects trace.DefaultChunkEvents; either way the
// chunk size is rounded down to a whole number of laps (minimum one
// lap). The consumer must drain the stream or Close it to release the
// producer goroutine.
//
//tepic:pool
func SteadyStream(sp *sched.Program, maxOps int64, chunkEvents int) (trace.Stream, error) {
	n := len(sp.Blocks)
	if n == 0 {
		return nil, fmt.Errorf("emu: steady stream over empty program %q", sp.Name)
	}
	if chunkEvents <= 0 {
		chunkEvents = trace.DefaultChunkEvents
	}
	laps := chunkEvents / n
	if laps < 1 {
		laps = 1
	}

	var opsPerLap int64
	for i := range sp.Blocks {
		opsPerLap += int64(sp.Blocks[i].NumOps())
	}
	totalLaps := int64(1)
	if opsPerLap > 0 && maxOps > opsPerLap {
		totalLaps = (maxOps + opsPerLap - 1) / opsPerLap
	}
	totalEvents := totalLaps * int64(n)

	s, p := trace.NewChanStream(sp.Name, laps*n, 0)
	go func() {
		for i := int64(0); i < totalEvents; i++ {
			b := int(i % int64(n))
			next := (b + 1) % n
			ev := trace.Event{
				Block: b,
				Taken: sp.Blocks[b].FallTarget != next,
				Next:  next,
			}
			if i == totalEvents-1 {
				ev.Next = trace.End
			}
			blk := sp.Blocks[b]
			if !p.Append(ev, int64(blk.NumOps()), int64(blk.NumMOPs())) {
				break
			}
		}
		p.Close(nil)
	}()
	return s, nil
}
