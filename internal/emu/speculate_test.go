package emu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/workload"
)

// buildDiamond assembles a diamond whose fall-through side computes
// values dead on the taken side, so the speculation pass hoists them.
func buildDiamond(t *testing.T, x, y int32) *ir.Program {
	t.Helper()
	b := asm.NewProgram("spec")
	f := b.Func("main")
	r, p := asm.R, asm.P
	head := f.Block()
	fall := f.Block()
	join := f.Block()
	head.Ldi(r(1), x).Ldi(r(2), y).
		Cmp(isa.OpCMPLT, p(1), r(1), r(2)).
		Brct(p(1), join, 0.5)
	fall.Add(r(3), r(1), r(2)).Mul(r(4), r(3), r(3)).St(r(1), r(4))
	// join reinitializes r3/r4 so they are dead at its entry even under
	// the conservative everything-live-at-ret liveness rule.
	join.Mov(r(5), r(1)).Ldi(r(3), 0).Ldi(r(4), 0).Ret()
	irp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return irp
}

// TestSpeculationPreservesSemantics interprets the diamond with and
// without the speculative-hoisting pass, on both branch outcomes, and
// compares every architecturally live result (registers and memory).
func TestSpeculationPreservesSemantics(t *testing.T) {
	for _, c := range []struct{ x, y int32 }{{5, 90}, {90, 5}} {
		run := func(spec bool) *Machine {
			irp := buildDiamond(t, c.x, c.y)
			if spec {
				n, err := sched.Speculate(irp)
				if err != nil {
					t.Fatal(err)
				}
				if c.x < c.y {
					// taken path: fine either way
					_ = n
				} else if n == 0 {
					t.Fatal("nothing hoisted on the hoistable diamond")
				}
			}
			sp, err := sched.Schedule(irp)
			if err != nil {
				t.Fatal(err)
			}
			m := NewMachine()
			if _, err := m.Run(sp); err != nil {
				t.Fatal(err)
			}
			return m
		}
		plain := run(false)
		spec := run(true)
		// Live outputs: r1, r2, r5 and the store target memory word.
		for _, reg := range []int{1, 2, 5} {
			if plain.GPR[reg] != spec.GPR[reg] {
				t.Fatalf("x=%d y=%d: r%d differs: %d vs %d",
					c.x, c.y, reg, plain.GPR[reg], spec.GPR[reg])
			}
		}
		if got, want := spec.Load(int64(c.x)), plain.Load(int64(c.x)); got != want {
			t.Fatalf("x=%d y=%d: memory differs: %d vs %d", c.x, c.y, got, want)
		}
	}
}

func clonedAllocated(t *testing.T, name string) *ir.Program {
	t.Helper()
	p, err := workload.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.Allocate(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSpeculationOnInterpretedBenchmark runs the whole flow on a
// generated benchmark program: speculate, schedule, and verify the
// scheduler's invariants still hold under the interpreter's stricter
// checks (interior branches, tail bits).
func TestSpeculationScheduleInvariants(t *testing.T) {
	sp := compileBench(t, "m88ksim")
	_ = sp // compiled without speculation; now the speculated variant:
	p := clonedAllocated(t, "m88ksim")
	n, err := sched.Speculate(p)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no hoisting on m88ksim")
	}
	sps, err := sched.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sps.Blocks {
		for _, m := range b.MOPs {
			if err := m.Validate(); err != nil {
				t.Fatalf("block %d: %v", b.ID, err)
			}
		}
	}
	// The stochastic walker must still produce valid traces over the
	// speculated program (block IDs and edges unchanged).
	tr, err := StochasticTrace(sps, 1, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(len(sps.Blocks)); err != nil {
		t.Fatal(err)
	}
}
