package emu

import (
	"runtime"

	"repro/internal/sched"
	"repro/internal/trace"
)

// StochasticStream is the streaming face of StochasticTrace: the same
// seeded CFG walk, but events flow to the consumer through a bounded
// producer/consumer chunk stream instead of materializing a []Event —
// the walker's working set is a handful of pooled chunks, independent
// of maxBlocks. The event sequence is bit-identical to
// StochasticTrace(sp, seed, maxBlocks, phases): same PRNG consumption
// order, same final-event trace.End patch. chunkEvents <= 0 selects
// trace.DefaultChunkEvents. The consumer must drain the stream or
// Close it to release the producer goroutine.
//
//tepic:pool
func StochasticStream(sp *sched.Program, seed int64, maxBlocks, phases, chunkEvents int) (trace.Stream, error) {
	w, err := newWalker(sp, seed, phases)
	if err != nil {
		return nil, err
	}
	s, p := trace.NewChanStream(sp.Name, chunkEvents, 0)
	go func() {
		for i := 0; i < maxBlocks; i++ {
			ev, ops, mops := w.step()
			if i == maxBlocks-1 {
				// The final event has no successor within the trace
				// window, exactly as StochasticTrace patches it.
				ev.Next = trace.End
			}
			if !p.Append(ev, ops, mops) {
				break
			}
		}
		p.Close(nil)
	}()
	return s, nil
}

// StochasticStreamOps is StochasticStream bounded by dynamic operation
// count instead of block executions: the walk stops at the first block
// boundary where at least maxOps operations have executed. This is the
// long-horizon generator — "simulate 100M ops" — where the block count
// is not known up front. The final event's Next is trace.End.
//
//tepic:pool
func StochasticStreamOps(sp *sched.Program, seed int64, maxOps int64, phases, chunkEvents int) (trace.Stream, error) {
	w, err := newWalker(sp, seed, phases)
	if err != nil {
		return nil, err
	}
	s, p := trace.NewChanStream(sp.Name, chunkEvents, 0)
	go func() {
		// One event of lookahead so the terminal event can be patched to
		// trace.End before it is handed to the consumer.
		var pending trace.Event
		var pOps, pMOPs int64
		have := false
		var total int64
		for total < maxOps {
			ev, ops, mops := w.step()
			if have && !p.Append(pending, pOps, pMOPs) {
				p.Close(nil)
				return
			}
			pending, pOps, pMOPs, have = ev, ops, mops, true
			total += ops
		}
		if have {
			pending.Next = trace.End
			p.Append(pending, pOps, pMOPs)
		}
		p.Close(nil)
	}()
	return s, nil
}

// MemUsage is a point-in-time heap snapshot, used by the streaming
// long-horizon tests to assert that peak memory is bounded by the
// chunk working set rather than the trace length.
type MemUsage struct {
	HeapAlloc uint64 // live heap bytes after GC
	HeapSys   uint64 // heap bytes obtained from the OS
	Sys       uint64 // total bytes obtained from the OS
}

// MemSnapshot forces a garbage collection and returns the resulting
// heap usage.
func MemSnapshot() MemUsage {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemUsage{HeapAlloc: ms.HeapAlloc, HeapSys: ms.HeapSys, Sys: ms.Sys}
}
