package emu

import (
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/sched"
)

// runStraightline assembles a single block of ops followed by ret and
// executes it, returning the machine.
func runStraightline(t *testing.T, build func(b *asm.BlockBuilder)) *Machine {
	t.Helper()
	bld := asm.NewProgram("sem")
	f := bld.Func("main")
	blk := f.Block()
	build(blk)
	blk.Ret()
	irp, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(irp)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	if _, err := m.Run(sp); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIntALUSemantics(t *testing.T) {
	r := asm.R
	m := runStraightline(t, func(b *asm.BlockBuilder) {
		b.Ldi(r(1), 100).Ldi(r(2), 7).
			Op3(isa.OpSUB, r(3), r(1), r(2)).  // 93
			Op3(isa.OpDIV, r(4), r(1), r(2)).  // 14
			Op3(isa.OpREM, r(5), r(1), r(2)).  // 2
			Op3(isa.OpAND, r(6), r(1), r(2)).  // 100&7 = 4
			Op3(isa.OpOR, r(7), r(1), r(2)).   // 103
			Op3(isa.OpXOR, r(8), r(1), r(2)).  // 99
			Op3(isa.OpSHL, r(9), r(1), r(2)).  // 12800
			Op3(isa.OpSHR, r(10), r(1), r(2)). // 0
			Op3(isa.OpMIN, r(11), r(1), r(2)). // 7
			Op3(isa.OpMAX, r(12), r(1), r(2)). // 100
			Op3(isa.OpNOT, r(13), r(2), r(2)). // ^7 = -8
			Op3(isa.OpDIV, r(14), r(1), r(0))  // div by zero -> 0
	})
	want := map[int]int64{3: 93, 4: 14, 5: 2, 6: 4, 7: 103, 8: 99,
		9: 12800, 10: 0, 11: 7, 12: 100, 13: -8, 14: 0}
	for reg, v := range want {
		if m.GPR[reg] != v {
			t.Errorf("r%d = %d, want %d", reg, m.GPR[reg], v)
		}
	}
}

func TestShiftAndAbsSemantics(t *testing.T) {
	r := asm.R
	m := runStraightline(t, func(b *asm.BlockBuilder) {
		// r1 = -16 (0 - 16), r2 = 2
		b.Ldi(r(4), 16).Ldi(r(2), 2).
			Op3(isa.OpSUB, r(1), r(0), r(4)).
			Op3(isa.OpSRA, r(5), r(1), r(2)). // -16 >> 2 = -4 (arithmetic)
			Op3(isa.OpSHR, r(6), r(1), r(2)). // logical: huge positive
			Op3(isa.OpABS, r(7), r(1), r(1))  // 16
	})
	if m.GPR[5] != -4 {
		t.Errorf("sra = %d, want -4", m.GPR[5])
	}
	if m.GPR[6] <= 0 {
		t.Errorf("shr of negative = %d, want positive (logical)", m.GPR[6])
	}
	if m.GPR[7] != 16 {
		t.Errorf("abs = %d, want 16", m.GPR[7])
	}
}

func TestLdihSemantics(t *testing.T) {
	r := asm.R
	bld := asm.NewProgram("ldih")
	f := bld.Func("main")
	blk := f.Block()
	blk.Ldi(r(1), 0x12345)
	blk.Op3(isa.OpMOV, r(2), r(1), r(1))
	// ldih writes the upper 20 bits, keeping the lower 20.
	blk.Ldi(r(2), 0x12345) // ensure known low bits
	bIR := &ir.Instr{Type: isa.TypeInt, Code: isa.OpLDIH, Imm: 0x7, Dest: ir.Reg{Class: ir.ClassGPR, N: 2}, Pred: ir.PredTrue}
	blk.Ret()
	irp, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Inject the ldih before the ret (the builder has no ldih helper).
	blkIR := irp.Block(0)
	ret := blkIR.Instrs[len(blkIR.Instrs)-1]
	blkIR.Instrs[len(blkIR.Instrs)-1] = bIR
	blkIR.Instrs = append(blkIR.Instrs, ret)
	sp, err := sched.Schedule(irp)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	if _, err := m.Run(sp); err != nil {
		t.Fatal(err)
	}
	if want := int64(0x7<<20 | 0x12345); m.GPR[2] != want {
		t.Errorf("ldih result %#x, want %#x", m.GPR[2], want)
	}
}

func TestPredicateCombineSemantics(t *testing.T) {
	r, p := asm.R, asm.P
	m := runStraightline(t, func(b *asm.BlockBuilder) {
		b.Ldi(r(1), 1).Ldi(r(2), 2).
			Cmp(isa.OpCMPLT, p(1), r(1), r(2)). // true
			Cmp(isa.OpCMPGT, p(2), r(1), r(2)). // false
			// cmpand: p1 = p1 && (r1 != 0) -> stays true
			Cmp(isa.OpCMPAND, p(1), r(1), r(0)).
			// cmpor: p2 = p2 || (r1 != 0) -> becomes true
			Cmp(isa.OpCMPOR, p(2), r(1), r(0)).
			Ldi(r(3), 11).Guard(p(1)).
			Ldi(r(4), 22).Guard(p(2))
	})
	if m.GPR[3] != 11 {
		t.Errorf("cmpand guard failed: r3 = %d", m.GPR[3])
	}
	if m.GPR[4] != 22 {
		t.Errorf("cmpor guard failed: r4 = %d", m.GPR[4])
	}
}

func TestFloatSemantics(t *testing.T) {
	r, f := asm.R, asm.F
	m := runStraightline(t, func(b *asm.BlockBuilder) {
		b.Ldi(r(1), 9).Ldi(r(2), 4).
			Fcvt(f(1), r(1)). // 9.0
			Fcvt(f(2), r(2)). // 4.0
			FOp3(isa.OpFADD, f(3), f(1), f(2)).
			FOp3(isa.OpFSUB, f(4), f(1), f(2)).
			FOp3(isa.OpFMUL, f(5), f(1), f(2)).
			FOp3(isa.OpFDIV, f(6), f(1), f(2)).
			FOp3(isa.OpFSQRT, f(7), f(1), f(1)).
			FOp3(isa.OpFNEG, f(8), f(1), f(1)).
			FOp3(isa.OpFMIN, f(9), f(1), f(2)).
			FOp3(isa.OpFMAX, f(10), f(1), f(2))
	})
	checks := map[int]float64{3: 13, 4: 5, 5: 36, 6: 2.25, 7: 3, 8: -9, 9: 4, 10: 9}
	for reg, want := range checks {
		if math.Abs(m.FPR[reg]-want) > 1e-12 {
			t.Errorf("f%d = %g, want %g", reg, m.FPR[reg], want)
		}
	}
}

func TestFloatMemoryRoundTrip(t *testing.T) {
	r, f := asm.R, asm.F
	m := runStraightline(t, func(b *asm.BlockBuilder) {
		b.Ldi(r(1), 500).Ldi(r(2), 3).
			Fcvt(f(1), r(2)).
			FOp3(isa.OpFDIV, f(2), f(1), f(1)). // 1.0
			FOp3(isa.OpFADD, f(3), f(1), f(2)). // 4.0
			Fst(r(1), f(3)).
			Fld(f(4), r(1)).
			FOp3(isa.OpFMUL, f(5), f(4), f(4)) // 16.0
	})
	if m.FPR[5] != 16 {
		t.Errorf("float memory round-trip: f5 = %g, want 16", m.FPR[5])
	}
}

func TestByteHalfWordTruncationInALU(t *testing.T) {
	r := asm.R
	bld := asm.NewProgram("trunc")
	f := bld.Func("main")
	blk := f.Block()
	blk.Ldi(r(1), 0x7F).Ldi(r(2), 1)
	add := &ir.Instr{Type: isa.TypeInt, Code: isa.OpADD,
		Src1: ir.Reg{Class: ir.ClassGPR, N: 1}, Src2: ir.Reg{Class: ir.ClassGPR, N: 2},
		Dest: ir.Reg{Class: ir.ClassGPR, N: 3}, Pred: ir.PredTrue, BHWX: isa.SizeByte}
	blk.Ret()
	irp, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	b0 := irp.Block(0)
	ret := b0.Instrs[len(b0.Instrs)-1]
	b0.Instrs[len(b0.Instrs)-1] = add
	b0.Instrs = append(b0.Instrs, ret)
	sp, err := sched.Schedule(irp)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	if _, err := m.Run(sp); err != nil {
		t.Fatal(err)
	}
	// 0x7F + 1 = 0x80, byte-truncated to -128.
	if m.GPR[3] != -128 {
		t.Errorf("byte-wide add = %d, want -128", m.GPR[3])
	}
}
