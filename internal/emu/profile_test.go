package emu

import (
	"math"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func TestMeasureProfileMatchesAnnotations(t *testing.T) {
	sp := compileBench(t, "ijpeg")
	prof := workload.MustProfile("ijpeg")
	tr, err := StochasticTrace(sp, prof.Seed, 200000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := MeasureProfile(sp, tr)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	checked := 0
	for i, p := range ps {
		total += p.Exec
		if p.Exec < 500 || !sp.Blocks[i].HasCondBranch() {
			continue
		}
		if got, want := p.TakenProb(), sp.Blocks[i].TakenProb; math.Abs(got-want) > 0.12 {
			t.Errorf("block %d: measured %.3f vs annotated %.3f (n=%d)",
				i, got, want, p.Exec)
		}
		checked++
	}
	if total != int64(tr.Len()) {
		t.Errorf("profile counts %d, trace length %d", total, tr.Len())
	}
	if checked == 0 {
		t.Error("no hot conditional branches to check")
	}
}

func TestApplyProfile(t *testing.T) {
	sp := compileBench(t, "compress")
	prof := workload.MustProfile("compress")
	tr, err := StochasticTrace(sp, prof.Seed, 50000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := MeasureProfile(sp, tr)
	if err != nil {
		t.Fatal(err)
	}
	updated, err := ApplyProfile(sp, ps)
	if err != nil {
		t.Fatal(err)
	}
	if updated == 0 {
		t.Fatal("nothing re-annotated")
	}
	// Every executed block now carries its measured probability.
	for i, p := range ps {
		if p.Exec > 0 && sp.Blocks[i].TakenProb != p.TakenProb() {
			t.Fatalf("block %d not re-annotated", i)
		}
	}
	if _, err := ApplyProfile(sp, ps[:1]); err == nil {
		t.Error("accepted mismatched profile length")
	}
}

func TestMeasureProfileBadTrace(t *testing.T) {
	sp := compileBench(t, "compress")
	bad := &trace.Trace{Events: []trace.Event{{Block: 10 * len(sp.Blocks)}}}
	if _, err := MeasureProfile(sp, bad); err == nil {
		t.Error("accepted out-of-range trace")
	}
}

func TestColdBlocksKeepAnnotation(t *testing.T) {
	sp := compileBench(t, "gcc") // plenty of cold blocks under 1 phase
	tr, err := StochasticTrace(sp, 1, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := MeasureProfile(sp, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Find a cold block with a nonzero annotation.
	var before float64
	cold := -1
	for i, p := range ps {
		if p.Exec == 0 && sp.Blocks[i].TakenProb > 0 {
			cold = i
			before = sp.Blocks[i].TakenProb
			break
		}
	}
	if cold == -1 {
		t.Skip("no cold annotated blocks")
	}
	if _, err := ApplyProfile(sp, ps); err != nil {
		t.Fatal(err)
	}
	if sp.Blocks[cold].TakenProb != before {
		t.Error("cold block annotation overwritten")
	}
}
