// Package emu produces dynamic execution traces from scheduled TEPIC
// programs, standing in for the paper's YULA emulation tool. It offers two
// generators:
//
//   - StochasticTrace walks the control-flow graph using the per-block
//     profile annotations (branch taken probabilities) with a seeded PRNG.
//     It scales to benchmark-sized programs and is what the paper-figure
//     experiments use.
//   - Interpreter executes TEPIC operation semantics (registers, memory,
//     predication) and emits the trace of what actually ran. It validates
//     the ISA end to end and runs the example kernels.
package emu

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/sched"
	"repro/internal/trace"
)

// StochasticTrace walks the program's CFG for maxBlocks block executions,
// sampling conditional-branch outcomes from the profile's taken
// probabilities. Calls push the fall-through block on a return stack;
// returns pop it. When execution falls off the end of the current phase
// function, the walk restarts at the next phase entry — rotating through
// the first `phases` functions, which models a driver loop invoking the
// application's phases in turn (phases < 2 pins the walk to main).
// Deterministic for a given (program, seed, maxBlocks, phases).
func StochasticTrace(sp *sched.Program, seed int64, maxBlocks, phases int) (*trace.Trace, error) {
	w, err := newWalker(sp, seed, phases)
	if err != nil {
		return nil, err
	}
	tr := &trace.Trace{Name: sp.Name}
	tr.Events = make([]trace.Event, 0, maxBlocks)
	for len(tr.Events) < maxBlocks {
		ev, ops, mops := w.step()
		tr.Ops += ops
		tr.MOPs += mops
		tr.Events = append(tr.Events, ev)
	}
	if len(tr.Events) > 0 {
		// The final event has no successor within the trace window.
		tr.Events[len(tr.Events)-1].Next = trace.End
	}
	return tr, nil
}

// walker is the stochastic CFG walk's state machine, shared verbatim by
// the slice generator (StochasticTrace) and the streaming producers
// (StochasticStream, StochasticStreamOps) so both consume the seeded
// PRNG in exactly the same order — the determinism contract is that a
// given (program, seed, phases) yields one event sequence no matter how
// it is materialized.
type walker struct {
	sp         *sched.Program
	r          *rand.Rand
	phases     int
	phaseSlice int
	stack      []int
	inPhase    int
	cur        int
}

// newWalker validates the program and clamps phases, mirroring the
// historical StochasticTrace preamble.
func newWalker(sp *sched.Program, seed int64, phases int) (*walker, error) {
	if len(sp.Blocks) == 0 || len(sp.FuncEntries) == 0 {
		return nil, fmt.Errorf("emu: empty program")
	}
	if phases < 1 {
		phases = 1
	}
	if phases > len(sp.FuncEntries) {
		phases = len(sp.FuncEntries)
	}
	// A phase ends when its entry function returns or when its time slice
	// expires (loop nests can make a single phase outlast the whole
	// window); either way the walk jumps to a randomly chosen phase entry.
	// Frequent, randomly ordered phase interleaving is how the large
	// applications behave (gcc cycles its passes per function compiled;
	// interpreters hop between handler clusters), and it is what gives
	// them instruction working sets that genuinely stress the ICache.
	// Short slices: large applications hop between code regions every
	// hundred-odd blocks (per-function pass cycling in gcc, handler
	// dispatch in the interpreters), which is what keeps their
	// instruction fetch continuously under capacity pressure. The slice
	// is only consulted when phases > 1, so the single-phase walk is
	// unaffected by its value.
	return &walker{
		sp:         sp,
		r:          rand.New(rand.NewSource(seed)),
		phases:     phases,
		phaseSlice: 120,
		cur:        sp.FuncEntries[0],
	}, nil
}

// step executes one basic block: it returns the event (whose Next is
// the genuine successor — callers bound the walk and patch the final
// event's Next to trace.End themselves) plus the block's dynamic
// operation counts.
func (w *walker) step() (trace.Event, int64, int64) {
	b := w.sp.Blocks[w.cur]
	ops, mops := int64(b.NumOps()), int64(b.NumMOPs())

	next, taken := successor(w.sp, b, w.r, &w.stack)
	w.inPhase++
	// Slice expiry never interrupts a call transfer, so "a call is
	// always followed by its callee's entry" holds in every trace.
	if next == trace.End || (w.phases > 1 && w.inPhase >= w.phaseSlice && !b.EndsInCall()) {
		// Phase finished (or its slice expired): jump to a random
		// phase entry.
		w.stack = w.stack[:0]
		next = w.sp.FuncEntries[w.r.Intn(w.phases)]
		w.inPhase = 0
	}
	ev := trace.Event{Block: w.cur, Taken: taken, Next: next}
	w.cur = next
	return ev, ops, mops
}

// successor resolves one dynamic control transfer.
func successor(sp *sched.Program, b *sched.Block, r *rand.Rand, stack *[]int) (int, bool) {
	if len(b.Ops) == 0 {
		return b.FallTarget, false
	}
	last := b.Ops[len(b.Ops)-1]
	if last.Type != isa.TypeBranch {
		return b.FallTarget, false
	}
	switch last.Code {
	case isa.OpBR, isa.OpBRLC:
		return b.TakenTarget, true
	case isa.OpBRCT, isa.OpBRCF:
		if r.Float64() < b.TakenProb {
			return b.TakenTarget, true
		}
		return b.FallTarget, false
	case isa.OpCALL:
		if b.FallTarget != trace.End {
			*stack = append(*stack, b.FallTarget)
		}
		return sp.FuncEntries[b.Callee], true
	case isa.OpRET:
		if len(*stack) == 0 {
			return trace.End, true
		}
		ret := (*stack)[len(*stack)-1]
		*stack = (*stack)[:len(*stack)-1]
		return ret, true
	}
	return b.FallTarget, false
}
