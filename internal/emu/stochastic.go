// Package emu produces dynamic execution traces from scheduled TEPIC
// programs, standing in for the paper's YULA emulation tool. It offers two
// generators:
//
//   - StochasticTrace walks the control-flow graph using the per-block
//     profile annotations (branch taken probabilities) with a seeded PRNG.
//     It scales to benchmark-sized programs and is what the paper-figure
//     experiments use.
//   - Interpreter executes TEPIC operation semantics (registers, memory,
//     predication) and emits the trace of what actually ran. It validates
//     the ISA end to end and runs the example kernels.
package emu

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/sched"
	"repro/internal/trace"
)

// StochasticTrace walks the program's CFG for maxBlocks block executions,
// sampling conditional-branch outcomes from the profile's taken
// probabilities. Calls push the fall-through block on a return stack;
// returns pop it. When execution falls off the end of the current phase
// function, the walk restarts at the next phase entry — rotating through
// the first `phases` functions, which models a driver loop invoking the
// application's phases in turn (phases < 2 pins the walk to main).
// Deterministic for a given (program, seed, maxBlocks, phases).
func StochasticTrace(sp *sched.Program, seed int64, maxBlocks, phases int) (*trace.Trace, error) {
	if len(sp.Blocks) == 0 || len(sp.FuncEntries) == 0 {
		return nil, fmt.Errorf("emu: empty program")
	}
	if phases < 1 {
		phases = 1
	}
	if phases > len(sp.FuncEntries) {
		phases = len(sp.FuncEntries)
	}
	r := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: sp.Name}
	tr.Events = make([]trace.Event, 0, maxBlocks)

	// A phase ends when its entry function returns or when its time slice
	// expires (loop nests can make a single phase outlast the whole
	// window); either way the walk jumps to a randomly chosen phase entry.
	// Frequent, randomly ordered phase interleaving is how the large
	// applications behave (gcc cycles its passes per function compiled;
	// interpreters hop between handler clusters), and it is what gives
	// them instruction working sets that genuinely stress the ICache.
	phaseSlice := maxBlocks
	if phases > 1 {
		// Short slices: large applications hop between code regions every
		// hundred-odd blocks (per-function pass cycling in gcc, handler
		// dispatch in the interpreters), which is what keeps their
		// instruction fetch continuously under capacity pressure.
		phaseSlice = 120
	}

	var stack []int
	inPhase := 0
	cur := sp.FuncEntries[0]
	for len(tr.Events) < maxBlocks {
		b := sp.Blocks[cur]
		tr.Ops += int64(b.NumOps())
		tr.MOPs += int64(b.NumMOPs())

		next, taken := successor(sp, b, r, &stack)
		inPhase++
		// Slice expiry never interrupts a call transfer, so "a call is
		// always followed by its callee's entry" holds in every trace.
		if next == trace.End || (phases > 1 && inPhase >= phaseSlice && !b.EndsInCall()) {
			// Phase finished (or its slice expired): jump to a random
			// phase entry.
			stack = stack[:0]
			next = sp.FuncEntries[r.Intn(phases)]
			inPhase = 0
		}
		tr.Events = append(tr.Events, trace.Event{Block: cur, Taken: taken, Next: next})
		cur = next
	}
	// The final event has no successor within the trace window.
	tr.Events[len(tr.Events)-1].Next = trace.End
	return tr, nil
}

// successor resolves one dynamic control transfer.
func successor(sp *sched.Program, b *sched.Block, r *rand.Rand, stack *[]int) (int, bool) {
	if len(b.Ops) == 0 {
		return b.FallTarget, false
	}
	last := b.Ops[len(b.Ops)-1]
	if last.Type != isa.TypeBranch {
		return b.FallTarget, false
	}
	switch last.Code {
	case isa.OpBR, isa.OpBRLC:
		return b.TakenTarget, true
	case isa.OpBRCT, isa.OpBRCF:
		if r.Float64() < b.TakenProb {
			return b.TakenTarget, true
		}
		return b.FallTarget, false
	case isa.OpCALL:
		if b.FallTarget != trace.End {
			*stack = append(*stack, b.FallTarget)
		}
		return sp.FuncEntries[b.Callee], true
	case isa.OpRET:
		if len(*stack) == 0 {
			return trace.End, true
		}
		ret := (*stack)[len(*stack)-1]
		*stack = (*stack)[:len(*stack)-1]
		return ret, true
	}
	return b.FallTarget, false
}
