package emu

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Machine is a TEPIC interpreter: the 32-entry GPR/FPR/predicate files, a
// word-addressed memory, and a return stack. It executes scheduled
// programs at operation granularity (the scheduler has already proven
// intra-MOP independence, so sequential execution within a block is
// equivalent to VLIW issue).
type Machine struct {
	GPR  [isa.NumGPR]int64
	FPR  [isa.NumFPR]float64
	Pred [isa.NumPred]bool

	mem   map[int64]int64
	stack []int

	// Steps counts executed (not predicated-off) operations.
	Steps int64
	// MaxSteps bounds execution; 0 means DefaultMaxSteps.
	MaxSteps int64
}

// DefaultMaxSteps bounds runaway programs.
const DefaultMaxSteps = 50_000_000

// NewMachine returns a machine with zeroed state. Predicate p0 is wired
// true.
func NewMachine() *Machine {
	m := &Machine{mem: map[int64]int64{}}
	m.Pred[isa.PredAlways] = true
	return m
}

// Load reads a memory word.
func (m *Machine) Load(addr int64) int64 { return m.mem[addr] }

// Store writes a memory word.
func (m *Machine) Store(addr, v int64) { m.mem[addr] = v }

// Run executes a scheduled program from its entry function until main
// returns, emitting the block trace. The returned trace is suitable for
// the IFetch simulators.
func (m *Machine) Run(sp *sched.Program) (*trace.Trace, error) {
	tr, done, err := m.RunBounded(sp, m.MaxSteps)
	if err != nil {
		return nil, err
	}
	if !done {
		maxSteps := m.MaxSteps
		if maxSteps == 0 {
			maxSteps = DefaultMaxSteps
		}
		return nil, fmt.Errorf("emu: exceeded %d steps (infinite loop?)", maxSteps)
	}
	return tr, nil
}

// RunBounded executes like Run but treats the step bound as a stopping
// point rather than an error: it returns the partial trace accumulated so
// far and done=false when the bound is hit, done=true when the program
// ran to completion. maxSteps <= 0 selects m.MaxSteps (or
// DefaultMaxSteps). Execution always stops on a block boundary, so two
// machines bounded at the same step count observe identical prefixes of
// the same program.
func (m *Machine) RunBounded(sp *sched.Program, maxSteps int64) (*trace.Trace, bool, error) {
	if len(sp.Blocks) == 0 || len(sp.FuncEntries) == 0 {
		return nil, false, fmt.Errorf("emu: empty program")
	}
	if maxSteps <= 0 {
		maxSteps = m.MaxSteps
	}
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	tr := &trace.Trace{Name: sp.Name}
	m.Pred[isa.PredAlways] = true

	cur := sp.FuncEntries[0]
	for {
		b := sp.Blocks[cur]
		next, taken, err := m.execBlock(sp, b)
		if err != nil {
			return nil, false, fmt.Errorf("emu: block %d: %w", cur, err)
		}
		tr.Ops += int64(b.NumOps())
		tr.MOPs += int64(b.NumMOPs())
		tr.Events = append(tr.Events, trace.Event{Block: cur, Taken: taken, Next: next})
		if next == trace.End {
			return tr, true, nil
		}
		if m.Steps > maxSteps {
			return tr, false, nil
		}
		cur = next
	}
}

// MemSnapshot copies the machine's written memory words, for end-state
// comparison between two runs.
func (m *Machine) MemSnapshot() map[int64]int64 {
	out := make(map[int64]int64, len(m.mem))
	for k, v := range m.mem {
		out[k] = v
	}
	return out
}

// execBlock runs one basic block and resolves its successor.
func (m *Machine) execBlock(sp *sched.Program, b *sched.Block) (int, bool, error) {
	for i := range b.Ops {
		op := &b.Ops[i]
		if op.Type == isa.TypeBranch {
			if i != len(b.Ops)-1 {
				return 0, false, fmt.Errorf("interior branch at op %d", i)
			}
			break
		}
		if !m.Pred[op.Pred] {
			m.Steps++
			continue // predicated off
		}
		if err := m.exec(op); err != nil {
			return 0, false, err
		}
		m.Steps++
	}
	// Resolve the terminator.
	if len(b.Ops) == 0 {
		return b.FallTarget, false, nil
	}
	last := &b.Ops[len(b.Ops)-1]
	if last.Type != isa.TypeBranch {
		return b.FallTarget, false, nil
	}
	m.Steps++
	switch last.Code {
	case isa.OpBR, isa.OpBRLC:
		return b.TakenTarget, true, nil
	case isa.OpBRCT:
		if m.Pred[last.Pred] {
			return b.TakenTarget, true, nil
		}
		return b.FallTarget, false, nil
	case isa.OpBRCF:
		if !m.Pred[last.Pred] {
			return b.TakenTarget, true, nil
		}
		return b.FallTarget, false, nil
	case isa.OpCALL:
		if !m.Pred[last.Pred] {
			return b.FallTarget, false, nil
		}
		if b.FallTarget != trace.End {
			m.stack = append(m.stack, b.FallTarget)
		}
		return sp.FuncEntries[b.Callee], true, nil
	case isa.OpRET:
		if len(m.stack) == 0 {
			return trace.End, true, nil
		}
		ret := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		return ret, true, nil
	}
	return 0, false, fmt.Errorf("unknown branch opcode %d", last.Code)
}

// exec executes one non-branch operation's semantics.
func (m *Machine) exec(op *isa.Op) error {
	switch op.Format() {
	case isa.FmtIntALU:
		a, b := m.GPR[op.Src1], m.GPR[op.Src2]
		var v int64
		switch op.Code {
		case isa.OpADD:
			v = a + b
		case isa.OpSUB:
			v = a - b
		case isa.OpMUL:
			v = a * b
		case isa.OpDIV:
			if b == 0 {
				v = 0
			} else {
				v = a / b
			}
		case isa.OpREM:
			if b == 0 {
				v = 0
			} else {
				v = a % b
			}
		case isa.OpAND:
			v = a & b
		case isa.OpOR:
			v = a | b
		case isa.OpXOR:
			v = a ^ b
		case isa.OpSHL:
			v = a << uint(b&63)
		case isa.OpSHR:
			v = int64(uint64(a) >> uint(b&63))
		case isa.OpSRA:
			v = a >> uint(b&63)
		case isa.OpMOV:
			v = a
		case isa.OpNOT:
			v = ^a
		case isa.OpMIN:
			v = a
			if b < a {
				v = b
			}
		case isa.OpMAX:
			v = a
			if b > a {
				v = b
			}
		case isa.OpABS:
			v = a
			if v < 0 {
				v = -v
			}
		default:
			return fmt.Errorf("unimplemented int opcode %d", op.Code)
		}
		m.GPR[op.Dest] = truncate(v, op.BHWX)
	case isa.FmtLoadImm:
		switch op.Code {
		case isa.OpLDI:
			m.GPR[op.Dest] = int64(op.Imm)
		case isa.OpLDIH:
			m.GPR[op.Dest] = (m.GPR[op.Dest] & 0xfffff) | int64(op.Imm)<<20
		default:
			return fmt.Errorf("unimplemented load-imm opcode %d", op.Code)
		}
	case isa.FmtIntCmpp:
		a, b := m.GPR[op.Src1], m.GPR[op.Src2]
		var v bool
		switch op.Code {
		case isa.OpCMPEQ:
			v = a == b
		case isa.OpCMPNE:
			v = a != b
		case isa.OpCMPLT:
			v = a < b
		case isa.OpCMPLE:
			v = a <= b
		case isa.OpCMPGT:
			v = a > b
		case isa.OpCMPGE:
			v = a >= b
		case isa.OpCMPAND:
			v = m.Pred[op.Dest] && a != 0
		case isa.OpCMPOR:
			v = m.Pred[op.Dest] || a != 0
		default:
			return fmt.Errorf("unimplemented cmpp opcode %d", op.Code)
		}
		if op.Dest == isa.PredAlways {
			return fmt.Errorf("write to hardwired predicate p0")
		}
		m.Pred[op.Dest] = v
	case isa.FmtFloat:
		a, b := m.FPR[op.Src1], m.FPR[op.Src2]
		var v float64
		switch op.Code {
		case isa.OpFADD:
			v = a + b
		case isa.OpFSUB:
			v = a - b
		case isa.OpFMUL:
			v = a * b
		case isa.OpFDIV:
			v = a / b
		case isa.OpFABS:
			v = math.Abs(a)
		case isa.OpFNEG:
			v = -a
		case isa.OpFMOV:
			v = a
		case isa.OpFCVT:
			v = float64(m.GPR[op.Src1])
		case isa.OpFSQRT:
			v = math.Sqrt(a)
		case isa.OpFMIN:
			v = math.Min(a, b)
		case isa.OpFMAX:
			v = math.Max(a, b)
		default:
			return fmt.Errorf("unimplemented fp opcode %d", op.Code)
		}
		m.FPR[op.Dest] = v
	case isa.FmtLoad:
		addr := m.GPR[op.Src1]
		switch op.Code {
		case isa.OpLD, isa.OpLDS:
			m.GPR[op.Dest] = truncate(m.mem[addr], op.BHWX)
		case isa.OpFLD:
			m.FPR[op.Dest] = math.Float64frombits(uint64(m.mem[addr]))
		default:
			return fmt.Errorf("unimplemented load opcode %d", op.Code)
		}
	case isa.FmtStore:
		addr := m.GPR[op.Src1]
		switch op.Code {
		case isa.OpST:
			m.mem[addr] = truncate(m.GPR[op.Src2], op.BHWX)
		case isa.OpFST:
			m.mem[addr] = int64(math.Float64bits(m.FPR[op.Src2]))
		default:
			return fmt.Errorf("unimplemented store opcode %d", op.Code)
		}
	default:
		return fmt.Errorf("unexpected format %v", op.Format())
	}
	return nil
}

// truncate narrows a value per the BHWX operand-size field.
func truncate(v int64, bhwx uint8) int64 {
	switch bhwx {
	case isa.SizeByte:
		return int64(int8(v))
	case isa.SizeHalf:
		return int64(int16(v))
	case isa.SizeWord:
		return int64(int32(v))
	default:
		return v
	}
}
