package emu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/workload"
)

// dotProduct builds sum = Σ a[i]*b[i] over n elements, with arrays at
// addresses base..base+n-1 and base2..base2+n-1.
func dotProduct(t *testing.T, n int) *sched.Program {
	t.Helper()
	b := asm.NewProgram("dot")
	main := b.Func("main")

	init := main.Block()
	loop := main.Block()
	done := main.Block()

	r := asm.R
	p := asm.P
	// r1 = &a, r2 = &b, r3 = i, r4 = n, r5 = sum, r6 = one
	init.Ldi(r(1), 100).Ldi(r(2), 200).Ldi(r(3), 0).
		Ldi(r(4), int32(n)).Ldi(r(5), 0).Ldi(r(6), 1)

	// loop: r7 = a[i]; r8 = b[i]; r9 = r7*r8; sum += r9; i++; a++; b++
	loop.Ld(r(7), r(1)).Ld(r(8), r(2)).
		Mul(r(9), r(7), r(8)).
		Add(r(5), r(5), r(9)).
		Add(r(3), r(3), r(6)).
		Add(r(1), r(1), r(6)).
		Add(r(2), r(2), r(6)).
		Cmp(isa.OpCMPLT, p(1), r(3), r(4)).
		Brct(p(1), loop, 1-1.0/float64(n))

	done.Ret()

	irp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(irp)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestInterpreterDotProduct(t *testing.T) {
	const n = 10
	sp := dotProduct(t, n)
	m := NewMachine()
	want := int64(0)
	for i := int64(0); i < n; i++ {
		m.Store(100+i, i+1)   // a[i] = i+1
		m.Store(200+i, 2*i+3) // b[i] = 2i+3
		want += (i + 1) * (2*i + 3)
	}
	tr, err := m.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.GPR[5]; got != want {
		t.Errorf("dot product = %d, want %d", got, want)
	}
	// Trace shape: init + n loop iterations + done.
	if tr.Len() != n+2 {
		t.Errorf("trace has %d events, want %d", tr.Len(), n+2)
	}
	if err := tr.Validate(len(sp.Blocks)); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
	if tr.Ops == 0 || tr.MOPs == 0 || tr.MOPs > tr.Ops {
		t.Errorf("implausible trace totals ops=%d mops=%d", tr.Ops, tr.MOPs)
	}
}

func TestInterpreterPredication(t *testing.T) {
	b := asm.NewProgram("pred")
	main := b.Func("main")
	blk := main.Block()
	r, p := asm.R, asm.P
	// r1=5, r2=9; p1 = (r1 > r2) = false; r3 = 111 if p1 (skipped);
	// p2 = (r1 < r2) = true; r4 = 222 if p2 (executes).
	blk.Ldi(r(1), 5).Ldi(r(2), 9).
		Cmp(isa.OpCMPGT, p(1), r(1), r(2)).
		Cmp(isa.OpCMPLT, p(2), r(1), r(2)).
		Ldi(r(3), 111).Guard(p(1)).
		Ldi(r(4), 222).Guard(p(2)).
		Ret()
	irp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(irp)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	if _, err := m.Run(sp); err != nil {
		t.Fatal(err)
	}
	if m.GPR[3] != 0 {
		t.Errorf("predicated-off ldi executed: r3 = %d", m.GPR[3])
	}
	if m.GPR[4] != 222 {
		t.Errorf("predicated-on ldi skipped: r4 = %d", m.GPR[4])
	}
}

func TestInterpreterCallReturn(t *testing.T) {
	b := asm.NewProgram("call")
	main := b.Func("main")
	callee := b.Func("double")

	mb := main.Block()
	after := main.Block()
	r := asm.R
	mb.Ldi(r(1), 21).Call(callee)
	after.Mov(r(3), r(2)).Ret()

	cb := callee.Block()
	cb.Add(r(2), r(1), r(1)).Ret()

	irp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(irp)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	tr, err := m.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if m.GPR[3] != 42 {
		t.Errorf("call result r3 = %d, want 42", m.GPR[3])
	}
	if tr.Len() != 3 {
		t.Errorf("trace length %d, want 3 (main, callee, after)", tr.Len())
	}
}

func TestInterpreterInfiniteLoopBounded(t *testing.T) {
	b := asm.NewProgram("spin")
	main := b.Func("main")
	blk := main.Block()
	blk.Jump(blk)
	irp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(irp)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	m.MaxSteps = 1000
	if _, err := m.Run(sp); err == nil {
		t.Error("interpreter did not stop an infinite loop")
	}
}

func compileBench(t testing.TB, name string) *sched.Program {
	t.Helper()
	p, err := workload.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.Allocate(p); err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestStochasticTraceShape(t *testing.T) {
	sp := compileBench(t, "compress")
	tr, err := StochasticTrace(sp, 1, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 20000 {
		t.Fatalf("trace length %d, want 20000", tr.Len())
	}
	if err := tr.Validate(len(sp.Blocks)); err != nil {
		t.Fatal(err)
	}
	// Loops mean some blocks execute many times.
	counts := tr.BlockCounts(len(sp.Blocks))
	maxC := int64(0)
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 50 {
		t.Errorf("hottest block executed %d times; expected loop reuse", maxC)
	}
	if fp := tr.Footprint(len(sp.Blocks)); fp < len(sp.Blocks)/4 {
		t.Errorf("footprint %d of %d blocks; walk too narrow", fp, len(sp.Blocks))
	}
}

func TestStochasticTraceDeterministic(t *testing.T) {
	sp := compileBench(t, "go")
	t1, err := StochasticTrace(sp, 7, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := StochasticTrace(sp, 7, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1.Events {
		if t1.Events[i] != t2.Events[i] {
			t.Fatalf("event %d differs between identical runs", i)
		}
	}
	t3, err := StochasticTrace(sp, 8, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range t1.Events {
		if t1.Events[i] != t3.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestStochasticBranchBias(t *testing.T) {
	// Measured taken rates must roughly track the annotated probabilities.
	sp := compileBench(t, "vortex")
	tr, err := StochasticTrace(sp, 3, 100000, 4)
	if err != nil {
		t.Fatal(err)
	}
	taken := map[int]int{}
	total := map[int]int{}
	for _, e := range tr.Events {
		b := sp.Blocks[e.Block]
		if !b.HasCondBranch() {
			continue
		}
		total[e.Block]++
		if e.Taken {
			taken[e.Block]++
		}
	}
	checked := 0
	for id, n := range total {
		if n < 300 {
			continue
		}
		got := float64(taken[id]) / float64(n)
		want := sp.Blocks[id].TakenProb
		if got < want-0.15 || got > want+0.15 {
			t.Errorf("block %d: measured taken rate %.2f vs profile %.2f (n=%d)",
				id, got, want, n)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no hot conditional branches in window")
	}
}

func TestStochasticCallStack(t *testing.T) {
	sp := compileBench(t, "li") // call-heavy profile
	tr, err := StochasticTrace(sp, 5, 50000, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Call blocks must be followed by their callee's entry.
	for i := 0; i+1 < len(tr.Events); i++ {
		b := sp.Blocks[tr.Events[i].Block]
		if b.EndsInCall() {
			want := sp.FuncEntries[b.Callee]
			if tr.Events[i+1].Block != want {
				t.Fatalf("event %d: call to fn %d followed by block %d, want %d",
					i, b.Callee, tr.Events[i+1].Block, want)
			}
		}
	}
}

func TestStochasticEmptyProgram(t *testing.T) {
	if _, err := StochasticTrace(&sched.Program{}, 1, 10, 1); err == nil {
		t.Error("accepted empty program")
	}
	m := NewMachine()
	if _, err := m.Run(&sched.Program{}); err == nil {
		t.Error("interpreter accepted empty program")
	}
}

func TestTruncate(t *testing.T) {
	if truncate(0x1ff, isa.SizeByte) != -1 {
		t.Error("byte truncation")
	}
	if truncate(0x1ffff, isa.SizeHalf) != -1 {
		t.Error("half truncation")
	}
	if truncate(0x1ffffffff, isa.SizeWord) != -1 {
		t.Error("word truncation")
	}
	if truncate(12345, isa.SizeDouble) != 12345 {
		t.Error("double truncation")
	}
}
