package stats

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the observability surface of the compilation driver: a
// named set of monotonic counters and stage timers that concurrent
// pipeline stages update and reports snapshot. All methods are safe for
// concurrent use; Counter and Timer handles may be cached and hit with
// atomics only.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		timers:   map[string]*Timer{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Timer returns (creating if needed) the named stage timer.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Counter is a monotonic event counter.
type Counter struct{ n atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Timer accumulates durations of one pipeline stage.
type Timer struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one stage execution.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.count++
	t.total += d
}

// Time runs fn and records its duration, passing through its error.
func (t *Timer) Time(fn func() error) error {
	start := time.Now()
	err := fn()
	t.Observe(time.Since(start))
	return err
}

// TimerSnapshot is one timer's exported state.
type TimerSnapshot struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MinMS   float64 `json:"min_ms"`
	MaxMS   float64 `json:"max_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

// Snapshot is a point-in-time copy of a registry, ready for JSON export.
type Snapshot struct {
	Counters map[string]int64         `json:"counters"`
	Stages   map[string]TimerSnapshot `json:"stages"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Stages:   make(map[string]TimerSnapshot, len(r.timers)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for name, t := range r.timers {
		t.mu.Lock()
		ts := TimerSnapshot{
			Count:   t.count,
			TotalMS: ms(t.total),
			MinMS:   ms(t.min),
			MaxMS:   ms(t.max),
		}
		if t.count > 0 {
			ts.MeanMS = ts.TotalMS / float64(t.count)
		}
		t.mu.Unlock()
		s.Stages[name] = ts
	}
	return s
}

// MarshalJSON renders the snapshot with deterministic key order (Go maps
// already marshal sorted; this is the default encoder).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // avoid recursion
	return json.Marshal(alias(s))
}

// Table renders the snapshot's stage timers as a report table, stages
// sorted by name.
func (s Snapshot) Table(title string) *Table {
	t := &Table{
		Title: title,
		Cols:  []string{"stage", "count", "total ms", "mean ms", "max ms"},
	}
	names := make([]string, 0, len(s.Stages))
	for name := range s.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := s.Stages[name]
		t.AddRow(name, F(float64(ts.Count), 0),
			F(ts.TotalMS, 2), F(ts.MeanMS, 3), F(ts.MaxMS, 2))
	}
	return t
}
