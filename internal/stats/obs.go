package stats

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the observability surface of the compilation driver: a
// named set of monotonic counters and stage timers that concurrent
// pipeline stages update and reports snapshot. All methods are safe for
// concurrent use; Counter and Timer handles may be cached and hit with
// atomics only.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*Timer
	rates    map[string]*Throughput
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		timers:   map[string]*Timer{},
		rates:    map[string]*Throughput{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Timer returns (creating if needed) the named stage timer.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Throughput returns (creating if needed) the named throughput meter.
func (r *Registry) Throughput(name string) *Throughput {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.rates[name]
	if !ok {
		t = &Throughput{}
		r.rates[name] = t
	}
	return t
}

// Throughput accumulates work done over measured wall-clock intervals —
// decoded operations and consumed bits over decode time. Rates are
// derived at snapshot time, so repeated observations (more blocks, more
// benchmarks) aggregate into one meter.
type Throughput struct {
	mu      sync.Mutex
	ops     int64
	bits    int64
	elapsed time.Duration
}

// Observe records one measured interval: ops operations and bits stream
// bits processed in d.
func (t *Throughput) Observe(ops, bits int64, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ops += ops
	t.bits += bits
	t.elapsed += d
}

// Snapshot returns the meter's exported state.
func (t *Throughput) Snapshot() ThroughputSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := ThroughputSnapshot{
		Ops:       t.ops,
		Bits:      t.bits,
		ElapsedMS: float64(t.elapsed) / float64(time.Millisecond),
	}
	if secs := t.elapsed.Seconds(); secs > 0 {
		s.OpsPerSec = float64(t.ops) / secs
		s.BitsPerSec = float64(t.bits) / secs
	}
	return s
}

// ThroughputSnapshot is one throughput meter's exported state.
type ThroughputSnapshot struct {
	Ops        int64   `json:"ops"`
	Bits       int64   `json:"bits"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	BitsPerSec float64 `json:"bits_per_sec"`
}

// Counter is a monotonic event counter.
type Counter struct{ n atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Timer accumulates durations of one pipeline stage.
type Timer struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one stage execution.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.count++
	t.total += d
}

// Time runs fn and records its duration, passing through its error.
func (t *Timer) Time(fn func() error) error {
	start := time.Now()
	err := fn()
	t.Observe(time.Since(start))
	return err
}

// TimerSnapshot is one timer's exported state.
type TimerSnapshot struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MinMS   float64 `json:"min_ms"`
	MaxMS   float64 `json:"max_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

// Snapshot is a point-in-time copy of a registry, ready for JSON export.
type Snapshot struct {
	Counters   map[string]int64              `json:"counters"`
	Stages     map[string]TimerSnapshot      `json:"stages"`
	Throughput map[string]ThroughputSnapshot `json:"throughput,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Stages:   make(map[string]TimerSnapshot, len(r.timers)),
	}
	if len(r.rates) > 0 {
		s.Throughput = make(map[string]ThroughputSnapshot, len(r.rates))
		for name, t := range r.rates {
			s.Throughput[name] = t.Snapshot()
		}
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for name, t := range r.timers {
		t.mu.Lock()
		ts := TimerSnapshot{
			Count:   t.count,
			TotalMS: ms(t.total),
			MinMS:   ms(t.min),
			MaxMS:   ms(t.max),
		}
		if t.count > 0 {
			ts.MeanMS = ts.TotalMS / float64(t.count)
		}
		t.mu.Unlock()
		s.Stages[name] = ts
	}
	return s
}

// MarshalJSON renders the snapshot with deterministic key order (Go maps
// already marshal sorted; this is the default encoder).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // avoid recursion
	return json.Marshal(alias(s))
}

// Table renders the snapshot's stage timers as a report table, stages
// sorted by name.
func (s Snapshot) Table(title string) *Table {
	t := &Table{
		Title: title,
		Cols:  []string{"stage", "count", "total ms", "mean ms", "max ms"},
	}
	names := make([]string, 0, len(s.Stages))
	for name := range s.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := s.Stages[name]
		t.AddRow(name, F(float64(ts.Count), 0),
			F(ts.TotalMS, 2), F(ts.MeanMS, 3), F(ts.MaxMS, 2))
	}
	return t
}
