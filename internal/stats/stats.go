// Package stats provides the small numeric and rendering helpers the
// experiment harness uses to print the paper's tables and figures as
// fixed-width text.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

// Geomean returns the geometric mean (0 for empty or non-positive input).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Table is a fixed-width text table.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], cell)
			}
		}
		b.WriteString("\n")
	}
	line(t.Cols)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// F formats a float for table cells.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
