package stats

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersAndTimers(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(2)
	r.Counter("hits").Add(3)
	if got := r.Counter("hits").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	tm := r.Timer("stage")
	tm.Observe(2 * time.Millisecond)
	tm.Observe(4 * time.Millisecond)
	s := r.Snapshot()
	ts := s.Stages["stage"]
	if ts.Count != 2 {
		t.Errorf("timer count = %d, want 2", ts.Count)
	}
	if ts.MinMS > ts.MaxMS || ts.TotalMS < ts.MaxMS {
		t.Errorf("implausible timer stats: %+v", ts)
	}
	if ts.MeanMS <= 0 {
		t.Errorf("mean not computed: %+v", ts)
	}
}

func TestTimerTimePropagatesError(t *testing.T) {
	r := NewRegistry()
	called := false
	err := r.Timer("s").Time(func() error { called = true; return nil })
	if err != nil || !called {
		t.Fatalf("Time: err=%v called=%v", err, called)
	}
	if r.Snapshot().Stages["s"].Count != 1 {
		t.Error("Time did not record an observation")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("n").Add(1)
				r.Timer("t").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != 1600 {
		t.Errorf("counter = %d, want 1600", s.Counters["n"])
	}
	if s.Stages["t"].Count != 1600 {
		t.Errorf("timer count = %d, want 1600", s.Stages["t"].Count)
	}
}

func TestSnapshotJSONAndTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("artifact.hit").Add(9)
	r.Timer("compile.schedule").Observe(time.Millisecond)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["artifact.hit"] != 9 {
		t.Errorf("round-tripped counter = %d, want 9", back.Counters["artifact.hit"])
	}
	out := r.Snapshot().Table("stages").Render()
	if out == "" {
		t.Error("empty table render")
	}
}
