package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("Median(nil)")
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %g", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even Median = %g", got)
	}
}

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 {
		t.Error("Geomean(nil)")
	}
	if got := Geomean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Geomean = %g", got)
	}
	if Geomean([]float64{1, -1}) != 0 {
		t.Error("Geomean of non-positive input should be 0")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "demo", Cols: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRow("a-very-long-name", "23456")
	s := tab.Render()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "a-very-long-name") {
		t.Errorf("render missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), s)
	}
	// Aligned columns: the value column is right-aligned.
	if !strings.HasSuffix(lines[3], "    1") && !strings.Contains(lines[3], " 1") {
		t.Errorf("value column alignment: %q", lines[3])
	}
}

func TestFormatting(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Error("F")
	}
	if Pct(0.125) != "12.5%" {
		t.Error("Pct")
	}
}
