package ir

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cliio"
)

// WriteDOT renders the program's control-flow graph in Graphviz DOT form:
// one cluster per function, one node per basic block (labelled with its
// instruction count and taken probability), solid edges for taken
// branches, dashed for fall-through, dotted for calls. Useful for
// inspecting generated workloads and verifying structured-region
// generation.
func (p *Program) WriteDOT(w io.Writer) error {
	cw := cliio.New(w)
	pr := func(format string, args ...any) {
		cw.Printf(format+"\n", args...)
	}
	pr("digraph %q {", sanitize(p.Name))
	pr("  node [shape=box, fontsize=10];")
	for fi, f := range p.Funcs {
		pr("  subgraph cluster_%d {", fi)
		pr("    label=%q;", f.Name)
		for _, b := range f.Blocks {
			label := fmt.Sprintf("B%d\\n%d ops", b.ID, len(b.Instrs))
			if t := b.Terminator(); t != nil {
				label += fmt.Sprintf("\\n%s", t.Info().Name)
				if b.TakenProb > 0 && b.TakenProb < 1 {
					label += fmt.Sprintf(" p=%.2f", b.TakenProb)
				}
			}
			pr("    b%d [label=\"%s\"];", b.ID, label)
		}
		pr("  }")
	}
	for _, b := range p.Blocks() {
		if b.FallTarget != NoTarget {
			pr("  b%d -> b%d [style=dashed];", b.ID, b.FallTarget)
		}
		if b.TakenTarget != NoTarget {
			pr("  b%d -> b%d;", b.ID, b.TakenTarget)
		}
		if t := b.Terminator(); t != nil && b.Callee != NoTarget && b.Callee >= 0 &&
			b.Callee < len(p.Funcs) && t.Info().Name == "call" {
			pr("  b%d -> b%d [style=dotted, color=gray];",
				b.ID, p.Funcs[b.Callee].Entry().ID)
		}
	}
	pr("}")
	return cw.Err()
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '"' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}
