package ir

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// tinyProgram builds a two-function program:
//
//	main:  b0 (ldi, add, brct->b1)  b1 (call f)  b2 (ret)
//	f:     b3 (add, ret)
func tinyProgram() *Program {
	gpr := func(n int) Reg { return Reg{ClassGPR, n} }
	pred := func(n int) Reg { return Reg{ClassPred, n} }

	b0 := &Block{
		Instrs: []*Instr{
			{Type: isa.TypeInt, Code: isa.OpLDI, Imm: 7, Dest: gpr(1), Pred: PredTrue},
			{Type: isa.TypeInt, Code: isa.OpADD, Src1: gpr(1), Src2: gpr(1), Dest: gpr(2), Pred: PredTrue},
			{Type: isa.TypeInt, Code: isa.OpCMPLT, Src1: gpr(1), Src2: gpr(2), Dest: pred(1), Pred: PredTrue},
			{Type: isa.TypeBranch, Code: isa.OpBRCT, Src1: gpr(0), Pred: pred(1)},
		},
		TakenProb: 0.5,
	}
	b1 := &Block{
		Instrs: []*Instr{
			{Type: isa.TypeBranch, Code: isa.OpCALL, Src1: gpr(0), Pred: PredTrue},
		},
	}
	b2 := &Block{
		Instrs: []*Instr{
			{Type: isa.TypeBranch, Code: isa.OpRET, Pred: PredTrue},
		},
	}
	b3 := &Block{
		Instrs: []*Instr{
			{Type: isa.TypeInt, Code: isa.OpADD, Src1: gpr(1), Src2: gpr(2), Dest: gpr(3), Pred: PredTrue},
			{Type: isa.TypeBranch, Code: isa.OpRET, Pred: PredTrue},
		},
	}
	main := &Func{Name: "main", Blocks: []*Block{b0, b1, b2}}
	f := &Func{Name: "f", Blocks: []*Block{b3}}
	p := NewProgram("tiny", []*Func{main, f})
	b0.TakenTarget = b2.ID
	b0.FallTarget = b1.ID
	b1.Callee = 1
	b1.FallTarget = b2.ID
	b1.TakenTarget = NoTarget
	b2.TakenTarget = NoTarget
	b2.FallTarget = NoTarget
	b3.TakenTarget = NoTarget
	b3.FallTarget = NoTarget
	b2.Callee = NoTarget
	b0.Callee = NoTarget
	b3.Callee = NoTarget
	return p
}

func TestNewProgramAssignsIDs(t *testing.T) {
	p := tinyProgram()
	if p.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4", p.NumBlocks())
	}
	for i := 0; i < p.NumBlocks(); i++ {
		if p.Block(i).ID != i {
			t.Errorf("block %d has ID %d", i, p.Block(i).ID)
		}
	}
	if p.Block(3).Fn != 1 {
		t.Errorf("block 3 owned by function %d, want 1", p.Block(3).Fn)
	}
}

func TestValidateOK(t *testing.T) {
	p := tinyProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsInteriorBranch(t *testing.T) {
	p := tinyProgram()
	b := p.Block(0)
	// Move the branch to the front.
	b.Instrs[0], b.Instrs[3] = b.Instrs[3], b.Instrs[0]
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted interior branch")
	}
}

func TestValidateRejectsUnguardedCondBranch(t *testing.T) {
	p := tinyProgram()
	p.Block(0).Terminator().Pred = PredTrue
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted brct guarded by p0")
	}
}

func TestValidateRejectsBadTarget(t *testing.T) {
	p := tinyProgram()
	p.Block(0).TakenTarget = 99
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted out-of-range taken target")
	}
}

func TestValidateRejectsBadProb(t *testing.T) {
	p := tinyProgram()
	p.Block(0).TakenProb = 1.5
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted probability > 1")
	}
}

func TestValidateRejectsBadCallee(t *testing.T) {
	p := tinyProgram()
	p.Block(1).Callee = 42
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted call to undefined function")
	}
}

func TestTerminator(t *testing.T) {
	p := tinyProgram()
	if p.Block(0).Terminator() == nil {
		t.Error("block 0 should have a terminator")
	}
	b := &Block{Instrs: []*Instr{
		{Type: isa.TypeInt, Code: isa.OpADD, Pred: PredTrue},
	}}
	if b.Terminator() != nil {
		t.Error("branchless block reported a terminator")
	}
}

func TestUsesAndDef(t *testing.T) {
	in := &Instr{
		Type: isa.TypeInt, Code: isa.OpADD,
		Src1: Reg{ClassGPR, 1}, Src2: Reg{ClassGPR, 2},
		Dest: Reg{ClassGPR, 3}, Pred: Reg{ClassPred, 4},
	}
	uses := in.Uses()
	if len(uses) != 3 {
		t.Fatalf("Uses() returned %d regs, want 3 (src1, src2, pred)", len(uses))
	}
	if in.Def() != (Reg{ClassGPR, 3}) {
		t.Errorf("Def() = %v", in.Def())
	}
	// Guard p0 does not count as a use.
	in.Pred = PredTrue
	if len(in.Uses()) != 2 {
		t.Errorf("p0 guard counted as a use")
	}
}

func TestCollectStats(t *testing.T) {
	p := tinyProgram()
	s := Collect(p)
	if s.Funcs != 2 || s.Blocks != 4 {
		t.Errorf("funcs/blocks = %d/%d, want 2/4", s.Funcs, s.Blocks)
	}
	if s.Ops != 8 {
		t.Errorf("ops = %d, want 8", s.Ops)
	}
	if s.Branches != 4 || s.CondBr != 1 || s.Calls != 1 {
		t.Errorf("branches=%d cond=%d calls=%d, want 4/1/1",
			s.Branches, s.CondBr, s.Calls)
	}
	if s.Immediate != 1 {
		t.Errorf("immediates = %d, want 1", s.Immediate)
	}
	if s.MaxGPR != 4 {
		t.Errorf("MaxGPR = %d, want 4", s.MaxGPR)
	}
	if s.String() == "" {
		t.Error("Stats.String() empty")
	}
}

func TestInstrString(t *testing.T) {
	in := &Instr{Type: isa.TypeInt, Code: isa.OpLDI, Imm: 9,
		Dest: Reg{ClassGPR, 5}, Pred: PredTrue}
	if got := in.String(); !strings.Contains(got, "#9") || !strings.Contains(got, "r5") {
		t.Errorf("ldi renders %q", got)
	}
	guarded := &Instr{Type: isa.TypeInt, Code: isa.OpADD,
		Src1: Reg{ClassGPR, 1}, Src2: Reg{ClassGPR, 2},
		Dest: Reg{ClassGPR, 3}, Pred: Reg{ClassPred, 2}}
	if got := guarded.String(); !strings.Contains(got, "if p2") {
		t.Errorf("guarded add renders %q", got)
	}
}

func TestRegString(t *testing.T) {
	if (Reg{ClassGPR, 3}).String() != "r3" {
		t.Error("GPR string")
	}
	if None.String() != "-" {
		t.Error("None string")
	}
	if None.IsValid() {
		t.Error("None is valid")
	}
}
