// Package ir defines the compiler intermediate representation that sits
// between the synthetic workload generator and the TEPIC backend (register
// allocation, VLIW scheduling, encoding).
//
// The IR is deliberately RISC-like and close to TEPIC: each instruction has
// at most two register sources, one destination, an optional immediate and a
// guarding predicate. Programs are flat lists of functions; each function is
// a list of basic blocks; control flow is explicit through per-block taken
// and fall-through targets. Blocks carry the profile annotations (execution
// counts, branch bias) that the paper's compiler obtains from profiling runs
// and that drive both treegion-style scheduling decisions and trace
// generation.
package ir

import (
	"errors"
	"fmt"

	"repro/internal/isa"
)

// RegClass selects one of the three TEPIC register files.
type RegClass uint8

// Register classes.
const (
	ClassNone RegClass = iota // no register (absent operand)
	ClassGPR
	ClassFPR
	ClassPred
)

// String returns the assembler prefix for the class.
func (c RegClass) String() string {
	switch c {
	case ClassNone:
		return "-"
	case ClassGPR:
		return "r"
	case ClassFPR:
		return "f"
	case ClassPred:
		return "p"
	}
	return "?"
}

// Reg is a (possibly virtual) register reference. Before register
// allocation N is an unbounded virtual number; after allocation N is an
// architectural register index within the class's file.
type Reg struct {
	Class RegClass
	N     int
}

// None is the absent-register value.
var None = Reg{}

// IsValid reports whether the reference names a register.
func (r Reg) IsValid() bool { return r.Class != ClassNone }

// String renders the register, e.g. "r12" or "v7:r" for virtuals ≥ file
// size (virtual and physical numbering share the namespace; allocation
// compacts them below the file size).
func (r Reg) String() string {
	if !r.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%s%d", r.Class, r.N)
}

// PredTrue is the always-true predicate register reference (p0).
var PredTrue = Reg{ClassPred, isa.PredAlways}

// Instr is one IR instruction. Branch instructions never carry a Dest;
// their control-flow targets live on the owning Block.
type Instr struct {
	Type isa.OpType
	Code isa.Opcode
	Src1 Reg
	Src2 Reg
	Dest Reg
	Imm  int32 // literal for ldi/ldih (20-bit unsigned payload)
	BHWX uint8
	Pred Reg  // guarding predicate; PredTrue when unconditional
	Spec bool // speculative (hoisted above a branch); the TEPIC S bit
}

// Info returns the ISA metadata for the instruction.
func (in *Instr) Info() isa.OpcodeInfo { return isa.MustLookup(in.Type, in.Code) }

// IsBranch reports whether the instruction transfers control.
func (in *Instr) IsBranch() bool { return in.Type == isa.TypeBranch }

// IsMemory reports whether the instruction accesses memory.
func (in *Instr) IsMemory() bool { return in.Type == isa.TypeMemory }

// Uses returns the registers the instruction reads, including its guard
// predicate if it is not the always-true predicate.
func (in *Instr) Uses() []Reg {
	var u []Reg
	if in.Src1.IsValid() {
		u = append(u, in.Src1)
	}
	if in.Src2.IsValid() {
		u = append(u, in.Src2)
	}
	if in.Pred.IsValid() && in.Pred != PredTrue {
		u = append(u, in.Pred)
	}
	return u
}

// Def returns the register the instruction writes, or None.
func (in *Instr) Def() Reg { return in.Dest }

// String renders the instruction in assembly-like form.
func (in *Instr) String() string {
	s := fmt.Sprintf("%-6s", in.Info().Name)
	switch {
	case in.Code == isa.OpLDI || in.Code == isa.OpLDIH:
		s += fmt.Sprintf("#%d -> %s", in.Imm, in.Dest)
	case in.Type == isa.TypeBranch:
		s += in.Src1.String()
	case in.Dest.IsValid():
		s += fmt.Sprintf("%s, %s -> %s", in.Src1, in.Src2, in.Dest)
	default:
		s += fmt.Sprintf("%s, %s", in.Src1, in.Src2)
	}
	if in.Pred.IsValid() && in.Pred != PredTrue {
		s += " if " + in.Pred.String()
	}
	return s
}

// NoTarget marks an absent control-flow target.
const NoTarget = -1

// Block is one basic block: a single-entry, single-exit instruction
// sequence. If the block ends in a branch, that branch is Instrs[len-1]
// and Kind/TakenTarget describe its taken edge; FallTarget is the block
// executed when the branch is not taken (or always, for branchless blocks).
type Block struct {
	ID int // global block index within the program
	Fn int // owning function index

	Instrs []*Instr

	// TakenTarget is the global block ID reached when the terminating
	// branch is taken; NoTarget when the block has no branch or the branch
	// leaves the function (return).
	TakenTarget int
	// FallTarget is the global block ID executed on fall-through;
	// NoTarget at function end.
	FallTarget int
	// Callee is the callee function index when the terminator is a call;
	// NoTarget otherwise. Calls return to FallTarget.
	Callee int

	// Profile annotations.
	ExecCount int64   // dynamic executions observed/expected
	TakenProb float64 // probability the terminating branch is taken
}

// Terminator returns the block's branch instruction, or nil for pure
// fall-through blocks.
func (b *Block) Terminator() *Instr {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].IsBranch() {
		return b.Instrs[n-1]
	}
	return nil
}

// NumOps returns the static operation count of the block.
func (b *Block) NumOps() int { return len(b.Instrs) }

// Succs returns the block's successor block IDs: the fall-through target
// and, for non-call terminators, the taken target. Call edges (the callee
// entry) are not included — calls resume at FallTarget.
func (b *Block) Succs() []int {
	var s []int
	if b.FallTarget != NoTarget {
		s = append(s, b.FallTarget)
	}
	if t := b.Terminator(); t != nil && t.Code != isa.OpCALL && t.Code != isa.OpRET &&
		b.TakenTarget != NoTarget && b.TakenTarget != b.FallTarget {
		s = append(s, b.TakenTarget)
	}
	return s
}

// Func is one function: a contiguous slice of the program's blocks, the
// first of which is the entry.
type Func struct {
	Name   string
	ID     int
	Blocks []*Block
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Program is a whole compiled program.
type Program struct {
	Name   string
	Funcs  []*Func
	blocks []*Block // flat index: blocks[b.ID] == b
}

// NewProgram builds a program from functions, assigning global block IDs
// in layout order (the order blocks will be placed in the ROM image).
func NewProgram(name string, funcs []*Func) *Program {
	p := &Program{Name: name, Funcs: funcs}
	id := 0
	for fi, f := range funcs {
		f.ID = fi
		for _, b := range f.Blocks {
			b.ID = id
			b.Fn = fi
			p.blocks = append(p.blocks, b)
			id++
		}
	}
	return p
}

// NumBlocks returns the number of basic blocks in layout order.
func (p *Program) NumBlocks() int { return len(p.blocks) }

// Block returns the block with the given global ID.
func (p *Program) Block(id int) *Block { return p.blocks[id] }

// Blocks returns all blocks in layout order. The slice must not be
// modified.
func (p *Program) Blocks() []*Block { return p.blocks }

// NumOps returns the static operation count of the whole program.
func (p *Program) NumOps() int {
	n := 0
	for _, b := range p.blocks {
		n += len(b.Instrs)
	}
	return n
}

// ErrInvalid is returned by Validate for malformed programs.
var ErrInvalid = errors.New("ir: invalid program")

// Validate checks structural invariants: global IDs match indices, branch
// terminators are last, targets are in range, conditional branches carry a
// guard predicate, and instruction opcodes are defined.
func (p *Program) Validate() error {
	for i, b := range p.blocks {
		if b.ID != i {
			return fmt.Errorf("%w: block %d has ID %d", ErrInvalid, i, b.ID)
		}
		for j, in := range b.Instrs {
			if _, ok := isa.Lookup(in.Type, in.Code); !ok {
				return fmt.Errorf("%w: block %d instr %d: undefined opcode %v/%d",
					ErrInvalid, i, j, in.Type, in.Code)
			}
			if in.IsBranch() && j != len(b.Instrs)-1 {
				return fmt.Errorf("%w: block %d: branch at position %d is not last",
					ErrInvalid, i, j)
			}
		}
		if t := b.Terminator(); t != nil {
			switch t.Code {
			case isa.OpBRCT, isa.OpBRCF:
				if !t.Pred.IsValid() || t.Pred == PredTrue {
					return fmt.Errorf("%w: block %d: conditional branch without guard",
						ErrInvalid, i)
				}
			case isa.OpCALL:
				if b.Callee < 0 || b.Callee >= len(p.Funcs) {
					return fmt.Errorf("%w: block %d: call to undefined function %d",
						ErrInvalid, i, b.Callee)
				}
			}
			if t.Code != isa.OpRET && t.Code != isa.OpCALL {
				if b.TakenTarget < 0 || b.TakenTarget >= len(p.blocks) {
					return fmt.Errorf("%w: block %d: taken target %d out of range",
						ErrInvalid, i, b.TakenTarget)
				}
			}
		}
		if b.FallTarget != NoTarget &&
			(b.FallTarget < 0 || b.FallTarget >= len(p.blocks)) {
			return fmt.Errorf("%w: block %d: fall target %d out of range",
				ErrInvalid, i, b.FallTarget)
		}
		if b.TakenProb < 0 || b.TakenProb > 1 {
			return fmt.Errorf("%w: block %d: taken probability %g out of [0,1]",
				ErrInvalid, i, b.TakenProb)
		}
	}
	return nil
}
