package ir

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Stats summarizes a program's static characteristics. The workload
// generator's tests use it to confirm profiles are honored, and the report
// tooling prints it next to compression results.
type Stats struct {
	Funcs     int
	Blocks    int
	Ops       int
	ByType    [4]int // indexed by isa.OpType
	Branches  int
	CondBr    int
	Calls     int
	MaxGPR    int // highest GPR index used + 1
	MaxFPR    int
	MaxPred   int
	Immediate int // count of load-immediate ops
	AvgBlock  float64
}

// Collect computes Stats for a program.
func Collect(p *Program) Stats {
	var s Stats
	s.Funcs = len(p.Funcs)
	s.Blocks = p.NumBlocks()
	bump := func(r Reg) {
		switch r.Class {
		case ClassGPR:
			if r.N+1 > s.MaxGPR {
				s.MaxGPR = r.N + 1
			}
		case ClassFPR:
			if r.N+1 > s.MaxFPR {
				s.MaxFPR = r.N + 1
			}
		case ClassPred:
			if r.N+1 > s.MaxPred {
				s.MaxPred = r.N + 1
			}
		}
	}
	for _, b := range p.Blocks() {
		s.Ops += len(b.Instrs)
		for _, in := range b.Instrs {
			s.ByType[in.Type]++
			bump(in.Src1)
			bump(in.Src2)
			bump(in.Dest)
			bump(in.Pred)
			switch {
			case in.IsBranch():
				s.Branches++
				if in.Code == isa.OpBRCT || in.Code == isa.OpBRCF {
					s.CondBr++
				}
				if in.Code == isa.OpCALL {
					s.Calls++
				}
			case in.Code == isa.OpLDI || in.Code == isa.OpLDIH:
				if in.Type == isa.TypeInt {
					s.Immediate++
				}
			}
		}
	}
	if s.Blocks > 0 {
		s.AvgBlock = float64(s.Ops) / float64(s.Blocks)
	}
	return s
}

// String renders the stats as a compact single-line summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "funcs=%d blocks=%d ops=%d avgBlock=%.2f", s.Funcs, s.Blocks, s.Ops, s.AvgBlock)
	fmt.Fprintf(&b, " int=%d fp=%d mem=%d br=%d(cond %d, call %d)",
		s.ByType[isa.TypeInt], s.ByType[isa.TypeFloat], s.ByType[isa.TypeMemory],
		s.Branches, s.CondBr, s.Calls)
	fmt.Fprintf(&b, " regs(r/f/p)=%d/%d/%d", s.MaxGPR, s.MaxFPR, s.MaxPred)
	return b.String()
}
