package ir

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	p := tinyProgram()
	var sb strings.Builder
	if err := p.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{
		"digraph", "cluster_0", "cluster_1", "b0", "b3",
		"style=dashed", "style=dotted", "}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// One node per block.
	if got := strings.Count(dot, "[label=\"B"); got != p.NumBlocks() {
		t.Errorf("%d node declarations for %d blocks", got, p.NumBlocks())
	}
	// Balanced braces.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces")
	}
}

func TestWriteDOTSanitizesName(t *testing.T) {
	p := tinyProgram()
	p.Name = "we\"ird\nname"
	var sb strings.Builder
	if err := p.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(sb.String(), "\n", 2)[0]
	if strings.Count(first, "\"") != 2 {
		t.Errorf("graph name not sanitized: %q", first)
	}
}
