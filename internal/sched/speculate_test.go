package sched

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/regalloc"
	"repro/internal/workload"
)

func pred(n int) ir.Reg { return ir.Reg{Class: ir.ClassPred, N: n} }

// diamondProgram builds (with architectural registers):
//
//	A: ldi r1,#5; ldi r2,#9; cmplt p1,r1,r2; brct p1 -> C
//	B: add r3,r1,r2; mul r4,r3,r3        <- hoist candidates
//	C: mov r5,r1; ret
//
// r3 and r4 are dead on the taken path (C reads only r1), so both of B's
// leading ops can hoist into A speculatively.
func diamondProgram() *ir.Program {
	mk := func() []*ir.Block {
		a := &ir.Block{
			Instrs: []*ir.Instr{
				{Type: isa.TypeInt, Code: isa.OpLDI, Imm: 5, Dest: gpr(1), Pred: ir.PredTrue},
				{Type: isa.TypeInt, Code: isa.OpLDI, Imm: 9, Dest: gpr(2), Pred: ir.PredTrue},
				{Type: isa.TypeInt, Code: isa.OpCMPLT, Src1: gpr(1), Src2: gpr(2), Dest: pred(1), Pred: ir.PredTrue},
				{Type: isa.TypeBranch, Code: isa.OpBRCT, Src1: gpr(0), Pred: pred(1)},
			},
			TakenProb: 0.5, Callee: ir.NoTarget,
		}
		b := &ir.Block{
			Instrs: []*ir.Instr{
				{Type: isa.TypeInt, Code: isa.OpADD, Src1: gpr(1), Src2: gpr(2), Dest: gpr(3), Pred: ir.PredTrue, BHWX: isa.SizeDouble},
				{Type: isa.TypeInt, Code: isa.OpMUL, Src1: gpr(3), Src2: gpr(3), Dest: gpr(4), Pred: ir.PredTrue, BHWX: isa.SizeDouble},
			},
			Callee: ir.NoTarget,
		}
		// C redefines r3/r4 before returning, so they are dead at its
		// entry despite the conservative everything-live-at-ret rule.
		c := &ir.Block{
			Instrs: []*ir.Instr{
				{Type: isa.TypeInt, Code: isa.OpMOV, Src1: gpr(1), Src2: gpr(1), Dest: gpr(5), Pred: ir.PredTrue, BHWX: isa.SizeDouble},
				{Type: isa.TypeInt, Code: isa.OpLDI, Imm: 0, Dest: gpr(3), Pred: ir.PredTrue},
				{Type: isa.TypeInt, Code: isa.OpLDI, Imm: 0, Dest: gpr(4), Pred: ir.PredTrue},
				{Type: isa.TypeBranch, Code: isa.OpRET, Pred: ir.PredTrue},
			},
			Callee: ir.NoTarget,
		}
		return []*ir.Block{a, b, c}
	}
	blocks := mk()
	p := ir.NewProgram("diamond", []*ir.Func{{Name: "main", Blocks: blocks}})
	blocks[0].TakenTarget = blocks[2].ID
	blocks[0].FallTarget = blocks[1].ID
	blocks[1].TakenTarget = ir.NoTarget
	blocks[1].FallTarget = blocks[2].ID
	blocks[2].TakenTarget = ir.NoTarget
	blocks[2].FallTarget = ir.NoTarget
	return p
}

func TestSpeculateHoistsDeadOnTakenPath(t *testing.T) {
	p := diamondProgram()
	n, err := Speculate(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("hoisted %d ops, want 2", n)
	}
	a := p.Block(0)
	// A now holds: 3 originals + 2 hoisted + branch.
	if len(a.Instrs) != 6 {
		t.Fatalf("block A has %d instrs, want 6", len(a.Instrs))
	}
	if !a.Instrs[3].Spec || !a.Instrs[4].Spec {
		t.Error("hoisted ops not marked speculative")
	}
	if !a.Instrs[5].IsBranch() {
		t.Error("terminator not last after hoisting")
	}
	if got := len(p.Block(1).Instrs); got != 0 {
		t.Errorf("block B still has %d instrs", got)
	}
}

func TestSpeculateBlockedByLiveness(t *testing.T) {
	p := diamondProgram()
	// Make r3 live on the taken path: C reads it now.
	c := p.Block(2)
	c.Instrs[0].Src1 = gpr(3)
	n, err := Speculate(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("hoisted %d ops despite r3 live on taken path", n)
	}
}

func TestSpeculateBlockedByTerminatorSource(t *testing.T) {
	p := diamondProgram()
	// The branch reads r3 as its target register: clobbering it in A
	// before the branch would be wrong.
	p.Block(0).Terminator().Src1 = gpr(3)
	n, err := Speculate(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("hoisted %d ops over a terminator that reads the dest", n)
	}
}

func TestSpeculateConvertsLoads(t *testing.T) {
	p := diamondProgram()
	b := p.Block(1)
	b.Instrs = []*ir.Instr{
		{Type: isa.TypeMemory, Code: isa.OpLD, Src1: gpr(1), Dest: gpr(3),
			Pred: ir.PredTrue, BHWX: isa.SizeDouble},
	}
	n, err := Speculate(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("hoisted %d, want 1", n)
	}
	hoistedOp := p.Block(0).Instrs[3]
	if hoistedOp.Code != isa.OpLDS || !hoistedOp.Spec {
		t.Errorf("hoisted load is %v spec=%v, want lds/spec", hoistedOp.Code, hoistedOp.Spec)
	}
}

func TestSpeculateNeverMovesStoresOrBranches(t *testing.T) {
	p := diamondProgram()
	b := p.Block(1)
	b.Instrs = append([]*ir.Instr{
		{Type: isa.TypeMemory, Code: isa.OpST, Src1: gpr(1), Src2: gpr(2),
			Pred: ir.PredTrue, BHWX: isa.SizeDouble},
	}, b.Instrs...)
	n, err := Speculate(p)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("hoisted %d ops past a store prefix", n)
	}
}

func TestSpeculateOnBenchmarks(t *testing.T) {
	for _, name := range []string{"compress", "go", "gcc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := workload.GenerateBenchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := regalloc.Allocate(p); err != nil {
				t.Fatal(err)
			}
			plain, err := Schedule(clonedDensityProbe(t, name))
			if err != nil {
				t.Fatal(err)
			}
			hoisted, err := Speculate(p)
			if err != nil {
				t.Fatal(err)
			}
			if hoisted == 0 {
				t.Fatal("no ops hoisted on a whole benchmark")
			}
			sp, err := Schedule(p)
			if err != nil {
				t.Fatal(err)
			}
			if sp.TotalOps() != plain.TotalOps() {
				t.Fatalf("speculation changed op count: %d vs %d",
					sp.TotalOps(), plain.TotalOps())
			}
			// Hoisting moves work upward; density must not regress
			// materially (whether it improves depends on how often the
			// receiving block has free issue slots).
			if sp.Density() < plain.Density()-0.02 {
				t.Errorf("density regressed: %.3f vs %.3f",
					sp.Density(), plain.Density())
			}
			// Every speculative op is a non-store, non-branch op. Moves
			// across unconditional fall-through edges are plain code
			// motion and carry no S bit, so specOps <= hoisted.
			specOps := 0
			for _, b := range sp.Blocks {
				for _, op := range b.Ops {
					if op.Spec {
						specOps++
						if op.Type == isa.TypeBranch ||
							(op.Type == isa.TypeMemory && op.Code == isa.OpST) {
							t.Fatalf("illegal speculative op %v", op.String())
						}
					}
				}
			}
			if specOps == 0 || specOps > hoisted {
				t.Errorf("marked %d spec ops, hoisted %d", specOps, hoisted)
			}
		})
	}
}

// clonedDensityProbe regenerates and allocates the same benchmark (the
// generator is deterministic, so this is a faithful clone for comparing
// schedules).
func clonedDensityProbe(t *testing.T, name string) *ir.Program {
	t.Helper()
	p, err := workload.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.Allocate(p); err != nil {
		t.Fatal(err)
	}
	return p
}
