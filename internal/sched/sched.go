// Package sched implements VLIW instruction scheduling for the TEPIC
// backend: it packs a register-allocated IR program's RISC-like operations
// into MultiOps (MOPs) under the modeled core's resource constraints
// (6-issue, at most 2 memory operations per MOP) and emits tail bits for
// the zero-NOP encoding.
//
// The paper schedules with treegions (trees of basic blocks) and then
// decomposes to basic blocks; the IFetch study itself operates purely on
// basic blocks. This package performs dependence-driven list scheduling
// within each basic block — the part of the flow the experiments consume —
// and preserves the block-level control structure and profile annotations
// needed by the trace generator and the ATT builder.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Block is one scheduled basic block: its MOPs, the flattened operation
// sequence with tail bits, and the control-flow metadata carried over from
// the IR.
type Block struct {
	ID   int
	Fn   int
	MOPs []isa.MOP
	Ops  []isa.Op // MOPs flattened; Ops[i].Tail delimits MOP boundaries

	TakenTarget int // global block ID of the taken edge (ir.NoTarget if none)
	FallTarget  int
	Callee      int // callee function index for call terminators
	TakenProb   float64
}

// NumOps returns the operation count of the block.
func (b *Block) NumOps() int { return len(b.Ops) }

// NumMOPs returns the MOP (fetch-cycle) count of the block.
func (b *Block) NumMOPs() int { return len(b.MOPs) }

// EndsInCall reports whether the block's terminator is a subroutine call.
func (b *Block) EndsInCall() bool {
	return len(b.Ops) > 0 && b.Ops[len(b.Ops)-1].Type == isa.TypeBranch &&
		b.Ops[len(b.Ops)-1].Code == isa.OpCALL
}

// EndsInReturn reports whether the block's terminator is a return.
func (b *Block) EndsInReturn() bool {
	return len(b.Ops) > 0 && b.Ops[len(b.Ops)-1].Type == isa.TypeBranch &&
		b.Ops[len(b.Ops)-1].Code == isa.OpRET
}

// HasCondBranch reports whether the block ends in a conditional branch.
func (b *Block) HasCondBranch() bool {
	if len(b.Ops) == 0 {
		return false
	}
	last := b.Ops[len(b.Ops)-1]
	return last.Type == isa.TypeBranch &&
		(last.Code == isa.OpBRCT || last.Code == isa.OpBRCF)
}

// Program is a scheduled program: blocks in ROM layout order plus the
// entry block of every function (for call-edge resolution).
type Program struct {
	Name        string
	Blocks      []*Block
	FuncEntries []int // FuncEntries[f] = global block ID of function f's entry
}

// TotalOps returns the static operation count.
func (p *Program) TotalOps() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Ops)
	}
	return n
}

// TotalMOPs returns the static MOP count.
func (p *Program) TotalMOPs() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.MOPs)
	}
	return n
}

// Density returns the average ops per MOP — the ceiling on delivered IPC.
func (p *Program) Density() float64 {
	if p.TotalMOPs() == 0 {
		return 0
	}
	return float64(p.TotalOps()) / float64(p.TotalMOPs())
}

// Schedule packs a register-allocated program into MOPs. The input must
// already be register-allocated: any register number outside the
// architectural files is rejected.
func Schedule(p *ir.Program) (*Program, error) {
	sp := &Program{Name: p.Name}
	for _, f := range p.Funcs {
		sp.FuncEntries = append(sp.FuncEntries, f.Entry().ID)
	}
	for _, b := range p.Blocks() {
		sb, err := scheduleBlock(b)
		if err != nil {
			return nil, fmt.Errorf("sched: block %d: %w", b.ID, err)
		}
		sp.Blocks = append(sp.Blocks, sb)
	}
	return sp, nil
}

// dep tracks the dependence graph node for one instruction.
type depNode struct {
	in     *ir.Instr
	preds  []int // indices this node depends on
	nsucc  int
	height int // critical-path height (priority)
	ready  bool
	done   bool
	pos    int // original position, for stable tie-breaking
}

func scheduleBlock(b *ir.Block) (*Block, error) {
	sb := &Block{
		ID:          b.ID,
		Fn:          b.Fn,
		TakenTarget: b.TakenTarget,
		FallTarget:  b.FallTarget,
		Callee:      b.Callee,
		TakenProb:   b.TakenProb,
	}
	n := len(b.Instrs)
	if n == 0 {
		return sb, nil
	}

	nodes := buildDeps(b.Instrs)

	// Critical-path heights by reverse topological sweep (positions are a
	// topological order because dependences always point backward).
	for i := n - 1; i >= 0; i-- {
		h := nodes[i].in.Info().Latency
		nodes[i].height = h
	}
	for i := n - 1; i >= 0; i-- {
		for _, p := range nodes[i].preds {
			if nodes[p].height < nodes[i].height+nodes[p].in.Info().Latency {
				nodes[p].height = nodes[i].height + nodes[p].in.Info().Latency
			}
		}
	}

	scheduled := 0
	branchIdx := -1
	if b.Instrs[n-1].IsBranch() {
		branchIdx = n - 1
	}

	for scheduled < n {
		// Collect ready nodes: all predecessors issued (latency collapses
		// to MOP ordering; the fetch-side model streams one MOP per cycle).
		var ready []int
		for i := range nodes {
			if nodes[i].done {
				continue
			}
			ok := true
			for _, p := range nodes[i].preds {
				if !nodes[p].done {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// The branch issues only once everything else has issued or is
			// issuing in this final MOP; handled below by scheduling it
			// last within the ready set.
			ready = append(ready, i)
		}
		if len(ready) == 0 {
			return nil, fmt.Errorf("dependence cycle among %d unscheduled ops", n-scheduled)
		}
		sort.Slice(ready, func(x, y int) bool {
			a, c := nodes[ready[x]], nodes[ready[y]]
			if a.height != c.height {
				return a.height > c.height
			}
			return a.pos < c.pos
		})

		var mop isa.MOP
		mem := 0
		issuedThis := map[int]bool{}
		for _, i := range ready {
			if len(mop) == isa.IssueWidth {
				break
			}
			in := nodes[i].in
			if in.IsMemory() && mem == isa.MemUnits {
				continue
			}
			if i == branchIdx {
				// Branch must land in the final MOP: only issue it if every
				// other op is done or issuing right now.
				allIn := true
				for j := range nodes {
					if j != i && !nodes[j].done && !issuedThis[j] {
						allIn = false
						break
					}
				}
				if !allIn {
					continue
				}
			}
			op, err := ToISA(in)
			if err != nil {
				return nil, err
			}
			mop = append(mop, op)
			issuedThis[i] = true
			if in.IsMemory() {
				mem++
			}
		}
		if len(mop) == 0 {
			return nil, fmt.Errorf("no issuable ops despite %d ready", len(ready))
		}
		mop.SealTails()
		for i := range issuedThis {
			nodes[i].done = true
		}
		scheduled += len(mop)
		sb.MOPs = append(sb.MOPs, mop)
	}

	for _, m := range sb.MOPs {
		sb.Ops = append(sb.Ops, m...)
	}
	return sb, nil
}

// buildDeps constructs the intra-block dependence edges: register RAW, WAR
// and WAW; stores ordered against all memory operations; the terminating
// branch after everything (enforced at issue time).
func buildDeps(instrs []*ir.Instr) []*depNode {
	n := len(instrs)
	nodes := make([]*depNode, n)
	for i, in := range instrs {
		nodes[i] = &depNode{in: in, pos: i}
	}
	type rk struct {
		class ir.RegClass
		n     int
	}
	lastDef := map[rk]int{}
	lastUses := map[rk][]int{}
	lastStore := -1
	lastMem := -1
	addDep := func(i, p int) {
		if p < 0 || p == i {
			return
		}
		nodes[i].preds = append(nodes[i].preds, p)
	}
	for i, in := range instrs {
		for _, u := range in.Uses() {
			k := rk{u.Class, u.N}
			if d, ok := lastDef[k]; ok {
				addDep(i, d) // RAW
			}
			lastUses[k] = append(lastUses[k], i)
		}
		if d := in.Def(); d.IsValid() {
			k := rk{d.Class, d.N}
			if pd, ok := lastDef[k]; ok {
				addDep(i, pd) // WAW
			}
			for _, u := range lastUses[k] {
				addDep(i, u) // WAR
			}
			lastDef[k] = i
			lastUses[k] = nil
		}
		if in.IsMemory() {
			if in.Code == isa.OpST || in.Code == isa.OpFST {
				// Stores are ordered after every prior memory op.
				addDep(i, lastMem)
				addDep(i, lastStore)
				lastStore = i
			} else {
				// Loads are ordered after prior stores only.
				addDep(i, lastStore)
			}
			lastMem = i
		}
	}
	return nodes
}

// ToISA lowers one register-allocated IR instruction to its TEPIC
// operation. Tail bits are left clear; MOP sealing sets them.
func ToISA(in *ir.Instr) (isa.Op, error) {
	info, ok := isa.Lookup(in.Type, in.Code)
	if !ok {
		return isa.Op{}, fmt.Errorf("sched: undefined opcode %v/%d", in.Type, in.Code)
	}
	o := isa.Op{Type: in.Type, Code: in.Code, Spec: in.Spec}
	if in.Pred.IsValid() {
		if in.Pred.N < 0 || in.Pred.N >= isa.NumPred {
			return isa.Op{}, fmt.Errorf("sched: unallocated predicate %v", in.Pred)
		}
		o.Pred = uint8(in.Pred.N)
	}
	reg := func(r ir.Reg) (uint8, error) {
		if !r.IsValid() {
			return 0, nil
		}
		if r.N < 0 || r.N >= 32 {
			return 0, fmt.Errorf("sched: unallocated register %v", r)
		}
		return uint8(r.N), nil
	}
	var err error
	switch info.Format {
	case isa.FmtIntALU:
		if o.Src1, err = reg(in.Src1); err != nil {
			return o, err
		}
		if o.Src2, err = reg(in.Src2); err != nil {
			return o, err
		}
		if o.Dest, err = reg(in.Dest); err != nil {
			return o, err
		}
		o.BHWX = in.BHWX
	case isa.FmtIntCmpp:
		if o.Src1, err = reg(in.Src1); err != nil {
			return o, err
		}
		if o.Src2, err = reg(in.Src2); err != nil {
			return o, err
		}
		if o.Dest, err = reg(in.Dest); err != nil {
			return o, err
		}
		o.BHWX = in.BHWX
	case isa.FmtLoadImm:
		o.Imm = uint32(in.Imm) & (1<<20 - 1)
		if o.Dest, err = reg(in.Dest); err != nil {
			return o, err
		}
	case isa.FmtFloat:
		if o.Src1, err = reg(in.Src1); err != nil {
			return o, err
		}
		if o.Src2, err = reg(in.Src2); err != nil {
			return o, err
		}
		if o.Dest, err = reg(in.Dest); err != nil {
			return o, err
		}
	case isa.FmtLoad:
		if o.Src1, err = reg(in.Src1); err != nil {
			return o, err
		}
		if o.Dest, err = reg(in.Dest); err != nil {
			return o, err
		}
		o.BHWX = in.BHWX
		o.Lat = uint8(info.Latency)
	case isa.FmtStore:
		if o.Src1, err = reg(in.Src1); err != nil {
			return o, err
		}
		if o.Src2, err = reg(in.Src2); err != nil {
			return o, err
		}
		o.BHWX = in.BHWX
	case isa.FmtBranch:
		if o.Src1, err = reg(in.Src1); err != nil {
			return o, err
		}
	}
	return o, nil
}
