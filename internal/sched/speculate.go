package sched

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Speculate is the treegion-flavored global scheduling pass: it hoists
// operations from a basic block into its fall-through predecessor when
// that is provably safe, marking them with the TEPIC speculative bit
// (and converting hoisted loads to the speculative-load opcode), exactly
// the compiler transformation the paper's LEGO/treegion references
// [4,5,6] perform before the code is decomposed back into basic blocks.
// Hoisting lengthens blocks and raises MOP density — the knob the paper
// turns with "restricting code duplication in the compiler to RISC-like
// levels".
//
// The pass runs on a register-allocated program (register numbers must
// fit the architectural files so liveness can use bitmasks) and mutates
// it in place. An operation hoists from block B into predecessor A only
// if
//
//   - A falls through to B, B has no other predecessors, both belong to
//     the same function, and A does not end in a call or unconditional
//     transfer (treegion edges are fall-through tree edges);
//   - the op is not a branch or store (stores cannot speculate);
//   - every source it reads is available at the end of A (not defined by
//     an un-hoisted earlier op of B);
//   - its destination is dead on A's taken path and not read by A's
//     terminator — executing it on the wrong path must be harmless;
//   - at most HoistMax ops hoist across one edge.
//
// Returns the number of hoisted operations.
func Speculate(p *ir.Program) (int, error) {
	hoisted := 0
	for _, f := range p.Funcs {
		n, err := speculateFunc(p, f)
		if err != nil {
			return hoisted, err
		}
		hoisted += n
	}
	return hoisted, nil
}

// HoistMax bounds speculation per edge, the paper's "RISC-like" level of
// code motion.
const HoistMax = 3

// regSet is a liveness bitmask over the three architectural files.
type regSet struct {
	gpr, fpr, prd uint32
}

func (s *regSet) add(r ir.Reg) {
	if !r.IsValid() || r.N < 0 || r.N >= 32 {
		return
	}
	switch r.Class {
	case ir.ClassGPR:
		s.gpr |= 1 << uint(r.N)
	case ir.ClassFPR:
		s.fpr |= 1 << uint(r.N)
	case ir.ClassPred:
		s.prd |= 1 << uint(r.N)
	}
}

func (s *regSet) remove(r ir.Reg) {
	if !r.IsValid() || r.N < 0 || r.N >= 32 {
		return
	}
	switch r.Class {
	case ir.ClassGPR:
		s.gpr &^= 1 << uint(r.N)
	case ir.ClassFPR:
		s.fpr &^= 1 << uint(r.N)
	case ir.ClassPred:
		s.prd &^= 1 << uint(r.N)
	}
}

func (s regSet) contains(r ir.Reg) bool {
	if !r.IsValid() {
		return false
	}
	if r.N < 0 || r.N >= 32 {
		return true // unallocated register: assume live (conservative)
	}
	switch r.Class {
	case ir.ClassGPR:
		return s.gpr&(1<<uint(r.N)) != 0
	case ir.ClassFPR:
		return s.fpr&(1<<uint(r.N)) != 0
	case ir.ClassPred:
		return s.prd&(1<<uint(r.N)) != 0
	}
	return true
}

func (s *regSet) union(o regSet) bool {
	before := *s
	s.gpr |= o.gpr
	s.fpr |= o.fpr
	s.prd |= o.prd
	return *s != before
}

var allLive = regSet{gpr: ^uint32(0), fpr: ^uint32(0), prd: ^uint32(0)}

// liveness computes per-block live-in sets for one function by backward
// fixed-point iteration. Calls and returns are conservative barriers:
// everything is considered live across them (our IR has no calling
// convention, so callee/caller register communication is untyped).
func liveness(p *ir.Program, f *ir.Func) map[int]regSet {
	liveIn := map[int]regSet{}
	inFunc := map[int]bool{}
	for _, b := range f.Blocks {
		inFunc[b.ID] = true
	}
	changed := true
	for changed {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			var out regSet
			term := b.Terminator()
			if term != nil && (term.Code == isa.OpRET || term.Code == isa.OpCALL) {
				out = allLive
			} else {
				if b.FallTarget >= 0 && inFunc[b.FallTarget] {
					out.union(liveIn[b.FallTarget])
				}
				if b.TakenTarget >= 0 && inFunc[b.TakenTarget] {
					out.union(liveIn[b.TakenTarget])
				}
			}
			// Backward transfer through the block.
			in := out
			for j := len(b.Instrs) - 1; j >= 0; j-- {
				instr := b.Instrs[j]
				if d := instr.Def(); d.IsValid() {
					in.remove(d)
				}
				for _, u := range instr.Uses() {
					in.add(u)
				}
			}
			cur := liveIn[b.ID]
			if cur.union(in) {
				liveIn[b.ID] = cur
				changed = true
			}
		}
	}
	return liveIn
}

func speculateFunc(p *ir.Program, f *ir.Func) (int, error) {
	liveIn := liveness(p, f)
	inFunc := map[int]bool{}
	preds := map[int]int{}
	for _, b := range f.Blocks {
		inFunc[b.ID] = true
	}
	for _, b := range p.Blocks() {
		if b.FallTarget >= 0 {
			preds[b.FallTarget]++
		}
		if b.TakenTarget >= 0 {
			preds[b.TakenTarget]++
		}
	}
	entry := map[int]bool{}
	for _, fn := range p.Funcs {
		entry[fn.Entry().ID] = true
	}

	hoisted := 0
	for _, a := range f.Blocks {
		bID := a.FallTarget
		if bID < 0 || !inFunc[bID] || entry[bID] || preds[bID] != 1 {
			continue
		}
		term := a.Terminator()
		if term != nil {
			switch term.Code {
			case isa.OpBRCT, isa.OpBRCF:
				// conditional fall-through edge: hoisting allowed
			default:
				continue // call/ret/unconditional: barrier
			}
		}
		b := p.Block(bID)

		// Registers that must not be clobbered by a hoisted op: anything
		// live on A's taken path, plus the terminator's own sources.
		var protected regSet
		if term != nil && a.TakenTarget >= 0 && inFunc[a.TakenTarget] {
			protected = liveIn[a.TakenTarget]
		}
		if term != nil {
			for _, u := range term.Uses() {
				protected.add(u)
			}
		}
		// Only a contiguous prefix of B hoists, and it moves as a unit in
		// order, so prefix-internal def-use chains stay correct and every
		// other source was already available at the end of A.
		moved := 0
		for moved < HoistMax && moved < len(b.Instrs) {
			in := b.Instrs[moved]
			if !canSpeculate(in) {
				break
			}
			if protected.contains(in.Def()) {
				break
			}
			moved++
		}
		if moved == 0 {
			continue
		}
		// Splice the prefix out of B and into A (before the terminator).
		// Across a conditional edge the moved ops are genuinely
		// speculative (they execute on the taken path too) and carry the
		// S bit; across an unconditional fall-through edge this is plain
		// code motion. The prefix is copied: appending to a sub-slice of
		// b.Instrs would scribble over B's remaining instructions.
		prefix := append([]*ir.Instr(nil), b.Instrs[:moved]...)
		for _, in := range prefix {
			if term != nil {
				in.Spec = true
				if in.Code == isa.OpLD && in.Type == isa.TypeMemory {
					in.Code = isa.OpLDS
				}
			}
		}
		b.Instrs = b.Instrs[moved:]
		insertAt := len(a.Instrs)
		if term != nil {
			insertAt--
		}
		rest := append([]*ir.Instr(nil), a.Instrs[insertAt:]...)
		a.Instrs = append(a.Instrs[:insertAt], append(prefix, rest...)...)
		hoisted += moved
	}
	if err := p.Validate(); err != nil {
		return hoisted, fmt.Errorf("sched: speculation broke the program: %w", err)
	}
	return hoisted, nil
}

// canSpeculate reports whether an operation may execute on the wrong
// path: branches end blocks, stores have irrevocable side effects, and
// ops guarded by a predicate are left alone (their guard may be defined
// by the block's own prefix in ways the simple prefix rule cannot see
// through once predicates are involved).
func canSpeculate(in *ir.Instr) bool {
	if in.IsBranch() {
		return false
	}
	if in.Type == isa.TypeMemory && (in.Code == isa.OpST || in.Code == isa.OpFST) {
		return false
	}
	if in.Pred.IsValid() && in.Pred != ir.PredTrue {
		return false
	}
	if d := in.Def(); !d.IsValid() {
		return false
	}
	return true
}
