package sched

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/regalloc"
	"repro/internal/workload"
)

func gpr(n int) ir.Reg { return ir.Reg{Class: ir.ClassGPR, N: n} }

func oneBlockProgram(instrs []*ir.Instr) *ir.Program {
	b := &ir.Block{
		Instrs:      instrs,
		TakenTarget: ir.NoTarget, FallTarget: ir.NoTarget, Callee: ir.NoTarget,
	}
	return ir.NewProgram("t", []*ir.Func{{Name: "main", Blocks: []*ir.Block{b}}})
}

func TestScheduleIndependentOpsPack(t *testing.T) {
	// Six independent adds (distinct dests, shared sources defined by two
	// preceding ldis) must pack densely.
	instrs := []*ir.Instr{
		{Type: isa.TypeInt, Code: isa.OpLDI, Imm: 1, Dest: gpr(0), Pred: ir.PredTrue},
		{Type: isa.TypeInt, Code: isa.OpLDI, Imm: 2, Dest: gpr(1), Pred: ir.PredTrue},
	}
	for i := 2; i < 8; i++ {
		instrs = append(instrs, &ir.Instr{
			Type: isa.TypeInt, Code: isa.OpADD,
			Src1: gpr(0), Src2: gpr(1), Dest: gpr(i), Pred: ir.PredTrue,
		})
	}
	sp, err := Schedule(oneBlockProgram(instrs))
	if err != nil {
		t.Fatal(err)
	}
	b := sp.Blocks[0]
	if b.NumOps() != 8 {
		t.Fatalf("scheduled %d ops, want 8", b.NumOps())
	}
	// ldis in MOP 0, six adds fit in one 6-wide MOP.
	if b.NumMOPs() != 2 {
		t.Fatalf("got %d MOPs, want 2: %v", b.NumMOPs(), b.MOPs)
	}
	if len(b.MOPs[1]) != 6 {
		t.Errorf("second MOP has %d ops, want 6", len(b.MOPs[1]))
	}
}

func TestScheduleRespectsRAW(t *testing.T) {
	// A chain of dependent adds cannot co-issue.
	instrs := []*ir.Instr{
		{Type: isa.TypeInt, Code: isa.OpLDI, Imm: 1, Dest: gpr(0), Pred: ir.PredTrue},
		{Type: isa.TypeInt, Code: isa.OpADD, Src1: gpr(0), Src2: gpr(0), Dest: gpr(1), Pred: ir.PredTrue},
		{Type: isa.TypeInt, Code: isa.OpADD, Src1: gpr(1), Src2: gpr(1), Dest: gpr(2), Pred: ir.PredTrue},
		{Type: isa.TypeInt, Code: isa.OpADD, Src1: gpr(2), Src2: gpr(2), Dest: gpr(3), Pred: ir.PredTrue},
	}
	sp, err := Schedule(oneBlockProgram(instrs))
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Blocks[0].NumMOPs(); got != 4 {
		t.Errorf("dependent chain scheduled in %d MOPs, want 4", got)
	}
}

func TestScheduleMemUnitLimit(t *testing.T) {
	// Four independent loads: only two memory units, so two MOPs.
	instrs := []*ir.Instr{
		{Type: isa.TypeInt, Code: isa.OpLDI, Imm: 1, Dest: gpr(0), Pred: ir.PredTrue},
	}
	for i := 1; i <= 4; i++ {
		instrs = append(instrs, &ir.Instr{
			Type: isa.TypeMemory, Code: isa.OpLD,
			Src1: gpr(0), Dest: gpr(i), Pred: ir.PredTrue, BHWX: isa.SizeWord,
		})
	}
	sp, err := Schedule(oneBlockProgram(instrs))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range sp.Blocks[0].MOPs {
		mem := 0
		for _, op := range m {
			if isa.IsMemory(op.Type) {
				mem++
			}
		}
		if mem > isa.MemUnits {
			t.Errorf("MOP carries %d memory ops, limit %d", mem, isa.MemUnits)
		}
	}
}

func TestScheduleStoreOrdering(t *testing.T) {
	// store; load — the load must not be hoisted above the store.
	instrs := []*ir.Instr{
		{Type: isa.TypeInt, Code: isa.OpLDI, Imm: 8, Dest: gpr(0), Pred: ir.PredTrue},
		{Type: isa.TypeMemory, Code: isa.OpST, Src1: gpr(0), Src2: gpr(0), Pred: ir.PredTrue, BHWX: isa.SizeWord},
		{Type: isa.TypeMemory, Code: isa.OpLD, Src1: gpr(0), Dest: gpr(1), Pred: ir.PredTrue, BHWX: isa.SizeWord},
	}
	sp, err := Schedule(oneBlockProgram(instrs))
	if err != nil {
		t.Fatal(err)
	}
	b := sp.Blocks[0]
	stIdx, ldIdx := -1, -1
	for i, op := range b.Ops {
		switch op.Code {
		case isa.OpST:
			stIdx = i
		case isa.OpLD:
			ldIdx = i
		}
	}
	// Same MOP is also illegal for a dependent pair; require strictly after
	// in the flattened order and not in the same MOP.
	if ldIdx <= stIdx {
		t.Errorf("load at %d not after store at %d", ldIdx, stIdx)
	}
	mopOf := func(idx int) int {
		m := 0
		for i := 0; i < idx; i++ {
			if b.Ops[i].Tail {
				m++
			}
		}
		return m
	}
	if mopOf(ldIdx) == mopOf(stIdx) {
		t.Error("store and dependent load share a MOP")
	}
}

func TestScheduleBranchLast(t *testing.T) {
	p, err := workload.GenerateBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.Allocate(p); err != nil {
		t.Fatal(err)
	}
	sp, err := Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sp.Blocks {
		for i, op := range b.Ops {
			if isa.IsBranch(op.Type) && i != len(b.Ops)-1 {
				t.Fatalf("block %d: branch at %d of %d", b.ID, i, len(b.Ops))
			}
		}
	}
}

func TestScheduleAllBenchmarks(t *testing.T) {
	for _, name := range workload.Benchmarks {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := workload.GenerateBenchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := regalloc.Allocate(p); err != nil {
				t.Fatal(err)
			}
			sp, err := Schedule(p)
			if err != nil {
				t.Fatal(err)
			}
			if sp.TotalOps() != p.NumOps() {
				t.Fatalf("op count changed: %d -> %d", p.NumOps(), sp.TotalOps())
			}
			for _, b := range sp.Blocks {
				for _, m := range b.MOPs {
					if err := m.Validate(); err != nil {
						t.Fatalf("block %d: %v", b.ID, err)
					}
				}
			}
			d := sp.Density()
			if d < 1.2 || d > float64(isa.IssueWidth) {
				t.Errorf("%s: implausible MOP density %.2f", name, d)
			}
			if len(sp.FuncEntries) == 0 {
				t.Error("no function entries recorded")
			}
		})
	}
}

func TestToISAErrors(t *testing.T) {
	if _, err := ToISA(&ir.Instr{Type: isa.TypeInt, Code: isa.OpADD,
		Src1: gpr(99), Pred: ir.PredTrue}); err == nil {
		t.Error("ToISA accepted unallocated register r99")
	}
	if _, err := ToISA(&ir.Instr{Type: isa.TypeBranch, Code: 31,
		Pred: ir.PredTrue}); err == nil {
		t.Error("ToISA accepted undefined opcode")
	}
}

func TestToISACarriesFields(t *testing.T) {
	op, err := ToISA(&ir.Instr{
		Type: isa.TypeMemory, Code: isa.OpLD,
		Src1: gpr(4), Dest: gpr(5), Pred: ir.Reg{Class: ir.ClassPred, N: 3},
		BHWX: isa.SizeByte,
	})
	if err != nil {
		t.Fatal(err)
	}
	if op.Src1 != 4 || op.Dest != 5 || op.Pred != 3 || op.BHWX != isa.SizeByte {
		t.Errorf("fields dropped: %+v", op)
	}
	if op.Lat != 2 {
		t.Errorf("load latency field %d, want 2", op.Lat)
	}
}
