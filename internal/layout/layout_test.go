package layout

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/compress"
	"repro/internal/emu"
	"repro/internal/image"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/workload"
)

func compile(t testing.TB, name string) *sched.Program {
	t.Helper()
	p, err := workload.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.Allocate(p); err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestIdentity(t *testing.T) {
	sp := compile(t, "compress")
	o := Identity(sp)
	if err := o.Validate(sp); err != nil {
		t.Fatal(err)
	}
	for i, id := range o {
		if i != id {
			t.Fatalf("identity order broken at %d", i)
		}
	}
}

func TestValidateRejectsBadOrders(t *testing.T) {
	sp := compile(t, "compress")
	o := Identity(sp)
	o[0] = o[1] // duplicate entry
	if err := o.Validate(sp); err == nil {
		t.Error("accepted duplicate")
	}
	if err := (Order{0}).Validate(sp); err == nil {
		t.Error("accepted short order")
	}
}

func TestHotLayoutIsPermutation(t *testing.T) {
	for _, name := range workload.Benchmarks {
		sp := compile(t, name)
		prof := workload.MustProfile(name)
		tr, err := emu.StochasticTrace(sp, prof.Seed, 50000, prof.Phases)
		if err != nil {
			t.Fatal(err)
		}
		o, err := FromTrace(sp, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := o.Validate(sp); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestHotBlocksMoveForward(t *testing.T) {
	sp := compile(t, "gcc")
	prof := workload.MustProfile("gcc")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 100000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	o, err := FromTrace(sp, tr)
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.BlockCounts(len(sp.Blocks))
	// Mean position of executed blocks must be well ahead of the mean
	// position of never-executed blocks.
	pos := make([]int, len(o))
	for p, id := range o {
		pos[id] = p
	}
	var hotSum, hotN, coldSum, coldN float64
	for id, c := range counts {
		if c > 0 {
			hotSum += float64(pos[id])
			hotN++
		} else {
			coldSum += float64(pos[id])
			coldN++
		}
	}
	if hotN == 0 || coldN == 0 {
		t.Skip("degenerate trace")
	}
	if hotSum/hotN >= coldSum/coldN {
		t.Errorf("hot blocks not ahead: hot mean pos %.0f, cold %.0f",
			hotSum/hotN, coldSum/coldN)
	}
}

// TestHotLayoutImprovesBaseCache: the §3.3 layout pass must reduce the
// base organization's miss rate on a capacity-stressed benchmark.
func TestHotLayoutImprovesBaseCache(t *testing.T) {
	sp := compile(t, "vortex")
	prof := workload.MustProfile("vortex")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 150000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	enc := compress.NewBase()
	run := func(order Order) cache.Result {
		im, err := image.BuildOrdered(sp, enc, order)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := cache.NewSim(cache.OrgBase, cache.DefaultConfig(cache.OrgBase), im, sp)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	natural := run(nil)
	hot, err := FromTrace(sp, tr)
	if err != nil {
		t.Fatal(err)
	}
	tuned := run(hot)
	if tuned.MissRate() >= natural.MissRate() {
		t.Errorf("hot layout did not reduce misses: %.4f vs %.4f",
			tuned.MissRate(), natural.MissRate())
	}
	if tuned.IPC() < natural.IPC() {
		t.Errorf("hot layout reduced IPC: %.4f vs %.4f", tuned.IPC(), natural.IPC())
	}
	t.Logf("vortex base: miss %.2f%% -> %.2f%%, IPC %.3f -> %.3f",
		100*natural.MissRate(), 100*tuned.MissRate(), natural.IPC(), tuned.IPC())
}

func TestBuildOrderedRoundTrip(t *testing.T) {
	sp := compile(t, "compress")
	enc, err := compress.NewFullHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	prof := workload.MustProfile("compress")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 20000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	o, err := FromTrace(sp, tr)
	if err != nil {
		t.Fatal(err)
	}
	im, err := image.BuildOrdered(sp, enc, o)
	if err != nil {
		t.Fatal(err)
	}
	// Placement must not change what decodes out of the image.
	if err := image.VerifyRoundTrip(im, sp, enc); err != nil {
		t.Fatal(err)
	}
	// Same bytes total, different placement.
	natural, err := image.Build(sp, enc)
	if err != nil {
		t.Fatal(err)
	}
	if im.CodeBytes != natural.CodeBytes {
		t.Errorf("layout changed code size: %d vs %d", im.CodeBytes, natural.CodeBytes)
	}
}

func TestHotLayoutWeightsMismatch(t *testing.T) {
	sp := compile(t, "compress")
	if _, err := HotLayout(sp, make([]int64, 3)); err == nil {
		t.Error("accepted mismatched weights")
	}
}
