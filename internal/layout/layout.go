// Package layout implements the compile-time code-placement half of the
// paper's §3.3: "first, new code layout and new target addresses are
// generated ... then on the second pass, new addresses are inserted".
// Because branch targets here resolve dynamically through the ATT/ATB
// (the paper's other §3.3 option) and every block is an atomic fetch unit
// addressed by translation, re-laying out code needs no target patching
// and no physical-adjacency constraint — only the image addresses move.
//
// The pass packs hot code together: blocks are grouped into greedy
// fall-path chains and chains are ordered by measured (or annotated)
// heat, hottest functions and paths first. Hot code then shares cache
// lines with hot code, so fewer lines hold the dynamic working set —
// worth real miss-rate points at the paper's 16–20 KB cache sizes.
package layout

import (
	"fmt"
	"sort"

	"repro/internal/sched"
	"repro/internal/trace"
)

// Order is a permutation of the program's blocks: the ROM placement
// order. Block IDs (and so all control-flow metadata and traces) are
// unaffected — only where each block's bytes land in the image.
type Order []int

// Identity returns the program's original layout order.
func Identity(sp *sched.Program) Order {
	o := make(Order, len(sp.Blocks))
	for i := range o {
		o[i] = i
	}
	return o
}

// Validate checks the order is a permutation of the program's blocks.
func (o Order) Validate(sp *sched.Program) error {
	if len(o) != len(sp.Blocks) {
		return fmt.Errorf("layout: order has %d entries for %d blocks", len(o), len(sp.Blocks))
	}
	seen := make([]bool, len(o))
	for p, id := range o {
		if id < 0 || id >= len(o) || seen[id] {
			return fmt.Errorf("layout: not a permutation at position %d", p)
		}
		seen[id] = true
	}
	return nil
}

// HotLayout computes a placement from per-block execution counts
// (typically emu.MeasureProfile's Exec column or a trace's block counts;
// any non-negative weights work). Blocks are chained greedily along
// fall-through edges (a chain ends when the successor is already placed
// or belongs to another function), chains sort by heat within their
// function, and functions sort by total heat — entry chains stay first in
// their function so images remain readable.
func HotLayout(sp *sched.Program, exec []int64) (Order, error) {
	if len(exec) != len(sp.Blocks) {
		return nil, fmt.Errorf("layout: %d weights for %d blocks", len(exec), len(sp.Blocks))
	}
	type chain struct {
		fn     int
		blocks []int
		heat   int64
		first  int // original position, for stable ties
		entry  bool
	}
	entryOf := map[int]int{}
	for fi, e := range sp.FuncEntries {
		entryOf[e] = fi
	}

	consumed := make([]bool, len(sp.Blocks))
	var chains []chain
	// Seed chains from function entries first (so entries head their
	// chains), then from any block not yet consumed, in ID order.
	seed := make([]int, 0, len(sp.Blocks))
	seed = append(seed, sp.FuncEntries...)
	for id := range sp.Blocks {
		seed = append(seed, id)
	}
	for _, start := range seed {
		if consumed[start] {
			continue
		}
		b := sp.Blocks[start]
		c := chain{fn: b.Fn, first: start}
		if fi, ok := entryOf[start]; ok && fi == b.Fn {
			c.entry = true
		}
		for id := start; id >= 0 && !consumed[id] && sp.Blocks[id].Fn == c.fn; id = sp.Blocks[id].FallTarget {
			consumed[id] = true
			c.blocks = append(c.blocks, id)
			c.heat += exec[id]
		}
		chains = append(chains, c)
	}

	fnHeat := map[int]int64{}
	for _, c := range chains {
		fnHeat[c.fn] += c.heat
	}
	sort.SliceStable(chains, func(i, j int) bool {
		a, b := chains[i], chains[j]
		if a.fn != b.fn {
			if fnHeat[a.fn] != fnHeat[b.fn] {
				return fnHeat[a.fn] > fnHeat[b.fn]
			}
			return a.fn < b.fn
		}
		if a.entry != b.entry {
			return a.entry
		}
		if a.heat != b.heat {
			return a.heat > b.heat
		}
		return a.first < b.first
	})
	var order Order
	for _, c := range chains {
		order = append(order, c.blocks...)
	}
	if err := order.Validate(sp); err != nil {
		return nil, err
	}
	return order, nil
}

// FromTrace is HotLayout fed by a trace's block counts.
func FromTrace(sp *sched.Program, tr *trace.Trace) (Order, error) {
	return HotLayout(sp, tr.BlockCounts(len(sp.Blocks)))
}
