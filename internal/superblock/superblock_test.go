package superblock

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/workload"
)

func compile(t testing.TB, name string) *sched.Program {
	t.Helper()
	p, err := workload.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.Allocate(p); err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestBuildCoversEveryBlock(t *testing.T) {
	sp := compile(t, "compress")
	plan, err := Build(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(sp.Blocks))
	for _, u := range plan.Units {
		for i, id := range u.Blocks {
			if seen[id] {
				t.Fatalf("block %d in two units", id)
			}
			seen[id] = true
			if plan.UnitOf(id) != u.ID {
				t.Fatalf("unitOf(%d) inconsistent", id)
			}
			// Chain property: consecutive members are fall-through linked.
			if i > 0 {
				prev := sp.Blocks[u.Blocks[i-1]]
				if prev.FallTarget != id {
					t.Fatalf("unit %d: block %d does not fall to %d", u.ID, u.Blocks[i-1], id)
				}
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("block %d not in any unit", id)
		}
	}
}

func TestBuildFormsMultiBlockUnits(t *testing.T) {
	sp := compile(t, "gcc")
	plan, err := Build(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Units) >= len(sp.Blocks) {
		t.Fatalf("no merging happened: %d units for %d blocks",
			len(plan.Units), len(sp.Blocks))
	}
	multi := 0
	for _, u := range plan.Units {
		if len(u.Blocks) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-block units formed")
	}
}

func TestNoSideEntrances(t *testing.T) {
	sp := compile(t, "go")
	plan, err := Build(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No block may target the *interior* of a unit.
	interior := map[int]bool{}
	for _, u := range plan.Units {
		for i, id := range u.Blocks {
			if i > 0 {
				interior[id] = true
			}
		}
	}
	for _, b := range sp.Blocks {
		if b.TakenTarget >= 0 && interior[b.TakenTarget] {
			t.Fatalf("block %d branches into the interior of a unit (block %d)",
				b.ID, b.TakenTarget)
		}
	}
	for _, e := range sp.FuncEntries {
		if interior[e] {
			t.Fatalf("function entry %d is a unit interior", e)
		}
	}
}

func TestEvaluate(t *testing.T) {
	sp := compile(t, "ijpeg")
	prof := workload.MustProfile("ijpeg")
	tr, err := emu.StochasticTrace(sp, prof.Seed, 100000, prof.Phases)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Evaluate(sp, tr)
	if s.FetchStartsBB != int64(tr.Len()) {
		t.Errorf("BB fetch starts %d != trace length %d", s.FetchStartsBB, tr.Len())
	}
	if s.FetchStartsSB >= s.FetchStartsBB {
		t.Errorf("superblocks did not reduce fetch starts: %d vs %d",
			s.FetchStartsSB, s.FetchStartsBB)
	}
	if s.FetchReduction() <= 0 || s.FetchReduction() >= 1 {
		t.Errorf("fetch reduction %.3f implausible", s.FetchReduction())
	}
	if s.ATTAfter >= s.ATTBefore {
		t.Errorf("ATT entries did not shrink: %d vs %d", s.ATTAfter, s.ATTBefore)
	}
	if s.AvgUnitOps <= s.AvgBlockOps {
		t.Errorf("units (%.2f ops) not larger than blocks (%.2f ops)",
			s.AvgUnitOps, s.AvgBlockOps)
	}
	// Side exits must be bounded: the threshold admits at most ~30%-taken
	// branches inside units, and most unit boundaries are hard edges.
	if rate := s.SideExitRate(); rate > 0.5 {
		t.Errorf("side-exit rate %.3f too high for profile-guided formation", rate)
	}
}

func TestThresholdMonotonic(t *testing.T) {
	sp := compile(t, "m88ksim")
	loose, err := Build(sp, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Build(sp, 0.97)
	if err != nil {
		t.Fatal(err)
	}
	// Looser chaining merges more aggressively, so it cannot produce more
	// units than strict chaining.
	if len(loose.Units) > len(strict.Units) {
		t.Errorf("loose threshold produced more units (%d) than strict (%d)",
			len(loose.Units), len(strict.Units))
	}
}

func TestBuildValidation(t *testing.T) {
	sp := compile(t, "compress")
	if _, err := Build(sp, 1.5); err == nil {
		t.Error("accepted threshold > 1")
	}
}
