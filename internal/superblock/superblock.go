// Package superblock explores the paper's final future-work item: "usage
// of complex blocks as fetch units" (§7; §3.1 sketches the requirements —
// blocks with side exits are fine as long as the exits are rarely taken,
// side entrances are not allowed, and an invalidation mechanism covers
// partial execution).
//
// Build forms superblock-style fetch units by chaining a basic block to
// its fall-through successor when that successor has no other entrances
// and the chaining branch rarely leaves the chain. Evaluate then replays
// a dynamic trace to quantify what the larger fetch unit would buy: fewer
// fetch initiations (each one is a prediction + ATB access + potential
// startup penalty) and fewer ATT entries (one per fetch unit instead of
// one per basic block), against the dynamic rate of side exits (which a
// real implementation must handle with invalidation).
package superblock

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Unit is one fetch unit: a chain of basic blocks entered only at the
// head, left normally at the tail, and possibly early through rare side
// exits.
type Unit struct {
	ID     int
	Blocks []int // member block IDs, chain order
	Ops    int
	MOPs   int
}

// Plan is a superblock formation over one program.
type Plan struct {
	Units  []Unit
	unitOf []int // block ID -> unit ID
	posOf  []int // block ID -> position within its unit
}

// UnitOf returns the fetch unit containing a block.
func (p *Plan) UnitOf(block int) int { return p.unitOf[block] }

// DefaultMinFallProb is the chaining threshold: a side exit may be taken
// at most 30% of the time, mirroring profile-guided superblock formation.
const DefaultMinFallProb = 0.7

// Build forms fetch units. minFallProb is the minimum fall-through
// probability required to chain across a conditional branch; <= 0 selects
// DefaultMinFallProb.
func Build(sp *sched.Program, minFallProb float64) (*Plan, error) {
	if minFallProb <= 0 {
		minFallProb = DefaultMinFallProb
	}
	if minFallProb > 1 {
		return nil, fmt.Errorf("superblock: fall probability threshold %g > 1", minFallProb)
	}
	n := len(sp.Blocks)
	preds := make([]int, n)
	entry := make([]bool, n)
	for _, e := range sp.FuncEntries {
		entry[e] = true
	}
	for _, b := range sp.Blocks {
		if b.FallTarget >= 0 {
			preds[b.FallTarget]++
		}
		if b.TakenTarget >= 0 {
			preds[b.TakenTarget]++
		}
	}

	// canChain reports whether block b extends its unit into b.FallTarget.
	canChain := func(b *sched.Block) bool {
		ft := b.FallTarget
		if ft < 0 || entry[ft] || preds[ft] != 1 || sp.Blocks[ft].Fn != b.Fn {
			return false
		}
		if len(b.Ops) > 0 && b.Ops[len(b.Ops)-1].Type == isa.TypeBranch {
			switch b.Ops[len(b.Ops)-1].Code {
			case isa.OpBR, isa.OpBRLC, isa.OpRET, isa.OpCALL:
				return false // control never falls through
			}
		}
		if b.HasCondBranch() && 1-b.TakenProb < minFallProb {
			return false // side exit too likely
		}
		return true
	}

	p := &Plan{
		unitOf: make([]int, n),
		posOf:  make([]int, n),
	}
	for i := range p.unitOf {
		p.unitOf[i] = -1
	}
	for start := 0; start < n; start++ {
		if p.unitOf[start] != -1 {
			continue
		}
		// Only start a unit at a block that is not someone's unique
		// fall-through continuation (those get absorbed by their
		// predecessor's chain) — unless the predecessor is already placed.
		u := Unit{ID: len(p.Units)}
		cur := start
		for {
			p.unitOf[cur] = u.ID
			p.posOf[cur] = len(u.Blocks)
			b := sp.Blocks[cur]
			u.Blocks = append(u.Blocks, cur)
			u.Ops += b.NumOps()
			u.MOPs += b.NumMOPs()
			if !canChain(b) {
				break
			}
			next := b.FallTarget
			if p.unitOf[next] != -1 {
				break
			}
			cur = next
		}
		p.Units = append(p.Units, u)
	}
	return p, nil
}

// Stats quantifies a formation statically and against one trace.
type Stats struct {
	Blocks      int
	Units       int
	AvgUnitOps  float64
	AvgBlockOps float64

	// ATT entries: one per block before, one per unit after.
	ATTBefore int
	ATTAfter  int

	// Dynamic, from the trace.
	FetchStartsBB int64 // fetch initiations at basic-block granularity
	FetchStartsSB int64 // fetch initiations at superblock granularity
	SideExits     int64 // dynamic early exits out of a unit
}

// FetchReduction is the fraction of fetch initiations the larger units
// remove.
func (s Stats) FetchReduction() float64 {
	if s.FetchStartsBB == 0 {
		return 0
	}
	return 1 - float64(s.FetchStartsSB)/float64(s.FetchStartsBB)
}

// SideExitRate is the fraction of unit executions that leave early.
func (s Stats) SideExitRate() float64 {
	if s.FetchStartsSB == 0 {
		return 0
	}
	return float64(s.SideExits) / float64(s.FetchStartsSB)
}

// Evaluate replays a trace over the formation.
func (p *Plan) Evaluate(sp *sched.Program, tr *trace.Trace) Stats {
	s := Stats{
		Blocks:    len(sp.Blocks),
		Units:     len(p.Units),
		ATTBefore: len(sp.Blocks),
		ATTAfter:  len(p.Units),
	}
	totalOps := 0
	for _, u := range p.Units {
		totalOps += u.Ops
	}
	if s.Units > 0 {
		s.AvgUnitOps = float64(totalOps) / float64(s.Units)
	}
	if s.Blocks > 0 {
		s.AvgBlockOps = float64(totalOps) / float64(s.Blocks)
	}

	prevBlock := -1
	for _, ev := range tr.Events {
		s.FetchStartsBB++
		continues := false
		if prevBlock >= 0 &&
			p.unitOf[prevBlock] == p.unitOf[ev.Block] &&
			p.posOf[ev.Block] == p.posOf[prevBlock]+1 &&
			sp.Blocks[prevBlock].FallTarget == ev.Block {
			continues = true
		}
		if !continues {
			s.FetchStartsSB++
			// Did the previous unit end early? Early = the previous block
			// was not the tail of its unit.
			if prevBlock >= 0 {
				u := p.Units[p.unitOf[prevBlock]]
				if p.posOf[prevBlock] != len(u.Blocks)-1 {
					s.SideExits++
				}
			}
		}
		prevBlock = ev.Block
	}
	return s
}
