package compress

import (
	"fmt"
	"sort"

	"repro/internal/bitio"
	"repro/internal/huffman"
	"repro/internal/isa"
	"repro/internal/sched"
)

// Dictionary is a beyond-Huffman scheme in the spirit the paper's future
// work calls for (§7) and its related work discusses (IBM CodePack, Liao's
// dictionary methods): the 2^IndexBits most frequent whole operations are
// replaced by a short index ('0' + index bits), every other operation is
// escaped verbatim ('1' + the raw 40-bit encoding). The decoder is a
// plain RAM lookup — far simpler than any Huffman tree — at the price of
// a worse compression ratio.
type Dictionary struct {
	indexBits int
	index     map[uint64]uint32 // op word -> dictionary slot
	words     []uint64          // slot -> op word
}

// DefaultDictionaryBits indexes a 256-entry operation dictionary.
const DefaultDictionaryBits = 8

// NewDictionary builds the scheme from a scheduled program's whole-op
// frequencies.
func NewDictionary(p *sched.Program, indexBits int) (*Dictionary, error) {
	if indexBits < 1 || indexBits > 20 {
		return nil, fmt.Errorf("%w: dictionary index bits %d outside [1,20]", ErrBadConfig, indexBits)
	}
	freq := map[uint64]int64{}
	for _, b := range p.Blocks {
		for i := range b.Ops {
			freq[b.Ops[i].Encode()]++
		}
	}
	type wf struct {
		w uint64
		f int64
	}
	all := make([]wf, 0, len(freq))
	for w, f := range freq {
		all = append(all, wf{w, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].w < all[j].w
	})
	d := &Dictionary{indexBits: indexBits, index: map[uint64]uint32{}}
	limit := 1 << uint(indexBits)
	for i, e := range all {
		if i >= limit {
			break
		}
		d.index[e.w] = uint32(i)
		d.words = append(d.words, e.w)
	}
	return d, nil
}

// Name implements Encoder.
func (d *Dictionary) Name() string { return "dict" }

// Entries returns the dictionary size.
func (d *Dictionary) Entries() int { return len(d.words) }

// IndexBits returns the index width.
func (d *Dictionary) IndexBits() int { return d.indexBits }

// opBits returns the encoded size of one op.
func (d *Dictionary) opBits(w uint64) int {
	if _, ok := d.index[w]; ok {
		return 1 + d.indexBits
	}
	return 1 + isa.OpBits
}

// BlockBits implements Encoder.
func (d *Dictionary) BlockBits(ops []isa.Op) int {
	bits := 0
	for i := range ops {
		bits += d.opBits(ops[i].Encode())
	}
	return bits
}

// EncodeBlock implements Encoder.
func (d *Dictionary) EncodeBlock(w *bitio.Writer, ops []isa.Op) error {
	for i := range ops {
		word := ops[i].Encode()
		if slot, ok := d.index[word]; ok {
			w.WriteBit(0)
			w.WriteBits(uint64(slot), d.indexBits)
		} else {
			w.WriteBit(1)
			w.WriteBits(word, isa.OpBits)
		}
	}
	return nil
}

// DecodeBlock implements Encoder.
func (d *Dictionary) DecodeBlock(r *bitio.Reader, n int) ([]isa.Op, error) {
	ops := make([]isa.Op, 0, n)
	for i := 0; i < n; i++ {
		escape, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		var word uint64
		if escape == 0 {
			slot, err := r.ReadBits(d.indexBits)
			if err != nil {
				return nil, err
			}
			if int(slot) >= len(d.words) {
				return nil, fmt.Errorf("%w: dictionary slot %d of %d", ErrCorruptStream, slot, len(d.words))
			}
			word = d.words[slot]
		} else {
			if word, err = r.ReadBits(isa.OpBits); err != nil {
				return nil, err
			}
		}
		op, err := isa.Decode(word)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// Tables implements Encoder: the dictionary is not a Huffman code; its
// decoder is costed separately (a 2^IndexBits x 40-bit RAM).
func (*Dictionary) Tables() []*huffman.Table { return nil }

// DecoderRAMBits returns the dictionary storage the decoder needs.
func (d *Dictionary) DecoderRAMBits() int { return len(d.words) * isa.OpBits }

// NewSharedByteHuffman builds ONE byte-based table from the static byte
// histogram of several programs — the single-encoding-for-a-fixed-
// architecture approach of Wolfe et al. that the paper's related-work
// section contrasts with its per-program philosophy (§6). Encoding any of
// the contributing programs with the shared table is valid; the cost is a
// worse ratio than a per-program table.
func NewSharedByteHuffman(progs []*sched.Program) (*ByteHuffman, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("%w: no programs for shared table", ErrBadConfig)
	}
	freq := map[uint64]int64{}
	for _, p := range progs {
		for _, b := range p.Blocks {
			for _, by := range isa.PackOps(b.Ops) {
				freq[uint64(by)]++
			}
		}
	}
	// Guarantee completeness: any byte can appear in a future program
	// compressed with the shared table.
	for v := uint64(0); v < 256; v++ {
		if freq[v] == 0 {
			freq[v] = 1
		}
	}
	tab, err := buildBounded(freq, CodeLenLimit)
	if err != nil {
		return nil, err
	}
	return newByteHuffman(tab), nil
}
