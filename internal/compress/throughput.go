package compress

import (
	"repro/internal/bitio"
	"repro/internal/huffman"
	"repro/internal/isa"
)

// SymbolDecoder exposes the Huffman symbol stream beneath a scheme's
// block encoding for throughput measurement: both methods consume
// exactly the codewords DecodeBlock would for an n-op block, discarding
// the symbols instead of re-materializing operations, and return the
// number of symbols decoded. DecodeBlockSymbols runs the table-driven
// fast decoder, ReferenceDecodeBlockSymbols the bit-by-bit oracle, so
// the pair isolates the entropy-decode swap that the decode-throughput
// numbers in the benchmark reports quantify — isa.Decode would sit on
// both sides of the comparison and only dilute it.
//
// Measurement contract (shared with BatchDecoder.DecodeRun and
// core.MeasureDecodeThroughput): a timed decode pass charges ONLY
// per-symbol work to the hot loop. Everything built once per
// scheme×program — Huffman tables, FastDecoders, the lane kernel, and
// the core-side decode plan (block addresses/counts) — is constructed
// in the scheme constructors or fetched from the artifact cache before
// the timer starts, and every per-pass buffer is caller-owned stack or
// reused scratch. A face that allocated or built tables inside the
// timed region would understate the decoder and overstate the swap.
//
// The three faces measured per scheme are deliberately distinct tiers:
// reference (bit-by-bit oracle), fast (per-symbol/per-block decode
// through a Reader — for the stream schemes this stays the
// symbol-at-a-time path, the pre-kernel baseline the lane gain is
// quoted against), and batch (BatchDecoder.DecodeRun, the lane-parallel
// kernel over whole-image block batches).
type SymbolDecoder interface {
	DecodeBlockSymbols(r *bitio.Reader, n int) (int, error)
	ReferenceDecodeBlockSymbols(r *bitio.Reader, n int) (int, error)
}

// decodeRunDiscard batch-decodes n symbols into a chunked stack scratch
// buffer, so the measurement faces pay no per-block allocation.
func decodeRunDiscard(d *huffman.FastDecoder, r *bitio.Reader, n int) error {
	var buf [256]uint64
	for n > 0 {
		k := n
		if k > len(buf) {
			k = len(buf)
		}
		if err := d.DecodeRun(r, buf[:k]); err != nil {
			return err
		}
		n -= k
	}
	return nil
}

// DecodeBlockSymbols implements SymbolDecoder.
func (e *ByteHuffman) DecodeBlockSymbols(r *bitio.Reader, n int) (int, error) {
	nbytes := (n*isa.OpBits + 7) / 8
	if err := decodeRunDiscard(e.fast, r, nbytes); err != nil {
		return 0, err
	}
	return nbytes, nil
}

// ReferenceDecodeBlockSymbols implements SymbolDecoder.
func (e *ByteHuffman) ReferenceDecodeBlockSymbols(r *bitio.Reader, n int) (int, error) {
	nbytes := (n*isa.OpBits + 7) / 8
	for i := 0; i < nbytes; i++ {
		if _, err := e.dec.Decode(r); err != nil {
			return i, err
		}
	}
	return nbytes, nil
}

// DecodeBlockSymbols implements SymbolDecoder. The stream scheme's
// symbols alternate between the per-segment tables, so both faces decode
// symbol-at-a-time. This face intentionally stays the per-symbol
// baseline — the batched path is DecodeRun, and BENCH_decode.json's
// lane_gain for the stream schemes is exactly DecodeRun over this.
func (e *StreamHuffman) DecodeBlockSymbols(r *bitio.Reader, n int) (int, error) {
	nsegs := len(e.fasts)
	count := 0
	for i := 0; i < n; i++ {
		for si := 0; si < nsegs; si++ {
			if _, err := e.fasts[si].Decode(r); err != nil {
				return count, err
			}
			count++
		}
	}
	return count, nil
}

// ReferenceDecodeBlockSymbols implements SymbolDecoder.
func (e *StreamHuffman) ReferenceDecodeBlockSymbols(r *bitio.Reader, n int) (int, error) {
	nsegs := len(e.decs)
	count := 0
	for i := 0; i < n; i++ {
		for si := 0; si < nsegs; si++ {
			if _, err := e.decs[si].Decode(r); err != nil {
				return count, err
			}
			count++
		}
	}
	return count, nil
}

// DecodeBlockSymbols implements SymbolDecoder.
func (e *FullHuffman) DecodeBlockSymbols(r *bitio.Reader, n int) (int, error) {
	if err := decodeRunDiscard(e.fast, r, n); err != nil {
		return 0, err
	}
	return n, nil
}

// ReferenceDecodeBlockSymbols implements SymbolDecoder.
func (e *FullHuffman) ReferenceDecodeBlockSymbols(r *bitio.Reader, n int) (int, error) {
	for i := 0; i < n; i++ {
		if _, err := e.dec.Decode(r); err != nil {
			return i, err
		}
	}
	return n, nil
}
