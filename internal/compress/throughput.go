package compress

import (
	"repro/internal/bitio"
	"repro/internal/huffman"
	"repro/internal/isa"
)

// SymbolDecoder exposes the Huffman symbol stream beneath a scheme's
// block encoding for throughput measurement: both methods consume
// exactly the codewords DecodeBlock would for an n-op block, discarding
// the symbols instead of re-materializing operations, and return the
// number of symbols decoded. DecodeBlockSymbols runs the table-driven
// fast decoder, ReferenceDecodeBlockSymbols the bit-by-bit oracle, so
// the pair isolates the entropy-decode swap that the decode-throughput
// numbers in the benchmark reports quantify — isa.Decode would sit on
// both sides of the comparison and only dilute it.
type SymbolDecoder interface {
	DecodeBlockSymbols(r *bitio.Reader, n int) (int, error)
	ReferenceDecodeBlockSymbols(r *bitio.Reader, n int) (int, error)
}

// decodeRunDiscard batch-decodes n symbols into a chunked stack scratch
// buffer, so the measurement faces pay no per-block allocation.
func decodeRunDiscard(d *huffman.FastDecoder, r *bitio.Reader, n int) error {
	var buf [256]uint64
	for n > 0 {
		k := n
		if k > len(buf) {
			k = len(buf)
		}
		if err := d.DecodeRun(r, buf[:k]); err != nil {
			return err
		}
		n -= k
	}
	return nil
}

// DecodeBlockSymbols implements SymbolDecoder.
func (e *ByteHuffman) DecodeBlockSymbols(r *bitio.Reader, n int) (int, error) {
	nbytes := (n*isa.OpBits + 7) / 8
	if err := decodeRunDiscard(e.fast, r, nbytes); err != nil {
		return 0, err
	}
	return nbytes, nil
}

// ReferenceDecodeBlockSymbols implements SymbolDecoder.
func (e *ByteHuffman) ReferenceDecodeBlockSymbols(r *bitio.Reader, n int) (int, error) {
	nbytes := (n*isa.OpBits + 7) / 8
	for i := 0; i < nbytes; i++ {
		if _, err := e.dec.Decode(r); err != nil {
			return i, err
		}
	}
	return nbytes, nil
}

// DecodeBlockSymbols implements SymbolDecoder. The stream scheme's
// symbols alternate between the per-segment tables, so both faces decode
// symbol-at-a-time.
func (e *StreamHuffman) DecodeBlockSymbols(r *bitio.Reader, n int) (int, error) {
	nsegs := len(e.fasts)
	count := 0
	for i := 0; i < n; i++ {
		for si := 0; si < nsegs; si++ {
			if _, err := e.fasts[si].Decode(r); err != nil {
				return count, err
			}
			count++
		}
	}
	return count, nil
}

// ReferenceDecodeBlockSymbols implements SymbolDecoder.
func (e *StreamHuffman) ReferenceDecodeBlockSymbols(r *bitio.Reader, n int) (int, error) {
	nsegs := len(e.decs)
	count := 0
	for i := 0; i < n; i++ {
		for si := 0; si < nsegs; si++ {
			if _, err := e.decs[si].Decode(r); err != nil {
				return count, err
			}
			count++
		}
	}
	return count, nil
}

// DecodeBlockSymbols implements SymbolDecoder.
func (e *FullHuffman) DecodeBlockSymbols(r *bitio.Reader, n int) (int, error) {
	if err := decodeRunDiscard(e.fast, r, n); err != nil {
		return 0, err
	}
	return n, nil
}

// ReferenceDecodeBlockSymbols implements SymbolDecoder.
func (e *FullHuffman) ReferenceDecodeBlockSymbols(r *bitio.Reader, n int) (int, error) {
	for i := 0; i < n; i++ {
		if _, err := e.dec.Decode(r); err != nil {
			return i, err
		}
	}
	return n, nil
}
