package compress

import (
	"testing"

	"repro/internal/bitio"
	"repro/internal/isa"
	"repro/internal/sched"
)

func TestDictionaryRoundTrip(t *testing.T) {
	sp := compile(t, "compress")
	d, err := NewDictionary(sp, DefaultDictionaryBits)
	if err != nil {
		t.Fatal(err)
	}
	roundTripBlocks(t, d, sp)
}

func TestDictionaryValidation(t *testing.T) {
	sp := compile(t, "compress")
	if _, err := NewDictionary(sp, 0); err == nil {
		t.Error("accepted 0 index bits")
	}
	if _, err := NewDictionary(sp, 21); err == nil {
		t.Error("accepted 21 index bits")
	}
}

func TestDictionaryCompressesButWorseThanHuffman(t *testing.T) {
	sp := compile(t, "go")
	d, err := NewDictionary(sp, DefaultDictionaryBits)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewFullHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	base := NewBase()
	var db, fb, bb int
	for _, blk := range sp.Blocks {
		db += d.BlockBits(blk.Ops)
		fb += full.BlockBits(blk.Ops)
		bb += base.BlockBits(blk.Ops)
	}
	if db >= bb {
		t.Errorf("dictionary (%d bits) does not beat base (%d)", db, bb)
	}
	if db <= fb {
		t.Errorf("dictionary (%d bits) should not beat optimal Huffman (%d)", db, fb)
	}
	// The decoder, by contrast, is a tiny RAM.
	if d.DecoderRAMBits() > (1<<DefaultDictionaryBits)*isa.OpBits {
		t.Errorf("decoder RAM %d bits exceeds 2^k x 40", d.DecoderRAMBits())
	}
	if d.Entries() == 0 || d.IndexBits() != DefaultDictionaryBits {
		t.Error("dictionary metadata")
	}
}

func TestDictionaryEscapePath(t *testing.T) {
	sp := compile(t, "compress")
	// A 1-bit dictionary forces nearly everything through the escape
	// path; round-trip must still hold.
	d, err := NewDictionary(sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	blk := sp.Blocks[0]
	var w bitio.Writer
	if err := d.EncodeBlock(&w, blk.Ops); err != nil {
		t.Fatal(err)
	}
	back, err := d.DecodeBlock(bitio.NewReader(w.Bytes()), len(blk.Ops))
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != blk.Ops[i] {
			t.Fatalf("op %d mismatch", i)
		}
	}
	// Escaped ops cost 41 bits.
	if got := d.BlockBits(blk.Ops); got > 41*len(blk.Ops) {
		t.Errorf("block bits %d exceed all-escape bound", got)
	}
}

func TestSharedByteHuffman(t *testing.T) {
	spA := compile(t, "compress")
	spB := compile(t, "go")
	shared, err := NewSharedByteHuffman([]*sched.Program{spA, spB})
	if err != nil {
		t.Fatal(err)
	}
	// The shared table must round-trip both contributing programs...
	roundTripBlocks(t, shared, spA)
	roundTripBlocks(t, shared, spB)
	// ...and even a program it never saw (its alphabet is complete).
	spC := compile(t, "li")
	roundTripBlocks(t, shared, spC)

	// Wolfe-style shared tables compress each program no better than its
	// own per-program table (§6's per-program argument).
	own, err := NewByteHuffman(spA)
	if err != nil {
		t.Fatal(err)
	}
	sharedBits, ownBits := 0, 0
	for _, b := range spA.Blocks {
		sharedBits += shared.BlockBits(b.Ops)
		ownBits += own.BlockBits(b.Ops)
	}
	if sharedBits < ownBits {
		t.Errorf("shared table (%d bits) beats per-program table (%d)", sharedBits, ownBits)
	}
	if _, err := NewSharedByteHuffman(nil); err == nil {
		t.Error("accepted empty program list")
	}
}
