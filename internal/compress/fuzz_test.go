package compress_test

import (
	"sync"
	"testing"

	"repro/internal/bitio"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/isa"
)

// fuzzSchemes covers every encoder family behind the common interface.
var fuzzSchemes = []string{"base", "byte", "stream", "stream_1", "full", "tailored"}

var pool struct {
	once sync.Once
	ops  []isa.Op
	encs map[string]compress.Encoder
	err  error
}

// loadPool compiles the "compress" benchmark once and exposes its
// operation pool and trained encoders. Fuzzed blocks draw operations
// from the pool, so every symbol is present in the Huffman tables and
// the tailored dictionary — any sequence of them is a legal block.
func loadPool(t testing.TB) ([]isa.Op, map[string]compress.Encoder) {
	pool.once.Do(func() {
		c, err := core.CompileBenchmark("compress")
		if err != nil {
			pool.err = err
			return
		}
		for _, b := range c.Prog.Blocks {
			pool.ops = append(pool.ops, b.Ops...)
		}
		pool.encs = map[string]compress.Encoder{}
		for _, scheme := range fuzzSchemes {
			enc, err := c.Encoder(scheme)
			if err != nil {
				pool.err = err
				return
			}
			pool.encs[scheme] = enc
		}
	})
	if pool.err != nil {
		t.Fatal(pool.err)
	}
	return pool.ops, pool.encs
}

// blockFromBytes maps arbitrary fuzz bytes to a block of pool operations.
func blockFromBytes(ops []isa.Op, data []byte) []isa.Op {
	if len(data) == 0 {
		return nil
	}
	n := int(data[0])%64 + 1
	block := make([]isa.Op, 0, n)
	h := 2166136261 // FNV-style mix of the payload selects pool indices
	for i := 0; i < n; i++ {
		h = h*16777619 ^ int(data[(i+1)%len(data)])
		j := h % len(ops)
		if j < 0 {
			j = -j
		}
		block = append(block, ops[j])
	}
	return block
}

// checkRoundTrip encodes the block under every scheme and decodes it
// back, asserting bit-exact operations and that BlockBits agrees with
// the bits actually written.
func checkRoundTrip(t *testing.T, encs map[string]compress.Encoder, block []isa.Op) {
	t.Helper()
	for scheme, enc := range encs {
		var w bitio.Writer
		before := w.BitLen()
		if err := enc.EncodeBlock(&w, block); err != nil {
			t.Fatalf("%s: encode: %v", scheme, err)
		}
		if got, want := w.BitLen()-before, enc.BlockBits(block); got != want {
			t.Errorf("%s: wrote %d bits, BlockBits predicts %d", scheme, got, want)
		}
		r := bitio.NewReader(w.Bytes())
		dec, err := enc.DecodeBlock(r, len(block))
		if err != nil {
			t.Fatalf("%s: decode: %v", scheme, err)
		}
		if len(dec) != len(block) {
			t.Fatalf("%s: decoded %d ops, want %d", scheme, len(dec), len(block))
		}
		for i := range dec {
			if dec[i] != block[i] {
				t.Fatalf("%s: op %d: %s != %s", scheme, i, dec[i].String(), block[i].String())
			}
		}
	}
}

// TestEncodeDecodeArbitraryBlocks sweeps deterministic pseudo-random
// blocks of every size class through all encoders.
func TestEncodeDecodeArbitraryBlocks(t *testing.T) {
	ops, encs := loadPool(t)
	seed := []byte{0}
	for n := 1; n <= 48; n += 7 {
		seed[0] = byte(n)
		block := make([]isa.Op, 0, n)
		for i := 0; i < n; i++ {
			block = append(block, ops[(i*2654435761+n*97)%len(ops)])
		}
		checkRoundTrip(t, encs, block)
	}
	// Empty blocks must also round-trip (some CFG blocks are fallthrough
	// only).
	checkRoundTrip(t, encs, nil)
}

// FuzzEncodeDecodeRoundTrip fuzzes encode→decode over arbitrary block
// compositions for every scheme.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{8, 0, 1, 2, 3})
	f.Add([]byte{63, 0xff, 0x80, 0x41, 0x07, 0xc3})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, encs := loadPool(t)
		checkRoundTrip(t, encs, blockFromBytes(ops, data))
	})
}
