package compress

import "errors"

// The typed failure classes of the compression schemes. Every rejection
// the package produces wraps exactly one of these, so callers classify
// with errors.Is instead of string matching.
var (
	// ErrBadConfig marks an invalid scheme configuration: stream cuts
	// out of order or out of range, dictionary index widths outside the
	// hardware bound, or a shared table built from no programs.
	ErrBadConfig = errors.New("compress: bad configuration")
	// ErrCorruptStream marks a compressed stream that decodes to
	// impossible state, e.g. a dictionary slot past the table.
	ErrCorruptStream = errors.New("compress: corrupt stream")
)
