//go:build !race

package compress_test

// raceEnabled reports that the race detector is instrumenting this
// build (it is not; see race_test.go).
const raceEnabled = false
