package compress_test

import (
	"errors"
	"testing"

	"repro/internal/bitio"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sched"
)

// batchSchemes are the Huffman schemes exposing the batch decode face.
var batchSchemes = []string{"byte", "stream", "stream_1", "full"}

// batchFixture compiles the "compress" benchmark and returns one
// scheme's batch decoder with its image geometry and program.
func batchFixture(t *testing.T, scheme string) (compress.BatchDecoder, compress.SymbolDecoder, []byte, []int, []int, *sched.Program) {
	t.Helper()
	c, err := core.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.Encoder(scheme)
	if err != nil {
		t.Fatal(err)
	}
	bd, ok := enc.(compress.BatchDecoder)
	if !ok {
		t.Fatalf("%s encoder does not expose the batch decode face", scheme)
	}
	sd, ok := enc.(compress.SymbolDecoder)
	if !ok {
		t.Fatalf("%s encoder does not expose the symbol decode face", scheme)
	}
	im, err := c.Image(scheme)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]int, len(im.Blocks))
	counts := make([]int, len(im.Blocks))
	for i := range im.Blocks {
		addrs[i] = im.Blocks[i].Addr
		counts[i] = im.Blocks[i].Ops
	}
	return bd, sd, im.Data, addrs, counts, c.Prog
}

// expectedSymbols recomputes a block's symbol stream from its source
// operations — the encode-side truth the batch decode must reproduce.
func expectedSymbols(t *testing.T, bd compress.BatchDecoder, scheme string, ops []isa.Op) []uint64 {
	t.Helper()
	var syms []uint64
	switch scheme {
	case "full":
		for i := range ops {
			syms = append(syms, ops[i].Encode())
		}
	case "byte":
		for _, by := range isa.PackOps(ops) {
			syms = append(syms, uint64(by))
		}
	default: // stream configurations
		var cfg compress.StreamConfig
		found := false
		for _, c := range compress.StreamConfigs {
			if c.Name == scheme {
				cfg, found = c, true
			}
		}
		if !found {
			t.Fatalf("unknown stream config %s", scheme)
		}
		for i := range ops {
			for _, seg := range cfg.Segments() {
				syms = append(syms, ops[i].SliceBits(seg[0], seg[1]))
			}
		}
	}
	if len(syms) != bd.BatchSymbols(len(ops)) {
		t.Fatalf("%s: expected %d symbols for %d ops, BatchSymbols says %d",
			scheme, len(syms), len(ops), bd.BatchSymbols(len(ops)))
	}
	return syms
}

// TestBatchDecodeRunEquivalence proves the batch face against both
// truths on a real image: symbol-for-symbol against the encode-side
// symbol streams, and count-for-count, bit-for-bit against the
// sequential per-block fast face.
func TestBatchDecodeRunEquivalence(t *testing.T) {
	for _, scheme := range batchSchemes {
		t.Run(scheme, func(t *testing.T) {
			bd, sd, data, addrs, counts, prog := batchFixture(t, scheme)
			// Sequential oracle: per-block symbol scan through a Reader.
			r := bitio.NewReader(data)
			wantSyms, wantBits := int64(0), int64(0)
			for i := range addrs {
				if err := r.SeekBit(addrs[i] * 8); err != nil {
					t.Fatal(err)
				}
				n, err := sd.DecodeBlockSymbols(r, counts[i])
				if err != nil {
					t.Fatalf("sequential block %d: %v", i, err)
				}
				wantSyms += int64(n)
				wantBits += int64(r.Offset() - addrs[i]*8)
			}
			total := 0
			for _, n := range counts {
				total += bd.BatchSymbols(n)
			}
			// Batch face, collecting symbols.
			out := make([]uint64, total)
			syms, bits, err := bd.DecodeRun(data, addrs, counts, out)
			if err != nil {
				t.Fatalf("DecodeRun: %v", err)
			}
			if syms != wantSyms || bits != wantBits {
				t.Fatalf("DecodeRun = (%d syms, %d bits), sequential (%d, %d)",
					syms, bits, wantSyms, wantBits)
			}
			// Symbol content against the encode-side truth.
			off := 0
			for i, b := range prog.Blocks {
				want := expectedSymbols(t, bd, scheme, b.Ops)
				for j, w := range want {
					if out[off+j] != w {
						t.Fatalf("block %d symbol %d = %d, want %d", i, j, out[off+j], w)
					}
				}
				off += len(want)
			}
			if off != total {
				t.Fatalf("consumed %d of %d expected symbols", off, total)
			}
			// Discard mode must report identical counts.
			syms, bits, err = bd.DecodeRun(data, addrs, counts, nil)
			if err != nil || syms != wantSyms || bits != wantBits {
				t.Fatalf("discard DecodeRun = (%d, %d, %v), want (%d, %d, nil)",
					syms, bits, err, wantSyms, wantBits)
			}
			// A short output buffer is a typed error, not a panic.
			if _, _, err := bd.DecodeRun(data, addrs, counts, out[:total-1]); !errors.Is(err, compress.ErrShortBatchOutput) {
				t.Fatalf("short buffer error = %v, want ErrShortBatchOutput", err)
			}
		})
	}
}

// TestBatchDecodeRunTruncated: cutting the image's tail must produce
// the exact terminal the sequential face produces — the failing block
// is the last one, so group Init order cannot mask the terminal.
func TestBatchDecodeRunTruncated(t *testing.T) {
	for _, scheme := range batchSchemes {
		t.Run(scheme, func(t *testing.T) {
			bd, sd, data, addrs, counts, _ := batchFixture(t, scheme)
			cut := data[:len(data)-1]
			// Sequential truth over the truncated image.
			r := bitio.NewReader(cut)
			wantSyms := int64(0)
			var wantErr error
			for i := range addrs {
				if err := r.SeekBit(addrs[i] * 8); err != nil {
					wantErr = err
					break
				}
				n, err := sd.DecodeBlockSymbols(r, counts[i])
				wantSyms += int64(n)
				if err != nil {
					wantErr = err
					break
				}
			}
			if wantErr == nil {
				t.Skip("truncation fell on a block boundary; nothing to compare")
			}
			syms, _, err := bd.DecodeRun(cut, addrs, counts, nil)
			if err == nil {
				t.Fatal("DecodeRun decoded a truncated image cleanly")
			}
			if err.Error() != wantErr.Error() {
				t.Fatalf("terminal error:\nbatch:      %v\nsequential: %v", err, wantErr)
			}
			// The batch face always includes the failing block's partial
			// symbols; the legacy per-scheme faces disagree among
			// themselves there (stream reports partials, full/byte report
			// zero), so only a lower bound is comparable across schemes.
			if syms < wantSyms {
				t.Fatalf("terminal symbol count %d below sequential %d", syms, wantSyms)
			}
		})
	}
}

// TestBatchDecodeRunZeroAlloc is the dynamic half of the
// //tepic:hotpath contract on decodeRunLanes: zero allocations per
// whole-image batch decode on both the discard and the collect paths.
func TestBatchDecodeRunZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	for _, scheme := range []string{"stream", "full"} {
		bd, _, data, addrs, counts, _ := batchFixture(t, scheme)
		total := 0
		for _, n := range counts {
			total += bd.BatchSymbols(n)
		}
		out := make([]uint64, total)
		allocs := testing.AllocsPerRun(20, func() {
			if _, _, err := bd.DecodeRun(data, addrs, counts, out); err != nil {
				t.Fatal(err)
			}
			if _, _, err := bd.DecodeRun(data, addrs, counts, nil); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s DecodeRun: %.1f allocs per image, want 0", scheme, allocs)
		}
	}
}

// TestBatchDecodeRunEmpty pins the degenerate shapes.
func TestBatchDecodeRunEmpty(t *testing.T) {
	bd, _, data, _, _, _ := batchFixture(t, "full")
	syms, bits, err := bd.DecodeRun(data, nil, nil, nil)
	if syms != 0 || bits != 0 || err != nil {
		t.Fatalf("empty batch = (%d, %d, %v), want (0, 0, nil)", syms, bits, err)
	}
	syms, bits, err = bd.DecodeRun(data, []int{0}, []int{0}, nil)
	if syms != 0 || bits != 0 || err != nil {
		t.Fatalf("zero-op block = (%d, %d, %v), want (0, 0, nil)", syms, bits, err)
	}
}
