//go:build race

package compress_test

// raceEnabled reports that the race detector is instrumenting this
// build. Allocation-count regressions skip under it: instrumentation
// perturbs what the runtime attributes to the measured function.
const raceEnabled = true
