package compress_test

import (
	"testing"

	"repro/internal/bitio"
	"repro/internal/compress"
	"repro/internal/core"
)

// tierFixture builds the fast/batch measurement shape for one scheme on
// a real benchmark image: the per-block address and operation-count
// queues that both decode tiers consume.
func tierFixture(b *testing.B, scheme string) (compress.BatchDecoder, compress.SymbolDecoder, []byte, []int, []int) {
	b.Helper()
	c, err := core.CompileBenchmark("compress")
	if err != nil {
		b.Fatal(err)
	}
	enc, err := c.Encoder(scheme)
	if err != nil {
		b.Fatal(err)
	}
	bd := enc.(compress.BatchDecoder)
	sd := enc.(compress.SymbolDecoder)
	im, err := c.Image(scheme)
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]int, len(im.Blocks))
	counts := make([]int, len(im.Blocks))
	for i := range im.Blocks {
		addrs[i] = im.Blocks[i].Addr
		counts[i] = im.Blocks[i].Ops
	}
	return bd, sd, im.Data, addrs, counts
}

// BenchmarkDecodeTiers is the microbenchmark behind the lane-gain
// ratchet: for every batch-capable scheme it decodes a whole benchmark
// image block by block through the fast per-symbol face (SeekBit +
// DecodeBlockSymbols, the pre-kernel decode path) and through the
// lane-kernel batch face (DecodeRun in discard mode). The batch/fast
// ratio here is what tepicbench reports as lane gain and what the CI
// bench-smoke job gates with -lanemin.
func BenchmarkDecodeTiers(b *testing.B) {
	for _, scheme := range batchSchemes {
		bd, sd, data, addrs, counts := tierFixture(b, scheme)
		var bits int64
		b.Run(scheme+"/fast", func(b *testing.B) {
			r := bitio.NewReader(data)
			for i := 0; i < b.N; i++ {
				bits = 0
				for j := range addrs {
					if err := r.SeekBit(addrs[j] * 8); err != nil {
						b.Fatal(err)
					}
					before := r.Offset()
					if _, err := sd.DecodeBlockSymbols(r, counts[j]); err != nil {
						b.Fatal(err)
					}
					bits += int64(r.Offset() - before)
				}
			}
			b.SetBytes(bits / 8)
		})
		b.Run(scheme+"/batch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if _, bits, err = bd.DecodeRun(data, addrs, counts, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(bits / 8)
		})
	}
}
