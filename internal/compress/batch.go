package compress

import (
	"repro/internal/huffman"
	"repro/internal/isa"
)

// ErrShortBatchOutput reports a DecodeRun output buffer smaller than
// the batch's total symbol count (see BatchDecoder.BatchSymbols). It is
// the kernel's huffman.ErrShortOutput, re-exported at this layer.
var ErrShortBatchOutput = huffman.ErrShortOutput

// BatchDecoder is the allocation-free batch decode face of a Huffman
// scheme: many blocks decoded in one call through the lane-parallel
// kernel, up to huffman.MaxLanes blocks interleaved at a time. Blocks
// are the lane axis — every block starts byte-aligned (§3.3) and its
// symbol stream is independent of every other block's, so N cursors
// over one image decode N blocks with their table loads overlapped.
//
// DecodeRun decodes the blocks described by parallel slices addrs
// (byte address of each block's first codeword in data) and counts
// (operations per block). When out is non-nil the decoded symbols land
// in out, blocks in order, BatchSymbols(counts[i]) symbols each; a nil
// out discards symbols through stack scratch, the throughput-
// measurement shape. It returns the symbols decoded and the total code
// bits consumed (both summed through the first failing block, whose
// terminal error — bit-identical to the reference decoder's — is
// returned). Steady-state calls allocate nothing on either path.
type BatchDecoder interface {
	// BatchSymbols returns the Huffman symbol count of an n-op block.
	BatchSymbols(n int) int
	// DecodeRun batch-decodes blocks; see the interface comment.
	DecodeRun(data []byte, addrs, counts []int, out []uint64) (syms, bits int64, err error)
	// Kernel exposes the scheme's prebuilt lane decoder — the memoized
	// decode-table artifact (its TableEntries is the footprint the
	// decoder-complexity model charges).
	Kernel() *huffman.LaneDecoder
}

// batchScratchSyms mirrors the kernel engine's per-lane scratch size;
// the chunked single-lane DecodeBlock path sizes its stack buffer to
// the same grain.
const batchScratchSyms = 256

// The DecodeRun implementations below are thin adapters over the
// kernel's huffman.(*LaneDecoder).DecodeBlocks engine: each passes its
// scheme's affine symbol-count map need = (n*mul + add) / div as
// constants (see DecodeBlocks for why it is not a closure):
//
//	full:   (n*1 + 0) / 1          one symbol per op
//	stream: (n*nsegs + 0) / 1      one symbol per segment per op
//	byte:   (n*isa.OpBits + 7) / 8 one symbol per packed byte

// BatchSymbols implements BatchDecoder: one symbol per packed byte.
func (e *ByteHuffman) BatchSymbols(n int) int { return (n*isa.OpBits + 7) / 8 }

// DecodeRun implements BatchDecoder.
func (e *ByteHuffman) DecodeRun(data []byte, addrs, counts []int, out []uint64) (int64, int64, error) {
	return e.lane.DecodeBlocks(data, addrs, counts, isa.OpBits, 7, 8, out)
}

// Kernel implements BatchDecoder.
func (e *ByteHuffman) Kernel() *huffman.LaneDecoder { return e.lane }

// BatchSymbols implements BatchDecoder: one symbol per segment per op.
func (e *StreamHuffman) BatchSymbols(n int) int { return n * len(e.tabs) }

// DecodeRun implements BatchDecoder. The kernel's schedule cycles the
// per-segment tables within each lane (segment codewords interleave in
// one bit stream per block), while the lanes themselves run over
// independent blocks — the axis that actually parallelizes.
func (e *StreamHuffman) DecodeRun(data []byte, addrs, counts []int, out []uint64) (int64, int64, error) {
	return e.lane.DecodeBlocks(data, addrs, counts, len(e.tabs), 0, 1, out)
}

// Kernel implements BatchDecoder.
func (e *StreamHuffman) Kernel() *huffman.LaneDecoder { return e.lane }

// BatchSymbols implements BatchDecoder: one symbol per op.
func (e *FullHuffman) BatchSymbols(n int) int { return n }

// DecodeRun implements BatchDecoder.
func (e *FullHuffman) DecodeRun(data []byte, addrs, counts []int, out []uint64) (int64, int64, error) {
	return e.lane.DecodeBlocks(data, addrs, counts, 1, 0, 1, out)
}

// Kernel implements BatchDecoder.
func (e *FullHuffman) Kernel() *huffman.LaneDecoder { return e.lane }
