// Package compress implements the paper's operation-size reduction
// schemes: the three Huffman alphabet compositions of §2.2 (byte-based,
// stream-based with configurable field boundaries, and whole-op "Full")
// plus the uncompressed baseline, all behind a common Encoder interface.
// The tailored ISA (the paper's other family) lives in package tailor and
// implements the same interface.
//
// All schemes encode and decode at basic-block granularity: block starts
// are byte-aligned in the ROM (§3.3), operations within a block are
// bit-packed sequentially.
package compress

import (
	"fmt"
	"strings"

	"repro/internal/bitio"
	"repro/internal/huffman"
	"repro/internal/isa"
	"repro/internal/sched"
)

// CodeLenLimit is the bound applied to every Huffman code: the paper's
// compiler "keeps track of" over-long codewords and bounds them so the
// IFetch hardware can consume them (§2.2). Codes never exceed the original
// 40-bit operation size.
const CodeLenLimit = isa.OpBits

// Encoder encodes and decodes basic blocks under one scheme.
type Encoder interface {
	// Name identifies the scheme in reports ("base", "byte", "full",
	// stream configuration names, "tailored").
	Name() string
	// BlockBits returns the encoded size of a block, in bits, without
	// byte-alignment padding.
	BlockBits(ops []isa.Op) int
	// EncodeBlock appends the block's encoding to the bit stream.
	EncodeBlock(w *bitio.Writer, ops []isa.Op) error
	// DecodeBlock reads back a block of n operations.
	DecodeBlock(r *bitio.Reader, n int) ([]isa.Op, error)
	// Tables returns the scheme's Huffman dictionaries (empty for
	// uncompressed schemes); used by the decoder-complexity model.
	Tables() []*huffman.Table
}

// Base is the uncompressed 40-bit TEPIC encoding.
type Base struct{}

// NewBase returns the baseline encoder.
func NewBase() *Base { return &Base{} }

// Name implements Encoder.
func (*Base) Name() string { return "base" }

// BlockBits implements Encoder.
func (*Base) BlockBits(ops []isa.Op) int { return len(ops) * isa.OpBits }

// EncodeBlock implements Encoder.
func (*Base) EncodeBlock(w *bitio.Writer, ops []isa.Op) error {
	for i := range ops {
		w.WriteBits(ops[i].Encode(), isa.OpBits)
	}
	return nil
}

// DecodeBlock implements Encoder.
func (*Base) DecodeBlock(r *bitio.Reader, n int) ([]isa.Op, error) {
	ops := make([]isa.Op, 0, n)
	for i := 0; i < n; i++ {
		w, err := r.ReadBits(isa.OpBits)
		if err != nil {
			return nil, err
		}
		op, err := isa.Decode(w)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// Tables implements Encoder.
func (*Base) Tables() []*huffman.Table { return nil }

// ReferenceDecoder is implemented by the Huffman schemes, which decode
// their hit path through the table-driven fast decoder but keep the
// canonical bit-by-bit decoder as an oracle: ReferenceDecodeBlock is
// DecodeBlock on the oracle, and the differential harness requires the
// two to produce bit-identical symbol sequences on every image.
type ReferenceDecoder interface {
	ReferenceDecodeBlock(r *bitio.Reader, n int) ([]isa.Op, error)
}

// ByteHuffman is the byte-based alphabet of §2.2: the packed baseline
// image is treated as a byte stream and each byte is Huffman coded. It
// produces the smallest decoding table and simplest decoder.
type ByteHuffman struct {
	tab  *huffman.Table
	dec  *huffman.Decoder     // reference (oracle) decoder
	fast *huffman.FastDecoder // table-driven hit-path decoder
	lane *huffman.LaneDecoder // batched lane kernel over fast's tables
}

// newByteHuffman wraps a built table with both of its decoders and the
// lane kernel (built once here, not per decode — see the measurement
// contract in throughput.go).
func newByteHuffman(tab *huffman.Table) *ByteHuffman {
	fast := tab.NewFastDecoder()
	return &ByteHuffman{tab: tab, dec: tab.NewDecoder(), fast: fast, lane: huffman.NewLaneDecoder(fast)}
}

// NewByteHuffman builds the byte-based scheme from a scheduled program's
// static byte histogram.
func NewByteHuffman(p *sched.Program) (*ByteHuffman, error) {
	freq := map[uint64]int64{}
	for _, b := range p.Blocks {
		for _, by := range isa.PackOps(b.Ops) {
			freq[uint64(by)]++
		}
	}
	tab, err := buildBounded(freq, CodeLenLimit)
	if err != nil {
		return nil, fmt.Errorf("compress: byte scheme: %w", err)
	}
	return newByteHuffman(tab), nil
}

// Name implements Encoder.
func (*ByteHuffman) Name() string { return "byte" }

// BlockBits implements Encoder.
func (e *ByteHuffman) BlockBits(ops []isa.Op) int {
	bits := 0
	for _, by := range isa.PackOps(ops) {
		bits += e.tab.EncodedBits(uint64(by))
	}
	return bits
}

// EncodeBlock implements Encoder.
func (e *ByteHuffman) EncodeBlock(w *bitio.Writer, ops []isa.Op) error {
	for _, by := range isa.PackOps(ops) {
		if err := e.tab.Encode(w, uint64(by)); err != nil {
			return err
		}
	}
	return nil
}

// DecodeBlock implements Encoder.
func (e *ByteHuffman) DecodeBlock(r *bitio.Reader, n int) ([]isa.Op, error) {
	nbytes := (n*isa.OpBits + 7) / 8
	syms := make([]uint64, nbytes)
	if err := e.fast.DecodeRun(r, syms); err != nil {
		return nil, err
	}
	data := make([]byte, nbytes)
	for i, v := range syms {
		data[i] = byte(v)
	}
	return isa.UnpackOps(data, n)
}

// ReferenceDecodeBlock implements ReferenceDecoder on the bit-by-bit
// oracle decoder.
func (e *ByteHuffman) ReferenceDecodeBlock(r *bitio.Reader, n int) ([]isa.Op, error) {
	nbytes := (n*isa.OpBits + 7) / 8
	data := make([]byte, nbytes)
	for i := range data {
		v, err := e.dec.Decode(r)
		if err != nil {
			return nil, err
		}
		data[i] = byte(v)
	}
	return isa.UnpackOps(data, n)
}

// Tables implements Encoder.
func (e *ByteHuffman) Tables() []*huffman.Table { return []*huffman.Table{e.tab} }

// StreamConfig fixes the stream boundaries of the stream-based alphabet
// (paper Figure 3): every operation's 40-bit word is cut at Cuts into
// independent compression streams, each with its own Huffman table.
type StreamConfig struct {
	Name string
	Cuts []int // strictly increasing interior cut points in (0, 40)
}

// Segments returns the [from, to) bit ranges of the configuration.
func (c StreamConfig) Segments() [][2]int {
	segs := make([][2]int, 0, len(c.Cuts)+1)
	prev := 0
	for _, cut := range c.Cuts {
		segs = append(segs, [2]int{prev, cut})
		prev = cut
	}
	segs = append(segs, [2]int{prev, isa.OpBits})
	return segs
}

// Validate checks the cut points.
func (c StreamConfig) Validate() error {
	prev := 0
	for _, cut := range c.Cuts {
		if cut <= prev || cut >= isa.OpBits {
			return fmt.Errorf("%w: stream config %s: bad cut %d", ErrBadConfig, c.Name, cut)
		}
		prev = cut
	}
	return nil
}

// Key returns the configuration's canonical content descriptor — the
// exact cut points, independent of the display name — for use in
// artifact-cache keys: two configurations with the same cuts produce
// identical encoders for the same program.
func (c StreamConfig) Key() string {
	var b strings.Builder
	b.WriteString("stream")
	for _, cut := range c.Cuts {
		fmt.Fprintf(&b, "/%d", cut)
	}
	return b.String()
}

// StreamConfigs are the six stream-boundary configurations explored for
// the paper's Figure 5, named by the paper's selection rule: of the six,
// the one with the smallest decoder is reported as "stream" and the one
// with the smallest code as "stream_1" (the assignments below follow the
// measured sweep; see core.Suite.StreamSweep). The field-boundary
// geography follows Table 2: bits [0,9) hold T/S/OPT/OPCODE, [9,14) Src1,
// [14,19) Src2 (or the immediate's upper bits), [34,35) L1, [35,40) the
// predicate.
var StreamConfigs = []StreamConfig{
	// Eight uniform 5-bit streams: tiny per-stream dictionaries give the
	// smallest stream decoder, at the worst stream compression — the
	// paper's "stream".
	{Name: "stream", Cuts: []int{5, 10, 15, 20, 25, 30, 35}},
	// Two 20-bit halves: widest symbols capture the most intra-op
	// correlation, the best stream compression — the paper's "stream_1".
	{Name: "stream_1", Cuts: []int{20}},
	// The paper's Figure 3 illustration: opcode / operands / middle /
	// predicate, cut at field boundaries.
	{Name: "stream_2", Cuts: []int{9, 19, 34}},
	{Name: "stream_3", Cuts: []int{9, 14, 19, 34}},
	{Name: "stream_4", Cuts: []int{9, 35}},
	{Name: "stream_5", Cuts: []int{9, 14, 19, 24, 34}},
}

// Figure3Config is the stream split the paper's Figure 3 illustrates.
var Figure3Config = StreamConfigs[2]

// StreamHuffman is the stream-based alphabet of §2.2/Figure 3.
type StreamHuffman struct {
	cfg   StreamConfig
	tabs  []*huffman.Table
	decs  []*huffman.Decoder     // reference (oracle) decoders
	fasts []*huffman.FastDecoder // table-driven hit-path decoders
	lane  *huffman.LaneDecoder   // batched kernel cycling the segment tables
}

// NewStreamHuffman builds the stream-based scheme for one configuration.
func NewStreamHuffman(p *sched.Program, cfg StreamConfig) (*StreamHuffman, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	segs := cfg.Segments()
	freqs := make([]map[uint64]int64, len(segs))
	for i := range freqs {
		freqs[i] = map[uint64]int64{}
	}
	for _, b := range p.Blocks {
		for i := range b.Ops {
			for si, seg := range segs {
				freqs[si][b.Ops[i].SliceBits(seg[0], seg[1])]++
			}
		}
	}
	e := &StreamHuffman{cfg: cfg}
	for si, f := range freqs {
		tab, err := buildBounded(f, CodeLenLimit)
		if err != nil {
			return nil, fmt.Errorf("compress: stream %s segment %d: %w", cfg.Name, si, err)
		}
		e.tabs = append(e.tabs, tab)
		e.decs = append(e.decs, tab.NewDecoder())
		e.fasts = append(e.fasts, tab.NewFastDecoder())
	}
	e.lane = huffman.NewLaneDecoder(e.fasts...)
	return e, nil
}

// Name implements Encoder.
func (e *StreamHuffman) Name() string { return e.cfg.Name }

// Config returns the stream configuration.
func (e *StreamHuffman) Config() StreamConfig { return e.cfg }

// BlockBits implements Encoder.
func (e *StreamHuffman) BlockBits(ops []isa.Op) int {
	segs := e.cfg.Segments()
	bits := 0
	for i := range ops {
		for si, seg := range segs {
			bits += e.tabs[si].EncodedBits(ops[i].SliceBits(seg[0], seg[1]))
		}
	}
	return bits
}

// EncodeBlock implements Encoder.
func (e *StreamHuffman) EncodeBlock(w *bitio.Writer, ops []isa.Op) error {
	segs := e.cfg.Segments()
	for i := range ops {
		for si, seg := range segs {
			if err := e.tabs[si].Encode(w, ops[i].SliceBits(seg[0], seg[1])); err != nil {
				return err
			}
		}
	}
	return nil
}

// DecodeBlock implements Encoder. A stream-encoded block is segment
// codewords interleaved in one bit stream, so it decodes on a
// single-lane kernel whose schedule cycles the segment tables, chunked
// through stack scratch, then the reader is resynced to the cursor.
// Success-path reader positions and Huffman-error terminals are
// bit-identical to the per-symbol path (the kernel shares FastDecoder's
// terminals); only a malformed-operand word replays its chunk
// per-symbol to reproduce the exact legacy reader position.
func (e *StreamHuffman) DecodeBlock(r *bitio.Reader, n int) ([]isa.Op, error) {
	segs := e.cfg.Segments()
	nsegs := len(segs)
	ops := make([]isa.Op, 0, n)
	var lane [1]huffman.Lane
	var buf [batchScratchSyms]uint64
	chunkOps := batchScratchSyms / nsegs
	if err := lane[0].Init(r.Source(), r.Offset(), buf[:0]); err != nil {
		return nil, err
	}
	for done := 0; done < n; {
		k := n - done
		if k > chunkOps {
			k = chunkOps
		}
		chunkStart := lane[0].Offset()
		lane[0].Rearm(buf[:k*nsegs])
		e.lane.Run(lane[:1])
		if err := lane[0].Err(); err != nil {
			if serr := r.SeekBit(lane[0].Offset()); serr != nil {
				return nil, serr
			}
			return nil, err
		}
		for i := 0; i < k; i++ {
			var word uint64
			for si := 0; si < nsegs; si++ {
				word = word<<uint(segs[si][1]-segs[si][0]) | buf[i*nsegs+si]
			}
			op, err := isa.Decode(word)
			if err != nil {
				return nil, e.replayChunk(r, chunkStart, i)
			}
			ops = append(ops, op)
		}
		done += k
	}
	if err := r.SeekBit(lane[0].Offset()); err != nil {
		return nil, err
	}
	return ops, nil
}

// replayChunk reproduces the legacy per-symbol decode of a chunk up to
// and including the operation whose assembled word failed isa.Decode,
// so the malformed-operand error path leaves the reader exactly where
// the pre-kernel implementation did.
func (e *StreamHuffman) replayChunk(r *bitio.Reader, chunkStart, opIdx int) error {
	if err := r.SeekBit(chunkStart); err != nil {
		return err
	}
	segs := e.cfg.Segments()
	for i := 0; i <= opIdx; i++ {
		var word uint64
		for si, seg := range segs {
			v, err := e.fasts[si].Decode(r)
			if err != nil {
				return err
			}
			word = word<<uint(seg[1]-seg[0]) | v
		}
		if _, err := isa.Decode(word); err != nil {
			return err
		}
	}
	// Unreachable: the caller saw isa.Decode fail at opIdx.
	return nil
}

// ReferenceDecodeBlock implements ReferenceDecoder on the bit-by-bit
// oracle decoders.
func (e *StreamHuffman) ReferenceDecodeBlock(r *bitio.Reader, n int) ([]isa.Op, error) {
	segs := e.cfg.Segments()
	ops := make([]isa.Op, 0, n)
	for i := 0; i < n; i++ {
		var word uint64
		for si, seg := range segs {
			v, err := e.decs[si].Decode(r)
			if err != nil {
				return nil, err
			}
			word = word<<uint(seg[1]-seg[0]) | v
		}
		op, err := isa.Decode(word)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// Tables implements Encoder.
func (e *StreamHuffman) Tables() []*huffman.Table { return e.tabs }

// FullHuffman is the whole-op alphabet of §2.2: each distinct 40-bit
// operation is one symbol. Greatest compression, largest decoder.
type FullHuffman struct {
	tab  *huffman.Table
	dec  *huffman.Decoder     // reference (oracle) decoder
	fast *huffman.FastDecoder // table-driven hit-path decoder
	lane *huffman.LaneDecoder // batched lane kernel over fast's tables
}

// NewFullHuffman builds the whole-op scheme from a scheduled program.
func NewFullHuffman(p *sched.Program) (*FullHuffman, error) {
	freq := map[uint64]int64{}
	for _, b := range p.Blocks {
		for i := range b.Ops {
			freq[b.Ops[i].Encode()]++
		}
	}
	tab, err := buildBounded(freq, CodeLenLimit)
	if err != nil {
		return nil, fmt.Errorf("compress: full scheme: %w", err)
	}
	fast := tab.NewFastDecoder()
	return &FullHuffman{tab: tab, dec: tab.NewDecoder(), fast: fast, lane: huffman.NewLaneDecoder(fast)}, nil
}

// Name implements Encoder.
func (*FullHuffman) Name() string { return "full" }

// BlockBits implements Encoder.
func (e *FullHuffman) BlockBits(ops []isa.Op) int {
	bits := 0
	for i := range ops {
		bits += e.tab.EncodedBits(ops[i].Encode())
	}
	return bits
}

// EncodeBlock implements Encoder.
func (e *FullHuffman) EncodeBlock(w *bitio.Writer, ops []isa.Op) error {
	for i := range ops {
		if err := e.tab.Encode(w, ops[i].Encode()); err != nil {
			return err
		}
	}
	return nil
}

// DecodeBlock implements Encoder.
func (e *FullHuffman) DecodeBlock(r *bitio.Reader, n int) ([]isa.Op, error) {
	words := make([]uint64, n)
	if err := e.fast.DecodeRun(r, words); err != nil {
		return nil, err
	}
	ops := make([]isa.Op, 0, n)
	for _, w := range words {
		op, err := isa.Decode(w)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// ReferenceDecodeBlock implements ReferenceDecoder on the bit-by-bit
// oracle decoder.
func (e *FullHuffman) ReferenceDecodeBlock(r *bitio.Reader, n int) ([]isa.Op, error) {
	ops := make([]isa.Op, 0, n)
	for i := 0; i < n; i++ {
		w, err := e.dec.Decode(r)
		if err != nil {
			return nil, err
		}
		op, err := isa.Decode(w)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// Tables implements Encoder.
func (e *FullHuffman) Tables() []*huffman.Table { return []*huffman.Table{e.tab} }

// buildBounded builds an optimal table, falling back to the length-limited
// construction only when the optimal code exceeds the hardware bound —
// the paper's "the compiler keeps track of such events and alternates the
// compression process".
func buildBounded(freq map[uint64]int64, limit int) (*huffman.Table, error) {
	tab, err := huffman.Build(freq)
	if err != nil {
		return nil, err
	}
	if tab.MaxLen() <= limit {
		return tab, nil
	}
	return huffman.BuildLimited(freq, limit)
}
