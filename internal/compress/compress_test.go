package compress

import (
	"testing"

	"repro/internal/bitio"
	"repro/internal/isa"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/workload"
)

func compile(t testing.TB, name string) *sched.Program {
	t.Helper()
	p, err := workload.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.Allocate(p); err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func roundTripBlocks(t *testing.T, enc Encoder, sp *sched.Program) {
	t.Helper()
	for _, b := range sp.Blocks {
		if len(b.Ops) == 0 {
			continue
		}
		var w bitio.Writer
		if err := enc.EncodeBlock(&w, b.Ops); err != nil {
			t.Fatalf("%s: encode block %d: %v", enc.Name(), b.ID, err)
		}
		if got, want := w.BitLen(), enc.BlockBits(b.Ops); got < want {
			t.Fatalf("%s: block %d wrote %d bits, BlockBits says %d",
				enc.Name(), b.ID, got, want)
		}
		r := bitio.NewReader(w.Bytes())
		back, err := enc.DecodeBlock(r, len(b.Ops))
		if err != nil {
			t.Fatalf("%s: decode block %d: %v", enc.Name(), b.ID, err)
		}
		for i := range back {
			if back[i] != b.Ops[i] {
				t.Fatalf("%s: block %d op %d mismatch:\n got %v\nwant %v",
					enc.Name(), b.ID, i, back[i].String(), b.Ops[i].String())
			}
		}
	}
}

func TestBaseRoundTrip(t *testing.T) {
	sp := compile(t, "compress")
	roundTripBlocks(t, NewBase(), sp)
}

func TestByteHuffmanRoundTrip(t *testing.T) {
	sp := compile(t, "compress")
	enc, err := NewByteHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	roundTripBlocks(t, enc, sp)
}

func TestStreamHuffmanRoundTripAllConfigs(t *testing.T) {
	sp := compile(t, "compress")
	for _, cfg := range StreamConfigs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			enc, err := NewStreamHuffman(sp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			roundTripBlocks(t, enc, sp)
		})
	}
}

func TestFullHuffmanRoundTrip(t *testing.T) {
	sp := compile(t, "m88ksim")
	enc, err := NewFullHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	roundTripBlocks(t, enc, sp)
}

// The paper's central Figure 5 ordering: full < tailored-ish < byte/stream
// < base. Here we check the Huffman side: full must beat byte and stream,
// and everything must beat base.
func TestCompressionOrdering(t *testing.T) {
	sp := compile(t, "go")
	base := NewBase()
	byteE, err := NewByteHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	fullE, err := NewFullHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	streamE, err := NewStreamHuffman(sp, StreamConfigs[0])
	if err != nil {
		t.Fatal(err)
	}
	totalBits := func(e Encoder) int {
		n := 0
		for _, b := range sp.Blocks {
			n += e.BlockBits(b.Ops)
		}
		return n
	}
	b0 := totalBits(base)
	bb, bs, bf := totalBits(byteE), totalBits(streamE), totalBits(fullE)
	if bf >= bb || bf >= bs {
		t.Errorf("full (%d bits) should beat byte (%d) and stream (%d)", bf, bb, bs)
	}
	if bb >= b0 || bs >= b0 {
		t.Errorf("byte (%d) and stream (%d) should beat base (%d)", bb, bs, b0)
	}
	// Figure 5's full-scheme result is ~30%% of original; allow a wide
	// band but catch gross miscalibration.
	ratio := float64(bf) / float64(b0)
	if ratio < 0.10 || ratio > 0.55 {
		t.Errorf("full-scheme ratio %.3f outside plausible Figure 5 band", ratio)
	}
}

func TestCodeLengthBound(t *testing.T) {
	sp := compile(t, "gcc")
	for _, mk := range []func() (Encoder, error){
		func() (Encoder, error) { return NewByteHuffman(sp) },
		func() (Encoder, error) { return NewFullHuffman(sp) },
		func() (Encoder, error) { return NewStreamHuffman(sp, StreamConfigs[1]) },
	} {
		enc, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for _, tab := range enc.Tables() {
			if tab.MaxLen() > CodeLenLimit {
				t.Errorf("%s: code length %d exceeds hardware bound %d",
					enc.Name(), tab.MaxLen(), CodeLenLimit)
			}
		}
	}
}

func TestStreamConfigValidate(t *testing.T) {
	bad := StreamConfig{Name: "bad", Cuts: []int{0}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted cut at 0")
	}
	bad = StreamConfig{Name: "bad", Cuts: []int{40}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted cut at 40")
	}
	bad = StreamConfig{Name: "bad", Cuts: []int{10, 10}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted non-increasing cuts")
	}
	if _, err := NewStreamHuffman(compile(t, "compress"), bad); err == nil {
		t.Error("NewStreamHuffman accepted invalid config")
	}
}

func TestStreamSegments(t *testing.T) {
	cfg := StreamConfig{Name: "x", Cuts: []int{9, 19, 34}}
	segs := cfg.Segments()
	want := [][2]int{{0, 9}, {9, 19}, {19, 34}, {34, 40}}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments, want %d", len(segs), len(want))
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Errorf("segment %d = %v, want %v", i, segs[i], want[i])
		}
	}
}

func TestStreamFigure3Configuration(t *testing.T) {
	// The Figure 3 split has 4 streams cut at field boundaries, with the
	// opcode bits [0,9) as stream 0 and the predicate in the last stream.
	cfg := Figure3Config
	if got := len(cfg.Segments()); got != 4 {
		t.Errorf("Figure 3 config has %d streams, want 4", got)
	}
	if cfg.Segments()[0] != [2]int{0, 9} {
		t.Errorf("stream 0 is %v, want [0,9)", cfg.Segments()[0])
	}
	// Reported configurations exist with the paper's names.
	names := map[string]bool{}
	for _, c := range StreamConfigs {
		names[c.Name] = true
	}
	if !names["stream"] || !names["stream_1"] {
		t.Error("reported configurations stream/stream_1 missing")
	}
	if len(StreamConfigs) != 6 {
		t.Errorf("expected 6 explored configurations, got %d", len(StreamConfigs))
	}
}

func TestByteDecoderSmallest(t *testing.T) {
	// §3.5: byte-wise has the smallest decoder (dictionary ≤ 256 entries,
	// symbol width 8).
	sp := compile(t, "go")
	be, err := NewByteHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFullHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	bt, ft := be.Tables()[0], fe.Tables()[0]
	if bt.Entries() > 256 {
		t.Errorf("byte dictionary has %d entries", bt.Entries())
	}
	if bt.SymbolBits() > 8 {
		t.Errorf("byte symbol width %d > 8", bt.SymbolBits())
	}
	if ft.Entries() <= bt.Entries() {
		t.Errorf("full dictionary (%d) should dwarf byte dictionary (%d)",
			ft.Entries(), bt.Entries())
	}
	if ft.SymbolBits() > isa.OpBits {
		t.Errorf("full symbol width %d > 40", ft.SymbolBits())
	}
}

func TestPredicateStreamSkew(t *testing.T) {
	// The paper motivates stream compression with the predicate field
	// being "most of the time set to true": its stream must compress far
	// below its 6-bit raw width (L1+PREDICATE in [34,40)).
	sp := compile(t, "vortex")
	enc, err := NewStreamHuffman(sp, Figure3Config)
	if err != nil {
		t.Fatal(err)
	}
	predTab := enc.Tables()[3]
	if predTab.MeanLen() > 3.0 {
		t.Errorf("predicate stream mean length %.2f bits; expected heavy skew (< 3)",
			predTab.MeanLen())
	}
}
