// Package tailor implements the paper's Tailored Encoding (§2.3): a new,
// uncompressed but compact instruction encoding generated for one
// particular program. Every field gets exactly the bits the program
// needs — if only six floating-point opcodes occur, the FP opcode field
// needs three bits; if the predicate field is always p0, it vanishes
// entirely; reserved fields are dropped. Decoding a tailored operation
// yields the core processor's internal signals directly, so no
// decompression stage is required.
//
// Tailoring is *not* compression: operand fields keep their direct binary
// values, merely narrowed to the width of the largest value the program
// uses (register allocation compacts register numbers downward precisely
// to make these widths small). Only the OpType/OpCode prefix is remapped
// through the regenerated decoder, and fields that are constant across the
// whole program are dropped and hardwired in the decoder PLA.
//
// As the paper prescribes, the Tail bit, OpType and OpCode fields keep a
// fixed position and size across all formats, which makes decoding a
// fixed-prefix dispatch. All operations of the same (type, code) have the
// same size. The compiler-emitted PLA decoder is rendered as synthesizable
// Verilog by EmitVerilog.
package tailor

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitio"
	"repro/internal/huffman"
	"repro/internal/isa"
	"repro/internal/sched"
)

// Typed encoding failures, so callers (in particular the pipeline
// verifier) can attribute a rejection to the violated invariant.
var (
	// ErrNotInISA marks an operation whose (type, opcode) pair the
	// tailored ISA was not generated for.
	ErrNotInISA = errors.New("tailor: operation not in tailored ISA")
	// ErrWidth marks a field value that does not fit its tailored width
	// or differs from its hardwired constant.
	ErrWidth = errors.New("tailor: value does not fit tailored field")
)

// slotKey identifies one tailorable field slot: a format and the slot's
// index within that format's layout.
type slotKey struct {
	format isa.Format
	slot   int
}

// slotMap is one slot's tailoring decision: either a hardwired constant
// (width 0) or a direct binary field narrowed to `width` bits.
type slotMap struct {
	id       isa.FieldID
	width    int    // 0 for constant slots
	constant uint32 // the hardwired value when width == 0
	maxVal   uint32 // largest value observed (determines width)
}

// Tailored is a program-specific compact encoding. It implements
// compress.Encoder.
type Tailored struct {
	optWidth int
	opcWidth int
	typeOf   map[isa.OpType]uint32 // type -> tailored OPT code
	types    []isa.OpType          // tailored OPT code -> type
	opcOf    map[isa.OpType]map[isa.Opcode]uint32
	opcs     map[isa.OpType][]isa.Opcode
	slots    map[slotKey]*slotMap
	opBits   map[opKey]int // cached per-(type,code) op size
}

type opKey struct {
	t isa.OpType
	c isa.Opcode
}

// tPrefix is the number of leading layout slots replaced by the shared
// tailored prefix: only the tail bit; OPT/OPCODE slots are skipped by ID.
const tPrefix = 1

// New analyzes a scheduled program and generates its tailored encoding.
func New(p *sched.Program) (*Tailored, error) {
	t := &Tailored{
		typeOf: map[isa.OpType]uint32{},
		opcOf:  map[isa.OpType]map[isa.Opcode]uint32{},
		opcs:   map[isa.OpType][]isa.Opcode{},
		slots:  map[slotKey]*slotMap{},
		opBits: map[opKey]int{},
	}

	// Pass 1: collect the value universe.
	typeSet := map[isa.OpType]bool{}
	opcSet := map[isa.OpType]map[isa.Opcode]bool{}
	type slotStat struct {
		max      uint32
		first    uint32
		seen     bool
		constant bool
	}
	stats := map[slotKey]*slotStat{}
	for _, b := range p.Blocks {
		for i := range b.Ops {
			op := &b.Ops[i]
			typeSet[op.Type] = true
			if opcSet[op.Type] == nil {
				opcSet[op.Type] = map[isa.Opcode]bool{}
			}
			opcSet[op.Type][op.Code] = true
			f := op.Format()
			layout := isa.Layout(f)
			vals := op.FieldValues()
			for s := tPrefix; s < len(layout); s++ {
				fs := layout[s]
				if fs.ID == isa.FieldReserved || fs.ID == isa.FieldOpt ||
					fs.ID == isa.FieldOpcode {
					continue
				}
				k := slotKey{f, s}
				st := stats[k]
				if st == nil {
					st = &slotStat{first: vals[s], constant: true}
					stats[k] = st
				}
				st.seen = true
				if vals[s] != st.first {
					st.constant = false
				}
				if vals[s] > st.max {
					st.max = vals[s]
				}
			}
		}
	}
	if len(typeSet) == 0 {
		return nil, fmt.Errorf("tailor: empty program")
	}

	// Global OPT mapping: fixed position, fixed size.
	for ty := isa.OpType(0); ty < 4; ty++ {
		if typeSet[ty] {
			t.typeOf[ty] = uint32(len(t.types))
			t.types = append(t.types, ty)
		}
	}
	t.optWidth = bitsFor(len(t.types))

	// Global OPCODE width: the max over types, so the (T, OPT, OPCODE)
	// prefix has one size everywhere.
	for ty, set := range opcSet {
		var codes []isa.Opcode
		for c := range set {
			codes = append(codes, c)
		}
		sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
		m := map[isa.Opcode]uint32{}
		for i, c := range codes {
			m[c] = uint32(i)
		}
		t.opcOf[ty] = m
		t.opcs[ty] = codes
		if w := bitsFor(len(codes)); w > t.opcWidth {
			t.opcWidth = w
		}
	}

	// Per-slot widths: constants drop to zero bits, everything else keeps
	// its direct value narrowed to the observed maximum.
	for k, st := range stats {
		sm := &slotMap{id: isa.Layout(k.format)[k.slot].ID, maxVal: st.max}
		if st.constant {
			sm.width = 0
			sm.constant = st.first
		} else {
			sm.width = bitsFor(int(st.max) + 1)
		}
		t.slots[k] = sm
	}

	// Cache per-opcode sizes.
	for ty, codes := range t.opcs {
		for _, c := range codes {
			f := isa.FormatOf(ty, c)
			bits := 1 + t.optWidth + t.opcWidth
			layout := isa.Layout(f)
			for s := tPrefix; s < len(layout); s++ {
				fs := layout[s]
				if fs.ID == isa.FieldReserved || fs.ID == isa.FieldOpt ||
					fs.ID == isa.FieldOpcode {
					continue
				}
				if sm := t.slots[slotKey{f, s}]; sm != nil {
					bits += sm.width
				}
			}
			t.opBits[opKey{ty, c}] = bits
		}
	}
	return t, nil
}

func bitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}

// Name implements compress.Encoder.
func (*Tailored) Name() string { return "tailored" }

// Tables implements compress.Encoder: the tailored ISA has no Huffman
// dictionaries (decoding is direct).
func (*Tailored) Tables() []*huffman.Table { return nil }

// OpBits returns the tailored size of one (type, code) operation.
func (t *Tailored) OpBits(ty isa.OpType, c isa.Opcode) (int, error) {
	bits, ok := t.opBits[opKey{ty, c}]
	if !ok {
		return 0, fmt.Errorf("tailor: opcode %v/%d not in tailored ISA", ty, c)
	}
	return bits, nil
}

// PrefixWidths returns the fixed (OPT, OPCODE) field widths.
func (t *Tailored) PrefixWidths() (opt, opc int) { return t.optWidth, t.opcWidth }

// BlockBits implements compress.Encoder.
func (t *Tailored) BlockBits(ops []isa.Op) int {
	bits := 0
	for i := range ops {
		if b, err := t.OpBits(ops[i].Type, ops[i].Code); err == nil {
			bits += b
		}
	}
	return bits
}

// EncodeBlock implements compress.Encoder.
func (t *Tailored) EncodeBlock(w *bitio.Writer, ops []isa.Op) error {
	for i := range ops {
		if err := t.encodeOp(w, &ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// ValidateOp checks that an operation is representable under the
// tailored encoding without writing anything: its (type, opcode) pair
// must exist (ErrNotInISA) and every field value must fit its tailored
// width or match its hardwired constant (ErrWidth).
func (t *Tailored) ValidateOp(op *isa.Op) error {
	if _, ok := t.typeOf[op.Type]; !ok {
		return fmt.Errorf("%w: type %v", ErrNotInISA, op.Type)
	}
	if _, ok := t.opcOf[op.Type][op.Code]; !ok {
		return fmt.Errorf("%w: opcode %v/%d", ErrNotInISA, op.Type, op.Code)
	}
	f := op.Format()
	layout := isa.Layout(f)
	vals := op.FieldValues()
	for s := tPrefix; s < len(layout); s++ {
		fs := layout[s]
		if fs.ID == isa.FieldReserved || fs.ID == isa.FieldOpt || fs.ID == isa.FieldOpcode {
			continue
		}
		sm := t.slots[slotKey{f, s}]
		switch {
		case sm == nil:
			if vals[s] != 0 {
				return fmt.Errorf("%w: unexpected value %d in unseen slot %v",
					ErrWidth, vals[s], fs.ID)
			}
		case sm.width == 0:
			if vals[s] != sm.constant {
				return fmt.Errorf("%w: value %d of field %v differs from hardwired %d",
					ErrWidth, vals[s], fs.ID, sm.constant)
			}
		case vals[s] > sm.maxVal:
			return fmt.Errorf("%w: value %d of field %v exceeds tailored max %d",
				ErrWidth, vals[s], fs.ID, sm.maxVal)
		}
	}
	return nil
}

func (t *Tailored) encodeOp(w *bitio.Writer, op *isa.Op) error {
	if err := t.ValidateOp(op); err != nil {
		return err
	}
	if op.Tail {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
	w.WriteBits(uint64(t.typeOf[op.Type]), t.optWidth)
	w.WriteBits(uint64(t.opcOf[op.Type][op.Code]), t.opcWidth)

	f := op.Format()
	layout := isa.Layout(f)
	vals := op.FieldValues()
	for s := tPrefix; s < len(layout); s++ {
		fs := layout[s]
		if fs.ID == isa.FieldReserved || fs.ID == isa.FieldOpt || fs.ID == isa.FieldOpcode {
			continue
		}
		sm := t.slots[slotKey{f, s}]
		if sm == nil || sm.width == 0 {
			continue
		}
		w.WriteBits(uint64(vals[s]), sm.width)
	}
	return nil
}

// DecodeBlock implements compress.Encoder.
func (t *Tailored) DecodeBlock(r *bitio.Reader, n int) ([]isa.Op, error) {
	ops := make([]isa.Op, 0, n)
	for i := 0; i < n; i++ {
		op, err := t.decodeOp(r)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

func (t *Tailored) decodeOp(r *bitio.Reader) (isa.Op, error) {
	var op isa.Op
	tb, err := r.ReadBits(1)
	if err != nil {
		return op, err
	}
	op.Tail = tb == 1
	optCode := uint64(0)
	if t.optWidth > 0 {
		if optCode, err = r.ReadBits(t.optWidth); err != nil {
			return op, err
		}
	}
	if int(optCode) >= len(t.types) {
		return op, fmt.Errorf("tailor: bad OPT code %d", optCode)
	}
	ty := t.types[optCode]
	opcCode := uint64(0)
	if t.opcWidth > 0 {
		if opcCode, err = r.ReadBits(t.opcWidth); err != nil {
			return op, err
		}
	}
	if int(opcCode) >= len(t.opcs[ty]) {
		return op, fmt.Errorf("tailor: bad OPCODE %d for type %v", opcCode, ty)
	}
	code := t.opcs[ty][opcCode]
	op.Type = ty
	op.Code = code

	f := isa.FormatOf(ty, code)
	layout := isa.Layout(f)
	// Rebuild the original 40-bit word slotwise, then decode through the
	// baseline decoder so every field lands in the right struct member.
	var word uint64
	for s := 0; s < len(layout); s++ {
		fs := layout[s]
		var v uint32
		switch {
		case fs.ID == isa.FieldT:
			if op.Tail {
				v = 1
			}
		case fs.ID == isa.FieldOpt:
			v = uint32(ty)
		case fs.ID == isa.FieldOpcode:
			v = uint32(code)
		case fs.ID == isa.FieldReserved:
			// zero
		default:
			sm := t.slots[slotKey{f, s}]
			if sm == nil {
				break // slot never occurred: decode as zero
			}
			if sm.width == 0 {
				v = sm.constant
				break
			}
			raw, err := r.ReadBits(sm.width)
			if err != nil {
				return op, err
			}
			v = uint32(raw)
		}
		word = word<<uint(fs.Width) | uint64(v)
	}
	return isa.Decode(word)
}

// FieldReport describes one tailored slot for reporting and for the
// Verilog generator.
type FieldReport struct {
	Format   isa.Format
	Field    isa.FieldID
	Orig     int  // baseline width
	Width    int  // tailored width (0 = hardwired constant)
	Constant bool // slot dropped to a hardwired value
}

// Report returns every tailored slot, ordered by format then position.
func (t *Tailored) Report() []FieldReport {
	var out []FieldReport
	var keys []slotKey
	for k := range t.slots {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].format != keys[j].format {
			return keys[i].format < keys[j].format
		}
		return keys[i].slot < keys[j].slot
	})
	for _, k := range keys {
		sm := t.slots[k]
		out = append(out, FieldReport{
			Format:   k.format,
			Field:    sm.id,
			Orig:     isa.Layout(k.format)[k.slot].Width,
			Width:    sm.width,
			Constant: sm.width == 0,
		})
	}
	return out
}

// DictionaryEntries returns the number of (code -> signal) mappings the
// regenerated PLA decoder holds: one per operation type, one per opcode,
// one per hardwired constant slot. Direct-value slots need no table —
// that is what keeps the tailored decoder small compared to any Huffman
// decoder.
func (t *Tailored) DictionaryEntries() int {
	n := len(t.types)
	for _, codes := range t.opcs {
		n += len(codes)
	}
	for _, sm := range t.slots {
		if sm.width == 0 {
			n++
		}
	}
	return n
}
