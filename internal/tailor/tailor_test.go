package tailor

import (
	"strings"
	"testing"

	"repro/internal/bitio"
	"repro/internal/isa"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/workload"
)

func compile(t testing.TB, name string) *sched.Program {
	t.Helper()
	p, err := workload.GenerateBenchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.Allocate(p); err != nil {
		t.Fatal(err)
	}
	sp, err := sched.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestTailoredRoundTrip(t *testing.T) {
	sp := compile(t, "compress")
	tl, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sp.Blocks {
		var w bitio.Writer
		if err := tl.EncodeBlock(&w, b.Ops); err != nil {
			t.Fatalf("block %d: %v", b.ID, err)
		}
		if w.BitLen() > tl.BlockBits(b.Ops)+7 {
			t.Fatalf("block %d: wrote %d bits, BlockBits %d", b.ID, w.BitLen(), tl.BlockBits(b.Ops))
		}
		r := bitio.NewReader(w.Bytes())
		back, err := tl.DecodeBlock(r, len(b.Ops))
		if err != nil {
			t.Fatalf("block %d decode: %v", b.ID, err)
		}
		for i := range back {
			if back[i] != b.Ops[i] {
				t.Fatalf("block %d op %d: %v != %v", b.ID, i,
					back[i].String(), b.Ops[i].String())
			}
		}
	}
}

func TestTailoredShrinks(t *testing.T) {
	for _, name := range []string{"compress", "go", "vortex"} {
		sp := compile(t, name)
		tl, err := New(sp)
		if err != nil {
			t.Fatal(err)
		}
		orig, tailored := 0, 0
		for _, b := range sp.Blocks {
			orig += len(b.Ops) * isa.OpBits
			tailored += tl.BlockBits(b.Ops)
		}
		ratio := float64(tailored) / float64(orig)
		// Paper §2.3: tailored code is on the order of 64% of original.
		if ratio < 0.40 || ratio > 0.85 {
			t.Errorf("%s: tailored ratio %.3f outside plausible band", name, ratio)
		}
		t.Logf("%s: tailored ratio %.3f", name, ratio)
	}
}

func TestFixedOpSizePerOpcode(t *testing.T) {
	// §2.3/§3.4: all ops of the same type and code have the same size.
	sp := compile(t, "go")
	tl, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[[2]uint8]int{}
	for _, b := range sp.Blocks {
		for i := range b.Ops {
			op := b.Ops[i]
			var w bitio.Writer
			if err := tl.EncodeBlock(&w, []isa.Op{op}); err != nil {
				t.Fatal(err)
			}
			want, err := tl.OpBits(op.Type, op.Code)
			if err != nil {
				t.Fatal(err)
			}
			key := [2]uint8{uint8(op.Type), uint8(op.Code)}
			if prev, ok := sizes[key]; ok && prev != want {
				t.Fatalf("opcode %v/%d has two sizes: %d and %d",
					op.Type, op.Code, prev, want)
			}
			sizes[key] = want
			// Written bits (minus byte padding) must equal OpBits.
			if w.BitLen()-want >= 8 {
				t.Fatalf("op %v: wrote %d bits, expected %d (+padding)",
					op.String(), w.BitLen(), want)
			}
		}
	}
}

func TestNoOpExceedsBaseline(t *testing.T) {
	sp := compile(t, "gcc")
	tl, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	for key, bits := range tl.opBits {
		if bits > isa.OpBits {
			t.Errorf("opcode %v/%d tailored to %d bits > baseline 40", key.t, key.c, bits)
		}
		if bits < 1 {
			t.Errorf("opcode %v/%d tailored to %d bits", key.t, key.c, bits)
		}
	}
}

func TestDroppedFields(t *testing.T) {
	sp := compile(t, "compress")
	tl, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	// compress has no speculative ops and constant load latency: those
	// slots must tailor to zero bits.
	w := tl.SlotWidths(isa.FmtLoad)
	if got := w[isa.FieldLat]; got != 0 {
		t.Errorf("load latency field width %d, want 0 (constant)", got)
	}
	if got := w[isa.FieldS]; got != 0 {
		t.Errorf("speculative bit width %d, want 0 (never set)", got)
	}
	alu := tl.SlotWidths(isa.FmtIntALU)
	if alu[isa.FieldSrc1] == 0 || alu[isa.FieldSrc1] > 5 {
		t.Errorf("ALU Src1 width %d, want in [1,5]", alu[isa.FieldSrc1])
	}
}

func TestPrefixWidths(t *testing.T) {
	sp := compile(t, "ijpeg") // uses all four op types
	tl, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	opt, opc := tl.PrefixWidths()
	if opt != 2 {
		t.Errorf("OPT width %d, want 2 (four types in use)", opt)
	}
	if opc < 3 || opc > 5 {
		t.Errorf("OPCODE width %d, want in [3,5]", opc)
	}
}

func TestEncodeUnknownOpcode(t *testing.T) {
	sp := compile(t, "compress") // no FP ops at all
	tl, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	var w bitio.Writer
	err = tl.EncodeBlock(&w, []isa.Op{{Type: isa.TypeFloat, Code: isa.OpFADD}})
	if err == nil {
		t.Error("tailored ISA accepted an op type the program never uses")
	}
}

func TestReportAndDictionary(t *testing.T) {
	sp := compile(t, "go")
	tl, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	rep := tl.Report()
	if len(rep) == 0 {
		t.Fatal("empty tailoring report")
	}
	constants := 0
	for _, fr := range rep {
		if fr.Width > fr.Orig {
			t.Errorf("field %v/%v widened: %d > %d", fr.Format, fr.Field, fr.Width, fr.Orig)
		}
		if fr.Constant {
			constants++
			if fr.Width != 0 {
				t.Errorf("constant slot %v/%v has width %d", fr.Format, fr.Field, fr.Width)
			}
		}
	}
	if constants == 0 {
		t.Error("no slots tailored to hardwired constants")
	}
	if tl.DictionaryEntries() < 10 {
		t.Errorf("dictionary entries %d implausibly small", tl.DictionaryEntries())
	}
}

func TestEmitVerilog(t *testing.T) {
	sp := compile(t, "compress")
	tl, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tl.EmitVerilog(&sb, "tepic_decoder"); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{
		"module tepic_decoder",
		"endmodule",
		"sig_opcode",
		"case (opt_w)",
		"always @(*)",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog output missing %q", want)
		}
	}
	// Balanced case/endcase.
	if strings.Count(v, "case (") != strings.Count(v, "endcase") {
		t.Errorf("unbalanced case/endcase: %d vs %d",
			strings.Count(v, "case ("), strings.Count(v, "endcase"))
	}
}

func TestDeterministic(t *testing.T) {
	sp := compile(t, "li")
	t1, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := New(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sp.Blocks {
		if t1.BlockBits(b.Ops) != t2.BlockBits(b.Ops) {
			t.Fatal("non-deterministic tailored sizes")
		}
	}
}
