package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/scheme"
)

// coverageManifest is the committed snapshot of what the equivalence
// corpus covers: every registered scheme (exercised scheme-by-scheme in
// TestPipelineFacade's decode-equivalence loop), every pairing (pinned
// benchmark×pairing in golden_results.json and replayed through the
// simcheck oracle matrix by SimLint), and every organization a pairing
// reaches. The registrycomplete analyzer cross-checks registration call
// sites against this file, so registering a scheme, org or pairing
// without extending the corpus fails tepicvet until this manifest — and
// with it the golden snapshot — is deliberately regenerated.
type coverageManifest struct {
	Schemes  []string `json:"schemes"`
	Orgs     []string `json:"orgs"`
	Pairings []string `json:"pairings"`
}

// currentCoverage derives the manifest from the live registries.
func currentCoverage(t *testing.T) coverageManifest {
	t.Helper()
	var m coverageManifest
	m.Schemes = append(m.Schemes, SchemeNames()...)
	orgSeen := map[string]bool{}
	for _, p := range scheme.Pairings() {
		m.Pairings = append(m.Pairings, p.Name)
		spec, ok := p.Org.Spec()
		if !ok {
			t.Fatalf("pairing %s references unregistered org %d", p.Name, int(p.Org))
		}
		if !orgSeen[spec.Name] {
			orgSeen[spec.Name] = true
			m.Orgs = append(m.Orgs, spec.Name)
		}
	}
	sort.Strings(m.Schemes)
	sort.Strings(m.Orgs)
	sort.Strings(m.Pairings)
	return m
}

// TestCoverageManifest keeps testdata/coverage_manifest.json in sync
// with the registries and the golden snapshot. Regenerate with
// GOLDEN_UPDATE=1 alongside the golden results.
func TestCoverageManifest(t *testing.T) {
	path := filepath.Join("testdata", "coverage_manifest.json")
	got := currentCoverage(t)

	if os.Getenv("GOLDEN_UPDATE") != "" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read coverage manifest (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	var want coverageManifest
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	diffStrings(t, "schemes", got.Schemes, want.Schemes)
	diffStrings(t, "orgs", got.Orgs, want.Orgs)
	diffStrings(t, "pairings", got.Pairings, want.Pairings)

	// Every manifest pairing must be pinned in the golden snapshot for
	// every benchmark, and the snapshot must contain nothing else.
	gdata, err := os.ReadFile(filepath.Join("testdata", "golden_results.json"))
	if err != nil {
		t.Fatal(err)
	}
	var golden struct {
		Results map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(gdata, &golden); err != nil {
		t.Fatal(err)
	}
	benchmarks := Options{}.benchmarks()
	for _, bench := range benchmarks {
		for _, p := range want.Pairings {
			key := fmt.Sprintf("%s/%s", bench, p)
			if _, ok := golden.Results[key]; !ok {
				t.Errorf("golden snapshot missing %s: pairing %s is not pinned (GOLDEN_UPDATE=1)", key, p)
			}
		}
	}
	if want := len(benchmarks) * len(want.Pairings); len(golden.Results) != want {
		t.Errorf("golden snapshot has %d results, manifest implies %d", len(golden.Results), want)
	}
}

func diffStrings(t *testing.T, what string, got, want []string) {
	t.Helper()
	gs, ws := map[string]bool{}, map[string]bool{}
	for _, s := range got {
		gs[s] = true
	}
	for _, s := range want {
		ws[s] = true
	}
	for _, s := range got {
		if !ws[s] {
			t.Errorf("%s: %q registered but missing from coverage manifest (GOLDEN_UPDATE=1)", what, s)
		}
	}
	for _, s := range want {
		if !gs[s] {
			t.Errorf("%s: %q in coverage manifest but no longer registered", what, s)
		}
	}
}
