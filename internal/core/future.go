package core

import (
	"repro/internal/cache"
	"repro/internal/image"
	"repro/internal/layout"
	"repro/internal/stats"
)

// LayoutRow compares natural vs profile-driven code placement (§3.3's
// compile-time relayout) for one benchmark under the Base organization.
type LayoutRow struct {
	Benchmark   string
	NaturalMiss float64
	HotMiss     float64
	NaturalIPC  float64
	HotIPC      float64
}

// LayoutStudy measures what §3.3's first option — generating a new code
// layout at compile time — buys on top of dynamic ATB translation:
// hot-path chains packed together shrink the lines the working set
// touches.
func (s *Suite) LayoutStudy() ([]LayoutRow, error) {
	return forEachBenchmark(s, func(name string) (LayoutRow, error) {
		c, err := s.Compiled(name)
		if err != nil {
			return LayoutRow{}, err
		}
		tr, err := c.Trace(s.opt.TraceBlocks)
		if err != nil {
			return LayoutRow{}, err
		}
		enc, err := c.Encoder("base")
		if err != nil {
			return LayoutRow{}, err
		}
		run := func(order layout.Order) (cache.Result, error) {
			im, err := image.BuildOrdered(c.Prog, enc, order)
			if err != nil {
				return cache.Result{}, err
			}
			sim, err := cache.NewSim(cache.OrgBase, cache.DefaultConfig(cache.OrgBase), im, c.Prog)
			if err != nil {
				return cache.Result{}, err
			}
			return sim.Run(tr)
		}
		natural, err := run(nil)
		if err != nil {
			return LayoutRow{}, err
		}
		hot, err := layout.FromTrace(c.Prog, tr)
		if err != nil {
			return LayoutRow{}, err
		}
		tuned, err := run(hot)
		if err != nil {
			return LayoutRow{}, err
		}
		return LayoutRow{
			Benchmark:   name,
			NaturalMiss: natural.MissRate(),
			HotMiss:     tuned.MissRate(),
			NaturalIPC:  natural.IPC(),
			HotIPC:      tuned.IPC(),
		}, nil
	})
}

// LayoutTable renders the study.
func LayoutTable(rows []LayoutRow) *stats.Table {
	t := &stats.Table{
		Title: "Profile-driven code layout (§3.3): Base organization, natural vs hot placement",
		Cols:  []string{"benchmark", "miss", "miss+layout", "IPC", "IPC+layout"},
	}
	for _, r := range rows {
		t.AddRow(r.Benchmark, stats.Pct(r.NaturalMiss), stats.Pct(r.HotMiss),
			stats.F(r.NaturalIPC, 3), stats.F(r.HotIPC, 3))
	}
	return t
}

// PredictorRow is one entry of the future-work predictor study (§7: "the
// effects of more elaborate branch prediction mechanisms"): the same
// benchmark under Base and Compressed with a given direction predictor.
type PredictorRow struct {
	Predictor      string
	MispredictRate float64
	BaseIPC        float64
	CompressedIPC  float64
}

// PredictorSweep runs one benchmark under bimodal (the paper's), gshare,
// PAs and a perfect predictor. Because the Compressed organization's
// losses come from the decoder stage's misprediction penalty, better
// predictors close (and eventually invert) its gap to Base.
func (s *Suite) PredictorSweep(bench string) ([]PredictorRow, error) {
	c, err := s.Compiled(bench)
	if err != nil {
		return nil, err
	}
	tr, err := c.Trace(s.opt.TraceBlocks)
	if err != nil {
		return nil, err
	}
	baseIm, err := c.Image("base")
	if err != nil {
		return nil, err
	}
	fullIm, err := c.Image("full")
	if err != nil {
		return nil, err
	}
	var rows []PredictorRow
	sweep := []struct {
		label   string
		kind    cache.PredictorKind
		perfect bool
	}{
		{"bimodal", cache.PredictorBimodal, false},
		{"gshare", cache.PredictorGShare, false},
		{"pas", cache.PredictorPAs, false},
		{"perfect", cache.PredictorDefault, true},
	}
	for _, pred := range sweep {
		mk := func(org cache.Org) cache.Config {
			cfg := cache.DefaultConfig(org)
			cfg.Predictor = pred.kind
			cfg.PerfectPrediction = pred.perfect
			return cfg
		}
		bSim, err := cache.NewSim(cache.OrgBase, mk(cache.OrgBase), baseIm, c.Prog)
		if err != nil {
			return nil, err
		}
		cSim, err := cache.NewSim(cache.OrgCompressed, mk(cache.OrgCompressed), fullIm, c.Prog)
		if err != nil {
			return nil, err
		}
		bRes, err := bSim.Run(tr)
		if err != nil {
			return nil, err
		}
		cRes, err := cSim.Run(tr)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PredictorRow{
			Predictor:      pred.label,
			MispredictRate: bRes.MispredictRate(),
			BaseIPC:        bRes.IPC(),
			CompressedIPC:  cRes.IPC(),
		})
	}
	return rows, nil
}

// SpecRow is one benchmark's before/after comparison for the
// treegion-style speculative hoisting pass (sched.Speculate): what the
// paper's global scheduling buys and what it costs the encodings (the S
// bit stops being constant, so the tailored ISA can no longer drop it,
// and whole-op dictionaries grow).
type SpecRow struct {
	Benchmark     string
	Hoisted       int
	DensityPlain  float64
	DensitySpec   float64
	FullPlain     float64 // full-scheme ratio without speculation
	FullSpec      float64
	TailoredPlain float64
	TailoredSpec  float64
}

// SpeculationStudy compiles each benchmark twice — with and without the
// speculative hoisting pass — and compares schedule density and the two
// headline compression ratios. Benchmarks fan out on the driver's pool;
// the plain compilation comes from the shared artifact cache.
func (s *Suite) SpeculationStudy() ([]SpecRow, error) {
	return forEachBenchmark(s, func(name string) (SpecRow, error) {
		plain, err := s.Compiled(name)
		if err != nil {
			return SpecRow{}, err
		}
		spec, hoisted, err := CompileBenchmarkSpeculative(name)
		if err != nil {
			return SpecRow{}, err
		}
		ratio := func(c *Compiled, scheme string) (float64, error) {
			base, err := c.Image("base")
			if err != nil {
				return 0, err
			}
			im, err := c.Image(scheme)
			if err != nil {
				return 0, err
			}
			return im.Ratio(base), nil
		}
		row := SpecRow{
			Benchmark:    name,
			Hoisted:      hoisted,
			DensityPlain: plain.Prog.Density(),
			DensitySpec:  spec.Prog.Density(),
		}
		if row.FullPlain, err = ratio(plain, "full"); err != nil {
			return SpecRow{}, err
		}
		if row.FullSpec, err = ratio(spec, "full"); err != nil {
			return SpecRow{}, err
		}
		if row.TailoredPlain, err = ratio(plain, "tailored"); err != nil {
			return SpecRow{}, err
		}
		if row.TailoredSpec, err = ratio(spec, "tailored"); err != nil {
			return SpecRow{}, err
		}
		return row, nil
	})
}

// SpeculationTable renders the study.
func SpeculationTable(rows []SpecRow) *stats.Table {
	t := &stats.Table{
		Title: "Treegion-style speculation study: schedule density vs encoding cost",
		Cols: []string{"benchmark", "hoisted", "density", "density+spec",
			"full", "full+spec", "tailored", "tailored+spec"},
	}
	for _, r := range rows {
		t.AddRow(r.Benchmark, stats.F(float64(r.Hoisted), 0),
			stats.F(r.DensityPlain, 3), stats.F(r.DensitySpec, 3),
			stats.Pct(r.FullPlain), stats.Pct(r.FullSpec),
			stats.Pct(r.TailoredPlain), stats.Pct(r.TailoredSpec))
	}
	return t
}

// PredictorTable renders the sweep.
func PredictorTable(bench string, rows []PredictorRow) *stats.Table {
	t := &stats.Table{
		Title: "Future-work predictor study (" + bench + "): better prediction closes Compressed's gap",
		Cols:  []string{"predictor", "mispredict", "Base IPC", "Compressed IPC", "Comp/Base"},
	}
	for _, r := range rows {
		t.AddRow(r.Predictor, stats.Pct(r.MispredictRate),
			stats.F(r.BaseIPC, 3), stats.F(r.CompressedIPC, 3),
			stats.Pct(r.CompressedIPC/r.BaseIPC))
	}
	return t
}
