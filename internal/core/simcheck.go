package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/image"
	"repro/internal/scheme"
	"repro/internal/simcheck"
	"repro/internal/trace"
	"repro/internal/verify"
)

// CheckSim runs the simulation checking layer (internal/simcheck) for
// one registered pairing over this compilation: the analytical oracle
// diff, the accounting identities, the metamorphic invariants and the
// fault-injection matrix. Image builds share the compilation's artifact
// cache. Findings land in the report; the error covers only failures to
// run the checks at all.
func (c *Compiled) CheckSim(p scheme.Pairing, cfg cache.Config, tr *trace.Trace) (*verify.Report, error) {
	im, err := c.Image(p.CacheScheme)
	if err != nil {
		return nil, err
	}
	var rom *image.Image
	if p.ROMScheme != "" {
		if rom, err = c.Image(p.ROMScheme); err != nil {
			return nil, err
		}
	}
	rep, err := simcheck.Check(simcheck.Input{
		Org: p.Org, Cfg: cfg, Im: im, ROM: rom, Prog: c.Prog, Tr: tr,
		Stage: "sim:" + p.Name,
	})
	if err != nil {
		return nil, fmt.Errorf("core: simcheck pairing %s: %w", p.Name, err)
	}
	return rep, nil
}

// SimLint is the dynamic counterpart of Lint: it replays one trace of
// the given length (0 = profile default) through every registered
// pairing at its default geometry and runs the full checking layer on
// each, merging one sorted report.
func (c *Compiled) SimLint(blocks int) (*verify.Report, error) {
	tr, err := c.Trace(blocks)
	if err != nil {
		return nil, err
	}
	rep := &verify.Report{}
	for _, p := range scheme.Pairings() {
		r, err := c.CheckSim(p, cache.DefaultConfig(p.Org), tr)
		if err != nil {
			return nil, err
		}
		rep.Merge(r)
	}
	rep.Sort()
	return rep, nil
}

// SimCheck runs SimLint for every benchmark of the suite on the
// driver's worker pool — the opt-in post-run check behind tepicbench
// -check — merging one sorted report.
func (s *Suite) SimCheck() (*verify.Report, error) {
	reps, err := forEachBenchmark(s, func(name string) (*verify.Report, error) {
		c, err := s.Compiled(name)
		if err != nil {
			return nil, err
		}
		return c.SimLint(s.opt.TraceBlocks)
	})
	if err != nil {
		return nil, err
	}
	rep := &verify.Report{}
	for _, r := range reps {
		rep.Merge(r)
	}
	rep.Sort()
	return rep, nil
}
