package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Driver is the concurrent compilation driver: a bounded worker pool
// that fans out over (benchmark, encoding-scheme) build jobs, backed by
// a content-addressed artifact store. Every artifact — compiled
// program, encoder (Huffman tables / tailored dictionary), image with
// ATT, stochastic trace — is keyed by a hash of its exact inputs
// (program content, scheme configuration, cache version; see key.go),
// built once under single-flight, and shared by every job that asks for
// it. The store is sharded and optionally bounded with LRU eviction
// (see store.go), so a long-running service driver holds steady memory
// under skewed traffic. Stage latencies and cache traffic are recorded
// in a stats.Registry so drivers of the driver (tepicbench, tepiccc,
// tepicd) can export them.
//
// All methods are safe for concurrent use.
type Driver struct {
	workers int
	obs     *stats.Registry
	sem     chan struct{}
	store   *artifactStore
}

// NewDriver returns a driver with the given worker-pool width; width <= 0
// selects GOMAXPROCS. The artifact store is unbounded — the right shape
// for batch runs that want every figure's artifacts resident.
func NewDriver(workers int) *Driver {
	return NewDriverWithCache(workers, 0, 0)
}

// NewDriverWithCache returns a driver whose artifact store has the given
// shard count (<= 0 selects the default, 8) and total entry capacity
// (<= 0 means unbounded). Service drivers (tepicd) bound the store so a
// long tail of cold programs cannot grow memory without limit; the hot
// set stays resident under LRU.
func NewDriverWithCache(workers, shards, capacity int) *Driver {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	obs := stats.NewRegistry()
	return &Driver{
		workers: workers,
		obs:     obs,
		sem:     make(chan struct{}, workers),
		store:   newArtifactStore(shards, capacity, obs),
	}
}

// Workers returns the worker-pool width.
func (d *Driver) Workers() int { return d.workers }

// Stats returns the driver's observability registry: stage timers
// ("compile.generate", "encode.full", "image.base", ...) and counters
// ("artifact.hit", "artifact.miss", "bytes.base", "bytes.encoded").
func (d *Driver) Stats() *stats.Registry { return d.obs }

// CacheHitRate returns hits / (hits + misses) over the driver's
// lifetime, or 0 before the first artifact request.
func (d *Driver) CacheHitRate() float64 {
	hits := d.obs.Counter("artifact.hit").Value()
	misses := d.obs.Counter("artifact.miss").Value()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// CacheEntries returns the number of artifacts currently resident in
// the store (in-flight builds included).
func (d *Driver) CacheEntries() int { return d.store.len() }

// memo returns the artifact stored under key, building it with build on
// first request. Concurrent requests for one key are deduplicated: one
// goroutine builds, the rest wait. A failed build is cached too — the
// inputs are content-hashed, so retrying cannot succeed. On a bounded
// store an evicted artifact rebuilds on its next request.
func (d *Driver) memo(key string, build func() (any, error)) (any, error) {
	return d.store.do(key, build)
}

// memoAs is the typed face of memo.
func memoAs[T any](d *Driver, key string, build func() (T, error)) (T, error) {
	v, err := d.memo(key, func() (any, error) { return build() })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// mapN runs fn(0..n-1) on the worker pool and collects results in index
// order; the first error (by index) wins. Task functions may build
// artifacts — builds run on the caller's worker slot — but must not call
// mapN themselves, which could exhaust the pool with waiting parents.
//
//tepic:pool
func mapN[T any](d *Driver, n int, fn func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		d.sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-d.sem }()
			out[i], errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Compile pushes a workload profile through the compiler substrate,
// returning the cached compilation when the profile was seen before.
// The returned *Compiled is shared: all its artifact builders are safe
// for concurrent use and route through the driver's cache.
func (d *Driver) Compile(prof workload.Profile) (*Compiled, error) {
	return memoAs(d, profileKey(prof), func() (*Compiled, error) {
		var (
			p     *ir.Program
			alloc regalloc.Result
			sp    *sched.Program
			err   error
		)
		if err = d.obs.Timer("compile.generate").Time(func() error {
			p, err = workload.Generate(prof)
			return err
		}); err != nil {
			return nil, err
		}
		if err = d.obs.Timer("compile.regalloc").Time(func() error {
			alloc, err = regalloc.Allocate(p)
			return err
		}); err != nil {
			return nil, err
		}
		if err = d.obs.Timer("compile.schedule").Time(func() error {
			sp, err = sched.Schedule(p)
			return err
		}); err != nil {
			return nil, err
		}
		c := newCompiled(p, sp, alloc)
		c.Profile = &prof
		c.drv = d
		return c, nil
	})
}

// CompileBenchmark compiles one of the eight benchmark stand-ins through
// the driver's cache.
func (d *Driver) CompileBenchmark(name string) (*Compiled, error) {
	prof, ok := workload.ProfileFor(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown benchmark %q", name)
	}
	return d.Compile(prof)
}

// Bind attaches an independently compiled program (asm input,
// ScheduleOnly, CompileIR) to the driver so its artifact builds share
// the content-addressed cache and report stage timings. It returns c.
func (d *Driver) Bind(c *Compiled) *Compiled {
	c.drv = d
	return c
}

// Job names one (benchmark, scheme) point of the build matrix.
type Job struct {
	Benchmark string
	Scheme    string
}

// Built is one completed job: the shared compilation and the scheme's
// image (with ATT for non-base schemes).
type Built struct {
	Job      Job
	Compiled *Compiled
	Image    *image.Image
}

// CrossJobs builds the benchmarks × schemes job matrix in deterministic
// order. Nil selects the paper's eight benchmarks / every scheme.
func CrossJobs(benchmarks, schemes []string) []Job {
	if len(benchmarks) == 0 {
		benchmarks = workload.Benchmarks
	}
	if len(schemes) == 0 {
		schemes = SchemeNames()
	}
	jobs := make([]Job, 0, len(benchmarks)*len(schemes))
	for _, b := range benchmarks {
		for _, s := range schemes {
			jobs = append(jobs, Job{Benchmark: b, Scheme: s})
		}
	}
	return jobs
}

// BuildAll fans the job list out over the worker pool. Each benchmark
// compiles once and each (program, scheme) artifact builds once
// regardless of how many jobs share it; results come back in job order.
func (d *Driver) BuildAll(jobs []Job) ([]Built, error) {
	return mapN(d, len(jobs), func(i int) (Built, error) {
		c, err := d.CompileBenchmark(jobs[i].Benchmark)
		if err != nil {
			return Built{}, err
		}
		im, err := c.Image(jobs[i].Scheme)
		if err != nil {
			return Built{}, err
		}
		return Built{Job: jobs[i], Compiled: c, Image: im}, nil
	})
}
