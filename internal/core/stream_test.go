package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/simcheck"
	"repro/internal/trace"
	"repro/internal/workload"
)

// streamMatrixBlocks keeps the all-benchmarks sweep affordable while
// still exercising capacity misses, L0 churn and predictor training
// across every window seam.
const streamMatrixBlocks = 30000

// TestStreamEquivalenceMatrix is the tentpole acceptance matrix: for
// every benchmark × registered pairing, the window-sharded replay of a
// streamed trace must be bit-identical — every counter — to the
// sequential Sim.Run of the materialized trace with the same seed, and
// must agree with the analytical oracle's streaming recomputation.
func TestStreamEquivalenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles every benchmark; too slow for -short")
	}
	for _, bench := range workload.Benchmarks {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			c, err := CompileBenchmark(bench)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := c.Trace(streamMatrixBlocks)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range Pairings() {
				cfg := cache.DefaultConfig(p.Org)
				sim, err := c.SimFor(p, cfg)
				if err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}
				want, err := sim.Run(tr)
				if err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}

				st, err := c.StreamTrace(streamMatrixBlocks, 1021)
				if err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}
				shardSim, err := c.SimFor(p, cfg)
				if err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}
				got, err := cache.RunSharded(shardSim, st, 4)
				if err != nil {
					t.Fatalf("%s: RunSharded: %v", p.Name, err)
				}
				if got != want {
					t.Errorf("%s: sharded-over-stream differs from sequential:\n  sharded %+v\n  seq     %+v",
						p.Name, got, want)
				}

				stSpec, err := c.StreamTrace(streamMatrixBlocks, 1021)
				if err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}
				specSim, err := c.SimFor(p, cfg)
				if err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}
				spec, stats, err := cache.RunShardedSpec(specSim, stSpec, 4)
				if err != nil {
					t.Fatalf("%s: RunShardedSpec: %v", p.Name, err)
				}
				if spec != want {
					t.Errorf("%s: speculative-over-stream differs from sequential:\n  spec %+v\n  seq  %+v",
						p.Name, spec, want)
				}
				if stats.Hits+stats.Retries != stats.Windows {
					t.Errorf("%s: spec accounting hits %d + retries %d != windows %d",
						p.Name, stats.Hits, stats.Retries, stats.Windows)
				}

				im, err := c.Image(p.CacheScheme)
				if err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}
				in := simcheck.Input{Org: p.Org, Cfg: cfg, Im: im, Prog: c.Prog, Tr: tr,
					Stage: "stream:" + p.Name}
				if p.ROMScheme != "" {
					if in.ROM, err = c.Image(p.ROMScheme); err != nil {
						t.Fatalf("%s: %v", p.Name, err)
					}
				}
				oracle, err := simcheck.ExpectedStream(in.Org, cfg, in.Im, in.ROM, c.Prog,
					trace.NewSliceStream(tr, 1021))
				if err != nil {
					t.Fatalf("%s: oracle: %v", p.Name, err)
				}
				for _, m := range simcheck.Diff(got, oracle) {
					t.Errorf("%s: oracle disagrees on %s: simulator %d, oracle %d",
						p.Name, m.Field, m.Got, m.Want)
				}
			}
		})
	}
}
