package core

import (
	"strings"
	"testing"

	"repro/internal/asm"
)

func TestCompileBenchmark(t *testing.T) {
	c, err := CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	if c.Prog.TotalOps() == 0 {
		t.Fatal("no scheduled ops")
	}
	if c.Profile == nil || c.Profile.Name != "compress" {
		t.Error("profile not attached")
	}
	if _, err := CompileBenchmark("nonesuch"); err == nil {
		t.Error("accepted unknown benchmark")
	}
}

func TestAllSchemesBuildAndVerify(t *testing.T) {
	c, err := CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range SchemeNames() {
		im, err := c.Image(scheme)
		if err != nil {
			t.Fatalf("scheme %s: %v", scheme, err)
		}
		if im.CodeBytes == 0 {
			t.Errorf("scheme %s: empty image", scheme)
		}
		if scheme != "base" && im.ATT == nil {
			t.Errorf("scheme %s: no ATT attached", scheme)
		}
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("round-trip verification failed: %v", err)
	}
}

func TestEncoderCaching(t *testing.T) {
	c, err := CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	e1, err := c.Encoder("full")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Encoder("full")
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("encoder not cached")
	}
	if _, err := c.Encoder("nonesuch"); err == nil {
		t.Error("accepted unknown scheme")
	}
}

func TestTraceUsesProfileDefaults(t *testing.T) {
	c, err := CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Trace(5000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 {
		t.Errorf("trace length %d", tr.Len())
	}
	tr2, err := c.Trace(0)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != c.Profile.DynBlocks {
		t.Errorf("default trace length %d, want %d", tr2.Len(), c.Profile.DynBlocks)
	}
}

func TestScheduleOnlyHandWritten(t *testing.T) {
	b := asm.NewProgram("hand")
	f := b.Func("main")
	r := asm.R
	f.Block().Ldi(r(1), 3).Add(r(2), r(1), r(1)).Ret()
	irp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := ScheduleOnly(irp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Trace(10); err == nil {
		t.Error("hand-written program should have no stochastic trace")
	}
	im, err := c.Image("full")
	if err != nil {
		t.Fatal(err)
	}
	if im.CodeBytes == 0 {
		t.Error("empty image")
	}
	tl, err := c.Tailored()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tl.EmitVerilog(&sb, "hand_decoder"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "module hand_decoder") {
		t.Error("Verilog emission through core facade failed")
	}
}

func TestSchemeNamesComplete(t *testing.T) {
	names := SchemeNames()
	want := map[string]bool{"base": true, "byte": true, "full": true,
		"tailored": true, "stream": true, "stream_1": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("SchemeNames missing %v", want)
	}
	if len(names) != 10 {
		t.Errorf("expected 10 schemes (base, byte, 6 streams, full, tailored), got %d", len(names))
	}
}
