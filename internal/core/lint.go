package core

import (
	"repro/internal/verify"
)

// Lint runs the static verifier (internal/verify) over the compilation
// and the given schemes' encoding artifacts, building any encoder or
// image not yet cached. A nil or empty scheme list verifies every
// scheme. The returned report is sorted; an error is returned only when
// an artifact cannot be built at all — invariant violations land in the
// report, not the error.
func (c *Compiled) Lint(schemes []string) (*verify.Report, error) {
	if len(schemes) == 0 {
		schemes = SchemeNames()
	}
	arts := make([]verify.Artifact, 0, len(schemes))
	for _, s := range schemes {
		enc, err := c.Encoder(s)
		if err != nil {
			return nil, err
		}
		im, err := c.Image(s)
		if err != nil {
			return nil, err
		}
		arts = append(arts, verify.Artifact{Scheme: s, Enc: enc, Im: im})
	}
	return verify.Pipeline(c.IR, c.Prog, arts), nil
}
