package core

import (
	"testing"

	"repro/internal/bitio"
	"repro/internal/compress"
	"repro/internal/emu"
	"repro/internal/sched"
	"repro/internal/workload"
)

// decodedProgram reconstructs a runnable scheduled program from an
// encoded image: every block's operations are decoded back out of the
// image bits and grafted onto the original control-flow skeleton. If the
// encoding is faithful this program is semantically identical to the one
// the compiler produced.
func decodedProgram(t *testing.T, c *Compiled, scheme string) *sched.Program {
	t.Helper()
	im, err := c.Image(scheme)
	if err != nil {
		t.Fatalf("image %s: %v", scheme, err)
	}
	enc, err := c.Encoder(scheme)
	if err != nil {
		t.Fatalf("encoder %s: %v", scheme, err)
	}
	r := bitio.NewReader(im.Data)
	clone := &sched.Program{
		Name:        c.Prog.Name,
		FuncEntries: append([]int(nil), c.Prog.FuncEntries...),
	}
	for i, b := range c.Prog.Blocks {
		if err := r.SeekBit(im.Blocks[i].Addr * 8); err != nil {
			t.Fatalf("%s block %d: %v", scheme, b.ID, err)
		}
		ops, err := enc.DecodeBlock(r, len(b.Ops))
		if err != nil {
			t.Fatalf("%s decode block %d: %v", scheme, b.ID, err)
		}
		nb := *b
		nb.Ops = ops
		clone.Blocks = append(clone.Blocks, &nb)
	}
	return clone
}

// diffSteps bounds the differential runs. The generated benchmarks model
// long-running programs, so execution is cut at a block boundary and the
// architectural prefixes compared.
func diffSteps(t *testing.T) int64 {
	if testing.Short() {
		return 50_000
	}
	return 250_000
}

// TestDifferentialExecution is the end-to-end encoding correctness gate:
// for every example benchmark, the original scheduled program and the
// program decoded back out of each scheme's image must produce identical
// architectural traces — same block sequence, same step count, same
// register files, predicates and memory.
func TestDifferentialExecution(t *testing.T) {
	benchmarks := workload.Benchmarks
	if testing.Short() {
		benchmarks = benchmarks[:2]
	}
	steps := diffSteps(t)
	d := NewDriver(0)
	for _, name := range benchmarks {
		c, err := d.CompileBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		refMachine := emu.NewMachine()
		refTrace, refDone, err := refMachine.RunBounded(c.Prog, steps)
		if err != nil {
			t.Fatalf("%s: reference run: %v", name, err)
		}
		refMem := refMachine.MemSnapshot()

		for _, scheme := range driverSchemes {
			sp := decodedProgram(t, c, scheme)
			m := emu.NewMachine()
			tr, done, err := m.RunBounded(sp, steps)
			if err != nil {
				t.Errorf("%s/%s: decoded run: %v", name, scheme, err)
				continue
			}
			if done != refDone {
				t.Errorf("%s/%s: termination differs: decoded done=%v, reference done=%v",
					name, scheme, done, refDone)
				continue
			}
			if m.Steps != refMachine.Steps {
				t.Errorf("%s/%s: step count %d != reference %d",
					name, scheme, m.Steps, refMachine.Steps)
			}
			if tr.Ops != refTrace.Ops || tr.MOPs != refTrace.MOPs {
				t.Errorf("%s/%s: trace totals (%d ops, %d MOPs) != reference (%d, %d)",
					name, scheme, tr.Ops, tr.MOPs, refTrace.Ops, refTrace.MOPs)
			}
			if len(tr.Events) != len(refTrace.Events) {
				t.Errorf("%s/%s: %d trace events != reference %d",
					name, scheme, len(tr.Events), len(refTrace.Events))
				continue
			}
			for i := range tr.Events {
				if tr.Events[i] != refTrace.Events[i] {
					t.Errorf("%s/%s: event %d = %+v, reference %+v",
						name, scheme, i, tr.Events[i], refTrace.Events[i])
					break
				}
			}
			if m.GPR != refMachine.GPR {
				t.Errorf("%s/%s: GPR file differs after run", name, scheme)
			}
			if m.FPR != refMachine.FPR {
				t.Errorf("%s/%s: FPR file differs after run", name, scheme)
			}
			if m.Pred != refMachine.Pred {
				t.Errorf("%s/%s: predicate file differs after run", name, scheme)
			}
			mem := m.MemSnapshot()
			if len(mem) != len(refMem) {
				t.Errorf("%s/%s: %d written memory words != reference %d",
					name, scheme, len(mem), len(refMem))
				continue
			}
			for addr, v := range refMem {
				if mem[addr] != v {
					t.Errorf("%s/%s: mem[%d] = %d, reference %d",
						name, scheme, addr, mem[addr], v)
					break
				}
			}
		}
	}
}

// TestFastReferenceDecodeEquivalence is the fast-decoder equivalence
// harness: for every benchmark and every scheme built on Huffman tables,
// each image block decoded through the table-driven fast path
// (DecodeBlock) and through the bit-by-bit reference oracle
// (ReferenceDecodeBlock) must yield identical operations and leave both
// readers at the same bit offset — the whole-corpus complement to the
// random-stream FuzzFastDecodeEquivalence.
func TestFastReferenceDecodeEquivalence(t *testing.T) {
	benchmarks := workload.Benchmarks
	if testing.Short() {
		benchmarks = benchmarks[:2]
	}
	d := NewDriver(0)
	for _, name := range benchmarks {
		c, err := d.CompileBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range driverSchemes {
			enc, err := c.Encoder(scheme)
			if err != nil {
				t.Fatalf("%s/%s: encoder: %v", name, scheme, err)
			}
			ref, ok := enc.(compress.ReferenceDecoder)
			if !ok {
				continue // base, tailored: no Huffman decoder pair
			}
			im, err := c.Image(scheme)
			if err != nil {
				t.Fatalf("%s/%s: image: %v", name, scheme, err)
			}
			fr := bitio.NewReader(im.Data)
			rr := bitio.NewReader(im.Data)
			for i, b := range c.Prog.Blocks {
				if err := fr.SeekBit(im.Blocks[i].Addr * 8); err != nil {
					t.Fatalf("%s/%s block %d: %v", name, scheme, b.ID, err)
				}
				if err := rr.SeekBit(im.Blocks[i].Addr * 8); err != nil {
					t.Fatalf("%s/%s block %d: %v", name, scheme, b.ID, err)
				}
				fops, ferr := enc.DecodeBlock(fr, len(b.Ops))
				rops, rerr := ref.ReferenceDecodeBlock(rr, len(b.Ops))
				if ferr != nil || rerr != nil {
					t.Fatalf("%s/%s block %d: fast err %v, reference err %v",
						name, scheme, b.ID, ferr, rerr)
				}
				if fr.Offset() != rr.Offset() {
					t.Errorf("%s/%s block %d: fast consumed through bit %d, reference %d",
						name, scheme, b.ID, fr.Offset(), rr.Offset())
				}
				if len(fops) != len(rops) {
					t.Fatalf("%s/%s block %d: %d ops vs reference %d",
						name, scheme, b.ID, len(fops), len(rops))
				}
				for j := range fops {
					if fops[j] != rops[j] {
						t.Errorf("%s/%s block %d op %d: fast %v, reference %v",
							name, scheme, b.ID, j, fops[j].String(), rops[j].String())
						break
					}
				}
			}
		}
	}
}

// TestMeasureDecodeThroughput exercises the measurement entry point on
// one benchmark: Huffman schemes must report a positive rate for both
// decoders and identical per-pass symbol streams (enforced internally);
// schemes without a decoder pair must report nothing.
func TestMeasureDecodeThroughput(t *testing.T) {
	d := NewDriver(0)
	c, err := d.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	dt, err := c.MeasureDecodeThroughput("full", 1)
	if err != nil {
		t.Fatal(err)
	}
	if dt == nil {
		t.Fatal("full scheme reported no decode throughput")
	}
	if dt.Fast.OpsPerSec <= 0 || dt.Reference.OpsPerSec <= 0 || dt.Speedup <= 0 {
		t.Fatalf("non-positive rates: %+v", dt)
	}
	if dt.Fast.Ops == 0 || dt.Fast.Bits == 0 {
		t.Fatalf("no work measured: %+v", dt)
	}
	snap := d.Stats().Snapshot()
	if _, ok := snap.Throughput["decode.fast.full"]; !ok {
		t.Error("driver registry missing decode.fast.full throughput")
	}
	if _, ok := snap.Throughput["decode.reference.full"]; !ok {
		t.Error("driver registry missing decode.reference.full throughput")
	}
	if dt, err := c.MeasureDecodeThroughput("base", 1); err != nil || dt != nil {
		t.Fatalf("base scheme: got (%+v, %v), want (nil, nil)", dt, err)
	}
}

// TestRunBoundedTermination checks the bounded runner's two exits: a
// program that terminates inside the bound reports done=true with the
// same trace Run produces, and a bound hit returns the partial prefix
// without error.
func TestRunBoundedTermination(t *testing.T) {
	d := NewDriver(0)
	c, err := d.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine()
	tr, done, err := m.RunBounded(c.Prog, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Skip("benchmark terminated inside the small bound; nothing to cut")
	}
	if len(tr.Events) == 0 {
		t.Fatal("bound hit but no trace prefix returned")
	}
	// A longer bound must extend the prefix, not change it.
	m2 := emu.NewMachine()
	tr2, _, err := m2.RunBounded(c.Prog, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Events) <= len(tr.Events) {
		t.Fatalf("longer bound gave %d events, shorter gave %d", len(tr2.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if tr.Events[i] != tr2.Events[i] {
			t.Fatalf("event %d differs between bounds: %+v vs %+v", i, tr.Events[i], tr2.Events[i])
		}
	}
}
