package core

import (
	"strings"
	"testing"
)

func TestRelatedWork(t *testing.T) {
	s := NewSuite(Options{Benchmarks: []string{"vortex"}, TraceBlocks: 100000})
	rows, err := s.RelatedWork()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 approaches, got %d", len(rows))
	}
	byName := map[string]RelatedRow{}
	for _, r := range rows {
		byName[r.Approach] = r
	}
	base := byName["Base"]
	cp := byName["CodePack(byte)"]
	comp := byName["Compressed(full)"]
	tl := byName["Tailored"]
	thumb := byName["Thumb-style"]

	if base.ROMRatio != 1 || base.IPC <= 0 {
		t.Error("base row malformed")
	}
	// ROM ordering: full < tailored-ish; codepack < base; thumb < base.
	if comp.ROMRatio >= cp.ROMRatio {
		t.Errorf("full ROM %.3f not below codepack's byte ROM %.3f",
			comp.ROMRatio, cp.ROMRatio)
	}
	if cp.ROMRatio >= 1 || thumb.ROMRatio >= 1 || tl.ROMRatio >= 1 {
		t.Error("every compression approach must shrink the ROM")
	}
	// §6's criticisms quantified: with the ROM miss path charged whole
	// bus lines (not raw compressed bytes), CodePack's entropy-dense
	// lines toggle MORE per beat than Base's — no bus-energy win — and
	// it buys no performance either; on the capacity benchmark the
	// paper's Compressed wins.
	if cp.FlipRatio <= 1 {
		t.Errorf("codepack flip ratio %.3f not above base under line-granular accounting", cp.FlipRatio)
	}
	if cp.IPC >= base.IPC {
		t.Errorf("codepack IPC %.3f not below base %.3f", cp.IPC, base.IPC)
	}
	if comp.IPC <= cp.IPC {
		t.Errorf("compressed IPC %.3f not above codepack %.3f", comp.IPC, cp.IPC)
	}
	// Thumb model is static-only.
	if thumb.IPC != 0 {
		t.Error("thumb model should not report IPC")
	}
	tab := RelatedWorkTable(rows).Render()
	if !strings.Contains(tab, "CodePack") || !strings.Contains(tab, "Thumb") {
		t.Error("table render incomplete")
	}
}

func TestDictionarySweep(t *testing.T) {
	s := NewSuite(Options{Benchmarks: []string{"compress", "go"}})
	rows, err := s.DictionarySweep(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.DictRatio <= r.FullRatio {
			t.Errorf("%s: dictionary ratio %.3f should not beat Huffman %.3f",
				r.Benchmark, r.DictRatio, r.FullRatio)
		}
		if r.DictRatio >= 1 {
			t.Errorf("%s: dictionary ratio %.3f not below 1", r.Benchmark, r.DictRatio)
		}
		if r.DictRAMBits <= 0 || r.DictEntries <= 0 {
			t.Errorf("%s: decoder metadata missing", r.Benchmark)
		}
	}
}

func TestSpeculationStudy(t *testing.T) {
	s := NewSuite(Options{Benchmarks: []string{"compress", "m88ksim"}})
	rows, err := s.SpeculationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Hoisted <= 0 {
			t.Errorf("%s: nothing hoisted", r.Benchmark)
		}
		if r.DensitySpec < r.DensityPlain-0.02 {
			t.Errorf("%s: density regressed %.3f -> %.3f",
				r.Benchmark, r.DensityPlain, r.DensitySpec)
		}
		// The S bit stops being droppable, so the tailored ratio pays.
		if r.TailoredSpec <= r.TailoredPlain {
			t.Errorf("%s: speculation should cost the tailored encoding (%.3f -> %.3f)",
				r.Benchmark, r.TailoredPlain, r.TailoredSpec)
		}
	}
	if tab := SpeculationTable(rows).Render(); len(tab) < 100 {
		t.Error("table too small")
	}
}

func TestCompileBenchmarkSpeculative(t *testing.T) {
	c, hoisted, err := CompileBenchmarkSpeculative("compress")
	if err != nil {
		t.Fatal(err)
	}
	if hoisted == 0 {
		t.Error("no hoisting")
	}
	if err := c.Verify(); err == nil {
		// Verify needs built images; build one and re-verify.
		if _, err := c.Image("full"); err != nil {
			t.Fatal(err)
		}
		if err := c.Verify(); err != nil {
			t.Fatalf("speculated program fails round-trip: %v", err)
		}
	}
	if _, _, err := CompileBenchmarkSpeculative("nonesuch"); err == nil {
		t.Error("accepted unknown benchmark")
	}
}

func TestPredictorSweep(t *testing.T) {
	s := NewSuite(Options{TraceBlocks: 100000})
	rows, err := s.PredictorSweep("go")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 predictors, got %d", len(rows))
	}
	byName := map[string]PredictorRow{}
	for _, r := range rows {
		byName[r.Predictor] = r
	}
	if byName["perfect"].MispredictRate != 0 {
		t.Error("perfect predictor mispredicted")
	}
	// The future-work claim: with perfect prediction the Compressed
	// scheme's decoder-stage penalty vanishes, so its relative position
	// improves over the bimodal baseline.
	bimodalGap := byName["bimodal"].CompressedIPC / byName["bimodal"].BaseIPC
	perfectGap := byName["perfect"].CompressedIPC / byName["perfect"].BaseIPC
	if perfectGap <= bimodalGap {
		t.Errorf("perfect-prediction gap %.4f not better than bimodal %.4f",
			perfectGap, bimodalGap)
	}
	if tab := PredictorTable("go", rows).Render(); len(tab) < 80 {
		t.Error("table render too small")
	}
}
