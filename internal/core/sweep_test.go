package core

import (
	"encoding/json"
	"testing"

	"repro/internal/cache"
	"repro/internal/scheme"
)

func TestDefaultSweepPoints(t *testing.T) {
	preds := len(cache.PredictorKinds())
	for _, p := range scheme.Pairings() {
		spec, ok := p.Org.Spec()
		if !ok {
			t.Fatalf("pairing %s: no org spec", p.Name)
		}
		want := 3 * 3 * preds // sets x assoc x predictors
		if spec.HasL0 {
			want *= 2 // x L0 capacities
		}
		points := DefaultSweepPoints(p)
		if len(points) != want {
			t.Errorf("%s: %d sweep points, want %d", p.Name, len(points), want)
		}
		if len(points) < 24 {
			t.Errorf("%s: %d sweep points, want >= 24", p.Name, len(points))
		}
		for _, pt := range points {
			cfg := pt.Config()
			if cfg.Sets <= 0 || cfg.Assoc <= 0 || cfg.LineBytes <= 0 {
				t.Errorf("%s: invalid sweep config %+v", p.Name, cfg)
			}
			if spec.HasL0 != (cfg.L0Ops > 0 && pt.L0Ops > 0) {
				t.Errorf("%s: L0Ops %d inconsistent with HasL0=%v", p.Name, cfg.L0Ops, spec.HasL0)
			}
		}
	}
}

func TestGeometrySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a benchmark; too slow for -short")
	}
	s := NewSuite(Options{Benchmarks: []string{"compress"}, TraceBlocks: 5000})
	p, ok := scheme.PairingByName("Compressed")
	if !ok {
		t.Fatal("no Compressed pairing")
	}
	points := DefaultSweepPoints(p)
	rows, err := s.GeometrySweep("compress", points)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(points) {
		t.Fatalf("%d rows for %d points", len(rows), len(points))
	}
	for i, r := range rows {
		pt := points[i]
		if r.Sets != pt.Sets || r.Assoc != pt.Assoc {
			t.Errorf("row %d: geometry %dx%d, want %dx%d", i, r.Sets, r.Assoc, pt.Sets, pt.Assoc)
		}
		if r.IPC <= 0 || r.IPC > 16 {
			t.Errorf("row %d: implausible IPC %v", i, r.IPC)
		}
		if r.L0Ops != pt.L0Ops {
			t.Errorf("row %d: L0Ops %d, want %d", i, r.L0Ops, pt.L0Ops)
		}
		if r.Predictor == "" {
			t.Errorf("row %d: empty predictor label", i)
		}
	}
	// Bigger caches can't fetch more lines: compare the smallest and
	// largest geometry at equal predictor and L0 capacity.
	first, last := rows[0], rows[len(rows)-1]
	if last.Result.LinesFetched > first.Result.LinesFetched {
		t.Errorf("largest geometry fetched more lines (%d) than smallest (%d)",
			last.Result.LinesFetched, first.Result.LinesFetched)
	}

	data, err := SweepJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []SweepRow
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("sweep JSON does not round-trip: %v", err)
	}
	if len(decoded) != len(rows) {
		t.Fatalf("JSON round-trip lost rows: %d != %d", len(decoded), len(rows))
	}
	if got := SweepTable(rows).Render(); got == "" {
		t.Error("empty sweep table")
	}
}
