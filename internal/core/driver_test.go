package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// driverSchemes is the scheme set the driver tests build; it covers every
// encoder family without the four extra stream configurations.
var driverSchemes = []string{"base", "byte", "stream", "stream_1", "full", "tailored"}

func TestCrossJobs(t *testing.T) {
	jobs := CrossJobs([]string{"compress", "go"}, []string{"base", "full"})
	want := []Job{
		{"compress", "base"}, {"compress", "full"},
		{"go", "base"}, {"go", "full"},
	}
	if len(jobs) != len(want) {
		t.Fatalf("got %d jobs, want %d", len(jobs), len(want))
	}
	for i := range want {
		if jobs[i] != want[i] {
			t.Errorf("job %d = %v, want %v", i, jobs[i], want[i])
		}
	}
	if n := len(CrossJobs(nil, nil)); n != 8*len(SchemeNames()) {
		t.Errorf("default matrix has %d jobs, want %d", n, 8*len(SchemeNames()))
	}
}

func TestDriverBuildAllAndWarmCache(t *testing.T) {
	d := NewDriver(4)
	jobs := CrossJobs([]string{"compress"}, driverSchemes)

	cold, err := d.BuildAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(cold), len(jobs))
	}
	for i, b := range cold {
		if b.Job != jobs[i] {
			t.Errorf("result %d out of order: %v != %v", i, b.Job, jobs[i])
		}
		if b.Image == nil || b.Image.CodeBytes == 0 {
			t.Errorf("job %v: empty image", b.Job)
		}
	}
	misses := d.Stats().Counter("artifact.miss").Value()
	if misses == 0 {
		t.Fatal("cold pass recorded no cache misses")
	}

	// Warm pass: everything must come from the cache, bit-identical.
	warm, err := d.BuildAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Counter("artifact.miss").Value(); got != misses {
		t.Errorf("warm pass built %d new artifacts; want 0", got-misses)
	}
	for i := range warm {
		if warm[i].Image != cold[i].Image {
			t.Errorf("job %v: warm image is not the cached object", warm[i].Job)
		}
	}
	if rate := d.CacheHitRate(); rate < 0.5 {
		t.Errorf("lifetime hit rate %.2f after warm pass; want >= 0.5", rate)
	}

	// A cold driver rebuilds from scratch to byte-identical artifacts.
	d2 := NewDriver(2)
	cold2, err := d2.BuildAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold2 {
		if !bytes.Equal(cold2[i].Image.Data, cold[i].Image.Data) {
			t.Errorf("job %v: cold rebuild differs from first build", cold2[i].Job)
		}
	}
}

func TestDriverSingleFlight(t *testing.T) {
	d := NewDriver(8)
	builds := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := memoAs(d, "k", func() (int, error) {
				builds++ // safe: single-flight runs this exactly once
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("memo = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("build ran %d times; want 1", builds)
	}
	hits := d.Stats().Counter("artifact.hit").Value()
	misses := d.Stats().Counter("artifact.miss").Value()
	if misses != 1 || hits != 15 {
		t.Errorf("hit/miss = %d/%d, want 15/1", hits, misses)
	}
}

func TestDriverSharesCompilation(t *testing.T) {
	d := NewDriver(2)
	c1, err := d.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := d.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("same benchmark compiled twice through one driver")
	}
	e1, err := c1.Encoder("full")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c2.Encoder("full")
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("full encoder not shared through the content cache")
	}
}

// TestDriverParallelDeterminism is the race/determinism gate: the same
// build matrix at parallelism 1 and N must produce byte-identical images
// and a stable static-verification report. CI runs this under -race.
func TestDriverParallelDeterminism(t *testing.T) {
	benchmarks := []string{"compress", "go"}
	jobs := CrossJobs(benchmarks, driverSchemes)

	build := func(par int) ([]Built, string) {
		d := NewDriver(par)
		built, err := d.BuildAll(jobs)
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		var lint strings.Builder
		for _, name := range benchmarks {
			c, err := d.CompileBenchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.Lint(driverSchemes)
			if err != nil {
				t.Fatalf("par %d: lint %s: %v", par, name, err)
			}
			if err := rep.WriteText(&lint); err != nil {
				t.Fatal(err)
			}
		}
		return built, lint.String()
	}

	serial, serialLint := build(1)
	parallel, parallelLint := build(8)
	for i := range serial {
		if !bytes.Equal(serial[i].Image.Data, parallel[i].Image.Data) {
			t.Errorf("job %v: image differs between parallelism 1 and 8", serial[i].Job)
		}
		if serial[i].Image.CodeBytes != parallel[i].Image.CodeBytes {
			t.Errorf("job %v: size differs", serial[i].Job)
		}
	}
	if serialLint != parallelLint {
		t.Errorf("verify output differs between parallelism 1 and 8:\n--- par 1 ---\n%s\n--- par 8 ---\n%s",
			serialLint, parallelLint)
	}
}

func TestDriverErrorPropagation(t *testing.T) {
	d := NewDriver(2)
	if _, err := d.CompileBenchmark("nonesuch"); err == nil {
		t.Error("accepted unknown benchmark")
	}
	if _, err := d.BuildAll([]Job{{Benchmark: "compress", Scheme: "nonesuch"}}); err == nil {
		t.Error("accepted unknown scheme")
	}
}

func TestContentKeys(t *testing.T) {
	d := NewDriver(1)
	c, err := d.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	if c.contentKey() == "" || c.contentKey() != c.contentKey() {
		t.Error("content key unstable")
	}
	// A different program must hash differently.
	c2, err := d.CompileBenchmark("go")
	if err != nil {
		t.Fatal(err)
	}
	if c.contentKey() == c2.contentKey() {
		t.Error("distinct programs share a content key")
	}
	// Scheme keys describe configuration content, not display names.
	if schemeKey("stream") == schemeKey("stream_1") {
		t.Error("distinct stream configurations share a scheme key")
	}
	if !strings.Contains(c.encoderKey("full"), ArtifactCacheVersion) {
		t.Error("cache version not folded into artifact keys")
	}
}
