package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/scheme"
)

// goldenBlocks is the trace length the golden snapshot was taken at. It
// is long enough to exercise every startup-matrix cell (mispredicted L0
// hits, CodePack miss-path refills) on every benchmark while keeping the
// regeneration run under a couple of seconds.
const goldenBlocks = 50000

// goldenResults replays every benchmark through every registered pairing
// and returns the full cache.Result per "benchmark/pairing" key.
func goldenResults(t *testing.T) map[string]cache.Result {
	t.Helper()
	s := NewSuite(Options{TraceBlocks: goldenBlocks})
	out := map[string]cache.Result{}
	for _, bench := range s.opt.benchmarks() {
		c, err := s.Compiled(bench)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := c.Trace(goldenBlocks)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range scheme.Pairings() {
			sim, err := c.SimFor(p, cache.DefaultConfig(p.Org))
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(tr)
			if err != nil {
				t.Fatal(err)
			}
			out[fmt.Sprintf("%s/%s", bench, p.Name)] = res
		}
	}
	return out
}

// TestGoldenEquivalence pins the simulator's observable behaviour: the
// complete cache.Result of every benchmark × pairing must stay
// bit-identical to the snapshot taken before the stage-pipeline
// refactor. Any counter drifting — cycles, flips, buffer hits — fails
// here before it can silently shift a figure. Regenerate deliberately
// with GOLDEN_UPDATE=1 after an intended behaviour change.
func TestGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replay is too slow for -short")
	}
	path := filepath.Join("testdata", "golden_results.json")
	got := goldenResults(t)

	if os.Getenv("GOLDEN_UPDATE") != "" {
		blob := struct {
			TraceBlocks int                     `json:"trace_blocks"`
			Results     map[string]cache.Result `json:"results"`
		}{goldenBlocks, got}
		data, err := json.MarshalIndent(blob, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d results)", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden snapshot (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	var want struct {
		TraceBlocks int                     `json:"trace_blocks"`
		Results     map[string]cache.Result `json:"results"`
	}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if want.TraceBlocks != goldenBlocks {
		t.Fatalf("golden snapshot at %d trace blocks, test runs %d", want.TraceBlocks, goldenBlocks)
	}
	for key, w := range want.Results {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: in golden snapshot but no longer simulated", key)
			continue
		}
		if g != w {
			t.Errorf("%s:\n got  %+v\n want %+v", key, g, w)
		}
	}
	for key := range got {
		if _, ok := want.Results[key]; !ok {
			t.Errorf("%s: simulated but missing from golden snapshot (GOLDEN_UPDATE=1 to adopt)", key)
		}
	}
}
