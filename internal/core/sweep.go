package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/cache"
	"repro/internal/scheme"
	"repro/internal/stats"
)

// SweepPoint is one simulation point of a geometry/predictor sweep: a
// registered pairing plus the Config overrides to apply to its paper
// default (zero values keep the default).
type SweepPoint struct {
	Pairing   scheme.Pairing
	Sets      int
	Assoc     int
	LineBytes int
	L0Ops     int
	Predictor cache.PredictorKind
}

// Config materializes the point's cache configuration.
func (p SweepPoint) Config() cache.Config {
	cfg := cache.DefaultConfig(p.Pairing.Org)
	if p.Sets > 0 {
		cfg.Sets = p.Sets
	}
	if p.Assoc > 0 {
		cfg.Assoc = p.Assoc
	}
	if p.LineBytes > 0 {
		cfg.LineBytes = p.LineBytes
	}
	if p.L0Ops > 0 {
		cfg.L0Ops = p.L0Ops
	}
	cfg.Predictor = p.Predictor
	return cfg
}

// SweepRow is one completed sweep point, machine-readable for reports.
type SweepRow struct {
	Benchmark      string       `json:"benchmark"`
	Pairing        string       `json:"pairing"`
	Sets           int          `json:"sets"`
	Assoc          int          `json:"assoc"`
	LineBytes      int          `json:"line_bytes"`
	L0Ops          int          `json:"l0_ops,omitempty"`
	Predictor      string       `json:"predictor"`
	CapacityKB     float64      `json:"capacity_kb"`
	IPC            float64      `json:"ipc"`
	MissRate       float64      `json:"miss_rate"`
	MispredictRate float64      `json:"mispredict_rate"`
	Result         cache.Result `json:"result"`
}

// DefaultSweepPoints enumerates the registry-driven default grid for one
// pairing: sets {128, 256, 512} × associativity {1, 2, 4} × every
// registered direction predictor, crossed with L0 capacities {16, 32}
// when the organization's spec carries an L0 buffer. The grid adapts to
// the registries — registering a new predictor or sweeping a freshly
// registered pairing needs no edit here.
func DefaultSweepPoints(p scheme.Pairing) []SweepPoint {
	spec, ok := p.Org.Spec()
	if !ok {
		return nil
	}
	l0s := []int{0}
	if spec.HasL0 {
		l0s = []int{16, 32}
	}
	var points []SweepPoint
	for _, sets := range []int{128, 256, 512} {
		for _, assoc := range []int{1, 2, 4} {
			for _, kind := range cache.PredictorKinds() {
				for _, l0 := range l0s {
					points = append(points, SweepPoint{
						Pairing: p, Sets: sets, Assoc: assoc,
						L0Ops: l0, Predictor: kind,
					})
				}
			}
		}
	}
	return points
}

// GeometrySweep runs every point against one benchmark on the driver's
// worker pool, in point order. The compilation and its images build once
// through the artifact cache; only the simulations fan out.
func (s *Suite) GeometrySweep(bench string, points []SweepPoint) ([]SweepRow, error) {
	c, err := s.Compiled(bench)
	if err != nil {
		return nil, err
	}
	tr, err := c.Trace(s.opt.TraceBlocks)
	if err != nil {
		return nil, err
	}
	// Pre-build each pairing's images serially so the fan-out below is
	// pure simulation (image builds inside mapN would hold worker slots
	// while waiting on the single-flight build).
	for _, p := range points {
		if _, err := c.SimFor(p.Pairing, p.Config()); err != nil {
			return nil, err
		}
	}
	simTimer := s.drv.Stats().Timer("sim")
	return mapN(s.drv, len(points), func(i int) (SweepRow, error) {
		pt := points[i]
		cfg := pt.Config()
		sim, err := c.SimFor(pt.Pairing, cfg)
		if err != nil {
			return SweepRow{}, err
		}
		var r cache.Result
		if err := simTimer.Time(func() error {
			var rerr error
			r, rerr = sim.Run(tr)
			return rerr
		}); err != nil {
			return SweepRow{}, err
		}
		pred := string(cfg.Predictor)
		if pred == "" {
			pred = string(cache.PredictorBimodal)
		}
		row := SweepRow{
			Benchmark:      bench,
			Pairing:        pt.Pairing.Name,
			Sets:           cfg.Sets,
			Assoc:          cfg.Assoc,
			LineBytes:      cfg.LineBytes,
			Predictor:      pred,
			CapacityKB:     float64(cfg.Sets*cfg.Assoc*cfg.LineBytes) / 1024,
			IPC:            r.IPC(),
			MissRate:       r.MissRate(),
			MispredictRate: r.MispredictRate(),
			Result:         r,
		}
		if spec, ok := pt.Pairing.Org.Spec(); ok && spec.HasL0 {
			row.L0Ops = cfg.L0Ops
		}
		return row, nil
	})
}

// SweepTable renders sweep rows for terminals.
func SweepTable(rows []SweepRow) *stats.Table {
	t := &stats.Table{
		Title: "Geometry/predictor sweep (registry-driven)",
		Cols: []string{"benchmark", "pairing", "sets", "assoc", "line",
			"l0", "predictor", "KB", "IPC", "miss", "mispredict"},
	}
	for _, r := range rows {
		l0 := "-"
		if r.L0Ops > 0 {
			l0 = fmt.Sprint(r.L0Ops)
		}
		t.AddRow(r.Benchmark, r.Pairing, fmt.Sprint(r.Sets), fmt.Sprint(r.Assoc),
			fmt.Sprint(r.LineBytes), l0, r.Predictor,
			stats.F(r.CapacityKB, 1), stats.F(r.IPC, 3),
			stats.Pct(r.MissRate), stats.Pct(r.MispredictRate))
	}
	return t
}

// SweepJSON renders sweep rows as an indented JSON report.
func SweepJSON(rows []SweepRow) ([]byte, error) {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
