package core

import (
	"fmt"

	"repro/internal/compress"
)

// DecodePlan is the prebuilt batch-decode artifact for one (program,
// scheme) pair: the scheme's lane kernel (its memoized decode tables)
// plus the image's block geometry flattened into the parallel address
// and count arrays the kernel's batch face consumes. Building a plan is
// pure table-and-geometry work — constructing it once per scheme ×
// benchmark and caching it in the artifact store is what keeps table
// construction out of every decode request and out of every timed
// throughput region (see MeasureDecodeThroughput).
//
// A plan is immutable after build and safe for concurrent use: decoding
// through it touches only per-call state.
type DecodePlan struct {
	Scheme string
	Batch  compress.BatchDecoder
	Data   []byte // the image's code bytes the geometry indexes
	Addrs  []int  // byte address of each block's first codeword
	Counts []int  // source operations per block
	Syms   int    // total Huffman symbols across all blocks

	// TableEntries is the lookup-table footprint of the kernel schedule
	// in 4-byte entries — the size of the memoized sub-artifact this
	// plan shares through the store.
	TableEntries int
}

// Blocks returns the number of blocks the plan decodes.
func (p *DecodePlan) Blocks() int { return len(p.Addrs) }

// DecodeSymbols batch-decodes every block of data through the lane
// kernel, discarding symbols — the throughput shape. A nil data decodes
// the plan's own image. It returns symbols decoded and code bits
// consumed, with the reference decoder's exact terminal error on a
// malformed stream.
func (p *DecodePlan) DecodeSymbols(data []byte) (int64, int64, error) {
	if data == nil {
		data = p.Data
	}
	return p.Batch.DecodeRun(data, p.Addrs, p.Counts, nil)
}

// DecodeSymbolsInto is DecodeSymbols collecting the decoded symbols
// into out, blocks in placement order; out must hold at least Syms
// entries (huffman.ErrShortOutput otherwise).
func (p *DecodePlan) DecodeSymbolsInto(data []byte, out []uint64) (int64, int64, error) {
	if data == nil {
		data = p.Data
	}
	return p.Batch.DecodeRun(data, p.Addrs, p.Counts, out)
}

// decodeSpan batch-decodes the half-open block range [lo, hi).
func (p *DecodePlan) decodeSpan(lo, hi int) (int64, int64, error) {
	return p.Batch.DecodeRun(p.Data, p.Addrs[lo:hi], p.Counts[lo:hi], nil)
}

// buildDecodePlan assembles a plan from a built encoder and image.
func buildDecodePlan(scheme string, bd compress.BatchDecoder, data []byte, addrs, counts []int) *DecodePlan {
	p := &DecodePlan{
		Scheme:       scheme,
		Batch:        bd,
		Data:         data,
		Addrs:        addrs,
		Counts:       counts,
		TableEntries: bd.Kernel().TableEntries(),
	}
	for _, n := range counts {
		p.Syms += bd.BatchSymbols(n)
	}
	return p
}

// DecodePlan builds (and caches) the batch-decode plan for a scheme.
// Schemes without a Huffman batch face (base, tailored, dict) return
// (nil, nil) — there is nothing to plan. Safe for concurrent use; with
// an attached driver the plan is content-cached under decodePlanKey and
// timed under the "decplan.<scheme>" stage, so a service answering many
// decode requests for one image builds its tables and geometry exactly
// once.
func (c *Compiled) DecodePlan(scheme string) (*DecodePlan, error) {
	v, hit, err := c.arts.do("dec/"+scheme, func() (any, error) {
		build := func() (*DecodePlan, error) {
			enc, err := c.Encoder(scheme)
			if err != nil {
				return nil, err
			}
			bd, ok := enc.(compress.BatchDecoder)
			if !ok {
				return nil, nil
			}
			im, err := c.Image(scheme)
			if err != nil {
				return nil, err
			}
			addrs := make([]int, len(im.Blocks))
			counts := make([]int, len(im.Blocks))
			for i := range im.Blocks {
				addrs[i] = im.Blocks[i].Addr
				counts[i] = im.Blocks[i].Ops
			}
			return buildDecodePlan(scheme, bd, im.Data, addrs, counts), nil
		}
		if c.drv == nil {
			return build()
		}
		return memoAs(c.drv, c.decodePlanKey(scheme), func() (*DecodePlan, error) {
			var p *DecodePlan
			err := c.drv.obs.Timer("decplan." + scheme).Time(func() error {
				var berr error
				p, berr = build()
				return berr
			})
			return p, err
		})
	})
	c.countHit(hit)
	if err != nil {
		return nil, err
	}
	// The cached value may be a typed nil *DecodePlan (no batch face);
	// normalize it so callers compare against plain nil.
	if p, _ := v.(*DecodePlan); p != nil {
		return p, nil
	}
	return nil, nil
}

// DecodeSymbolsParallel batch-decodes the whole image with block spans
// fanned across the driver pool: the plan's block list is cut into
// contiguous spans (one per worker by default; spans <= 0), each span
// batch-decodes independently through the shared plan, and the totals
// sum in block order. Block-granular parallelism is sound for the same
// reason lanes are — every block is an independent byte-aligned stream
// — so the result is identical to DecodeSymbols, including which
// terminal error surfaces (the first failing block's, by block order).
// Without an attached driver it falls back to the sequential batch
// decode.
func (c *Compiled) DecodeSymbolsParallel(scheme string, spans int) (int64, int64, error) {
	p, err := c.DecodePlan(scheme)
	if err != nil {
		return 0, 0, err
	}
	if p == nil {
		return 0, 0, fmt.Errorf("core: scheme %s has no batch decode face", scheme)
	}
	if c.drv == nil {
		return p.DecodeSymbols(nil)
	}
	if spans <= 0 {
		spans = c.drv.Workers()
	}
	if spans > p.Blocks() {
		spans = p.Blocks()
	}
	if spans <= 1 {
		return p.DecodeSymbols(nil)
	}
	type spanTotals struct {
		syms, bits int64
		err        error
	}
	totals, err := mapN(c.drv, spans, func(i int) (spanTotals, error) {
		lo := p.Blocks() * i / spans
		hi := p.Blocks() * (i + 1) / spans
		syms, bits, derr := p.decodeSpan(lo, hi)
		// A span's decode error is data, not infrastructure: keep it in
		// the result so block-order error selection below stays exact
		// even when a later span fails first in wall-clock time.
		return spanTotals{syms: syms, bits: bits, err: derr}, nil
	})
	if err != nil {
		return 0, 0, err
	}
	syms, bits := int64(0), int64(0)
	for _, t := range totals {
		syms += t.syms
		bits += t.bits
		if t.err != nil {
			return syms, bits, t.err
		}
	}
	return syms, bits, nil
}
