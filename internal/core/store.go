package core

import (
	"sync"

	"repro/internal/stats"
)

// artifactStore is the driver's content-addressed artifact cache grown
// into service shape: sharded (one lock per shard, keys spread by FNV-1a
// so concurrent request handlers do not serialize on one mutex), bounded
// (an optional total entry capacity split across shards) and
// LRU-evicting (an insert over capacity drops the shard's least recently
// used completed entry). Each entry keeps the single-flight discipline
// of the original flat map: the first requester of a key builds while
// every later requester blocks on done and shares the result, so one
// build happens per resident key no matter how many requests race for
// it. Failed builds are cached like successes — the inputs are
// content-hashed, so retrying cannot succeed — until eviction recycles
// the slot.
//
// Traffic lands in the registry's counters: "artifact.hit" (request
// served by a resident or in-flight entry), "artifact.miss" (request
// that triggered a build) and "artifact.eviction" (completed entries
// dropped by the bound). hits + misses always equals the number of
// requests.
type artifactStore struct {
	obs    *stats.Registry
	shards []storeShard
}

// storeShard is one lock domain: a key-to-entry map plus an intrusive
// LRU list (head = most recently used).
type storeShard struct {
	mu       sync.Mutex
	capacity int // max entries in this shard; 0 = unbounded
	entries  map[string]*storeEntry
	head     *storeEntry
	tail     *storeEntry
}

// storeEntry is one single-flight artifact build with its LRU links.
type storeEntry struct {
	key        string
	done       chan struct{}
	val        any
	err        error
	building   bool
	prev, next *storeEntry
}

// defaultStoreShards is the shard count when the caller does not choose
// one: enough to keep a handful of concurrent request handlers off each
// other's locks without fragmenting tiny caches.
const defaultStoreShards = 8

// newArtifactStore builds a store with the given shard count (<= 0
// selects defaultStoreShards) and total entry capacity (<= 0 means
// unbounded — the pre-service driver behaviour). The capacity is split
// evenly across shards, each shard keeping at least one slot.
func newArtifactStore(shards, capacity int, obs *stats.Registry) *artifactStore {
	if shards <= 0 {
		shards = defaultStoreShards
	}
	perShard := 0
	if capacity > 0 {
		perShard = (capacity + shards - 1) / shards
		if perShard < 1 {
			perShard = 1
		}
	}
	st := &artifactStore{obs: obs, shards: make([]storeShard, shards)}
	for i := range st.shards {
		st.shards[i].capacity = perShard
		st.shards[i].entries = map[string]*storeEntry{}
	}
	return st
}

// shardFor picks the key's shard by FNV-1a.
func (st *artifactStore) shardFor(key string) *storeShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &st.shards[h%uint64(len(st.shards))]
}

// do returns the artifact stored under key, building it with build on
// first request. Concurrent requests for one key are deduplicated: one
// goroutine builds, the rest wait on the entry. When the insert pushes
// the shard over capacity, completed entries are evicted in LRU order
// (in-flight builds are never evicted — their waiters hold the entry);
// an evicted key rebuilds on its next request.
func (st *artifactStore) do(key string, build func() (any, error)) (any, error) {
	sh := st.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.moveToFront(e)
		sh.mu.Unlock()
		st.obs.Counter("artifact.hit").Add(1)
		<-e.done
		return e.val, e.err
	}
	e := &storeEntry{key: key, done: make(chan struct{}), building: true}
	sh.entries[key] = e
	sh.pushFront(e)
	evicted := sh.evictOver()
	sh.mu.Unlock()
	st.obs.Counter("artifact.miss").Add(1)
	if evicted > 0 {
		st.obs.Counter("artifact.eviction").Add(int64(evicted))
	}
	e.val, e.err = build()
	sh.mu.Lock()
	e.building = false
	sh.mu.Unlock()
	close(e.done)
	return e.val, e.err
}

// len returns the resident entry count across all shards.
func (st *artifactStore) len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// pushFront links a new entry at the MRU end. Caller holds sh.mu.
func (sh *storeShard) pushFront(e *storeEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlink removes an entry from the LRU list. Caller holds sh.mu.
func (sh *storeShard) unlink(e *storeEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront marks an entry most recently used. Caller holds sh.mu.
func (sh *storeShard) moveToFront(e *storeEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// evictOver drops completed entries from the LRU end until the shard is
// within capacity, returning how many were evicted. In-flight builds
// are skipped, so a burst of concurrent first requests may transiently
// hold the shard over capacity by the number of builds in flight —
// memory stays bounded by capacity + the driver's worker count. Caller
// holds sh.mu.
func (sh *storeShard) evictOver() int {
	if sh.capacity <= 0 {
		return 0
	}
	evicted := 0
	for e := sh.tail; e != nil && len(sh.entries) > sh.capacity; {
		victim := e
		e = e.prev
		if victim.building {
			continue
		}
		sh.unlink(victim)
		delete(sh.entries, victim.key)
		evicted++
	}
	return evicted
}
