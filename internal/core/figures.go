package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/declogic"
	"repro/internal/isa"
	"repro/internal/scheme"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options parameterizes an experiment suite run.
type Options struct {
	// Benchmarks to evaluate; nil selects the paper's eight.
	Benchmarks []string
	// TraceBlocks bounds dynamic trace length; <= 0 selects each
	// profile's default (400k blocks).
	TraceBlocks int
}

func (o Options) benchmarks() []string {
	if len(o.Benchmarks) == 0 {
		return workload.Benchmarks
	}
	return o.Benchmarks
}

// Suite compiles benchmarks once and serves every experiment. All state
// lives in the compilation driver — compilations, encoding artifacts and
// memoized experiment results are content-cached there under
// single-flight, so Suite methods are safe for concurrent use without
// any locking of their own. The per-benchmark studies fan out on the
// driver's bounded worker pool.
type Suite struct {
	opt Options
	drv *Driver
}

// NewSuite returns an empty suite on a fresh driver sized to GOMAXPROCS;
// programs compile lazily.
func NewSuite(opt Options) *Suite { return NewSuiteWithDriver(opt, NewDriver(0)) }

// NewSuiteWithDriver returns a suite running on an existing driver,
// sharing its worker pool and artifact cache (e.g. for warm re-runs or
// several concurrent suites).
func NewSuiteWithDriver(opt Options, d *Driver) *Suite {
	return &Suite{opt: opt, drv: d}
}

// Driver returns the suite's compilation driver.
func (s *Suite) Driver() *Driver { return s.drv }

// Compiled returns (compiling if needed) one benchmark.
func (s *Suite) Compiled(name string) (*Compiled, error) {
	return s.drv.CompileBenchmark(name)
}

// resultKey namespaces a memoized experiment result by the options that
// shape it.
func (s *Suite) resultKey(kind string) string {
	return fmt.Sprintf("result/%s/%s/blocks=%d",
		kind, strings.Join(s.opt.benchmarks(), ","), s.opt.TraceBlocks)
}

// forEachBenchmark runs fn for every benchmark on the driver's worker
// pool and collects the results in benchmark order. The first error wins.
func forEachBenchmark[T any](s *Suite, fn func(name string) (T, error)) ([]T, error) {
	names := s.opt.benchmarks()
	return mapN(s.drv, len(names), func(i int) (T, error) { return fn(names[i]) })
}

// ---------------------------------------------------------------------
// Figure 5: compression technique comparison, code segment only.

// Fig5Row is one benchmark's compression ratios (scheme bytes / base
// bytes, code segment only, no ATT).
type Fig5Row struct {
	Benchmark string
	BaseBytes int
	Ratio     map[string]float64
}

// Fig5Result is the Figure 5 reproduction.
type Fig5Result struct {
	Schemes []string
	Rows    []Fig5Row
}

// Figure5 measures the code-segment compression ratio of every scheme,
// fanning out across benchmarks on the driver's worker pool.
func (s *Suite) Figure5() (*Fig5Result, error) {
	rows, err := forEachBenchmark(s, func(name string) (Fig5Row, error) {
		c, err := s.Compiled(name)
		if err != nil {
			return Fig5Row{}, err
		}
		base, err := c.Image("base")
		if err != nil {
			return Fig5Row{}, err
		}
		row := Fig5Row{Benchmark: name, BaseBytes: base.CodeBytes, Ratio: map[string]float64{}}
		for _, scheme := range Figure5Schemes {
			im, err := c.Image(scheme)
			if err != nil {
				return Fig5Row{}, err
			}
			row.Ratio[scheme] = im.Ratio(base)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Schemes: Figure5Schemes, Rows: rows}, nil
}

// Average returns the mean ratio of one scheme across benchmarks.
func (r *Fig5Result) Average(scheme string) float64 {
	var xs []float64
	for _, row := range r.Rows {
		xs = append(xs, row.Ratio[scheme])
	}
	return stats.Mean(xs)
}

// Table renders the figure.
func (r *Fig5Result) Table() *stats.Table {
	t := &stats.Table{
		Title: "Figure 5: compression techniques comparison (code segment only, fraction of original size)",
		Cols:  append([]string{"benchmark", "base bytes"}, r.Schemes...),
	}
	for _, row := range r.Rows {
		cells := []string{row.Benchmark, fmt.Sprint(row.BaseBytes)}
		for _, sch := range r.Schemes {
			cells = append(cells, stats.Pct(row.Ratio[sch]))
		}
		t.AddRow(cells...)
	}
	avg := []string{"average", ""}
	for _, sch := range r.Schemes {
		avg = append(avg, stats.Pct(r.Average(sch)))
	}
	t.AddRow(avg...)
	return t
}

// ---------------------------------------------------------------------
// Figure 7: ATB characteristics / total code size (code + compressed ATT).

// Fig7Row is one benchmark's total-size accounting for one scheme.
type Fig7Row struct {
	Benchmark   string
	Scheme      string
	CodeBytes   int
	ATTBytes    int
	TotalRatio  float64 // (code+ATT) / base code
	ATTOverhead float64 // ATT / base code — the paper's ~15.5% figure
}

// Fig7Result is the Figure 7 reproduction.
type Fig7Result struct {
	Rows []Fig7Row
}

// Figure7 measures total ROM size including the compressed ATT for the
// two headline schemes (full and tailored), fanning out across
// benchmarks on the driver's worker pool.
func (s *Suite) Figure7() (*Fig7Result, error) {
	perBench, err := forEachBenchmark(s, func(name string) ([]Fig7Row, error) {
		c, err := s.Compiled(name)
		if err != nil {
			return nil, err
		}
		base, err := c.Image("base")
		if err != nil {
			return nil, err
		}
		var rows []Fig7Row
		for _, scheme := range []string{"full", "tailored"} {
			im, err := c.Image(scheme)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig7Row{
				Benchmark:   name,
				Scheme:      scheme,
				CodeBytes:   im.CodeBytes,
				ATTBytes:    im.ATT.CompressedBytes,
				TotalRatio:  float64(im.TotalBytes()) / float64(base.CodeBytes),
				ATTOverhead: float64(im.ATT.CompressedBytes) / float64(base.CodeBytes),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{}
	for _, rows := range perBench {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// MeanATTOverhead returns the average ATT overhead across rows.
func (r *Fig7Result) MeanATTOverhead() float64 {
	var xs []float64
	for _, row := range r.Rows {
		xs = append(xs, row.ATTOverhead)
	}
	return stats.Mean(xs)
}

// Table renders the figure.
func (r *Fig7Result) Table() *stats.Table {
	t := &stats.Table{
		Title: "Figure 7: total code size with Address Translation Table (fractions of original code size)",
		Cols:  []string{"benchmark", "scheme", "code B", "ATT B", "code+ATT/base", "ATT/base"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.Scheme,
			fmt.Sprint(row.CodeBytes), fmt.Sprint(row.ATTBytes),
			stats.Pct(row.TotalRatio), stats.Pct(row.ATTOverhead))
	}
	t.AddRow("average", "", "", "", "", stats.Pct(r.MeanATTOverhead()))
	return t
}

// ---------------------------------------------------------------------
// Figure 10: Huffman decoder complexity.

// Fig10Row is one benchmark's decoder complexities.
type Fig10Row struct {
	Benchmark  string
	Complexity map[string]declogic.Complexity
	Tailored   declogic.Complexity
}

// Fig10Result is the Figure 10 reproduction.
type Fig10Result struct {
	Schemes []string // Huffman schemes, report order
	Rows    []Fig10Row
}

// Figure10 evaluates the transistor-count model for every Huffman
// decoder, plus the tailored PLA estimate for contrast, fanning out
// across benchmarks on the driver's worker pool.
func (s *Suite) Figure10() (*Fig10Result, error) {
	schemes := []string{"byte", "stream", "stream_1", "full"}
	rows, err := forEachBenchmark(s, func(name string) (Fig10Row, error) {
		c, err := s.Compiled(name)
		if err != nil {
			return Fig10Row{}, err
		}
		row := Fig10Row{Benchmark: name, Complexity: map[string]declogic.Complexity{}}
		for _, scheme := range schemes {
			enc, err := c.Encoder(scheme)
			if err != nil {
				return Fig10Row{}, err
			}
			row.Complexity[scheme] = declogic.ForTables(scheme, enc.Tables())
		}
		tl, err := c.Tailored()
		if err != nil {
			return Fig10Row{}, err
		}
		row.Tailored = declogic.Complexity{
			Scheme:      "tailored",
			Transistors: declogic.TailoredTransistors(tl.DictionaryEntries(), isa.OpBits),
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Schemes: schemes, Rows: rows}, nil
}

// Table renders the figure (log10 transistors, as in the paper's plot).
func (r *Fig10Result) Table() *stats.Table {
	t := &stats.Table{
		Title: "Figure 10: decoder complexity, log10(transistors) by the T-equation (n=longest code, k=entries)",
		Cols:  []string{"benchmark", "byte", "stream", "stream_1", "full", "tailored-PLA", "full n/k"},
	}
	for _, row := range r.Rows {
		full := row.Complexity["full"]
		t.AddRow(row.Benchmark,
			stats.F(row.Complexity["byte"].Log10Transistors(), 2),
			stats.F(row.Complexity["stream"].Log10Transistors(), 2),
			stats.F(row.Complexity["stream_1"].Log10Transistors(), 2),
			stats.F(full.Log10Transistors(), 2),
			stats.F(row.Tailored.Log10Transistors(), 2),
			fmt.Sprintf("%d/%d", full.N, full.K))
	}
	return t
}

// ---------------------------------------------------------------------
// Figure 13: cache study summary — operations delivered per cycle.

// Fig13Row is one benchmark's delivered IPC under each organization.
type Fig13Row struct {
	Benchmark string
	Ideal     float64
	Results   map[string]cache.Result // keyed by org label
}

// IPC returns the delivered IPC for one organization label.
func (r Fig13Row) IPC(org string) float64 { return r.Results[org].IPC() }

// Fig13Result is the Figure 13 reproduction.
type Fig13Result struct {
	Rows []Fig13Row
}

// Figure13 runs the full trace-driven cache study over the registry's
// study pairings (Base holds the original encoding, Compressed the full
// op compression scheme, Tailored the tailored ISA): 16 KB 2-way caches
// (20 KB effective for Base), Table 1 timing, per-block ATB predictor.
// Benchmarks simulate concurrently on the driver's pool; the result is
// memoized in the driver under single-flight (Figure 14 reads the same
// runs, concurrent callers share one study).
func (s *Suite) Figure13() (*Fig13Result, error) {
	return memoAs(s.drv, s.resultKey("fig13"), func() (*Fig13Result, error) {
		simTimer := s.drv.Stats().Timer("sim")
		rows, err := forEachBenchmark(s, func(name string) (Fig13Row, error) {
			c, err := s.Compiled(name)
			if err != nil {
				return Fig13Row{}, err
			}
			tr, err := c.Trace(s.opt.TraceBlocks)
			if err != nil {
				return Fig13Row{}, err
			}
			row := Fig13Row{
				Benchmark: name,
				Ideal:     cache.RunIdeal(tr).IPC(),
				Results:   map[string]cache.Result{},
			}
			for _, p := range scheme.StudyPairings() {
				sim, err := c.SimFor(p, cache.DefaultConfig(p.Org))
				if err != nil {
					return Fig13Row{}, err
				}
				if err := simTimer.Time(func() error {
					res, rerr := sim.Run(tr)
					if rerr != nil {
						return rerr
					}
					row.Results[p.Name] = res
					return nil
				}); err != nil {
					return Fig13Row{}, err
				}
			}
			return row, nil
		})
		if err != nil {
			return nil, err
		}
		return &Fig13Result{Rows: rows}, nil
	})
}

// Averages returns mean IPC per column (Ideal, Base, Compressed,
// Tailored).
func (r *Fig13Result) Averages() map[string]float64 {
	cols := map[string][]float64{}
	for _, row := range r.Rows {
		cols["Ideal"] = append(cols["Ideal"], row.Ideal)
		for org, res := range row.Results {
			cols[org] = append(cols[org], res.IPC())
		}
	}
	out := map[string]float64{}
	for k, xs := range cols {
		out[k] = stats.Mean(xs)
	}
	return out
}

// Table renders the figure.
func (r *Fig13Result) Table() *stats.Table {
	t := &stats.Table{
		Title: "Figure 13: cache study summary — operations delivered per cycle (6-issue core)",
		Cols: []string{"benchmark", "Ideal", "Base", "Compressed", "Tailored",
			"base miss", "mispred"},
	}
	for _, row := range r.Rows {
		base := row.Results["Base"]
		t.AddRow(row.Benchmark,
			stats.F(row.Ideal, 3),
			stats.F(row.IPC("Base"), 3),
			stats.F(row.IPC("Compressed"), 3),
			stats.F(row.IPC("Tailored"), 3),
			stats.Pct(base.MissRate()),
			stats.Pct(base.MispredictRate()))
	}
	avg := r.Averages()
	t.AddRow("average",
		stats.F(avg["Ideal"], 3), stats.F(avg["Base"], 3),
		stats.F(avg["Compressed"], 3), stats.F(avg["Tailored"], 3), "", "")
	return t
}

// ---------------------------------------------------------------------
// Figure 14: memory bus bit flips.

// Fig14Row is one benchmark's bus activity per organization.
type Fig14Row struct {
	Benchmark string
	Flips     map[string]int64   // org label -> bit flips
	Relative  map[string]float64 // org label -> flips / base flips
}

// Fig14Result is the Figure 14 reproduction.
type Fig14Result struct {
	Rows []Fig14Row
}

// Figure14 measures memory-bus bit flips due to instruction cache misses
// under each organization (same simulations as Figure 13).
func (s *Suite) Figure14() (*Fig14Result, error) {
	f13, err := s.Figure13()
	if err != nil {
		return nil, err
	}
	res := &Fig14Result{}
	for _, row := range f13.Rows {
		r14 := Fig14Row{
			Benchmark: row.Benchmark,
			Flips:     map[string]int64{},
			Relative:  map[string]float64{},
		}
		base := row.Results["Base"].BitFlips
		for org, cr := range row.Results {
			r14.Flips[org] = cr.BitFlips
			if base > 0 {
				r14.Relative[org] = float64(cr.BitFlips) / float64(base)
			}
		}
		res.Rows = append(res.Rows, r14)
	}
	return res, nil
}

// Table renders the figure.
func (r *Fig14Result) Table() *stats.Table {
	t := &stats.Table{
		Title: "Figure 14: memory bus bit flips (instruction misses; relative to Base)",
		Cols:  []string{"benchmark", "Base flips", "Compressed", "Tailored", "Comp/Base", "Tail/Base"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark,
			fmt.Sprint(row.Flips["Base"]),
			fmt.Sprint(row.Flips["Compressed"]),
			fmt.Sprint(row.Flips["Tailored"]),
			stats.Pct(row.Relative["Compressed"]),
			stats.Pct(row.Relative["Tailored"]))
	}
	return t
}

// ---------------------------------------------------------------------
// Stream-configuration exploration (the six configurations of §2.2).

// StreamSweepRow reports one configuration's aggregate ratio and decoder
// size across benchmarks.
type StreamSweepRow struct {
	Config    string
	MeanRatio float64
	Log10T    float64 // decoder complexity, averaged log10
}

// StreamSweep evaluates all six stream configurations — the exploration
// behind the paper's choice of "stream" (smallest decoder) and "stream_1"
// (best size) — fanning out across benchmarks on the driver's pool.
func (s *Suite) StreamSweep() ([]StreamSweepRow, error) {
	type benchPoint struct {
		ratio  map[string]float64
		log10T map[string]float64
	}
	points, err := forEachBenchmark(s, func(name string) (benchPoint, error) {
		c, err := s.Compiled(name)
		if err != nil {
			return benchPoint{}, err
		}
		base, err := c.Image("base")
		if err != nil {
			return benchPoint{}, err
		}
		pt := benchPoint{ratio: map[string]float64{}, log10T: map[string]float64{}}
		for _, cfgName := range scheme.GroupNames(scheme.GroupStream) {
			im, err := c.Image(cfgName)
			if err != nil {
				return benchPoint{}, err
			}
			enc, err := c.Encoder(cfgName)
			if err != nil {
				return benchPoint{}, err
			}
			pt.ratio[cfgName] = im.Ratio(base)
			pt.log10T[cfgName] = declogic.ForTables(cfgName, enc.Tables()).Log10Transistors()
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	agg := map[string][]float64{}
	aggT := map[string][]float64{}
	var names []string
	for _, pt := range points {
		for cfgName, r := range pt.ratio {
			if _, seen := agg[cfgName]; !seen {
				names = append(names, cfgName)
			}
			agg[cfgName] = append(agg[cfgName], r)
			aggT[cfgName] = append(aggT[cfgName], pt.log10T[cfgName])
		}
	}
	sort.Strings(names)
	var rows []StreamSweepRow
	for _, n := range names {
		rows = append(rows, StreamSweepRow{
			Config:    n,
			MeanRatio: stats.Mean(agg[n]),
			Log10T:    stats.Mean(aggT[n]),
		})
	}
	return rows, nil
}
