package core

import (
	"fmt"
	"time"

	"repro/internal/bitio"
	"repro/internal/compress"
	"repro/internal/stats"
)

// DecodeThroughput is one scheme's measured entropy-decode rate over a
// compiled image, at three tiers decoding identical Huffman symbol
// streams (every block of the image, in placement order):
//
//   - Reference: the bit-by-bit canonical decoder — the correctness
//     oracle and the denominator of every speedup.
//   - Fast: the table-driven per-symbol decoder through a Reader — the
//     pre-kernel baseline.
//   - Batch: the lane-parallel kernel through the prebuilt DecodePlan —
//     blocks decoded MaxLanes at a time with interleaved cursors.
//
// Ops counts Huffman symbols — whole operations for the full scheme,
// packed bytes for the byte scheme, one symbol per stream segment per
// op for the stream schemes. Speedup and BatchSpeedup are fast/ref and
// batch/ref by decoded bits per second; LaneGain is batch/fast — the
// kernel's gain over the already-table-driven baseline.
type DecodeThroughput struct {
	Scheme       string                   `json:"-"`
	Fast         stats.ThroughputSnapshot `json:"fast"`
	Reference    stats.ThroughputSnapshot `json:"reference"`
	Batch        stats.ThroughputSnapshot `json:"batch"`
	Speedup      float64                  `json:"speedup"`
	BatchSpeedup float64                  `json:"batch_speedup"`
	LaneGain     float64                  `json:"lane_gain"`
}

// MeasureDecodeThroughput times the scheme's Huffman symbol-stream
// decode over the whole image, repeats times per decoder, and returns
// the three rates plus their ratios. Schemes without a Huffman symbol
// stream (base, tailored, dict) return (nil, nil): there is no decoder
// to compare.
//
// Measurement contract: the timed region of every tier charges only
// per-symbol decode work. Decode tables, the lane kernel, and the batch
// plan's flattened block geometry are all built (or fetched from the
// artifact cache) before any timer starts — the code-size cost of the
// tables is charged by the decoder-complexity model, not smuggled into
// the throughput denominator. Every pass re-decodes the same image; the
// per-pass symbol and bit counts of all three tiers are asserted equal,
// so the rates divide work that is provably identical.
//
// When the compilation is attached to a driver, the rates are also
// accumulated in its registry under "decode.fast.<scheme>",
// "decode.reference.<scheme>" and "decode.batch.<scheme>", so the
// benchmark report aggregates across benchmarks.
func (c *Compiled) MeasureDecodeThroughput(scheme string, repeats int) (*DecodeThroughput, error) {
	if repeats < 1 {
		repeats = 1
	}
	enc, err := c.Encoder(scheme)
	if err != nil {
		return nil, err
	}
	sd, ok := enc.(compress.SymbolDecoder)
	if !ok {
		return nil, nil
	}
	im, err := c.Image(scheme)
	if err != nil {
		return nil, err
	}
	// Hoisted out of the timed region: the plan carries the prebuilt
	// lane kernel and the image geometry (see the measurement contract
	// above).
	plan, err := c.DecodePlan(scheme)
	if err != nil {
		return nil, err
	}
	if plan == nil {
		return nil, fmt.Errorf("core: %s exposes a symbol decoder but no batch face", scheme)
	}

	// One pass decodes every block of the image; rounds of passes repeat
	// until both the requested count and a minimum wall-clock interval
	// are met, so small images still produce stable rates. The three
	// tiers are interleaved within each round (fast, reference, batch)
	// rather than measured in one contiguous window per tier: slow drift
	// in effective machine speed — frequency scaling, a noisy neighbour —
	// then lands evenly on every tier and cancels out of the ratios the
	// CI gates check.
	const minMeasure = 20 * time.Millisecond
	pass := func(decode func(r *bitio.Reader, n int) (int, error)) (syms, bits int64, err error) {
		r := bitio.NewReader(im.Data)
		for i := range im.Blocks {
			if err = r.SeekBit(im.Blocks[i].Addr * 8); err != nil {
				return 0, 0, err
			}
			before := r.Offset()
			nsym, derr := decode(r, im.Blocks[i].Ops)
			if derr != nil {
				return 0, 0, fmt.Errorf("core: %s decode block %d: %w", scheme, i, derr)
			}
			syms += int64(nsym)
			bits += int64(r.Offset() - before)
		}
		return syms, bits, nil
	}
	tiers := [3]struct {
		pass               func() (int64, int64, error)
		passSyms, passBits int64
		elapsed            time.Duration
	}{
		{pass: func() (int64, int64, error) { return pass(sd.DecodeBlockSymbols) }},
		{pass: func() (int64, int64, error) { return pass(sd.ReferenceDecodeBlockSymbols) }},
		{pass: func() (int64, int64, error) {
			syms, bits, err := plan.DecodeSymbols(nil)
			if err != nil {
				return 0, 0, fmt.Errorf("core: %s batch decode: %w", scheme, err)
			}
			return syms, bits, nil
		}},
	}
	rounds := int64(0)
	start := time.Now()
	for rounds < int64(repeats) || time.Since(start) < 3*minMeasure {
		for i := range tiers {
			t0 := time.Now()
			syms, bits, err := tiers[i].pass()
			tiers[i].elapsed += time.Since(t0)
			if err != nil {
				return nil, err
			}
			tiers[i].passSyms, tiers[i].passBits = syms, bits
		}
		rounds++
	}
	fps, fpb := tiers[0].passSyms, tiers[0].passBits
	rps, rpb := tiers[1].passSyms, tiers[1].passBits
	bps, bpb := tiers[2].passSyms, tiers[2].passBits
	if fps != rps || fpb != rpb {
		return nil, fmt.Errorf("core: %s decode divergence: fast %d syms / %d bits per pass, reference %d / %d",
			scheme, fps, fpb, rps, rpb)
	}
	if bps != fps || bpb != fpb {
		return nil, fmt.Errorf("core: %s decode divergence: batch %d syms / %d bits per pass, fast %d / %d",
			scheme, bps, bpb, fps, fpb)
	}
	// Per-pass counts are identical across passes; scale to the work
	// actually done in each tier's accumulated window.
	fsyms, fbits, fdur := fps*rounds, fpb*rounds, tiers[0].elapsed
	rsyms, rbits, rdur := rps*rounds, rpb*rounds, tiers[1].elapsed
	bsyms, bbits, bdur := bps*rounds, bpb*rounds, tiers[2].elapsed

	var fast, ref, batch stats.Throughput
	fast.Observe(fsyms, fbits, fdur)
	ref.Observe(rsyms, rbits, rdur)
	batch.Observe(bsyms, bbits, bdur)
	if c.drv != nil {
		c.drv.obs.Throughput("decode.fast."+scheme).Observe(fsyms, fbits, fdur)
		c.drv.obs.Throughput("decode.reference."+scheme).Observe(rsyms, rbits, rdur)
		c.drv.obs.Throughput("decode.batch."+scheme).Observe(bsyms, bbits, bdur)
	}
	dt := &DecodeThroughput{
		Scheme:    scheme,
		Fast:      fast.Snapshot(),
		Reference: ref.Snapshot(),
		Batch:     batch.Snapshot(),
	}
	if dt.Reference.BitsPerSec > 0 {
		dt.Speedup = dt.Fast.BitsPerSec / dt.Reference.BitsPerSec
		dt.BatchSpeedup = dt.Batch.BitsPerSec / dt.Reference.BitsPerSec
	}
	if dt.Fast.BitsPerSec > 0 {
		dt.LaneGain = dt.Batch.BitsPerSec / dt.Fast.BitsPerSec
	}
	return dt, nil
}
