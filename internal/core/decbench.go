package core

import (
	"fmt"
	"time"

	"repro/internal/bitio"
	"repro/internal/compress"
	"repro/internal/stats"
)

// DecodeThroughput is one scheme's measured entropy-decode rate over a
// compiled image: the table-driven fast decoder against the bit-by-bit
// reference oracle, decoding identical Huffman symbol streams (every
// block of the image, in placement order). Ops counts Huffman symbols —
// whole operations for the full scheme, packed bytes for the byte
// scheme, one symbol per stream segment per op for the stream schemes.
type DecodeThroughput struct {
	Scheme    string                   `json:"-"`
	Fast      stats.ThroughputSnapshot `json:"fast"`
	Reference stats.ThroughputSnapshot `json:"reference"`
	Speedup   float64                  `json:"speedup"`
}

// MeasureDecodeThroughput times the scheme's Huffman symbol-stream
// decode over the whole image, repeats times per decoder, and returns
// the two rates plus their ratio. Schemes without a Huffman symbol
// stream (base, tailored, dict) return (nil, nil): there is no decoder
// pair to compare. When the compilation is attached to a driver, the
// rates are also accumulated in its registry under
// "decode.fast.<scheme>" and "decode.reference.<scheme>", so the
// benchmark report aggregates across benchmarks.
func (c *Compiled) MeasureDecodeThroughput(scheme string, repeats int) (*DecodeThroughput, error) {
	if repeats < 1 {
		repeats = 1
	}
	enc, err := c.Encoder(scheme)
	if err != nil {
		return nil, err
	}
	sd, ok := enc.(compress.SymbolDecoder)
	if !ok {
		return nil, nil
	}
	im, err := c.Image(scheme)
	if err != nil {
		return nil, err
	}

	// One pass decodes every block of the image; passes repeat until
	// both the requested count and a minimum wall-clock interval are
	// met, so small images still produce stable rates.
	const minMeasure = 20 * time.Millisecond
	pass := func(decode func(r *bitio.Reader, n int) (int, error)) (syms, bits int64, err error) {
		r := bitio.NewReader(im.Data)
		for i := range im.Blocks {
			if err = r.SeekBit(im.Blocks[i].Addr * 8); err != nil {
				return 0, 0, err
			}
			before := r.Offset()
			nsym, derr := decode(r, im.Blocks[i].Ops)
			if derr != nil {
				return 0, 0, fmt.Errorf("core: %s decode block %d: %w", scheme, i, derr)
			}
			syms += int64(nsym)
			bits += int64(r.Offset() - before)
		}
		return syms, bits, nil
	}
	run := func(decode func(r *bitio.Reader, n int) (int, error)) (passSyms, passBits, syms, bits int64, elapsed time.Duration, err error) {
		passes := int64(0)
		start := time.Now()
		for passes < int64(repeats) || time.Since(start) < minMeasure {
			if passSyms, passBits, err = pass(decode); err != nil {
				return 0, 0, 0, 0, 0, err
			}
			passes++
		}
		// Per-pass counts are identical across passes; scale to the work
		// actually done in elapsed.
		return passSyms, passBits, passSyms * passes, passBits * passes, time.Since(start), nil
	}

	fps, fpb, fsyms, fbits, fdur, err := run(sd.DecodeBlockSymbols)
	if err != nil {
		return nil, err
	}
	rps, rpb, rsyms, rbits, rdur, err := run(sd.ReferenceDecodeBlockSymbols)
	if err != nil {
		return nil, err
	}
	if fps != rps || fpb != rpb {
		return nil, fmt.Errorf("core: %s decode divergence: fast %d syms / %d bits per pass, reference %d / %d",
			scheme, fps, fpb, rps, rpb)
	}

	var fast, ref stats.Throughput
	fast.Observe(fsyms, fbits, fdur)
	ref.Observe(rsyms, rbits, rdur)
	if c.drv != nil {
		c.drv.obs.Throughput("decode.fast."+scheme).Observe(fsyms, fbits, fdur)
		c.drv.obs.Throughput("decode.reference."+scheme).Observe(rsyms, rbits, rdur)
	}
	dt := &DecodeThroughput{Scheme: scheme, Fast: fast.Snapshot(), Reference: ref.Snapshot()}
	if dt.Reference.BitsPerSec > 0 {
		dt.Speedup = dt.Fast.BitsPerSec / dt.Reference.BitsPerSec
	}
	return dt, nil
}
