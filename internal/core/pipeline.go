// Package core is the paper's toolchain as an orchestration API: it wires
// the compiler substrate (workload generation, register allocation, VLIW
// scheduling), the encoding schemes (baseline, the three Huffman alphabet
// compositions, the tailored ISA), the image/ATT builder, the trace
// generators, and the IFetch simulators into single calls — and defines
// one experiment function per figure/table of the paper's evaluation
// (figures.go).
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/compress"
	"repro/internal/emu"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/scheme"
	"repro/internal/tailor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SchemeNames lists every registered encoding scheme in report order:
// the baseline, byte-based Huffman, the six stream configurations,
// whole-op Huffman, and the tailored ISA (plus any schemes registered
// beyond the built-ins).
func SchemeNames() []string { return scheme.Names() }

// Figure5Schemes are the schemes the paper's Figure 5 plots: byte-wise,
// the two reported stream configurations, whole-op Huffman and tailored.
var Figure5Schemes = []string{"byte", "stream", "stream_1", "full", "tailored"}

// Compiled is a program pushed through the compiler substrate. Artifact
// builders (Encoder, Image, Trace) are safe for concurrent use: each
// artifact builds exactly once under single-flight. When the compilation
// is attached to a Driver, builds additionally route through the
// driver's content-addressed cache, so identical artifacts are shared
// across compilations and stage latencies are recorded.
type Compiled struct {
	Name    string
	IR      *ir.Program
	Prog    *sched.Program
	Alloc   regalloc.Result
	Profile *workload.Profile // nil for hand-written programs

	drv  *Driver // nil for standalone compilations
	arts onceMap // per-artifact single-flight; values are encoders/images/traces

	keyOnce sync.Once
	key     string // content hash of Prog (see programHash)

	// Registry of successfully built artifacts, for Verify.
	regMu    sync.Mutex
	encBuilt map[string]compress.Encoder
	imgBuilt map[string]*image.Image
}

// onceMap is a keyed single-flight: do runs each key's build function
// exactly once, concurrent callers share the result. Build functions may
// call do for other keys (the artifact graph is acyclic); no lock is
// held while they run.
type onceMap struct {
	mu sync.Mutex
	m  map[string]*onceCall
}

type onceCall struct {
	done chan struct{}
	val  any
	err  error
}

// do returns the value under key, running build on first request. The
// second result reports whether the request was served from the map (a
// hit) rather than by running build.
func (o *onceMap) do(key string, build func() (any, error)) (any, bool, error) {
	o.mu.Lock()
	if o.m == nil {
		o.m = map[string]*onceCall{}
	}
	c, ok := o.m[key]
	if !ok {
		c = &onceCall{done: make(chan struct{})}
		o.m[key] = c
	}
	o.mu.Unlock()
	if ok {
		<-c.done
		return c.val, true, c.err
	}
	c.val, c.err = build()
	close(c.done)
	return c.val, false, c.err
}

// countHit records a locally served artifact request in the driver's
// cache counters, so hit-rate accounting sees requests resolved by the
// compilation's own single-flight layer as well as the driver's.
func (c *Compiled) countHit(hit bool) {
	if c.drv != nil && hit {
		c.drv.obs.Counter("artifact.hit").Add(1)
	}
}

// contentKey returns (computing once) the program's content hash.
func (c *Compiled) contentKey() string {
	c.keyOnce.Do(func() { c.key = programHash(c.Prog) })
	return c.key
}

// ContentKey exposes the program's content hash — the prefix of every
// artifact-cache key derived from this compilation (see key.go). The
// service layer returns it to clients so identical programs are
// recognizably identical across requests.
func (c *Compiled) ContentKey() string { return c.contentKey() }

// CompileBenchmark generates and compiles one of the eight SPECint95
// benchmark stand-ins.
func CompileBenchmark(name string) (*Compiled, error) {
	prof, ok := workload.ProfileFor(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown benchmark %q", name)
	}
	return CompileProfile(prof)
}

// CompileProfile generates and compiles a program from a profile.
func CompileProfile(prof workload.Profile) (*Compiled, error) {
	p, err := workload.Generate(prof)
	if err != nil {
		return nil, err
	}
	c, err := CompileIR(p)
	if err != nil {
		return nil, err
	}
	c.Profile = &prof
	return c, nil
}

// CompileBenchmarkSpeculative compiles a benchmark with the
// treegion-style speculative hoisting pass (sched.Speculate) between
// register allocation and scheduling, returning the hoisted-op count
// alongside the compilation.
func CompileBenchmarkSpeculative(name string) (*Compiled, int, error) {
	prof, ok := workload.ProfileFor(name)
	if !ok {
		return nil, 0, fmt.Errorf("core: unknown benchmark %q", name)
	}
	p, err := workload.Generate(prof)
	if err != nil {
		return nil, 0, err
	}
	alloc, err := regalloc.Allocate(p)
	if err != nil {
		return nil, 0, err
	}
	hoisted, err := sched.Speculate(p)
	if err != nil {
		return nil, 0, err
	}
	sp, err := sched.Schedule(p)
	if err != nil {
		return nil, 0, err
	}
	c := newCompiled(p, sp, alloc)
	c.Profile = &prof
	return c, hoisted, nil
}

// CompileIR register-allocates and schedules an IR program (as produced
// by the workload generator or the asm builder with virtual registers;
// hand-written programs with architectural registers should use
// ScheduleOnly).
func CompileIR(p *ir.Program) (*Compiled, error) {
	alloc, err := regalloc.Allocate(p)
	if err != nil {
		return nil, err
	}
	sp, err := sched.Schedule(p)
	if err != nil {
		return nil, err
	}
	return newCompiled(p, sp, alloc), nil
}

// ScheduleOnly schedules an already register-allocated (e.g. hand-written)
// program without running the allocator.
func ScheduleOnly(p *ir.Program) (*Compiled, error) {
	sp, err := sched.Schedule(p)
	if err != nil {
		return nil, err
	}
	return newCompiled(p, sp, regalloc.Result{}), nil
}

func newCompiled(p *ir.Program, sp *sched.Program, alloc regalloc.Result) *Compiled {
	return &Compiled{
		Name:  p.Name,
		IR:    p,
		Prog:  sp,
		Alloc: alloc,
	}
}

// buildEncoder constructs the encoder for a registered scheme name from
// scratch.
func buildEncoder(p *sched.Program, name string) (compress.Encoder, error) {
	sc, ok := scheme.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown scheme %q", name)
	}
	e, err := sc.Build(p)
	if err != nil {
		return nil, fmt.Errorf("core: scheme %s: %w", name, err)
	}
	return e, nil
}

// Encoder builds (and caches) the encoder for a scheme name. Safe for
// concurrent use; with an attached driver, the build is content-cached
// and timed under the "encode.<scheme>" stage.
func (c *Compiled) Encoder(name string) (compress.Encoder, error) {
	v, hit, err := c.arts.do("enc/"+name, func() (any, error) {
		if c.drv == nil {
			return buildEncoder(c.Prog, name)
		}
		return memoAs(c.drv, c.encoderKey(name), func() (compress.Encoder, error) {
			var e compress.Encoder
			err := c.drv.obs.Timer("encode." + name).Time(func() error {
				var berr error
				e, berr = buildEncoder(c.Prog, name)
				return berr
			})
			return e, err
		})
	})
	c.countHit(hit)
	if err != nil {
		return nil, err
	}
	e := v.(compress.Encoder)
	c.regMu.Lock()
	if c.encBuilt == nil {
		c.encBuilt = map[string]compress.Encoder{}
	}
	c.encBuilt[name] = e
	c.regMu.Unlock()
	return e, nil
}

// buildImage lays out the program under a prebuilt encoder, attaching
// the ATT against the prebuilt base image for non-base schemes.
func buildImage(p *sched.Program, enc compress.Encoder, base *image.Image) (*image.Image, error) {
	im, err := image.Build(p, enc)
	if err != nil {
		return nil, err
	}
	if base != nil {
		att, err := image.BuildATT(base, im)
		if err != nil {
			return nil, err
		}
		im.ATT = att
	}
	return im, nil
}

// Image builds (and caches) the program image under a scheme, with its
// ATT attached for every non-self-indexed scheme. Safe for concurrent
// use; with an attached driver, the build is content-cached, timed under
// the "image.<scheme>" stage, and accounted in the
// bytes.base/bytes.encoded throughput counters.
func (c *Compiled) Image(name string) (*image.Image, error) {
	v, hit, err := c.arts.do("img/"+name, func() (any, error) {
		sc, ok := scheme.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("core: unknown scheme %q", name)
		}
		enc, err := c.Encoder(name)
		if err != nil {
			return nil, err
		}
		var base *image.Image
		if !sc.SelfIndexed {
			if base, err = c.Image(scheme.BaseName); err != nil {
				return nil, err
			}
		}
		if c.drv == nil {
			return buildImage(c.Prog, enc, base)
		}
		return memoAs(c.drv, c.imageKey(name), func() (*image.Image, error) {
			var im *image.Image
			err := c.drv.obs.Timer("image." + name).Time(func() error {
				var berr error
				im, berr = buildImage(c.Prog, enc, base)
				return berr
			})
			if err == nil {
				c.drv.obs.Counter("bytes.base").Add(int64(c.Prog.TotalOps() * isa.OpBits / 8))
				c.drv.obs.Counter("bytes.encoded").Add(int64(im.CodeBytes))
			}
			return im, err
		})
	})
	c.countHit(hit)
	if err != nil {
		return nil, err
	}
	im := v.(*image.Image)
	c.regMu.Lock()
	if c.imgBuilt == nil {
		c.imgBuilt = map[string]*image.Image{}
	}
	c.imgBuilt[name] = im
	c.regMu.Unlock()
	return im, nil
}

// Dictionary builds the beyond-Huffman dictionary scheme (§7 future work)
// at the given index width, along with its program image.
func (c *Compiled) Dictionary(indexBits int) (*compress.Dictionary, *image.Image, error) {
	d, err := compress.NewDictionary(c.Prog, indexBits)
	if err != nil {
		return nil, nil, err
	}
	im, err := image.Build(c.Prog, d)
	if err != nil {
		return nil, nil, err
	}
	base, err := c.Image("base")
	if err != nil {
		return nil, nil, err
	}
	if im.ATT, err = image.BuildATT(base, im); err != nil {
		return nil, nil, err
	}
	return d, im, nil
}

// Tailored returns the tailored-ISA generator (for Verilog emission and
// field reports).
func (c *Compiled) Tailored() (*tailor.Tailored, error) {
	e, err := c.Encoder("tailored")
	if err != nil {
		return nil, err
	}
	return e.(*tailor.Tailored), nil
}

// Trace produces the benchmark's dynamic trace: profile-driven stochastic
// walk using the profile's seed and phase count. maxBlocks <= 0 selects
// the profile's default length. Safe for concurrent use; with an
// attached driver the walk is content-cached and timed under "trace".
func (c *Compiled) Trace(maxBlocks int) (*trace.Trace, error) {
	if c.Profile == nil {
		return nil, fmt.Errorf("core: %s has no profile; use emu.Machine to run it", c.Name)
	}
	if maxBlocks <= 0 {
		maxBlocks = c.Profile.DynBlocks
	}
	seed, phases := c.Profile.Seed, c.Profile.Phases
	v, hit, err := c.arts.do(fmt.Sprintf("trace/%d/%d/%d", seed, maxBlocks, phases), func() (any, error) {
		if c.drv == nil {
			return emu.StochasticTrace(c.Prog, seed, maxBlocks, phases)
		}
		return memoAs(c.drv, c.traceKey(seed, maxBlocks, phases), func() (*trace.Trace, error) {
			var tr *trace.Trace
			err := c.drv.obs.Timer("trace").Time(func() error {
				var berr error
				tr, berr = emu.StochasticTrace(c.Prog, seed, maxBlocks, phases)
				return berr
			})
			return tr, err
		})
	})
	c.countHit(hit)
	if err != nil {
		return nil, err
	}
	return v.(*trace.Trace), nil
}

// StreamTrace produces the benchmark's dynamic trace as a bounded
// producer/consumer chunk stream — the same seeded walk as Trace, but
// never materialized, so the horizon is limited only by the consumer's
// patience. One-shot and uncached (a stream is consumed, not an
// artifact); maxBlocks <= 0 selects the profile's default length,
// chunkEvents <= 0 the stream default. The consumer must drain or
// Close the stream.
func (c *Compiled) StreamTrace(maxBlocks, chunkEvents int) (trace.Stream, error) {
	if c.Profile == nil {
		return nil, fmt.Errorf("core: %s has no profile; use emu.Machine to run it", c.Name)
	}
	if maxBlocks <= 0 {
		maxBlocks = c.Profile.DynBlocks
	}
	return emu.StochasticStream(c.Prog, c.Profile.Seed, maxBlocks, c.Profile.Phases, chunkEvents)
}

// StreamTraceOps is StreamTrace bounded by dynamic operation count —
// the long-horizon generator ("stream 100M ops"), where the block
// count is not known up front.
func (c *Compiled) StreamTraceOps(maxOps int64, chunkEvents int) (trace.Stream, error) {
	if c.Profile == nil {
		return nil, fmt.Errorf("core: %s has no profile; use emu.Machine to run it", c.Name)
	}
	return emu.StochasticStreamOps(c.Prog, c.Profile.Seed, maxOps, c.Profile.Phases, chunkEvents)
}

// Verify round-trips every block of every built image, proving the
// encodings are executable.
func (c *Compiled) Verify() error {
	c.regMu.Lock()
	schemes := make([]string, 0, len(c.imgBuilt))
	for scheme := range c.imgBuilt {
		schemes = append(schemes, scheme)
	}
	sort.Strings(schemes)
	imgs := make([]*image.Image, len(schemes))
	encs := make([]compress.Encoder, len(schemes))
	for i, scheme := range schemes {
		imgs[i] = c.imgBuilt[scheme]
		encs[i] = c.encBuilt[scheme]
	}
	c.regMu.Unlock()
	for i, scheme := range schemes {
		if err := image.VerifyRoundTrip(imgs[i], c.Prog, encs[i]); err != nil {
			return fmt.Errorf("core: scheme %s: %w", scheme, err)
		}
	}
	return nil
}
