// Package core is the paper's toolchain as an orchestration API: it wires
// the compiler substrate (workload generation, register allocation, VLIW
// scheduling), the encoding schemes (baseline, the three Huffman alphabet
// compositions, the tailored ISA), the image/ATT builder, the trace
// generators, and the IFetch simulators into single calls — and defines
// one experiment function per figure/table of the paper's evaluation
// (figures.go).
package core

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/emu"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/tailor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SchemeNames lists every encoding scheme the toolchain can produce, in
// report order: the baseline, byte-based Huffman, the six stream
// configurations, whole-op Huffman, and the tailored ISA.
func SchemeNames() []string {
	names := []string{"base", "byte"}
	for _, cfg := range compress.StreamConfigs {
		names = append(names, cfg.Name)
	}
	return append(names, "full", "tailored")
}

// Figure5Schemes are the schemes the paper's Figure 5 plots: byte-wise,
// the two reported stream configurations, whole-op Huffman and tailored.
var Figure5Schemes = []string{"byte", "stream", "stream_1", "full", "tailored"}

// Compiled is a program pushed through the compiler substrate.
type Compiled struct {
	Name    string
	IR      *ir.Program
	Prog    *sched.Program
	Alloc   regalloc.Result
	Profile *workload.Profile // nil for hand-written programs

	encoders map[string]compress.Encoder
	images   map[string]*image.Image
}

// CompileBenchmark generates and compiles one of the eight SPECint95
// benchmark stand-ins.
func CompileBenchmark(name string) (*Compiled, error) {
	prof, ok := workload.ProfileFor(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown benchmark %q", name)
	}
	return CompileProfile(prof)
}

// CompileProfile generates and compiles a program from a profile.
func CompileProfile(prof workload.Profile) (*Compiled, error) {
	p, err := workload.Generate(prof)
	if err != nil {
		return nil, err
	}
	c, err := CompileIR(p)
	if err != nil {
		return nil, err
	}
	c.Profile = &prof
	return c, nil
}

// CompileBenchmarkSpeculative compiles a benchmark with the
// treegion-style speculative hoisting pass (sched.Speculate) between
// register allocation and scheduling, returning the hoisted-op count
// alongside the compilation.
func CompileBenchmarkSpeculative(name string) (*Compiled, int, error) {
	prof, ok := workload.ProfileFor(name)
	if !ok {
		return nil, 0, fmt.Errorf("core: unknown benchmark %q", name)
	}
	p, err := workload.Generate(prof)
	if err != nil {
		return nil, 0, err
	}
	alloc, err := regalloc.Allocate(p)
	if err != nil {
		return nil, 0, err
	}
	hoisted, err := sched.Speculate(p)
	if err != nil {
		return nil, 0, err
	}
	sp, err := sched.Schedule(p)
	if err != nil {
		return nil, 0, err
	}
	c := newCompiled(p, sp, alloc)
	c.Profile = &prof
	return c, hoisted, nil
}

// CompileIR register-allocates and schedules an IR program (as produced
// by the workload generator or the asm builder with virtual registers;
// hand-written programs with architectural registers should use
// ScheduleOnly).
func CompileIR(p *ir.Program) (*Compiled, error) {
	alloc, err := regalloc.Allocate(p)
	if err != nil {
		return nil, err
	}
	sp, err := sched.Schedule(p)
	if err != nil {
		return nil, err
	}
	return newCompiled(p, sp, alloc), nil
}

// ScheduleOnly schedules an already register-allocated (e.g. hand-written)
// program without running the allocator.
func ScheduleOnly(p *ir.Program) (*Compiled, error) {
	sp, err := sched.Schedule(p)
	if err != nil {
		return nil, err
	}
	return newCompiled(p, sp, regalloc.Result{}), nil
}

func newCompiled(p *ir.Program, sp *sched.Program, alloc regalloc.Result) *Compiled {
	return &Compiled{
		Name:     p.Name,
		IR:       p,
		Prog:     sp,
		Alloc:    alloc,
		encoders: map[string]compress.Encoder{},
		images:   map[string]*image.Image{},
	}
}

// Encoder builds (and caches) the encoder for a scheme name.
func (c *Compiled) Encoder(scheme string) (compress.Encoder, error) {
	if e, ok := c.encoders[scheme]; ok {
		return e, nil
	}
	var (
		e   compress.Encoder
		err error
	)
	switch scheme {
	case "base":
		e = compress.NewBase()
	case "byte":
		e, err = compress.NewByteHuffman(c.Prog)
	case "full":
		e, err = compress.NewFullHuffman(c.Prog)
	case "tailored":
		e, err = tailor.New(c.Prog)
	default:
		found := false
		for _, cfg := range compress.StreamConfigs {
			if cfg.Name == scheme {
				e, err = compress.NewStreamHuffman(c.Prog, cfg)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: unknown scheme %q", scheme)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("core: scheme %s: %w", scheme, err)
	}
	c.encoders[scheme] = e
	return e, nil
}

// Image builds (and caches) the program image under a scheme, with its
// ATT attached for every non-base scheme.
func (c *Compiled) Image(scheme string) (*image.Image, error) {
	if im, ok := c.images[scheme]; ok {
		return im, nil
	}
	enc, err := c.Encoder(scheme)
	if err != nil {
		return nil, err
	}
	im, err := image.Build(c.Prog, enc)
	if err != nil {
		return nil, err
	}
	if scheme != "base" {
		base, err := c.Image("base")
		if err != nil {
			return nil, err
		}
		att, err := image.BuildATT(base, im)
		if err != nil {
			return nil, err
		}
		im.ATT = att
	}
	c.images[scheme] = im
	return im, nil
}

// Dictionary builds the beyond-Huffman dictionary scheme (§7 future work)
// at the given index width, along with its program image.
func (c *Compiled) Dictionary(indexBits int) (*compress.Dictionary, *image.Image, error) {
	d, err := compress.NewDictionary(c.Prog, indexBits)
	if err != nil {
		return nil, nil, err
	}
	im, err := image.Build(c.Prog, d)
	if err != nil {
		return nil, nil, err
	}
	base, err := c.Image("base")
	if err != nil {
		return nil, nil, err
	}
	if im.ATT, err = image.BuildATT(base, im); err != nil {
		return nil, nil, err
	}
	return d, im, nil
}

// Tailored returns the tailored-ISA generator (for Verilog emission and
// field reports).
func (c *Compiled) Tailored() (*tailor.Tailored, error) {
	e, err := c.Encoder("tailored")
	if err != nil {
		return nil, err
	}
	return e.(*tailor.Tailored), nil
}

// Trace produces the benchmark's dynamic trace: profile-driven stochastic
// walk using the profile's seed and phase count. maxBlocks <= 0 selects
// the profile's default length.
func (c *Compiled) Trace(maxBlocks int) (*trace.Trace, error) {
	if c.Profile == nil {
		return nil, fmt.Errorf("core: %s has no profile; use emu.Machine to run it", c.Name)
	}
	if maxBlocks <= 0 {
		maxBlocks = c.Profile.DynBlocks
	}
	return emu.StochasticTrace(c.Prog, c.Profile.Seed, maxBlocks, c.Profile.Phases)
}

// Verify round-trips every block of every built image, proving the
// encodings are executable.
func (c *Compiled) Verify() error {
	for scheme, im := range c.images {
		enc := c.encoders[scheme]
		if err := image.VerifyRoundTrip(im, c.Prog, enc); err != nil {
			return fmt.Errorf("core: scheme %s: %w", scheme, err)
		}
	}
	return nil
}
