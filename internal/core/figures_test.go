package core

import (
	"math/big"
	"testing"
)

// suite is shared by the figure tests (compilation and simulation are the
// expensive parts; the assertions all read the same runs the way the
// paper's figures all come from one experimental campaign).
var testSuite = NewSuite(Options{TraceBlocks: 200000})

// TestFigure5Shape asserts the paper's compression-ratio ordering: Full is
// by far the best, everything beats the baseline, byte-wise is the worst
// Huffman variant here, and tailored sits between the Huffman extremes.
func TestFigure5Shape(t *testing.T) {
	res, err := testSuite.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("expected 8 benchmarks, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		full, tl := row.Ratio["full"], row.Ratio["tailored"]
		byteR, stream := row.Ratio["byte"], row.Ratio["stream"]
		stream1 := row.Ratio["stream_1"]
		if !(full < stream && full < byteR && full < tl) {
			t.Errorf("%s: full (%.3f) is not the best ratio", row.Benchmark, full)
		}
		for name, r := range row.Ratio {
			if r <= 0 || r >= 1 {
				t.Errorf("%s/%s: ratio %.3f outside (0,1)", row.Benchmark, name, r)
			}
		}
		// stream_1 is the best-size configuration; stream trades size for
		// the smallest stream decoder.
		if stream1 >= stream {
			t.Errorf("%s: stream_1 (%.3f) not better than stream (%.3f)",
				row.Benchmark, stream1, stream)
		}
		_ = tl
	}
	// Paper's averages: full ~30%, byte ~72%, tailored ~64%. Allow bands.
	if avg := res.Average("full"); avg < 0.2 || avg > 0.45 {
		t.Errorf("full average %.3f outside paper band ~0.30", avg)
	}
	if avg := res.Average("byte"); avg < 0.6 || avg > 0.85 {
		t.Errorf("byte average %.3f outside paper band ~0.72", avg)
	}
	if avg := res.Average("tailored"); avg < 0.55 || avg > 0.75 {
		t.Errorf("tailored average %.3f outside paper band ~0.64", avg)
	}
}

// TestFigure7Shape asserts the ATT adds a small, nonzero overhead (the
// paper reports ~15.5%).
func TestFigure7Shape(t *testing.T) {
	res, err := testSuite.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 16 {
		t.Fatalf("expected 16 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ATTBytes <= 0 {
			t.Errorf("%s/%s: empty ATT", row.Benchmark, row.Scheme)
		}
		if row.ATTOverhead < 0.02 || row.ATTOverhead > 0.25 {
			t.Errorf("%s/%s: ATT overhead %.3f implausible", row.Benchmark,
				row.Scheme, row.ATTOverhead)
		}
		if row.TotalRatio >= 1 {
			t.Errorf("%s/%s: total size %.3f not below original", row.Benchmark,
				row.Scheme, row.TotalRatio)
		}
	}
	if m := res.MeanATTOverhead(); m < 0.03 || m > 0.20 {
		t.Errorf("mean ATT overhead %.3f outside plausible band", m)
	}
}

// TestFigure10Shape asserts the decoder-complexity ordering: the Full
// decoder dwarfs the stream decoders, which dwarf nothing smaller than
// byte; the tailored PLA is orders of magnitude below all of them.
func TestFigure10Shape(t *testing.T) {
	res, err := testSuite.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		full := row.Complexity["full"].Transistors
		byteT := row.Complexity["byte"].Transistors
		if full.Cmp(byteT) <= 0 {
			t.Errorf("%s: full decoder (%v) not larger than byte decoder (%v)",
				row.Benchmark, full, byteT)
		}
		if row.Tailored.Transistors.Cmp(byteT) >= 0 {
			t.Errorf("%s: tailored PLA (%v) not below byte decoder (%v)",
				row.Benchmark, row.Tailored.Transistors, byteT)
		}
		if full.Cmp(big.NewInt(0)) <= 0 {
			t.Errorf("%s: non-positive complexity", row.Benchmark)
		}
		if k := row.Complexity["byte"].K; k > 256 {
			t.Errorf("%s: byte dictionary %d entries", row.Benchmark, k)
		}
	}
}

// TestFigure13Shape asserts the paper's headline result: Compressed does
// worse than Base exactly on the misprediction-dominated benchmarks
// (compress, go, ijpeg, m88ksim) and wins on the capacity-bound ones,
// while the Tailored ISA has the best average of the three real
// organizations.
func TestFigure13Shape(t *testing.T) {
	res, err := testSuite.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	compressedLosers := map[string]bool{
		"compress": true, "go": true, "ijpeg": true, "m88ksim": true,
	}
	for _, row := range res.Rows {
		ideal, base := row.Ideal, row.IPC("Base")
		comp, tl := row.IPC("Compressed"), row.IPC("Tailored")
		for label, v := range map[string]float64{"Base": base, "Compressed": comp, "Tailored": tl} {
			if v <= 0 || v > ideal {
				t.Errorf("%s/%s: IPC %.3f outside (0, ideal=%.3f]", row.Benchmark, label, v, ideal)
			}
		}
		if compressedLosers[row.Benchmark] {
			if comp >= base {
				t.Errorf("%s: Compressed (%.3f) should lose to Base (%.3f) — misprediction-dominated",
					row.Benchmark, comp, base)
			}
		} else if comp < 0.995*base {
			t.Errorf("%s: Compressed (%.3f) should be at or above Base (%.3f) — capacity-bound",
				row.Benchmark, comp, base)
		}
		// Tailored never falls meaningfully below Base: it shares Base's
		// hit path and misprediction penalty.
		if tl < 0.99*base {
			t.Errorf("%s: Tailored (%.3f) far below Base (%.3f)", row.Benchmark, tl, base)
		}
	}
	avg := res.Averages()
	if avg["Tailored"] <= avg["Compressed"] {
		t.Errorf("Tailored average (%.3f) should exceed Compressed (%.3f)",
			avg["Tailored"], avg["Compressed"])
	}
	if avg["Tailored"] < avg["Base"] {
		t.Errorf("Tailored average (%.3f) should be at or above Base (%.3f)",
			avg["Tailored"], avg["Base"])
	}
	if avg["Ideal"] < avg["Tailored"] {
		t.Errorf("Ideal average (%.3f) below Tailored (%.3f)", avg["Ideal"], avg["Tailored"])
	}
}

// TestFigure14Shape asserts bus bit flips track the degree of compression:
// Compressed < Tailored < Base for every benchmark.
func TestFigure14Shape(t *testing.T) {
	res, err := testSuite.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		b, c, tl := row.Flips["Base"], row.Flips["Compressed"], row.Flips["Tailored"]
		if b == 0 {
			t.Errorf("%s: no base bus activity", row.Benchmark)
			continue
		}
		if c >= b {
			t.Errorf("%s: Compressed flips (%d) not below Base (%d)", row.Benchmark, c, b)
		}
		if tl >= b {
			t.Errorf("%s: Tailored flips (%d) not below Base (%d)", row.Benchmark, tl, b)
		}
		if c >= tl {
			t.Errorf("%s: Compressed flips (%d) not below Tailored (%d) — compression degree ordering",
				row.Benchmark, c, tl)
		}
	}
}

// TestStreamSweep exercises the six-configuration exploration.
func TestStreamSweep(t *testing.T) {
	small := NewSuite(Options{Benchmarks: []string{"compress", "go"}})
	rows, err := small.StreamSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("expected 6 stream configurations, got %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanRatio <= 0 || r.MeanRatio >= 1 {
			t.Errorf("%s: ratio %.3f outside (0,1)", r.Config, r.MeanRatio)
		}
		if r.Log10T <= 0 {
			t.Errorf("%s: non-positive decoder complexity", r.Config)
		}
	}
}

// TestFigure13Deterministic: two fresh suites (with their concurrent
// per-benchmark fan-out) must produce bit-identical results — the
// reproducibility guarantee everything else rests on.
func TestFigure13Deterministic(t *testing.T) {
	opt := Options{Benchmarks: []string{"compress", "go"}, TraceBlocks: 30000}
	r1, err := NewSuite(opt).Figure13()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewSuite(opt).Figure13()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Rows {
		a, b := r1.Rows[i], r2.Rows[i]
		if a.Benchmark != b.Benchmark || a.Ideal != b.Ideal {
			t.Fatalf("row %d differs", i)
		}
		for org, res := range a.Results {
			if b.Results[org] != res {
				t.Fatalf("%s/%s differs across runs", a.Benchmark, org)
			}
		}
	}
}

// TestTablesRender smoke-tests every figure's text rendering.
func TestTablesRender(t *testing.T) {
	small := NewSuite(Options{Benchmarks: []string{"compress"}, TraceBlocks: 20000})
	f5, err := small.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	f7, err := small.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	f10, err := small.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	f13, err := small.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	f14, err := small.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range []string{
		f5.Table().Render(), f7.Table().Render(), f10.Table().Render(),
		f13.Table().Render(), f14.Table().Render(),
	} {
		if len(s) < 50 {
			t.Errorf("figure table %d renders only %d bytes", i, len(s))
		}
	}
}
