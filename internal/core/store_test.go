package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
)

// TestStoreSingleFlight hammers a 4-shard store with 64 goroutines over
// a key set the capacity fully holds, asserting the single-flight
// contract: exactly one build per content key no matter how many
// requests race for it, every request resolved to the built value, and
// the hit/miss counters accounting for every request exactly once.
func TestStoreSingleFlight(t *testing.T) {
	const (
		goroutines = 64
		perG       = 100
		keys       = 16
	)
	obs := stats.NewRegistry()
	st := newArtifactStore(4, 4*keys, obs)
	var builds atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("k%d", (g+i)%keys)
				v, err := st.do(key, func() (any, error) {
					builds.Add(1)
					return "val:" + key, nil
				})
				if err != nil {
					errs[g] = err
					return
				}
				if v != "val:"+key {
					errs[g] = fmt.Errorf("key %s resolved to %v", key, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if got := builds.Load(); got != keys {
		t.Errorf("builds = %d, want %d (one per key)", got, keys)
	}
	hits := obs.Counter("artifact.hit").Value()
	misses := obs.Counter("artifact.miss").Value()
	if hits+misses != goroutines*perG {
		t.Errorf("hits (%d) + misses (%d) = %d, want %d requests",
			hits, misses, hits+misses, goroutines*perG)
	}
	if misses != keys {
		t.Errorf("misses = %d, want %d (every non-first request a hit)", misses, keys)
	}
	if ev := obs.Counter("artifact.eviction").Value(); ev != 0 {
		t.Errorf("evictions = %d, want 0 under capacity", ev)
	}
}

// TestStoreBoundedEviction forces evictions: 64 goroutines over a key
// space eight times the capacity of a 4-shard store. Memory must stay
// bounded (resident entries never exceed capacity plus the in-flight
// build count), counters must stay consistent (hits + misses ==
// requests; one build per miss; evictions <= misses), and the store
// must keep serving correct values throughout.
func TestStoreBoundedEviction(t *testing.T) {
	const (
		goroutines = 64
		perG       = 200
		keys       = 64
		capacity   = 8
	)
	obs := stats.NewRegistry()
	st := newArtifactStore(4, capacity, obs)
	var builds atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%keys)
				v, err := st.do(key, func() (any, error) {
					builds.Add(1)
					return "val:" + key, nil
				})
				if err != nil {
					errs[g] = err
					return
				}
				if v != "val:"+key {
					errs[g] = fmt.Errorf("key %s resolved to %v", key, v)
					return
				}
				// The bound: capacity entries plus at most one in-flight
				// build per goroutine. Checked from inside the storm so a
				// transient blow-up cannot hide behind the final drain.
				if n := st.len(); n > capacity+goroutines {
					errs[g] = fmt.Errorf("store grew to %d entries (cap %d, %d goroutines)",
						n, capacity, goroutines)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	hits := obs.Counter("artifact.hit").Value()
	misses := obs.Counter("artifact.miss").Value()
	evictions := obs.Counter("artifact.eviction").Value()
	if hits+misses != goroutines*perG {
		t.Errorf("hits (%d) + misses (%d) = %d, want %d requests",
			hits, misses, hits+misses, goroutines*perG)
	}
	if got := builds.Load(); got != misses {
		t.Errorf("builds = %d, want %d (one per miss)", got, misses)
	}
	if misses < keys {
		t.Errorf("misses = %d, want >= %d (every key built at least once)", misses, keys)
	}
	if evictions == 0 {
		t.Error("no evictions despite key space 8x capacity")
	}
	if evictions > misses {
		t.Errorf("evictions (%d) > misses (%d): evicted entries that were never built", evictions, misses)
	}
	if n := st.len(); n > capacity {
		t.Errorf("store settled at %d entries, want <= capacity %d", n, capacity)
	}
}

// TestStoreLRUOrder pins the eviction policy on a single shard: the
// least recently *used* entry goes first, not the least recently
// inserted.
func TestStoreLRUOrder(t *testing.T) {
	obs := stats.NewRegistry()
	st := newArtifactStore(1, 2, obs)
	builds := map[string]int{}
	get := func(key string) {
		t.Helper()
		if _, err := st.do(key, func() (any, error) {
			builds[key]++
			return key, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now LRU
	get("c") // evicts b
	if got := obs.Counter("artifact.eviction").Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	get("a") // still resident
	get("b") // rebuilds
	if builds["a"] != 1 {
		t.Errorf("a built %d times, want 1 (refreshed, never evicted)", builds["a"])
	}
	if builds["b"] != 2 {
		t.Errorf("b built %d times, want 2 (evicted as LRU)", builds["b"])
	}
	if builds["c"] != 1 {
		t.Errorf("c built %d times, want 1", builds["c"])
	}
}

// TestStoreCachesFailedBuilds keeps the pre-service contract: a failed
// build is cached (content-hashed inputs cannot succeed on retry), so
// the second request for a poisoned key is a hit, not a rebuild.
func TestStoreCachesFailedBuilds(t *testing.T) {
	obs := stats.NewRegistry()
	st := newArtifactStore(2, 0, obs)
	calls := 0
	fail := func() (any, error) { calls++; return nil, fmt.Errorf("boom %d", calls) }
	_, err1 := st.do("bad", fail)
	_, err2 := st.do("bad", fail)
	if err1 == nil || err2 == nil {
		t.Fatalf("errors = %v, %v; want both non-nil", err1, err2)
	}
	if err1 != err2 {
		t.Errorf("second request got a different error: %v vs %v", err1, err2)
	}
	if calls != 1 {
		t.Errorf("build ran %d times, want 1", calls)
	}
}

// TestDriverBoundedCache exercises the bound through the Driver face:
// a capacity-1 driver still compiles and serves correct artifacts, it
// just rebuilds what the bound evicted.
func TestDriverBoundedCache(t *testing.T) {
	d := NewDriverWithCache(2, 2, 4)
	c, err := d.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Image("full"); err != nil {
		t.Fatal(err)
	}
	if n := d.CacheEntries(); n == 0 {
		t.Error("CacheEntries() = 0 after builds")
	}
	hits := d.Stats().Counter("artifact.hit").Value()
	misses := d.Stats().Counter("artifact.miss").Value()
	if hits+misses == 0 {
		t.Error("no cache traffic recorded")
	}
}
