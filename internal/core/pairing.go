package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/image"
	"repro/internal/scheme"
)

// Pairings returns every registered (encoding, organization) pairing in
// registration order.
func Pairings() []scheme.Pairing { return scheme.Pairings() }

// SimFor builds the IFetch simulator for one registry pairing over this
// compilation's images: the cache indexes the pairing's cache-scheme
// image, and — for miss-path-decompression organizations — the bus
// fetches from the pairing's ROM-scheme image. Image builds share the
// compilation's artifact cache.
func (c *Compiled) SimFor(p scheme.Pairing, cfg cache.Config) (*cache.Sim, error) {
	im, err := c.Image(p.CacheScheme)
	if err != nil {
		return nil, err
	}
	var rom *image.Image
	if p.ROMScheme != "" {
		if rom, err = c.Image(p.ROMScheme); err != nil {
			return nil, err
		}
	}
	sim, err := cache.NewOrgSim(p.Org, cfg, im, rom, c.Prog)
	if err != nil {
		return nil, fmt.Errorf("core: pairing %s: %w", p.Name, err)
	}
	return sim, nil
}
