package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/sched"
	"repro/internal/scheme"
	"repro/internal/workload"
)

// ArtifactCacheVersion is folded into every artifact-cache key. Bump it
// when a build stage changes behaviour without any of its hashed inputs
// changing (a new encoder layout, a different ATT serialization, ...):
// the version change invalidates every previously cached artifact at
// once. Input-driven invalidation needs no version bump — a changed
// program or scheme configuration already produces a different key.
const ArtifactCacheVersion = "v1"

// profileKey fingerprints a workload profile. Generation is fully
// deterministic given the profile, so the profile's field values are the
// complete input of the compile stage.
func profileKey(p workload.Profile) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v", p)))
	return "prog/" + ArtifactCacheVersion + "/" + hex.EncodeToString(h[:16])
}

// programHash is the content hash of a scheduled program: everything the
// encoders and the image builder consume — per-block control metadata,
// MOP structure and the exact 40-bit operation encodings. Programs with
// equal hashes yield bit-identical encoders and images.
func programHash(sp *sched.Program) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:]) //tepic:ignore-err hash.Hash.Write never fails
	}
	put(uint64(len(sp.Blocks)))
	for _, b := range sp.Blocks {
		put(uint64(b.ID))
		put(uint64(b.Fn))
		put(uint64(int64(b.TakenTarget)))
		put(uint64(int64(b.FallTarget)))
		put(uint64(int64(b.Callee)))
		put(math.Float64bits(b.TakenProb))
		put(uint64(len(b.MOPs)))
		put(uint64(len(b.Ops)))
		for i := range b.Ops {
			put(b.Ops[i].Encode())
		}
	}
	put(uint64(len(sp.FuncEntries)))
	for _, e := range sp.FuncEntries {
		put(uint64(e))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// schemeKey is the canonical content descriptor of an encoding scheme
// configuration, taken from the scheme registry (stream schemes key
// their exact cut points, not their display names; Huffman schemes fold
// in the code-length bound that shapes their tables).
func schemeKey(name string) string {
	if sc, ok := scheme.Lookup(name); ok {
		return sc.ContentKey
	}
	return "unknown/" + name
}

// encoderKey addresses a (program, scheme) encoder artifact. The program
// name is excluded: encoders depend only on operation content, so two
// identically scheduled programs share their Huffman tables.
func (c *Compiled) encoderKey(scheme string) string {
	return "enc/" + ArtifactCacheVersion + "/" + c.contentKey() + "/" + schemeKey(scheme)
}

// imageKey addresses a (program, scheme) image artifact. Unlike
// encoderKey it folds in the program name, which the image embeds.
func (c *Compiled) imageKey(scheme string) string {
	return "img/" + ArtifactCacheVersion + "/" + c.contentKey() + "/" + c.Name + "/" + schemeKey(scheme)
}

// decodePlanKey addresses a (program, scheme) decode-plan artifact: the
// prebuilt lane-kernel decode tables plus the image's block geometry.
// Like imageKey it folds in the program name — the geometry comes from
// the laid-out image, which embeds it.
func (c *Compiled) decodePlanKey(scheme string) string {
	return "dec/" + ArtifactCacheVersion + "/" + c.contentKey() + "/" + c.Name + "/" + schemeKey(scheme)
}

// traceKey addresses a stochastic trace artifact.
func (c *Compiled) traceKey(seed int64, maxBlocks, phases int) string {
	return fmt.Sprintf("trace/%s/%s/%d/%d/%d",
		ArtifactCacheVersion, c.contentKey(), seed, maxBlocks, phases)
}
