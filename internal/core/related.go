package core

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/declogic"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/scheme"
	"repro/internal/stats"
)

// RelatedRow is one benchmark × approach entry in the related-work
// comparison of §6: this repository's two schemes next to models of the
// prior approaches the paper discusses.
type RelatedRow struct {
	Benchmark string
	Approach  string
	ROMRatio  float64 // total ROM (code + ATT where applicable) / base code
	IPC       float64 // 0 for static-only models
	FlipRatio float64 // bus bit flips / base; 0 for static-only models
}

// ThumbOpBits and ThumbOpInflation model a Thumb/MIPS16-style subset ISA
// (§6): 24-bit operations (a compact subset re-encoding of the 40-bit
// ISA, keeping the paper's 3-operand predication) at the cost of more
// operations — the paper's "subset ISAs reduce flexibility, which
// ultimately results in increased op count". The inflation factor follows
// the ~15–20% op-count growth reported for Thumb-class ISAs.
const (
	ThumbOpBits      = 24
	ThumbOpInflation = 1.18
)

// approachLabel names a pairing in the comparison: the organization
// label, annotated with the encoding when it is not implied by the
// label itself (CodePack's ROM scheme, Compressed's cache scheme).
func approachLabel(p scheme.Pairing) string {
	if p.ROMScheme != "" {
		return fmt.Sprintf("%s(%s)", p.Name, p.ROMScheme)
	}
	if p.CacheScheme != scheme.BaseName && !strings.EqualFold(p.CacheScheme, p.Name) {
		return fmt.Sprintf("%s(%s)", p.Name, p.CacheScheme)
	}
	return p.Name
}

// romImage returns the image whose bytes sit in ROM for a pairing: the
// behind-the-bus ROM image when the organization keeps one, the cache's
// image otherwise.
func (c *Compiled) romImage(p scheme.Pairing) (*image.Image, error) {
	if p.ROMScheme != "" {
		return c.Image(p.ROMScheme)
	}
	return c.Image(p.CacheScheme)
}

// RelatedWork compares, per benchmark, every registered pairing — the
// paper's Base/Compressed/Tailored organizations and the CodePack-style
// miss-path decompressor (byte-scheme ROM, uncompressed cache) — plus a
// static Thumb-style subset-ISA size model.
func (s *Suite) RelatedWork() ([]RelatedRow, error) {
	var rows []RelatedRow
	for _, name := range s.opt.benchmarks() {
		c, err := s.Compiled(name)
		if err != nil {
			return nil, err
		}
		base, err := c.Image(scheme.BaseName)
		if err != nil {
			return nil, err
		}
		tr, err := c.Trace(s.opt.TraceBlocks)
		if err != nil {
			return nil, err
		}
		basePair, ok := scheme.PairingByName("Base")
		if !ok {
			return nil, fmt.Errorf("core: no Base pairing registered")
		}
		baseSim, err := c.SimFor(basePair, cache.DefaultConfig(basePair.Org))
		if err != nil {
			return nil, err
		}
		baseRes, err := baseSim.Run(tr)
		if err != nil {
			return nil, err
		}

		add := func(approach string, romRatio float64, res *cache.Result) {
			row := RelatedRow{Benchmark: name, Approach: approach, ROMRatio: romRatio}
			if res != nil {
				row.IPC = res.IPC()
				if baseRes.BitFlips > 0 {
					row.FlipRatio = float64(res.BitFlips) / float64(baseRes.BitFlips)
				}
			}
			rows = append(rows, row)
		}
		for _, p := range scheme.Pairings() {
			if p.Name == basePair.Name {
				add(approachLabel(p), 1, &baseRes)
				continue
			}
			rom, err := c.romImage(p)
			if err != nil {
				return nil, err
			}
			sim, err := c.SimFor(p, cache.DefaultConfig(p.Org))
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(tr)
			if err != nil {
				return nil, err
			}
			add(approachLabel(p), float64(rom.TotalBytes())/float64(base.CodeBytes), &res)
		}

		// Related work: Thumb/MIPS16-style subset ISA, static size model
		// only (no IFetch advantage: the cache holds the subset encoding
		// but executes ~18% more ops).
		thumb := float64(ThumbOpBits) / float64(isa.OpBits) * ThumbOpInflation
		add("Thumb-style", thumb, nil)
	}
	return rows, nil
}

// RelatedWorkTable renders the comparison.
func RelatedWorkTable(rows []RelatedRow) *stats.Table {
	t := &stats.Table{
		Title: "Related-work comparison (§6): ROM size, delivered IPC and bus bit flips vs Base",
		Cols:  []string{"benchmark", "approach", "ROM/base", "IPC", "flips/base"},
	}
	for _, r := range rows {
		ipc, fl := "-", "-"
		if r.IPC > 0 {
			ipc = stats.F(r.IPC, 3)
			fl = stats.Pct(r.FlipRatio)
		}
		t.AddRow(r.Benchmark, r.Approach, stats.Pct(r.ROMRatio), ipc, fl)
	}
	return t
}

// DictComparison reports the beyond-Huffman dictionary scheme (§7 future
// work) against the full Huffman scheme per benchmark: ratio and decoder
// storage.
type DictComparison struct {
	Benchmark    string
	DictRatio    float64
	FullRatio    float64
	DictRAMBits  int
	FullLog10T   float64
	DictEntries  int
	DictIndexLen int
}

// DictionarySweep measures the dictionary scheme at a given index width,
// fanning out across benchmarks on the driver's pool.
func (s *Suite) DictionarySweep(indexBits int) ([]DictComparison, error) {
	return forEachBenchmark(s, func(name string) (DictComparison, error) {
		c, err := s.Compiled(name)
		if err != nil {
			return DictComparison{}, err
		}
		base, err := c.Image("base")
		if err != nil {
			return DictComparison{}, err
		}
		full, err := c.Image("full")
		if err != nil {
			return DictComparison{}, err
		}
		d, dim, err := c.Dictionary(indexBits)
		if err != nil {
			return DictComparison{}, err
		}
		fullEnc, err := c.Encoder("full")
		if err != nil {
			return DictComparison{}, err
		}
		var fullT float64
		if tabs := fullEnc.Tables(); len(tabs) > 0 {
			fullT = declogic.ForTables("full", tabs).Log10Transistors()
		}
		return DictComparison{
			Benchmark:    name,
			DictRatio:    dim.Ratio(base),
			FullRatio:    full.Ratio(base),
			DictRAMBits:  d.DecoderRAMBits(),
			FullLog10T:   fullT,
			DictEntries:  d.Entries(),
			DictIndexLen: indexBits,
		}, nil
	})
}
