package core

import (
	"repro/internal/cache"
	"repro/internal/declogic"
	"repro/internal/isa"
	"repro/internal/stats"
)

// RelatedRow is one benchmark × approach entry in the related-work
// comparison of §6: this repository's two schemes next to models of the
// prior approaches the paper discusses.
type RelatedRow struct {
	Benchmark string
	Approach  string
	ROMRatio  float64 // total ROM (code + ATT where applicable) / base code
	IPC       float64 // 0 for static-only models
	FlipRatio float64 // bus bit flips / base; 0 for static-only models
}

// ThumbOpBits and ThumbOpInflation model a Thumb/MIPS16-style subset ISA
// (§6): 24-bit operations (a compact subset re-encoding of the 40-bit
// ISA, keeping the paper's 3-operand predication) at the cost of more
// operations — the paper's "subset ISAs reduce flexibility, which
// ultimately results in increased op count". The inflation factor follows
// the ~15–20% op-count growth reported for Thumb-class ISAs.
const (
	ThumbOpBits      = 24
	ThumbOpInflation = 1.18
)

// RelatedWork compares, per benchmark: the paper's Compressed (full) and
// Tailored organizations, a CodePack-style miss-path decompressor (byte
// scheme ROM, uncompressed cache), and a static Thumb-style subset-ISA
// size model.
func (s *Suite) RelatedWork() ([]RelatedRow, error) {
	var rows []RelatedRow
	for _, name := range s.opt.benchmarks() {
		c, err := s.Compiled(name)
		if err != nil {
			return nil, err
		}
		base, err := c.Image("base")
		if err != nil {
			return nil, err
		}
		tr, err := c.Trace(s.opt.TraceBlocks)
		if err != nil {
			return nil, err
		}
		baseSim, err := cache.NewSim(cache.OrgBase, cache.DefaultConfig(cache.OrgBase), base, c.Prog)
		if err != nil {
			return nil, err
		}
		baseRes := baseSim.Run(tr)

		add := func(approach string, romRatio float64, res *cache.Result) {
			row := RelatedRow{Benchmark: name, Approach: approach, ROMRatio: romRatio}
			if res != nil {
				row.IPC = res.IPC()
				if baseRes.BitFlips > 0 {
					row.FlipRatio = float64(res.BitFlips) / float64(baseRes.BitFlips)
				}
			}
			rows = append(rows, row)
		}
		add("Base", 1, &baseRes)

		// This paper: Compressed (full scheme, hit-path decompression).
		fullIm, err := c.Image("full")
		if err != nil {
			return nil, err
		}
		compSim, err := cache.NewSim(cache.OrgCompressed, cache.DefaultConfig(cache.OrgCompressed), fullIm, c.Prog)
		if err != nil {
			return nil, err
		}
		compRes := compSim.Run(tr)
		add("Compressed(full)", float64(fullIm.TotalBytes())/float64(base.CodeBytes), &compRes)

		// This paper: Tailored ISA.
		tlIm, err := c.Image("tailored")
		if err != nil {
			return nil, err
		}
		tlSim, err := cache.NewSim(cache.OrgTailored, cache.DefaultConfig(cache.OrgTailored), tlIm, c.Prog)
		if err != nil {
			return nil, err
		}
		tlRes := tlSim.Run(tr)
		add("Tailored", float64(tlIm.TotalBytes())/float64(base.CodeBytes), &tlRes)

		// Related work: CodePack-style — byte-scheme ROM, decompress at
		// miss time into an uncompressed cache.
		byteIm, err := c.Image("byte")
		if err != nil {
			return nil, err
		}
		cpSim, err := cache.NewCodePackSim(cache.DefaultConfig(cache.OrgCodePack), base, byteIm, c.Prog)
		if err != nil {
			return nil, err
		}
		cpRes := cpSim.Run(tr)
		add("CodePack(byte)", float64(byteIm.TotalBytes())/float64(base.CodeBytes), &cpRes)

		// Related work: Thumb/MIPS16-style subset ISA, static size model
		// only (no IFetch advantage: the cache holds the subset encoding
		// but executes ~18% more ops).
		thumb := float64(ThumbOpBits) / float64(isa.OpBits) * ThumbOpInflation
		add("Thumb-style", thumb, nil)
	}
	return rows, nil
}

// RelatedWorkTable renders the comparison.
func RelatedWorkTable(rows []RelatedRow) *stats.Table {
	t := &stats.Table{
		Title: "Related-work comparison (§6): ROM size, delivered IPC and bus bit flips vs Base",
		Cols:  []string{"benchmark", "approach", "ROM/base", "IPC", "flips/base"},
	}
	for _, r := range rows {
		ipc, fl := "-", "-"
		if r.IPC > 0 {
			ipc = stats.F(r.IPC, 3)
			fl = stats.Pct(r.FlipRatio)
		}
		t.AddRow(r.Benchmark, r.Approach, stats.Pct(r.ROMRatio), ipc, fl)
	}
	return t
}

// DictComparison reports the beyond-Huffman dictionary scheme (§7 future
// work) against the full Huffman scheme per benchmark: ratio and decoder
// storage.
type DictComparison struct {
	Benchmark    string
	DictRatio    float64
	FullRatio    float64
	DictRAMBits  int
	FullLog10T   float64
	DictEntries  int
	DictIndexLen int
}

// DictionarySweep measures the dictionary scheme at a given index width,
// fanning out across benchmarks on the driver's pool.
func (s *Suite) DictionarySweep(indexBits int) ([]DictComparison, error) {
	return forEachBenchmark(s, func(name string) (DictComparison, error) {
		c, err := s.Compiled(name)
		if err != nil {
			return DictComparison{}, err
		}
		base, err := c.Image("base")
		if err != nil {
			return DictComparison{}, err
		}
		full, err := c.Image("full")
		if err != nil {
			return DictComparison{}, err
		}
		d, dim, err := c.Dictionary(indexBits)
		if err != nil {
			return DictComparison{}, err
		}
		fullEnc, err := c.Encoder("full")
		if err != nil {
			return DictComparison{}, err
		}
		var fullT float64
		if tabs := fullEnc.Tables(); len(tabs) > 0 {
			fullT = declogic.ForTables("full", tabs).Log10Transistors()
		}
		return DictComparison{
			Benchmark:    name,
			DictRatio:    dim.Ratio(base),
			FullRatio:    full.Ratio(base),
			DictRAMBits:  d.DecoderRAMBits(),
			FullLog10T:   fullT,
			DictEntries:  d.Entries(),
			DictIndexLen: indexBits,
		}, nil
	})
}
