package core

import (
	"strings"
	"testing"
)

// TestDecodePlanEquivalence proves, per batch scheme, that the memoized
// plan decodes the image to exactly the sequential fast face's totals —
// and that parallel span decoding changes nothing.
func TestDecodePlanEquivalence(t *testing.T) {
	d := NewDriver(4)
	c, err := d.CompileBenchmark("go")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"byte", "stream", "stream_1", "full"} {
		t.Run(scheme, func(t *testing.T) {
			plan, err := c.DecodePlan(scheme)
			if err != nil {
				t.Fatal(err)
			}
			if plan == nil {
				t.Fatalf("%s: no decode plan", scheme)
			}
			if plan.TableEntries <= 0 {
				t.Errorf("TableEntries = %d, want > 0", plan.TableEntries)
			}
			// Sequential truth via the measured tiers, which assert the
			// three faces agree internally.
			dt, err := c.MeasureDecodeThroughput(scheme, 1)
			if err != nil {
				t.Fatal(err)
			}
			syms, bits, err := plan.DecodeSymbols(nil)
			if err != nil {
				t.Fatal(err)
			}
			if syms != int64(plan.Syms) {
				t.Errorf("DecodeSymbols = %d symbols, plan.Syms = %d", syms, plan.Syms)
			}
			if dt.Batch.Ops%syms != 0 {
				t.Errorf("measured batch ops %d not a whole number of passes of %d", dt.Batch.Ops, syms)
			}
			// Collect mode fills exactly Syms symbols.
			out := make([]uint64, plan.Syms)
			csyms, cbits, err := plan.DecodeSymbolsInto(nil, out)
			if err != nil || csyms != syms || cbits != bits {
				t.Fatalf("DecodeSymbolsInto = (%d, %d, %v), want (%d, %d, nil)", csyms, cbits, err, syms, bits)
			}
			// Parallel fan-out over the driver pool, at several span
			// widths including degenerate ones.
			for _, spans := range []int{0, 1, 3, 64, plan.Blocks() + 7} {
				psyms, pbits, err := c.DecodeSymbolsParallel(scheme, spans)
				if err != nil {
					t.Fatalf("spans=%d: %v", spans, err)
				}
				if psyms != syms || pbits != bits {
					t.Fatalf("spans=%d: parallel = (%d, %d), sequential (%d, %d)",
						spans, psyms, pbits, syms, bits)
				}
			}
		})
	}
}

// TestDecodePlanMemoized: the plan artifact builds once per
// (program, scheme) through the driver store; a second request is a
// cache hit, and a second compilation of the same benchmark shares it.
func TestDecodePlanMemoized(t *testing.T) {
	d := NewDriver(2)
	c, err := d.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := c.DecodePlan("full")
	if err != nil {
		t.Fatal(err)
	}
	hits := d.Stats().Counter("artifact.hit").Value()
	p2, err := c.DecodePlan("full")
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Error("second DecodePlan returned a different plan")
	}
	if got := d.Stats().Counter("artifact.hit").Value(); got <= hits {
		t.Errorf("second DecodePlan request not counted as a hit (%d -> %d)", hits, got)
	}
	// A fresh Compiled for the same benchmark resolves to the same
	// stored artifact (content-addressed, not per-compilation).
	c2, err := d.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	p3, err := c2.DecodePlan("full")
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Error("same-content compilation rebuilt the decode plan")
	}
	if n := d.Stats().Snapshot().Stages["decplan.full"].Count; n != 1 {
		t.Errorf("decplan.full built %d times, want 1", n)
	}
}

// TestDecodePlanAbsent: schemes without a Huffman batch face plan to
// nil, and the parallel entry point reports them.
func TestDecodePlanAbsent(t *testing.T) {
	c, err := CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"base", "tailored"} {
		p, err := c.DecodePlan(scheme)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if p != nil {
			t.Errorf("%s: unexpected decode plan", scheme)
		}
		if _, _, err := c.DecodeSymbolsParallel(scheme, 0); err == nil ||
			!strings.Contains(err.Error(), "no batch decode face") {
			t.Errorf("%s: DecodeSymbolsParallel error = %v", scheme, err)
		}
	}
}

// TestDecodePlanStandalone: plans work without a driver (sequential
// fallback for the parallel entry point included).
func TestDecodePlanStandalone(t *testing.T) {
	c, err := CompileBenchmark("li")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.DecodePlan("stream")
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("no plan for stream scheme")
	}
	syms, bits, err := plan.DecodeSymbols(nil)
	if err != nil || syms == 0 || bits == 0 {
		t.Fatalf("DecodeSymbols = (%d, %d, %v)", syms, bits, err)
	}
	psyms, pbits, err := c.DecodeSymbolsParallel("stream", 8)
	if err != nil || psyms != syms || pbits != bits {
		t.Fatalf("driverless parallel = (%d, %d, %v), want (%d, %d, nil)", psyms, pbits, err, syms, bits)
	}
}
