package workload

import (
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

func TestGenerateAllBenchmarksValid(t *testing.T) {
	for _, name := range Benchmarks {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := GenerateBenchmark(name)
			if err != nil {
				t.Fatalf("GenerateBenchmark(%s): %v", name, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("generated program invalid: %v", err)
			}
			s := ir.Collect(p)
			if s.Ops < 100 {
				t.Errorf("%s: only %d ops generated", name, s.Ops)
			}
			if s.CondBr == 0 {
				t.Errorf("%s: no conditional branches", name)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	prof := MustProfile("compress")
	p1 := MustGenerate(prof)
	p2 := MustGenerate(prof)
	if p1.NumBlocks() != p2.NumBlocks() {
		t.Fatalf("block counts differ: %d vs %d", p1.NumBlocks(), p2.NumBlocks())
	}
	for i := 0; i < p1.NumBlocks(); i++ {
		b1, b2 := p1.Block(i), p2.Block(i)
		if len(b1.Instrs) != len(b2.Instrs) {
			t.Fatalf("block %d instr counts differ", i)
		}
		for j := range b1.Instrs {
			if *b1.Instrs[j] != *b2.Instrs[j] {
				t.Fatalf("block %d instr %d differs: %v vs %v",
					i, j, b1.Instrs[j], b2.Instrs[j])
			}
		}
		if b1.TakenTarget != b2.TakenTarget || b1.FallTarget != b2.FallTarget ||
			b1.TakenProb != b2.TakenProb {
			t.Fatalf("block %d control flow differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	prof := MustProfile("compress")
	prof2 := prof
	prof2.Seed++
	p1 := MustGenerate(prof)
	p2 := MustGenerate(prof2)
	if p1.NumBlocks() == p2.NumBlocks() && p1.NumOps() == p2.NumOps() {
		// Extremely unlikely if the seed is actually used.
		t.Error("different seeds produced structurally identical programs")
	}
}

func TestFootprintOrdering(t *testing.T) {
	// gcc/vortex/perl must dwarf compress: the Fig. 13 capacity effect
	// needs large-footprint benchmarks.
	small := ir.Collect(MustGenerate(MustProfile("compress"))).Ops
	for _, big := range []string{"gcc", "vortex", "perl"} {
		n := ir.Collect(MustGenerate(MustProfile(big))).Ops
		if n < 4*small {
			t.Errorf("%s has %d ops, want ≥ 4x compress's %d", big, n, small)
		}
	}
}

func TestOpMixTracksProfile(t *testing.T) {
	prof := MustProfile("ijpeg")
	p := MustGenerate(prof)
	s := ir.Collect(p)
	memFrac := float64(s.ByType[isa.TypeMemory]) / float64(s.Ops)
	if math.Abs(memFrac-prof.MemFrac) > 0.10 {
		t.Errorf("memory fraction %.3f, profile wants %.3f", memFrac, prof.MemFrac)
	}
	if s.ByType[isa.TypeFloat] == 0 && prof.FPFrac > 0 {
		t.Error("profile has FP fraction but program has no FP ops")
	}
}

func TestBranchProbabilitiesInRange(t *testing.T) {
	p := MustGenerate(MustProfile("go"))
	unbiased := 0
	cond := 0
	for _, b := range p.Blocks() {
		term := b.Terminator()
		if term == nil || (term.Code != isa.OpBRCT && term.Code != isa.OpBRCF) {
			continue
		}
		cond++
		if b.TakenProb <= 0 || b.TakenProb >= 1 {
			t.Fatalf("block %d: taken prob %g outside (0,1)", b.ID, b.TakenProb)
		}
		if b.TakenProb > 0.3 && b.TakenProb < 0.7 {
			unbiased++
		}
	}
	if cond == 0 {
		t.Fatal("no conditional branches generated")
	}
	// go's profile is mostly unbiased; at least a quarter of branches
	// should be near coin flips.
	if float64(unbiased)/float64(cond) < 0.25 {
		t.Errorf("go: only %d/%d branches unbiased", unbiased, cond)
	}
}

func TestPredicateVirtualsAvoidP0(t *testing.T) {
	p := MustGenerate(MustProfile("compress"))
	for _, b := range p.Blocks() {
		for _, in := range b.Instrs {
			if in.Dest.Class == ir.ClassPred && in.Dest.N == 0 {
				t.Fatalf("block %d: instruction defines p0: %v", b.ID, in)
			}
		}
	}
}

func TestCallsFormDAG(t *testing.T) {
	p := MustGenerate(MustProfile("vortex"))
	calls := 0
	for _, b := range p.Blocks() {
		if t := b.Terminator(); t != nil && t.Code == isa.OpCALL {
			calls++
			if b.Callee <= b.Fn {
				tFail(b)
			}
		}
	}
	if calls == 0 {
		t.Error("vortex generated no calls")
	}
}

func tFail(b *ir.Block) {
	panic("call does not target a later function: block " + itoa(b.ID))
}

func TestProfileValidation(t *testing.T) {
	bad := MustProfile("compress")
	bad.WorkingSet = 1
	if _, err := Generate(bad); err == nil {
		t.Error("Generate accepted WorkingSet=1")
	}
	bad = MustProfile("compress")
	bad.Funcs = 0
	if _, err := Generate(bad); err == nil {
		t.Error("Generate accepted Funcs=0")
	}
	if _, err := GenerateBenchmark("nonesuch"); err == nil {
		t.Error("GenerateBenchmark accepted unknown name")
	}
}

func TestAllProfilesValid(t *testing.T) {
	for _, name := range Benchmarks {
		prof := MustProfile(name)
		if err := prof.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
		if prof.Name != name {
			t.Errorf("profile %s has Name %q", name, prof.Name)
		}
	}
}

func TestImmediatePoolRedundancy(t *testing.T) {
	p := MustGenerate(MustProfile("compress"))
	seen := map[int32]int{}
	total := 0
	for _, b := range p.Blocks() {
		for _, in := range b.Instrs {
			if in.Code == isa.OpLDI && in.Type == isa.TypeInt {
				seen[in.Imm]++
				total++
			}
		}
	}
	if total == 0 {
		t.Fatal("no load-immediates generated")
	}
	prof := MustProfile("compress")
	if len(seen) > prof.ImmPool {
		t.Errorf("%d distinct immediates exceed pool size %d", len(seen), prof.ImmPool)
	}
}
