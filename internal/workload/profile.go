// Package workload generates synthetic SPECint95-class TEPIC programs.
//
// The paper compiles the SPECint95 benchmarks with the LEGO optimizing
// compiler. Those sources and that compiler are not available here, so
// this package substitutes a profile-driven program generator: for each of
// the eight benchmark names the paper plots, a Profile captures the
// statistical structure that the compression and IFetch results actually
// depend on — operation mix, basic-block size distribution, loop nesting
// and trip counts, branch bias (predictability), register pressure,
// immediate-value redundancy, and static code footprint. Generation is
// fully deterministic given the profile's seed.
//
// Profiles are calibrated so the reproduced figures have the paper's shape:
// compress/go/ijpeg/m88ksim carry poorly-biased branches and modest
// footprints (so the Compressed scheme's extra misprediction penalty
// hurts), while gcc/li/perl/vortex carry large footprints and predictable
// branches (so compressed-cache capacity wins).
package workload

import "fmt"

// Profile parameterizes the synthetic program generator for one benchmark.
type Profile struct {
	Name string
	Seed int64

	// Static structure.
	Funcs          int    // number of functions
	RegionsPerFunc [2]int // min,max structured regions per function body
	OpsPerBlock    [2]int // min,max non-terminator ops per block
	LoopDepthMax   int    // maximum loop nesting depth
	LoopFrac       float64
	DiamondFrac    float64
	CallFrac       float64

	// Dynamic behaviour.
	AvgTrip    float64 // mean loop trip count
	BiasedFrac float64 // fraction of conditional branches that are strongly biased
	BiasedProb float64 // taken probability of a biased branch
	DynBlocks  int     // default dynamic trace length, in blocks
	// Phases is the number of distinct entry functions the dynamic trace
	// rotates through when the current phase returns. Kernel-style
	// benchmarks (compress, ijpeg) run one phase; large applications
	// (gcc, vortex) cycle through many, which is what gives them their
	// big dynamic instruction working sets.
	Phases int

	// Operation mix.
	FPFrac        float64 // floating-point fraction of compute ops
	MemFrac       float64 // memory fraction of all ops
	CmpFrac       float64 // standalone compare-to-predicate fraction
	LdiFrac       float64 // load-immediate fraction
	PredGuardFrac float64 // ops guarded by a non-p0 predicate

	// Value structure.
	WorkingSet int // register working-set size (redundancy knob)
	ImmPool    int // number of distinct immediate values
}

// Validate reports obviously inconsistent profiles.
func (p *Profile) Validate() error {
	switch {
	case p.Funcs < 1:
		return fmt.Errorf("workload: profile %s: Funcs < 1", p.Name)
	case p.RegionsPerFunc[0] < 1 || p.RegionsPerFunc[1] < p.RegionsPerFunc[0]:
		return fmt.Errorf("workload: profile %s: bad RegionsPerFunc", p.Name)
	case p.OpsPerBlock[0] < 1 || p.OpsPerBlock[1] < p.OpsPerBlock[0]:
		return fmt.Errorf("workload: profile %s: bad OpsPerBlock", p.Name)
	case p.AvgTrip < 1:
		return fmt.Errorf("workload: profile %s: AvgTrip < 1", p.Name)
	case p.WorkingSet < 2:
		return fmt.Errorf("workload: profile %s: WorkingSet < 2", p.Name)
	case p.ImmPool < 1:
		return fmt.Errorf("workload: profile %s: ImmPool < 1", p.Name)
	case p.DynBlocks < 1:
		return fmt.Errorf("workload: profile %s: DynBlocks < 1", p.Name)
	case p.Phases < 1 || p.Phases > p.Funcs:
		return fmt.Errorf("workload: profile %s: Phases outside [1, Funcs]", p.Name)
	}
	return nil
}

// Benchmarks lists the eight SPECint95 benchmark names used throughout the
// paper's evaluation, in the order the figures plot them.
var Benchmarks = []string{
	"compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex",
}

// profiles holds the calibrated per-benchmark generation parameters.
var profiles = map[string]Profile{
	// compress: tiny kernel-ish code, short blocks, data-dependent branches
	// (poor predictability). Fits the 16 KB cache almost entirely.
	"compress": {
		Name: "compress", Seed: 9501,
		Funcs: 6, RegionsPerFunc: [2]int{4, 8}, OpsPerBlock: [2]int{5, 12},
		LoopDepthMax: 2, LoopFrac: 0.30, DiamondFrac: 0.45, CallFrac: 0.06,
		AvgTrip: 14, BiasedFrac: 0.35, BiasedProb: 0.88, DynBlocks: 400000, Phases: 1,
		FPFrac: 0.00, MemFrac: 0.24, CmpFrac: 0.07, LdiFrac: 0.10,
		PredGuardFrac: 0.05, WorkingSet: 10, ImmPool: 24,
	},
	// gcc: very large footprint, many functions, long-ish blocks, well
	// biased branches (error paths rarely taken).
	"gcc": {
		Name: "gcc", Seed: 9502,
		Funcs: 120, RegionsPerFunc: [2]int{6, 14}, OpsPerBlock: [2]int{4, 12},
		LoopDepthMax: 2, LoopFrac: 0.14, DiamondFrac: 0.52, CallFrac: 0.18,
		AvgTrip: 7, BiasedFrac: 0.86, BiasedProb: 0.94, DynBlocks: 400000, Phases: 36,
		FPFrac: 0.01, MemFrac: 0.28, CmpFrac: 0.08, LdiFrac: 0.13,
		PredGuardFrac: 0.08, WorkingSet: 16, ImmPool: 96,
	},
	// go: branch-heavy game-tree search with unpredictable outcomes and a
	// sizable footprint.
	"go": {
		Name: "go", Seed: 9503,
		Funcs: 22, RegionsPerFunc: [2]int{4, 9}, OpsPerBlock: [2]int{5, 12},
		LoopDepthMax: 2, LoopFrac: 0.18, DiamondFrac: 0.60, CallFrac: 0.10,
		AvgTrip: 5, BiasedFrac: 0.25, BiasedProb: 0.85, DynBlocks: 400000, Phases: 1,
		FPFrac: 0.00, MemFrac: 0.22, CmpFrac: 0.10, LdiFrac: 0.11,
		PredGuardFrac: 0.07, WorkingSet: 14, ImmPool: 64,
	},
	// ijpeg: loop nests over image data; branches inside loops are
	// data-dependent, trips are long; moderate footprint.
	"ijpeg": {
		Name: "ijpeg", Seed: 9504,
		Funcs: 22, RegionsPerFunc: [2]int{5, 10}, OpsPerBlock: [2]int{8, 16},
		LoopDepthMax: 3, LoopFrac: 0.36, DiamondFrac: 0.35, CallFrac: 0.07,
		AvgTrip: 24, BiasedFrac: 0.35, BiasedProb: 0.87, DynBlocks: 400000, Phases: 1,
		FPFrac: 0.04, MemFrac: 0.30, CmpFrac: 0.06, LdiFrac: 0.10,
		PredGuardFrac: 0.06, WorkingSet: 12, ImmPool: 40,
	},
	// li: lisp interpreter — many small functions, heavy call traffic,
	// biased type-dispatch branches, large-ish footprint.
	"li": {
		Name: "li", Seed: 9505,
		Funcs: 70, RegionsPerFunc: [2]int{3, 8}, OpsPerBlock: [2]int{4, 9},
		LoopDepthMax: 1, LoopFrac: 0.10, DiamondFrac: 0.58, CallFrac: 0.18,
		AvgTrip: 4, BiasedFrac: 0.85, BiasedProb: 0.94, DynBlocks: 400000, Phases: 20,
		FPFrac: 0.00, MemFrac: 0.30, CmpFrac: 0.09, LdiFrac: 0.12,
		PredGuardFrac: 0.05, WorkingSet: 12, ImmPool: 48,
	},
	// m88ksim: CPU simulator main loop — decode switch behaves like
	// unpredictable indirect-ish branches; modest footprint.
	"m88ksim": {
		Name: "m88ksim", Seed: 9506,
		Funcs: 30, RegionsPerFunc: [2]int{4, 9}, OpsPerBlock: [2]int{5, 12},
		LoopDepthMax: 2, LoopFrac: 0.20, DiamondFrac: 0.55, CallFrac: 0.09,
		AvgTrip: 8, BiasedFrac: 0.30, BiasedProb: 0.86, DynBlocks: 400000, Phases: 1,
		FPFrac: 0.01, MemFrac: 0.26, CmpFrac: 0.09, LdiFrac: 0.12,
		PredGuardFrac: 0.06, WorkingSet: 13, ImmPool: 56,
	},
	// perl: interpreter dispatch plus string loops; large footprint,
	// fairly predictable dispatch fast paths.
	"perl": {
		Name: "perl", Seed: 9507,
		Funcs: 90, RegionsPerFunc: [2]int{5, 12}, OpsPerBlock: [2]int{4, 10},
		LoopDepthMax: 2, LoopFrac: 0.16, DiamondFrac: 0.50, CallFrac: 0.20,
		AvgTrip: 9, BiasedFrac: 0.85, BiasedProb: 0.94, DynBlocks: 400000, Phases: 24,
		FPFrac: 0.01, MemFrac: 0.29, CmpFrac: 0.08, LdiFrac: 0.13,
		PredGuardFrac: 0.07, WorkingSet: 15, ImmPool: 80,
	},
	// vortex: OO database — the largest footprint, deep call chains,
	// highly biased validity checks.
	"vortex": {
		Name: "vortex", Seed: 9508,
		Funcs: 140, RegionsPerFunc: [2]int{5, 12}, OpsPerBlock: [2]int{4, 11},
		LoopDepthMax: 2, LoopFrac: 0.12, DiamondFrac: 0.58, CallFrac: 0.16,
		AvgTrip: 6, BiasedFrac: 0.88, BiasedProb: 0.95, DynBlocks: 400000, Phases: 24,
		FPFrac: 0.00, MemFrac: 0.31, CmpFrac: 0.08, LdiFrac: 0.12,
		PredGuardFrac: 0.06, WorkingSet: 16, ImmPool: 88,
	},
}

// ProfileFor returns the calibrated profile for a benchmark name.
func ProfileFor(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// MustProfile is ProfileFor for names known to exist; it panics otherwise.
func MustProfile(name string) Profile {
	p, ok := ProfileFor(name)
	if !ok {
		panic("workload: unknown benchmark " + name)
	}
	return p
}
