package workload

import (
	"math"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Generate builds a deterministic synthetic program from a profile. Two
// calls with the same profile produce identical programs.
func Generate(prof Profile) (*ir.Program, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := &gen{
		prof: prof,
		r:    rand.New(rand.NewSource(prof.Seed)),
	}
	g.buildImmPool()
	funcs := make([]*ir.Func, prof.Funcs)
	for fi := 0; fi < prof.Funcs; fi++ {
		funcs[fi] = g.genFunc(fi)
	}
	p := ir.NewProgram(prof.Name, funcs)
	for _, fx := range g.fixups {
		if fx.taken {
			fx.from.TakenTarget = fx.to.ID
		} else {
			fx.from.FallTarget = fx.to.ID
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustGenerate is Generate for profiles known to be valid.
func MustGenerate(prof Profile) *ir.Program {
	p, err := Generate(prof)
	if err != nil {
		panic(err)
	}
	return p
}

// GenerateBenchmark generates the calibrated program for one of the eight
// SPECint95 benchmark names.
func GenerateBenchmark(name string) (*ir.Program, error) {
	prof, ok := ProfileFor(name)
	if !ok {
		return nil, errUnknownBenchmark(name)
	}
	return Generate(prof)
}

type errUnknownBenchmark string

func (e errUnknownBenchmark) Error() string {
	return "workload: unknown benchmark " + string(e)
}

// fixup records a control-flow edge to resolve once block IDs exist.
type fixup struct {
	from  *ir.Block
	taken bool
	to    *ir.Block
}

// exits collects the dangling edges of a generated region: blocks whose
// fall-through (or taken) edge must point at whatever comes next.
type exits struct {
	fall  []*ir.Block
	taken []*ir.Block
}

func (e *exits) merge(o exits) {
	e.fall = append(e.fall, o.fall...)
	e.taken = append(e.taken, o.taken...)
}

type gen struct {
	prof Profile
	r    *rand.Rand

	immPool []int32
	fixups  []fixup

	// Per-function state.
	fnIdx  int
	blocks []*ir.Block
	gpr    *regPool
	fpr    *regPool
	prd    *regPool
	nextV  [4]int // next virtual register number per class
}

// buildImmPool samples the program's immediate-value pool: a redundant mix
// of small constants, powers of two and a few arbitrary literals, matching
// the heavily skewed immediate distributions of real embedded code.
func (g *gen) buildImmPool() {
	pool := make([]int32, 0, g.prof.ImmPool)
	for i := 0; len(pool) < g.prof.ImmPool; i++ {
		var v int32
		switch {
		case i < 8:
			v = int32(i) // 0..7
		case i%3 == 0:
			v = 1 << uint(g.r.Intn(16)) // powers of two
		case i%3 == 1:
			v = int32(g.r.Intn(256)) // small constants
		default:
			v = int32(g.r.Intn(1 << 20)) // arbitrary 20-bit literal
		}
		pool = append(pool, v)
	}
	g.immPool = pool
}

// pickImm draws an immediate with a rank-skewed (Zipf-like) distribution
// over the pool: low-rank values dominate.
func (g *gen) pickImm() int32 {
	u := g.r.Float64()
	idx := int(u * u * float64(len(g.immPool)))
	if idx >= len(g.immPool) {
		idx = len(g.immPool) - 1
	}
	return g.immPool[idx]
}

// regPool models a register working set: a bounded ring of recently
// defined virtual registers. Picking is biased toward recent definitions,
// which creates the def-use chains the scheduler sees in real code and the
// operand redundancy the compression schemes depend on.
type regPool struct {
	class ir.RegClass
	ring  []int
	r     *rand.Rand
}

func newRegPool(class ir.RegClass, size int, r *rand.Rand) *regPool {
	return &regPool{class: class, ring: make([]int, 0, size), r: r}
}

func (p *regPool) add(n int) {
	if len(p.ring) == cap(p.ring) {
		copy(p.ring, p.ring[1:])
		p.ring[len(p.ring)-1] = n
		return
	}
	p.ring = append(p.ring, n)
}

func (p *regPool) empty() bool { return len(p.ring) == 0 }

// pick returns a register from the working set, mildly biased toward
// recent definitions. The bias creates realistic def-use chains without
// serializing whole blocks (which would crush MOP density).
func (p *regPool) pick() ir.Reg {
	if len(p.ring) == 0 {
		return ir.Reg{Class: p.class, N: 0}
	}
	u := p.r.Float64()
	idx := len(p.ring) - 1 - int(u*math.Sqrt(u)*float64(len(p.ring)))
	if idx < 0 {
		idx = 0
	}
	return ir.Reg{Class: p.class, N: p.ring[idx]}
}

// genFunc generates one function body as a sequence of structured regions
// followed by a return block.
func (g *gen) genFunc(fi int) *ir.Func {
	g.fnIdx = fi
	g.blocks = nil
	g.gpr = newRegPool(ir.ClassGPR, g.prof.WorkingSet, g.r)
	g.fpr = newRegPool(ir.ClassFPR, max(2, g.prof.WorkingSet/2), g.r)
	g.prd = newRegPool(ir.ClassPred, 4, g.r)
	g.nextV = [4]int{}
	// Predicate virtual 0 would alias the architectural always-true p0,
	// so predicate virtual numbering starts at 1.
	g.nextV[ir.ClassPred] = 1

	// Seed the working sets with "incoming parameter" definitions so the
	// first blocks have sources to read.
	seed := g.newBlock()
	for i := 0; i < 4; i++ {
		g.emitLdi(seed)
	}
	pending := exits{fall: []*ir.Block{seed}}

	// main (function 0) is the workload driver: it is larger and fans out
	// through extra call sites, so dynamic traces cover a realistic
	// fraction of the program instead of one small function.
	n := g.intBetween(g.prof.RegionsPerFunc)
	if fi == 0 {
		n *= 3
	}
	for i := 0; i < n; i++ {
		entry, ex := g.genRegion(0)
		g.patch(pending, entry)
		pending = ex
	}

	retb := g.newBlock()
	g.fillOps(retb, g.intBetween([2]int{1, 3}))
	retb.Instrs = append(retb.Instrs, &ir.Instr{
		Type: isa.TypeBranch, Code: isa.OpRET, Pred: ir.PredTrue,
	})
	retb.TakenTarget = ir.NoTarget
	retb.FallTarget = ir.NoTarget
	g.patch(pending, retb)

	name := "main"
	if fi > 0 {
		name = "f" + itoa(fi)
	}
	return &ir.Func{Name: name, Blocks: g.blocks}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func (g *gen) newBlock() *ir.Block {
	b := &ir.Block{
		TakenTarget: ir.NoTarget,
		FallTarget:  ir.NoTarget,
		Callee:      ir.NoTarget,
	}
	g.blocks = append(g.blocks, b)
	return b
}

func (g *gen) patch(ex exits, to *ir.Block) {
	for _, b := range ex.fall {
		g.fixups = append(g.fixups, fixup{from: b, taken: false, to: to})
	}
	for _, b := range ex.taken {
		g.fixups = append(g.fixups, fixup{from: b, taken: true, to: to})
	}
}

func (g *gen) intBetween(mm [2]int) int {
	if mm[1] <= mm[0] {
		return mm[0]
	}
	return mm[0] + g.r.Intn(mm[1]-mm[0]+1)
}

// genRegion generates one structured region and returns its entry block
// plus the edges that must be patched to the region's successor.
func (g *gen) genRegion(depth int) (*ir.Block, exits) {
	callFrac := g.prof.CallFrac
	if g.fnIdx == 0 {
		callFrac *= 2.5 // the driver fans out
	}
	u := g.r.Float64()
	switch {
	case depth < g.prof.LoopDepthMax && u < g.prof.LoopFrac:
		return g.genLoop(depth)
	case u < g.prof.LoopFrac+g.prof.DiamondFrac:
		return g.genDiamond(depth)
	case g.fnIdx < g.prof.Funcs-1 && u < g.prof.LoopFrac+g.prof.DiamondFrac+callFrac:
		return g.genCall()
	default:
		return g.genPlain()
	}
}

// genPlain: a single straightline block falling through.
func (g *gen) genPlain() (*ir.Block, exits) {
	b := g.newBlock()
	g.fillOps(b, g.intBetween(g.prof.OpsPerBlock))
	return b, exits{fall: []*ir.Block{b}}
}

// genDiamond: a conditional block whose taken edge skips a then-region.
//
//	C: ...ops... cmpp pN; brct pN -> join
//	T: ...then region...
//	join (successor)
func (g *gen) genDiamond(depth int) (*ir.Block, exits) {
	c := g.newBlock()
	g.fillOps(c, g.intBetween(g.prof.OpsPerBlock))
	g.emitCondBranch(c, g.branchProb())

	tEntry, tEx := g.genRegion(depth + 1)
	g.fixups = append(g.fixups, fixup{from: c, taken: false, to: tEntry})

	var ex exits
	ex.taken = append(ex.taken, c) // brct skips the then-region
	ex.merge(tEx)
	return c, ex
}

// genLoop: a body region followed by a latch whose taken edge closes the
// loop back to the body entry.
func (g *gen) genLoop(depth int) (*ir.Block, exits) {
	bodyEntry, bodyEx := g.genRegion(depth + 1)
	latch := g.newBlock()
	g.fillOps(latch, g.intBetween(g.prof.OpsPerBlock))
	// Loop-closing branch: taken with probability 1 - 1/trip.
	trip := g.prof.AvgTrip * (0.5 + g.r.Float64())
	if trip < 1.5 {
		trip = 1.5
	}
	g.emitCondBranch(latch, 1-1/trip)
	g.patch(bodyEx, latch)
	g.fixups = append(g.fixups, fixup{from: latch, taken: true, to: bodyEntry})
	return bodyEntry, exits{fall: []*ir.Block{latch}}
}

// genCall: a block ending in a call to a later (higher-index) function;
// execution resumes at the fall-through edge.
func (g *gen) genCall() (*ir.Block, exits) {
	b := g.newBlock()
	g.fillOps(b, g.intBetween(g.prof.OpsPerBlock))
	callee := g.fnIdx + 1 + g.r.Intn(g.prof.Funcs-g.fnIdx-1)
	b.Instrs = append(b.Instrs, &ir.Instr{
		Type: isa.TypeBranch, Code: isa.OpCALL,
		Src1: g.gpr.pick(), Pred: ir.PredTrue,
	})
	b.Callee = callee
	b.TakenTarget = ir.NoTarget
	return b, exits{fall: []*ir.Block{b}}
}

// branchProb samples the taken probability of a conditional branch: with
// probability BiasedFrac the branch is strongly biased (predictable), and
// otherwise it is close to a coin flip (unpredictable).
func (g *gen) branchProb() float64 {
	if g.r.Float64() < g.prof.BiasedFrac {
		p := g.prof.BiasedProb + 0.04*(g.r.Float64()-0.5)
		if g.r.Intn(2) == 0 {
			p = 1 - p // biased not-taken is just as predictable
		}
		return clamp01(p)
	}
	return clamp01(0.5 + 0.2*(g.r.Float64()-0.5))
}

func clamp01(p float64) float64 {
	if p < 0.02 {
		return 0.02
	}
	if p > 0.98 {
		return 0.98
	}
	return p
}

// emitCondBranch appends "cmpp -> pN; brct pN" to the block and records
// the taken probability. The branch-target register is a recently defined
// GPR, standing in for TEPIC's prepared branch-target registers.
func (g *gen) emitCondBranch(b *ir.Block, takenProb float64) {
	p := g.defReg(g.prd, ir.ClassPred)
	b.Instrs = append(b.Instrs, &ir.Instr{
		Type: isa.TypeInt, Code: g.pickCmp(),
		Src1: g.gpr.pick(), Src2: g.gpr.pick(),
		Dest: p, Pred: ir.PredTrue, BHWX: isa.SizeWord,
	})
	b.Instrs = append(b.Instrs, &ir.Instr{
		Type: isa.TypeBranch, Code: isa.OpBRCT,
		Src1: g.gpr.pick(), Pred: p,
	})
	b.TakenProb = takenProb
}

// defReg allocates a fresh virtual register of a class and enters it into
// the working set.
func (g *gen) defReg(pool *regPool, class ir.RegClass) ir.Reg {
	n := g.nextV[class]
	g.nextV[class]++
	pool.add(n)
	return ir.Reg{Class: class, N: n}
}

func (g *gen) emitLdi(b *ir.Block) {
	b.Instrs = append(b.Instrs, &ir.Instr{
		Type: isa.TypeInt, Code: isa.OpLDI,
		Imm:  g.pickImm(),
		Dest: g.defReg(g.gpr, ir.ClassGPR),
		Pred: ir.PredTrue,
	})
}

// fillOps generates n non-terminator operations into the block, following
// the profile's operation mix.
func (g *gen) fillOps(b *ir.Block, n int) {
	for i := 0; i < n; i++ {
		u := g.r.Float64()
		switch {
		case u < g.prof.LdiFrac:
			g.emitLdi(b)
		case u < g.prof.LdiFrac+g.prof.MemFrac:
			g.emitMem(b)
		case u < g.prof.LdiFrac+g.prof.MemFrac+g.prof.CmpFrac:
			b.Instrs = append(b.Instrs, &ir.Instr{
				Type: isa.TypeInt, Code: g.pickCmp(),
				Src1: g.gpr.pick(), Src2: g.gpr.pick(),
				Dest: g.defReg(g.prd, ir.ClassPred),
				Pred: ir.PredTrue, BHWX: isa.SizeWord,
			})
		case u < g.prof.LdiFrac+g.prof.MemFrac+g.prof.CmpFrac+g.prof.FPFrac:
			g.emitFP(b)
		default:
			g.emitIntALU(b)
		}
	}
}

func (g *gen) guard() ir.Reg {
	if !g.prd.empty() && g.r.Float64() < g.prof.PredGuardFrac {
		return g.prd.pick()
	}
	return ir.PredTrue
}

func (g *gen) pickBHWX() uint8 {
	u := g.r.Float64()
	switch {
	case u < 0.85:
		return isa.SizeWord
	case u < 0.95:
		return isa.SizeByte
	default:
		return isa.SizeHalf
	}
}

func (g *gen) emitIntALU(b *ir.Block) {
	code := g.pickWeighted(intALUWeights)
	in := &ir.Instr{
		Type: isa.TypeInt, Code: code,
		Src1: g.gpr.pick(), Src2: g.gpr.pick(),
		Dest: g.defReg(g.gpr, ir.ClassGPR),
		Pred: g.guard(), BHWX: g.pickBHWX(),
	}
	b.Instrs = append(b.Instrs, in)
}

func (g *gen) emitFP(b *ir.Block) {
	if g.fpr.empty() {
		// Materialize an FP value first (int->float conversion).
		b.Instrs = append(b.Instrs, &ir.Instr{
			Type: isa.TypeFloat, Code: isa.OpFCVT,
			Src1: g.gpr.pick(),
			Dest: g.defReg(g.fpr, ir.ClassFPR),
			Pred: ir.PredTrue,
		})
		return
	}
	code := g.pickWeighted(fpWeights)
	b.Instrs = append(b.Instrs, &ir.Instr{
		Type: isa.TypeFloat, Code: code,
		Src1: g.fpr.pick(), Src2: g.fpr.pick(),
		Dest: g.defReg(g.fpr, ir.ClassFPR),
		Pred: g.guard(),
	})
}

func (g *gen) emitMem(b *ir.Block) {
	u := g.r.Float64()
	switch {
	case u < 0.62: // load
		b.Instrs = append(b.Instrs, &ir.Instr{
			Type: isa.TypeMemory, Code: isa.OpLD,
			Src1: g.gpr.pick(),
			Dest: g.defReg(g.gpr, ir.ClassGPR),
			Pred: g.guard(), BHWX: g.pickBHWX(),
		})
	case u < 0.92: // store
		b.Instrs = append(b.Instrs, &ir.Instr{
			Type: isa.TypeMemory, Code: isa.OpST,
			Src1: g.gpr.pick(), Src2: g.gpr.pick(),
			Pred: g.guard(), BHWX: g.pickBHWX(),
		})
	case g.prof.FPFrac > 0 && !g.fpr.empty() && u < 0.96: // fp store
		b.Instrs = append(b.Instrs, &ir.Instr{
			Type: isa.TypeMemory, Code: isa.OpFST,
			Src1: g.gpr.pick(), Src2: g.fpr.pick(),
			Pred: ir.PredTrue, BHWX: isa.SizeWord,
		})
	case g.prof.FPFrac > 0: // fp load
		b.Instrs = append(b.Instrs, &ir.Instr{
			Type: isa.TypeMemory, Code: isa.OpFLD,
			Src1: g.gpr.pick(),
			Dest: g.defReg(g.fpr, ir.ClassFPR),
			Pred: ir.PredTrue, BHWX: isa.SizeWord,
		})
	default: // speculative load
		b.Instrs = append(b.Instrs, &ir.Instr{
			Type: isa.TypeMemory, Code: isa.OpLDS,
			Src1: g.gpr.pick(),
			Dest: g.defReg(g.gpr, ir.ClassGPR),
			Pred: ir.PredTrue, BHWX: g.pickBHWX(),
		})
	}
}

type opWeight struct {
	code isa.Opcode
	w    int
}

var intALUWeights = []opWeight{
	{isa.OpADD, 30}, {isa.OpSUB, 10}, {isa.OpMOV, 12}, {isa.OpAND, 5},
	{isa.OpOR, 5}, {isa.OpXOR, 3}, {isa.OpSHL, 7}, {isa.OpSHR, 5},
	{isa.OpSRA, 2}, {isa.OpMUL, 5}, {isa.OpNOT, 2}, {isa.OpMIN, 1},
	{isa.OpMAX, 1}, {isa.OpABS, 1},
}

var cmpWeights = []opWeight{
	{isa.OpCMPEQ, 25}, {isa.OpCMPNE, 20}, {isa.OpCMPLT, 25},
	{isa.OpCMPLE, 8}, {isa.OpCMPGT, 14}, {isa.OpCMPGE, 8},
}

var fpWeights = []opWeight{
	{isa.OpFADD, 28}, {isa.OpFSUB, 12}, {isa.OpFMUL, 30}, {isa.OpFDIV, 5},
	{isa.OpFMOV, 10}, {isa.OpFABS, 3}, {isa.OpFNEG, 3}, {isa.OpFCVT, 9},
}

func (g *gen) pickWeighted(ws []opWeight) isa.Opcode {
	total := 0
	for _, w := range ws {
		total += w.w
	}
	n := g.r.Intn(total)
	for _, w := range ws {
		n -= w.w
		if n < 0 {
			return w.code
		}
	}
	return ws[len(ws)-1].code
}

func (g *gen) pickCmp() isa.Opcode { return g.pickWeighted(cmpWeights) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
