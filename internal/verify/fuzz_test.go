package verify

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/image"
)

// FuzzVerifyImage feeds mutated encoded images through the image pass:
// whatever the bytes, the verifier must come back with a report — never a
// panic. This is the property that makes it safe to run over untrusted
// or corrupted ROMs.
func FuzzVerifyImage(f *testing.F) {
	sp := cleanSched()
	enc, err := compress.NewFullHuffman(sp)
	if err != nil {
		f.Fatal(err)
	}
	im, err := image.Build(sp, enc)
	if err != nil {
		f.Fatal(err)
	}
	base, err := image.Build(sp, compress.NewBase())
	if err != nil {
		f.Fatal(err)
	}
	if im.ATT, err = image.BuildATT(base, im); err != nil {
		f.Fatal(err)
	}

	f.Add(im.Data)            // pristine image
	f.Add([]byte{})           // empty ROM
	f.Add([]byte{0xFF, 0x00}) // truncated garbage
	f.Add(im.Data[:len(im.Data)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		mutated := *im
		mutated.Data = data
		mutated.CodeBytes = len(data)
		rep := Image(&mutated, sp, enc, ImageOpts{RequireATT: true})
		// The pristine seed must verify clean; anything else just reports.
		if string(data) == string(im.Data) && !rep.OK() {
			t.Errorf("pristine image flagged: %v", rep.Diags)
		}
	})
}
