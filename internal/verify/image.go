package verify

import (
	"sort"

	"repro/internal/bitio"
	"repro/internal/compress"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/sched"
)

// ImageOpts parameterizes the image pass.
type ImageOpts struct {
	// Order is the block placement the image was built with; nil means
	// the natural (block ID) order. When set, the order itself is
	// validated and addresses must be monotonic along it; the ATT
	// sortedness check (which only holds under natural placement) is
	// skipped.
	Order layout.Order
	// RequireATT demands a translation table (every non-base image needs
	// one for the ATB to work).
	RequireATT bool
}

// Image verifies an encoded program image and its ATT against the
// scheduled program: per-block extents within the data, no overlaps or
// gaps, op/MOP counts matching the schedule, every block decodable back
// to its scheduled operations, and the ATT sorted, consistent with the
// image, non-overlapping, round-trippable through its ROM wire format,
// and covering every branch target.
func Image(im *image.Image, sp *sched.Program, enc compress.Encoder, opts ImageOpts) *Report {
	stage := "image:" + im.Scheme
	rep := &Report{}

	if len(im.Blocks) != len(sp.Blocks) {
		rep.Errorf(stage, CheckImgBlockCount, NoPos,
			"image has %d blocks, program has %d", len(im.Blocks), len(sp.Blocks))
		return rep
	}
	placement := checkExtents(rep, stage, im)
	checkCounts(rep, stage, im, sp)
	checkOrder(rep, stage, im, sp, opts.Order, placement)
	checkDecode(rep, stage, im, sp, enc)
	checkATT(rep, stage, im, sp, opts)
	return rep
}

// checkExtents verifies block extents and tiling, returning the blocks
// sorted by address (the physical placement).
func checkExtents(rep *Report, stage string, im *image.Image) []int {
	placement := make([]int, len(im.Blocks))
	for i := range placement {
		placement[i] = i
	}
	sort.Slice(placement, func(x, y int) bool {
		a, b := im.Blocks[placement[x]], im.Blocks[placement[y]]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.ID < b.ID
	})
	end := 0
	for _, i := range placement {
		b := im.Blocks[i]
		pos := At(b.ID)
		if b.Addr < 0 || b.Bytes < 0 || b.Addr+b.Bytes > im.CodeBytes {
			rep.Errorf(stage, CheckImgExtent, pos,
				"extent [%d,%d) outside the %d-byte image", b.Addr, b.Addr+b.Bytes, im.CodeBytes)
			continue
		}
		if b.Addr < end {
			rep.Errorf(stage, CheckImgOverlap, pos,
				"block starts at %d inside the previous block (ends %d)", b.Addr, end)
		} else if b.Addr > end {
			rep.Warnf(stage, CheckImgGap, pos,
				"%d unaccounted bytes before the block at %d", b.Addr-end, b.Addr)
		}
		if e := b.Addr + b.Bytes; e > end {
			end = e
		}
	}
	if end < im.CodeBytes {
		rep.Warnf(stage, CheckImgGap, NoPos,
			"%d unaccounted bytes at the end of the image", im.CodeBytes-end)
	}
	return placement
}

func checkCounts(rep *Report, stage string, im *image.Image, sp *sched.Program) {
	for i, b := range im.Blocks {
		sb := sp.Blocks[i]
		if b.ID != sb.ID {
			rep.Errorf(stage, CheckImgCounts, At(sb.ID),
				"image block at index %d has ID %d", i, b.ID)
		}
		if b.Ops != len(sb.Ops) || b.MOPs != len(sb.MOPs) {
			rep.Errorf(stage, CheckImgCounts, At(sb.ID),
				"image records %d ops / %d MOPs, schedule has %d / %d",
				b.Ops, b.MOPs, len(sb.Ops), len(sb.MOPs))
		}
	}
}

// checkOrder verifies the image's physical placement matches the
// declared layout order (natural when order is nil).
func checkOrder(rep *Report, stage string, im *image.Image, sp *sched.Program,
	order layout.Order, placement []int) {
	if order == nil {
		order = layout.Identity(sp)
	} else if err := order.Validate(sp); err != nil {
		rep.Errorf(stage, CheckImgOrder, NoPos, "%v", err)
		return
	}
	if len(placement) != len(order) {
		return // block-count mismatch already reported
	}
	for pi, id := range order {
		if placement[pi] != id {
			rep.Errorf(stage, CheckImgOrder, At(id),
				"position %d holds block %d, layout order expects %d",
				pi, placement[pi], id)
			return
		}
	}
}

func checkDecode(rep *Report, stage string, im *image.Image, sp *sched.Program,
	enc compress.Encoder) {
	r := bitio.NewReader(im.Data)
	for i, sb := range sp.Blocks {
		ib := im.Blocks[i]
		if err := r.SeekBit(ib.Addr * 8); err != nil {
			rep.Errorf(stage, CheckImgDecode, At(sb.ID), "%v", err)
			continue
		}
		ops, err := enc.DecodeBlock(r, len(sb.Ops))
		if err != nil {
			rep.Errorf(stage, CheckImgDecode,
				Pos{Func: -1, Block: sb.ID, Op: -1, Bit: ib.Addr * 8},
				"block does not decode: %v", err)
			continue
		}
		for j := range ops {
			if ops[j] != sb.Ops[j] {
				rep.Errorf(stage, CheckImgDecode, AtOp(sb.ID, j),
					"decoded %s, schedule has %s", ops[j].String(), sb.Ops[j].String())
				break
			}
		}
	}
}

func checkATT(rep *Report, stage string, im *image.Image, sp *sched.Program, opts ImageOpts) {
	att := im.ATT
	if att == nil {
		if opts.RequireATT {
			rep.Errorf(stage, CheckATTMissing, NoPos,
				"scheme %s image carries no address translation table", im.Scheme)
		}
		return
	}
	if len(att.Entries) != len(im.Blocks) {
		rep.Errorf(stage, CheckATTCount, NoPos,
			"ATT has %d entries for %d blocks", len(att.Entries), len(im.Blocks))
		return
	}

	for i, e := range att.Entries {
		if i > 0 && opts.Order == nil && e.Orig <= att.Entries[i-1].Orig {
			rep.Errorf(stage, CheckATTSorted, At(i),
				"original address %d not above predecessor's %d",
				e.Orig, att.Entries[i-1].Orig)
		}
		ib := im.Blocks[i]
		if e.Enc != ib.Addr || e.Bytes != ib.Bytes || e.Ops != ib.Ops || e.MOPs != ib.MOPs {
			rep.Errorf(stage, CheckATTEntry, At(i),
				"entry (enc %d, %d B, %d ops, %d MOPs) disagrees with image block (%d, %d, %d, %d)",
				e.Enc, e.Bytes, e.Ops, e.MOPs, ib.Addr, ib.Bytes, ib.Ops, ib.MOPs)
		}
	}

	// Translated ranges must not overlap: sort by encoded address.
	byEnc := make([]int, len(att.Entries))
	for i := range byEnc {
		byEnc[i] = i
	}
	sort.Slice(byEnc, func(x, y int) bool {
		return att.Entries[byEnc[x]].Enc < att.Entries[byEnc[y]].Enc
	})
	for k := 1; k < len(byEnc); k++ {
		prev, cur := att.Entries[byEnc[k-1]], att.Entries[byEnc[k]]
		if cur.Enc < prev.Enc+prev.Bytes {
			rep.Errorf(stage, CheckATTOverlap, At(byEnc[k]),
				"translated range [%d,%d) overlaps block %d's [%d,%d)",
				cur.Enc, cur.Enc+cur.Bytes, byEnc[k-1], prev.Enc, prev.Enc+prev.Bytes)
		}
	}

	// Every branch target must have a translatable entry.
	n := len(att.Entries)
	for _, b := range sp.Blocks {
		if b.TakenTarget != ir.NoTarget && (b.TakenTarget < 0 || b.TakenTarget >= n) {
			rep.Errorf(stage, CheckATTTarget, At(b.ID),
				"taken target %d has no ATT entry (table holds %d)", b.TakenTarget, n)
		}
		if b.FallTarget != ir.NoTarget && (b.FallTarget < 0 || b.FallTarget >= n) {
			rep.Errorf(stage, CheckATTTarget, At(b.ID),
				"fall target %d has no ATT entry (table holds %d)", b.FallTarget, n)
		}
		if b.EndsInCall() && b.Callee >= 0 && b.Callee < len(sp.FuncEntries) {
			if e := sp.FuncEntries[b.Callee]; e < 0 || e >= n {
				rep.Errorf(stage, CheckATTTarget, At(b.ID),
					"callee entry %d has no ATT entry (table holds %d)", e, n)
			}
		}
	}

	// The table must survive its ROM wire format.
	raw := image.SerializeATT(att.Entries)
	back, err := image.ParseATT(raw, len(att.Entries))
	if err != nil {
		rep.Errorf(stage, CheckATTRoundTrip, NoPos, "wire format does not parse back: %v", err)
		return
	}
	for i := range back {
		if back[i] != att.Entries[i] {
			rep.Errorf(stage, CheckATTRoundTrip, At(i),
				"entry changed across serialize/parse: %+v != %+v", back[i], att.Entries[i])
			return
		}
	}
}
