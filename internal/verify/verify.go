package verify

import (
	"repro/internal/compress"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/sched"
	"repro/internal/scheme"
)

// Artifact bundles one scheme's encoded outputs for Pipeline.
type Artifact struct {
	Scheme string
	Enc    compress.Encoder
	Im     *image.Image
	// Order is the block placement Im was built with (nil = natural).
	Order layout.Order
}

// Pipeline runs every verifier pass over a compiled pipeline: the IR
// (when available), the schedule, and each artifact's encoding and
// image. Self-indexed schemes (the base encoding, per the scheme
// registry) are exempt from the ATT requirement — uncompressed code
// needs no address translation.
func Pipeline(p *ir.Program, sp *sched.Program, arts []Artifact) *Report {
	rep := &Report{}
	if p != nil {
		rep.Merge(IR(p, true))
	}
	if sp != nil {
		rep.Merge(Schedule(sp, p))
		for _, a := range arts {
			if a.Enc != nil {
				rep.Merge(Encoding(sp, a.Enc))
			}
			if a.Im != nil && a.Enc != nil {
				requireATT := true
				if sc, ok := scheme.Lookup(a.Scheme); ok {
					requireATT = !sc.SelfIndexed
				}
				rep.Merge(Image(a.Im, sp, a.Enc, ImageOpts{
					Order:      a.Order,
					RequireATT: requireATT,
				}))
			}
		}
	}
	rep.Sort()
	return rep
}
