package verify

import (
	"math"

	"repro/internal/ir"
	"repro/internal/isa"
)

// fileSize returns the architectural file size for a register class, or
// -1 when the class has no file (ClassNone).
func fileSize(c ir.RegClass) int {
	switch c {
	case ir.ClassGPR:
		return isa.NumGPR
	case ir.ClassFPR:
		return isa.NumFPR
	case ir.ClassPred:
		return isa.NumPred
	}
	return -1
}

// IR verifies a program's CFG and instruction-level invariants: block
// identity, opcode definedness, terminator placement, target existence,
// guard predicates, register classes, probability ranges, per-function
// entry reachability and (when profile counts are present) flow
// conservation. With allocated set, register numbers must also fit their
// architectural files.
func IR(p *ir.Program, allocated bool) *Report {
	const stage = "ir"
	rep := &Report{}
	nblocks := p.NumBlocks()

	for fi, f := range p.Funcs {
		for _, b := range f.Blocks {
			pos := Pos{Func: fi, Block: b.ID, Op: -1, Bit: -1}
			if b.ID < 0 || b.ID >= nblocks || p.Block(b.ID) != b {
				rep.Errorf(stage, CheckIRBlockID, pos,
					"block ID %d does not match its layout index", b.ID)
				continue
			}
			checkInstrs(rep, b, fi, allocated)
			checkTerminator(rep, p, b, fi)
			if b.FallTarget != ir.NoTarget && (b.FallTarget < 0 || b.FallTarget >= nblocks) {
				rep.Errorf(stage, CheckIRFallTarget, pos,
					"fall target %d outside [0,%d)", b.FallTarget, nblocks)
			}
			if b.TakenProb < 0 || b.TakenProb > 1 || math.IsNaN(b.TakenProb) {
				rep.Errorf(stage, CheckIRProbRange, pos,
					"taken probability %g outside [0,1]", b.TakenProb)
			}
		}
		checkReachability(rep, p, f, fi)
	}
	checkFlow(rep, p)
	return rep
}

func checkInstrs(rep *Report, b *ir.Block, fi int, allocated bool) {
	const stage = "ir"
	for j, in := range b.Instrs {
		pos := Pos{Func: fi, Block: b.ID, Op: j, Bit: -1}
		if _, ok := isa.Lookup(in.Type, in.Code); !ok {
			rep.Errorf(stage, CheckIROpcode, pos,
				"undefined opcode %v/%d", in.Type, in.Code)
			continue
		}
		if in.IsBranch() && j != len(b.Instrs)-1 {
			rep.Errorf(stage, CheckIRBranchNotLast, pos,
				"branch %s at position %d of %d is not the terminator",
				in.Info().Name, j, len(b.Instrs))
		}
		if in.Pred.IsValid() && in.Pred.Class != ir.ClassPred {
			rep.Errorf(stage, CheckIRRegClass, pos,
				"guard predicate %v is not a predicate register", in.Pred)
		}
		if in.Info().Format == isa.FmtIntCmpp && in.Dest.IsValid() &&
			in.Dest.Class != ir.ClassPred {
			rep.Errorf(stage, CheckIRRegClass, pos,
				"cmpp destination %v is not a predicate register", in.Dest)
		}
		if allocated {
			for _, r := range [...]ir.Reg{in.Src1, in.Src2, in.Dest, in.Pred} {
				if !r.IsValid() {
					continue
				}
				if size := fileSize(r.Class); size > 0 && (r.N < 0 || r.N >= size) {
					rep.Errorf(stage, CheckIRRegBound, pos,
						"register %v outside the %d-entry %v file", r, size, r.Class)
				}
			}
		}
	}
}

func checkTerminator(rep *Report, p *ir.Program, b *ir.Block, fi int) {
	const stage = "ir"
	t := b.Terminator()
	if t == nil {
		return
	}
	pos := Pos{Func: fi, Block: b.ID, Op: len(b.Instrs) - 1, Bit: -1}
	switch t.Code {
	case isa.OpBRCT, isa.OpBRCF:
		if !t.Pred.IsValid() || t.Pred == ir.PredTrue {
			rep.Errorf(stage, CheckIRCondGuard, pos,
				"conditional branch %s without a guard predicate", t.Info().Name)
		}
	case isa.OpCALL:
		if b.Callee < 0 || b.Callee >= len(p.Funcs) {
			rep.Errorf(stage, CheckIRCallee, pos,
				"call to undefined function %d of %d", b.Callee, len(p.Funcs))
		}
	}
	if t.Code != isa.OpRET && t.Code != isa.OpCALL {
		if b.TakenTarget < 0 || b.TakenTarget >= p.NumBlocks() {
			rep.Errorf(stage, CheckIRTakenTarget, pos,
				"taken target %d outside [0,%d)", b.TakenTarget, p.NumBlocks())
		}
	}
}

// checkReachability walks intra-function edges from the function entry
// and warns about blocks no path reaches.
func checkReachability(rep *Report, p *ir.Program, f *ir.Func, fi int) {
	if len(f.Blocks) == 0 {
		return
	}
	inFunc := map[int]bool{}
	for _, b := range f.Blocks {
		inFunc[b.ID] = true
	}
	seen := map[int]bool{f.Entry().ID: true}
	work := []int{f.Entry().ID}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		if id < 0 || id >= p.NumBlocks() {
			continue
		}
		for _, s := range p.Block(id).Succs() {
			if inFunc[s] && !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	for _, b := range f.Blocks {
		if !seen[b.ID] {
			rep.Warnf("ir", CheckIRUnreachable, Pos{Func: fi, Block: b.ID, Op: -1, Bit: -1},
				"block unreachable from %s's entry", f.Name)
		}
	}
}

// checkFlow verifies profile-count conservation: each block's execution
// count should match the probability-weighted inflow from its CFG
// predecessors. Only meaningful when counts were annotated (all-zero
// profiles skip the check); entry blocks are exempt (their flow arrives
// through calls or from outside the program).
func checkFlow(rep *Report, p *ir.Program) {
	any := false
	for _, b := range p.Blocks() {
		if b.ExecCount != 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	entries := map[int]bool{}
	for _, f := range p.Funcs {
		if len(f.Blocks) > 0 {
			entries[f.Entry().ID] = true
		}
	}
	inflow := make([]float64, p.NumBlocks())
	for _, b := range p.Blocks() {
		if b.ExecCount == 0 {
			continue
		}
		w := float64(b.ExecCount)
		hasTaken := false
		if t := b.Terminator(); t != nil && t.Code != isa.OpCALL && t.Code != isa.OpRET &&
			b.TakenTarget >= 0 && b.TakenTarget < p.NumBlocks() {
			inflow[b.TakenTarget] += w * b.TakenProb
			hasTaken = true
		}
		if b.FallTarget != ir.NoTarget && b.FallTarget >= 0 && b.FallTarget < p.NumBlocks() {
			fw := w
			if hasTaken {
				fw = w * (1 - b.TakenProb)
			}
			inflow[b.FallTarget] += fw
		}
	}
	for _, b := range p.Blocks() {
		if entries[b.ID] || b.ExecCount == 0 {
			continue
		}
		got := float64(b.ExecCount)
		want := inflow[b.ID]
		// Stochastic profiles are conserved only in expectation; flag
		// mismatches beyond 10% plus slack for low-count blocks.
		if diff := math.Abs(got - want); diff > 0.10*got+16 {
			rep.Warnf("ir", CheckIRFlow, At(b.ID),
				"execution count %d but predecessor inflow %.0f", b.ExecCount, want)
		}
	}
}
