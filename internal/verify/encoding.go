package verify

import (
	"errors"
	"sort"

	"repro/internal/bitio"
	"repro/internal/compress"
	"repro/internal/huffman"
	"repro/internal/sched"
	"repro/internal/tailor"
)

// Encoding verifies a scheme's encoding artifacts against the scheduled
// program: every Huffman table must be canonical, prefix-free and
// Kraft-consistent with all codes inside the length limit; every symbol
// the program emits must be covered; the encoder's size accounting must
// match the bits it writes; and tailored field widths must fit every
// emitted value.
func Encoding(sp *sched.Program, enc compress.Encoder) *Report {
	stage := "encoding:" + enc.Name()
	rep := &Report{}

	for ti, tab := range enc.Tables() {
		syms := tab.Symbols()
		codes := make([]huffman.Code, len(syms))
		for i, s := range syms {
			codes[i], _ = tab.CodeFor(s)
		}
		CheckCodes(stage, ti, syms, codes, compress.CodeLenLimit, rep)
	}

	tl, _ := enc.(*tailor.Tailored)
	for _, b := range sp.Blocks {
		if len(b.Ops) == 0 {
			continue
		}
		if tl != nil {
			for i := range b.Ops {
				if err := tl.ValidateOp(&b.Ops[i]); err != nil {
					check := CheckTailorWidth
					if errors.Is(err, tailor.ErrNotInISA) {
						check = CheckTailorOpcode
					}
					rep.Errorf(stage, check, AtOp(b.ID, i), "%v", err)
				}
			}
		}
		var w bitio.Writer
		if err := enc.EncodeBlock(&w, b.Ops); err != nil {
			if tl == nil { // tailored failures are already attributed per op
				rep.Errorf(stage, CheckEncCoverage, At(b.ID),
					"block not encodable: %v", err)
			}
			continue
		}
		if got, want := w.BitLen(), enc.BlockBits(b.Ops); got != want {
			rep.Errorf(stage, CheckEncSize, At(b.ID),
				"encoder wrote %d bits but BlockBits reports %d", got, want)
		}
	}
	return rep
}

// CheckCodes verifies one code table given as parallel symbol/codeword
// slices: symbols unique, lengths within limit, codewords prefix-free,
// Kraft sum not above 1 (with slack warned about), and the assignment
// canonical (increasing (length, symbol) order). It is exported so tests
// and tools can verify tables that did not come from package huffman's
// constructors. table indexes the scheme's dictionary (0 for
// single-table schemes).
func CheckCodes(stage string, table int, syms []uint64, codes []huffman.Code, limit int, rep *Report) {
	if len(syms) != len(codes) {
		rep.Errorf(stage, CheckHuffDup, NoPos,
			"table %d: %d symbols but %d codes", table, len(syms), len(codes))
		return
	}
	if len(syms) == 0 {
		return
	}

	seen := map[uint64]int{}
	kraft := 0.0
	for i, s := range syms {
		c := codes[i]
		if prev, dup := seen[s]; dup {
			rep.Errorf(stage, CheckHuffDup, Pos{Func: -1, Block: -1, Op: -1, Bit: -1},
				"table %d: symbol %d appears at entries %d and %d", table, s, prev, i)
		}
		seen[s] = i
		if c.Len < 1 || c.Len > limit {
			rep.Errorf(stage, CheckHuffMaxLen, NoPos,
				"table %d: symbol %d has %d-bit code, limit %d", table, s, c.Len, limit)
			continue
		}
		kraft += 1 / float64(uint64(1)<<uint(c.Len))
	}

	// Prefix-freeness: sort codewords lexicographically (left-aligned);
	// any prefix relation then appears between neighbours.
	order := make([]int, len(codes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := codes[order[x]], codes[order[y]]
		la, lb := a.Bits<<uint(64-a.Len), b.Bits<<uint(64-b.Len)
		if la != lb {
			return la < lb
		}
		return a.Len < b.Len
	})
	for k := 1; k < len(order); k++ {
		a, b := codes[order[k-1]], codes[order[k]]
		if a.Len <= b.Len && a.Len > 0 && b.Len <= 64 &&
			b.Bits>>uint(b.Len-a.Len) == a.Bits {
			rep.Errorf(stage, CheckHuffPrefix, NoPos,
				"table %d: code of symbol %d (%0*b) is a prefix of symbol %d's (%0*b)",
				table, syms[order[k-1]], a.Len, a.Bits, syms[order[k]], b.Len, b.Bits)
		}
	}

	if kraft > 1+1e-9 {
		rep.Errorf(stage, CheckHuffKraftOver, NoPos,
			"table %d: Kraft sum %.6f exceeds 1", table, kraft)
	} else if kraft < 1-1e-9 && len(syms) > 1 {
		rep.Warnf(stage, CheckHuffKraftSlack, NoPos,
			"table %d: Kraft sum %.6f below 1 wastes code space", table, kraft)
	}

	checkCanonical(stage, table, syms, codes, rep)
}

// checkCanonical recomputes the canonical assignment from the code
// lengths and compares: codewords must be assigned in increasing
// (length, symbol) order with the standard (code+1)<<Δ recurrence.
func checkCanonical(stage string, table int, syms []uint64, codes []huffman.Code, rep *Report) {
	order := make([]int, len(syms))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		if codes[order[x]].Len != codes[order[y]].Len {
			return codes[order[x]].Len < codes[order[y]].Len
		}
		return syms[order[x]] < syms[order[y]]
	})
	code := uint64(0)
	prevLen := 0
	for _, i := range order {
		l := codes[i].Len
		if l < 1 || l > 64 {
			return // already reported by the length check
		}
		code <<= uint(l - prevLen)
		if codes[i].Bits != code {
			rep.Errorf(stage, CheckHuffCanonical, NoPos,
				"table %d: symbol %d has code %0*b, canonical assignment is %0*b",
				table, syms[i], l, codes[i].Bits, l, code)
			return
		}
		code++
		prevLen = l
	}
}
