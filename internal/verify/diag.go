// Package verify is the pipeline's machine verifier, modeled on LLVM's
// MachineVerifier: a diagnostic-producing static-analysis pass over every
// artifact the toolchain emits — the IR/CFG, the VLIW schedule, the
// Huffman/tailored encoding tables, and the program images with their
// Address Translation Tables.
//
// The compiler owns the code image end-to-end here (that is the paper's
// premise), so a single silent invariant violation — a non-prefix-free
// table, a missing tail bit, an ATT entry that does not cover a branch
// target — corrupts every downstream figure. Each check has a stable
// CheckID so tests, tooling and CI can assert on exactly which invariant
// broke; diagnostics carry artifact positions (function, block, op, bit
// offset) and render as text or JSON.
//
// Entry points mirror the pipeline stages: IR, Schedule, Encoding and
// Image, with Pipeline running all of them over a set of encoded
// artifacts. cmd/tepiclint is the command-line driver; cmd/tepiccc -verify
// runs the same checks inline after each stage.
package verify

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Severity classifies a diagnostic: errors are invariant violations that
// make downstream artifacts untrustworthy; warnings flag suspicious but
// survivable states (unreachable code, slack in a code space).
type Severity uint8

// The two severities.
const (
	SevWarn Severity = iota
	SevError
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// MarshalJSON renders the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// CheckID is the stable identifier of one verifier check. IDs are part of
// the tool's interface: tests and CI pin them, DESIGN.md catalogs them.
type CheckID string

// IR/CFG checks.
const (
	// CheckIRBlockID: a block's global ID must equal its layout index.
	CheckIRBlockID CheckID = "ir-block-id"
	// CheckIROpcode: every instruction's (type, opcode) pair must be defined.
	CheckIROpcode CheckID = "ir-opcode"
	// CheckIRBranchNotLast: a branch may only be a block's last instruction.
	CheckIRBranchNotLast CheckID = "ir-branch-not-last"
	// CheckIRTakenTarget: taken targets must name an existing block.
	CheckIRTakenTarget CheckID = "ir-taken-target"
	// CheckIRFallTarget: fall-through targets must name an existing block.
	CheckIRFallTarget CheckID = "ir-fall-target"
	// CheckIRCondGuard: conditional branches must carry a guard predicate.
	CheckIRCondGuard CheckID = "ir-cond-guard"
	// CheckIRCallee: calls must name an existing function.
	CheckIRCallee CheckID = "ir-callee"
	// CheckIRRegClass: operands must use the register class their position
	// demands (guards and cmpp destinations are predicate registers).
	CheckIRRegClass CheckID = "ir-reg-class"
	// CheckIRRegBound: post-allocation register numbers must fit their
	// architectural file (32 GPR / 32 FPR / 32 predicate).
	CheckIRRegBound CheckID = "ir-reg-bound"
	// CheckIRProbRange: annotated taken probabilities must lie in [0,1].
	CheckIRProbRange CheckID = "ir-prob-range"
	// CheckIRUnreachable (warning): every block should be reachable from
	// its function's entry.
	CheckIRUnreachable CheckID = "ir-unreachable"
	// CheckIRFlow (warning): profile execution counts should be conserved
	// across CFG edges (inflow ≈ block count).
	CheckIRFlow CheckID = "ir-flow"
)

// MOP/schedule checks.
const (
	// CheckMOPEmpty: a MOP must contain at least one operation.
	CheckMOPEmpty CheckID = "mop-empty"
	// CheckMOPWidth: a MOP may issue at most IssueWidth operations.
	CheckMOPWidth CheckID = "mop-width"
	// CheckMOPMemUnits: a MOP may issue at most MemUnits memory operations.
	CheckMOPMemUnits CheckID = "mop-mem-units"
	// CheckMOPTail: the tail bit must be set on exactly the last operation
	// of every MOP.
	CheckMOPTail CheckID = "mop-tail"
	// CheckMOPOpField: every operation's fields must fit the bit widths of
	// its format (isa.Op.Format) and its opcode must be defined.
	CheckMOPOpField CheckID = "mop-op-field"
	// CheckMOPFlatten: a block's flat op sequence must equal its MOPs
	// flattened in order.
	CheckMOPFlatten CheckID = "mop-flatten"
	// CheckMOPBranchNotLast: a branch may only be a block's last operation.
	CheckMOPBranchNotLast CheckID = "mop-branch-not-last"
	// CheckMOPTarget: scheduled control-flow targets must name existing
	// blocks, and a block with a taken target must end in a branch.
	CheckMOPTarget CheckID = "mop-target"
	// CheckMOPFuncEntry: every function entry must name an existing block.
	CheckMOPFuncEntry CheckID = "mop-func-entry"
	// CheckMOPAgainstIR: the schedule must carry exactly the IR's
	// instructions and control flow (op counts, targets, callees).
	CheckMOPAgainstIR CheckID = "mop-against-ir"
)

// Encoding checks.
const (
	// CheckHuffCanonical: codewords must follow the canonical assignment
	// determined by their lengths.
	CheckHuffCanonical CheckID = "enc-huff-canonical"
	// CheckHuffPrefix: no codeword may be a prefix of another.
	CheckHuffPrefix CheckID = "enc-huff-prefix"
	// CheckHuffKraftOver: the Kraft sum must not exceed 1 (codes would
	// collide).
	CheckHuffKraftOver CheckID = "enc-huff-kraft-over"
	// CheckHuffKraftSlack (warning): a Kraft sum below 1 wastes code space
	// (single-symbol alphabets are exempt).
	CheckHuffKraftSlack CheckID = "enc-huff-kraft-slack"
	// CheckHuffMaxLen: no codeword may exceed the scheme's length limit.
	CheckHuffMaxLen CheckID = "enc-huff-maxlen"
	// CheckHuffDup: a symbol may appear only once in a table.
	CheckHuffDup CheckID = "enc-huff-dup"
	// CheckEncCoverage: every symbol the program emits must be encodable
	// under the scheme's tables.
	CheckEncCoverage CheckID = "enc-coverage"
	// CheckEncSize: an encoder's size accounting (BlockBits) must agree
	// with the bits it actually writes.
	CheckEncSize CheckID = "enc-size"
	// CheckTailorOpcode: every emitted (type, opcode) pair must exist in
	// the tailored ISA.
	CheckTailorOpcode CheckID = "enc-tailor-opcode"
	// CheckTailorWidth: every emitted field value must fit its tailored
	// width (or match its hardwired constant).
	CheckTailorWidth CheckID = "enc-tailor-width"
)

// Image/ATT/layout checks.
const (
	// CheckImgBlockCount: the image must describe every program block.
	CheckImgBlockCount CheckID = "img-block-count"
	// CheckImgExtent: every block's [Addr, Addr+Bytes) must lie within the
	// image data.
	CheckImgExtent CheckID = "img-extent"
	// CheckImgOverlap: no two blocks may overlap in the image.
	CheckImgOverlap CheckID = "img-overlap"
	// CheckImgGap (warning): blocks should tile the image without gaps.
	CheckImgGap CheckID = "img-gap"
	// CheckImgCounts: per-block op/MOP counts must match the schedule.
	CheckImgCounts CheckID = "img-counts"
	// CheckImgDecode: every block must decode back to its scheduled
	// operations.
	CheckImgDecode CheckID = "img-decode"
	// CheckImgOrder: blocks must be placed in the declared layout order.
	CheckImgOrder CheckID = "img-order"
	// CheckATTMissing: every non-base image must carry an ATT.
	CheckATTMissing CheckID = "att-missing"
	// CheckATTCount: the ATT must hold one entry per block.
	CheckATTCount CheckID = "att-count"
	// CheckATTSorted: under natural layout, original addresses must be
	// strictly increasing (the ATB's lookup order).
	CheckATTSorted CheckID = "att-sorted"
	// CheckATTOverlap: translated (encoded) ranges must not overlap.
	CheckATTOverlap CheckID = "att-overlap"
	// CheckATTEntry: every entry must agree with the image block it
	// translates to (address, size, op/MOP counts).
	CheckATTEntry CheckID = "att-entry"
	// CheckATTTarget: every branch target must be translatable (have an
	// in-range ATT entry).
	CheckATTTarget CheckID = "att-target"
	// CheckATTRoundTrip: the ATT must survive its ROM wire format.
	CheckATTRoundTrip CheckID = "att-roundtrip"
	// CheckATBInfo: the per-block table uploaded into the ATB must name
	// existing fall-through blocks.
	CheckATBInfo CheckID = "atb-info"
)

// Simulation checks (internal/simcheck): dynamic cross-checks of the
// IFetch simulator — a differential diff against an independent
// analytical oracle, intra-result accounting identities, metamorphic
// invariants across configuration perturbations, and a fault-injection
// matrix asserting typed rejection of malformed inputs.
const (
	// CheckSimOracle: every counter of a simulation result must equal the
	// analytical oracle's independent recomputation exactly.
	CheckSimOracle CheckID = "sim-oracle"
	// CheckSimIdentity: a result's counters must satisfy the pipeline's
	// conservation laws (L0 filter accounting, line-granular bus volume).
	CheckSimIdentity CheckID = "sim-identity"
	// CheckSimMetaPerfect: perfect next-block prediction must never
	// increase cycles and must record zero mispredictions.
	CheckSimMetaPerfect CheckID = "sim-meta-perfect"
	// CheckSimMetaLRU: growing associativity at fixed sets must never
	// increase misses or fetched lines (the LRU stack property).
	CheckSimMetaLRU CheckID = "sim-meta-lru"
	// CheckSimMetaAdditive: replaying a self-concatenated trace must
	// yield exactly additive operation counts.
	CheckSimMetaAdditive CheckID = "sim-meta-additive"
	// CheckSimFault: injected faults (corrupt images, malformed traces,
	// degenerate geometries) must be rejected with the documented typed
	// error — never accepted, never a panic.
	CheckSimFault CheckID = "sim-fault"
	// CheckSimStream: the incremental (RunStream) and window-sharded
	// (RunSharded) replays of a trace must be bit-identical — every
	// counter, including BitFlips and ATBHitRate — to the sequential
	// Sim.Run, and match the analytical oracle's streaming recomputation.
	CheckSimStream CheckID = "sim-stream"
)

// Pos locates a diagnostic within an artifact. Fields are -1 when not
// applicable; Bit is a bit offset within the containing operation or
// image (check-dependent).
type Pos struct {
	Func  int `json:"func"`
	Block int `json:"block"`
	Op    int `json:"op"`
	Bit   int `json:"bit"`
}

// NoPos is the position of artifact-global diagnostics.
var NoPos = Pos{Func: -1, Block: -1, Op: -1, Bit: -1}

// At returns a block-level position.
func At(block int) Pos { return Pos{Func: -1, Block: block, Op: -1, Bit: -1} }

// AtOp returns an op-level position.
func AtOp(block, op int) Pos { return Pos{Func: -1, Block: block, Op: op, Bit: -1} }

// String renders the position compactly, e.g. "fn2/b14/op3".
func (p Pos) String() string {
	s := ""
	if p.Func >= 0 {
		s += fmt.Sprintf("fn%d", p.Func)
	}
	if p.Block >= 0 {
		if s != "" {
			s += "/"
		}
		s += fmt.Sprintf("b%d", p.Block)
	}
	if p.Op >= 0 {
		if s != "" {
			s += "/"
		}
		s += fmt.Sprintf("op%d", p.Op)
	}
	if p.Bit >= 0 {
		if s != "" {
			s += "/"
		}
		s += fmt.Sprintf("bit%d", p.Bit)
	}
	if s == "" {
		return "-"
	}
	return s
}

// Diag is one verifier finding.
type Diag struct {
	Check CheckID  `json:"check"`
	Sev   Severity `json:"severity"`
	Stage string   `json:"stage"` // "ir", "sched", "encoding:full", "image:full", ...
	Pos   Pos      `json:"pos"`
	Msg   string   `json:"msg"`
}

// String renders the diagnostic on one line.
func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: [%s] %s: %s", d.Stage, d.Sev, d.Check, d.Pos, d.Msg)
}

// Report collects diagnostics across verifier passes.
type Report struct {
	Diags []Diag
}

// Errorf records an error diagnostic.
func (r *Report) Errorf(stage string, check CheckID, pos Pos, format string, args ...any) {
	r.Diags = append(r.Diags, Diag{Check: check, Sev: SevError, Stage: stage,
		Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Warnf records a warning diagnostic.
func (r *Report) Warnf(stage string, check CheckID, pos Pos, format string, args ...any) {
	r.Diags = append(r.Diags, Diag{Check: check, Sev: SevWarn, Stage: stage,
		Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Merge appends another report's diagnostics.
func (r *Report) Merge(other *Report) {
	if other != nil {
		r.Diags = append(r.Diags, other.Diags...)
	}
}

// Errors counts error-severity diagnostics.
func (r *Report) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Sev == SevError {
			n++
		}
	}
	return n
}

// Warnings counts warning-severity diagnostics.
func (r *Report) Warnings() int { return len(r.Diags) - r.Errors() }

// OK reports whether the report carries no errors (warnings allowed).
func (r *Report) OK() bool { return r.Errors() == 0 }

// Has reports whether any diagnostic carries the given check ID.
func (r *Report) Has(check CheckID) bool {
	for _, d := range r.Diags {
		if d.Check == check {
			return true
		}
	}
	return false
}

// ByCheck returns every diagnostic with the given check ID.
func (r *Report) ByCheck(check CheckID) []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Check == check {
			out = append(out, d)
		}
	}
	return out
}

// Sort orders diagnostics by stage, severity (errors first), check and
// position, making output deterministic regardless of pass order.
func (r *Report) Sort() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Sev != b.Sev {
			return a.Sev > b.Sev
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Pos.Block != b.Pos.Block {
			return a.Pos.Block < b.Pos.Block
		}
		return a.Pos.Op < b.Pos.Op
	})
}

// WriteText renders the diagnostics one per line followed by a summary.
func (r *Report) WriteText(w io.Writer) error {
	for _, d := range r.Diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d error(s), %d warning(s)\n", r.Errors(), r.Warnings())
	return err
}

// jsonReport is the stable JSON envelope.
type jsonReport struct {
	Errors   int    `json:"errors"`
	Warnings int    `json:"warnings"`
	Diags    []Diag `json:"diagnostics"`
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	diags := r.Diags
	if diags == nil {
		diags = []Diag{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Errors: r.Errors(), Warnings: r.Warnings(), Diags: diags})
}
