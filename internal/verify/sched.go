package verify

import (
	"repro/internal/atb"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/sched"
)

// Schedule verifies a scheduled program's MOP and block invariants:
// exactly one tail op per MOP, issue width and memory-unit limits,
// format-field legality for every operation, flat-sequence consistency,
// terminator placement, target existence, and the validity of the
// per-block table the ATB will be loaded with. With a non-nil IR program
// it additionally cross-checks that scheduling preserved op counts and
// control flow.
func Schedule(sp *sched.Program, p *ir.Program) *Report {
	const stage = "sched"
	rep := &Report{}
	n := len(sp.Blocks)

	for fi, entry := range sp.FuncEntries {
		if entry < 0 || entry >= n {
			rep.Errorf(stage, CheckMOPFuncEntry, Pos{Func: fi, Block: -1, Op: -1, Bit: -1},
				"function entry %d outside [0,%d)", entry, n)
		}
	}

	falls := make([]int, n)
	for i, b := range sp.Blocks {
		falls[i] = b.FallTarget
		checkMOPs(rep, b)
		checkFlat(rep, b)
		checkSchedTargets(rep, sp, b)
	}
	if err := atb.ValidateInfos(atb.InfosFromFalls(falls)); err != nil {
		rep.Errorf(stage, CheckATBInfo, NoPos, "%v", err)
	}

	if p != nil {
		checkAgainstIR(rep, sp, p)
	}
	return rep
}

func checkMOPs(rep *Report, b *sched.Block) {
	const stage = "sched"
	opIdx := 0
	for mi, m := range b.MOPs {
		if len(m) == 0 {
			rep.Errorf(stage, CheckMOPEmpty, At(b.ID), "MOP %d is empty", mi)
			continue
		}
		if len(m) > isa.IssueWidth {
			rep.Errorf(stage, CheckMOPWidth, AtOp(b.ID, opIdx),
				"MOP %d issues %d ops, width is %d", mi, len(m), isa.IssueWidth)
		}
		mem := 0
		for i := range m {
			pos := AtOp(b.ID, opIdx+i)
			if isa.IsMemory(m[i].Type) {
				mem++
			}
			if wantTail := i == len(m)-1; m[i].Tail != wantTail {
				rep.Errorf(stage, CheckMOPTail, pos,
					"MOP %d op %d tail bit is %v, want %v", mi, i, m[i].Tail, wantTail)
			}
			checkOpFields(rep, b.ID, opIdx+i, &m[i])
		}
		if mem > isa.MemUnits {
			rep.Errorf(stage, CheckMOPMemUnits, AtOp(b.ID, opIdx),
				"MOP %d issues %d memory ops, only %d units", mi, mem, isa.MemUnits)
		}
		opIdx += len(m)
	}
}

// checkOpFields verifies one operation's format-field legality via its
// isa.Op.Format layout, reporting the bit offset of any offending field.
func checkOpFields(rep *Report, block, op int, o *isa.Op) {
	const stage = "sched"
	if _, ok := isa.Lookup(o.Type, o.Code); !ok {
		rep.Errorf(stage, CheckMOPOpField, AtOp(block, op),
			"undefined opcode %v/%d", o.Type, o.Code)
		return
	}
	layout := isa.Layout(o.Format())
	offs := isa.FieldOffsets(o.Format())
	vals := o.FieldValues()
	for i, fs := range layout {
		if fs.ID == isa.FieldReserved {
			continue
		}
		if uint64(vals[i]) >= 1<<uint(fs.Width) {
			rep.Errorf(stage, CheckMOPOpField,
				Pos{Func: -1, Block: block, Op: op, Bit: offs[i]},
				"field %v value %d exceeds %d bits", fs.ID, vals[i], fs.Width)
		}
	}
}

func checkFlat(rep *Report, b *sched.Block) {
	const stage = "sched"
	flat := 0
	for _, m := range b.MOPs {
		flat += len(m)
	}
	if flat != len(b.Ops) {
		rep.Errorf(stage, CheckMOPFlatten, At(b.ID),
			"%d ops across MOPs but %d in the flat sequence", flat, len(b.Ops))
		return
	}
	i := 0
	for mi, m := range b.MOPs {
		for j := range m {
			if b.Ops[i] != m[j] {
				rep.Errorf(stage, CheckMOPFlatten, AtOp(b.ID, i),
					"flat op %d differs from MOP %d op %d", i, mi, j)
				return
			}
			i++
		}
	}
}

func checkSchedTargets(rep *Report, sp *sched.Program, b *sched.Block) {
	const stage = "sched"
	n := len(sp.Blocks)
	var term *isa.Op
	for i := range b.Ops {
		if isa.IsBranch(b.Ops[i].Type) {
			if i != len(b.Ops)-1 {
				rep.Errorf(stage, CheckMOPBranchNotLast, AtOp(b.ID, i),
					"branch at op %d of %d is not the terminator", i, len(b.Ops))
			} else {
				term = &b.Ops[i]
			}
		}
	}
	isCall := term != nil && term.Code == isa.OpCALL
	isRet := term != nil && term.Code == isa.OpRET
	if term != nil && !isCall && !isRet {
		if b.TakenTarget < 0 || b.TakenTarget >= n {
			rep.Errorf(stage, CheckMOPTarget, At(b.ID),
				"taken target %d outside [0,%d)", b.TakenTarget, n)
		}
	}
	if term == nil && b.TakenTarget != ir.NoTarget {
		rep.Errorf(stage, CheckMOPTarget, At(b.ID),
			"taken target %d but the block has no branch terminator", b.TakenTarget)
	}
	if b.FallTarget != ir.NoTarget && (b.FallTarget < 0 || b.FallTarget >= n) {
		rep.Errorf(stage, CheckMOPTarget, At(b.ID),
			"fall target %d outside [0,%d)", b.FallTarget, n)
	}
	if isCall && (b.Callee < 0 || b.Callee >= len(sp.FuncEntries)) {
		rep.Errorf(stage, CheckMOPTarget, At(b.ID),
			"call to undefined function %d of %d", b.Callee, len(sp.FuncEntries))
	}
}

// checkAgainstIR cross-checks the schedule against the IR it came from:
// same block count, same per-block op count, same control-flow metadata.
func checkAgainstIR(rep *Report, sp *sched.Program, p *ir.Program) {
	const stage = "sched"
	if len(sp.Blocks) != p.NumBlocks() {
		rep.Errorf(stage, CheckMOPAgainstIR, NoPos,
			"schedule has %d blocks, IR has %d", len(sp.Blocks), p.NumBlocks())
		return
	}
	for i, sb := range sp.Blocks {
		ib := p.Block(i)
		pos := At(i)
		if sb.ID != ib.ID {
			rep.Errorf(stage, CheckMOPAgainstIR, pos,
				"scheduled block ID %d at index %d", sb.ID, i)
		}
		if len(sb.Ops) != len(ib.Instrs) {
			rep.Errorf(stage, CheckMOPAgainstIR, pos,
				"schedule has %d ops, IR has %d instructions", len(sb.Ops), len(ib.Instrs))
		}
		if sb.TakenTarget != ib.TakenTarget || sb.FallTarget != ib.FallTarget ||
			sb.Callee != ib.Callee {
			rep.Errorf(stage, CheckMOPAgainstIR, pos,
				"control flow (taken %d fall %d callee %d) differs from IR (%d %d %d)",
				sb.TakenTarget, sb.FallTarget, sb.Callee,
				ib.TakenTarget, ib.FallTarget, ib.Callee)
		}
	}
}
