package verify

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/huffman"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/layout"
	"repro/internal/sched"
)

// ---- fixtures -------------------------------------------------------------

func intOp(tail bool) isa.Op { return isa.Op{Tail: tail} } // zero value: add r0,r0 -> r0
func memOp(tail bool) isa.Op {
	return isa.Op{Tail: tail, Type: isa.TypeMemory, Code: isa.OpLD}
}
func brOp(code isa.Opcode, tail bool) isa.Op {
	return isa.Op{Tail: tail, Type: isa.TypeBranch, Code: code, Pred: 1}
}

func flatten(mops []isa.MOP) []isa.Op {
	var ops []isa.Op
	for _, m := range mops {
		ops = append(ops, m...)
	}
	return ops
}

// cleanSched builds a minimal valid two-block scheduled program: block 0
// branches to block 1, block 1 returns.
func cleanSched() *sched.Program {
	b0 := &sched.Block{
		ID: 0, Fn: 0,
		MOPs: []isa.MOP{
			{intOp(false), intOp(true)},
			{brOp(isa.OpBR, true)},
		},
		TakenTarget: 1, FallTarget: ir.NoTarget, Callee: ir.NoTarget,
		TakenProb: 1,
	}
	b1 := &sched.Block{
		ID: 1, Fn: 0,
		MOPs: []isa.MOP{
			{intOp(false), brOp(isa.OpRET, true)},
		},
		TakenTarget: ir.NoTarget, FallTarget: ir.NoTarget, Callee: ir.NoTarget,
	}
	for _, b := range []*sched.Block{b0, b1} {
		b.Ops = flatten(b.MOPs)
	}
	return &sched.Program{Name: "t", Blocks: []*sched.Block{b0, b1}, FuncEntries: []int{0}}
}

func gpr(n int) ir.Reg { return ir.Reg{Class: ir.ClassGPR, N: n} }
func prd(n int) ir.Reg { return ir.Reg{Class: ir.ClassPred, N: n} }

// cleanIR builds a minimal valid IR program mirroring cleanSched's shape.
func cleanIR() *ir.Program {
	b0 := &ir.Block{
		Instrs: []*ir.Instr{
			{Type: isa.TypeInt, Code: isa.OpADD, Src1: gpr(0), Src2: gpr(1), Dest: gpr(2), Pred: ir.PredTrue},
			{Type: isa.TypeBranch, Code: isa.OpBRCT, Pred: prd(1)},
		},
		TakenTarget: 1, FallTarget: 1, Callee: ir.NoTarget, TakenProb: 0.5,
	}
	b1 := &ir.Block{
		Instrs: []*ir.Instr{
			{Type: isa.TypeBranch, Code: isa.OpRET, Pred: ir.PredTrue},
		},
		TakenTarget: ir.NoTarget, FallTarget: ir.NoTarget, Callee: ir.NoTarget,
	}
	return ir.NewProgram("t", []*ir.Func{{Name: "main", Blocks: []*ir.Block{b0, b1}}})
}

// ---- seeded-broken IR fixtures -------------------------------------------

func TestIRCatchesBrokenFixtures(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(p *ir.Program)
		want   CheckID
		warn   bool
	}{
		{"dangling-branch-target", func(p *ir.Program) {
			p.Block(0).TakenTarget = 99
		}, CheckIRTakenTarget, false},
		{"dangling-fall-target", func(p *ir.Program) {
			p.Block(0).FallTarget = 99
		}, CheckIRFallTarget, false},
		{"branch-not-last", func(p *ir.Program) {
			b := p.Block(0)
			b.Instrs = append(b.Instrs, &ir.Instr{
				Type: isa.TypeInt, Code: isa.OpADD, Pred: ir.PredTrue})
		}, CheckIRBranchNotLast, false},
		{"undefined-opcode", func(p *ir.Program) {
			p.Block(0).Instrs[0].Code = 200
		}, CheckIROpcode, false},
		{"register-out-of-file", func(p *ir.Program) {
			p.Block(0).Instrs[0].Dest = gpr(40)
		}, CheckIRRegBound, false},
		{"guard-not-predicate", func(p *ir.Program) {
			p.Block(0).Instrs[0].Pred = gpr(1)
		}, CheckIRRegClass, false},
		{"cond-branch-unguarded", func(p *ir.Program) {
			p.Block(0).Instrs[1].Pred = ir.PredTrue
		}, CheckIRCondGuard, false},
		{"call-undefined-function", func(p *ir.Program) {
			p.Block(0).Instrs[1].Code = isa.OpCALL
			p.Block(0).Callee = 7
		}, CheckIRCallee, false},
		{"probability-out-of-range", func(p *ir.Program) {
			p.Block(0).TakenProb = 1.5
		}, CheckIRProbRange, false},
		{"block-id-mismatch", func(p *ir.Program) {
			p.Block(1).ID = 5
		}, CheckIRBlockID, false},
		{"unreachable-block", func(p *ir.Program) {
			p.Block(0).TakenTarget = 0
			p.Block(0).FallTarget = 0
		}, CheckIRUnreachable, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := cleanIR()
			if rep := IR(p, true); !rep.OK() || rep.Warnings() != 0 {
				t.Fatalf("clean fixture not clean: %v", rep.Diags)
			}
			tt.mutate(p)
			rep := IR(p, true)
			if !rep.Has(tt.want) {
				t.Fatalf("want %s, got %v", tt.want, rep.Diags)
			}
			if tt.warn && !rep.OK() {
				t.Errorf("%s should be a warning, got errors: %v", tt.want, rep.Diags)
			}
			if !tt.warn && rep.OK() {
				t.Errorf("%s should be an error, report is OK", tt.want)
			}
		})
	}
}

// ---- seeded-broken schedule fixtures -------------------------------------

func TestScheduleCatchesBrokenFixtures(t *testing.T) {
	reflatten := func(b *sched.Block) { b.Ops = flatten(b.MOPs) }
	tests := []struct {
		name   string
		mutate func(sp *sched.Program)
		want   CheckID
	}{
		{"missing-tail-bit", func(sp *sched.Program) {
			b := sp.Blocks[0]
			b.MOPs[0][1].Tail = false
			reflatten(b)
		}, CheckMOPTail},
		{"tail-bit-mid-mop", func(sp *sched.Program) {
			b := sp.Blocks[0]
			b.MOPs[0][0].Tail = true
			reflatten(b)
		}, CheckMOPTail},
		{"overwide-mop", func(sp *sched.Program) {
			b := sp.Blocks[0]
			wide := make(isa.MOP, isa.IssueWidth+1)
			for i := range wide {
				wide[i] = intOp(i == len(wide)-1)
			}
			b.MOPs[0] = wide
			reflatten(b)
		}, CheckMOPWidth},
		{"empty-mop", func(sp *sched.Program) {
			b := sp.Blocks[0]
			b.MOPs = append([]isa.MOP{{}}, b.MOPs...)
		}, CheckMOPEmpty},
		{"too-many-memory-ops", func(sp *sched.Program) {
			b := sp.Blocks[0]
			b.MOPs[0] = isa.MOP{memOp(false), memOp(false), memOp(true)}
			reflatten(b)
		}, CheckMOPMemUnits},
		{"field-overflow", func(sp *sched.Program) {
			b := sp.Blocks[0]
			b.MOPs[0][0].Src1 = 40 // 5-bit field
			reflatten(b)
		}, CheckMOPOpField},
		{"undefined-opcode", func(sp *sched.Program) {
			b := sp.Blocks[0]
			b.MOPs[0][0].Code = 200
			reflatten(b)
		}, CheckMOPOpField},
		{"flat-sequence-drift", func(sp *sched.Program) {
			sp.Blocks[0].Ops[0].Dest = 9 // MOP copy still has Dest 0
		}, CheckMOPFlatten},
		{"branch-not-last", func(sp *sched.Program) {
			b := sp.Blocks[0]
			b.MOPs = []isa.MOP{{brOp(isa.OpBR, false), intOp(true)}}
			reflatten(b)
		}, CheckMOPBranchNotLast},
		{"dangling-taken-target", func(sp *sched.Program) {
			sp.Blocks[0].TakenTarget = 99
		}, CheckMOPTarget},
		{"taken-target-without-branch", func(sp *sched.Program) {
			b := sp.Blocks[1]
			b.MOPs = []isa.MOP{{intOp(true)}}
			reflatten(b)
			b.TakenTarget = 0
		}, CheckMOPTarget},
		{"call-undefined-function", func(sp *sched.Program) {
			b := sp.Blocks[1]
			b.MOPs = []isa.MOP{{brOp(isa.OpCALL, true)}}
			reflatten(b)
			b.Callee = 7
		}, CheckMOPTarget},
		{"dangling-func-entry", func(sp *sched.Program) {
			sp.FuncEntries[0] = 42
		}, CheckMOPFuncEntry},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sp := cleanSched()
			if rep := Schedule(sp, nil); !rep.OK() {
				t.Fatalf("clean fixture not clean: %v", rep.Diags)
			}
			tt.mutate(sp)
			rep := Schedule(sp, nil)
			if !rep.Has(tt.want) {
				t.Fatalf("want %s, got %v", tt.want, rep.Diags)
			}
			if rep.OK() {
				t.Errorf("%s should be an error, report is OK", tt.want)
			}
		})
	}
}

func TestScheduleAgainstIR(t *testing.T) {
	sp := cleanSched()
	p := cleanIR()
	// The fixtures differ (op counts, fall targets), so the cross-check
	// must fire; same-shape inputs must pass.
	if rep := Schedule(sp, p); !rep.Has(CheckMOPAgainstIR) {
		t.Errorf("mismatched IR not flagged: %v", rep.Diags)
	}
}

// ---- seeded-broken Huffman tables ----------------------------------------

func TestCheckCodesCatchesBrokenTables(t *testing.T) {
	c := func(bits uint64, l int) huffman.Code { return huffman.Code{Bits: bits, Len: l} }
	tests := []struct {
		name  string
		syms  []uint64
		codes []huffman.Code
		want  CheckID
		warn  bool
	}{
		{"non-canonical", []uint64{0, 1, 2},
			// Lengths 1,2,2: canonical is 0,10,11; symbols 1 and 2 swapped.
			[]huffman.Code{c(0, 1), c(3, 2), c(2, 2)},
			CheckHuffCanonical, false},
		{"prefix-collision", []uint64{0, 1},
			[]huffman.Code{c(0, 1), c(1, 2)}, // "0" prefixes "01"
			CheckHuffPrefix, false},
		{"kraft-overfull", []uint64{0, 1, 2},
			[]huffman.Code{c(0, 1), c(1, 1), c(2, 2)},
			CheckHuffKraftOver, false},
		{"kraft-slack", []uint64{0, 1},
			[]huffman.Code{c(0, 2), c(1, 2)},
			CheckHuffKraftSlack, true},
		{"over-long-code", []uint64{0, 1},
			[]huffman.Code{c(0, 1), c(1, compress.CodeLenLimit+1)},
			CheckHuffMaxLen, false},
		{"duplicate-symbol", []uint64{7, 7},
			[]huffman.Code{c(0, 1), c(1, 1)},
			CheckHuffDup, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rep := &Report{}
			CheckCodes("test", 0, tt.syms, tt.codes, compress.CodeLenLimit, rep)
			if !rep.Has(tt.want) {
				t.Fatalf("want %s, got %v", tt.want, rep.Diags)
			}
			if tt.warn != (rep.ByCheck(tt.want)[0].Sev == SevWarn) {
				t.Errorf("%s severity wrong (warn=%v): %v", tt.want, tt.warn, rep.Diags)
			}
		})
	}

	t.Run("clean-canonical", func(t *testing.T) {
		rep := &Report{}
		CheckCodes("test", 0, []uint64{0, 1, 2},
			[]huffman.Code{c(0, 1), c(2, 2), c(3, 2)}, compress.CodeLenLimit, rep)
		if len(rep.Diags) != 0 {
			t.Errorf("clean table flagged: %v", rep.Diags)
		}
	})
}

func TestEncodingRealTables(t *testing.T) {
	sp := cleanSched()
	enc, err := compress.NewFullHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	if rep := Encoding(sp, enc); !rep.OK() {
		t.Errorf("real encoder flagged: %v", rep.Diags)
	}
}

// ---- seeded-broken images and ATTs ---------------------------------------

// buildImage encodes cleanSched under full-op Huffman and attaches an ATT.
func buildImage(t *testing.T) (*sched.Program, *compress.FullHuffman, *image.Image) {
	t.Helper()
	sp := cleanSched()
	enc, err := compress.NewFullHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	im, err := image.Build(sp, enc)
	if err != nil {
		t.Fatal(err)
	}
	base, err := image.Build(sp, compress.NewBase())
	if err != nil {
		t.Fatal(err)
	}
	if im.ATT, err = image.BuildATT(base, im); err != nil {
		t.Fatal(err)
	}
	return sp, enc, im
}

func TestImageCatchesBrokenFixtures(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(im *image.Image)
		want   CheckID
	}{
		{"corrupt-data", func(im *image.Image) {
			im.Data[0] ^= 0xFF
		}, CheckImgDecode},
		{"truncated-blocks", func(im *image.Image) {
			im.Blocks = im.Blocks[:1]
		}, CheckImgBlockCount},
		{"block-outside-image", func(im *image.Image) {
			im.Blocks[1].Addr = im.CodeBytes + 4
		}, CheckImgExtent},
		{"overlapping-blocks", func(im *image.Image) {
			im.Blocks[1].Addr = im.Blocks[0].Addr
		}, CheckImgOverlap},
		{"op-count-drift", func(im *image.Image) {
			im.Blocks[0].Ops++
		}, CheckImgCounts},
		{"att-dropped", func(im *image.Image) {
			im.ATT = nil
		}, CheckATTMissing},
		{"att-short", func(im *image.Image) {
			im.ATT.Entries = im.ATT.Entries[:1]
		}, CheckATTCount},
		{"att-unsorted", func(im *image.Image) {
			e := im.ATT.Entries
			e[0].Orig, e[1].Orig = e[1].Orig, e[0].Orig
		}, CheckATTSorted},
		{"att-entry-drift", func(im *image.Image) {
			im.ATT.Entries[1].Bytes += 3
		}, CheckATTEntry},
		{"att-enc-overlap", func(im *image.Image) {
			im.ATT.Entries[1].Enc = im.ATT.Entries[0].Enc
			im.Blocks[1].Addr = im.Blocks[0].Addr
		}, CheckATTOverlap},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sp, enc, im := buildImage(t)
			if rep := Image(im, sp, enc, ImageOpts{RequireATT: true}); !rep.OK() {
				t.Fatalf("clean fixture not clean: %v", rep.Diags)
			}
			tt.mutate(im)
			rep := Image(im, sp, enc, ImageOpts{RequireATT: true})
			if !rep.Has(tt.want) {
				t.Fatalf("want %s, got %v", tt.want, rep.Diags)
			}
			if rep.OK() {
				t.Errorf("%s should be an error, report is OK", tt.want)
			}
		})
	}
}

func TestImageUntranslatableTarget(t *testing.T) {
	sp, enc, im := buildImage(t)
	sp.Blocks[1].TakenTarget = 99 // beyond the ATT
	rep := Image(im, sp, enc, ImageOpts{RequireATT: true})
	if !rep.Has(CheckATTTarget) {
		t.Errorf("untranslatable target not flagged: %v", rep.Diags)
	}
}

func TestImageOrderMismatch(t *testing.T) {
	sp, enc, im := buildImage(t)
	// The image was built in natural order; claiming a reversed layout
	// must trip the placement check.
	rep := Image(im, sp, enc, ImageOpts{Order: layout.Order{1, 0}, RequireATT: true})
	if !rep.Has(CheckImgOrder) {
		t.Errorf("wrong placement not flagged: %v", rep.Diags)
	}
}

func TestImageOrderedLayoutClean(t *testing.T) {
	sp := cleanSched()
	enc, err := compress.NewFullHuffman(sp)
	if err != nil {
		t.Fatal(err)
	}
	order := layout.Order{1, 0}
	im, err := image.BuildOrdered(sp, enc, order)
	if err != nil {
		t.Fatal(err)
	}
	rep := Image(im, sp, enc, ImageOpts{Order: order})
	if !rep.OK() {
		t.Errorf("ordered image flagged: %v", rep.Diags)
	}
}

// ---- pipeline and report plumbing ----------------------------------------

func TestPipelineClean(t *testing.T) {
	sp, enc, im := buildImage(t)
	rep := Pipeline(nil, sp, []Artifact{{Scheme: "full", Enc: enc, Im: im}})
	if !rep.OK() {
		t.Errorf("clean pipeline flagged: %v", rep.Diags)
	}
}

func TestReportOutput(t *testing.T) {
	rep := &Report{}
	rep.Errorf("sched", CheckMOPTail, AtOp(3, 1), "missing tail")
	rep.Warnf("ir", CheckIRUnreachable, At(2), "dead block")
	if rep.Errors() != 1 || rep.Warnings() != 1 || rep.OK() {
		t.Fatalf("counts wrong: %+v", rep)
	}
	rep.Sort()

	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "[mop-tail] b3/op1") ||
		!strings.Contains(text.String(), "1 error(s), 1 warning(s)") {
		t.Errorf("text output:\n%s", text.String())
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Errors   int `json:"errors"`
		Warnings int `json:"warnings"`
		Diags    []struct {
			Check    string `json:"check"`
			Severity string `json:"severity"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Errors != 1 || parsed.Warnings != 1 || len(parsed.Diags) != 2 {
		t.Errorf("JSON envelope: %+v", parsed)
	}
	if parsed.Diags[0].Severity != "error" && parsed.Diags[1].Severity != "error" {
		t.Errorf("severity not serialized as string: %+v", parsed.Diags)
	}
}

func TestPosString(t *testing.T) {
	if got := NoPos.String(); got != "-" {
		t.Errorf("NoPos = %q", got)
	}
	p := Pos{Func: 2, Block: 14, Op: 3, Bit: -1}
	if got := p.String(); got != "fn2/b14/op3" {
		t.Errorf("Pos = %q", got)
	}
}
