package huffman

import (
	"errors"
	"io"
	"testing"

	"repro/internal/bitio"
)

// FuzzFastDecodeEquivalence builds a table from fuzz-chosen frequencies
// (optionally length-limited) and decodes a fuzz-chosen bit stream with
// both decoders: the symbol sequences, the consumed-bit offset after
// every symbol, and the terminal error (text and io.ErrUnexpectedEOF
// classification) must be identical. The raw stream makes invalid and
// truncated codewords as reachable as valid ones.
func FuzzFastDecodeEquivalence(f *testing.F) {
	f.Add([]byte{1, 1, 2, 3, 5, 8}, []byte{0xde, 0xad, 0xbe, 0xef}, uint8(0))
	f.Add([]byte{7}, []byte{0xff}, uint8(0))                 // single symbol, invalid bits
	f.Add([]byte{1, 2, 3, 4}, []byte{}, uint8(3))            // limited, empty stream
	f.Add([]byte{9, 9, 9, 1, 1, 1}, []byte{0x5a}, uint8(57)) // slack limit
	f.Fuzz(func(t *testing.T, tblSeed, stream []byte, limit uint8) {
		if len(tblSeed) == 0 || len(tblSeed) > 2048 || len(stream) > 4096 {
			return
		}
		// Widen the alphabet beyond one byte so multi-byte symbols and
		// deep trees are exercised too.
		freq := map[uint64]int64{}
		for i, b := range tblSeed {
			freq[uint64(b)|uint64(i%5)<<8]++
		}
		var tab *Table
		var err error
		if lim := int(limit); lim >= 1 && lim <= MaxCodeLen {
			tab, err = BuildLimited(freq, lim)
		} else {
			tab, err = Build(freq)
		}
		if err != nil {
			return // infeasible limit: not this fuzzer's concern
		}
		fast := tab.NewFastDecoder()
		ref := tab.NewDecoder()
		fr := bitio.NewReader(stream)
		rr := bitio.NewReader(stream)
		for step := 0; ; step++ {
			fsym, ferr := fast.Decode(fr)
			rsym, rerr := ref.Decode(rr)
			if (ferr == nil) != (rerr == nil) {
				t.Fatalf("step %d: fast err %v, reference err %v", step, ferr, rerr)
			}
			if fr.Offset() != rr.Offset() {
				t.Fatalf("step %d: fast consumed %d bits, reference %d",
					step, fr.Offset(), rr.Offset())
			}
			if ferr != nil {
				if ferr.Error() != rerr.Error() {
					t.Fatalf("step %d: error text differs:\nfast:      %v\nreference: %v",
						step, ferr, rerr)
				}
				if errors.Is(ferr, io.ErrUnexpectedEOF) != errors.Is(rerr, io.ErrUnexpectedEOF) {
					t.Fatalf("step %d: EOF classification differs: %v vs %v", step, ferr, rerr)
				}
				break
			}
			if fsym != rsym {
				t.Fatalf("step %d: fast symbol %d, reference %d", step, fsym, rsym)
			}
		}

		// Batch face: DecodeRun over the same stream must produce the
		// reference's symbol prefix, final offset, and terminal error.
		refSyms, refOff, refErr := referenceDecodeAll(ref, stream)
		br := bitio.NewReader(stream)
		got := make([]uint64, len(refSyms))
		if err := fast.DecodeRun(br, got); err != nil {
			t.Fatalf("DecodeRun over %d decodable symbols: %v", len(refSyms), err)
		}
		for i := range got {
			if got[i] != refSyms[i] {
				t.Fatalf("DecodeRun symbol %d = %d, reference %d", i, got[i], refSyms[i])
			}
		}
		if refErr != nil {
			berr := fast.DecodeRun(br, make([]uint64, 1))
			if berr == nil || berr.Error() != refErr.Error() {
				t.Fatalf("DecodeRun terminal = %v, reference %v", berr, refErr)
			}
			if br.Offset() != refOff {
				t.Fatalf("DecodeRun terminal offset %d, reference %d", br.Offset(), refOff)
			}
		}
	})
}

// FuzzLaneDecodeEquivalence is the three-way differential over the
// batched kernel: a fuzz-chosen table (optionally length-limited), a
// fuzz-chosen raw bit stream decoded as MaxLanes independent lanes
// (whole stream, and offset by the seed's low bits), against both the
// per-symbol FastDecoder and the reference Decoder. Symbols, terminal
// offsets, error text, and io.ErrUnexpectedEOF classification must all
// be identical per lane. Raw streams make both error terminals as
// reachable as clean decodes, and the shared stream keeps the lanes'
// refill phases decorrelated from each other.
func FuzzLaneDecodeEquivalence(f *testing.F) {
	f.Add([]byte{1, 1, 2, 3, 5, 8}, []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x23}, uint8(0))
	f.Add([]byte{7}, []byte{0xff}, uint8(0))
	f.Add([]byte{1, 2, 3, 4}, []byte{}, uint8(3))
	f.Add([]byte{9, 9, 9, 1, 1, 1}, []byte{0x5a, 0xa5, 0x5a}, uint8(57))
	f.Fuzz(func(t *testing.T, tblSeed, stream []byte, limit uint8) {
		if len(tblSeed) == 0 || len(tblSeed) > 2048 || len(stream) > 4096 {
			return
		}
		freq := map[uint64]int64{}
		for i, b := range tblSeed {
			freq[uint64(b)|uint64(i%5)<<8]++
		}
		var tab *Table
		var err error
		if lim := int(limit); lim >= 1 && lim <= MaxCodeLen {
			tab, err = BuildLimited(freq, lim)
		} else {
			tab, err = Build(freq)
		}
		if err != nil {
			return // infeasible limit: not this fuzzer's concern
		}
		fast := tab.NewFastDecoder()
		ref := tab.NewDecoder()
		kern := NewLaneDecoder(fast)
		refSyms, _, _ := referenceDecodeAll(ref, stream)
		count := len(refSyms) + int(limit)%3 // also over-ask to force terminals

		var lanes [MaxLanes]Lane
		outs := make([][]uint64, MaxLanes)
		starts := make([]int, MaxLanes)
		for i := range lanes {
			starts[i] = (i * int(limit)) % (8*len(stream) + 1)
			outs[i] = make([]uint64, count)
			if err := lanes[i].Init(stream, starts[i], outs[i]); err != nil {
				t.Fatal(err)
			}
		}
		kern.Run(lanes[:])
		for i := range lanes {
			// Per-symbol oracle from the same start: FastDecoder and
			// reference in lockstep (their own equivalence is
			// FuzzFastDecodeEquivalence's concern; any divergence here
			// still fails through the fast face).
			fr := bitio.NewReader(stream)
			rr := bitio.NewReader(stream)
			if err := fr.SeekBit(starts[i]); err != nil {
				t.Fatal(err)
			}
			if err := rr.SeekBit(starts[i]); err != nil {
				t.Fatal(err)
			}
			var wantSyms []uint64
			var wantErr error
			for len(wantSyms) < count {
				fsym, ferr := fast.Decode(fr)
				rsym, rerr := ref.Decode(rr)
				if (ferr == nil) != (rerr == nil) || fr.Offset() != rr.Offset() {
					t.Fatalf("oracle divergence at lane %d: %v vs %v", i, ferr, rerr)
				}
				if ferr != nil {
					wantErr = ferr
					break
				}
				if fsym != rsym {
					t.Fatalf("oracle symbol divergence at lane %d: %d vs %d", i, fsym, rsym)
				}
				wantSyms = append(wantSyms, fsym)
			}
			got := outs[i][:lanes[i].Decoded()]
			if len(got) != len(wantSyms) {
				t.Fatalf("lane %d decoded %d symbols, oracle %d", i, len(got), len(wantSyms))
			}
			for j := range got {
				if got[j] != wantSyms[j] {
					t.Fatalf("lane %d symbol %d = %d, oracle %d", i, j, got[j], wantSyms[j])
				}
			}
			if lanes[i].Offset() != fr.Offset() {
				t.Fatalf("lane %d terminal offset %d, oracle %d", i, lanes[i].Offset(), fr.Offset())
			}
			gerr := lanes[i].Err()
			if (gerr == nil) != (wantErr == nil) {
				t.Fatalf("lane %d error %v, oracle %v", i, gerr, wantErr)
			}
			if gerr != nil {
				if gerr.Error() != wantErr.Error() {
					t.Fatalf("lane %d error text:\nkernel: %v\noracle: %v", i, gerr, wantErr)
				}
				if errors.Is(gerr, io.ErrUnexpectedEOF) != errors.Is(wantErr, io.ErrUnexpectedEOF) {
					t.Fatalf("lane %d EOF classification differs: %v vs %v", i, gerr, wantErr)
				}
			}
		}
	})
}

// referenceDecodeAll drains a stream with the reference decoder.
func referenceDecodeAll(ref *Decoder, stream []byte) ([]uint64, int, error) {
	r := bitio.NewReader(stream)
	var syms []uint64
	for {
		sym, err := ref.Decode(r)
		if err != nil {
			return syms, r.Offset(), err
		}
		syms = append(syms, sym)
	}
}
