package huffman

import (
	"reflect"
	"testing"
)

// goldenCase pins canonical table construction to exact expected output:
// symbols in canonical order, their code lengths, and their codewords.
// These are hand-derived from the Huffman/package-merge constructions, so
// any change to tie-breaking, length computation, or canonical assignment
// shows up as a golden diff rather than a silent re-coding.
type goldenCase struct {
	name  string
	freq  map[uint64]int64
	limit int // 0 = unbounded Build
	syms  []uint64
	lens  []int
	codes []uint64
}

var goldenCases = []goldenCase{
	{
		// Dyadic weights: the code mirrors the probabilities exactly.
		name:  "dyadic",
		freq:  map[uint64]int64{0: 8, 1: 4, 2: 2, 3: 1, 4: 1},
		syms:  []uint64{0, 1, 2, 3, 4},
		lens:  []int{1, 2, 3, 4, 4},
		codes: []uint64{0b0, 0b10, 0b110, 0b1110, 0b1111},
	},
	{
		// One symbol still costs one bit (the degenerate incomplete code).
		name:  "single-symbol",
		freq:  map[uint64]int64{42: 10},
		syms:  []uint64{42},
		lens:  []int{1},
		codes: []uint64{0b0},
	},
	{
		// All-equal weights over a power-of-two alphabet: a fixed-width
		// code, canonical order = symbol order.
		name:  "uniform-8",
		freq:  map[uint64]int64{10: 3, 11: 3, 12: 3, 13: 3, 14: 3, 15: 3, 16: 3, 17: 3},
		syms:  []uint64{10, 11, 12, 13, 14, 15, 16, 17},
		lens:  []int{3, 3, 3, 3, 3, 3, 3, 3},
		codes: []uint64{0b000, 0b001, 0b010, 0b011, 0b100, 0b101, 0b110, 0b111},
	},
	{
		// Power-of-two weights: maximally skewed, lengths 1..n-1 with the
		// two rarest sharing the longest code.
		name:  "skewed-5",
		freq:  map[uint64]int64{0: 1, 1: 2, 2: 4, 3: 8, 4: 16},
		syms:  []uint64{4, 3, 2, 0, 1},
		lens:  []int{1, 2, 3, 4, 4},
		codes: []uint64{0b0, 0b10, 0b110, 0b1110, 0b1111},
	},
	{
		// Length limit exactly at the fixed-width floor: every code is
		// forced to the limit regardless of skew.
		name:  "limited-floor",
		freq:  map[uint64]int64{0: 1, 1: 10, 2: 100, 3: 1000},
		limit: 2,
		syms:  []uint64{0, 1, 2, 3},
		lens:  []int{2, 2, 2, 2},
		codes: []uint64{0b00, 0b01, 0b10, 0b11},
	},
	{
		// Package-merge with a binding limit: unbounded lengths would be
		// (6,6,5,4,3,2,1); the 4-bit limit re-levels the tail to
		// (4,4,4,4,3,3,1), the cheapest complete code under the bound.
		name:  "limited-package-merge",
		freq:  map[uint64]int64{0: 1, 1: 1, 2: 2, 3: 4, 4: 8, 5: 16, 6: 32},
		limit: 4,
		syms:  []uint64{6, 4, 5, 0, 1, 2, 3},
		lens:  []int{1, 3, 3, 4, 4, 4, 4},
		codes: []uint64{0b0, 0b100, 0b101, 0b1100, 0b1101, 0b1110, 0b1111},
	},
	{
		// A slack limit must reproduce the unbounded optimum exactly.
		name:  "limited-slack",
		freq:  map[uint64]int64{0: 8, 1: 4, 2: 2, 3: 1, 4: 1},
		limit: MaxCodeLen,
		syms:  []uint64{0, 1, 2, 3, 4},
		lens:  []int{1, 2, 3, 4, 4},
		codes: []uint64{0b0, 0b10, 0b110, 0b1110, 0b1111},
	},
}

func TestGoldenCanonicalTables(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			var tab *Table
			var err error
			if tc.limit > 0 {
				tab, err = BuildLimited(tc.freq, tc.limit)
			} else {
				tab, err = Build(tc.freq)
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := tab.Symbols(); !reflect.DeepEqual(got, tc.syms) {
				t.Errorf("canonical symbols = %v, want %v", got, tc.syms)
			}
			if got := tab.Lengths(); !reflect.DeepEqual(got, tc.lens) {
				t.Errorf("code lengths = %v, want %v", got, tc.lens)
			}
			for i, s := range tc.syms {
				c, ok := tab.CodeFor(s)
				if !ok {
					t.Fatalf("symbol %d missing from table", s)
				}
				if c.Bits != tc.codes[i] || c.Len != tc.lens[i] {
					t.Errorf("code for %d = 0b%b/%d, want 0b%b/%d",
						s, c.Bits, c.Len, tc.codes[i], tc.lens[i])
				}
			}
		})
	}
}

// TestGoldenFirstCodeArrays pins the reference decoder's per-length
// first-code and offset arrays — the structure the paper's decoder
// hardware realizes — for the dyadic table.
func TestGoldenFirstCodeArrays(t *testing.T) {
	tab, err := Build(map[uint64]int64{0: 8, 1: 4, 2: 2, 3: 1, 4: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := tab.NewDecoder()
	wantCount := []int{0, 1, 1, 1, 2}
	wantFirst := []uint64{0, 0, 0b10, 0b110, 0b1110}
	wantOffset := []int{0, 0, 1, 2, 3}
	if !reflect.DeepEqual(d.count, wantCount) {
		t.Errorf("count = %v, want %v", d.count, wantCount)
	}
	if !reflect.DeepEqual(d.first[:5], wantFirst) {
		t.Errorf("first = %v, want %v", d.first[:5], wantFirst)
	}
	if !reflect.DeepEqual(d.offset[:5], wantOffset) {
		t.Errorf("offset = %v, want %v", d.offset[:5], wantOffset)
	}
}

// TestGoldenLimitedCost asserts the package-merge result is optimal under
// its limit: the re-leveled code's total cost is the cheapest any
// limit-respecting complete code can achieve (exhaustively checked
// against all monotone length assignments for this small alphabet).
func TestGoldenLimitedCost(t *testing.T) {
	freq := map[uint64]int64{0: 1, 1: 1, 2: 2, 3: 4, 4: 8, 5: 16, 6: 32}
	tab, err := BuildLimited(freq, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive search over length assignments l_i in [1,4] with
	// Kraft sum <= 1, weights sorted descending so lengths ascend.
	weights := []int64{32, 16, 8, 4, 2, 1, 1}
	best := int64(1 << 62)
	var rec func(i int, minLen int, kraft, cost int64)
	rec = func(i int, minLen int, kraft, cost int64) {
		if kraft > 1<<4 || cost >= best {
			return
		}
		if i == len(weights) {
			if kraft <= 1<<4 {
				best = cost
			}
			return
		}
		for l := minLen; l <= 4; l++ {
			rec(i+1, l, kraft+1<<uint(4-l), cost+weights[i]*int64(l))
		}
	}
	rec(0, 1, 0, 0)
	if tab.TotalBits() != best {
		t.Errorf("BuildLimited cost = %d bits, exhaustive optimum = %d", tab.TotalBits(), best)
	}
}
