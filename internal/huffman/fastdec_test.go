package huffman

import (
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/bitio"
)

// decodeAll drains a stream with one decoder, returning the symbols, the
// reader offset after each symbol, and the terminal error (nil only when
// the loop was stopped by maxSyms).
type decodeStep struct {
	sym    uint64
	offset int
}

func decodeAll(dec interface {
	Decode(*bitio.Reader) (uint64, error)
}, data []byte, maxSyms int) ([]decodeStep, int, error) {
	r := bitio.NewReader(data)
	var steps []decodeStep
	for len(steps) < maxSyms {
		sym, err := dec.Decode(r)
		if err != nil {
			return steps, r.Offset(), err
		}
		steps = append(steps, decodeStep{sym, r.Offset()})
	}
	return steps, r.Offset(), nil
}

// requireAgreement decodes data with both decoders of tab and fails the
// test on any divergence in symbols, per-symbol offsets, terminal error,
// or terminal offset.
func requireAgreement(t *testing.T, tab *Table, data []byte) {
	t.Helper()
	fast := tab.NewFastDecoder()
	ref := tab.NewDecoder()
	const maxSyms = 1 << 16
	fs, foff, ferr := decodeAll(fast, data, maxSyms)
	rs, roff, rerr := decodeAll(ref, data, maxSyms)
	if len(fs) != len(rs) {
		t.Fatalf("fast decoded %d symbols, reference %d", len(fs), len(rs))
	}
	for i := range fs {
		if fs[i] != rs[i] {
			t.Fatalf("symbol %d: fast (sym %d, offset %d), reference (sym %d, offset %d)",
				i, fs[i].sym, fs[i].offset, rs[i].sym, rs[i].offset)
		}
	}
	if foff != roff {
		t.Fatalf("terminal offsets differ: fast %d, reference %d", foff, roff)
	}
	if (ferr == nil) != (rerr == nil) {
		t.Fatalf("terminal errors differ: fast %v, reference %v", ferr, rerr)
	}
	if ferr != nil {
		if ferr.Error() != rerr.Error() {
			t.Fatalf("error text differs:\nfast:      %v\nreference: %v", ferr, rerr)
		}
		if errors.Is(ferr, io.ErrUnexpectedEOF) != errors.Is(rerr, io.ErrUnexpectedEOF) {
			t.Fatalf("EOF classification differs: fast %v, reference %v", ferr, rerr)
		}
	}
}

// encodeStream emits a deterministic symbol sequence drawn from freq.
func encodeStream(t *testing.T, tab *Table, freq map[uint64]int64) []byte {
	t.Helper()
	var syms []uint64
	for s, f := range freq {
		for i := int64(0); i < f%9+1; i++ {
			syms = append(syms, s)
		}
	}
	var w bitio.Writer
	for _, s := range syms {
		if err := tab.Encode(&w, s); err != nil {
			t.Fatal(err)
		}
	}
	return w.Bytes()
}

func TestFastDecoderMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		freq := randFreq(rng, 2+rng.Intn(400), trial%2 == 0)
		tab, err := Build(freq)
		if err != nil {
			t.Fatal(err)
		}
		data := encodeStream(t, tab, freq)
		requireAgreement(t, tab, data)
		// Every truncation point of the same stream must also agree,
		// including the wrapped-EOF error and its reported offset.
		for cut := 0; cut < len(data) && cut < 16; cut++ {
			requireAgreement(t, tab, data[:cut])
		}
	}
}

func TestFastDecoderMatchesReferenceLimited(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(300)
		freq := randFreq(rng, n, true)
		tab, err := BuildLimited(freq, bitsNeeded(n)+rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		requireAgreement(t, tab, encodeStream(t, tab, freq))
	}
}

// Codes longer than the root index must spill into overflow sub-tables
// and still decode identically. Powers-of-two weights force a maximally
// skewed tree: n symbols give a longest code of n-1 bits.
func TestFastDecoderLongCodes(t *testing.T) {
	freq := map[uint64]int64{}
	for i := 0; i < 30; i++ {
		freq[uint64(i)] = 1 << uint(i)
	}
	freq[0] = 2 // keep the two rarest distinct
	tab, err := Build(freq)
	if err != nil {
		t.Fatal(err)
	}
	fast := tab.NewFastDecoder()
	if tab.MaxLen() <= fast.RootBits() {
		t.Fatalf("max code length %d does not exceed root bits %d; test is vacuous",
			tab.MaxLen(), fast.RootBits())
	}
	if fast.TableEntries() <= 1<<uint(fast.RootBits()) {
		t.Fatalf("no overflow sub-tables allocated for %d-bit codes", tab.MaxLen())
	}
	data := encodeStream(t, tab, freq)
	requireAgreement(t, tab, data)
	for cut := 0; cut <= len(data); cut++ {
		requireAgreement(t, tab, data[:cut])
	}
}

func TestFastDecoderTruncationError(t *testing.T) {
	freq := map[uint64]int64{0: 8, 1: 4, 2: 2, 3: 1, 4: 1}
	tab, err := Build(freq)
	if err != nil {
		t.Fatal(err)
	}
	// Symbol 3 encodes as 0b1110 (4 bits); a stream holding only its
	// first two bits must truncate with the codeword's start offset.
	c, _ := tab.CodeFor(3)
	var w bitio.Writer
	if err := tab.Encode(&w, 0); err != nil { // 1 bit, decodes fine
		t.Fatal(err)
	}
	w.WriteBits(c.Bits>>2, 2)
	pad := w.Bytes()[:1] // 1+2 bits of payload zero-padded to one byte
	// The zero padding completes a valid stream, so instead decode a
	// raw 3-bit slice via a sub-byte reader: emulate by checking both
	// decoders agree on the padded byte and on the empty stream.
	requireAgreement(t, tab, pad)
	requireAgreement(t, tab, nil)

	// The empty stream is the canonical mid-codeword truncation: both
	// decoders must wrap io.ErrUnexpectedEOF and report bit offset 0.
	fast := tab.NewFastDecoder()
	_, ferr := fast.Decode(bitio.NewReader(nil))
	ref := tab.NewDecoder()
	_, rerr := ref.Decode(bitio.NewReader(nil))
	for _, err := range []error{ferr, rerr} {
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("truncation error %v does not wrap io.ErrUnexpectedEOF", err)
		}
	}
	if ferr.Error() != rerr.Error() {
		t.Errorf("truncation errors differ: fast %v, reference %v", ferr, rerr)
	}
}

// Truncation mid-stream: decode a valid prefix, then hit the cut. The
// reported offset must be where the truncated codeword started, in both
// decoders, and both must consume the entire remainder.
func TestTruncationOffsetMidStream(t *testing.T) {
	freq := map[uint64]int64{}
	for i := 0; i < 16; i++ {
		freq[uint64(i)] = 1 << uint(i)
	}
	tab, err := Build(freq)
	if err != nil {
		t.Fatal(err)
	}
	data := encodeStream(t, tab, freq)
	for cut := 0; cut <= len(data); cut++ {
		fast := tab.NewFastDecoder()
		ref := tab.NewDecoder()
		fs, foff, ferr := decodeAll(fast, data[:cut], 1<<16)
		rs, roff, rerr := decodeAll(ref, data[:cut], 1<<16)
		if len(fs) != len(rs) || foff != roff {
			t.Fatalf("cut %d: fast %d syms ending at %d, reference %d syms ending at %d",
				cut, len(fs), foff, len(rs), roff)
		}
		if ferr != nil && rerr != nil && ferr.Error() != rerr.Error() {
			t.Fatalf("cut %d: error text differs: %v vs %v", cut, ferr, rerr)
		}
		if errors.Is(ferr, io.ErrUnexpectedEOF) && foff != 8*cut {
			t.Fatalf("cut %d: truncation left %d bits unconsumed", cut, 8*cut-foff)
		}
	}
}

// The single-symbol table is the one incomplete canonical code: the '1'
// bit matches nothing, so both decoders must report the same invalid
// codeword, offset, and consumption.
func TestFastDecoderInvalidCodeword(t *testing.T) {
	tab, err := Build(map[uint64]int64{42: 10})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{0b0100_0000} // symbol, invalid, then padding
	requireAgreement(t, tab, data)
	fast := tab.NewFastDecoder()
	r := bitio.NewReader(data)
	if sym, err := fast.Decode(r); err != nil || sym != 42 {
		t.Fatalf("first decode = (%d, %v), want (42, nil)", sym, err)
	}
	if _, err := fast.Decode(r); err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("invalid codeword gave %v, want a non-EOF decode error", err)
	} else if r.Offset() != 2 {
		t.Fatalf("invalid codeword consumed %d bits total, want maxLen=1 after 1", r.Offset())
	}
}

// DecodeRun must match per-symbol decoding in symbols, final reader
// position, and terminal errors — across chunk sizes, unaligned block
// starts, truncated tails, and the wide-code fallback.
func TestDecodeRunMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 40; trial++ {
		freq := randFreq(rng, 2+rng.Intn(300), trial%2 == 0)
		tab, err := Build(freq)
		if err != nil {
			t.Fatal(err)
		}
		data := encodeStream(t, tab, freq)
		fast := tab.NewFastDecoder()
		ref := tab.NewDecoder()
		want, _, _ := func() ([]uint64, int, error) {
			r := bitio.NewReader(data)
			var syms []uint64
			for {
				s, err := ref.Decode(r)
				if err != nil {
					return syms, r.Offset(), err
				}
				syms = append(syms, s)
			}
		}()
		// Whole-stream run.
		r := bitio.NewReader(data)
		got := make([]uint64, len(want))
		if err := fast.DecodeRun(r, got); err != nil {
			t.Fatalf("DecodeRun: %v", err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("DecodeRun symbol %d = %d, want %d", i, got[i], want[i])
			}
		}
		// Chunked runs with interleaved per-symbol decodes must resync.
		r = bitio.NewReader(data)
		oracle := bitio.NewReader(data)
		idx := 0
		for idx < len(want) {
			n := rng.Intn(7)
			if idx+n > len(want) {
				n = len(want) - idx
			}
			chunk := make([]uint64, n)
			if err := fast.DecodeRun(r, chunk); err != nil {
				t.Fatalf("chunk at %d: %v", idx, err)
			}
			for j, s := range chunk {
				if rs, _ := ref.Decode(oracle); s != rs {
					t.Fatalf("chunk symbol %d = %d, want %d", idx+j, s, rs)
				}
			}
			idx += n
			if r.Offset() != oracle.Offset() {
				t.Fatalf("after chunk at %d: offset %d, oracle %d", idx, r.Offset(), oracle.Offset())
			}
			if idx < len(want) && rng.Intn(3) == 0 {
				s, err := fast.Decode(r)
				if err != nil || s != want[idx] {
					t.Fatalf("interleaved Decode at %d = (%d, %v), want %d", idx, s, err, want[idx])
				}
				ref.Decode(oracle)
				idx++
			}
		}
		// Asking for one symbol past the stream must reproduce the
		// reference terminal error at the same offset.
		rerrR := bitio.NewReader(data)
		for range want {
			ref.Decode(rerrR)
		}
		_, rerr := ref.Decode(rerrR)
		berr := fast.DecodeRun(r, make([]uint64, 1))
		if berr == nil || rerr == nil || berr.Error() != rerr.Error() {
			t.Fatalf("DecodeRun terminal = %v, reference %v", berr, rerr)
		}
		if r.Offset() != rerrR.Offset() {
			t.Fatalf("DecodeRun terminal offset %d, reference %d", r.Offset(), rerrR.Offset())
		}
	}
}

// The fast decoder must leave the reader positioned exactly like the
// reference decoder after every symbol, so interleaving the two on one
// stream also works.
func TestFastReferenceInterleave(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	freq := randFreq(rng, 120, true)
	tab, err := Build(freq)
	if err != nil {
		t.Fatal(err)
	}
	data := encodeStream(t, tab, freq)
	fast := tab.NewFastDecoder()
	ref := tab.NewDecoder()
	r := bitio.NewReader(data)
	oracle := bitio.NewReader(data)
	for {
		want, rerr := ref.Decode(oracle)
		var got uint64
		var gerr error
		if rng.Intn(2) == 0 {
			got, gerr = fast.Decode(r)
		} else {
			got, gerr = ref.Decode(r)
		}
		if (gerr == nil) != (rerr == nil) {
			t.Fatalf("interleaved errors diverge: %v vs %v", gerr, rerr)
		}
		if gerr != nil {
			break
		}
		if got != want || r.Offset() != oracle.Offset() {
			t.Fatalf("interleaved decode %d at offset %d, oracle %d at %d",
				got, r.Offset(), want, oracle.Offset())
		}
	}
}
