package huffman

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/bitio"
)

// DefaultRootBits is the index width of the fast decoder's first-level
// table. Ten bits keeps the root at 1K entries (4 KiB) — large enough
// that, with the skewed operation distributions the compression schemes
// see, almost every codeword resolves in a single lookup — while codes
// longer than the root index spill into per-prefix overflow sub-tables
// (the zlib layout). Tables whose longest code is shorter use that
// length instead and need no sub-tables at all.
const DefaultRootBits = 10

// Fast-decoder table entries are packed uint32s:
//
//	leaf:      symIndex<<6 | codeLen     (codeLen in 1..MaxCodeLen)
//	sub-link:  subFlag | subOffset<<6 | subBits
//	invalid:   0                         (reachable only in incomplete codes)
//
// The 6-bit low field fits MaxCodeLen (57); the 25-bit middle field
// bounds both the symbol count and the total sub-table size.
const (
	fastLenMask = 1<<6 - 1
	fastSubFlag = 1 << 31
	fastMaxSyms = 1 << 25
)

// FastDecoder is the table-driven decoder for a canonical Huffman code:
// a two-level lookup that replaces the reference decoder's bit-by-bit
// walk with one peek into a root table indexed by the next rootBits bits
// and, for codes longer than rootBits, one more peek into an overflow
// sub-table. Its symbol stream, consumed-bit offsets, and error
// behaviour are bit-identical to Decoder's; the equivalence is enforced
// by the differential harness and FuzzFastDecodeEquivalence.
type FastDecoder struct {
	rootBits int
	maxLen   int
	root     []uint32
	sub      []uint32
	syms     []uint64
}

// NewFastDecoder builds the two-level lookup tables for the code.
func (t *Table) NewFastDecoder() *FastDecoder {
	if len(t.syms) >= fastMaxSyms {
		panic(fmt.Sprintf("huffman: %d symbols overflow fast-decoder entries", len(t.syms)))
	}
	rootBits := DefaultRootBits
	if t.maxLen < rootBits {
		rootBits = t.maxLen
	}
	d := &FastDecoder{rootBits: rootBits, maxLen: t.maxLen, syms: t.syms}
	d.root = make([]uint32, 1<<uint(rootBits))

	// First pass: size one sub-table per rootBits prefix that long codes
	// share, wide enough for the longest code under it.
	subLen := map[uint64]int{}
	for i, s := range t.syms {
		if l := t.lens[i]; l > rootBits {
			p := t.codes[s].Bits >> uint(l-rootBits)
			if l > subLen[p] {
				subLen[p] = l
			}
		}
	}
	prefixes := make([]uint64, 0, len(subLen))
	for p := range subLen {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })
	subOff := make(map[uint64]int, len(prefixes))
	for _, p := range prefixes {
		bits := subLen[p] - rootBits
		subOff[p] = len(d.sub)
		d.root[p] = fastSubFlag | uint32(len(d.sub))<<6 | uint32(bits)
		d.sub = append(d.sub, make([]uint32, 1<<uint(bits))...)
	}

	// Second pass: replicate each leaf across every index its codeword
	// prefixes, so a single masked peek resolves it.
	for i, s := range t.syms {
		l := t.lens[i]
		c := t.codes[s].Bits
		e := uint32(i)<<6 | uint32(l)
		if l <= rootBits {
			base := c << uint(rootBits-l)
			for j := uint64(0); j < 1<<uint(rootBits-l); j++ {
				d.root[base+j] = e
			}
			continue
		}
		p := c >> uint(l-rootBits)
		span := subLen[p] - l
		base := uint64(subOff[p]) + (c&(1<<uint(l-rootBits)-1))<<uint(span)
		for j := uint64(0); j < 1<<uint(span); j++ {
			d.sub[base+j] = e
		}
	}
	return d
}

// Decode reads one symbol from the bit stream. See Decoder.Decode for
// the exact (shared) error contract.
//
//tepic:hotpath
func (d *FastDecoder) Decode(r *bitio.Reader) (uint64, error) {
	v, avail := r.PeekBits(d.rootBits)
	e := d.root[v]
	if e&fastSubFlag != 0 {
		bits := int(e & fastLenMask)
		w, a := r.PeekBits(d.rootBits + bits)
		e = d.sub[int(e>>6&(fastMaxSyms-1))+int(w&(1<<uint(bits)-1))]
		avail = a
	}
	if l := int(e & fastLenMask); l != 0 && l <= avail {
		r.ConsumeBits(l)
		return d.syms[e>>6], nil
	}
	return 0, d.fail(r)
}

// DecodeRun decodes len(out) consecutive symbols into out — the batch
// face of the fast decoder and the form the compression schemes' block
// decoders call. The hot loop runs a register-resident bit cursor
// directly over the reader's backing bytes (refilling the accumulator a
// word at a time, Giesen's branchless variant) and resyncs the reader
// with SeekBit when it exits, so interleaving DecodeRun with any other
// reader operation stays coherent. The stream tail — and every error —
// is delegated to the per-symbol Decode, which shares its terminals with
// the reference decoder, keeping batch error behaviour (consumed bits,
// text, wrapped io.ErrUnexpectedEOF) bit-identical to both.
//
//tepic:hotpath
func (d *FastDecoder) DecodeRun(r *bitio.Reader, out []uint64) error {
	// The in-register loop guarantees 56 buffered bits per iteration;
	// wider codes (possible only near MaxCodeLen) take the safe path.
	if d.maxLen > 56 {
		return d.decodeRunSlow(r, out)
	}
	data := r.Source()
	pos := r.Offset() // absolute bit offset of the next unconsumed bit
	i := 0

	var buf uint64 // next bits at the top, low 64-nbit bits zero
	nbit := 0
	bytePos := pos >> 3
	if rem := pos & 7; rem != 0 {
		buf = uint64(data[bytePos]) << uint(56+rem)
		nbit = 8 - int(rem)
		bytePos++
	}
	rootMask := uint64(len(d.root) - 1)
	for i < len(out) {
		if nbit < 56 {
			if bytePos+8 > len(data) {
				break // tail: finish through the reader
			}
			buf |= binary.BigEndian.Uint64(data[bytePos:]) >> uint(nbit)
			bytePos += (63 - nbit) >> 3
			nbit |= 56
		}
		e := d.root[buf>>uint(64-d.rootBits)&rootMask]
		if e&fastSubFlag != 0 {
			bits := int(e & fastLenMask)
			w := buf >> uint(64-d.rootBits-bits)
			e = d.sub[int(e>>6&(fastMaxSyms-1))+int(w&(1<<uint(bits)-1))]
		}
		l := int(e & fastLenMask)
		if l == 0 || l > nbit {
			break // invalid codeword: let Decode produce the terminal
		}
		buf <<= uint(l)
		nbit -= l
		pos += l
		out[i] = d.syms[e>>6]
		i++
	}
	if err := r.SeekBit(pos); err != nil {
		return err
	}
	for ; i < len(out); i++ {
		sym, err := d.Decode(r)
		if err != nil {
			return err
		}
		out[i] = sym
	}
	return nil
}

// decodeRunSlow is DecodeRun for codes too wide for the 56-bit window.
func (d *FastDecoder) decodeRunSlow(r *bitio.Reader, out []uint64) error {
	for i := range out {
		sym, err := d.Decode(r)
		if err != nil {
			return err
		}
		out[i] = sym
	}
	return nil
}

// fail mirrors the reference decoder's two error terminals, consuming
// the same bits it would: everything that remains when the stream ends
// mid-codeword, exactly maxLen bits when they match no codeword.
func (d *FastDecoder) fail(r *bitio.Reader) error {
	start := r.Offset()
	if rem := r.Remaining(); rem < d.maxLen {
		r.ConsumeBits(rem)
		return errTruncated(start)
	}
	code, _ := r.ReadBits(d.maxLen) //tepic:ignore-err Remaining() >= maxLen checked above; cannot fail
	return errInvalid(code, start)
}

// MaxLen returns the longest codeword the decoder accepts.
func (d *FastDecoder) MaxLen() int { return d.maxLen }

// RootBits returns the first-level index width.
func (d *FastDecoder) RootBits() int { return d.rootBits }

// TableEntries returns the total lookup-table size (root plus overflow
// sub-tables, in entries of 4 bytes) — the memory side of the paper's
// decoder-size tradeoff.
func (d *FastDecoder) TableEntries() int { return len(d.root) + len(d.sub) }
